// Reproduces Fig 12: average performance vs merge-control gate delays for
// all schemes (scatter points printed as rows, sorted by delay).
#include <algorithm>
#include <iostream>

#include "exp/report.hpp"

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Figure 12: performance vs gate delays");
  const Fig10Result f = run_fig10(cfg);
  auto points = pareto_points(f, cfg.sim.machine);
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.gate_delay < b.gate_delay;
            });
  emit(std::cout, render_pareto(points));
  return 0;
}
