// Reproduces Fig 9: merging-hardware cost (gate delays and transistor
// count) for the 16 four-thread schemes, in the paper's presentation
// order.
#include <iostream>

#include "exp/report.hpp"

int main() {
  using namespace cvmt;
  print_banner(std::cout, "Figure 9: merging hardware cost per scheme");
  emit(std::cout, render_fig9(run_fig9()));
  std::cout << "\nKey relations (paper Sec. 4.2):\n"
               "  * CSMT-only schemes (C4, 3CCC, 2CC) cheapest overall\n"
               "  * one-SMT-block schemes (2SC3, 3SCC, ...) cost ~1S\n"
               "  * 2SS / 3SSS are the most expensive\n"
               "  * early-SMT schemes hide routing delay (2SC3 ~ 1S)\n";
  return 0;
}
