// Registry shim: this experiment lives in src/exp/runners/ and runs
// through the experiment registry — identical to `cvmt run fig9`.
// Flags (--budget, --fast, --format=table|csv|json, ...; see --help)
// layer over the CVMT_* environment variables.
#include "exp/driver.hpp"

int main(int argc, char** argv) {
  return cvmt::run_experiment_main("fig9", argc, argv);
}
