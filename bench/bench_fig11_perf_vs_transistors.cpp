// Reproduces Fig 11: average performance vs transistors incurred for all
// schemes (scatter points printed as rows, sorted by transistor count).
#include <algorithm>
#include <iostream>

#include "exp/report.hpp"

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Figure 11: performance vs transistors incurred");
  const Fig10Result f = run_fig10(cfg);
  auto points = pareto_points(f, cfg.sim.machine);
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.transistors < b.transistors;
            });
  emit(std::cout, render_pareto(points));
  return 0;
}
