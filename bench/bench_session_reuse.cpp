// Wall-clock validation of the session layer's build/run split: a dense
// grid of many *small* runs (every paper scheme x every Table 2 workload,
// repeated) executed two ways —
//
//   per-run construction   run_simulation() per grid point: every run
//                          recompiles the scheme into a MergePlan and
//                          rebuilds the memory system, thread contexts and
//                          stats buffers;
//   session reuse          one SimSession: schemes compiled once, one
//                          SimInstance per scheme reset in place across
//                          grid points.
//
// Programs are pre-materialized in the shared ArtifactCache for BOTH
// paths, so the comparison isolates exactly the per-run construction the
// session eliminates. Results must be bit-identical (the process exits
// non-zero otherwise); the headline number is the many-small-runs
// throughput ratio. Deliberately not a registry experiment: its output is
// wall-clock, and `cvmt run all` stays deterministic without it. The
// checked-in perf trajectory still records it — --format=json emits the
// registry-style envelope (see exp/bench_artifact.hpp), and CI
// regenerates BENCH_session_reuse.json and diffs its structure.
//
//   ./bench_session_reuse [--budget=N] [--timeslice=N] [--reps=N]
//                         [--format=table|json] [--out=FILE]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "exp/bench_artifact.hpp"
#include "sim/session.hpp"
#include "support/args.hpp"
#include "support/string_util.hpp"
#include "testgen/oracle.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("bench_session_reuse",
                 "Many-small-runs throughput of session reuse (compile "
                 "once, run many) vs per-run construction, bit-identity "
                 "checked on every grid point.");
  args.add_u64("budget", "N",
               "Instruction budget per thread and run (small on purpose: "
               "the grid stresses construction, not simulation).",
               "CVMT_BUDGET");
  args.add_u64("timeslice", "N", "OS timeslice in cycles.",
               "CVMT_TIMESLICE");
  args.add_u64("reps", "N", "Grid repetitions per timed pass.");
  args.add_string("format", "fmt",
                  "Output format: aligned table or the registry-style "
                  "JSON envelope.",
                  {}, {"table", "json"});
  args.add_string("out", "file",
                  "Write the report to this file instead of stdout "
                  "(atomic replace; diagnostics stay on stderr).");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }

  // The default budget sits in the genuinely small-run regime (the scale
  // of one shrink candidate or one fuzz oracle configuration): runs short
  // enough that per-run construction is a real fraction of the wall
  // clock. The same grid is measured again at 10x the budget to show the
  // effect decaying — longer runs amortize construction and the two
  // paths converge, i.e. reuse costs nothing when it doesn't help.
  const std::uint64_t small_budget = args.get_u64("budget", 40);
  const std::uint64_t timeslice = args.get_u64("timeslice", 50);
  const std::uint64_t reps = args.get_u64("reps", 6);

  // The grid: 16 paper schemes x 9 workloads. Programs come from the
  // shared cache for both paths (their build cost is not under test).
  const std::vector<Scheme> schemes = Scheme::paper_schemes_4t();
  ArtifactCache& artifacts = ArtifactCache::global();
  std::vector<std::shared_ptr<const CompiledWorkload>> workloads;
  for (const Workload& wl : table2_workloads())
    workloads.push_back(
        artifacts.workload(wl.benchmarks, MachineConfig::vex4x4()));
  const std::size_t grid_points = schemes.size() * workloads.size();

  SimSession session(artifacts);
  Dataset grid({ColumnSpec::integer("Budget"), ColumnSpec::str("Path"),
                ColumnSpec::real("Wall s", 3),
                ColumnSpec::real("Runs/s", 0),
                ColumnSpec::real("Speedup", 2, "x")});
  double small_budget_speedup = 0.0;

  for (const std::uint64_t budget : {small_budget, small_budget * 10}) {
    SimConfig cfg;
    cfg.instruction_budget = budget;
    cfg.timeslice_cycles = timeslice;
    cfg.stats = StatsLevel::kFast;  // the sweep configuration of the paper

    const auto fresh_pass = [&](std::vector<SimResult>* results) {
      for (const Scheme& scheme : schemes)
        for (const auto& wl : workloads) {
          SimResult r = run_simulation(scheme, wl->programs, cfg);
          if (results != nullptr) results->push_back(std::move(r));
        }
    };
    const auto reused_pass = [&](std::vector<SimResult>* results) {
      for (const Scheme& scheme : schemes)
        for (const auto& wl : workloads) {
          SimResult r = session.run(scheme, wl->programs, cfg);
          if (results != nullptr) results->push_back(std::move(r));
        }
    };

    // Warm-up sweep of both paths — instances built, caches warm, CPU up
    // — doubling as the bit-identity check: every grid point of the
    // reused path must equal its per-run-construction twin on every
    // counter. A hard guarantee, not a benchmark nicety.
    std::vector<SimResult> fresh_results;
    std::vector<SimResult> reused_results;
    fresh_results.reserve(grid_points);
    reused_results.reserve(grid_points);
    fresh_pass(&fresh_results);
    reused_pass(&reused_results);
    for (std::size_t i = 0; i < grid_points; ++i) {
      const std::string mismatch =
          compare_sim_results(fresh_results[i], reused_results[i],
                              /*compare_merge_stats=*/true);
      if (!mismatch.empty()) {
        std::cerr << "bench_session_reuse: budget " << budget
                  << " grid point " << i << " diverged: " << mismatch
                  << '\n';
        return 1;
      }
    }

    // Timed passes, alternating, best-of-reps per path: the minimum is
    // the standard robust throughput estimator on a shared machine.
    double fresh_s = 0.0, reused_s = 0.0;
    for (std::uint64_t r = 0; r < reps; ++r) {
      auto start = Clock::now();
      fresh_pass(nullptr);
      const double f = seconds_since(start);
      if (r == 0 || f < fresh_s) fresh_s = f;
      start = Clock::now();
      reused_pass(nullptr);
      const double u = seconds_since(start);
      if (r == 0 || u < reused_s) reused_s = u;
    }

    if (budget == small_budget) small_budget_speedup = fresh_s / reused_s;
    grid.add_row({static_cast<std::int64_t>(budget),
                  std::string("per-run construction"), fresh_s,
                  static_cast<double>(grid_points) / fresh_s, 1.0});
    grid.add_row({static_cast<std::int64_t>(budget),
                  std::string("session reuse"), reused_s,
                  static_cast<double>(grid_points) / reused_s,
                  fresh_s / reused_s});
  }

  BenchReport report;
  report.id = "bench-session-reuse";
  report.description =
      "Many-small-runs throughput of session reuse (compile once, run "
      "many) vs per-run construction; bit-identity checked on every grid "
      "point.";
  report.params.set("budget", small_budget);
  report.params.set("timeslice", timeslice);
  report.params.set("reps", reps);

  ResultSection grid_section;
  grid_section.title =
      "Session reuse: many-small-runs grid (16 schemes x 9 workloads, "
      "best of " +
      std::to_string(reps) + ")";
  grid_section.data = std::move(grid);
  report.sections.push_back(std::move(grid_section));

  ResultSection headline;
  headline.title = "Headline";
  headline.data = Dataset({ColumnSpec::str("Metric"),
                           ColumnSpec::real("Value", 2, "x")});
  headline.data.add_row(
      {std::string("small-run speedup"), small_budget_speedup});
  headline.note = "\nAll " + std::to_string(2 * grid_points) +
                  " grid points bit-identical across the two paths.\n" +
                  "Session kept " + std::to_string(session.num_instances()) +
                  " instances (one per scheme); artifact cache holds " +
                  std::to_string(artifacts.size()) + " artifacts.\n";
  report.sections.push_back(std::move(headline));

  return emit_bench_report(report, args.get_string("format", "table"),
                           args.get_string("out", ""));
}
