// Reproduces Fig 5: thread-merge-control cost (transistors, gate delays)
// for CSMT serial, CSMT parallel and SMT designs on a 4-cluster 4-issue
// machine, for 2..8 threads. Pure cost model, no simulation.
#include <iostream>

#include "exp/report.hpp"

int main() {
  using namespace cvmt;
  print_banner(std::cout,
               "Figure 5: merge control cost vs number of threads "
               "(4-cluster, 4-issue/cluster)");
  emit(std::cout, render_fig5(run_fig5()));
  std::cout << "\nShape checks (paper Sec. 3):\n"
               "  * SMT cost explodes with threads (limits SMT to 2)\n"
               "  * CSMT serial stays linear in both metrics\n"
               "  * CSMT parallel: flat delay, exponential area\n";
  return 0;
}
