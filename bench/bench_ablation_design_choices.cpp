// Ablations of the simulator design choices called out in DESIGN.md §7:
//   * priority policy (round-robin rotation vs fixed priority),
//   * DCache miss handling (serialized vs overlapped),
//   * cache sharing (shared vs per-thread private),
//   * tree-atomicity (what the paper's tree schemes give up).
// Each ablation reruns a representative scheme on all workloads.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Ablation: simulator design choices");

  struct Cell {
    const char* ablation;
    const char* setting;
    const char* scheme;
    SimConfig sim;
  };
  std::vector<Cell> cells;
  for (const char* scheme_name : {"3CCC", "2SC3", "3SSS"}) {
    SimConfig rr = cfg.sim;
    rr.priority = PriorityPolicy::kRoundRobin;
    SimConfig fx = cfg.sim;
    fx.priority = PriorityPolicy::kFixed;
    cells.push_back({"priority", "round-robin", scheme_name, rr});
    cells.push_back({"priority", "fixed", scheme_name, fx});

    SimConfig ser = cfg.sim;
    ser.miss_policy = MissPolicy::kSerialized;
    SimConfig ovl = cfg.sim;
    ovl.miss_policy = MissPolicy::kOverlapped;
    cells.push_back({"miss policy", "serialized", scheme_name, ser});
    cells.push_back({"miss policy", "overlapped", scheme_name, ovl});

    SimConfig shared = cfg.sim;
    SimConfig priv = cfg.sim;
    priv.mem.sharing = CacheSharing::kPrivate;
    cells.push_back({"caches", "shared", scheme_name, shared});
    cells.push_back({"caches", "private", scheme_name, priv});
  }
  // Tree atomicity: 2CC versus the cascade 3CCC (the cascade is the
  // "fallback" hardware that re-tries group members individually).
  const std::size_t kSchemeGroupCells = 6;  // separator after each group
  cells.push_back(
      {"tree atomicity", "atomic groups (2CC)", "2CC", cfg.sim});
  cells.push_back(
      {"tree atomicity", "per-thread cascade (3CCC)", "3CCC", cfg.sim});

  // One batch for the whole table: cell c, workload w at c*W+w.
  const auto& wls = table2_workloads();
  std::vector<BatchJob> jobs;
  jobs.reserve(cells.size() * wls.size());
  for (const Cell& c : cells)
    for (const Workload& w : wls)
      jobs.push_back(make_job(Scheme::parse(c.scheme), w, c.sim));
  const std::vector<double> avg =
      group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());

  TableWriter t({"Ablation", "Setting", "Scheme", "Avg IPC"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    t.add_row({cells[c].ablation, cells[c].setting, cells[c].scheme,
               format_fixed(avg[c], 3)});
    if ((c + 1) % kSchemeGroupCells == 0 && c + 2 < cells.size())
      t.add_separator();
  }

  emit(std::cout, t);
  return 0;
}
