// Ablations of the simulator design choices called out in DESIGN.md §7:
//   * priority policy (round-robin rotation vs fixed priority),
//   * DCache miss handling (serialized vs overlapped),
//   * cache sharing (shared vs per-thread private),
//   * tree-atomicity (what the paper's tree schemes give up).
// Each ablation reruns a representative scheme on all workloads.
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

namespace {

using namespace cvmt;

double average_ipc(const Scheme& scheme, const SimConfig& sim) {
  ProgramLibrary lib(sim.machine);
  lib.build_all();
  double sum = 0.0;
  const auto& wls = table2_workloads();
  std::vector<double> ipcs(wls.size(), 0.0);
#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t w = 0; w < wls.size(); ++w)
    ipcs[w] = run_workload(scheme, wls[w], lib, sim).ipc;
  for (double v : ipcs) sum += v;
  return sum / static_cast<double>(wls.size());
}

}  // namespace

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Ablation: simulator design choices");

  TableWriter t({"Ablation", "Setting", "Scheme", "Avg IPC"});

  for (const char* scheme_name : {"3CCC", "2SC3", "3SSS"}) {
    const Scheme scheme = Scheme::parse(scheme_name);

    SimConfig rr = cfg.sim;
    rr.priority = PriorityPolicy::kRoundRobin;
    SimConfig fx = cfg.sim;
    fx.priority = PriorityPolicy::kFixed;
    t.add_row({"priority", "round-robin", scheme_name,
               format_fixed(average_ipc(scheme, rr), 3)});
    t.add_row({"priority", "fixed", scheme_name,
               format_fixed(average_ipc(scheme, fx), 3)});

    SimConfig ser = cfg.sim;
    ser.miss_policy = MissPolicy::kSerialized;
    SimConfig ovl = cfg.sim;
    ovl.miss_policy = MissPolicy::kOverlapped;
    t.add_row({"miss policy", "serialized", scheme_name,
               format_fixed(average_ipc(scheme, ser), 3)});
    t.add_row({"miss policy", "overlapped", scheme_name,
               format_fixed(average_ipc(scheme, ovl), 3)});

    SimConfig shared = cfg.sim;
    SimConfig priv = cfg.sim;
    priv.mem.sharing = CacheSharing::kPrivate;
    t.add_row({"caches", "shared", scheme_name,
               format_fixed(average_ipc(scheme, shared), 3)});
    t.add_row({"caches", "private", scheme_name,
               format_fixed(average_ipc(scheme, priv), 3)});
    t.add_separator();
  }

  // Tree atomicity: 2CC versus the cascade 3CCC (the cascade is the
  // "fallback" hardware that re-tries group members individually).
  t.add_row({"tree atomicity", "atomic groups (2CC)", "2CC",
             format_fixed(average_ipc(Scheme::parse("2CC"), cfg.sim), 3)});
  t.add_row({"tree atomicity", "per-thread cascade (3CCC)", "3CCC",
             format_fixed(average_ipc(Scheme::parse("3CCC"), cfg.sim), 3)});

  emit(std::cout, t);
  return 0;
}
