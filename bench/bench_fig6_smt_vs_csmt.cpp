// Reproduces Fig 6: per-workload performance advantage of a 4-thread SMT
// processor (3SSS) over a 4-thread CSMT processor (3CCC). The paper
// reports a 27% average with a 58% peak on LLHH.
#include <iostream>

#include "exp/report.hpp"

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Figure 6: SMT performance advantage over CSMT "
                          "(4 threads)");
  emit(std::cout, render_fig6(run_fig6(cfg)));
  return 0;
}
