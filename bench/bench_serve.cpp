// Wall-clock validation of the serve layer: an in-process ServeServer on
// an ephemeral port, driven by pipelined clients issuing many *small* run
// requests — the workload the daemon exists for (a warm ArtifactCache
// turning every repeat (scheme, workload) pair into run-only cost).
//
// The measured load is `runs` run requests spread round-robin over
// `connections` connections, each keeping `pipeline` requests in flight.
// Every response is matched to its request by id; per-request latency is
// the send-to-response wall time observed by the client thread. Requests
// rotate through a fixed scheme x workload grid, so every payload repeats
// many times — and every repeat MUST be byte-identical to the first
// occurrence (the process exits non-zero otherwise). That is the serve
// counterpart of bench_session_reuse's bit-identity check: residency may
// never change results.
//
// Deliberately not a registry experiment: the output is wall-clock. The
// checked-in perf trajectory still records it — --format=json emits the
// registry-style envelope (see exp/bench_artifact.hpp), and CI
// regenerates BENCH_serve.json and diffs its structure.
//
//   ./bench_serve [--budget=N] [--runs=N] [--connections=N]
//                 [--pipeline=N] [--workers=N] [--reps=N]
//                 [--format=table|json] [--out=FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/bench_artifact.hpp"
#include "serve/server.hpp"
#include "sim/session.hpp"
#include "support/args.hpp"
#include "support/check.hpp"
#include "support/socket.hpp"
#include "trace/benchmark_suite.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Blocking line-framed client connection (same framing as cvmt client).
struct LineConn {
  explicit LineConn(std::uint16_t port)
      : stream(cvmt::connect_local(port)) {}

  cvmt::TcpStream stream;
  std::string buf;

  bool send_line(std::string line) {
    line.push_back('\n');
    return stream.send_all(line);
  }

  /// Next full line, or empty on EOF (responses never contain empty
  /// lines).
  std::string recv_line() {
    for (;;) {
      const std::size_t pos = buf.find('\n');
      if (pos != std::string::npos) {
        std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        return line;
      }
      char chunk[16384];
      const long n = stream.recv_some(chunk, sizeof(chunk));
      if (n <= 0) return std::string();
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

/// One grid point of the request rotation: the compact request line with
/// an `@` placeholder where the per-send id goes, plus the grid key used
/// for the byte-identity grouping.
struct RunTemplate {
  std::string line;  // contains "@" exactly once (the id slot)
  std::size_t key;   // grid index: scheme * workloads + workload
};

std::vector<RunTemplate> build_grid(std::uint64_t budget) {
  using namespace cvmt;
  static const std::vector<std::string> kSchemes = {"2SC3", "3SCC", "C4",
                                                    "2CS"};
  const std::vector<Workload> workloads = table2_workloads();
  std::vector<RunTemplate> grid;
  for (std::size_t s = 0; s < kSchemes.size(); ++s)
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      JsonValue req = JsonValue::object();
      req.set("id", JsonValue("@"));
      req.set("type", JsonValue("run"));
      req.set("scheme", JsonValue(kSchemes[s]));
      JsonValue benches = JsonValue::array();
      for (const std::string& b : workloads[w].benchmarks)
        benches.push_back(JsonValue(b));
      req.set("benchmarks", std::move(benches));
      JsonValue cfg = JsonValue::object();
      cfg.set("fast", JsonValue(true));
      cfg.set("budget", JsonValue(static_cast<std::int64_t>(budget)));
      req.set("config", std::move(cfg));
      grid.push_back({req.dump(-1), s * workloads.size() + w});
    }
  return grid;
}

struct ConnStats {
  std::vector<double> latencies_us;
  // key -> "result" payload (compact); first occurrence wins, repeats
  // must match byte for byte.
  std::map<std::size_t, std::string> payload_by_key;
  std::size_t ok = 0;
  std::size_t errors = 0;
};

/// Drives `count` requests over one connection with a bounded pipeline
/// window, rotating through the grid starting at `offset`.
ConnStats drive_connection(std::uint16_t port,
                           const std::vector<RunTemplate>& grid,
                           std::size_t conn_index, std::size_t count,
                           std::size_t window) {
  using namespace cvmt;
  LineConn conn(port);
  ConnStats stats;
  std::vector<Clock::time_point> sent_at(count);
  std::vector<std::size_t> key_of(count);

  std::size_t next_send = 0;
  std::size_t answered = 0;
  const auto send_one = [&]() -> bool {
    const RunTemplate& t = grid[(conn_index + next_send) % grid.size()];
    std::string line = t.line;
    const std::size_t at = line.find('@');
    line.replace(at, 1,
                 "c" + std::to_string(conn_index) + "-" +
                     std::to_string(next_send));
    key_of[next_send] = t.key;
    sent_at[next_send] = Clock::now();
    ++next_send;
    return conn.send_line(std::move(line));
  };

  while (answered < count) {
    while (next_send < count && next_send - answered < window)
      if (!send_one()) throw CheckError("bench_serve: send failed");
    const std::string line = conn.recv_line();
    if (line.empty())
      throw CheckError("bench_serve: server closed the connection");
    const Clock::time_point now = Clock::now();
    const JsonValue resp = JsonValue::parse(line);
    const std::string& id = resp.get("id").as_string();
    const std::size_t dash = id.find('-');
    CVMT_CHECK_MSG(dash != std::string::npos, "bad response id: " + id);
    const std::size_t i = std::stoul(id.substr(dash + 1));
    CVMT_CHECK_MSG(i < next_send, "response for unsent request: " + id);
    stats.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(now - sent_at[i])
            .count());
    ++answered;
    if (resp.get("ok").as_bool()) {
      ++stats.ok;
      std::string payload = resp.get("result").dump(-1);
      auto [it, inserted] =
          stats.payload_by_key.emplace(key_of[i], std::move(payload));
      if (!inserted && it->second != resp.get("result").dump(-1))
        throw CheckError(
            "bench_serve: repeated request diverged from first "
            "occurrence (grid key " +
            std::to_string(key_of[i]) + ")");
    } else {
      ++stats.errors;
    }
  }
  return stats;
}

double percentile_us(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("bench_serve",
                 "Sustained pipelined throughput and latency of the serve "
                 "daemon under many small run requests, byte-identity "
                 "checked across every repeated request.");
  args.add_u64("budget", "N",
               "Instruction budget per thread and run (small on purpose: "
               "the load stresses dispatch and cache residency, not "
               "simulation).",
               "CVMT_BUDGET");
  args.add_u64("runs", "N", "Total run requests in the timed pass.");
  args.add_u64("connections", "N", "Concurrent pipelined connections.");
  args.add_u64("pipeline", "N", "In-flight requests per connection.");
  args.add_u64("workers", "N", "Server worker threads (0 = all cores).");
  args.add_u64("reps", "N", "Timed passes; the best (fastest) is kept.");
  args.add_string("format", "fmt",
                  "Output format: aligned table or the registry-style "
                  "JSON envelope.",
                  {}, {"table", "json"});
  args.add_string("out", "file",
                  "Write the report to this file instead of stdout "
                  "(atomic replace; diagnostics stay on stderr).");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }

  const std::uint64_t budget = args.get_u64("budget", 500);
  const std::uint64_t runs = args.get_u64("runs", 1000);
  const std::size_t connections =
      static_cast<std::size_t>(args.get_u64("connections", 4));
  const std::size_t pipeline =
      static_cast<std::size_t>(args.get_u64("pipeline", 32));
  const std::uint64_t reps = args.get_u64("reps", 3);
  if (connections == 0 || pipeline == 0 || runs == 0) {
    std::cerr << "bench_serve: --runs, --connections and --pipeline must "
                 "be positive\n";
    return 2;
  }

  ServeConfig config;
  config.port = 0;
  config.workers = static_cast<std::size_t>(args.get_u64("workers", 0));
  config.queue_capacity = 4096;
  ArtifactCache cache;  // private cache: the bench owns its warm-up
  ServeServer server(config, cache);
  server.start();
  const std::uint16_t port = server.port();

  const std::vector<RunTemplate> grid = build_grid(budget);

  const auto one_pass = [&](std::uint64_t total) {
    std::vector<std::future<ConnStats>> futures;
    const std::size_t base = total / connections;
    const std::size_t extra = total % connections;
    for (std::size_t c = 0; c < connections; ++c)
      futures.push_back(std::async(std::launch::async, [&, c] {
        return drive_connection(port, grid, c, base + (c < extra ? 1 : 0),
                                pipeline);
      }));
    std::vector<ConnStats> results;
    for (auto& f : futures) results.push_back(f.get());
    return results;
  };

  // Warm-up pass: one full grid rotation per connection. Builds every
  // scheme and workload into the cache (the residency the timed pass
  // measures) and seeds the byte-identity baselines.
  std::map<std::size_t, std::string> baseline;
  for (const ConnStats& s : one_pass(grid.size() * connections)) {
    if (s.errors != 0) {
      std::cerr << "bench_serve: warm-up saw " << s.errors
                << " error responses\n";
      return 1;
    }
    for (const auto& [key, payload] : s.payload_by_key) {
      auto [it, inserted] = baseline.emplace(key, payload);
      if (!inserted && it->second != payload) {
        std::cerr << "bench_serve: warm-up responses diverged across "
                     "connections (grid key "
                  << key << ")\n";
        return 1;
      }
    }
  }

  // Timed passes: best-of-reps wall clock (the robust throughput
  // estimator on a shared machine); latencies pooled across all passes.
  double best_wall_s = 0.0;
  std::vector<double> latencies;
  std::size_t total_ok = 0;
  for (std::uint64_t r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    std::vector<ConnStats> results = one_pass(runs);
    const double wall = seconds_since(start);
    if (r == 0 || wall < best_wall_s) best_wall_s = wall;
    for (const ConnStats& s : results) {
      if (s.errors != 0) {
        std::cerr << "bench_serve: timed pass saw " << s.errors
                  << " error responses\n";
        return 1;
      }
      total_ok += s.ok;
      latencies.insert(latencies.end(), s.latencies_us.begin(),
                       s.latencies_us.end());
      for (const auto& [key, payload] : s.payload_by_key) {
        const auto it = baseline.find(key);
        if (it != baseline.end() && it->second != payload) {
          std::cerr << "bench_serve: timed response diverged from "
                       "warm-up baseline (grid key "
                    << key << ")\n";
          return 1;
        }
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());

  const JsonValue stats = server.stats_json();
  const double hit_rate =
      stats.get("cache").get("hit_rate").as_double();
  server.stop();

  BenchReport report;
  report.id = "bench-serve";
  report.description =
      "Sustained pipelined run-request throughput and latency of the "
      "serve daemon; byte-identity checked across every repeated "
      "request.";
  report.params.set("budget", JsonValue(static_cast<std::int64_t>(budget)));
  report.params.set("runs", JsonValue(static_cast<std::int64_t>(runs)));
  report.params.set("connections",
                    JsonValue(static_cast<std::int64_t>(connections)));
  report.params.set("pipeline",
                    JsonValue(static_cast<std::int64_t>(pipeline)));
  report.params.set("reps", JsonValue(static_cast<std::int64_t>(reps)));

  ResultSection throughput;
  // No run parameters in section titles: CI regenerates this report at a
  // smaller load and structure-diffs titles+columns against the committed
  // baseline.
  throughput.title = "Serve: sustained pipelined run throughput";
  throughput.data = Dataset(
      {ColumnSpec::integer("Connections"), ColumnSpec::integer("Pipeline"),
       ColumnSpec::integer("Workers"), ColumnSpec::integer("Runs"),
       ColumnSpec::real("Wall s", 3), ColumnSpec::real("Runs/s", 0)});
  throughput.data.add_row(
      {static_cast<std::int64_t>(connections),
       static_cast<std::int64_t>(pipeline),
       static_cast<std::int64_t>(server.num_workers()),
       static_cast<std::int64_t>(runs), best_wall_s,
       static_cast<double>(runs) / best_wall_s});
  report.sections.push_back(std::move(throughput));

  ResultSection latency;
  latency.title = "Serve: request latency percentiles";
  latency.data = Dataset({ColumnSpec::str("Percentile"),
                          ColumnSpec::real("Latency us", 0)});
  latency.data.add_row({std::string("p50"), percentile_us(latencies, 0.50)});
  latency.data.add_row({std::string("p90"), percentile_us(latencies, 0.90)});
  latency.data.add_row({std::string("p99"), percentile_us(latencies, 0.99)});
  latency.data.add_row(
      {std::string("max"),
       latencies.empty() ? 0.0 : latencies.back()});
  latency.note = "\nBest-of-" + std::to_string(reps) +
                 " wall clock; latency pooled over all passes (" +
                 std::to_string(latencies.size()) +
                 " requests), send-to-response as seen by the client "
                 "thread, pipelining included.\n";
  report.sections.push_back(std::move(latency));

  ResultSection headline;
  headline.title = "Headline";
  headline.data = Dataset({ColumnSpec::str("Metric"),
                           ColumnSpec::real("Value", 2)});
  headline.data.add_row({std::string("sustained runs/s"),
                         static_cast<double>(runs) / best_wall_s});
  headline.data.add_row({std::string("artifact cache hit rate"), hit_rate});
  headline.note =
      "\nAll " + std::to_string(total_ok) +
      " timed responses byte-identical to their warm-up baselines "
      "(per grid key).\n";
  report.sections.push_back(std::move(headline));

  return emit_bench_report(report, args.get_string("format", "table"),
                           args.get_string("out", ""));
}
