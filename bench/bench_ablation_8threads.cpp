// Extension bench (paper's "support more threads" motivation): 8-thread
// merging schemes built with the general scheme grammar, on doubled
// Table 2 workloads. Compares pure CSMT, one-SMT-block mixes and the cost
// of each, showing the paper's trade-off extends past 4 threads.
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

namespace {

using namespace cvmt;

Scheme mixed_8t(int smt_levels) {
  std::vector<MergeKind> levels(7, MergeKind::kCsmt);
  for (int i = 0; i < smt_levels; ++i) levels[static_cast<std::size_t>(i)] =
      MergeKind::kSmt;
  return Scheme::cascade(levels);
}

}  // namespace

int main() {
  using namespace cvmt;
  ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout,
               "Ablation: 8-thread schemes (beyond the paper's 4)");

  // The tree entry demonstrates the functional grammar: two 4-thread
  // halves, each 2SC3-style, joined by CSMT.
  const Scheme tree8 =
      Scheme::parse("C(CP(S(0,1),2,3),CP(S(4,5),6,7))");
  const std::vector<Scheme> all = {Scheme::parallel_csmt(8), mixed_8t(0),
                                   mixed_8t(1), mixed_8t(2), tree8};

  // One batch for the whole table: scheme si, workload w at si*W+w, each
  // workload doubled to 8 software threads on 8 contexts.
  const auto& wls = table2_workloads();
  std::vector<BatchJob> jobs;
  jobs.reserve(all.size() * wls.size());
  for (const Scheme& s : all) {
    for (const Workload& w : wls) {
      BatchJob job = make_job(s, w, cfg.sim);
      job.benchmarks.insert(job.benchmarks.end(), w.benchmarks.begin(),
                            w.benchmarks.end());
      jobs.push_back(std::move(job));
    }
  }
  const std::vector<double> avg =
      group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());

  TableWriter t({"Scheme", "Avg IPC", "Transistors", "Gate delays"});
  for (std::size_t si = 0; si < all.size(); ++si) {
    const SchemeCost c = scheme_cost(all[si], cfg.sim.machine);
    t.add_row({all[si].name(), format_fixed(avg[si], 2),
               format_grouped(c.transistors),
               format_fixed(c.gate_delay, 1)});
  }
  emit(std::cout, t);
  std::cout << "\nReading: one SMT level recovers most of the merging\n"
               "opportunity even at 8 threads, at a fraction of the cost\n"
               "of deeper SMT cascades (the paper's trade-off, extended).\n";
  return 0;
}
