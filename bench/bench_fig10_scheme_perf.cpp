// Reproduces Fig 10: IPC of every merging scheme on every Table 2
// workload, plus the workload average and the paper's grouped view
// (schemes whose selections coincide or differ by <1% are grouped in the
// paper's legend).
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

namespace {

/// The paper's legend groups, in its bottom-to-top order.
const std::vector<std::vector<std::string>>& legend_groups() {
  static const std::vector<std::vector<std::string>> kGroups = {
      {"1S"},
      {"3CCC", "C4"},
      {"2CC"},
      {"2CS"},
      {"2SC3", "2C3S", "3CCS", "3CSC", "3SCC"},
      {"3CSS", "3SSC", "3SCS"},
      {"2SC"},
      {"2SS"},
      {"3SSS"},
  };
  return kGroups;
}

}  // namespace

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Figure 10: merging schemes performance (IPC)");
  const Fig10Result f = run_fig10(cfg);
  emit(std::cout, render_fig10(f));

  // Grouped view as in the paper's legend.
  TableWriter grouped({"Group", "Avg IPC"});
  for (const auto& group : legend_groups()) {
    double sum = 0.0;
    std::string label;
    for (const auto& s : group) {
      sum += f.average_of(s);
      label += (label.empty() ? "" : ",") + s;
    }
    grouped.add_row({label,
                     format_fixed(sum / static_cast<double>(group.size()),
                                  2)});
  }
  print_banner(std::cout, "Grouped (paper legend)");
  emit(std::cout, grouped);

  print_banner(std::cout, "Headline relations");
  print_headlines(std::cout, headline_relations(f));
  return 0;
}
