// Sensitivity of the scheme trade-off to the memory system: the paper
// fixes a 20-cycle miss penalty (400MHz, 50ns DRAM). Sweeping the penalty
// shows why multithreading pays: longer memory stalls widen every
// multithreaded scheme's lead over 1S, while the 2SC3-vs-3CCC gap — a
// property of the merge networks, not the memory — barely moves.
//
// Note: the Table 1 IPCr calibration assumes 20 cycles, so absolute IPCs
// at other penalties are not paper numbers; the relations are the point.
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

namespace {

using namespace cvmt;

double average_ipc(const Scheme& scheme, const SimConfig& sim,
                   ProgramLibrary& lib) {
  const auto& wls = table2_workloads();
  std::vector<double> ipcs(wls.size(), 0.0);
#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t w = 0; w < wls.size(); ++w)
    ipcs[w] = run_workload(scheme, wls[w], lib, sim).ipc;
  double sum = 0.0;
  for (double v : ipcs) sum += v;
  return sum / static_cast<double>(wls.size());
}

}  // namespace

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Sensitivity: DCache/ICache miss penalty");

  ProgramLibrary lib(cfg.sim.machine);
  lib.build_all();

  TableWriter t({"Miss penalty", "1S", "3CCC", "2SC3", "3SSS",
                 "2SC3 vs 3CCC", "3SSS vs 1S"});
  for (int penalty : {5, 10, 20, 40, 80}) {
    SimConfig sim = cfg.sim;
    sim.mem.icache.miss_penalty = penalty;
    sim.mem.dcache.miss_penalty = penalty;
    const double s1 = average_ipc(Scheme::parse("1S"), sim, lib);
    const double ccc = average_ipc(Scheme::parse("3CCC"), sim, lib);
    const double sc3 = average_ipc(Scheme::parse("2SC3"), sim, lib);
    const double sss = average_ipc(Scheme::parse("3SSS"), sim, lib);
    t.add_row({std::to_string(penalty), format_fixed(s1, 2),
               format_fixed(ccc, 2), format_fixed(sc3, 2),
               format_fixed(sss, 2),
               format_fixed(percent_diff(sc3, ccc), 1) + "%",
               format_fixed(percent_diff(sss, s1), 1) + "%"});
  }
  emit(std::cout, t);
  return 0;
}
