// Sensitivity of the scheme trade-off to the memory system: the paper
// fixes a 20-cycle miss penalty (400MHz, 50ns DRAM). Sweeping the penalty
// shows why multithreading pays: longer memory stalls widen every
// multithreaded scheme's lead over 1S, while the 2SC3-vs-3CCC gap — a
// property of the merge networks, not the memory — barely moves.
//
// Note: the Table 1 IPCr calibration assumes 20 cycles, so absolute IPCs
// at other penalties are not paper numbers; the relations are the point.
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Sensitivity: DCache/ICache miss penalty");

  TableWriter t({"Miss penalty", "1S", "3CCC", "2SC3", "3SSS",
                 "2SC3 vs 3CCC", "3SSS vs 1S"});
  const char* names[] = {"1S", "3CCC", "2SC3", "3SSS"};
  for (int penalty : {5, 10, 20, 40, 80}) {
    SimConfig sim = cfg.sim;
    sim.mem.icache.miss_penalty = penalty;
    sim.mem.dcache.miss_penalty = penalty;

    // One batch per penalty: every scheme on every workload.
    const auto& wls = table2_workloads();
    std::vector<BatchJob> jobs;
    jobs.reserve(std::size(names) * wls.size());
    for (const char* name : names)
      for (const Workload& w : wls)
        jobs.push_back(make_job(Scheme::parse(name), w, sim));
    const std::vector<double> avg =
        group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());
    const double s1 = avg[0], ccc = avg[1], sc3 = avg[2], sss = avg[3];
    t.add_row({std::to_string(penalty), format_fixed(s1, 2),
               format_fixed(ccc, 2), format_fixed(sc3, 2),
               format_fixed(sss, 2),
               format_fixed(percent_diff(sc3, ccc), 1) + "%",
               format_fixed(percent_diff(sss, s1), 1) + "%"});
  }
  emit(std::cout, t);
  return 0;
}
