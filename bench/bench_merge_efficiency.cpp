// Merge-efficiency diagnostics: for each scheme, how many threads issue
// per cycle and where the merge checks fail. This is the mechanism view
// behind Fig 10 — e.g. why 2SC3 recovers most of 3SSS: its single SMT
// block accepts nearly every pair, and the CSMT levels only have to catch
// the leftovers.
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace cvmt;
  ExperimentConfig cfg = ExperimentConfig::from_env();
  // This diagnostic reads per-block reject rates and the issued histogram,
  // so it needs full merge statistics regardless of CVMT_STATS.
  cfg.sim.stats = StatsLevel::kFull;
  print_banner(std::cout, "Merge efficiency per scheme (workload LMHH)");

  ProgramLibrary lib(cfg.sim.machine);
  lib.build_all();
  const Workload* wl = nullptr;
  for (const Workload& w : table2_workloads())
    if (w.ilp_combo == "LMHH") wl = &w;

  TableWriter t({"Scheme", "IPC", "avg issued", "0 thr %", "1 thr %",
                 "2 thr %", "3 thr %", "4 thr %", "reject % per block"});
  for (const char* name :
       {"1S", "3CCC", "2CC", "2SC3", "2CS", "2SC", "3SSC", "3SSS"}) {
    const SimResult r =
        run_workload(Scheme::parse(name), *wl, lib, cfg.sim);
    std::vector<std::string> row{name, format_fixed(r.ipc, 2),
                                 format_fixed(r.issued_per_cycle.mean(), 2)};
    for (std::size_t k = 0; k <= 4; ++k) {
      if (k < r.issued_per_cycle.num_buckets())
        row.push_back(
            format_fixed(100.0 * r.issued_per_cycle.fraction(k), 1));
      else
        row.push_back("-");
    }
    std::string rejects;
    for (const auto& n : r.merge_nodes) {
      if (!rejects.empty()) rejects += " ";
      rejects += n.label + ":" + format_fixed(100.0 * n.reject_rate(), 0);
    }
    row.push_back(rejects);
    t.add_row(std::move(row));
  }
  emit(std::cout, t);
  std::cout << "\nReading: S blocks reject far less often than C blocks;\n"
               "one early S block (2SC3) lifts the issued-threads mass\n"
               "from 1-2 (3CCC) towards 2-3 without 3SSS's hardware.\n";
  return 0;
}
