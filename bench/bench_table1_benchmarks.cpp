// Reproduces Table 1: the benchmark set with single-thread IPC under real
// memory (IPCr) and perfect memory (IPCp), paper targets side by side.
//
// Knobs: CVMT_BUDGET (instructions/thread), CVMT_FAST=1, CVMT_CSV=1.
#include <iostream>

#include "exp/report.hpp"

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout,
               "Table 1: Benchmarks (single-thread IPCr / IPCp, 4-cluster "
               "4-issue VEX)");
  std::cout << "instruction budget per thread: "
            << cfg.sim.instruction_budget << "\n\n";
  emit(std::cout, render_table1(run_table1(cfg)));
  return 0;
}
