// Multithreading baselines from the paper's related work (§1): Block
// MultiThreading (switch on long-latency events) and Interleaved
// MultiThreading (zero-cycle switch every cycle) issue ONE thread per
// cycle; the merging schemes add horizontal packing on top. This bench
// quantifies each step of that ladder on the Table 2 workloads.
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

namespace {

using namespace cvmt;

double average_ipc(const Scheme& scheme, const SimConfig& sim) {
  ProgramLibrary lib(sim.machine);
  lib.build_all();
  const auto& wls = table2_workloads();
  std::vector<double> ipcs(wls.size(), 0.0);
#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t w = 0; w < wls.size(); ++w)
    ipcs[w] = run_workload(scheme, wls[w], lib, sim).ipc;
  double sum = 0.0;
  for (double v : ipcs) sum += v;
  return sum / static_cast<double>(wls.size());
}

}  // namespace

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout,
               "Baselines: single-thread, BMT, IMT vs merging schemes");

  struct Config {
    const char* label;
    Scheme scheme;
    PriorityPolicy policy;
  };
  const std::vector<Config> ladder = {
      {"single-thread", Scheme::single_thread(),
       PriorityPolicy::kRoundRobin},
      {"BMT-4 (switch on stall)", Scheme::imt(4),
       PriorityPolicy::kStickyOnStall},
      {"IMT-4 (switch every cycle)", Scheme::imt(4),
       PriorityPolicy::kRoundRobin},
      {"CSMT-4 (3CCC)", Scheme::parse("3CCC"), PriorityPolicy::kRoundRobin},
      {"mixed (2SC3)", Scheme::parse("2SC3"), PriorityPolicy::kRoundRobin},
      {"SMT-4 (3SSS)", Scheme::parse("3SSS"), PriorityPolicy::kRoundRobin},
  };

  TableWriter t({"Configuration", "Avg IPC", "vs single"});
  double base = 0.0;
  for (const Config& c : ladder) {
    SimConfig sim = cfg.sim;
    sim.priority = c.policy;
    const double ipc = average_ipc(c.scheme, sim);
    if (base == 0.0) base = ipc;
    t.add_row({c.label, format_fixed(ipc, 2),
               format_fixed(percent_diff(ipc, base), 1) + "%"});
  }
  emit(std::cout, t);
  std::cout << "\nLadder: IMT/BMT reclaim vertical waste caused by stalls\n"
               "only; CSMT additionally packs cluster-disjoint packets;\n"
               "SMT packs at operation level; 2SC3 buys most of the SMT\n"
               "step at a 2-thread-SMT price (the paper's point).\n";
  return 0;
}
