// Reproduces Fig 4: average IPC of the single-thread, 2-thread SMT and
// 4-thread SMT processors over the Table 2 workloads. The paper reports a
// 61% advantage of 4-thread over 2-thread SMT.
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout, "Figure 4: SMT performance vs hardware threads");
  const auto rows = run_fig4(cfg);
  emit(std::cout, render_fig4(rows));
  if (rows.size() == 3 && rows[1].avg_ipc > 0.0)
    std::cout << "\n4-thread vs 2-thread gain: "
              << format_fixed(percent_diff(rows[2].avg_ipc, rows[1].avg_ipc),
                              1)
              << "% (paper: 61%)\n";
  return 0;
}
