// Micro-benchmarks (google-benchmark) of the hot components: merge-engine
// selection for representative schemes, footprint predicates, cache
// accesses, trace generation and end-to-end simulated cycles/second.
#include <benchmark/benchmark.h>

#include <array>

#include "core/merge_engine.hpp"
#include "mem/cache.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace cvmt;

const MachineConfig kM = MachineConfig::vex4x4();

std::vector<Footprint> random_footprints(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Footprint> fps;
  fps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Instruction instr;
    std::uint32_t used[kMaxClusters] = {};
    const int k = 1 + static_cast<int>(rng.next_below(6));
    for (int j = 0; j < k; ++j) {
      const int c = static_cast<int>(rng.next_below(4));
      for (int s = 0; s < 4; ++s) {
        if ((used[c] & (1u << s)) == 0) {
          used[c] |= 1u << s;
          instr.add(make_alu(c, s));
          break;
        }
      }
    }
    fps.push_back(Footprint::of(instr, kM));
  }
  return fps;
}

void BM_MergeEngineSelect(benchmark::State& state,
                          const std::string& scheme_name) {
  MergeEngine engine(Scheme::parse(scheme_name), kM);
  const auto pool = random_footprints(1024, 99);
  std::size_t i = 0;
  const int n = engine.scheme().num_threads();
  for (auto _ : state) {
    std::array<const Footprint*, kMaxThreads> cands{};
    for (int t = 0; t < n; ++t)
      cands[static_cast<std::size_t>(t)] = &pool[(i + static_cast<
          std::size_t>(t) * 37) & 1023];
    ++i;
    benchmark::DoNotOptimize(engine.select(
        std::span<const Footprint* const>(cands.data(),
                                          static_cast<std::size_t>(n))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_MergeEngineSelect, scheme_3SSS, std::string("3SSS"));
BENCHMARK_CAPTURE(BM_MergeEngineSelect, scheme_3CCC, std::string("3CCC"));
BENCHMARK_CAPTURE(BM_MergeEngineSelect, scheme_2SC3, std::string("2SC3"));
BENCHMARK_CAPTURE(BM_MergeEngineSelect, scheme_C4, std::string("C4"));

void BM_SmtCompatibility(benchmark::State& state) {
  const auto pool = random_footprints(1024, 7);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Footprint::smt_compatible(
        pool[i & 1023], pool[(i * 31 + 7) & 1023], kM));
    ++i;
  }
}
BENCHMARK(BM_SmtCompatibility);

void BM_CacheAccess(benchmark::State& state) {
  SetAssocCache cache(CacheConfig{});
  Xoshiro256 rng(5);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.access(rng.next_below(1u << 22)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_TraceGeneration(benchmark::State& state) {
  ProgramLibrary lib(kM);
  TraceGenerator gen(lib.get("djpeg"), 3);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceGeneration);

void BM_EndToEndSimulation(benchmark::State& state) {
  ProgramLibrary lib(kM);
  std::vector<std::shared_ptr<const SyntheticProgram>> progs = {
      lib.get("mcf"), lib.get("djpeg"), lib.get("idct"), lib.get("x264")};
  SimConfig cfg;
  cfg.instruction_budget = 20'000;
  cfg.timeslice_cycles = 5'000;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const SimResult r = run_simulation(Scheme::parse("2SC3"), progs, cfg);
    cycles += r.cycles;
    benchmark::DoNotOptimize(r.total_ops);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

}  // namespace
