// Wall-clock validation of the batch experiment runner: runs the full
// Fig 10 grid (16 schemes x 9 Table 2 workloads = 144 independent jobs)
// serially (1 worker) and through the worker pool (CVMT_WORKERS or all
// cores), verifies the IPC tables are bit-identical, and reports the
// speedup. On an 8-core machine the parallel path is expected to be
// >= 3x faster; on a single core it degenerates to ~1x by construction.
#include <chrono>
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace cvmt;

double timed_seconds(Fig10Result& out, const ExperimentConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  out = run_fig10(cfg);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  using namespace cvmt;
  print_banner(std::cout, "Batch runner: serial vs parallel Fig 10 grid");

  ExperimentConfig serial_cfg = ExperimentConfig::from_env();
  serial_cfg.batch.workers = 1;
  ExperimentConfig parallel_cfg = ExperimentConfig::from_env();

  // Warm the process-wide program-library cache so neither timed run
  // pays the one-time build cost (library_for caches per machine).
  {
    SimConfig warm = serial_cfg.sim;
    warm.instruction_budget = 1'000;
    warm.timeslice_cycles = 1'000;
    const std::vector<BatchJob> jobs = {
        make_job(Scheme::single_thread(), table2_workloads().front(), warm)};
    (void)run_batch_ipc(jobs, serial_cfg.batch);
  }

  Fig10Result serial, parallel;
  const double serial_s = timed_seconds(serial, serial_cfg);
  const double parallel_s = timed_seconds(parallel, parallel_cfg);

  bool identical = serial.schemes == parallel.schemes &&
                   serial.workloads == parallel.workloads &&
                   serial.average == parallel.average;
  for (std::size_t w = 0; identical && w < serial.ipc.size(); ++w)
    identical = serial.ipc[w] == parallel.ipc[w];

  const unsigned workers =
      resolve_workers(parallel_cfg.batch,
                      serial.schemes.size() * serial.workloads.size());
  TableWriter t({"Path", "Workers", "Wall-clock (s)", "Speedup"});
  t.add_row({"serial", "1", format_fixed(serial_s, 2), "1.00x"});
  t.add_row({"batch runner", std::to_string(workers),
             format_fixed(parallel_s, 2),
             format_fixed(serial_s / parallel_s, 2) + "x"});
  emit(std::cout, t);

  std::cout << "\nIPC tables bit-identical: " << (identical ? "yes" : "NO")
            << " (hardware cores: " << ThreadPool::hardware_workers()
            << ")\n";
  return identical ? 0 : 1;
}
