// Machine-shape ablation: the paper fixes a 4-cluster x 4-issue machine;
// this bench sweeps the (clusters, issue-width) grid at a constant-ish
// total width and shows how the scheme trade-off shifts. More clusters
// favour CSMT (finer-grained cluster allocation); wider clusters favour
// SMT (more room to pack operations).
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

namespace {

using namespace cvmt;

double average_ipc(const Scheme& scheme, const SimConfig& sim,
                   ProgramLibrary& lib) {
  const auto& wls = table2_workloads();
  std::vector<double> ipcs(wls.size(), 0.0);
#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t w = 0; w < wls.size(); ++w)
    ipcs[w] = run_workload(scheme, wls[w], lib, sim).ipc;
  double sum = 0.0;
  for (double v : ipcs) sum += v;
  return sum / static_cast<double>(wls.size());
}

}  // namespace

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout,
               "Ablation: machine shape (clusters x issue width)");

  const std::pair<int, int> shapes[] = {
      {2, 8}, {4, 4}, {8, 2},  // constant 16-wide
      {4, 2}, {2, 4},          // 8-wide points
  };
  const char* schemes[] = {"1S", "3CCC", "2SC3", "3SSS"};

  TableWriter t({"Machine", "Total width", "1S", "3CCC", "2SC3", "3SSS",
                 "2SC3 vs 3CCC"});
  for (const auto& [clusters, width] : shapes) {
    const MachineConfig machine = MachineConfig::clustered(clusters, width);
    SimConfig sim = cfg.sim;
    sim.machine = machine;
    ProgramLibrary lib(machine);
    lib.build_all();
    std::vector<std::string> row{
        std::to_string(clusters) + "x" + std::to_string(width),
        std::to_string(machine.total_issue_width())};
    double csmt = 0.0, mixed = 0.0;
    for (const char* s : schemes) {
      const double ipc = average_ipc(Scheme::parse(s), sim, lib);
      if (std::string(s) == "3CCC") csmt = ipc;
      if (std::string(s) == "2SC3") mixed = ipc;
      row.push_back(format_fixed(ipc, 2));
    }
    row.push_back(format_fixed(percent_diff(mixed, csmt), 1) + "%");
    t.add_row(std::move(row));
  }
  emit(std::cout, t);
  std::cout << "\nNote: on machines narrower than 16 issue slots the\n"
               "high-ILP profiles cannot reach their Table 1 IPCp, so\n"
               "compare schemes within a row, not across rows.\n";
  return 0;
}
