// Machine-shape ablation: the paper fixes a 4-cluster x 4-issue machine;
// this bench sweeps the (clusters, issue-width) grid at a constant-ish
// total width and shows how the scheme trade-off shifts. More clusters
// favour CSMT (finer-grained cluster allocation); wider clusters favour
// SMT (more room to pack operations).
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace cvmt;
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  print_banner(std::cout,
               "Ablation: machine shape (clusters x issue width)");

  const std::pair<int, int> shapes[] = {
      {2, 8}, {4, 4}, {8, 2},  // constant 16-wide
      {4, 2}, {2, 4},          // 8-wide points
  };
  const char* schemes[] = {"1S", "3CCC", "2SC3", "3SSS"};

  TableWriter t({"Machine", "Total width", "1S", "3CCC", "2SC3", "3SSS",
                 "2SC3 vs 3CCC"});
  for (const auto& [clusters, width] : shapes) {
    const MachineConfig machine = MachineConfig::clustered(clusters, width);
    SimConfig sim = cfg.sim;
    sim.machine = machine;

    // One batch per machine shape: every scheme on every workload.
    const auto& wls = table2_workloads();
    std::vector<BatchJob> jobs;
    jobs.reserve(std::size(schemes) * wls.size());
    for (const char* s : schemes)
      for (const Workload& w : wls)
        jobs.push_back(make_job(Scheme::parse(s), w, sim));
    const std::vector<double> avg =
        group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());

    std::vector<std::string> row{
        std::to_string(clusters) + "x" + std::to_string(width),
        std::to_string(machine.total_issue_width())};
    double csmt = 0.0, mixed = 0.0;
    for (std::size_t si = 0; si < std::size(schemes); ++si) {
      if (std::string(schemes[si]) == "3CCC") csmt = avg[si];
      if (std::string(schemes[si]) == "2SC3") mixed = avg[si];
      row.push_back(format_fixed(avg[si], 2));
    }
    row.push_back(format_fixed(percent_diff(mixed, csmt), 1) + "%");
    t.add_row(std::move(row));
  }
  emit(std::cout, t);
  std::cout << "\nNote: on machines narrower than 16 issue slots the\n"
               "high-ILP profiles cannot reach their Table 1 IPCp, so\n"
               "compare schemes within a row, not across rows.\n";
  return 0;
}
