// Reproduces Table 2: the nine multiprogrammed workload configurations,
// annotated with each thread's measured single-thread IPC so the ILP
// labels can be checked against the simulated reality.
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace cvmt;
  print_banner(std::cout, "Table 2: Workload configurations");
  emit(std::cout, render_table2());

  const ExperimentConfig cfg = ExperimentConfig::from_env();
  const auto t1 = run_table1(cfg);
  TableWriter detail({"Workload", "Thread", "Benchmark", "ILP",
                      "IPCr (sim)"});
  for (const Workload& w : table2_workloads()) {
    for (int t = 0; t < 4; ++t) {
      const auto& name = w.benchmarks[static_cast<std::size_t>(t)];
      for (const Table1Row& row : t1)
        if (row.name == name)
          detail.add_row({w.ilp_combo, std::to_string(t), name,
                          std::string(1, row.ilp),
                          format_fixed(row.sim_ipc_real, 2)});
    }
    detail.add_separator();
  }
  print_banner(std::cout, "Per-thread detail");
  emit(std::cout, detail);
  return 0;
}
