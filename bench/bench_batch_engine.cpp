// Wall-clock validation of the lockstep batch engine: the dense
// many-small-runs grid (every paper scheme x every Table 2 workload)
// executed through the PR 5 session-reuse baseline and through SimBatch
// at a sweep of lane counts, at a sweep of run budgets. The baseline is
// deliberately the *strong* one — SimSession already compiles schemes
// once and resets instances in place — so the measured speedup is what
// the batch engine adds on top: no per-run session key lookup or config
// copy, no per-run OsScheduler/policy construction, arena-pooled thread
// contexts, batch-shared stream recordings replayed across the scheme
// grid, and affinity-aware lane refill.
//
// Every batch result must be bit-identical to its session twin on every
// SimResult counter (the process exits non-zero otherwise); the headline
// number is the small-budget throughput ratio at the widest lane count.
// Small budgets are the fuzz/shrink regime: one oracle configuration or
// one shrink candidate is a run of a few thousand cycles, and sweeps of
// those are where per-run overhead dominates. Deliberately not a registry
// experiment (wall-clock output); the perf trajectory records it via
// --format=json as BENCH_batch_engine.json, structure-diffed in CI.
//
//   ./bench_batch_engine [--budget=N] [--timeslice=N] [--reps=N]
//                        [--format=table|json] [--out=FILE]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/bench_artifact.hpp"
#include "sim/batch_engine.hpp"
#include "sim/session.hpp"
#include "support/args.hpp"
#include "testgen/oracle.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("bench_batch_engine",
                 "Lockstep batch-engine throughput vs the session-reuse "
                 "baseline over a lane-count x run-budget sweep, "
                 "bit-identity checked on every grid point.");
  args.add_u64("budget", "N",
               "Small-regime instruction budget per thread and run; the "
               "sweep also measures 10x this.",
               "CVMT_BUDGET");
  args.add_u64("timeslice", "N", "OS timeslice in cycles.",
               "CVMT_TIMESLICE");
  args.add_u64("reps", "N", "Grid repetitions per timed pass.");
  args.add_string("format", "fmt",
                  "Output format: aligned table or the registry-style "
                  "JSON envelope.",
                  {}, {"table", "json"});
  args.add_string("out", "file",
                  "Write the report to this file instead of stdout "
                  "(atomic replace; diagnostics stay on stderr).");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }

  const std::uint64_t small_budget = args.get_u64("budget", 40);
  const std::uint64_t timeslice = args.get_u64("timeslice", 50);
  const std::uint64_t reps = args.get_u64("reps", 6);
  const std::vector<int> lane_counts = {1, 2, 4, 8};

  // The grid: 16 paper schemes x 9 workloads, artifacts shared by both
  // paths (compilation cost is not under test).
  const std::vector<Scheme> schemes = Scheme::paper_schemes_4t();
  ArtifactCache& artifacts = ArtifactCache::global();
  std::vector<std::shared_ptr<const CompiledScheme>> compiled;
  for (const Scheme& s : schemes)
    compiled.push_back(artifacts.scheme(s, MachineConfig::vex4x4()));
  std::vector<std::shared_ptr<const CompiledWorkload>> workloads;
  for (const Workload& wl : table2_workloads())
    workloads.push_back(
        artifacts.workload(wl.benchmarks, MachineConfig::vex4x4()));
  const std::size_t grid_points = schemes.size() * workloads.size();

  SimSession session(artifacts);
  // One persistent batch per lane count, symmetric with the persistent
  // session: both paths keep their warm state (compiled artifacts and
  // instances there; arena pools and stream recordings here) across
  // passes, so the timed loop measures steady-state sweep
  // throughput on both sides.
  std::vector<std::unique_ptr<SimBatch>> batches;
  for (const int lanes : lane_counts)
    batches.push_back(std::make_unique<SimBatch>(lanes));
  // The decomposition pair: the widest-lane batch above runs with the
  // window kernels at their default (on); this twin runs the same grid
  // with CVMT_BATCH_KERNELS forced off, isolating what the structural
  // ICache + fused replay kernels add on top of plain lockstep.
  SimBatch nokernel(lane_counts.back());
  nokernel.set_kernels_enabled(false);
  Dataset grid({ColumnSpec::integer("Budget"), ColumnSpec::str("Path"),
                ColumnSpec::real("Wall s", 3),
                ColumnSpec::real("Runs/s", 0),
                ColumnSpec::real("Speedup", 2, "x")});
  Dataset kernels({ColumnSpec::integer("Budget"),
                   ColumnSpec::integer("Fused"),
                   ColumnSpec::integer("Structural"),
                   ColumnSpec::integer("Generic"),
                   ColumnSpec::real("Off s", 3), ColumnSpec::real("On s", 3),
                   ColumnSpec::real("Kernel gain", 2, "x")});
  double headline_speedup = 0.0;

  for (const std::uint64_t budget : {small_budget, small_budget * 10}) {
    SimConfig cfg;
    cfg.instruction_budget = budget;
    cfg.timeslice_cycles = timeslice;
    cfg.stats = StatsLevel::kFast;  // the sweep configuration of the paper

    const auto session_pass = [&](std::vector<SimResult>* results) {
      for (const Scheme& scheme : schemes)
        for (const auto& wl : workloads) {
          SimResult r = session.run(scheme, wl->programs, cfg);
          if (results != nullptr) results->push_back(std::move(r));
        }
    };
    const auto batch_pass = [&](std::size_t lane_idx,
                                std::vector<SimResult>* results) {
      SimBatch& batch = *batches[lane_idx];
      for (std::size_t s = 0; s < schemes.size(); ++s)
        for (const auto& wl : workloads) {
          BatchRunSpec spec;
          spec.scheme = compiled[s];
          // Aliasing share of the compiled workload's programs vector:
          // grid submission bumps one refcount per job instead of
          // copying the vector (the session path passes a const ref).
          spec.shared_programs = {wl, &wl->programs};
          spec.config = cfg;
          batch.enqueue(std::move(spec));
        }
      std::vector<SimResult> out = batch.run_all();
      if (results != nullptr) *results = std::move(out);
    };

    const auto nokernel_pass = [&](std::vector<SimResult>* results) {
      for (std::size_t s = 0; s < schemes.size(); ++s)
        for (const auto& wl : workloads) {
          BatchRunSpec spec;
          spec.scheme = compiled[s];
          spec.shared_programs = {wl, &wl->programs};
          spec.config = cfg;
          nokernel.enqueue(std::move(spec));
        }
      std::vector<SimResult> out = nokernel.run_all();
      if (results != nullptr) *results = std::move(out);
    };

    // Warm-up pass of every path, doubling as the bit-identity check:
    // each lane count's grid — kernels on and off — must equal the
    // session baseline's on every counter. A hard guarantee, not a
    // benchmark nicety.
    std::vector<SimResult> baseline;
    baseline.reserve(grid_points);
    session_pass(&baseline);
    const SimBatch::KernelStats stats_before =
        batches.back()->kernel_stats();
    for (std::size_t l = 0; l < lane_counts.size(); ++l) {
      std::vector<SimResult> batched;
      batch_pass(l, &batched);
      for (std::size_t i = 0; i < grid_points; ++i) {
        const std::string mismatch =
            compare_sim_results(baseline[i], batched[i],
                                /*compare_merge_stats=*/true);
        if (!mismatch.empty()) {
          std::cerr << "bench_batch_engine: budget " << budget
                    << " lanes " << lane_counts[l] << " grid point " << i
                    << " diverged: " << mismatch << '\n';
          return 1;
        }
      }
    }
    const SimBatch::KernelStats stats_after = batches.back()->kernel_stats();
    {
      std::vector<SimResult> batched;
      nokernel_pass(&batched);
      for (std::size_t i = 0; i < grid_points; ++i) {
        const std::string mismatch =
            compare_sim_results(baseline[i], batched[i],
                                /*compare_merge_stats=*/true);
        if (!mismatch.empty()) {
          std::cerr << "bench_batch_engine: budget " << budget
                    << " kernels off grid point " << i
                    << " diverged: " << mismatch << '\n';
          return 1;
        }
      }
    }

    // Timed passes, alternating, best-of-reps per path.
    double session_s = 0.0;
    double nokernel_s = 0.0;
    std::vector<double> batch_s(lane_counts.size(), 0.0);
    for (std::uint64_t r = 0; r < reps; ++r) {
      auto start = Clock::now();
      session_pass(nullptr);
      const double s = seconds_since(start);
      if (r == 0 || s < session_s) session_s = s;
      for (std::size_t l = 0; l < lane_counts.size(); ++l) {
        start = Clock::now();
        batch_pass(l, nullptr);
        const double b = seconds_since(start);
        if (r == 0 || b < batch_s[l]) batch_s[l] = b;
      }
      start = Clock::now();
      nokernel_pass(nullptr);
      const double n = seconds_since(start);
      if (r == 0 || n < nokernel_s) nokernel_s = n;
    }

    grid.add_row({static_cast<std::int64_t>(budget),
                  std::string("session reuse"), session_s,
                  static_cast<double>(grid_points) / session_s, 1.0});
    for (std::size_t l = 0; l < lane_counts.size(); ++l) {
      const double speedup = session_s / batch_s[l];
      grid.add_row({static_cast<std::int64_t>(budget),
                    "batch lanes=" + std::to_string(lane_counts[l]),
                    batch_s[l],
                    static_cast<double>(grid_points) / batch_s[l],
                    speedup});
      if (budget == small_budget && speedup > headline_speedup)
        headline_speedup = speedup;
    }
    grid.add_separator();

    // Kernel decomposition at the widest lane count: how the grid split
    // across the three window paths on this budget's warm pass, and what
    // the kernels bought over the identical batch with them forced off.
    kernels.add_row(
        {static_cast<std::int64_t>(budget),
         static_cast<std::int64_t>(stats_after.fused_jobs -
                                   stats_before.fused_jobs),
         static_cast<std::int64_t>(stats_after.structural_jobs -
                                   stats_before.structural_jobs),
         static_cast<std::int64_t>(stats_after.generic_jobs -
                                   stats_before.generic_jobs),
         nokernel_s, batch_s.back(), nokernel_s / batch_s.back()});
  }

  BenchReport report;
  report.id = "bench-batch-engine";
  report.description =
      "Lockstep batch-engine throughput vs the session-reuse baseline "
      "over a lane-count x run-budget sweep; bit-identity checked on "
      "every grid point.";
  report.params.set("budget", small_budget);
  report.params.set("timeslice", timeslice);
  report.params.set("reps", reps);

  ResultSection grid_section;
  grid_section.title =
      "Batch engine: many-small-runs grid (16 schemes x 9 workloads, "
      "best of " +
      std::to_string(reps) + ")";
  grid_section.data = std::move(grid);
  report.sections.push_back(std::move(grid_section));

  ResultSection kernel_section;
  kernel_section.title =
      "Kernel decomposition (lanes=" +
      std::to_string(lane_counts.back()) +
      "): window-path job split and kernels-off twin";
  kernel_section.data = std::move(kernels);
  kernel_section.note =
      "\nFused/Structural/Generic count jobs per window path on the warm "
      "pass; Off s re-times the same grid with CVMT_BATCH_KERNELS "
      "forced off.\n";
  report.sections.push_back(std::move(kernel_section));

  ResultSection headline;
  headline.title = "Headline";
  headline.data = Dataset({ColumnSpec::str("Metric"),
                           ColumnSpec::real("Value", 2, "x")});
  headline.data.add_row(
      {std::string("small-run speedup vs session reuse"),
       headline_speedup});
  headline.note =
      "\nEvery lane count bit-identical to the session baseline on every "
      "grid point.\n";
  report.sections.push_back(std::move(headline));

  return emit_bench_report(report, args.get_string("format", "table"),
                           args.get_string("out", ""));
}
