// Scale-down validation: the paper runs 100M instructions per thread with
// 1M-cycle timeslices; this reproduction defaults to laptop-scale budgets.
// This bench shows the *relative* results (the only thing the paper's
// conclusions rest on) are stable across run lengths and timeslices,
// which is what licenses the scale-down (see EXPERIMENTS.md).
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

namespace {

using namespace cvmt;

struct Relations {
  double sc3_vs_csmt, sc3_vs_1s, smt4_vs_1s;
};

Relations measure(ProgramLibrary& lib, const SimConfig& sim) {
  const char* names[] = {"1S", "3CCC", "2SC3", "3SSS"};
  double avg[4] = {};
  const auto& wls = table2_workloads();
  for (int s = 0; s < 4; ++s) {
    std::vector<double> ipcs(wls.size(), 0.0);
#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (std::size_t w = 0; w < wls.size(); ++w)
      ipcs[w] = run_workload(Scheme::parse(names[s]), wls[w], lib, sim).ipc;
    for (double v : ipcs) avg[s] += v;
    avg[s] /= static_cast<double>(wls.size());
  }
  return {percent_diff(avg[2], avg[1]), percent_diff(avg[2], avg[0]),
          percent_diff(avg[3], avg[0])};
}

}  // namespace

int main() {
  using namespace cvmt;
  print_banner(std::cout, "Scale-down validation (paper: 100M instrs, "
                          "1M-cycle timeslice)");
  ProgramLibrary lib(MachineConfig::vex4x4());
  lib.build_all();

  TableWriter t({"Budget (instrs)", "Timeslice (cycles)", "2SC3 vs 3CCC",
                 "2SC3 vs 1S", "3SSS vs 1S"});
  const std::pair<std::uint64_t, std::uint64_t> points[] = {
      {50'000, 12'500}, {150'000, 25'000}, {400'000, 50'000},
      {400'000, 200'000}, {800'000, 100'000}};
  for (const auto& [budget, slice] : points) {
    SimConfig sim;
    sim.instruction_budget = budget;
    sim.timeslice_cycles = slice;
    const Relations r = measure(lib, sim);
    t.add_row({format_grouped(static_cast<long long>(budget)),
               format_grouped(static_cast<long long>(slice)),
               format_fixed(r.sc3_vs_csmt, 1) + "%",
               format_fixed(r.sc3_vs_1s, 1) + "%",
               format_fixed(r.smt4_vs_1s, 1) + "%"});
  }
  emit(std::cout, t);
  std::cout << "\nPaper reference points: +14%, +45%, +61%.\n";
  return 0;
}
