// Scale-down validation: the paper runs 100M instructions per thread with
// 1M-cycle timeslices; this reproduction defaults to laptop-scale budgets.
// This bench shows the *relative* results (the only thing the paper's
// conclusions rest on) are stable across run lengths and timeslices,
// which is what licenses the scale-down (see EXPERIMENTS.md).
#include <iostream>

#include "exp/report.hpp"
#include "support/string_util.hpp"

namespace {

using namespace cvmt;

struct Relations {
  double sc3_vs_csmt, sc3_vs_1s, smt4_vs_1s;
};

Relations measure(const SimConfig& sim, const BatchOptions& batch) {
  const char* names[] = {"1S", "3CCC", "2SC3", "3SSS"};
  const auto& wls = table2_workloads();

  // One batch per scale point: every scheme on every workload.
  std::vector<BatchJob> jobs;
  jobs.reserve(std::size(names) * wls.size());
  for (const char* name : names)
    for (const Workload& w : wls)
      jobs.push_back(make_job(Scheme::parse(name), w, sim));
  const std::vector<double> avg =
      group_averages(run_batch_ipc(jobs, batch), wls.size());
  return {percent_diff(avg[2], avg[1]), percent_diff(avg[2], avg[0]),
          percent_diff(avg[3], avg[0])};
}

}  // namespace

int main() {
  using namespace cvmt;
  print_banner(std::cout, "Scale-down validation (paper: 100M instrs, "
                          "1M-cycle timeslice)");
  const BatchOptions batch = ExperimentConfig::from_env().batch;

  TableWriter t({"Budget (instrs)", "Timeslice (cycles)", "2SC3 vs 3CCC",
                 "2SC3 vs 1S", "3SSS vs 1S"});
  const std::pair<std::uint64_t, std::uint64_t> points[] = {
      {50'000, 12'500}, {150'000, 25'000}, {400'000, 50'000},
      {400'000, 200'000}, {800'000, 100'000}};
  for (const auto& [budget, slice] : points) {
    SimConfig sim;
    sim.instruction_budget = budget;
    sim.timeslice_cycles = slice;
    const Relations r = measure(sim, batch);
    t.add_row({format_grouped(static_cast<long long>(budget)),
               format_grouped(static_cast<long long>(slice)),
               format_fixed(r.sc3_vs_csmt, 1) + "%",
               format_fixed(r.sc3_vs_1s, 1) + "%",
               format_fixed(r.smt4_vs_1s, 1) + "%"});
  }
  emit(std::cout, t);
  std::cout << "\nPaper reference points: +14%, +45%, +61%.\n";
  return 0;
}
