// Trace inspector: dump a window of a benchmark's dynamic VLIW stream in
// the paper's Fig 1 layout, then demonstrate the two merge checks on
// consecutive instruction pairs from two different benchmarks.
//
//   ./trace_inspector [benchmark] [count]   (--help for details)
#include <iostream>

#include "isa/footprint.hpp"
#include "support/args.hpp"
#include "trace/benchmark_suite.hpp"
#include "trace/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("trace_inspector",
                 "Dumps a window of a benchmark's dynamic VLIW stream and "
                 "demonstrates the CSMT/SMT merge checks against a second "
                 "benchmark.");
  args.add_positional("benchmark", "Table 1 benchmark name (default mcf).");
  args.add_positional("count", "Instructions to dump (default 12).");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }
  const std::string name = args.positional_or(0, "mcf");
  int count = 12;
  if (args.num_positionals() > 1) {
    count = std::atoi(args.positional(1).c_str());
    if (count <= 0) {
      std::cerr << "bad count \"" << args.positional(1)
                << "\" (expected a positive instruction count)\n";
      return 2;
    }
  }
  const MachineConfig machine = MachineConfig::vex4x4();

  ProgramLibrary library(machine);
  TraceGenerator gen(library.get(name), 1);

  std::cout << "dynamic VLIW stream of '" << name << "' (one line per\n"
            << "instruction; clusters separated by '|', '-' = empty slot):\n\n";
  for (int i = 0; i < count; ++i) {
    const Instruction& instr = gen.next();
    std::cout << (instr.empty() ? "  [bubble] " : "  ")
              << instr.to_string(machine);
    if (const Operation* br = instr.taken_branch())
      std::cout << "   <- taken branch (cluster "
                << static_cast<int>(br->cluster) << ")";
    std::cout << "\n";
  }

  // Fig 1 in miniature: pair this thread against a second one and apply
  // both merge checks.
  const std::string other_name = name == "idct" ? "mcf" : "idct";
  TraceGenerator other(library.get(other_name), 2);
  std::cout << "\nmerge checks against '" << other_name << "':\n\n";
  int csmt_ok = 0, smt_ok = 0, trials = 0;
  for (int i = 0; i < 2000; ++i) {
    const Instruction& a = gen.next();
    const Instruction& b = other.next();
    if (a.empty() || b.empty()) continue;
    const Footprint fa = Footprint::of(a, machine);
    const Footprint fb = Footprint::of(b, machine);
    ++trials;
    csmt_ok += Footprint::csmt_compatible(fa, fb) ? 1 : 0;
    smt_ok += Footprint::smt_compatible(fa, fb, machine) ? 1 : 0;
    if (i < 3) {
      std::cout << "  T0: " << a.to_string(machine) << "\n  T1: "
                << b.to_string(machine) << "\n    CSMT "
                << (Footprint::csmt_compatible(fa, fb) ? "merges"
                                                       : "conflicts")
                << ", SMT "
                << (Footprint::smt_compatible(fa, fb, machine)
                        ? "merges"
                        : "conflicts")
                << "\n\n";
    }
  }
  std::cout << "over " << trials << " non-bubble pairs: CSMT merges "
            << 100 * csmt_ok / trials << "%, SMT merges "
            << 100 * smt_ok / trials
            << "% (every CSMT-mergeable pair is SMT-mergeable)\n";
  return 0;
}
