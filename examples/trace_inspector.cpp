// Trace inspector: dump a window of a benchmark's dynamic VLIW stream in
// the paper's Fig 1 layout, then demonstrate the two merge checks on
// consecutive instruction pairs from two different benchmarks.
//
//   ./trace_inspector [benchmark] [count]
#include <iostream>

#include "isa/footprint.hpp"
#include "trace/benchmark_suite.hpp"
#include "trace/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace cvmt;
  const std::string name = argc > 1 ? argv[1] : "mcf";
  const int count = argc > 2 ? std::atoi(argv[2]) : 12;
  const MachineConfig machine = MachineConfig::vex4x4();

  ProgramLibrary library(machine);
  TraceGenerator gen(library.get(name), 1);

  std::cout << "dynamic VLIW stream of '" << name << "' (one line per\n"
            << "instruction; clusters separated by '|', '-' = empty slot):\n\n";
  for (int i = 0; i < count; ++i) {
    const Instruction& instr = gen.next();
    std::cout << (instr.empty() ? "  [bubble] " : "  ")
              << instr.to_string(machine);
    if (const Operation* br = instr.taken_branch())
      std::cout << "   <- taken branch (cluster "
                << static_cast<int>(br->cluster) << ")";
    std::cout << "\n";
  }

  // Fig 1 in miniature: pair this thread against a second one and apply
  // both merge checks.
  const std::string other_name = name == "idct" ? "mcf" : "idct";
  TraceGenerator other(library.get(other_name), 2);
  std::cout << "\nmerge checks against '" << other_name << "':\n\n";
  int csmt_ok = 0, smt_ok = 0, trials = 0;
  for (int i = 0; i < 2000; ++i) {
    const Instruction& a = gen.next();
    const Instruction& b = other.next();
    if (a.empty() || b.empty()) continue;
    const Footprint fa = Footprint::of(a, machine);
    const Footprint fb = Footprint::of(b, machine);
    ++trials;
    csmt_ok += Footprint::csmt_compatible(fa, fb) ? 1 : 0;
    smt_ok += Footprint::smt_compatible(fa, fb, machine) ? 1 : 0;
    if (i < 3) {
      std::cout << "  T0: " << a.to_string(machine) << "\n  T1: "
                << b.to_string(machine) << "\n    CSMT "
                << (Footprint::csmt_compatible(fa, fb) ? "merges"
                                                       : "conflicts")
                << ", SMT "
                << (Footprint::smt_compatible(fa, fb, machine)
                        ? "merges"
                        : "conflicts")
                << "\n\n";
    }
  }
  std::cout << "over " << trials << " non-bubble pairs: CSMT merges "
            << 100 * csmt_ok / trials << "%, SMT merges "
            << 100 * smt_ok / trials
            << "% (every CSMT-mergeable pair is SMT-mergeable)\n";
  return 0;
}
