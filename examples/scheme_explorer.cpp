// Scheme explorer: run ANY merging scheme — including ones the paper never
// evaluated, written in the functional grammar — against a workload, and
// inspect per-merge-block statistics.
//
//   ./scheme_explorer "C(CP(S(0,1),2,3),...)" [workload] [budget]
//   ./scheme_explorer 3SCC MMHH
#include <iostream>

#include "exp/report.hpp"
#include "sim/simulation.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cvmt;
  const std::string scheme_text = argc > 1 ? argv[1] : "2SC3";
  const std::string workload_name = argc > 2 ? argv[2] : "LMHH";

  Scheme scheme = Scheme::parse(scheme_text);
  std::cout << "scheme " << scheme.name() << " = " << scheme.canonical()
            << "  (" << scheme.num_threads() << " threads, "
            << scheme.count_blocks(MergeKind::kSmt) << " SMT + "
            << scheme.count_blocks(MergeKind::kCsmt)
            << " CSMT merge blocks)\n\n";

  SimConfig config;
  if (argc > 3) config.instruction_budget = std::strtoull(argv[3], nullptr,
                                                          10);
  ProgramLibrary library(config.machine);
  const Workload* workload = nullptr;
  for (const Workload& w : table2_workloads())
    if (w.ilp_combo == workload_name) workload = &w;
  if (workload == nullptr) {
    std::cerr << "unknown workload " << workload_name << "\n";
    return 1;
  }

  // An N-thread scheme needs N software threads; reuse the workload list
  // round-robin if the scheme is wider than 4.
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  for (int t = 0; t < scheme.num_threads(); ++t)
    programs.push_back(library.get(
        workload->benchmarks[static_cast<std::size_t>(t) % 4]));

  const SimResult r = run_simulation(scheme, programs, config);

  std::cout << "IPC " << format_fixed(r.ipc, 3) << " over "
            << format_grouped(static_cast<long long>(r.cycles))
            << " cycles; idle cycles "
            << format_grouped(static_cast<long long>(r.idle_cycles))
            << "\n\n";

  TableWriter threads({"Thread", "Benchmark", "Instrs", "Ops", "Bubbles",
                       "DCache stall", "Branch stall"});
  for (std::size_t t = 0; t < r.threads.size(); ++t) {
    const auto& tr = r.threads[t];
    threads.add_row({std::to_string(t), tr.benchmark,
                     format_grouped(static_cast<long long>(tr.instructions)),
                     format_grouped(static_cast<long long>(tr.ops)),
                     format_grouped(static_cast<long long>(
                         tr.stats.bubbles)),
                     format_grouped(static_cast<long long>(
                         tr.stats.dcache_stall_cycles)),
                     format_grouped(static_cast<long long>(
                         tr.stats.branch_stall_cycles))});
  }
  threads.print(std::cout);

  std::cout << "\nPer-merge-block reject rates (preorder; each block "
               "labelled by its canonical sub-scheme):\n";
  render_merge_nodes(r.merge_nodes).print(std::cout);

  std::cout << "\nThreads issued per cycle:\n";
  for (std::size_t k = 0; k < r.issued_per_cycle.num_buckets(); ++k)
    std::cout << "  " << k << " threads: "
              << format_fixed(100.0 * r.issued_per_cycle.fraction(k), 1)
              << "%\n";
  return 0;
}
