// Scheme explorer: run ANY merging scheme — including ones the paper never
// evaluated, written in the functional grammar — against a workload, and
// inspect per-merge-block statistics.
//
//   ./scheme_explorer "C(CP(S(0,1),2,3),...)" [workload] [budget]
//   ./scheme_explorer 3SCC MMHH               (--help for details)
#include <iostream>

#include "exp/report.hpp"
#include "sim/simulation.hpp"
#include "support/args.hpp"
#include "support/check.hpp"
#include "support/string_util.hpp"

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("scheme_explorer",
                 "Runs an arbitrary merging scheme (paper name or "
                 "functional grammar) against a Table 2 workload and "
                 "prints per-merge-block statistics.");
  args.add_positional("scheme", "Merging scheme (default 2SC3).");
  args.add_positional("workload", "Table 2 ILP combo (default LMHH).");
  args.add_positional("budget", "Instruction budget per thread.");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }
  const std::string scheme_text = args.positional_or(0, "2SC3");
  const std::string workload_name = args.positional_or(1, "LMHH");

  Scheme scheme = Scheme::single_thread();
  try {
    scheme = Scheme::parse(scheme_text);
  } catch (const CheckError& e) {
    std::cerr << "bad scheme \"" << scheme_text << "\": " << e.what()
              << "\n(expected a paper name like 3SCC or functional "
                 "syntax like S(CP(0,1,2),3); try --help)\n";
    return 2;
  }
  std::cout << "scheme " << scheme.name() << " = " << scheme.canonical()
            << "  (" << scheme.num_threads() << " threads, "
            << scheme.count_blocks(MergeKind::kSmt) << " SMT + "
            << scheme.count_blocks(MergeKind::kCsmt)
            << " CSMT merge blocks)\n\n";

  SimConfig config;
  if (args.num_positionals() > 2) {
    const std::string& budget = args.positional(2);
    config.instruction_budget = std::strtoull(budget.c_str(), nullptr, 10);
    if (config.instruction_budget == 0) {
      std::cerr << "bad budget \"" << budget
                << "\" (expected a positive instruction count)\n";
      return 2;
    }
  }
  ProgramLibrary library(config.machine);
  const Workload* workload = nullptr;
  for (const Workload& w : table2_workloads())
    if (w.ilp_combo == workload_name) workload = &w;
  if (workload == nullptr) {
    std::cerr << "unknown workload " << workload_name
              << " (expected a Table 2 ILP combo such as LMHH)\n";
    return 2;
  }

  // An N-thread scheme needs N software threads; reuse the workload list
  // round-robin if the scheme is wider than 4.
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  for (int t = 0; t < scheme.num_threads(); ++t)
    programs.push_back(library.get(
        workload->benchmarks[static_cast<std::size_t>(t) % 4]));

  const SimResult r = run_simulation(scheme, programs, config);

  std::cout << "IPC " << format_fixed(r.ipc, 3) << " over "
            << format_grouped(static_cast<long long>(r.cycles))
            << " cycles; idle cycles "
            << format_grouped(static_cast<long long>(r.idle_cycles))
            << "\n\n";

  TableWriter threads({"Thread", "Benchmark", "Instrs", "Ops", "Bubbles",
                       "DCache stall", "Branch stall"});
  for (std::size_t t = 0; t < r.threads.size(); ++t) {
    const auto& tr = r.threads[t];
    threads.add_row({std::to_string(t), tr.benchmark,
                     format_grouped(static_cast<long long>(tr.instructions)),
                     format_grouped(static_cast<long long>(tr.ops)),
                     format_grouped(static_cast<long long>(
                         tr.stats.bubbles)),
                     format_grouped(static_cast<long long>(
                         tr.stats.dcache_stall_cycles)),
                     format_grouped(static_cast<long long>(
                         tr.stats.branch_stall_cycles))});
  }
  threads.print(std::cout);

  std::cout << "\nPer-merge-block reject rates (preorder; each block "
               "labelled by its canonical sub-scheme):\n";
  render_merge_nodes(r.merge_nodes).to_table().print(std::cout);

  std::cout << "\nThreads issued per cycle:\n";
  for (std::size_t k = 0; k < r.issued_per_cycle.num_buckets(); ++k)
    std::cout << "  " << k << " threads: "
              << format_fixed(100.0 * r.issued_per_cycle.fraction(k), 1)
              << "%\n";
  return 0;
}
