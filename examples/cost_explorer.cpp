// Cost explorer: enumerate every cascade scheme for N threads, price the
// merge-control hardware and print the area/delay table plus the Pareto
// frontier (no simulation — pure cost model).
//
//   ./cost_explorer [threads]   (--help for details)
#include <algorithm>
#include <iostream>
#include <vector>

#include "cost/scheme_cost.hpp"
#include "support/args.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("cost_explorer",
                 "Enumerates every cascade scheme for N threads and prints "
                 "the merge-control area/delay table with the Pareto "
                 "frontier.");
  args.add_positional("threads", "Thread count, 2..8 (default 4).");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }
  int threads = 4;
  if (args.num_positionals() > 0) {
    threads = std::atoi(args.positional(0).c_str());
  }
  if (threads < 2 || threads > kMaxThreads) {
    std::cerr << "threads must be in [2," << kMaxThreads << "]\n";
    return 2;
  }
  const MachineConfig machine = MachineConfig::vex4x4();

  struct Entry {
    std::string name;
    SchemeCost cost;
    int smt_blocks;
  };
  std::vector<Entry> entries;

  // All 2^(threads-1) cascades over {S, C} levels...
  const int levels = threads - 1;
  for (int bits = 0; bits < (1 << levels); ++bits) {
    std::vector<MergeKind> kinds;
    for (int l = 0; l < levels; ++l)
      kinds.push_back((bits >> l) & 1 ? MergeKind::kSmt : MergeKind::kCsmt);
    const Scheme s = Scheme::cascade(kinds);
    entries.push_back({s.name(), scheme_cost(s, machine),
                       s.count_blocks(MergeKind::kSmt)});
  }
  // ...plus the wide parallel CSMT block.
  const Scheme cp = Scheme::parallel_csmt(threads);
  entries.push_back(
      {cp.name(), scheme_cost(cp, machine), 0});

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.cost.transistors < b.cost.transistors;
            });

  TableWriter t({"Scheme", "SMT blocks", "Transistors", "Gate delays",
                 "Pareto"});
  // Pareto frontier on (transistors ASC, delay): a point qualifies if no
  // earlier (cheaper) point has delay <= its delay.
  double best_delay = 1e300;
  for (const Entry& e : entries) {
    const bool pareto = e.cost.gate_delay < best_delay;
    if (pareto) best_delay = e.cost.gate_delay;
    t.add_row({e.name, std::to_string(e.smt_blocks),
               format_grouped(e.cost.transistors),
               format_fixed(e.cost.gate_delay, 1), pareto ? "*" : ""});
  }
  t.print(std::cout);
  std::cout << "\n'*' = on the area/delay Pareto frontier (cost only:\n"
               "CSMT-only schemes dominate it by construction). The\n"
               "performance dimension that makes one-SMT-level schemes\n"
               "like 2SC3 attractive is in bench_fig11/bench_fig12.\n";
  return 0;
}
