// Quickstart: simulate the paper's headline scheme (2SC3) on one workload
// and compare it against the two extremes. ~20 lines of library use.
//
//   ./quickstart [scheme] [workload]
//   e.g. ./quickstart 2SC3 LLHH        (--help for details)
#include <iostream>

#include "sim/session.hpp"
#include "support/args.hpp"
#include "support/check.hpp"
#include "support/string_util.hpp"

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("quickstart",
                 "Simulates one merging scheme on a Table 2 workload and "
                 "compares it against the pure-CSMT and pure-SMT extremes.");
  args.add_positional("scheme", "Merging scheme (default 2SC3); paper "
                                "names or functional syntax.");
  args.add_positional("workload", "Table 2 ILP combo (default LLHH).");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }
  const std::string scheme_name = args.positional_or(0, "2SC3");
  const std::string workload_name = args.positional_or(1, "LLHH");

  // 1. The machine: VEX-like, 4 clusters x 4 issue slots (paper §5.1).
  SimConfig config;
  config.instruction_budget = 200'000;

  // 2. The workload: one of the Table 2 mixes.
  const Workload* workload = nullptr;
  for (const Workload& w : table2_workloads())
    if (w.ilp_combo == workload_name) workload = &w;
  if (workload == nullptr) {
    std::cerr << "unknown workload " << workload_name
              << " (expected a Table 2 ILP combo such as LLHH)\n";
    return 2;
  }

  // 3. A session: schemes are compiled and benchmarks materialized once,
  //    in the shared artifact cache, and run state is reused across runs.
  //    (For a single one-shot run, run_simulation() does the same thing
  //    without the session.)
  SimSession session;

  // 4. Run the chosen scheme plus the two extremes it interpolates.
  for (const std::string& name : {scheme_name, std::string("3CCC"),
                                  std::string("3SSS")}) {
    Scheme scheme = Scheme::single_thread();
    try {
      scheme = Scheme::parse(name);
    } catch (const CheckError& e) {
      std::cerr << "bad scheme \"" << name << "\": " << e.what()
                << "\n(expected a paper name like 2SC3 or functional "
                   "syntax like CP(S(0,1),2,3); try --help)\n";
      return 2;
    }
    const SimResult r = session.run(scheme, workload->benchmarks, config);
    std::cout << name << " on " << workload->ilp_combo
              << ": IPC = " << format_fixed(r.ipc, 2) << "  (cycles "
              << format_grouped(static_cast<long long>(r.cycles))
              << ", DCache hit rate "
              << format_fixed(100.0 * r.dcache.rate(), 1) << "%)\n";
  }
  std::cout << "\n2SC3 merges threads 0,1 at operation level (SMT) and the\n"
               "rest at cluster level (CSMT): near-SMT performance at\n"
               "near-2-thread-SMT hardware cost.\n";
  return 0;
}
