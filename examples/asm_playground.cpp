// VEX-asm playground: write a program by hand in the textual format,
// load it, and watch how the merge schemes treat it. Also dumps a Table 1
// benchmark to show the full format.
//
//   ./asm_playground            # run the built-in hand-written kernels
//   ./asm_playground mcf        # dump a benchmark's program instead
#include <iostream>

#include "sim/simulation.hpp"
#include "support/args.hpp"
#include "support/string_util.hpp"
#include "trace/vex_asm.hpp"

namespace {

// Two hand-written "applications": a narrow pointer-chaser pinned to
// cluster 0, and a wide 3-cluster kernel. Their merge behaviour under
// CSMT depends entirely on the cluster footprints written below.
const char* kNarrow = R"(
.program narrow-chaser
.machine clusters=4 issue=4
.stride 8
.codebytes 32
.midtaken 0.2
.loop trips=32 miss=0.05 code=0x10000 hot=0x20000000+2048 cold=0x40000000
{ c0.2 ld }
{ c0.0 alu }
{ }
{ c0.0 alu ; c0.3 br }
.endloop
)";

const char* kWide = R"(
.program wide-kernel
.machine clusters=4 issue=4
.stride 8
.codebytes 32
.midtaken 0.2
.loop trips=64 miss=0.01 code=0x10000 hot=0x20000000+4096 cold=0x48000000
{ c1.0 alu ; c1.1 mpy ; c1.2 ld ; c2.0 alu ; c2.2 ld ; c3.0 alu }
{ c1.0 alu ; c2.0 alu ; c2.1 alu ; c3.0 alu ; c3.2 st }
{ c1.0 alu ; c1.1 alu ; c2.0 alu ; c3.0 alu ; c3.3 br }
.endloop
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("asm_playground",
                 "Runs two hand-written VEX-asm kernels through the "
                 "merging schemes, or dumps a Table 1 benchmark's program "
                 "in the textual format.");
  args.add_positional("benchmark",
                      "Dump this benchmark's program instead of running "
                      "the built-in kernels.");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }
  const MachineConfig machine = MachineConfig::vex4x4();

  if (args.num_positionals() > 0) {
    ProgramLibrary lib(machine);
    std::cout << dump_program(*lib.get(args.positional(0)));
    return 0;
  }

  const auto narrow = parse_program(kNarrow, machine);
  const auto wide = parse_program(kWide, machine);
  std::cout << "narrow-chaser analytic IPCp="
            << format_fixed(narrow->expected_ipc_perfect(), 2)
            << ", wide-kernel IPCp="
            << format_fixed(wide->expected_ipc_perfect(), 2) << "\n\n";

  SimConfig config;
  config.machine = machine;
  config.instruction_budget = 100'000;

  // Two of each: the narrow threads live on cluster 0, the wide ones on
  // clusters 1-3 — CSMT can merge narrow+wide but never narrow+narrow.
  const std::vector<std::shared_ptr<const SyntheticProgram>> programs = {
      narrow, narrow, wide, wide};
  for (const char* scheme : {"1S", "3CCC", "2SC3", "3SSS"}) {
    const SimResult r =
        run_simulation(Scheme::parse(scheme), programs, config);
    std::cout << scheme << ": IPC " << format_fixed(r.ipc, 2)
              << " (avg threads issued/cycle "
              << format_fixed(r.issued_per_cycle.mean(), 2) << ")\n";
  }
  std::cout << "\nEdit the .loop bodies above (clusters, slots, bubbles)\n"
               "and re-run to see the merge checks react.\n";
  return 0;
}
