// Workload studio: define a custom synthetic benchmark profile, pair it
// with Table 1 applications, and see how the merging schemes respond.
// Demonstrates the BenchmarkProfile API the paper's evaluation is built on.
//
//   ./workload_studio [mean_ops] [mem_frac]   (--help for details)
#include <cstdlib>
#include <iostream>

#include "sim/session.hpp"
#include "support/args.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace {

bool parse_positive(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && *out > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cvmt;
  ArgParser args("workload_studio",
                 "Builds a custom synthetic benchmark profile and compares "
                 "how the merging schemes respond to it.");
  args.add_positional("mean_ops",
                      "Mean operations per instruction (default 3.5).");
  args.add_positional("mem_frac",
                      "Fraction of memory operations (default 0.3).");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }
  double mean_ops = 3.5;
  double mem_frac = 0.3;
  if (args.num_positionals() > 0 &&
      !parse_positive(args.positional(0), &mean_ops)) {
    std::cerr << "bad mean_ops \"" << args.positional(0)
              << "\" (expected a positive number)\n";
    return 2;
  }
  if (args.num_positionals() > 1 &&
      !parse_positive(args.positional(1), &mem_frac)) {
    std::cerr << "bad mem_frac \"" << args.positional(1)
              << "\" (expected a positive fraction)\n";
    return 2;
  }

  // A custom application: medium-wide, fairly memory-hungry.
  BenchmarkProfile custom;
  custom.name = "custom-kernel";
  custom.ilp = IlpDegree::kMedium;
  custom.mean_ops_per_instr = mean_ops;
  custom.mem_op_frac = mem_frac;
  custom.mul_op_frac = 0.08;
  custom.mean_body_instrs = 14;
  // Targets: run at ~mean_ops/1.4 ops/cycle with perfect memory, lose 15%
  // to cache misses.
  custom.target_ipc_perfect = mean_ops / 1.4;
  custom.target_ipc_real = custom.target_ipc_perfect * 0.85;
  custom.hot_bytes = 24 * 1024;
  custom.seed = 4242;
  custom.validate();

  SimConfig config;
  config.instruction_budget = 150'000;
  const MachineConfig machine = config.machine;

  // Programs come from the shared artifact cache — the custom profile is
  // keyed by its full content, so rerunning with the same knobs reuses
  // the built program within this process.
  ArtifactCache& artifacts = ArtifactCache::global();
  const auto custom_prog = artifacts.program(custom, machine);
  std::cout << "custom-kernel analytic IPCp="
            << format_fixed(custom_prog->expected_ipc_perfect(), 2)
            << " IPCr=" << format_fixed(custom_prog->expected_ipc_real(), 2)
            << "\n\n";

  const std::vector<std::shared_ptr<const SyntheticProgram>> programs = {
      custom_prog, artifacts.program("mcf", machine),
      artifacts.program("idct", machine),
      artifacts.program("djpeg", machine)};

  SimSession session(artifacts);
  TableWriter t({"Scheme", "IPC", "custom-kernel ops", "idct ops"});
  for (const char* name : {"1S", "3CCC", "2SC3", "3SSS"}) {
    const SimResult r = session.run(Scheme::parse(name), programs, config);
    std::uint64_t custom_ops = 0, idct_ops = 0;
    for (const auto& tr : r.threads) {
      if (tr.benchmark == "custom-kernel") custom_ops = tr.ops;
      if (tr.benchmark == "idct") idct_ops = tr.ops;
    }
    t.add_row({name, format_fixed(r.ipc, 2),
               format_grouped(static_cast<long long>(custom_ops)),
               format_grouped(static_cast<long long>(idct_ops))});
  }
  t.print(std::cout);
  std::cout << "\nTune mean_ops/mem_frac on the command line to see how\n"
               "instruction width and memory pressure move the schemes.\n";
  return 0;
}
