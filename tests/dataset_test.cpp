// Dataset: column typing, table formatting hints, CSV/JSON round trips
// and bad-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"
#include "support/dataset.hpp"

namespace cvmt {
namespace {

Dataset sample() {
  Dataset d({ColumnSpec::str("Scheme"), ColumnSpec::real("IPC"),
             ColumnSpec::integer("Transistors", /*grouped=*/true),
             ColumnSpec::real("Gain", 1, "%")});
  d.add_row({std::string("2SC3"), 5.2375, Cell{std::int64_t{4'384}}, 14.5});
  d.add_separator();
  d.add_row({std::string("3SSS"), 5.98, Cell{std::int64_t{13'128}},
             std::monostate{}});
  return d;
}

TEST(Dataset, ColumnTypingIsEnforced) {
  Dataset d({ColumnSpec::str("a"), ColumnSpec::real("b"),
             ColumnSpec::integer("c")});
  // Width mismatch.
  EXPECT_THROW(d.add_row({std::string("x"), 1.0}), CheckError);
  // Type mismatch per column.
  EXPECT_THROW(d.add_row({1.0, 1.0, Cell{std::int64_t{1}}}), CheckError);
  EXPECT_THROW(
      d.add_row({std::string("x"), Cell{std::int64_t{1}}, Cell{std::int64_t{1}}}),
      CheckError);
  EXPECT_THROW(d.add_row({std::string("x"), 1.0, 2.0}), CheckError);
  // Null is allowed anywhere.
  d.add_row({std::monostate{}, std::monostate{}, std::monostate{}});
  EXPECT_EQ(d.num_rows(), 1u);
}

TEST(Dataset, AccessorsAndColIndex) {
  const Dataset d = sample();
  EXPECT_EQ(d.num_rows(), 2u);  // separator not counted
  EXPECT_EQ(d.num_cols(), 4u);
  EXPECT_EQ(d.col_index("Transistors"), 2u);
  EXPECT_THROW((void)d.col_index("nope"), CheckError);
  EXPECT_EQ(d.str_at(0, 0), "2SC3");
  EXPECT_DOUBLE_EQ(d.real_at(0, 1), 5.2375);
  EXPECT_EQ(d.int_at(1, 2), 13'128);
  EXPECT_THROW((void)d.cell(2, 0), CheckError);
}

TEST(Dataset, TableFormattingHonoursHints) {
  const Dataset d = sample();
  EXPECT_EQ(d.format_cell(0, 1), "5.24");    // real, 2 decimals
  EXPECT_EQ(d.format_cell(0, 2), "4,384");   // grouped int
  EXPECT_EQ(d.format_cell(0, 3), "14.5%");   // suffix
  EXPECT_EQ(d.format_cell(1, 3), "");        // null renders empty
  std::ostringstream os;
  d.to_table().print(os);
  EXPECT_NE(os.str().find("| 2SC3"), std::string::npos);
  EXPECT_NE(os.str().find("4,384"), std::string::npos);
}

TEST(Dataset, NullTextIsPerColumn) {
  ColumnSpec c = ColumnSpec::real("x", 1);
  c.null_text = "-";
  Dataset d({c});
  d.add_row({std::monostate{}});
  EXPECT_EQ(d.format_cell(0, 0), "-");
}

TEST(Dataset, CsvRoundTripIsExact) {
  const Dataset d = sample();
  std::ostringstream os;
  d.write_csv(os);
  // CSV uses round-trip precision, not the 2-decimal table format.
  EXPECT_NE(os.str().find("5.2375"), std::string::npos);
  // Grouping/suffix hints stay out of machine-readable output.
  EXPECT_EQ(os.str().find("4,384"), std::string::npos);

  const Dataset back = Dataset::from_csv(d.columns(), os.str());
  ASSERT_EQ(back.num_rows(), d.num_rows());
  EXPECT_EQ(back.str_at(0, 0), "2SC3");
  EXPECT_DOUBLE_EQ(back.real_at(0, 1), 5.2375);
  EXPECT_EQ(back.int_at(1, 2), 13'128);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(back.cell(1, 3)));
}

TEST(Dataset, CsvQuotesSpecialCharacters) {
  Dataset d({ColumnSpec::str("a"), ColumnSpec::str("b")});
  d.add_row({std::string("x,y"), std::string("say \"hi\"\nthere")});
  std::ostringstream os;
  d.write_csv(os);
  const Dataset back = Dataset::from_csv(d.columns(), os.str());
  ASSERT_EQ(back.num_rows(), 1u);
  EXPECT_EQ(back.str_at(0, 0), "x,y");
  EXPECT_EQ(back.str_at(0, 1), "say \"hi\"\nthere");
}

TEST(Dataset, CsvRejectsBadInput) {
  const std::vector<ColumnSpec> cols{ColumnSpec::str("a"),
                                     ColumnSpec::real("b")};
  EXPECT_THROW((void)Dataset::from_csv(cols, ""), CheckError);
  EXPECT_THROW((void)Dataset::from_csv(cols, "wrong,b\n"), CheckError);
  EXPECT_THROW((void)Dataset::from_csv(cols, "a,b\nx\n"), CheckError);
  EXPECT_THROW((void)Dataset::from_csv(cols, "a,b\nx,notanumber\n"),
               CheckError);
  EXPECT_THROW((void)Dataset::from_csv(cols, "a,b\n\"unterminated,1\n"),
               CheckError);
}

TEST(Dataset, JsonRoundTripPreservesCellsAndTypes) {
  const Dataset d = sample();
  const JsonValue j = d.to_json();
  EXPECT_EQ(j.get("columns").at(1).get("type").as_string(), "real");
  EXPECT_EQ(j.get("columns").at(2).get("type").as_string(), "int");
  // Through text and back.
  const Dataset back = Dataset::from_json(JsonValue::parse(j.dump()));
  ASSERT_EQ(back.num_rows(), 2u);  // separators are dropped in JSON
  EXPECT_EQ(back.columns()[0].type, ColumnType::kString);
  EXPECT_EQ(back.columns()[1].type, ColumnType::kReal);
  EXPECT_EQ(back.columns()[2].type, ColumnType::kInt);
  EXPECT_DOUBLE_EQ(back.real_at(0, 1), 5.2375);
  EXPECT_EQ(back.int_at(1, 2), 13'128);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(back.cell(1, 3)));
}

TEST(Dataset, JsonRejectsRowWidthMismatch) {
  const char* wide =
      R"({"columns":[{"name":"a","type":"int"}],"rows":[[1,2]]})";
  EXPECT_THROW((void)Dataset::from_json(JsonValue::parse(wide)),
               CheckError);
  const char* narrow =
      R"({"columns":[{"name":"a","type":"int"},)"
      R"({"name":"b","type":"int"}],"rows":[[1]]})";
  EXPECT_THROW((void)Dataset::from_json(JsonValue::parse(narrow)),
               CheckError);
}

TEST(Dataset, EmptyColumnsRejected) {
  EXPECT_THROW(Dataset(std::vector<ColumnSpec>{}), CheckError);
}

}  // namespace
}  // namespace cvmt
