// Unit tests for the ISA layer: machine description, operations and VLIW
// instruction validity.
#include <gtest/gtest.h>

#include "isa/instruction.hpp"
#include "isa/machine_config.hpp"
#include "isa/operation.hpp"

namespace cvmt {
namespace {

TEST(OpKind, FixedSlotClassification) {
  EXPECT_FALSE(is_fixed_slot(OpKind::kAlu));
  EXPECT_TRUE(is_fixed_slot(OpKind::kMul));
  EXPECT_TRUE(is_fixed_slot(OpKind::kLoad));
  EXPECT_TRUE(is_fixed_slot(OpKind::kStore));
  EXPECT_TRUE(is_fixed_slot(OpKind::kBranch));
}

TEST(OpKind, MemoryClassification) {
  EXPECT_TRUE(is_memory(OpKind::kLoad));
  EXPECT_TRUE(is_memory(OpKind::kStore));
  EXPECT_FALSE(is_memory(OpKind::kAlu));
  EXPECT_FALSE(is_memory(OpKind::kBranch));
}

TEST(OpKind, Names) {
  EXPECT_EQ(to_string(OpKind::kMul), "mpy");
  EXPECT_EQ(to_string(OpKind::kLoad), "ld");
  EXPECT_EQ(to_string(OpKind::kBranch), "br");
}

TEST(MachineConfig, Vex4x4IsThePaperMachine) {
  const MachineConfig m = MachineConfig::vex4x4();
  EXPECT_EQ(m.num_clusters, 4);
  EXPECT_EQ(m.issue_per_cluster, 4);
  EXPECT_EQ(m.total_issue_width(), 16);
  EXPECT_EQ(m.mem_latency, 2);
  EXPECT_EQ(m.mul_latency, 2);
  EXPECT_EQ(m.taken_branch_penalty, 2);
}

TEST(MachineConfig, Vex4x4SlotCapabilities) {
  const MachineConfig m = MachineConfig::vex4x4();
  EXPECT_EQ(m.slots_for(OpKind::kAlu), 0b1111u);    // any slot
  EXPECT_EQ(m.slots_for(OpKind::kMul), 0b0011u);    // 2 multipliers
  EXPECT_EQ(m.slots_for(OpKind::kLoad), 0b0100u);   // 1 LSU
  EXPECT_EQ(m.slots_for(OpKind::kStore), 0b0100u);  // shares the LSU
  EXPECT_EQ(m.slots_for(OpKind::kBranch), 0b1000u);
}

TEST(MachineConfig, LatencyTable) {
  const MachineConfig m = MachineConfig::vex4x4();
  EXPECT_EQ(m.latency_of(OpKind::kAlu), 1);
  EXPECT_EQ(m.latency_of(OpKind::kMul), 2);
  EXPECT_EQ(m.latency_of(OpKind::kLoad), 2);
  EXPECT_EQ(m.latency_of(OpKind::kStore), 2);
}

TEST(MachineConfig, Vex4x2IsTheFig1Machine) {
  const MachineConfig m = MachineConfig::vex4x2();
  EXPECT_EQ(m.num_clusters, 4);
  EXPECT_EQ(m.issue_per_cluster, 2);
  EXPECT_EQ(m.total_issue_width(), 8);
}

TEST(MachineConfig, ClusteredFactoryCoversShapes) {
  for (int clusters : {1, 2, 4, 8}) {
    for (int width : {1, 2, 3, 4, 8}) {
      if (clusters * width > kMaxTotalOps) continue;
      const MachineConfig m = MachineConfig::clustered(clusters, width);
      EXPECT_EQ(m.num_clusters, clusters);
      EXPECT_EQ(m.issue_per_cluster, width);
      EXPECT_NO_THROW(m.validate());
      // Every op kind must be executable somewhere.
      for (OpKind k : {OpKind::kAlu, OpKind::kMul, OpKind::kLoad,
                       OpKind::kStore, OpKind::kBranch})
        EXPECT_NE(m.slots_for(k), 0u);
    }
  }
}

TEST(MachineConfig, ClusteredMatchesNamedConfigs) {
  EXPECT_TRUE(MachineConfig::clustered(4, 4) == MachineConfig::vex4x4());
  const MachineConfig m2 = MachineConfig::clustered(4, 2);
  EXPECT_EQ(m2.total_issue_width(), MachineConfig::vex4x2().total_issue_width());
}

TEST(MachineConfig, RejectsSlotMaskBeyondWidth) {
  MachineConfig m = MachineConfig::vex4x4();
  m.mem_slot_mask = 1u << 5;  // slot 5 does not exist on a 4-issue cluster
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(MachineConfig, RejectsZeroCapability) {
  MachineConfig m = MachineConfig::vex4x4();
  m.mul_slot_mask = 0;
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(MachineConfig, RejectsOutOfRangeShape) {
  MachineConfig m = MachineConfig::vex4x4();
  m.num_clusters = kMaxClusters + 1;
  EXPECT_THROW(m.validate(), CheckError);
  m = MachineConfig::vex4x4();
  m.issue_per_cluster = 0;
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(MachineConfig, EqualityComparesAllFields) {
  const MachineConfig a = MachineConfig::vex4x4();
  MachineConfig b = a;
  EXPECT_TRUE(a == b);
  b.mem_latency = 3;
  EXPECT_FALSE(a == b);
}

TEST(MachineConfig, NarrowClustersShareSlotsAndStillValidate) {
  // Below 4-issue there is no room for dedicated LSU and branch slots:
  // a 2-wide cluster shares slot 1 between them, a 1-wide cluster runs
  // everything through its single slot. validate() must accept both.
  const MachineConfig w2 = MachineConfig::clustered(4, 2);
  EXPECT_EQ(w2.mul_slot_mask, 0b01u);
  EXPECT_EQ(w2.mem_slot_mask, 0b10u);
  EXPECT_EQ(w2.branch_slot_mask, 0b10u);
  EXPECT_EQ(w2.mem_slot_mask, w2.branch_slot_mask);  // shared slot
  EXPECT_NO_THROW(w2.validate());

  const MachineConfig w1 = MachineConfig::clustered(2, 1);
  EXPECT_EQ(w1.mul_slot_mask, 0b1u);
  EXPECT_EQ(w1.mem_slot_mask, 0b1u);
  EXPECT_EQ(w1.branch_slot_mask, 0b1u);
  EXPECT_NO_THROW(w1.validate());

  // At width 3 each unit gets its own (single) slot: no sharing needed.
  const MachineConfig w3 = MachineConfig::clustered(2, 3);
  EXPECT_EQ(w3.mul_slot_mask & w3.mem_slot_mask, 0u);
  EXPECT_EQ(w3.mem_slot_mask & w3.branch_slot_mask, 0u);
  EXPECT_NO_THROW(w3.validate());
}

TEST(MachineConfig, HeterogeneousFactoryAndAccessors) {
  const ClusterShape shapes[3] = {
      {4, 0b0011, 0b0100, 0b1000},
      {2, 0b01, 0b10, 0b10},
      {1, 0b0, 0b1, 0b1},  // no multiplier here
  };
  const MachineConfig m = MachineConfig::heterogeneous_of(shapes, 3);
  EXPECT_TRUE(m.heterogeneous);
  EXPECT_EQ(m.num_clusters, 3);
  EXPECT_EQ(m.cluster_issue(0), 4);
  EXPECT_EQ(m.cluster_issue(1), 2);
  EXPECT_EQ(m.cluster_issue(2), 1);
  EXPECT_EQ(m.max_issue_per_cluster(), 4);
  EXPECT_EQ(m.total_issue_width(), 7);
  EXPECT_EQ(m.slots_for(OpKind::kMul, 0), 0b0011u);
  EXPECT_EQ(m.slots_for(OpKind::kMul, 2), 0u);
  EXPECT_EQ(m.slots_for(OpKind::kAlu, 1), 0b11u);
  EXPECT_EQ(m.slots_for(OpKind::kLoad, 2), 0b1u);
}

TEST(MachineConfig, HeterogeneousValidateNeedsEachCapabilitySomewhere) {
  // No cluster has a multiplier: machine-wide capability check fires.
  const ClusterShape shapes[2] = {
      {2, 0b00, 0b10, 0b10},
      {2, 0b00, 0b10, 0b10},
  };
  EXPECT_THROW(MachineConfig::heterogeneous_of(shapes, 2), CheckError);
}

TEST(MachineConfig, HeterogeneousValidateBoundsTotalWidth) {
  ClusterShape shapes[8];
  for (ClusterShape& s : shapes)
    s = ClusterShape{8, 0b0011, 0b0100, 1u << 7};
  // 8 clusters x 8-wide = 64 ops > kMaxTotalOps.
  EXPECT_THROW(MachineConfig::heterogeneous_of(shapes, 8), CheckError);
}

TEST(MachineConfig, HeterogeneousEqualityComparesActiveClusters) {
  const ClusterShape shapes[2] = {
      {4, 0b0011, 0b0100, 0b1000},
      {2, 0b01, 0b10, 0b10},
  };
  const MachineConfig a = MachineConfig::heterogeneous_of(shapes, 2);
  MachineConfig b = a;
  EXPECT_TRUE(a == b);
  b.per_cluster[1].issue_width = 1;
  b.per_cluster[1].mul_slot_mask = 0b1;
  b.per_cluster[1].mem_slot_mask = 0b1;
  b.per_cluster[1].branch_slot_mask = 0b1;
  EXPECT_FALSE(a == b);
  // A homogeneous machine never equals a heterogeneous one.
  EXPECT_FALSE(MachineConfig::vex4x4() ==
               MachineConfig::heterogeneous_of(shapes, 2));
}

TEST(Instruction, EmptyInstructionIsValidBubble) {
  const Instruction instr;
  EXPECT_TRUE(instr.empty());
  EXPECT_EQ(instr.op_count(), 0u);
  EXPECT_EQ(instr.validate(MachineConfig::vex4x4()), "");
}

TEST(Instruction, ValidPackedInstruction) {
  const MachineConfig m = MachineConfig::vex4x4();
  Instruction instr;
  instr.add(make_alu(0, 0));
  instr.add(make_mul(0, 1));
  instr.add(make_load(0, 2, 0x1000));
  instr.add(make_branch(0, 3, false));
  instr.add(make_alu(3, 0));
  EXPECT_EQ(instr.validate(m), "");
  EXPECT_EQ(instr.op_count(), 5u);
}

TEST(Instruction, RejectsClusterOutOfRange) {
  Instruction instr;
  instr.add(make_alu(4, 0));
  EXPECT_NE(Instruction{instr}.validate(MachineConfig::vex4x4()), "");
}

TEST(Instruction, RejectsSlotOutOfRange) {
  Instruction instr;
  instr.add(make_alu(0, 4));
  EXPECT_NE(instr.validate(MachineConfig::vex4x4()), "");
}

TEST(Instruction, RejectsMemInNonMemSlot) {
  Instruction instr;
  instr.add(make_load(0, 0, 0x100));  // LSU lives in slot 2
  EXPECT_NE(instr.validate(MachineConfig::vex4x4()), "");
}

TEST(Instruction, RejectsMulInNonMulSlot) {
  Instruction instr;
  instr.add(make_mul(1, 3));
  EXPECT_NE(instr.validate(MachineConfig::vex4x4()), "");
}

TEST(Instruction, RejectsDoubleBookedSlot) {
  Instruction instr;
  instr.add(make_alu(2, 1));
  instr.add(make_mul(2, 1));
  EXPECT_NE(instr.validate(MachineConfig::vex4x4()), "");
}

TEST(Instruction, AllowsSameSlotOnDifferentClusters) {
  Instruction instr;
  instr.add(make_alu(0, 1));
  instr.add(make_alu(1, 1));
  EXPECT_EQ(instr.validate(MachineConfig::vex4x4()), "");
}

TEST(Instruction, TakenBranchLookup) {
  Instruction instr;
  instr.add(make_alu(0, 0));
  EXPECT_EQ(instr.taken_branch(), nullptr);
  instr.add(make_branch(0, 3, false));
  EXPECT_EQ(instr.taken_branch(), nullptr);
  instr.add(make_branch(1, 3, true));
  ASSERT_NE(instr.taken_branch(), nullptr);
  EXPECT_EQ(instr.taken_branch()->cluster, 1);
}

TEST(Instruction, HasMemoryOp) {
  Instruction instr;
  instr.add(make_alu(0, 0));
  EXPECT_FALSE(instr.has_memory_op());
  instr.add(make_store(2, 2, 0xBEEF));
  EXPECT_TRUE(instr.has_memory_op());
}

TEST(Instruction, PcRoundTrip) {
  Instruction instr;
  instr.set_pc(0xCAFE);
  EXPECT_EQ(instr.pc(), 0xCAFEu);
}

TEST(Instruction, ToStringRendersFig1Style) {
  const MachineConfig m = MachineConfig::vex4x2();
  Instruction instr;
  instr.add(make_alu(0, 0));
  instr.add(make_load(1, 1, 0));
  const std::string s = instr.to_string(m);
  EXPECT_EQ(s, "alu - | - ld | - - | - -");
}

TEST(Instruction, EqualityIncludesPc) {
  Instruction a, b;
  a.add(make_alu(0, 0));
  b.add(make_alu(0, 0));
  EXPECT_TRUE(a == b);
  b.set_pc(4);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace cvmt
