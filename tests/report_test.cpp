// Rendering tests: every report table materialises the right headers,
// rows and formatted cells from synthetic experiment data (no simulation).
#include <gtest/gtest.h>

#include <sstream>

#include "exp/report.hpp"

namespace cvmt {
namespace {

std::string render(const Dataset& d) {
  std::ostringstream os;
  d.to_table().print(os);
  return os.str();
}

TEST(Report, Table1RowsAndTargets) {
  std::vector<Table1Row> rows = {
      {"mcf", 'L', 0.96, 1.34, 0.94, 1.33},
      {"idct", 'H', 4.79, 5.27, 4.70, 5.20},
  };
  const std::string out = render(render_table1(rows));
  EXPECT_NE(out.find("Benchmark"), std::string::npos);
  EXPECT_NE(out.find("mcf"), std::string::npos);
  EXPECT_NE(out.find("0.96"), std::string::npos);
  EXPECT_NE(out.find("5.20"), std::string::npos);
}

TEST(Report, Table2ListsAllWorkloads) {
  const std::string out = render(render_table2());
  for (const Workload& w : table2_workloads())
    EXPECT_NE(out.find(w.ilp_combo), std::string::npos) << w.ilp_combo;
  EXPECT_NE(out.find("colorspace"), std::string::npos);
}

TEST(Report, Fig4Rows) {
  const std::string out = render(render_fig4(
      {{"Single-thread", 2.14}, {"2-Thread", 3.74}, {"4-Thread", 5.73}}));
  EXPECT_NE(out.find("4-Thread"), std::string::npos);
  EXPECT_NE(out.find("5.73"), std::string::npos);
}

TEST(Report, Fig5FormatsGroupedTransistors) {
  Fig5Row row;
  row.threads = 8;
  row.csmt_serial = {878, 37.0};
  row.csmt_parallel = {86'774, 12.0};
  row.smt = {35'976, 81.0};
  const std::string out = render(render_fig5({row}));
  EXPECT_NE(out.find("86,774"), std::string::npos);
  EXPECT_NE(out.find("81.0"), std::string::npos);
}

TEST(Report, Fig6AppendsAverageRow) {
  std::vector<Fig6Row> rows = {{"LLLL", 3.2, 2.9, 10.0},
                               {"LLHH", 6.3, 5.4, 30.0}};
  const std::string out = render(render_fig6(rows));
  EXPECT_NE(out.find("Average"), std::string::npos);
  EXPECT_NE(out.find("20.0"), std::string::npos);  // (10+30)/2
}

TEST(Report, Fig10MatrixHasSchemeColumnsAndAverage) {
  Fig10Result f;
  f.schemes = {"1S", "3SSS"};
  f.workloads = {"LLLL", "HHHH"};
  f.ipc = {{1.7, 3.2}, {6.9, 8.8}};
  f.average = {4.3, 6.0};
  const std::string out = render(render_fig10(f));
  EXPECT_NE(out.find("3SSS"), std::string::npos);
  EXPECT_NE(out.find("Average"), std::string::npos);
  EXPECT_NE(out.find("8.80"), std::string::npos);
}

TEST(Report, Fig10LookupHelpers) {
  Fig10Result f;
  f.schemes = {"1S", "3SSS"};
  f.workloads = {"LLLL"};
  f.ipc = {{1.7, 3.2}};
  f.average = {1.7, 3.2};
  EXPECT_DOUBLE_EQ(f.ipc_of("3SSS", "LLLL"), 3.2);
  EXPECT_DOUBLE_EQ(f.average_of("1S"), 1.7);
  EXPECT_THROW((void)f.average_of("2SC3"), CheckError);
  EXPECT_THROW((void)f.ipc_of("1S", "MMMM"), CheckError);
}

TEST(Report, ParetoTable) {
  const std::string out = render(render_pareto(
      {{"2SC3", 5.24, 4'384, 19.0}, {"3SSS", 5.98, 13'128, 40.0}}));
  EXPECT_NE(out.find("4,384"), std::string::npos);
  EXPECT_NE(out.find("40.0"), std::string::npos);
}

TEST(Report, HeadlinesMentionPaperNumbers) {
  std::ostringstream os;
  print_headlines(os, {14.0, 45.0, -11.0, 61.0});
  EXPECT_NE(os.str().find("paper: +14%"), std::string::npos);
  EXPECT_NE(os.str().find("paper: -11%"), std::string::npos);
}

TEST(Report, EmitHonoursCsvEnvVar) {
  TableWriter t({"a"});
  t.add_row({"1"});
  ::setenv("CVMT_CSV", "1", 1);
  std::ostringstream with_csv;
  emit(with_csv, t);
  EXPECT_NE(with_csv.str().find("[csv]"), std::string::npos);
  ::unsetenv("CVMT_CSV");
  std::ostringstream without;
  emit(without, t);
  EXPECT_EQ(without.str().find("[csv]"), std::string::npos);
}

}  // namespace
}  // namespace cvmt
