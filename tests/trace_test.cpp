// Tests of the synthetic-program builder and the trace generator:
// structural validity, determinism, resumability and statistical shape.
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <string>
#include <vector>

#include "support/stats.hpp"
#include "trace/benchmark_suite.hpp"
#include "trace/trace_generator.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

std::shared_ptr<const SyntheticProgram> make_program(const char* name) {
  return std::make_shared<const SyntheticProgram>(profile_by_name(name), kM);
}

TEST(BenchmarkSuite, TwelveProfilesInTableOrder) {
  const auto& t = table1_profiles();
  ASSERT_EQ(t.size(), 12u);
  EXPECT_EQ(t.front().name, "mcf");
  EXPECT_EQ(t.back().name, "colorspace");
  int low = 0, med = 0, high = 0;
  for (const auto& p : t) {
    switch (p.ilp) {
      case IlpDegree::kLow: ++low; break;
      case IlpDegree::kMedium: ++med; break;
      case IlpDegree::kHigh: ++high; break;
    }
    EXPECT_NO_THROW(p.validate());
  }
  // Table 1: four benchmarks in each ILP class.
  EXPECT_EQ(low, 4);
  EXPECT_EQ(med, 4);
  EXPECT_EQ(high, 4);
}

TEST(BenchmarkSuite, ProfileTargetsMatchTable1) {
  EXPECT_DOUBLE_EQ(profile_by_name("mcf").target_ipc_real, 0.96);
  EXPECT_DOUBLE_EQ(profile_by_name("mcf").target_ipc_perfect, 1.34);
  EXPECT_DOUBLE_EQ(profile_by_name("colorspace").target_ipc_perfect, 8.88);
  EXPECT_DOUBLE_EQ(profile_by_name("gsmencode").target_ipc_real, 1.07);
  EXPECT_THROW((void)profile_by_name("quake"), CheckError);
}

TEST(BenchmarkSuite, NineWorkloadsMatchTable2) {
  const auto& w = table2_workloads();
  ASSERT_EQ(w.size(), 9u);
  EXPECT_EQ(w[0].ilp_combo, "LLLL");
  EXPECT_EQ(w[5].ilp_combo, "LLHH");
  EXPECT_EQ(w[5].benchmarks[2], "x264");
  EXPECT_EQ(w[8].ilp_combo, "HHHH");
  // Every workload's ILP string matches its benchmarks' classes.
  for (const Workload& wl : w)
    for (int t = 0; t < 4; ++t)
      EXPECT_EQ(wl.ilp_combo[static_cast<std::size_t>(t)],
                to_char(profile_by_name(wl.benchmarks[
                    static_cast<std::size_t>(t)]).ilp))
          << wl.ilp_combo << " thread " << t;
}

TEST(ProgramLibrary, CachesAndLooksUp) {
  ProgramLibrary lib(kM);
  const auto a = lib.get("mcf");
  const auto b = lib.get("mcf");
  EXPECT_EQ(a.get(), b.get());  // shared
  EXPECT_THROW((void)lib.lookup("idct"), CheckError);
  lib.build_all();
  EXPECT_NO_THROW((void)lib.lookup("idct"));
}

TEST(ProgramLibrary, ConcurrentGetIsSafeAndBuildsOnce) {
  // Regression for the batch-runner scenario: many workers hammer one
  // library with get() on a cold cache. Every caller must receive the
  // same shared program per name (one build, no torn map state). Run a
  // few rounds so the cold-start race is actually exercised.
  for (int round = 0; round < 3; ++round) {
    ProgramLibrary lib(kM);
    constexpr int kThreads = 8;
    const std::vector<std::string> names = {"mcf", "idct", "x264",
                                            "colorspace"};
    std::vector<std::future<std::vector<const SyntheticProgram*>>> futs;
    for (int t = 0; t < kThreads; ++t)
      futs.push_back(std::async(std::launch::async, [&lib, &names, t] {
        std::vector<const SyntheticProgram*> got;
        // Stagger the request order per thread to vary the interleaving.
        for (std::size_t i = 0; i < names.size(); ++i)
          got.push_back(
              lib.get(names[(i + static_cast<std::size_t>(t)) %
                            names.size()])
                  .get());
        return got;
      }));
    std::vector<std::vector<const SyntheticProgram*>> all;
    for (auto& f : futs) all.push_back(f.get());
    for (std::size_t i = 0; i < names.size(); ++i) {
      const SyntheticProgram* expected = lib.get(names[i]).get();
      for (int t = 0; t < kThreads; ++t) {
        const std::size_t slot =
            (names.size() - static_cast<std::size_t>(t) % names.size() + i) %
            names.size();
        EXPECT_EQ(all[static_cast<std::size_t>(t)][slot], expected)
            << names[i];
      }
    }
  }
}

TEST(TraceGenerator, ResetReplaysBitIdentically) {
  const auto prog = make_program("mcf");
  TraceGenerator gen(prog, 42);
  std::vector<std::uint64_t> pcs;
  for (int i = 0; i < 500; ++i) {
    gen.advance();
    pcs.push_back(gen.current_pc());
  }
  // Same program + seed: the stream replays exactly.
  gen.reset(prog, 42);
  for (int i = 0; i < 500; ++i) {
    gen.advance();
    ASSERT_EQ(gen.current_pc(), pcs[static_cast<std::size_t>(i)]) << i;
  }
  // Reset onto a different program/seed matches a fresh generator.
  const auto other = make_program("idct");
  gen.reset(other, 7);
  TraceGenerator fresh(other, 7);
  EXPECT_EQ(gen.address_salt(), fresh.address_salt());
  for (int i = 0; i < 500; ++i) {
    gen.advance();
    fresh.advance();
    ASSERT_EQ(gen.current_pc(), fresh.current_pc()) << i;
    ASSERT_EQ(&gen.current_footprint(), &fresh.current_footprint()) << i;
  }
}

TEST(SyntheticProgram, EveryTemplateInstructionIsValid) {
  for (const BenchmarkProfile& p : table1_profiles()) {
    const SyntheticProgram prog(p, kM);
    ASSERT_EQ(static_cast<int>(prog.loops().size()), p.num_loops);
    for (const auto& loop : prog.loops()) {
      EXPECT_GE(loop.real_instrs, 2);
      for (const Instruction& instr : loop.body)
        EXPECT_EQ(instr.validate(kM), "") << p.name;
    }
  }
}

TEST(SyntheticProgram, LoopsEndWithABranch) {
  const auto prog = make_program("gsmencode");
  for (const auto& loop : prog->loops()) {
    const Instruction& last = loop.body.back();
    bool has_branch = false;
    for (const Operation& op : last)
      has_branch |= op.kind == OpKind::kBranch;
    EXPECT_TRUE(has_branch);
  }
}

TEST(SyntheticProgram, FootprintCacheMatchesBodies) {
  const auto prog = make_program("djpeg");
  for (const auto& loop : prog->loops()) {
    ASSERT_EQ(loop.footprints.size(), loop.body.size());
    for (std::size_t i = 0; i < loop.body.size(); ++i)
      EXPECT_TRUE(loop.footprints[i] == Footprint::of(loop.body[i], kM));
  }
}

TEST(SyntheticProgram, AnalyticIpcMatchesTargets) {
  // The builder solves bubbles and miss fractions analytically; its own
  // expectation must land on the Table 1 targets.
  for (const BenchmarkProfile& p : table1_profiles()) {
    const SyntheticProgram prog(p, kM);
    EXPECT_NEAR(prog.expected_ipc_perfect(), p.target_ipc_perfect,
                0.08 * p.target_ipc_perfect)
        << p.name;
    EXPECT_NEAR(prog.expected_ipc_real(), p.target_ipc_real,
                0.08 * p.target_ipc_real)
        << p.name;
  }
}

TEST(SyntheticProgram, HighIlpProgramsAreWider) {
  const auto low = make_program("bzip2");
  const auto high = make_program("colorspace");
  const auto mean_ops = [](const SyntheticProgram& p) {
    double ops = 0, instrs = 0;
    for (const auto& loop : p.loops()) {
      ops += static_cast<double>(loop.total_ops);
      instrs += static_cast<double>(loop.body.size());
    }
    return ops / instrs;
  };
  EXPECT_LT(mean_ops(*low), 2.0);
  EXPECT_GT(mean_ops(*high), 6.0);
}

TEST(SyntheticProgram, SameProfileSameProgram) {
  const SyntheticProgram a(profile_by_name("cjpeg"), kM);
  const SyntheticProgram b(profile_by_name("cjpeg"), kM);
  ASSERT_EQ(a.loops().size(), b.loops().size());
  for (std::size_t l = 0; l < a.loops().size(); ++l) {
    ASSERT_EQ(a.loops()[l].body.size(), b.loops()[l].body.size());
    for (std::size_t i = 0; i < a.loops()[l].body.size(); ++i)
      EXPECT_TRUE(a.loops()[l].body[i] == b.loops()[l].body[i]);
  }
}

TEST(TraceGenerator, DeterministicForSameSeed) {
  const auto prog = make_program("mcf");
  TraceGenerator a(prog, 42), b(prog, 42);
  for (int i = 0; i < 5000; ++i) {
    const Instruction& ia = a.next();
    const Instruction& ib = b.next();
    ASSERT_TRUE(ia == ib) << "diverged at " << i;
  }
}

TEST(TraceGenerator, DifferentSeedsUseDifferentAddressSpaces) {
  const auto prog = make_program("mcf");
  TraceGenerator a(prog, 1), b(prog, 2);
  const std::uint64_t pc_a = a.next().pc();
  const std::uint64_t pc_b = b.next().pc();
  EXPECT_NE(pc_a, pc_b);
}

TEST(TraceGenerator, CopyResumesIdentically) {
  const auto prog = make_program("idct");
  TraceGenerator a(prog, 7);
  for (int i = 0; i < 1234; ++i) a.next();
  TraceGenerator b = a;  // snapshot mid-loop
  for (int i = 0; i < 2000; ++i) {
    const Instruction& ia = a.next();
    const Instruction& ib = b.next();
    ASSERT_TRUE(ia == ib) << "diverged at " << i;
  }
}

TEST(TraceGenerator, EmitsOnlyValidInstructions) {
  const auto prog = make_program("x264");
  TraceGenerator gen(prog, 3);
  for (int i = 0; i < 10000; ++i)
    ASSERT_EQ(gen.next().validate(kM), "");
}

TEST(TraceGenerator, FootprintMatchesEmittedInstruction) {
  const auto prog = make_program("imgpipe");
  TraceGenerator gen(prog, 4);
  for (int i = 0; i < 2000; ++i) {
    const Instruction& instr = gen.next();
    EXPECT_TRUE(gen.current_footprint() == Footprint::of(instr, kM));
  }
}

TEST(TraceGenerator, CountsEmittedInstructions) {
  const auto prog = make_program("bzip2");
  TraceGenerator gen(prog, 5);
  for (int i = 0; i < 321; ++i) gen.next();
  EXPECT_EQ(gen.instructions_emitted(), 321u);
}

TEST(TraceGenerator, MemOpsCarryAddressesInTheRightRegions) {
  const auto prog = make_program("colorspace");
  TraceGenerator gen(prog, 6);
  int hot = 0, cold = 0;
  for (int i = 0; i < 20000; ++i) {
    const Instruction& instr = gen.next();
    for (const Operation& op : instr) {
      if (!is_memory(op.kind)) continue;
      EXPECT_NE(op.addr, 0u);
      // Regions: hot starts at 0x20000000, cold at 0x40000000 (plus the
      // generator's address-space salt).
      if (op.addr - gen.address_salt() >= 0x40000000ULL)
        ++cold;
      else
        ++hot;
    }
  }
  EXPECT_GT(hot, 0);
  EXPECT_GT(cold, 0);  // colorspace streams (IPCr << IPCp)
}

TEST(TraceGenerator, GsmencodeHasNoColdStream) {
  // gsmencode's IPCr == IPCp: the calibration must produce no miss mix.
  const auto prog = make_program("gsmencode");
  for (const auto& loop : prog->loops())
    EXPECT_DOUBLE_EQ(loop.miss_frac, 0.0);
}

TEST(TraceGenerator, VerticalWasteExistsForLowIlp) {
  const auto prog = make_program("bzip2");
  TraceGenerator gen(prog, 8);
  int bubbles = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) bubbles += gen.next().empty() ? 1 : 0;
  // bzip2's IPCp (0.83) < its op density: bubbles must appear.
  EXPECT_GT(bubbles, n / 10);
}

TEST(TraceGenerator, BranchDensityRoughlyOnePerBody) {
  const auto prog = make_program("gsmencode");
  TraceGenerator gen(prog, 9);
  int taken = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (gen.next().taken_branch() != nullptr) ++taken;
  // One loop-end taken branch per body (~body_size instructions) plus a
  // few mid-branches.
  const double body = static_cast<double>(n) / taken;
  EXPECT_GT(body, 4.0);
  EXPECT_LT(body, 40.0);
}

TEST(TraceGenerator, ClusterHomesVaryAcrossLoops) {
  // CSMT depends on different loops anchoring to different clusters.
  const auto prog = make_program("mcf");
  std::map<std::uint32_t, int> mask_census;
  for (const auto& loop : prog->loops()) {
    std::uint32_t combined = 0;
    for (const auto& fp : loop.footprints) combined |= fp.cluster_mask();
    ++mask_census[combined];
  }
  // At least two distinct home-cluster patterns across the 12 loops.
  EXPECT_GE(mask_census.size(), 2u);
}

}  // namespace
}  // namespace cvmt
