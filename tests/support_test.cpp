// Unit tests for the support layer: RNG determinism and distribution
// sanity, InlineVec, statistics accumulators, table rendering, strings.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/inline_vec.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace cvmt {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    CVMT_CHECK_MSG(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(CVMT_CHECK(2 + 2 == 4));
}

TEST(InlineVec, StartsEmpty) {
  using Vec4 = InlineVec<int, 4>;
  Vec4 v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(Vec4::capacity(), 4u);
}

TEST(InlineVec, PushAndIndex) {
  InlineVec<int, 8> v;
  for (int i = 0; i < 8; ++i) v.push_back(i * i);
  EXPECT_EQ(v.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * i);
}

TEST(InlineVec, InitializerListAndEquality) {
  const InlineVec<int, 4> a{1, 2, 3};
  const InlineVec<int, 4> b{1, 2, 3};
  const InlineVec<int, 4> c{1, 2};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(InlineVec, ClearAndPopBack) {
  InlineVec<int, 4> v{5, 6};
  v.pop_back();
  EXPECT_EQ(v.back(), 5);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(InlineVec, RangeFor) {
  InlineVec<int, 4> v{1, 2, 3};
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 6);
}

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicAcrossInstances) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, CopyResumesIdentically) {
  Xoshiro256 a(9);
  for (int i = 0; i < 17; ++i) a.next();
  Xoshiro256 b = a;
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, NextBelowIsInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Xoshiro, NextBelowCoversAllResidues) {
  Xoshiro256 rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, DoubleMeanNearHalf) {
  Xoshiro256 rng(8);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(rng.next_double());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Xoshiro, BoolProbabilityRespected) {
  Xoshiro256 rng(10);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Xoshiro, BoolExtremes) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro, WeightedRespectsWeights) {
  Xoshiro256 rng(12);
  const double w[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.next_weighted(w)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.25);
}

TEST(Xoshiro, WeightedSkipsZeroWeight) {
  Xoshiro256 rng(13);
  const double w[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.next_weighted(w), 1u);
}

TEST(Xoshiro, WeightedRejectsAllZero) {
  Xoshiro256 rng(14);
  const double w[] = {0.0, 0.0};
  EXPECT_THROW((void)rng.next_weighted(w), CheckError);
}

TEST(Xoshiro, TripCountMeanApproximatesTarget) {
  Xoshiro256 rng(15);
  RunningStat s;
  for (int i = 0; i < 50000; ++i)
    s.add(static_cast<double>(rng.next_trip_count(12.0)));
  EXPECT_NEAR(s.mean(), 12.0, 0.5);
  EXPECT_GE(s.min(), 1.0);
}

TEST(Xoshiro, TripCountOfOneIsDegenerate) {
  Xoshiro256 rng(16);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_trip_count(1.0), 1u);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 10;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(Histogram, BucketsAndClamp) {
  Histogram h(4);
  h.add(0);
  h.add(1, 2);
  h.add(3);
  h.add(99);  // clamps into the last bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, MeanAndFraction) {
  Histogram h(5);
  h.add(1, 3);
  h.add(3, 1);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.75);
}

TEST(RatioCounter, Rate) {
  RatioCounter c;
  c.record(true);
  c.record(true);
  c.record(false);
  EXPECT_NEAR(c.rate(), 2.0 / 3.0, 1e-12);
}

TEST(PercentDiff, Basics) {
  EXPECT_DOUBLE_EQ(percent_diff(3.0, 2.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_diff(1.0, 2.0), -50.0);
  EXPECT_THROW((void)percent_diff(1.0, 0.0), CheckError);
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, ToUpper) { EXPECT_EQ(to_upper("3scC"), "3SCC"); }

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(StringUtil, FormatGrouped) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1234567), "1,234,567");
  EXPECT_EQ(format_grouped(-4200), "-4,200");
}

TEST(TableWriter, RejectsMismatchedRow) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(TableWriter, RendersAlignedColumns) {
  TableWriter t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 23 |"), std::string::npos);
}

TEST(TableWriter, CsvSkipsSeparators) {
  TableWriter t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

}  // namespace
}  // namespace cvmt
