// Direct tests of MultithreadedCore::step(): candidate gathering, issue
// accounting, idle cycles and completion detection, using hand-written
// programs for cycle-exact expectations.
#include <gtest/gtest.h>

#include "sim/multithreaded_core.hpp"
#include "trace/vex_asm.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

std::shared_ptr<const SyntheticProgram> cluster_program(int cluster) {
  const std::string text =
      ".program c" + std::to_string(cluster) +
      "\n.machine clusters=4 issue=4\n.stride 8\n.codebytes 32\n"
      ".midtaken 0.0\n"
      ".loop trips=100000 miss=0 code=0x10000 hot=0x20000000+4096 "
      "cold=0x40000000\n"
      "{ c" + std::to_string(cluster) + ".0 alu }\n"
      "{ c" + std::to_string(cluster) + ".0 alu ; c" +
      std::to_string(cluster) + ".3 br }\n.endloop\n";
  return parse_program(text, kM);
}

MemorySystemConfig perfect() {
  MemorySystemConfig m;
  m.perfect = true;
  return m;
}

TEST(CoreStep, DisjointThreadsIssueTogetherUnderCsmt) {
  MemorySystem mem(perfect(), 2);
  MultithreadedCore core(kM, Scheme::parse("1C"),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  ThreadContext t0("t0", cluster_program(0), 1, 1u << 20);
  ThreadContext t1("t1", cluster_program(2), 2, 1u << 20);
  core.set_thread(0, &t0);
  core.set_thread(1, &t1);
  core.step(0);
  // Clusters 0 and 2 are disjoint: both issue in cycle 0.
  EXPECT_EQ(core.stats().total_instructions, 2u);
  EXPECT_EQ(core.stats().total_ops, 2u);
  EXPECT_EQ(core.stats().idle_cycles, 0u);
}

TEST(CoreStep, SameClusterThreadsAlternateUnderCsmt) {
  MemorySystem mem(perfect(), 2);
  MultithreadedCore core(kM, Scheme::parse("1C"),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  ThreadContext t0("t0", cluster_program(1), 1, 1u << 20);
  ThreadContext t1("t1", cluster_program(1), 2, 1u << 20);
  core.set_thread(0, &t0);
  core.set_thread(1, &t1);
  for (std::uint64_t c = 0; c < 40; ++c) core.step(c);
  // At most one thread issues per cycle (same cluster conflicts) and the
  // rotation shares the machine fairly between the two.
  EXPECT_LE(core.stats().total_instructions, 40u);
  EXPECT_GT(core.stats().total_instructions, 20u);
  EXPECT_GT(t0.stats().instructions, 8u);
  EXPECT_GT(t1.stats().instructions, 8u);
  const auto& hist = core.engine().issued_histogram();
  EXPECT_EQ(hist.bucket(2), 0u);  // never two at once
}

TEST(CoreStep, EmptySlotsAreIdleCycles) {
  MemorySystem mem(perfect(), 2);
  MultithreadedCore core(kM, Scheme::parse("1S"),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  core.step(0);  // no threads bound at all
  EXPECT_EQ(core.stats().idle_cycles, 1u);
  EXPECT_EQ(core.stats().cycles, 1u);
  EXPECT_EQ(core.stats().total_instructions, 0u);
}

TEST(CoreStep, ReportsCompletionCycle) {
  MemorySystem mem(perfect(), 1);
  MultithreadedCore core(kM, Scheme::single_thread(),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  ThreadContext t0("t0", cluster_program(0), 1, 3);
  core.set_thread(0, &t0);
  std::uint64_t cycle = 0;
  bool done = false;
  while (!done && cycle < 100) done = core.step(cycle++);
  EXPECT_TRUE(done);
  EXPECT_EQ(t0.stats().instructions, 3u);
}

TEST(CoreStep, StalledThreadLeavesMachineToOthers) {
  MemorySystem mem(perfect(), 2);
  MultithreadedCore core(kM, Scheme::parse("1S"),
                         PriorityPolicy::kFixed, mem,
                         MissPolicy::kSerialized);
  ThreadContext t0("t0", cluster_program(0), 1, 1u << 20);
  ThreadContext t1("t1", cluster_program(0), 2, 1u << 20);
  core.set_thread(0, &t0);
  core.set_thread(1, &t1);
  // SMT merges the two single-ALU packets: both threads progress at full
  // rate, issuing together most cycles.
  for (std::uint64_t c = 0; c < 50; ++c) core.step(c);
  EXPECT_GT(t0.stats().instructions, 10u);
  EXPECT_GT(t1.stats().instructions, 10u);
  EXPECT_GT(core.engine().issued_histogram().bucket(2), 10u);
}

TEST(CoreStep, RejectsBadSlotIndex) {
  MemorySystem mem(perfect(), 2);
  MultithreadedCore core(kM, Scheme::parse("1S"),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  EXPECT_THROW(core.set_thread(2, nullptr), CheckError);
  EXPECT_THROW(core.set_thread(-1, nullptr), CheckError);
}

}  // namespace
}  // namespace cvmt
