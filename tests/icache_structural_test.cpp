// Structurally-eviction-free ICache analysis (mem/icache_structural) and
// the first-touch fetch path built on it: eligibility edge cases (config
// gates, exactly-ways pressure, single-line programs, deliberate
// conflicts), the FirstTouchIndex against a live LRU cache reference, and
// end-to-end bit-identity of kernel-enabled batches on real workloads —
// including a heterogeneous-cluster machine.
#include "mem/icache_structural.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "isa/machine_file.hpp"
#include "mem/cache.hpp"
#include "sim/batch_engine.hpp"
#include "sim/session.hpp"
#include "testgen/oracle.hpp"
#include "trace/benchmark_suite.hpp"
#include "trace/trace_replay.hpp"

namespace cvmt {
namespace {

/// A program whose static fetch set is exactly the given PCs (one
/// single-op instruction per PC; the loop's closing instruction carries
/// the mandatory back-branch). Only the analysis reads these programs.
std::shared_ptr<const SyntheticProgram> program_at(
    std::vector<std::uint64_t> pcs, const MachineConfig& machine) {
  SyntheticProgram::Loop loop;
  for (std::size_t i = 0; i < pcs.size(); ++i) {
    Instruction instr;
    Operation op;  // ALU in cluster 0, slot 0: valid on every machine
    if (i + 1 == pcs.size()) {
      op.kind = OpKind::kBranch;
      op.slot = static_cast<std::uint8_t>(
          std::countr_zero(machine.slots_for(OpKind::kBranch, 0)));
    }
    instr.add(op);
    instr.set_pc(pcs[i]);
    loop.body.push_back(instr);
  }
  loop.code_base = pcs.front();
  loop.hot_window = 64;
  BenchmarkProfile profile;
  profile.name = "lines";
  return std::make_shared<const SyntheticProgram>(profile, machine,
                                                  std::vector{loop});
}

MemorySystemConfig default_mem() { return MemorySystemConfig{}; }

// --- config gates ----------------------------------------------------

TEST(IcacheStructural, PerfectMemoryIneligible) {
  const MachineConfig m = MachineConfig::vex4x4();
  const std::vector programs = {program_at({0x1000}, m)};
  const std::vector<std::uint64_t> salts = {0};
  MemorySystemConfig mem = default_mem();
  mem.perfect = true;
  const IcacheStructuralReport r =
      analyze_icache_structural(programs, salts, mem);
  EXPECT_FALSE(r.eligible);
  EXPECT_NE(r.reason.find("perfect"), std::string::npos) << r.reason;
}

TEST(IcacheStructural, PrivateCachesIneligible) {
  const MachineConfig m = MachineConfig::vex4x4();
  const std::vector programs = {program_at({0x1000}, m)};
  const std::vector<std::uint64_t> salts = {0};
  MemorySystemConfig mem = default_mem();
  mem.sharing = CacheSharing::kPrivate;
  const IcacheStructuralReport r =
      analyze_icache_structural(programs, salts, mem);
  EXPECT_FALSE(r.eligible);
  EXPECT_NE(r.reason.find("private"), std::string::npos) << r.reason;
}

TEST(IcacheStructural, L2Ineligible) {
  const MachineConfig m = MachineConfig::vex4x4();
  const std::vector programs = {program_at({0x1000}, m)};
  const std::vector<std::uint64_t> salts = {0};
  MemorySystemConfig mem = default_mem();
  mem.has_l2 = true;
  const IcacheStructuralReport r =
      analyze_icache_structural(programs, salts, mem);
  EXPECT_FALSE(r.eligible);
  EXPECT_NE(r.reason.find("L2"), std::string::npos) << r.reason;
}

// --- set pressure ----------------------------------------------------

// Lines all mapping to ONE set, exactly as many as the set has ways:
// residency is permanent, the workload is eligible. One more line and LRU
// must evict — ineligible. The default ICache is 64KB 4-way with 64B
// lines (256 sets), so set 0 repeats every 16KB.
TEST(IcacheStructural, ExactlyWaysPressureIsEligible) {
  const MachineConfig m = MachineConfig::vex4x4();
  const MemorySystemConfig mem = default_mem();
  const std::uint64_t set_stride =
      mem.icache.num_sets() * mem.icache.line_bytes;
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  for (std::uint32_t t = 0; t < mem.icache.ways; ++t)
    programs.push_back(program_at({t * set_stride}, m));
  const std::vector<std::uint64_t> salts(programs.size(), 0);
  const IcacheStructuralReport r =
      analyze_icache_structural(programs, salts, mem);
  EXPECT_TRUE(r.eligible) << r.reason;
  EXPECT_EQ(r.max_set_pressure, mem.icache.ways);
  EXPECT_EQ(r.distinct_lines, mem.icache.ways);
}

TEST(IcacheStructural, OverWaysPressureIsIneligible) {
  const MachineConfig m = MachineConfig::vex4x4();
  const MemorySystemConfig mem = default_mem();
  const std::uint64_t set_stride =
      mem.icache.num_sets() * mem.icache.line_bytes;
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  for (std::uint32_t t = 0; t < mem.icache.ways + 1; ++t)
    programs.push_back(program_at({t * set_stride}, m));
  const std::vector<std::uint64_t> salts(programs.size(), 0);
  const IcacheStructuralReport r =
      analyze_icache_structural(programs, salts, mem);
  EXPECT_FALSE(r.eligible);
  EXPECT_EQ(r.max_set_pressure, mem.icache.ways + 1);
  EXPECT_NE(r.reason.find("set pressure"), std::string::npos) << r.reason;
}

// Single-line programs: the smallest possible footprint, many threads.
// All 16 land in DIFFERENT sets here, so pressure stays 1.
TEST(IcacheStructural, SingleLineProgramsEligible) {
  const MachineConfig m = MachineConfig::vex4x4();
  const MemorySystemConfig mem = default_mem();
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  for (std::uint64_t t = 0; t < 16; ++t)
    programs.push_back(program_at({t * mem.icache.line_bytes}, m));
  const std::vector<std::uint64_t> salts(programs.size(), 0);
  const IcacheStructuralReport r =
      analyze_icache_structural(programs, salts, mem);
  EXPECT_TRUE(r.eligible) << r.reason;
  EXPECT_EQ(r.distinct_lines, 16u);
  EXPECT_EQ(r.max_set_pressure, 1u);
}

// A deliberately conflicting pair: identical template PCs with identical
// salts fetch the same lines, so one thread's compulsory miss would be
// the other's warm hit — the analysis must refuse.
TEST(IcacheStructural, OverlappingLineSetsIneligible) {
  const MachineConfig m = MachineConfig::vex4x4();
  const std::vector programs = {program_at({0x4000, 0x4040}, m),
                                program_at({0x4000, 0x4040}, m)};
  const std::vector<std::uint64_t> salts = {0, 0};
  const IcacheStructuralReport r =
      analyze_icache_structural(programs, salts, default_mem());
  EXPECT_FALSE(r.eligible);
  EXPECT_NE(r.reason.find("overlap"), std::string::npos) << r.reason;
}

// The same pair becomes eligible once the salts differ: the line sets
// separate (salts shift whole lines), and with the default 256-set cache
// the per-set pressure of two one-line-apart threads is at most 2.
TEST(IcacheStructural, DistinctSaltsSeparateIdenticalPrograms) {
  const MachineConfig m = MachineConfig::vex4x4();
  const std::vector programs = {program_at({0x4000, 0x4040}, m),
                                program_at({0x4000, 0x4040}, m)};
  const std::vector<std::uint64_t> salts = {0, 0x100000};
  const IcacheStructuralReport r =
      analyze_icache_structural(programs, salts, default_mem());
  EXPECT_TRUE(r.eligible) << r.reason;
  EXPECT_EQ(r.distinct_lines, 4u);
}

// Per-thread address salts are whole-megabyte multiples: they relocate a
// thread's lines (distinct tags) without ever changing set indices, which
// is exactly what the disjointness/pressure split above assumes.
TEST(IcacheStructural, SaltsAreMegabyteAligned) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const std::uint64_t salt = TraceGenerator::salt_for_seed(seed);
    EXPECT_EQ(salt % 0x100000u, 0u) << "seed " << seed;
    EXPECT_LT(salt, 2048u * 0x100000u) << "seed " << seed;
  }
}

// The recorded variant is budget-exact. Whole-program: loop regions sit
// 4KB apart while the default cache's set period is 16KB, so the 12 loops
// fold into 4 set-groups of 3 — two threads stack 6 distinct lines onto
// one set, over the 4 ways, and the static analysis must refuse. A small
// budget only ever fetches the first loop or two per thread, so the
// recorded line sets pass.
TEST(IcacheStructural, RecordedAnalysisIsBudgetExact) {
  const MachineConfig m = MachineConfig::vex4x4();
  const auto program = std::make_shared<const SyntheticProgram>(
      profile_by_name("colorspace"), m);
  const std::vector programs = {program, program};
  const std::vector<std::uint64_t> seeds = {42, 43};
  const std::vector<std::uint64_t> salts = {
      TraceGenerator::salt_for_seed(seeds[0]),
      TraceGenerator::salt_for_seed(seeds[1])};
  const MemorySystemConfig mem = default_mem();
  const IcacheStructuralReport full =
      analyze_icache_structural(programs, salts, mem);
  EXPECT_FALSE(full.eligible);
  EXPECT_GT(full.max_set_pressure, mem.icache.ways);

  TraceReplay r0(program, seeds[0]);
  TraceReplay r1(program, seeds[1]);
  r0.ensure(500);
  r1.ensure(500);
  const std::vector<TraceReplay*> replays = {&r0, &r1};
  const IcacheStructuralReport recorded =
      analyze_icache_structural_recorded(
          std::span<TraceReplay* const>(replays.data(), replays.size()),
          500, mem);
  EXPECT_TRUE(recorded.eligible) << recorded.reason;
  EXPECT_LE(recorded.max_set_pressure, mem.icache.ways);
}

// --- first-touch index vs a live LRU cache ---------------------------

// On an eligible (single-thread, trivially disjoint) stream, the
// first-touch bit must equal the live shared cache's miss on every fetch,
// in stream order — the exact substitution the batch engine performs.
TEST(IcacheStructural, FirstTouchMatchesLiveCache) {
  const MachineConfig m = MachineConfig::vex4x4();
  const auto program = std::make_shared<const SyntheticProgram>(
      profile_by_name("g721encode"), m);
  TraceReplay replay(program, /*stream_seed=*/0x5EEDu);
  const MemorySystemConfig mem = default_mem();
  const std::uint32_t line_shift = 6;  // 64B lines
  const std::uint64_t count = 4096;
  const FirstTouchIndex& ft = replay.first_touch(line_shift, count);
  ASSERT_GE(ft.covered(), count);

  SetAssocCache cache(mem.icache);
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool hit = cache.access(replay.entry(i).pc);
    EXPECT_EQ(ft.miss(i), !hit) << "entry " << i;
  }
}

// Extending the index keeps earlier bits unchanged (append-only).
TEST(IcacheStructural, FirstTouchExtensionIsAppendOnly) {
  const MachineConfig m = MachineConfig::vex4x4();
  const auto program = std::make_shared<const SyntheticProgram>(
      profile_by_name("bzip2"), m);
  TraceReplay replay(program, 7);
  const FirstTouchIndex& ft = replay.first_touch(6, 256);
  std::vector<bool> before;
  for (std::uint64_t i = 0; i < 256; ++i) before.push_back(ft.miss(i));
  const FirstTouchIndex& wider = replay.first_touch(6, 4096);
  EXPECT_EQ(&ft, &wider);  // same index object, same granularity
  for (std::uint64_t i = 0; i < 256; ++i)
    EXPECT_EQ(wider.miss(i), before[i]) << "entry " << i;
}

// --- end-to-end: kernels vs the session path -------------------------

/// Runs `workload` under `cfg` through a kernels-enabled 1-lane batch and
/// compares bit-for-bit against the sequential session path.
void expect_kernel_identity(const MachineDescription& md,
                            const Workload& workload, std::uint64_t budget,
                            SimBatch::KernelStats* stats_out = nullptr) {
  const Scheme scheme = Scheme::paper_schemes_4t().front();
  SimConfig cfg;
  cfg.machine = md.machine;
  cfg.mem = md.mem;
  cfg.switch_policy = md.switch_policy;
  cfg.instruction_budget = budget;
  cfg.timeslice_cycles = 500;
  cfg.stats = StatsLevel::kFull;
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  for (const std::string& name : workload.benchmarks)
    programs.push_back(std::make_shared<const SyntheticProgram>(
        profile_by_name(name), cfg.machine));
  const SimResult reference = run_simulation(scheme, programs, cfg);

  SimBatch batch(1);
  batch.set_kernels_enabled(true);
  BatchRunSpec spec;
  spec.scheme = std::make_shared<const CompiledScheme>(scheme, cfg.machine);
  spec.programs = programs;
  spec.config = cfg;
  batch.enqueue(std::move(spec));
  const std::vector<SimResult> results = batch.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(compare_sim_results(reference, results[0],
                                /*compare_merge_stats=*/true),
            "");
  if (stats_out != nullptr) *stats_out = batch.kernel_stats();
}

// The paper machine: 4-thread Table 2 workloads are structurally eligible
// (each thread's template lines sit in distinct sets, so pressure ==
// thread count <= ways) and the default policy is oblivious — the fused
// kernel must actually engage, and the result must match the session path
// exactly, ICache counters included.
TEST(IcacheStructural, FusedKernelEngagesAndMatchesOnPaperMachine) {
  MachineDescription md;
  ASSERT_TRUE(find_builtin_machine("vex4x4", md));
  SimBatch::KernelStats stats;
  expect_kernel_identity(md, table2_workloads().front(), 2000, &stats);
  EXPECT_EQ(stats.fused_jobs, 1u);
  EXPECT_EQ(stats.structural_jobs, 0u);
  EXPECT_EQ(stats.generic_jobs, 0u);
}

// Heterogeneous clusters (het4422): different footprints, same
// eligibility logic. The kernel path chosen is machine-dependent detail;
// the pinned property is bit-identity.
TEST(IcacheStructural, KernelsMatchOnHeterogeneousMachine) {
  MachineDescription md;
  ASSERT_TRUE(find_builtin_machine("het4422", md));
  for (const Workload& wl : {table2_workloads()[0], table2_workloads()[3]})
    expect_kernel_identity(md, wl, 1500);
}

// An L2 machine gates the kernels off entirely; identity must hold via
// the generic path and every job must be accounted generic.
TEST(IcacheStructural, L2MachineFallsBackToGeneric) {
  MachineDescription md;
  ASSERT_TRUE(find_builtin_machine("l2banked", md));
  SimBatch::KernelStats stats;
  expect_kernel_identity(md, table2_workloads()[1], 1500, &stats);
  EXPECT_EQ(stats.fused_jobs, 0u);
  EXPECT_EQ(stats.structural_jobs, 0u);
  EXPECT_EQ(stats.generic_jobs, 1u);
}

}  // namespace
}  // namespace cvmt
