// Golden bit-identity of run_simulation across the hot-path variants:
// the compiled MergePlan evaluator plus stall fast-forward must reproduce
// the reference recursive-tree, cycle-stepped simulation exactly — every
// counter, not just IPC — for every paper scheme and priority policy; and
// StatsLevel::kFast must agree with kFull on every shared result field.
// The session-reuse contract is pinned here too: a reset SimInstance must
// replay bit-identically to fresh construction for every paper scheme x
// policy, including mixed stats levels and eval modes on one instance.
#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "sim/session.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

ProgramLibrary& library() {
  static ProgramLibrary lib(kM);
  return lib;
}

std::vector<std::shared_ptr<const SyntheticProgram>> programs() {
  static const std::vector<std::shared_ptr<const SyntheticProgram>> progs =
      {library().get("mcf"), library().get("djpeg"), library().get("idct"),
       library().get("x264")};
  return progs;
}

SimConfig golden_config() {
  SimConfig cfg;
  cfg.instruction_budget = 2'500;
  cfg.timeslice_cycles = 600;
  return cfg;
}

/// Field-by-field equality of two results, including per-thread stats,
/// cache counters, OS stats, the issued histogram and merge-node stats.
void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& what, bool compare_merge_stats) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.total_ops, b.total_ops) << what;
  EXPECT_EQ(a.total_instructions, b.total_instructions) << what;
  EXPECT_EQ(a.idle_cycles, b.idle_cycles) << what;
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc) << what;
  ASSERT_EQ(a.threads.size(), b.threads.size()) << what;
  for (std::size_t t = 0; t < a.threads.size(); ++t) {
    const ThreadResult& ta = a.threads[t];
    const ThreadResult& tb = b.threads[t];
    EXPECT_EQ(ta.benchmark, tb.benchmark) << what;
    EXPECT_EQ(ta.instructions, tb.instructions) << what;
    EXPECT_EQ(ta.ops, tb.ops) << what;
    EXPECT_EQ(ta.stats.bubbles, tb.stats.bubbles) << what;
    EXPECT_EQ(ta.stats.taken_branches, tb.stats.taken_branches) << what;
    EXPECT_EQ(ta.stats.dcache_stall_cycles, tb.stats.dcache_stall_cycles)
        << what;
    EXPECT_EQ(ta.stats.icache_stall_cycles, tb.stats.icache_stall_cycles)
        << what;
    EXPECT_EQ(ta.stats.branch_stall_cycles, tb.stats.branch_stall_cycles)
        << what;
  }
  EXPECT_EQ(a.icache.hits, b.icache.hits) << what;
  EXPECT_EQ(a.icache.total, b.icache.total) << what;
  EXPECT_EQ(a.dcache.hits, b.dcache.hits) << what;
  EXPECT_EQ(a.dcache.total, b.dcache.total) << what;
  EXPECT_EQ(a.os.context_switches, b.os.context_switches) << what;
  EXPECT_EQ(a.os.timeslices, b.os.timeslices) << what;
  if (!compare_merge_stats) return;
  ASSERT_EQ(a.issued_per_cycle.num_buckets(), b.issued_per_cycle.num_buckets())
      << what;
  for (std::size_t k = 0; k < a.issued_per_cycle.num_buckets(); ++k)
    EXPECT_EQ(a.issued_per_cycle.bucket(k), b.issued_per_cycle.bucket(k))
        << what << " bucket " << k;
  ASSERT_EQ(a.merge_nodes.size(), b.merge_nodes.size()) << what;
  for (std::size_t i = 0; i < a.merge_nodes.size(); ++i) {
    EXPECT_EQ(a.merge_nodes[i].label, b.merge_nodes[i].label) << what;
    EXPECT_EQ(a.merge_nodes[i].attempts, b.merge_nodes[i].attempts)
        << what << " node " << i;
    EXPECT_EQ(a.merge_nodes[i].rejects, b.merge_nodes[i].rejects)
        << what << " node " << i;
  }
}

TEST(SimGolden, PlanAndFastForwardAreBitIdenticalToReference) {
  std::vector<std::string> schemes;
  for (const Scheme& s : Scheme::paper_schemes_4t())
    schemes.push_back(s.name());
  schemes.emplace_back("IMT4");
  schemes.emplace_back("1C");

  for (const std::string& name : schemes) {
    for (const PriorityPolicy policy :
         {PriorityPolicy::kRoundRobin, PriorityPolicy::kFixed,
          PriorityPolicy::kStickyOnStall}) {
      const Scheme scheme = Scheme::parse(name);
      SimConfig reference = golden_config();
      reference.priority = policy;
      reference.eval_mode = EvalMode::kTreeReference;
      reference.stall_fast_forward = false;
      SimConfig rebuilt = golden_config();
      rebuilt.priority = policy;
      rebuilt.eval_mode = EvalMode::kPlan;
      rebuilt.stall_fast_forward = true;

      const SimResult a = run_simulation(scheme, programs(), reference);
      const SimResult b = run_simulation(scheme, programs(), rebuilt);
      expect_identical(a, b,
                       name + "/policy" +
                           std::to_string(static_cast<int>(policy)),
                       /*compare_merge_stats=*/true);
    }
  }
}

TEST(SimGolden, SingleThreadFastForwardIsBitIdentical) {
  // Single-thread runs have the longest all-stalled windows (every miss
  // is a full stall), so they stress the jump accounting hardest.
  SimConfig stepped = golden_config();
  stepped.stall_fast_forward = false;
  SimConfig jumped = golden_config();
  jumped.stall_fast_forward = true;
  const std::vector<std::shared_ptr<const SyntheticProgram>> progs = {
      library().get("mcf")};
  const SimResult a = run_simulation(Scheme::single_thread(), progs,
                                     stepped);
  const SimResult b = run_simulation(Scheme::single_thread(), progs,
                                     jumped);
  expect_identical(a, b, "1T", /*compare_merge_stats=*/true);
  EXPECT_GT(a.idle_cycles, 0u);  // the scenario actually exercises stalls
}

TEST(SimGolden, FastStatsAgreeOnAllSharedFields) {
  for (const char* name : {"3CCC", "2SC3", "3SSS", "C4", "2CS"}) {
    SimConfig full = golden_config();
    full.stats = StatsLevel::kFull;
    SimConfig fast = golden_config();
    fast.stats = StatsLevel::kFast;
    const SimResult a = run_simulation(Scheme::parse(name), programs(),
                                       full);
    const SimResult b = run_simulation(Scheme::parse(name), programs(),
                                       fast);
    // Shared fields identical; merge statistics intentionally differ
    // (fast mode leaves them zeroed).
    expect_identical(a, b, name, /*compare_merge_stats=*/false);
    EXPECT_GT(a.issued_per_cycle.total(), 0u);
    EXPECT_EQ(b.issued_per_cycle.total(), 0u);
    std::uint64_t fast_attempts = 0;
    for (const auto& node : b.merge_nodes) fast_attempts += node.attempts;
    EXPECT_EQ(fast_attempts, 0u);
    for (const auto& node : b.merge_nodes)
      EXPECT_FALSE(node.label.empty());  // labels survive in fast mode
  }
}

TEST(SimGolden, FastForwardRespectsMaxCyclesAndTimeslices) {
  SimConfig cfg = golden_config();
  cfg.max_cycles = 1'000;
  const std::vector<std::shared_ptr<const SyntheticProgram>> progs = {
      library().get("mcf")};
  const SimResult r =
      run_simulation(Scheme::single_thread(), progs, cfg);
  EXPECT_EQ(r.cycles, 1'000u);  // the jump never overshoots the guard
  // Reschedule points are never skipped: every timeslice boundary inside
  // the run produced a timeslice.
  EXPECT_EQ(r.os.timeslices,
            (r.cycles + cfg.timeslice_cycles - 1) / cfg.timeslice_cycles);
}

TEST(SimGolden, InstanceResetAndRerunMatchesFreshConstruction) {
  // The session layer's core invariant, over every paper scheme x policy:
  // SimInstance::reset() + rerun (and the implicit reset at each run())
  // reproduces the freshly-constructed run_simulation result exactly.
  std::vector<std::string> schemes;
  for (const Scheme& s : Scheme::paper_schemes_4t())
    schemes.push_back(s.name());
  schemes.emplace_back("IMT4");

  ArtifactCache cache;
  for (const std::string& name : schemes) {
    for (const PriorityPolicy policy :
         {PriorityPolicy::kRoundRobin, PriorityPolicy::kFixed,
          PriorityPolicy::kStickyOnStall}) {
      SimConfig cfg = golden_config();
      cfg.priority = policy;
      const Scheme scheme = Scheme::parse(name);
      const SimResult fresh = run_simulation(scheme, programs(), cfg);

      SimInstance instance(cache.scheme(scheme, kM), cfg);
      const SimResult first = instance.run(programs());
      instance.reset();
      const SimResult rerun = instance.run(programs());
      const std::string what =
          name + "/policy" + std::to_string(static_cast<int>(policy));
      expect_identical(fresh, first, what + "/first",
                       /*compare_merge_stats=*/true);
      expect_identical(fresh, rerun, what + "/reset-rerun",
                       /*compare_merge_stats=*/true);
    }
  }
}

TEST(SimGolden, OneInstanceSurvivesMixedStatsLevelsAndEvalModes) {
  // The fuzz oracle's usage pattern: one instance sweeps every hot-path
  // configuration. Each run must match its own fresh-construction result
  // — no stats residue, no evaluator cross-talk.
  ArtifactCache cache;
  struct Mode {
    StatsLevel stats;
    EvalMode eval;
    bool fast_forward;
  };
  const Mode modes[] = {
      {StatsLevel::kFull, EvalMode::kPlan, true},
      {StatsLevel::kFast, EvalMode::kPlan, true},
      {StatsLevel::kFull, EvalMode::kTreeReference, false},
      {StatsLevel::kFull, EvalMode::kPlan, false},
      {StatsLevel::kFull, EvalMode::kPlan, true},  // back to the baseline
      {StatsLevel::kFast, EvalMode::kTreeReference, true},
  };
  for (const char* name : {"2SC3", "2CS", "IMT4"}) {
    const Scheme scheme = Scheme::parse(name);
    SimInstance instance(cache.scheme(scheme, kM), golden_config());
    for (std::size_t m = 0; m < std::size(modes); ++m) {
      SimConfig cfg = golden_config();
      cfg.stats = modes[m].stats;
      cfg.eval_mode = modes[m].eval;
      cfg.stall_fast_forward = modes[m].fast_forward;
      instance.set_config(cfg);
      const SimResult reused = instance.run(programs());
      const SimResult fresh = run_simulation(scheme, programs(), cfg);
      expect_identical(fresh, reused,
                       std::string(name) + "/mode" + std::to_string(m),
                       /*compare_merge_stats=*/true);
    }
  }
}

TEST(SimGolden, ReseededRunsReproduceBitIdentically) {
  // End-to-end cover for MergeEngine::reset_rotation semantics: two
  // fresh runs with identical seeds share every counter.
  SimConfig cfg = golden_config();
  cfg.priority = PriorityPolicy::kStickyOnStall;
  const SimResult a = run_simulation(Scheme::parse("2SC3"), programs(),
                                     cfg);
  const SimResult b = run_simulation(Scheme::parse("2SC3"), programs(),
                                     cfg);
  expect_identical(a, b, "reseeded", /*compare_merge_stats=*/true);
}

}  // namespace
}  // namespace cvmt
