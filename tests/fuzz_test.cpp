// The property-based differential fuzzing subsystem (src/testgen):
// generator well-formedness and determinism, corpus replay of the
// checked-in repro files, the fixed 200-case tier-1 sweep (deterministic
// and worker-count invariant), FuzzCase serialization round trips, and
// greedy-shrinker minimization under synthetic failure predicates.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>

#include "exp/registry.hpp"
#include "sim/session.hpp"
#include "testgen/fuzz_driver.hpp"
#include "testgen/generators.hpp"

#ifndef CVMT_SOURCE_DIR
#error "CVMT_SOURCE_DIR must be defined (see CMakeLists.txt)"
#endif

namespace cvmt {
namespace {

std::string corpus_dir() {
  return std::string(CVMT_SOURCE_DIR) + "/tests/corpus";
}

// ----------------------------------------------------------- generators

TEST(SchemeGenTest, ProducesWellFormedDiverseSchemes) {
  bool saw_select = false;
  bool saw_parallel = false;
  bool saw_wide = false;  // beyond the ablation's 8 threads
  std::set<std::string> distinct;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    SchemeGen gen(seed);
    const Scheme s = gen.next();
    ASSERT_GE(s.num_threads(), 1);
    ASSERT_LE(s.num_threads(), kMaxThreads);
    // Construction already validated; validate() must agree.
    EXPECT_EQ(Scheme::validate(s.root()), "");
    // Canonical text round-trips through the parser.
    const Scheme reparsed = Scheme::parse(s.canonical());
    EXPECT_EQ(reparsed.canonical(), s.canonical());
    EXPECT_EQ(reparsed.num_threads(), s.num_threads());
    saw_select = saw_select || s.count_blocks(MergeKind::kSelect) > 0;
    saw_parallel = saw_parallel || s.canonical().find("CP(") !=
                                       std::string::npos;
    saw_wide = saw_wide || s.num_threads() > 8;
    distinct.insert(s.canonical());
  }
  EXPECT_TRUE(saw_select);
  EXPECT_TRUE(saw_parallel);
  EXPECT_TRUE(saw_wide);
  EXPECT_GT(distinct.size(), 150u);  // actual diversity, not repetition
}

TEST(SchemeGenTest, FixedThreadCountIsHonoured) {
  SchemeGen gen(7);
  for (int n = 1; n <= kMaxThreads; ++n)
    EXPECT_EQ(gen.next(n).num_threads(), n);
}

TEST(WorkloadGenTest, ProfilesStayInTheValidatedEnvelope) {
  WorkloadGen gen(11);
  for (int i = 0; i < 100; ++i) {
    const BenchmarkProfile p = gen.next("p" + std::to_string(i));
    p.validate();  // throws on any violation
    // The builder's 4KB code region must fit worst-case bodies.
    EXPECT_LE(p.code_bytes_per_instr, 16u);
    EXPECT_GE(p.target_ipc_perfect, 0.9);
  }
}

TEST(MachineGenTest, ShapesValidateAndStayWithinTotalOps) {
  MachineGen gen(13);
  for (int i = 0; i < 100; ++i) {
    const MachineConfig m = gen.next_machine();
    m.validate();
    EXPECT_LE(m.num_clusters * m.issue_per_cluster, kMaxTotalOps);
    const MemorySystemConfig mem = gen.next_memory();
    mem.icache.validate();
    mem.dcache.validate();
  }
}

TEST(MachineGenTest, NewMachineAxesAreAllExercised) {
  // Heterogeneous shapes, L2 hierarchies, banked DCaches and every switch
  // policy must each appear with real frequency — otherwise the five
  // differential oracles silently stop covering the new machine axes.
  int het = 0, mixed_widths = 0, no_mul_cluster = 0;
  int l2 = 0, banked = 0;
  std::set<SwitchPolicyKind> policies;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const FuzzCase c = generate_case(seed);
    c.sim.machine.validate();
    c.sim.mem.validate();
    if (c.sim.machine.heterogeneous) {
      ++het;
      const MachineConfig& m = c.sim.machine;
      for (int cl = 1; cl < m.num_clusters; ++cl)
        if (m.cluster_issue(cl) != m.cluster_issue(0)) {
          ++mixed_widths;
          break;
        }
      for (int cl = 0; cl < m.num_clusters; ++cl)
        if (m.slots_for(OpKind::kMul, cl) == 0) {
          ++no_mul_cluster;
          break;
        }
    }
    if (c.sim.mem.has_l2) ++l2;
    if (c.sim.mem.dcache_banks > 1) ++banked;
    policies.insert(c.sim.switch_policy);
  }
  EXPECT_GT(het, 20);
  EXPECT_GT(mixed_widths, 10);       // widths genuinely differ, not 4+4+4
  EXPECT_GT(no_mul_cluster, 5);      // capability-free clusters occur
  EXPECT_GT(l2, 40);
  EXPECT_GT(banked, 60);
  EXPECT_EQ(policies.size(), 3u);    // random, prestall, poststall
}

TEST(CaseGenTest, CasesAreReproducibleFromTheirSeed) {
  const FuzzCase a = generate_case(12345);
  const FuzzCase b = generate_case(12345);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  const FuzzCase c = generate_case(12346);
  EXPECT_NE(a.to_json().dump(), c.to_json().dump());
}

TEST(CaseGenTest, JsonAndFileRoundTrip) {
  const FuzzCase a = generate_case(99);
  const FuzzCase b = FuzzCase::from_json(a.to_json());
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());

  const std::string path =
      (std::filesystem::temp_directory_path() / "cvmt_fuzz_rt.json")
          .string();
  save_case(path, a);
  const FuzzCase c = load_case(path);
  EXPECT_EQ(a.to_json().dump(), c.to_json().dump());
  std::remove(path.c_str());
}

// ------------------------------------------------------------- oracles

TEST(OracleTest, CompareReportsFirstMismatchingCounter) {
  SimResult a;
  a.scheme = "S(0,1)";
  a.cycles = 100;
  SimResult b = a;
  EXPECT_EQ(compare_sim_results(a, b, true), "");
  b.cycles = 101;
  EXPECT_EQ(compare_sim_results(a, b, true), "cycles: 100 != 101");
  b = a;
  b.threads.emplace_back();
  EXPECT_EQ(compare_sim_results(a, b, true), "threads.size: 0 != 1");
}

TEST(OracleTest, MalformedCaseFailsWithConstructionError) {
  FuzzCase c = generate_case(1);
  c.scheme = "S(0,0)";  // duplicate thread id
  const OracleReport r = run_oracles(c);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.construction_error.find("duplicate thread id"),
            std::string::npos);
}

TEST(OracleTest, CacheBackedOraclesMatchThePlainPath) {
  // The shrinker's variant: programs come from an ArtifactCache (keyed
  // by profile content) instead of being rebuilt per evaluation. Same
  // verdicts, same simulation count — and repeated evaluations of one
  // case reuse the cached programs.
  ArtifactCache artifacts;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const FuzzCase c = generate_case(seed);
    const OracleReport plain = run_oracles(c);
    const OracleReport cached = run_oracles(c, artifacts);
    EXPECT_EQ(plain.ok, cached.ok) << c.summary();
    EXPECT_EQ(plain.simulations, cached.simulations);
    EXPECT_EQ(plain.to_string(), cached.to_string());
  }
  const std::size_t warm = artifacts.size();
  EXPECT_GT(warm, 0u);
  (void)run_oracles(generate_case(11), artifacts);  // all hits
  EXPECT_EQ(artifacts.size(), warm);
}

// ----------------------------------------------------- corpus + sweeps

TEST(FuzzSweepTest, CheckedInCorpusReplaysClean) {
  const std::vector<FuzzCase> corpus = load_corpus_dir(corpus_dir());
  ASSERT_GE(corpus.size(), 5u) << "corpus missing at " << corpus_dir();
  for (const FuzzCase& c : corpus) {
    const OracleReport r = run_oracles(c);
    EXPECT_TRUE(r.ok) << c.label << ": " << r.to_string();
  }
}

TEST(FuzzSweepTest, Deterministic200CaseSweepPasses) {
  FuzzOptions options;
  options.cases = 200;
  options.seed = 1;
  options.workers = 1;
  const FuzzSweepResult sweep = run_fuzz_sweep(options);
  EXPECT_EQ(sweep.outcomes.size(), 200u);
  EXPECT_EQ(sweep.failures, 0u);
  for (const FuzzOutcome& o : sweep.outcomes)
    EXPECT_TRUE(o.report.ok) << o.c.label << ": " << o.report.to_string();
}

TEST(FuzzSweepTest, SweepIsWorkerCountInvariant) {
  FuzzOptions serial;
  serial.cases = 60;
  serial.seed = 2;
  serial.workers = 1;
  FuzzOptions parallel = serial;
  parallel.workers = 4;
  const FuzzSweepResult a = run_fuzz_sweep(serial);
  const FuzzSweepResult b = run_fuzz_sweep(parallel);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.failures, b.failures);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].c.label, b.outcomes[i].c.label);
    EXPECT_EQ(a.outcomes[i].c.to_json().dump(),
              b.outcomes[i].c.to_json().dump());
    EXPECT_EQ(a.outcomes[i].report.ok, b.outcomes[i].report.ok);
  }
  std::ostringstream sa, sb;
  a.summary().write_csv(sa);
  b.summary().write_csv(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(FuzzSweepTest, FuzzExperimentIsRegistered) {
  const Experiment* e = ExperimentRegistry::instance().find("fuzz");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->artifact, "validation");
}

// ------------------------------------------------------------ shrinker

TEST(ShrinkTest, PassingCaseIsReturnedUnchanged) {
  const FuzzCase c = generate_case(3);
  const ShrinkResult r =
      shrink_case(c, [](const FuzzCase&) { return false; });
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.accepted, 0);
  EXPECT_EQ(r.minimized.to_json().dump(), c.to_json().dump());
}

TEST(ShrinkTest, GreedyShrinkReachesAMinimalCase) {
  // Synthetic failure: any scheme with >= 3 threads containing an SMT
  // block, with a budget of at least 200. The minimum satisfying case has
  // exactly 3 threads, one SMT block and a budget the halving loop cannot
  // cut below 200.
  const auto fails = [](const FuzzCase& c) {
    const Scheme s = c.parse_scheme();
    return s.num_threads() >= 3 && s.count_blocks(MergeKind::kSmt) > 0 &&
           c.sim.instruction_budget >= 200;
  };
  FuzzCase big = generate_case(4);
  big.scheme = "S(C(0,1),S(2,3),CP(4,5))";
  big.sim.instruction_budget = 1600;
  ASSERT_TRUE(fails(big));

  const ShrinkResult r = shrink_case(big, fails);
  EXPECT_TRUE(fails(r.minimized));
  const Scheme min_scheme = r.minimized.parse_scheme();
  EXPECT_EQ(min_scheme.num_threads(), 3);
  EXPECT_GT(min_scheme.count_blocks(MergeKind::kSmt), 0);
  EXPECT_LT(r.minimized.sim.instruction_budget, 400u);
  EXPECT_GE(r.minimized.sim.instruction_budget, 200u);
  EXPECT_GT(r.accepted, 0);
  EXPECT_NE(r.minimized.label.find("+shrunk"), std::string::npos);
}

TEST(ShrinkTest, SchemePruningRenumbersPortsDensely) {
  // A predicate that only looks at the thread count forces the shrinker
  // through subtree pruning; every intermediate scheme must stay valid,
  // which requires dense renumbering after dropping leaves.
  const auto fails = [](const FuzzCase& c) {
    return c.parse_scheme().num_threads() >= 2;
  };
  FuzzCase big = generate_case(5);
  big.scheme = "C(S(4,1),CP(0,3),I(2,5))";
  const ShrinkResult r = shrink_case(big, fails);
  const Scheme s = r.minimized.parse_scheme();
  EXPECT_EQ(s.num_threads(), 2);
  EXPECT_EQ(Scheme::validate(s.root()), "");
}

}  // namespace
}  // namespace cvmt
