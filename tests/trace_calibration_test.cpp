// Calibration tests: simulated single-thread IPC of every synthetic
// benchmark must land on the paper's Table 1 targets (IPCr with the real
// 64KB/4-way/20-cycle memory system, IPCp with perfect memory).
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace cvmt {
namespace {

SimConfig calibration_config() {
  SimConfig cfg;
  cfg.instruction_budget = 150'000;
  cfg.timeslice_cycles = 1ULL << 40;  // single thread: no switching
  return cfg;
}

struct IpcPair {
  double real, perfect;
};

IpcPair simulate(const std::string& name) {
  ProgramLibrary lib(MachineConfig::vex4x4());
  const auto program = lib.get(name);
  const Scheme single = Scheme::single_thread();

  SimConfig real_cfg = calibration_config();
  SimConfig perfect_cfg = calibration_config();
  perfect_cfg.mem.perfect = true;

  return {run_simulation(single, {program}, real_cfg).ipc,
          run_simulation(single, {program}, perfect_cfg).ipc};
}

class CalibrationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CalibrationTest, SingleThreadIpcMatchesTable1) {
  const BenchmarkProfile& p = profile_by_name(GetParam());
  const IpcPair ipc = simulate(p.name);
  // 10% relative tolerance: the builder solves bubbles/miss mixes
  // analytically, and the remaining gap is warm-up and rounding.
  EXPECT_NEAR(ipc.perfect, p.target_ipc_perfect,
              0.10 * p.target_ipc_perfect)
      << p.name << " IPCp";
  EXPECT_NEAR(ipc.real, p.target_ipc_real, 0.10 * p.target_ipc_real)
      << p.name << " IPCr";
  // Perfect memory can only help.
  EXPECT_GE(ipc.perfect, ipc.real - 1e-9) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CalibrationTest,
    ::testing::Values("mcf", "bzip2", "blowfish", "gsmencode", "g721encode",
                      "g721decode", "cjpeg", "djpeg", "imgpipe", "x264",
                      "idct", "colorspace"));

TEST(CalibrationRanking, IlpClassesAreOrdered) {
  // The L < M < H classification must be reflected in simulated IPCp.
  const double low = simulate("gsmencode").perfect;
  const double med = simulate("djpeg").perfect;
  const double high = simulate("idct").perfect;
  EXPECT_LT(low, med);
  EXPECT_LT(med, high);
}

TEST(CalibrationRanking, MemoryBoundBenchmarksLoseIpcWithRealMemory) {
  // colorspace: IPCr 5.47 vs IPCp 8.88 — the largest absolute gap.
  const IpcPair cs = simulate("colorspace");
  EXPECT_GT(cs.perfect - cs.real, 1.5);
  // gsmencode: no gap by construction.
  const IpcPair gsm = simulate("gsmencode");
  EXPECT_LT(gsm.perfect - gsm.real, 0.15);
}

}  // namespace
}  // namespace cvmt
