// The serve layer end to end over real sockets: protocol robustness
// (malformed JSON, unknown ids, oversized lines, mid-request
// disconnects), backpressure, graceful drain with zero lost jobs, and
// the byte-identity bridge between a serve response and the equivalent
// `cvmt run --format=json` output.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exp/driver.hpp"
#include "exp/registry.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/session.hpp"
#include "support/socket.hpp"
#include "support/version.hpp"

namespace cvmt {
namespace {

/// One test server over its own artifact cache (never the process-global
/// one — tests must not warm each other's caches).
struct TestServer {
  explicit TestServer(std::size_t workers = 2, std::size_t queue = 64) {
    ServeConfig config;
    config.port = 0;
    config.workers = workers;
    config.queue_capacity = queue;
    server = std::make_unique<ServeServer>(config, cache);
    server->start();
  }
  ~TestServer() { server->stop(); }

  ArtifactCache cache;
  std::unique_ptr<ServeServer> server;
};

/// Minimal line-framed client.
struct Client {
  explicit Client(std::uint16_t port) : stream(connect_local(port)) {}

  void send_line(std::string line) {
    line += '\n';
    ASSERT_TRUE(stream.send_all(line));
  }

  /// Next response line; empty optional-style: ok=false on EOF.
  [[nodiscard]] bool recv_line(std::string* out) {
    for (;;) {
      const std::size_t pos = buf.find('\n');
      if (pos != std::string::npos) {
        *out = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        return true;
      }
      std::array<char, 8192> chunk;
      const long n = stream.recv_some(chunk.data(), chunk.size());
      if (n <= 0) return false;
      buf.append(chunk.data(), static_cast<std::size_t>(n));
    }
  }

  [[nodiscard]] JsonValue request(const std::string& line) {
    send_line(line);
    std::string response;
    EXPECT_TRUE(recv_line(&response));
    return JsonValue::parse(response);
  }

  TcpStream stream;
  std::string buf;
};

std::string run_request(int id, std::string_view scheme,
                        std::uint64_t budget) {
  JsonValue req = JsonValue::object();
  req.set("id", "r" + std::to_string(id));
  req.set("type", "run");
  req.set("scheme", scheme);
  JsonValue benchmarks = JsonValue::array();
  for (const char* b : {"mcf", "bzip2", "blowfish", "gsmencode"})
    benchmarks.push_back(b);
  req.set("benchmarks", std::move(benchmarks));
  JsonValue config = JsonValue::object();
  config.set("budget", budget);
  req.set("config", std::move(config));
  return req.dump(-1);
}

std::string error_code_of(const JsonValue& response) {
  EXPECT_FALSE(response.get("ok").as_bool());
  return response.get("error").get("code").as_string();
}

// --- inline requests ------------------------------------------------------

TEST(Serve, PingReportsVersion) {
  TestServer ts;
  Client c(ts.server->port());
  const JsonValue r = c.request(R"({"id":1,"type":"ping"})");
  EXPECT_TRUE(r.get("ok").as_bool());
  EXPECT_EQ(r.get("id").as_int(), 1);
  EXPECT_TRUE(r.get("result").get("pong").as_bool());
  EXPECT_EQ(r.get("result").get("version").as_string(), version_string());
}

TEST(Serve, VersionStringHasTheExpectedShape) {
  const std::string v = version_string();
  EXPECT_NE(v.find("cvmt "), std::string::npos);
  EXPECT_NE(v.find('('), std::string::npos);
  EXPECT_FALSE(std::string(git_describe()).empty());
  EXPECT_FALSE(std::string(build_type()).empty());
}

TEST(Serve, StatsReportsTheFullSchema) {
  TestServer ts(/*workers=*/3);
  Client c(ts.server->port());
  for (int i = 0; i < 2; ++i)
    EXPECT_TRUE(c.request(run_request(i, "2SC3", 1000)).get("ok").as_bool());

  const JsonValue r = c.request(R"({"id":"s","type":"stats"})");
  ASSERT_TRUE(r.get("ok").as_bool());
  const JsonValue& s = r.get("result");
  EXPECT_EQ(s.get("version").as_string(), version_string());
  EXPECT_GE(s.get("uptime_ms").as_int(), 0);
  EXPECT_FALSE(s.get("draining").as_bool());
  EXPECT_EQ(s.get("requests").get("completed").as_int(), 2);
  EXPECT_EQ(s.get("queue").get("capacity").as_int(), 64);
  EXPECT_EQ(s.get("workers").size(), 3u);
  // The second identical run hits every artifact the first one built.
  EXPECT_GT(s.get("cache").get("hits").as_int(), 0);
  EXPECT_GT(s.get("cache").get("misses").as_int(), 0);
  EXPECT_GT(s.get("cache").get("artifacts").as_int(), 0);
  EXPECT_EQ(s.get("latency").get("run").get("count").as_int(), 2);
  EXPECT_GT(s.get("latency").get("all").get("p50_us").as_int(), 0);
}

// --- protocol robustness --------------------------------------------------

TEST(Serve, MalformedJsonGetsErrorAndConnectionSurvives) {
  TestServer ts;
  Client c(ts.server->port());
  EXPECT_EQ(error_code_of(c.request("{this is not json")), "bad_json");
  EXPECT_EQ(error_code_of(c.request("[1,2,3]")), "bad_json");
  // The connection (and its worker) is not wedged.
  EXPECT_TRUE(c.request(R"({"id":2,"type":"ping"})").get("ok").as_bool());
}

TEST(Serve, UnknownExperimentAndTypeAndFields) {
  TestServer ts;
  Client c(ts.server->port());
  EXPECT_EQ(error_code_of(c.request(
                R"({"id":1,"type":"experiment","experiment":"nope"})")),
            "unknown_experiment");
  EXPECT_EQ(error_code_of(c.request(R"({"id":2,"type":"frobnicate"})")),
            "unknown_type");
  EXPECT_EQ(error_code_of(c.request(R"({"id":3,"type":"run"})")),
            "bad_request");
  EXPECT_EQ(error_code_of(c.request(
                R"({"id":4,"type":"ping","extra":true})")),
            "bad_request");
  EXPECT_EQ(error_code_of(c.request(
                R"({"id":5,"type":"run","scheme":"2SC3",)"
                R"("benchmarks":["mcf"],"config":{"stats":"verbose"}})")),
            "bad_request");
  // The id is echoed even on rejected requests.
  const JsonValue r =
      c.request(R"({"id":"echo-me","type":"run","scheme":"bogus!!"})");
  EXPECT_EQ(r.get("id").as_string(), "echo-me");
  EXPECT_EQ(error_code_of(r), "bad_request");
}

TEST(Serve, OversizedLineIsRejectedAndClosed) {
  TestServer ts;
  Client c(ts.server->port());
  std::string huge = R"({"id":1,"type":"ping","pad":")";
  huge.append(kMaxRequestLine, 'x');
  huge += "\"}";
  c.send_line(huge);
  std::string response;
  ASSERT_TRUE(c.recv_line(&response));
  EXPECT_EQ(error_code_of(JsonValue::parse(response)), "oversized");
  // After the error the server hangs up (framing is unrecoverable).
  EXPECT_FALSE(c.recv_line(&response));
  // And the server keeps serving fresh connections.
  Client c2(ts.server->port());
  EXPECT_TRUE(c2.request(R"({"id":1,"type":"ping"})").get("ok").as_bool());
}

TEST(Serve, MidRequestDisconnectDoesNotWedgeAWorker) {
  TestServer ts(/*workers=*/1);
  {
    Client c(ts.server->port());
    // Half a request, no terminator — then vanish.
    ASSERT_TRUE(c.stream.send_all(R"({"id":1,"type":"ru)"));
  }
  {
    // A full request whose response has nowhere to go.
    Client c(ts.server->port());
    ASSERT_TRUE(
        c.stream.send_all(run_request(7, "2SC3", 1000) + "\n"));
  }
  // The single worker is still alive and serving.
  Client c(ts.server->port());
  EXPECT_TRUE(
      c.request(run_request(8, "2SC3", 1000)).get("ok").as_bool());
}

// A client that pipelines a burst of work and vanishes with responses
// still in flight: every send_all onto the dead socket must surface as a
// dropped connection (EPIPE via MSG_NOSIGNAL), never a SIGPIPE, and the
// accounting must stay exact — every admitted job still completes, none
// is marked failed.
TEST(Serve, PeerVanishingUnderLoadKeepsTheDaemonAliveAndAccountingExact) {
  TestServer ts(/*workers=*/2, /*queue=*/64);
  constexpr int kJobs = 16;
  {
    Client c(ts.server->port());
    for (int i = 0; i < kJobs; ++i)
      c.send_line(run_request(i, "2SC3", 500));
    // Confirm the pipeline is flowing, then hang up mid-stream.
    std::string line;
    ASSERT_TRUE(c.recv_line(&line));
  }
  // The daemon survives and finishes the admitted burst; poll its stats
  // until every job has drained.
  Client probe(ts.server->port());
  std::uint64_t runs_done = 0;
  for (int tries = 0; tries < 500; ++tries) {
    const JsonValue r = probe.request(R"({"id":"s","type":"stats"})");
    ASSERT_TRUE(r.get("ok").as_bool());
    // The run-latency count tracks completed `run` requests only (the
    // probe's own stats traffic must not satisfy the wait).
    runs_done = static_cast<std::uint64_t>(r.get("result")
                                              .get("latency")
                                              .get("run")
                                              .get("count")
                                              .as_int());
    if (runs_done >= kJobs) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(runs_done, static_cast<std::uint64_t>(kJobs));
  const JsonValue stats = ts.server->stats_json();
  const JsonValue& req = stats.get("requests");
  EXPECT_EQ(req.get("failed").as_int(), 0);
  EXPECT_EQ(req.get("rejected_overload").as_int(), 0);
  // And a fresh connection still gets real work done.
  Client c2(ts.server->port());
  EXPECT_TRUE(
      c2.request(run_request(99, "2SC3", 500)).get("ok").as_bool());
}

// --- work requests --------------------------------------------------------

TEST(Serve, ExperimentResponseMatchesCliBytes) {
  TestServer ts;
  Client c(ts.server->port());
  const JsonValue r = c.request(
      R"({"id":"e1","type":"experiment","experiment":"fig9"})");
  ASSERT_TRUE(r.get("ok").as_bool());
  const std::string serve_bytes = r.get("result").dump(2) + "\n";

  const Experiment* fig9 = ExperimentRegistry::instance().find("fig9");
  ASSERT_NE(fig9, nullptr);
  const std::string cli_bytes =
      run_to_string(*fig9, ExperimentParams{}, OutputFormat::kJson);
  EXPECT_EQ(serve_bytes, cli_bytes);
}

TEST(Serve, RunResponsesAreBitIdenticalAcrossConnectionsAndTime) {
  TestServer ts(/*workers=*/4);
  Client a(ts.server->port());
  Client b(ts.server->port());
  const JsonValue r1 = a.request(run_request(1, "2SC3", 2000));
  const JsonValue r2 = b.request(run_request(2, "2SC3", 2000));
  const JsonValue r3 = a.request(run_request(3, "2SC3", 2000));
  ASSERT_TRUE(r1.get("ok").as_bool());
  EXPECT_EQ(r1.get("result").dump(-1), r2.get("result").dump(-1));
  EXPECT_EQ(r1.get("result").dump(-1), r3.get("result").dump(-1));

  // And the numbers are the session layer's, not a serve-side variant.
  SimSession session;
  SimConfig cfg;
  cfg.instruction_budget = 2000;
  cfg.stats = StatsLevel::kFast;
  const std::vector<std::string> names = {"mcf", "bzip2", "blowfish",
                                          "gsmencode"};
  const SimResult expected = session.run(
      Scheme::parse("2SC3"), std::span<const std::string>(names), cfg);
  const JsonValue& row =
      r1.get("result").get("sections").at(0).get("rows").at(0);
  EXPECT_EQ(static_cast<std::uint64_t>(row.at(1).as_int()),
            expected.cycles);
  EXPECT_EQ(static_cast<std::uint64_t>(row.at(2).as_int()),
            expected.total_instructions);
}

TEST(Serve, FuzzRequestRunsABoundedSweep) {
  TestServer ts;
  Client c(ts.server->port());
  const JsonValue r =
      c.request(R"({"id":"f","type":"fuzz","cases":3,"seed":7})");
  ASSERT_TRUE(r.get("ok").as_bool());
  EXPECT_EQ(r.get("result").get("cases").as_int(), 3);
  EXPECT_EQ(r.get("result").get("failures").as_int(), 0);
  EXPECT_EQ(error_code_of(c.request(
                R"({"id":"f2","type":"fuzz","cases":1000000})")),
            "bad_request");
}

// --- backpressure ---------------------------------------------------------

// Deterministic overload: one worker, queue capacity one, and the
// worker held mid-build by the cache's build hook. Requests land on one
// connection, so admission order is the send order: #1 occupies the
// worker, #2 fills the queue, #3 must be rejected with retry_after_ms.
TEST(Serve, FullQueueRejectsWithRetryAfter) {
  ServeConfig config;
  config.port = 0;
  config.workers = 1;
  config.queue_capacity = 1;
  ArtifactCache cache;
  ServeServer server(config, cache);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool first_build = true;
  cache.set_build_hook([&](std::string_view) {
    std::unique_lock<std::mutex> lock(mu);
    if (!first_build) return;
    first_build = false;
    cv.notify_all();  // tell the test the worker is held
    cv.wait(lock, [&] { return release; });
  });
  server.start();

  Client c(server.port());
  c.send_line(run_request(1, "2SC3", 1000));
  {
    // Wait until the worker is provably inside request #1's build.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !first_build; });
  }
  c.send_line(run_request(2, "2SC3", 1000));  // fills the queue
  // Admission is reader-serial: by the time request #3 is considered,
  // #2 is already queued, so #3 sees a full queue deterministically.
  c.send_line(run_request(3, "2SC3", 1000));

  std::string line;
  ASSERT_TRUE(c.recv_line(&line));
  const JsonValue rejected = JsonValue::parse(line);
  EXPECT_EQ(rejected.get("id").as_string(), "r3");
  EXPECT_EQ(error_code_of(rejected), "overloaded");
  EXPECT_GE(rejected.get("error").get("retry_after_ms").as_int(), 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  std::set<std::string> answered;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(c.recv_line(&line));
    const JsonValue r = JsonValue::parse(line);
    EXPECT_TRUE(r.get("ok").as_bool());
    answered.insert(r.get("id").as_string());
  }
  EXPECT_EQ(answered, (std::set<std::string>{"r1", "r2"}));
  server.stop();
}

// --- drain ----------------------------------------------------------------

TEST(Serve, ShutdownRequestAcksThenDrains) {
  TestServer ts;
  Client c(ts.server->port());
  c.send_line(run_request(1, "2SC3", 1000));
  const JsonValue ack = [&] {
    c.send_line(R"({"id":"bye","type":"shutdown"})");
    // Responses are ordered per connection here: the run completes (or
    // is admitted) before the shutdown line is even parsed, but its
    // response may arrive after the ack — collect both.
    std::string l1, l2;
    EXPECT_TRUE(c.recv_line(&l1));
    EXPECT_TRUE(c.recv_line(&l2));
    const JsonValue a = JsonValue::parse(l1), b = JsonValue::parse(l2);
    return a.get("id").kind() == JsonValue::Kind::kString &&
                   a.get("id").as_string() == "bye"
               ? a
               : b;
  }();
  EXPECT_TRUE(ack.get("ok").as_bool());
  EXPECT_TRUE(ack.get("result").get("draining").as_bool());
  EXPECT_TRUE(ts.server->wait_stop_requested_for(
      std::chrono::milliseconds(2000)));
  ts.server->stop();
  // Admission is closed: the port no longer accepts.
  EXPECT_THROW(Client{ts.server->port()}, CheckError);
}

// Zero lost jobs under a drain racing live traffic: every request the
// server *received* gets exactly one response (completed or an explicit
// shutting_down rejection), every admitted job completes, and nothing is
// answered twice.
TEST(Serve, StopUnderLoadLosesNoAdmittedJobs) {
  TestServer ts(/*workers=*/2, /*queue=*/64);
  Client c(ts.server->port());
  constexpr int kJobs = 24;
  for (int i = 0; i < kJobs; ++i)
    c.send_line(run_request(i, "2SC3", 500));
  ts.server->stop();  // races the reader mid-stream — deliberately

  std::set<std::string> answered;
  std::string line;
  std::uint64_t ok = 0, shutting_down = 0;
  while (c.recv_line(&line)) {
    const JsonValue r = JsonValue::parse(line);
    const std::string id = r.get("id").as_string();
    EXPECT_TRUE(answered.insert(id).second) << "duplicate response " << id;
    if (r.get("ok").as_bool()) {
      ++ok;
    } else {
      EXPECT_EQ(error_code_of(r), "shutting_down");
      ++shutting_down;
    }
  }
  const JsonValue stats = ts.server->stats_json();
  const JsonValue& req = stats.get("requests");
  // Everything the server received was answered exactly once...
  EXPECT_EQ(static_cast<std::uint64_t>(req.get("received").as_int()),
            answered.size());
  // ...split between completed work and explicit rejections: admitted
  // jobs are never dropped by the drain.
  EXPECT_EQ(req.get("completed").as_int(), static_cast<int>(ok));
  EXPECT_EQ(req.get("rejected_draining").as_int(),
            static_cast<int>(shutting_down));
  EXPECT_EQ(req.get("failed").as_int(), 0);
}

// --- scale ----------------------------------------------------------------

// The acceptance bar: >= 1000 small runs across concurrent pipelined
// clients, every response ok and the result payload bit-identical across
// all of them (same request => same bytes, any worker, any connection).
TEST(Serve, ThousandPipelinedRunsAreBitIdentical) {
  TestServer ts(/*workers=*/0, /*queue=*/2048);  // 0 = all cores
  constexpr int kConnections = 4;
  constexpr int kPerConnection = 250;

  std::vector<std::future<std::vector<std::string>>> futures;
  futures.reserve(kConnections);
  for (int conn = 0; conn < kConnections; ++conn)
    futures.push_back(std::async(std::launch::async, [&ts, conn] {
      Client c(ts.server->port());
      for (int i = 0; i < kPerConnection; ++i) {
        JsonValue req = JsonValue::parse(
            run_request(conn * kPerConnection + i, "2SC3", 500));
        c.send_line(req.dump(-1));
      }
      std::vector<std::string> results;
      std::string line;
      for (int i = 0; i < kPerConnection; ++i) {
        if (!c.recv_line(&line)) break;
        const JsonValue r = JsonValue::parse(line);
        EXPECT_TRUE(r.get("ok").as_bool());
        results.push_back(r.get("result").dump(-1));
      }
      return results;
    }));

  std::vector<std::string> all;
  for (auto& f : futures) {
    std::vector<std::string> part = f.get();
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kConnections * kPerConnection));
  for (const std::string& result : all) EXPECT_EQ(result, all.front());

  const JsonValue stats = ts.server->stats_json();
  EXPECT_EQ(stats.get("requests").get("completed").as_int(),
            kConnections * kPerConnection);
  // 1000 runs, a handful of builds: the warm cache is doing the work.
  EXPECT_GT(stats.get("cache").get("hit_rate").as_double(), 0.99);
}

}  // namespace
}  // namespace cvmt
