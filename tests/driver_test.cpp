// The cvmt driver: output formats, parameter resolution layering and the
// golden-stability contract — `cvmt run fig10 --format=json` is
// byte-identical for any batch-runner worker count under fixed seeds.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/driver.hpp"
#include "isa/machine_file.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace cvmt {
namespace {

ExperimentParams tiny(unsigned workers) {
  ExperimentParams p;
  p.cfg.sim.instruction_budget = 10'000;
  p.cfg.sim.timeslice_cycles = 2'500;
  p.cfg.batch.workers = workers;
  return p;
}

const Experiment& get(const char* id) {
  const Experiment* e = ExperimentRegistry::instance().find(id);
  CVMT_CHECK_MSG(e != nullptr, std::string("missing experiment: ") + id);
  return *e;
}

// The determinism contract at the new API boundary: the batch runner's
// results are bit-identical for any worker count, and the JSON emitter
// deliberately excludes the worker count, so the rendered bytes match.
TEST(Driver, Fig10JsonIsByteIdenticalAcrossWorkerCounts) {
  const Experiment& fig10 = get("fig10");
  const std::string serial =
      run_to_string(fig10, tiny(1), OutputFormat::kJson);
  const std::string parallel =
      run_to_string(fig10, tiny(8), OutputFormat::kJson);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);  // byte-identical, workers=1 vs workers=8
  // And the bytes are valid JSON with the expected shape.
  const JsonValue v = JsonValue::parse(serial);
  EXPECT_EQ(v.get("id").as_string(), "fig10");
  EXPECT_TRUE(v.get("ok").as_bool());
  EXPECT_EQ(v.get("params").find("workers"), nullptr);
  EXPECT_GE(v.get("sections").size(), 3u);
}

TEST(Driver, TableAndCsvAreAlsoWorkerInvariant) {
  const Experiment& fig4 = get("fig4");
  EXPECT_EQ(run_to_string(fig4, tiny(1), OutputFormat::kTable),
            run_to_string(fig4, tiny(8), OutputFormat::kTable));
  EXPECT_EQ(run_to_string(fig4, tiny(1), OutputFormat::kCsv),
            run_to_string(fig4, tiny(8), OutputFormat::kCsv));
}

TEST(Driver, TableFormatCarriesBannerAndNotes) {
  const std::string out =
      run_to_string(get("fig4"), tiny(0), OutputFormat::kTable);
  EXPECT_NE(out.find("== Figure 4"), std::string::npos);
  EXPECT_NE(out.find("Avg IPC"), std::string::npos);
  EXPECT_NE(out.find("paper: 61%"), std::string::npos);
}

TEST(Driver, CsvFormatIsCommentedPerSection) {
  const std::string out =
      run_to_string(get("table2"), tiny(0), OutputFormat::kCsv);
  EXPECT_NE(out.find("# experiment: table2"), std::string::npos);
  EXPECT_NE(out.find("# section: Per-thread detail"), std::string::npos);
  EXPECT_NE(out.find("ILP Comb,Thread 0"), std::string::npos);
}

TEST(Driver, JsonParamsReflectSchemaAndForcedStats) {
  const JsonValue cost = JsonValue::parse(
      run_to_string(get("fig9"), tiny(0), OutputFormat::kJson));
  // Cost-only experiment: machine is in the schema, budget is not.
  EXPECT_NE(cost.get("params").find("machine"), nullptr);
  EXPECT_EQ(cost.get("params").find("budget"), nullptr);

  const JsonValue me = JsonValue::parse(
      run_to_string(get("merge-efficiency"), tiny(0), OutputFormat::kJson));
  EXPECT_EQ(me.get("params").get("stats").as_string(), "full");
  EXPECT_TRUE(me.get("params").get("stats_forced").as_bool());
}

TEST(Driver, ParamResolutionLayersCliOverEnv) {
  ::setenv("CVMT_BUDGET", "111", 1);
  ::setenv("CVMT_STATS", "full", 1);
  {
    ArgParser parser("t", "");
    ExperimentParams::add_standard_flags(parser);
    const char* argv[] = {"t"};
    ASSERT_EQ(parser.parse(1, argv), ArgParser::Outcome::kOk);
    const ExperimentParams p = ExperimentParams::resolve(parser);
    EXPECT_EQ(p.cfg.sim.instruction_budget, 111u);
    EXPECT_EQ(p.cfg.sim.stats, StatsLevel::kFull);
  }
  {
    ArgParser parser("t", "");
    ExperimentParams::add_standard_flags(parser);
    const char* argv[] = {"t", "--budget=222", "--stats=fast",
                          "--workers=3"};
    ASSERT_EQ(parser.parse(4, argv), ArgParser::Outcome::kOk);
    const ExperimentParams p = ExperimentParams::resolve(parser);
    EXPECT_EQ(p.cfg.sim.instruction_budget, 222u);
    EXPECT_EQ(p.cfg.sim.stats, StatsLevel::kFast);
    EXPECT_EQ(p.cfg.batch.workers, 3u);
  }
  ::unsetenv("CVMT_BUDGET");
  ::unsetenv("CVMT_STATS");
}

TEST(Driver, FastFlagMatchesEnvFastScale) {
  ArgParser parser("t", "");
  ExperimentParams::add_standard_flags(parser);
  const char* argv[] = {"t", "--fast"};
  ASSERT_EQ(parser.parse(2, argv), ArgParser::Outcome::kOk);
  const ExperimentParams p = ExperimentParams::resolve(parser);
  EXPECT_TRUE(p.fast);
  EXPECT_EQ(p.cfg.sim.instruction_budget, kFastInstructionBudget);
  EXPECT_EQ(p.cfg.sim.timeslice_cycles, kFastTimesliceCycles);
  // An explicit budget still overrides the fast scale (CLI > fast).
  ArgParser parser2("t", "");
  ExperimentParams::add_standard_flags(parser2);
  const char* argv2[] = {"t", "--fast", "--budget=123"};
  ASSERT_EQ(parser2.parse(3, argv2), ArgParser::Outcome::kOk);
  EXPECT_EQ(ExperimentParams::resolve(parser2).cfg.sim.instruction_budget,
            123u);
}

TEST(Driver, FilterValidationRejectsTypos) {
  {
    ArgParser parser("t", "");
    ExperimentParams::add_standard_flags(parser);
    const char* argv[] = {"t", "--schemes=2SC3,NOT_A_SCHEME"};
    ASSERT_EQ(parser.parse(2, argv), ArgParser::Outcome::kOk);
    EXPECT_THROW((void)ExperimentParams::resolve(parser), CheckError);
  }
  {
    ArgParser parser("t", "");
    ExperimentParams::add_standard_flags(parser);
    const char* argv[] = {"t", "--workloads=LLHH,XXXX"};
    ASSERT_EQ(parser.parse(2, argv), ArgParser::Outcome::kOk);
    EXPECT_THROW((void)ExperimentParams::resolve(parser), CheckError);
  }
}

TEST(Driver, SchemeAndWorkloadFiltersNarrowFig10) {
  ExperimentParams p = tiny(0);
  p.schemes = {"2SC3", "3CCC"};
  p.workloads = {"LLHH"};
  const JsonValue v = JsonValue::parse(
      run_to_string(get("fig10"), p, OutputFormat::kJson));
  ASSERT_EQ(v.get("sections").size(), 1u);  // grouped/headlines skipped
  const JsonValue& section = v.get("sections").at(0);
  EXPECT_EQ(section.get("columns").size(), 3u);  // Workload + 2 schemes
  EXPECT_EQ(section.get("rows").size(), 2u);     // LLHH + Average
  EXPECT_EQ(v.get("params").get("schemes").size(), 2u);
}

TEST(Driver, OutFlagWritesTheSameBytesAsStdout) {
  // fig9 is cost-only (no simulation), so both runs are fast and
  // deterministic. The contract: --out=FILE carries exactly the bytes the
  // stdout path would.
  const char* stdout_argv[] = {"cvmt", "run", "fig9", "--format=csv"};
  testing::internal::CaptureStdout();
  ASSERT_EQ(cvmt_main(4, stdout_argv), 0);
  const std::string via_stdout = testing::internal::GetCapturedStdout();
  ASSERT_FALSE(via_stdout.empty());

  const std::string path =
      testing::TempDir() + "cvmt_driver_out_test.csv";
  const std::string out_flag = "--out=" + path;
  const char* file_argv[] = {"cvmt", "run", "fig9", "--format=csv",
                             out_flag.c_str()};
  testing::internal::CaptureStdout();
  ASSERT_EQ(cvmt_main(5, file_argv), 0);
  EXPECT_EQ(testing::internal::GetCapturedStdout(), "");  // all in the file

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), via_stdout);
  std::remove(path.c_str());
}

TEST(Driver, OutFlagDoesNotTruncateOnUnknownExperimentId) {
  // A typo'd id must fail BEFORE the --out file is opened (opening
  // truncates), so an existing report survives the mistake.
  const std::string path = testing::TempDir() + "cvmt_out_preserved.txt";
  {
    std::ofstream f(path);
    f << "previous report";
  }
  const std::string out_flag = "--out=" + path;
  const char* argv[] = {"cvmt", "run", "fgi10", out_flag.c_str()};
  testing::internal::CaptureStdout();
  EXPECT_EQ(cvmt_main(4, argv), 2);
  EXPECT_EQ(testing::internal::GetCapturedStdout(), "");
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "previous report");
  std::remove(path.c_str());
}

TEST(Driver, OutFlagToUnwritablePathIsAUsageError) {
  const char* argv[] = {"cvmt", "run", "fig9",
                        "--out=/nonexistent-dir/x/report.txt"};
  testing::internal::CaptureStdout();
  EXPECT_EQ(cvmt_main(4, argv), 2);
  EXPECT_EQ(testing::internal::GetCapturedStdout(), "");
}

TEST(Driver, MachineShapeFlagChangesTheMachine) {
  ArgParser parser("t", "");
  ExperimentParams::add_standard_flags(parser);
  const char* argv[] = {"t", "--clusters=2", "--issue=8"};
  ASSERT_EQ(parser.parse(3, argv), ArgParser::Outcome::kOk);
  const ExperimentParams p = ExperimentParams::resolve(parser);
  EXPECT_EQ(p.cfg.sim.machine.num_clusters, 2);
  EXPECT_EQ(p.cfg.sim.machine.issue_per_cluster, 8);
}

TEST(Driver, MachineFlagResolvesBuiltinsAsOneUnit) {
  ArgParser parser("t", "");
  ExperimentParams::add_standard_flags(parser);
  const char* argv[] = {"t", "--machine=l2banked"};
  ASSERT_EQ(parser.parse(2, argv), ArgParser::Outcome::kOk);
  const ExperimentParams p = ExperimentParams::resolve(parser);
  EXPECT_EQ(p.machine_spec, "l2banked");
  EXPECT_TRUE(p.cfg.sim.mem.has_l2);
  EXPECT_EQ(p.cfg.sim.mem.dcache_banks, 4);
  EXPECT_TRUE(p.cfg.sim.machine == MachineConfig::vex4x4());
}

TEST(Driver, MachineFlagConflictsWithShapeFlags) {
  ArgParser parser("t", "");
  ExperimentParams::add_standard_flags(parser);
  const char* argv[] = {"t", "--machine=vex4x4", "--clusters=2"};
  ASSERT_EQ(parser.parse(3, argv), ArgParser::Outcome::kOk);
  EXPECT_THROW((void)ExperimentParams::resolve(parser), CheckError);
}

TEST(Driver, MachinesSubcommandListsBuiltins) {
  const char* argv[] = {"cvmt", "machines"};
  testing::internal::CaptureStdout();
  ASSERT_EQ(cvmt_main(2, argv), 0);
  const std::string out = testing::internal::GetCapturedStdout();
  for (const std::string& name : builtin_machine_names())
    EXPECT_NE(out.find(name), std::string::npos) << name << "\n" << out;
}

TEST(Driver, MachinesSubcommandValidatesFiles) {
  const std::string good = testing::TempDir() + "cvmt_good.machine";
  {
    MachineDescription d;
    ASSERT_TRUE(find_builtin_machine("het4422", d));
    std::ofstream f(good, std::ios::binary);
    f << serialize_machine(d);
  }
  const char* ok_argv[] = {"cvmt", "machines", good.c_str()};
  testing::internal::CaptureStdout();
  EXPECT_EQ(cvmt_main(3, ok_argv), 0);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("ok"), std::string::npos) << out;
  EXPECT_NE(out.find("het4422"), std::string::npos) << out;
  std::remove(good.c_str());

  const std::string bad = testing::TempDir() + "cvmt_bad.machine";
  {
    std::ofstream f(bad, std::ios::binary);
    f << "clusters 1\nissue 2\nmul_slots 0x4\n";
  }
  const char* bad_argv[] = {"cvmt", "machines", bad.c_str()};
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  EXPECT_EQ(cvmt_main(3, bad_argv), 1);
  (void)testing::internal::GetCapturedStdout();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("mul slot beyond issue width"), std::string::npos)
      << err;
  std::remove(bad.c_str());

  const char* missing_argv[] = {"cvmt", "machines", "/no/such.machine"};
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  EXPECT_EQ(cvmt_main(3, missing_argv), 1);
  (void)testing::internal::GetCapturedStdout();
  (void)testing::internal::GetCapturedStderr();
}

TEST(Driver, AblationMachineFilesIsRegistered) {
  const Experiment& e = get("ablation_machine_files");
  EXPECT_EQ(e.artifact, "extension");
}

}  // namespace
}  // namespace cvmt
