// Machine description files (src/isa/machine_file): the KEY-value
// grammar, parse -> serialize -> parse round trips for every built-in
// and every checked-in example file, diagnostics for malformed files,
// and the resolve_machine() builtin-name-or-path contract.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "isa/machine_file.hpp"
#include "support/check.hpp"

#ifndef CVMT_SOURCE_DIR
#error "CVMT_SOURCE_DIR must be defined (see CMakeLists.txt)"
#endif

namespace cvmt {
namespace {

std::string machines_dir() {
  return std::string(CVMT_SOURCE_DIR) + "/examples/machines";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Expects that parsing `text` throws a CheckError whose message contains
/// `needle`; returns the full message for further checks.
std::string expect_parse_error(const std::string& text,
                               const std::string& needle) {
  try {
    (void)parse_machine_file(text);
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "message \"" << msg << "\" does not mention \"" << needle
        << "\"";
    return msg;
  }
  ADD_FAILURE() << "no error for:\n" << text;
  return {};
}

// ------------------------------------------------------------ round trips

TEST(MachineFileTest, EveryBuiltinRoundTripsThroughItsSerialization) {
  for (const std::string& name : builtin_machine_names()) {
    MachineDescription d;
    ASSERT_TRUE(find_builtin_machine(name, d)) << name;
    EXPECT_EQ(d.name, name);
    const std::string text = serialize_machine(d);
    const MachineDescription reparsed = parse_machine_file(text);
    EXPECT_TRUE(reparsed == d) << name << ":\n" << text;
    // Serialization is canonical: a second trip is byte-identical.
    EXPECT_EQ(serialize_machine(reparsed), text) << name;
  }
}

TEST(MachineFileTest, UnknownBuiltinNameIsRejected) {
  MachineDescription d;
  EXPECT_FALSE(find_builtin_machine("vex9x9", d));
}

TEST(MachineFileTest, ExampleFilesLoadAndRoundTrip) {
  int seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(machines_dir())) {
    if (entry.path().extension() != ".machine") continue;
    ++seen;
    const std::string path = entry.path().string();
    const MachineDescription d = load_machine_file(path);
    const MachineDescription reparsed =
        parse_machine_file(serialize_machine(d));
    EXPECT_TRUE(reparsed == d) << path;
  }
  EXPECT_GE(seen, 3) << "examples/machines/ lost its example files";
}

TEST(MachineFileTest, ExampleFilesAreTheBuiltinsSerializations) {
  // The examples mirror built-ins by construction; keeping them byte-equal
  // to serialize_machine() means `cvmt machines FILE` and the docs never
  // drift from the code.
  for (const char* name : {"vex4x4", "het4422", "l2banked", "poststall"}) {
    MachineDescription d;
    ASSERT_TRUE(find_builtin_machine(name, d));
    EXPECT_EQ(read_file(machines_dir() + "/" + name + ".machine"),
              serialize_machine(d))
        << name;
  }
}

TEST(MachineFileTest, HeterogeneousExampleIsActuallyHeterogeneous) {
  const MachineDescription d =
      load_machine_file(machines_dir() + "/het4422.machine");
  EXPECT_TRUE(d.machine.heterogeneous);
  EXPECT_EQ(d.machine.num_clusters, 4);
  EXPECT_EQ(d.machine.cluster_issue(0), 4);
  EXPECT_EQ(d.machine.cluster_issue(2), 2);
  EXPECT_EQ(d.machine.total_issue_width(), 12);
  // Cluster 3 has no multiplier: the mask really parsed as empty.
  EXPECT_EQ(d.machine.slots_for(OpKind::kMul, 3), 0u);
  EXPECT_NE(d.machine.slots_for(OpKind::kMul, 0), 0u);
}

TEST(MachineFileTest, L2BankedExampleConfiguresTheHierarchy) {
  const MachineDescription d =
      load_machine_file(machines_dir() + "/l2banked.machine");
  EXPECT_TRUE(d.mem.has_l2);
  EXPECT_EQ(d.mem.l2.size_bytes, 256u * 1024u);
  EXPECT_EQ(d.mem.dcache_banks, 4);
  EXPECT_EQ(d.mem.bank_conflict_penalty, 2);
  EXPECT_EQ(d.switch_policy, SwitchPolicyKind::kRandomTimeslice);
}

TEST(MachineFileTest, PoststallExampleSelectsThePolicy) {
  const MachineDescription d =
      load_machine_file(machines_dir() + "/poststall.machine");
  EXPECT_EQ(d.switch_policy, SwitchPolicyKind::kPoststall);
}

// ------------------------------------------------------------- grammar

TEST(MachineFileTest, CommentsAndBlankLinesAreIgnored) {
  const MachineDescription d = parse_machine_file(
      "# full-line comment\n"
      "\n"
      "name tiny   # trailing comment\n"
      "clusters 1\n"
      "issue 2\n"
      "mul_slots 0x1\n"
      "mem_slots 0x2\n"
      "branch_slots 0x2\n");
  EXPECT_EQ(d.name, "tiny");
  EXPECT_EQ(d.machine.num_clusters, 1);
  EXPECT_EQ(d.machine.issue_per_cluster, 2);
}

TEST(MachineFileTest, DecimalAndHexMasksAreBothAccepted) {
  const MachineDescription d = parse_machine_file(
      "clusters 1\nissue 4\nmul_slots 3\nmem_slots 0x4\n"
      "branch_slots 8\n");
  EXPECT_EQ(d.machine.mul_slot_mask, 0b0011u);
  EXPECT_EQ(d.machine.mem_slot_mask, 0b0100u);
  EXPECT_EQ(d.machine.branch_slot_mask, 0b1000u);
}

// ---------------------------------------------------------- diagnostics

TEST(MachineFileTest, DuplicateKeyNamesTheLine) {
  const std::string msg = expect_parse_error(
      "clusters 2\nissue 4\nclusters 4\n", "duplicate key 'clusters'");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(MachineFileTest, OutOfRangeMaskIsRejectedByValidate) {
  // mul slot 4 does not exist in a 2-wide cluster.
  expect_parse_error("clusters 1\nissue 2\nmul_slots 0x4\n",
                     "mul slot beyond issue width");
}

TEST(MachineFileTest, UnknownSwitchPolicyListsTheChoices) {
  const std::string msg = expect_parse_error("switch_policy lottery\n",
                                             "unknown switch policy");
  EXPECT_NE(msg.find("random|prestall|poststall"), std::string::npos)
      << msg;
}

TEST(MachineFileTest, UnknownKeyNamesTheKey) {
  expect_parse_error("turbo_boost 9000\n", "unknown key 'turbo_boost'");
}

TEST(MachineFileTest, NonNumericValueIsDiagnosed) {
  expect_parse_error("clusters four\n", "not a number: 'four'");
}

// Regression: parse_u64 used bare strtoull, which skips a leading sign —
// `issue -1` wrapped to 18446744073709551615 and sailed through the
// parser. Signed values must be rejected with the line number, exactly
// like the CVMT_* environment parser rejects them.
TEST(MachineFileTest, SignedValuesAreRejectedNotWrapped) {
  const std::string msg =
      expect_parse_error("clusters 1\nissue -1\n", "not a number: '-1'");
  EXPECT_NE(msg.find("line 2:"), std::string::npos) << msg;
  expect_parse_error("clusters +2\n", "not a number: '+2'");
  expect_parse_error("alu_latency -4096\n", "not a number: '-4096'");
}

TEST(MachineFileTest, TrailingGarbageAndOverflowAreRejected) {
  expect_parse_error("clusters 4x\n", "not a number: '4x'");
  expect_parse_error("issue 4.5\n", "not a number: '4.5'");
  // One past UINT64_MAX.
  expect_parse_error("alu_latency 18446744073709551616\n",
                     "not a number: '18446744073709551616'");
}

TEST(MachineFileTest, HexMasksStillParseAfterTheStrictness) {
  // Strict parsing must keep base-0 semantics: 0x masks are the idiom in
  // every example file.
  const MachineDescription d = parse_machine_file(
      "clusters 1\nissue 2\nmul_slots 0x2\nmem_slots 0x1\n"
      "branch_slots 0x2\n");
  EXPECT_EQ(d.machine.num_clusters, 1);
  EXPECT_EQ(d.machine.issue_per_cluster, 2);
  EXPECT_EQ(d.machine.mul_slot_mask, 0x2u);
}

TEST(MachineFileTest, WrongCacheArityIsDiagnosed) {
  expect_parse_error("icache 65536 64\n", "'icache' needs 4 values");
}

TEST(MachineFileTest, ClusterRowsCannotMixWithFlatShapeKeys) {
  expect_parse_error(
      "clusters 2\nissue 4\ncluster 0 4 0x3 0x4 0x8\n"
      "cluster 1 4 0x3 0x4 0x8\n",
      "'cluster' rows cannot be mixed");
}

TEST(MachineFileTest, ClusterIndexOutOfRangeIsDiagnosed) {
  expect_parse_error(
      "clusters 2\ncluster 0 4 0x3 0x4 0x8\ncluster 2 4 0x3 0x4 0x8\n",
      "cluster index 2 out of range (0..1)");
}

TEST(MachineFileTest, DuplicateClusterRowIsDiagnosed) {
  expect_parse_error(
      "clusters 2\ncluster 0 4 0x3 0x4 0x8\ncluster 0 4 0x3 0x4 0x8\n",
      "duplicate cluster index 0");
}

TEST(MachineFileTest, MissingClusterRowIsDiagnosed) {
  expect_parse_error("clusters 2\ncluster 0 4 0x3 0x4 0x8\n",
                     "missing 'cluster 1' row");
}

// ------------------------------------------------------- resolve_machine

TEST(MachineFileTest, ResolveFindsBuiltinsByName) {
  const MachineDescription d = resolve_machine("het4422");
  EXPECT_TRUE(d.machine.heterogeneous);
}

TEST(MachineFileTest, ResolveLoadsFilesByPath) {
  const MachineDescription d =
      resolve_machine(machines_dir() + "/l2banked.machine");
  EXPECT_TRUE(d.mem.has_l2);
}

TEST(MachineFileTest, ResolveRejectsUnknownSpecs) {
  try {
    (void)resolve_machine("no-such-machine");
    FAIL() << "resolve_machine accepted a bogus spec";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown machine"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace cvmt
