// Direct unit tests of ThreadContext stall accounting and the OS
// scheduler, using hand-written VEX-asm programs so every cycle is
// predictable.
#include <gtest/gtest.h>

#include "sim/os_scheduler.hpp"
#include "sim/simulation.hpp"
#include "trace/vex_asm.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

std::shared_ptr<const SyntheticProgram> program_from(
    const std::string& loops) {
  const std::string text =
      ".program unit\n.machine clusters=4 issue=4\n.stride 8\n"
      ".codebytes 32\n.midtaken 0.0\n" +
      loops;
  return parse_program(text, kM);
}

/// One loop: alu, then a taken loop-back branch; no memory.
std::shared_ptr<const SyntheticProgram> alu_branch_program() {
  return program_from(
      ".loop trips=1000 miss=0 code=0x10000 hot=0x20000000+4096 "
      "cold=0x40000000\n{ c0.0 alu }\n{ c0.3 br }\n.endloop\n");
}

/// One loop whose first instruction always misses the DCache twice.
std::shared_ptr<const SyntheticProgram> double_miss_program() {
  return program_from(
      ".loop trips=1000 miss=1.0 code=0x10000 hot=0x20000000+4096 "
      "cold=0x40000000\n{ c0.2 ld ; c1.2 ld }\n{ c0.3 br }\n.endloop\n");
}

MemorySystemConfig perfect_mem() {
  MemorySystemConfig cfg;
  cfg.perfect = true;
  return cfg;
}

TEST(ThreadContext, OffersAndConsumesWithPerfectMemory) {
  MemorySystem mem(perfect_mem(), 1);
  ThreadContext t("t", alu_branch_program(), 1, 1000);
  const Footprint* fp = t.offer(0, mem, 0);
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->total_ops(), 1);  // the alu instruction
  t.consume(0, mem, 0, kM, MissPolicy::kSerialized);
  EXPECT_EQ(t.stats().instructions, 1u);
  EXPECT_EQ(t.stats().ops, 1u);
  // Non-branch instruction: ready again the very next cycle.
  EXPECT_NE(t.offer(1, mem, 0), nullptr);
}

TEST(ThreadContext, TakenBranchCostsThePenalty) {
  MemorySystem mem(perfect_mem(), 1);
  ThreadContext t("t", alu_branch_program(), 1, 1000);
  t.offer(0, mem, 0);
  t.consume(0, mem, 0, kM, MissPolicy::kSerialized);  // alu
  ASSERT_NE(t.offer(1, mem, 0), nullptr);
  t.consume(1, mem, 0, kM, MissPolicy::kSerialized);  // taken branch
  EXPECT_EQ(t.stats().taken_branches, 1u);
  EXPECT_EQ(t.stats().branch_stall_cycles, 2u);
  // Squash penalty: next issue at 1 + 1 + 2 = cycle 4.
  EXPECT_EQ(t.offer(2, mem, 0), nullptr);
  EXPECT_EQ(t.offer(3, mem, 0), nullptr);
  EXPECT_NE(t.offer(4, mem, 0), nullptr);
}

TEST(ThreadContext, SerializedMissesAddUp) {
  MemorySystem mem(MemorySystemConfig{}, 1);
  ThreadContext t("t", double_miss_program(), 1, 1000);
  // First offer pays the compulsory ICache miss.
  EXPECT_EQ(t.offer(0, mem, 0), nullptr);
  ASSERT_NE(t.offer(20, mem, 0), nullptr);
  t.consume(20, mem, 0, kM, MissPolicy::kSerialized);
  EXPECT_EQ(t.stats().dcache_stall_cycles, 40u);  // two misses, serialized
  // Next issue: 20 + 1 + 40 = 61 (plus ICache hit for the next line).
  EXPECT_EQ(t.offer(60, mem, 0), nullptr);
  EXPECT_NE(t.offer(61, mem, 0), nullptr);
}

TEST(ThreadContext, OverlappedMissesPayOnce) {
  MemorySystem mem(MemorySystemConfig{}, 1);
  ThreadContext t("t", double_miss_program(), 1, 1000);
  EXPECT_EQ(t.offer(0, mem, 0), nullptr);  // compulsory ICache miss
  ASSERT_NE(t.offer(20, mem, 0), nullptr);
  t.consume(20, mem, 0, kM, MissPolicy::kOverlapped);
  EXPECT_EQ(t.stats().dcache_stall_cycles, 20u);
  EXPECT_NE(t.offer(41, mem, 0), nullptr);
}

TEST(ThreadContext, IcacheMissDelaysFirstIssueOnly) {
  MemorySystem mem(MemorySystemConfig{}, 1);
  ThreadContext t("t", alu_branch_program(), 1, 1000);
  EXPECT_EQ(t.offer(0, mem, 0), nullptr);   // compulsory miss
  EXPECT_EQ(t.offer(19, mem, 0), nullptr);
  ASSERT_NE(t.offer(20, mem, 0), nullptr);
  t.consume(20, mem, 0, kM, MissPolicy::kSerialized);
  // Both body instructions share one 64B line: next fetch hits.
  EXPECT_NE(t.offer(21, mem, 0), nullptr);
  EXPECT_EQ(t.stats().icache_stall_cycles, 20u);
}

TEST(ThreadContext, BudgetCompletionStopsOffers) {
  MemorySystem mem(perfect_mem(), 1);
  ThreadContext t("t", alu_branch_program(), 1, 3);
  std::uint64_t cycle = 0;
  while (!t.done()) {
    if (t.offer(cycle, mem, 0) != nullptr)
      t.consume(cycle, mem, 0, kM, MissPolicy::kSerialized);
    ++cycle;
  }
  EXPECT_EQ(t.stats().instructions, 3u);
  EXPECT_EQ(t.offer(cycle, mem, 0), nullptr);
}

TEST(ThreadContext, ConsumeWithoutOfferIsAnError) {
  MemorySystem mem(perfect_mem(), 1);
  ThreadContext t("t", alu_branch_program(), 1, 10);
  EXPECT_THROW(t.consume(0, mem, 0, kM, MissPolicy::kSerialized),
               CheckError);
}

// ------------------------------------------------------------ Scheduler

std::vector<std::shared_ptr<ThreadContext>> make_pool(int n,
                                                      std::uint64_t budget) {
  std::vector<std::shared_ptr<ThreadContext>> pool;
  for (int i = 0; i < n; ++i)
    pool.push_back(std::make_shared<ThreadContext>(
        "t" + std::to_string(i), alu_branch_program(),
        static_cast<std::uint64_t>(i) + 1, budget));
  return pool;
}

TEST(OsScheduler, RunsUntilFirstCompletion) {
  MemorySystem mem(perfect_mem(), 2);
  MultithreadedCore core(kM, Scheme::parse("1S"),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  auto pool = make_pool(4, 500);
  OsScheduler os(pool, 100, 42);
  const std::uint64_t cycles = os.run(core, 1u << 30);
  EXPECT_GT(cycles, 0u);
  std::uint64_t max_instrs = 0;
  for (const auto& t : pool)
    max_instrs = std::max(max_instrs, t->stats().instructions);
  EXPECT_EQ(max_instrs, 500u);
}

TEST(OsScheduler, CountsTimeslicesAndSwitches) {
  MemorySystem mem(perfect_mem(), 2);
  MultithreadedCore core(kM, Scheme::parse("1S"),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  auto pool = make_pool(4, 2'000);
  OsScheduler os(pool, 50, 7);
  const std::uint64_t cycles = os.run(core, 1u << 30);
  EXPECT_EQ(os.stats().timeslices, (cycles + 49) / 50);
  EXPECT_GT(os.stats().context_switches, 2u);
}

TEST(OsScheduler, FewerThreadsThanSlotsLeavesSlotsIdle) {
  MemorySystem mem(perfect_mem(), 4);
  MultithreadedCore core(kM, Scheme::parse("3CCC"),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  auto pool = make_pool(2, 300);
  OsScheduler os(pool, 100, 9);
  os.run(core, 1u << 30);
  // Both threads ran; the other two slots stayed empty and harmless.
  for (const auto& t : pool) EXPECT_GT(t->stats().instructions, 0u);
}

TEST(OsScheduler, AllThreadsProgressUnderRandomReplacement) {
  MemorySystem mem(perfect_mem(), 1);
  MultithreadedCore core(kM, Scheme::single_thread(),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  auto pool = make_pool(4, 3'000);
  OsScheduler os(pool, 64, 11);
  os.run(core, 1u << 30);
  for (const auto& t : pool)
    EXPECT_GT(t->stats().instructions, 100u) << t->name();
}

TEST(OsScheduler, MaxCyclesBoundIsRespected) {
  MemorySystem mem(perfect_mem(), 1);
  MultithreadedCore core(kM, Scheme::single_thread(),
                         PriorityPolicy::kRoundRobin, mem,
                         MissPolicy::kSerialized);
  auto pool = make_pool(1, 1u << 30);
  OsScheduler os(pool, 100, 13);
  EXPECT_EQ(os.run(core, 777), 777u);
}

TEST(OsScheduler, RejectsEmptyPoolAndZeroTimeslice) {
  EXPECT_THROW(OsScheduler({}, 100, 1), CheckError);
  EXPECT_THROW(OsScheduler(make_pool(1, 10), 0, 1), CheckError);
}

}  // namespace
}  // namespace cvmt
