// ArgParser: flag parsing, CLI-over-env layering, positionals, help and
// bad-input rejection.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "support/args.hpp"
#include "support/check.hpp"

namespace cvmt {
namespace {

class ArgsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("CVMT_TEST_U64");
    ::unsetenv("CVMT_TEST_FLAG");
    ::unsetenv("CVMT_TEST_WORD");
  }

  static ArgParser make() {
    ArgParser p("prog", "Test program.");
    p.add_flag("verbose", "Be chatty.", "CVMT_TEST_FLAG");
    p.add_u64("budget", "n", "Budget.", "CVMT_TEST_U64");
    p.add_double("scale", "x", "Scale factor.");
    p.add_string("stats", "level", "Stats level.", "CVMT_TEST_WORD",
                 {"full", "fast"});
    p.add_positional("scheme", "Scheme name.");
    p.add_positional("workload", "Workload name.");
    return p;
  }

  static ArgParser::Outcome parse(ArgParser& p,
                                  std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return p.parse(static_cast<int>(argv.size()), argv.data());
  }
};

TEST_F(ArgsTest, DefaultsWhenNothingGiven) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {}), ArgParser::Outcome::kOk);
  EXPECT_FALSE(p.get_flag("verbose"));
  EXPECT_EQ(p.get_u64("budget", 42), 42u);
  EXPECT_DOUBLE_EQ(p.get_double("scale", 1.5), 1.5);
  EXPECT_EQ(p.get_string("stats", "fast"), "fast");
  EXPECT_EQ(p.num_positionals(), 0u);
  EXPECT_EQ(p.positional_or(0, "dflt"), "dflt");
}

TEST_F(ArgsTest, CliValuesBothSyntaxes) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {"--budget=123", "--scale", "2.5", "--verbose"}),
            ArgParser::Outcome::kOk);
  EXPECT_EQ(p.get_u64("budget", 0), 123u);
  EXPECT_DOUBLE_EQ(p.get_double("scale", 0.0), 2.5);
  EXPECT_TRUE(p.get_flag("verbose"));
  EXPECT_TRUE(p.set_on_cli("budget"));
  EXPECT_FALSE(p.set_on_cli("stats"));
}

TEST_F(ArgsTest, EnvLayersUnderCli) {
  ::setenv("CVMT_TEST_U64", "777", 1);
  ::setenv("CVMT_TEST_FLAG", "1", 1);
  ::setenv("CVMT_TEST_WORD", "full", 1);
  {
    ArgParser p = make();
    ASSERT_EQ(parse(p, {}), ArgParser::Outcome::kOk);
    // Env supplies values when the CLI is silent...
    EXPECT_EQ(p.get_u64("budget", 0), 777u);
    EXPECT_TRUE(p.get_flag("verbose"));
    EXPECT_EQ(p.get_string("stats", "fast"), "full");
  }
  {
    ArgParser p = make();
    ASSERT_EQ(parse(p, {"--budget=1", "--stats=fast"}),
              ArgParser::Outcome::kOk);
    // ...and the CLI wins when both are present.
    EXPECT_EQ(p.get_u64("budget", 0), 1u);
    EXPECT_EQ(p.get_string("stats", "full"), "fast");
  }
}

TEST_F(ArgsTest, MalformedEnvWarnsAndFallsBack) {
  ::setenv("CVMT_TEST_U64", "12abc", 1);
  ArgParser p = make();
  ASSERT_EQ(parse(p, {}), ArgParser::Outcome::kOk);
  EXPECT_EQ(p.get_u64("budget", 55), 55u);  // env rejected, fallback used
}

TEST_F(ArgsTest, MalformedCliIsAHardError) {
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--budget=12abc"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--scale=two"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--stats=sometimes"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--budget"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--verbose=1"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--no-such-flag"}), ArgParser::Outcome::kError);
  }
}

TEST_F(ArgsTest, PositionalsAndDoubleDash) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {"2SC3", "--verbose", "--", "--LLHH"}),
            ArgParser::Outcome::kOk);
  ASSERT_EQ(p.num_positionals(), 2u);
  EXPECT_EQ(p.positional(0), "2SC3");
  EXPECT_EQ(p.positional(1), "--LLHH");  // after --, flags are positional
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST_F(ArgsTest, TooManyPositionalsRejected) {
  ArgParser p = make();
  EXPECT_EQ(parse(p, {"a", "b", "c"}), ArgParser::Outcome::kError);
}

TEST_F(ArgsTest, HelpListsOptionsEnvAndPositionals) {
  ArgParser p = make();
  std::ostringstream os;
  p.print_help(os);
  const std::string help = os.str();
  EXPECT_NE(help.find("usage: prog"), std::string::npos);
  EXPECT_NE(help.find("--budget=<n>"), std::string::npos);
  EXPECT_NE(help.find("[env: CVMT_TEST_U64]"), std::string::npos);
  EXPECT_NE(help.find("one of: full fast"), std::string::npos);
  EXPECT_NE(help.find("scheme"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST_F(ArgsTest, CliSetNamesTracksExplicitFlags) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {"--verbose", "--budget=9"}), ArgParser::Outcome::kOk);
  const auto names = p.cli_set_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "verbose");
  EXPECT_EQ(names[1], "budget");
}

TEST_F(ArgsTest, UndeclaredOptionQueriesThrow) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {}), ArgParser::Outcome::kOk);
  EXPECT_THROW((void)p.get_u64("nope", 0), CheckError);
  EXPECT_THROW((void)p.get_flag("budget"), CheckError);  // kind mismatch
}

}  // namespace
}  // namespace cvmt
