// ArgParser: flag parsing, CLI-over-env layering, positionals, help and
// bad-input rejection; plus env-vs-CLI precedence for every standard
// CVMT_* experiment knob in one parameterized suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "exp/params.hpp"
#include "support/args.hpp"
#include "support/check.hpp"

namespace cvmt {
namespace {

class ArgsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("CVMT_TEST_U64");
    ::unsetenv("CVMT_TEST_FLAG");
    ::unsetenv("CVMT_TEST_WORD");
  }

  static ArgParser make() {
    ArgParser p("prog", "Test program.");
    p.add_flag("verbose", "Be chatty.", "CVMT_TEST_FLAG");
    p.add_u64("budget", "n", "Budget.", "CVMT_TEST_U64");
    p.add_double("scale", "x", "Scale factor.");
    p.add_string("stats", "level", "Stats level.", "CVMT_TEST_WORD",
                 {"full", "fast"});
    p.add_positional("scheme", "Scheme name.");
    p.add_positional("workload", "Workload name.");
    return p;
  }

  static ArgParser::Outcome parse(ArgParser& p,
                                  std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return p.parse(static_cast<int>(argv.size()), argv.data());
  }
};

TEST_F(ArgsTest, DefaultsWhenNothingGiven) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {}), ArgParser::Outcome::kOk);
  EXPECT_FALSE(p.get_flag("verbose"));
  EXPECT_EQ(p.get_u64("budget", 42), 42u);
  EXPECT_DOUBLE_EQ(p.get_double("scale", 1.5), 1.5);
  EXPECT_EQ(p.get_string("stats", "fast"), "fast");
  EXPECT_EQ(p.num_positionals(), 0u);
  EXPECT_EQ(p.positional_or(0, "dflt"), "dflt");
}

TEST_F(ArgsTest, CliValuesBothSyntaxes) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {"--budget=123", "--scale", "2.5", "--verbose"}),
            ArgParser::Outcome::kOk);
  EXPECT_EQ(p.get_u64("budget", 0), 123u);
  EXPECT_DOUBLE_EQ(p.get_double("scale", 0.0), 2.5);
  EXPECT_TRUE(p.get_flag("verbose"));
  EXPECT_TRUE(p.set_on_cli("budget"));
  EXPECT_FALSE(p.set_on_cli("stats"));
}

TEST_F(ArgsTest, EnvLayersUnderCli) {
  ::setenv("CVMT_TEST_U64", "777", 1);
  ::setenv("CVMT_TEST_FLAG", "1", 1);
  ::setenv("CVMT_TEST_WORD", "full", 1);
  {
    ArgParser p = make();
    ASSERT_EQ(parse(p, {}), ArgParser::Outcome::kOk);
    // Env supplies values when the CLI is silent...
    EXPECT_EQ(p.get_u64("budget", 0), 777u);
    EXPECT_TRUE(p.get_flag("verbose"));
    EXPECT_EQ(p.get_string("stats", "fast"), "full");
  }
  {
    ArgParser p = make();
    ASSERT_EQ(parse(p, {"--budget=1", "--stats=fast"}),
              ArgParser::Outcome::kOk);
    // ...and the CLI wins when both are present.
    EXPECT_EQ(p.get_u64("budget", 0), 1u);
    EXPECT_EQ(p.get_string("stats", "full"), "fast");
  }
}

TEST_F(ArgsTest, MalformedEnvWarnsAndFallsBack) {
  ::setenv("CVMT_TEST_U64", "12abc", 1);
  ArgParser p = make();
  ASSERT_EQ(parse(p, {}), ArgParser::Outcome::kOk);
  EXPECT_EQ(p.get_u64("budget", 55), 55u);  // env rejected, fallback used
}

TEST_F(ArgsTest, MalformedCliIsAHardError) {
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--budget=12abc"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--scale=two"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--stats=sometimes"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--budget"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--verbose=1"}), ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--no-such-flag"}), ArgParser::Outcome::kError);
  }
}

TEST_F(ArgsTest, PositionalsAndDoubleDash) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {"2SC3", "--verbose", "--", "--LLHH"}),
            ArgParser::Outcome::kOk);
  ASSERT_EQ(p.num_positionals(), 2u);
  EXPECT_EQ(p.positional(0), "2SC3");
  EXPECT_EQ(p.positional(1), "--LLHH");  // after --, flags are positional
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST_F(ArgsTest, TooManyPositionalsRejected) {
  ArgParser p = make();
  EXPECT_EQ(parse(p, {"a", "b", "c"}), ArgParser::Outcome::kError);
}

TEST_F(ArgsTest, HelpListsOptionsEnvAndPositionals) {
  ArgParser p = make();
  std::ostringstream os;
  p.print_help(os);
  const std::string help = os.str();
  EXPECT_NE(help.find("usage: prog"), std::string::npos);
  EXPECT_NE(help.find("--budget=<n>"), std::string::npos);
  EXPECT_NE(help.find("[env: CVMT_TEST_U64]"), std::string::npos);
  EXPECT_NE(help.find("one of: full fast"), std::string::npos);
  EXPECT_NE(help.find("scheme"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST_F(ArgsTest, CliSetNamesTracksExplicitFlags) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {"--verbose", "--budget=9"}), ArgParser::Outcome::kOk);
  const auto names = p.cli_set_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "verbose");
  EXPECT_EQ(names[1], "budget");
}

TEST_F(ArgsTest, UndeclaredOptionQueriesThrow) {
  ArgParser p = make();
  ASSERT_EQ(parse(p, {}), ArgParser::Outcome::kOk);
  EXPECT_THROW((void)p.get_u64("nope", 0), CheckError);
  EXPECT_THROW((void)p.get_flag("budget"), CheckError);  // kind mismatch
}

TEST_F(ArgsTest, UnknownFlagErrorNamesTheFlag) {
  ArgParser p = make();
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse(p, {"--no-such-flag"}), ArgParser::Outcome::kError);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unknown option --no-such-flag"), std::string::npos)
      << err;
  EXPECT_NE(err.find("--help"), std::string::npos) << err;
}

TEST_F(ArgsTest, DuplicateFlagIsAnError) {
  {
    ArgParser p = make();
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(parse(p, {"--budget=1", "--budget=2"}),
              ArgParser::Outcome::kError);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("duplicate option --budget"), std::string::npos)
        << err;
  }
  {
    // Mixed syntaxes are still the same option.
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--stats=fast", "--stats", "full"}),
              ArgParser::Outcome::kError);
  }
  {
    ArgParser p = make();
    EXPECT_EQ(parse(p, {"--verbose", "--verbose"}),
              ArgParser::Outcome::kError);
  }
}

TEST_F(ArgsTest, EqualsAndSpaceValueFormsAreEquivalent) {
  for (const auto& args :
       {std::initializer_list<const char*>{"--budget=123", "--scale=2.5",
                                           "--stats=full"},
        std::initializer_list<const char*>{"--budget", "123", "--scale",
                                           "2.5", "--stats", "full"}}) {
    ArgParser p = make();
    ASSERT_EQ(parse(p, args), ArgParser::Outcome::kOk);
    EXPECT_EQ(p.get_u64("budget", 0), 123u);
    EXPECT_DOUBLE_EQ(p.get_double("scale", 0.0), 2.5);
    EXPECT_EQ(p.get_string("stats", "fast"), "full");
  }
}

// ------------------------------------------------- standard CVMT_* knobs

/// One standard experiment knob: its flag, environment variable, and an
/// env/CLI value pair that must resolve CLI-over-env.
struct Knob {
  const char* flag;
  const char* env;
  enum class Kind { kFlag, kU64, kString } kind;
  const char* env_value;
  const char* cli_value;
};

class StandardKnobTest : public ::testing::TestWithParam<Knob> {
 protected:
  void TearDown() override { ::unsetenv(GetParam().env); }

  static ArgParser make_standard() {
    ArgParser p("prog", "Standard experiment flags.");
    ExperimentParams::add_standard_flags(p);
    return p;
  }
};

TEST_P(StandardKnobTest, EnvSuppliesValueAndCliOverrides) {
  const Knob k = GetParam();

  // Layer 1: nothing set — the fallback wins.
  {
    ArgParser p = make_standard();
    const char* argv[] = {"prog"};
    ASSERT_EQ(p.parse(1, argv), ArgParser::Outcome::kOk);
    switch (k.kind) {
      case Knob::Kind::kFlag: EXPECT_FALSE(p.get_flag(k.flag)); break;
      case Knob::Kind::kU64:
        EXPECT_EQ(p.get_u64(k.flag, 424242), 424242u);
        break;
      case Knob::Kind::kString:
        EXPECT_EQ(p.get_string(k.flag, "fallback"), "fallback");
        break;
    }
  }

  // Layer 2: the environment variable supplies the value.
  ::setenv(k.env, k.env_value, 1);
  {
    ArgParser p = make_standard();
    const char* argv[] = {"prog"};
    ASSERT_EQ(p.parse(1, argv), ArgParser::Outcome::kOk);
    switch (k.kind) {
      case Knob::Kind::kFlag: EXPECT_TRUE(p.get_flag(k.flag)); break;
      case Knob::Kind::kU64:
        EXPECT_EQ(p.get_u64(k.flag, 424242),
                  std::strtoull(k.env_value, nullptr, 10));
        break;
      case Knob::Kind::kString:
        EXPECT_EQ(p.get_string(k.flag, "fallback"), k.env_value);
        break;
    }
  }

  // Layer 3: an explicit CLI flag beats the environment.
  {
    ArgParser p = make_standard();
    const std::string arg =
        k.kind == Knob::Kind::kFlag
            ? "--" + std::string(k.flag)
            : "--" + std::string(k.flag) + "=" + k.cli_value;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_EQ(p.parse(2, argv), ArgParser::Outcome::kOk);
    EXPECT_TRUE(p.set_on_cli(k.flag));
    switch (k.kind) {
      case Knob::Kind::kFlag: EXPECT_TRUE(p.get_flag(k.flag)); break;
      case Knob::Kind::kU64:
        EXPECT_EQ(p.get_u64(k.flag, 424242),
                  std::strtoull(k.cli_value, nullptr, 10));
        break;
      case Knob::Kind::kString:
        EXPECT_EQ(p.get_string(k.flag, "fallback"), k.cli_value);
        break;
    }
  }
}

// Lane counts must fail at resolve() time, before any sweep work, and
// each class of mistake gets its own message: an explicit 0 (not an
// "auto" spelling), values over the engine's lane-pool max, and
// non-powers-of-two. Every message names the knob.
TEST(LanesKnob, EagerValidationNamesEachMistake) {
  struct BadLane {
    const char* value;
    const char* expect;
  };
  const BadLane bads[] = {
      {"0", "must be >= 1"},
      {"3", "power of two"},
      {"6", "power of two"},
      {"5000", "lane-pool max"},
      {"8192", "lane-pool max"},
  };
  for (const BadLane& bad : bads) {
    ArgParser p("prog", "");
    ExperimentParams::add_standard_flags(p);
    const std::string flag = std::string("--lanes=") + bad.value;
    const char* argv[] = {"prog", flag.c_str()};
    ASSERT_EQ(p.parse(2, argv), ArgParser::Outcome::kOk);
    try {
      (void)ExperimentParams::resolve(p);
      FAIL() << "--lanes=" << bad.value << " should have been rejected";
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(bad.expect), std::string::npos) << what;
      EXPECT_NE(what.find("--lanes/CVMT_BATCH_LANES"), std::string::npos)
          << what;
    }
  }
  for (const char* good : {"8", "4096"}) {
    ArgParser p("prog", "");
    ExperimentParams::add_standard_flags(p);
    const std::string flag = std::string("--lanes=") + good;
    const char* argv[] = {"prog", flag.c_str()};
    ASSERT_EQ(p.parse(2, argv), ArgParser::Outcome::kOk);
    EXPECT_EQ(ExperimentParams::resolve(p).cfg.batch.lanes,
              std::strtoull(good, nullptr, 10));
  }
}

INSTANTIATE_TEST_SUITE_P(
    EveryCvmtKnob, StandardKnobTest,
    ::testing::Values(
        Knob{"fast", "CVMT_FAST", Knob::Kind::kFlag, "1", ""},
        Knob{"budget", "CVMT_BUDGET", Knob::Kind::kU64, "9000", "123"},
        Knob{"timeslice", "CVMT_TIMESLICE", Knob::Kind::kU64, "777",
             "555"},
        Knob{"workers", "CVMT_WORKERS", Knob::Kind::kU64, "3", "2"},
        Knob{"lanes", "CVMT_BATCH_LANES", Knob::Kind::kU64, "8", "4"},
        Knob{"stats", "CVMT_STATS", Knob::Kind::kString, "full", "fast"},
        // env_word() canonicalizes environment words to lower case, so
        // the env-layer expectations must be lower case already; CLI
        // values pass through verbatim.
        Knob{"schemes", "CVMT_SCHEMES", Knob::Kind::kString, "2sc3,3ccc",
             "1S"},
        Knob{"workloads", "CVMT_WORKLOADS", Knob::Kind::kString, "llhh",
             "HHHH"},
        Knob{"clusters", "CVMT_CLUSTERS", Knob::Kind::kU64, "8", "2"},
        Knob{"issue", "CVMT_ISSUE", Knob::Kind::kU64, "2", "4"}),
    [](const ::testing::TestParamInfo<Knob>& info) {
      return std::string(info.param.flag);
    });

}  // namespace
}  // namespace cvmt
