// Tests of the set-associative cache and memory-system facade.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/memory_system.hpp"

namespace cvmt {
namespace {

CacheConfig small_cache() {
  CacheConfig c;
  c.size_bytes = 1024;  // 4 sets x 4 ways x 64B
  c.line_bytes = 64;
  c.ways = 4;
  c.miss_penalty = 20;
  return c;
}

TEST(CacheConfig, DefaultIsThePaperCache) {
  const CacheConfig c;
  EXPECT_EQ(c.size_bytes, 64u * 1024);
  EXPECT_EQ(c.ways, 4u);
  EXPECT_EQ(c.miss_penalty, 20);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.num_sets(), 256u);
}

TEST(CacheConfig, RejectsBadGeometry) {
  CacheConfig c = small_cache();
  c.line_bytes = 48;  // not a power of two
  EXPECT_THROW(c.validate(), CheckError);
  c = small_cache();
  c.size_bytes = 1000;  // not a multiple of line*ways
  EXPECT_THROW(c.validate(), CheckError);
  c = small_cache();
  c.ways = 0;
  EXPECT_THROW(c.validate(), CheckError);
}

TEST(Cache, ColdMissThenHit) {
  SetAssocCache cache(small_cache());
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x103F));  // same 64B line
  EXPECT_FALSE(cache.access(0x1040));  // next line
}

TEST(Cache, ContainsDoesNotFill) {
  SetAssocCache cache(small_cache());
  EXPECT_FALSE(cache.contains(0x2000));
  EXPECT_FALSE(cache.access(0x2000));
  EXPECT_TRUE(cache.contains(0x2000));
}

TEST(Cache, AssociativityHoldsWaysLines) {
  SetAssocCache cache(small_cache());  // 4 sets => set stride 256B
  // 4 lines mapping to set 0: tags differ by 4*64 = 256.
  for (int i = 0; i < 4; ++i)
    cache.access(static_cast<std::uint64_t>(i) * 256);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(cache.contains(static_cast<std::uint64_t>(i) * 256)) << i;
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache cache(small_cache());
  for (int i = 0; i < 4; ++i)
    cache.access(static_cast<std::uint64_t>(i) * 256);
  cache.access(0);  // touch line 0: line 1 becomes LRU
  cache.access(4 * 256);  // 5th line in the set evicts line 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(256));
  EXPECT_TRUE(cache.contains(2 * 256));
  EXPECT_TRUE(cache.contains(4 * 256));
}

TEST(Cache, InvalidWaysFillBeforeEviction) {
  SetAssocCache cache(small_cache());
  cache.access(0);
  cache.access(256);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(256));
}

TEST(Cache, StatsTrackHitsAndMisses) {
  SetAssocCache cache(small_cache());
  cache.access(0);
  cache.access(0);
  cache.access(0);
  cache.access(64);
  EXPECT_EQ(cache.stats().total, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, FlushInvalidatesEverything) {
  SetAssocCache cache(small_cache());
  cache.access(0x42);
  cache.flush();
  EXPECT_FALSE(cache.contains(0x42));
}

TEST(Cache, StreamingWorkloadMissesEveryLine) {
  SetAssocCache cache(small_cache());
  int misses = 0;
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64)
    misses += cache.access(a) ? 0 : 1;
  EXPECT_EQ(misses, 1024);
}

TEST(Cache, ResidentWorkingSetAlwaysHitsAfterWarmup) {
  SetAssocCache cache(small_cache());
  for (std::uint64_t a = 0; a < 1024; a += 64) cache.access(a);  // warm
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t a = 0; a < 1024; a += 64)
      EXPECT_TRUE(cache.access(a));
}

TEST(MemorySystem, SharedCachesSeeAllThreads) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.sharing = CacheSharing::kShared;
  MemorySystem mem(cfg, 2);
  EXPECT_FALSE(mem.data_access(0, 0x100).hit);
  EXPECT_TRUE(mem.data_access(1, 0x100).hit);  // warmed by thread 0
}

TEST(MemorySystem, PrivateCachesIsolateThreads) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.sharing = CacheSharing::kPrivate;
  MemorySystem mem(cfg, 2);
  EXPECT_FALSE(mem.data_access(0, 0x100).hit);
  EXPECT_FALSE(mem.data_access(1, 0x100).hit);  // its own cold cache
}

TEST(MemorySystem, PerfectModeNeverMisses) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.perfect = true;
  MemorySystem mem(cfg, 1);
  for (std::uint64_t a = 0; a < 1 << 20; a += 4096) {
    const MemAccessResult r = mem.data_access(0, a);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.penalty_cycles, 0);
  }
  EXPECT_EQ(mem.dcache_stats().total, 0u);  // caches untouched
}

TEST(MemorySystem, MissPenaltyIsReported) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  MemorySystem mem(cfg, 1);
  EXPECT_EQ(mem.fetch(0, 0xABC).penalty_cycles, 20);
  EXPECT_EQ(mem.fetch(0, 0xABC).penalty_cycles, 0);
}

TEST(MemorySystem, StatsAggregateAcrossPrivateCaches) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.sharing = CacheSharing::kPrivate;
  MemorySystem mem(cfg, 3);
  mem.data_access(0, 0);
  mem.data_access(1, 0);
  mem.data_access(2, 0);
  EXPECT_EQ(mem.dcache_stats().total, 3u);
  EXPECT_EQ(mem.dcache_stats().hits, 0u);
}

TEST(MemorySystemConfig, ValidateRejectsBadBankCounts) {
  MemorySystemConfig cfg;
  EXPECT_NO_THROW(cfg.validate());  // defaults are the legacy machine
  cfg.dcache_banks = 3;             // not a power of two
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.dcache_banks = 4;
  cfg.bank_conflict_penalty = -1;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(MemorySystem, L2MissAddsItsPenaltyOnTopOfL1) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();  // L1 penalty 20
  cfg.has_l2 = true;
  cfg.l2 = CacheConfig{8192, 64, 4, 80};
  MemorySystem mem(cfg, 1);
  // Cold: L1 miss + L2 miss -> 20 + 80.
  EXPECT_EQ(mem.data_access(0, 0x100).penalty_cycles, 100);
  // Warm in both: free.
  EXPECT_EQ(mem.data_access(0, 0x100).penalty_cycles, 0);
  EXPECT_EQ(mem.l2_stats().total, 1u);
  EXPECT_EQ(mem.l2_stats().hits, 0u);
}

TEST(MemorySystem, L2HitCostsOnlyTheL1Penalty) {
  // A tiny L1 over a big L2: evict a line from L1, keep it in L2.
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = CacheConfig{128, 64, 1, 20};  // 2 sets, direct
  cfg.has_l2 = true;
  cfg.l2 = CacheConfig{8192, 64, 4, 80};
  MemorySystem mem(cfg, 1);
  EXPECT_EQ(mem.data_access(0, 0x000).penalty_cycles, 100);  // cold both
  EXPECT_EQ(mem.data_access(0, 0x200).penalty_cycles, 100);  // evicts 0x000
  EXPECT_EQ(mem.data_access(0, 0x000).penalty_cycles, 20);   // L2 still has it
}

TEST(MemorySystem, PerfectModeBypassesTheL2Too) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.has_l2 = true;
  cfg.perfect = true;
  MemorySystem mem(cfg, 1);
  EXPECT_EQ(mem.data_access(0, 0x123456).penalty_cycles, 0);
  EXPECT_EQ(mem.l2_stats().total, 0u);
}

TEST(MemorySystem, BankIndexFollowsLineAddress) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();  // 64B lines
  cfg.dcache_banks = 4;
  MemorySystem mem(cfg, 1);
  EXPECT_EQ(mem.data_access(0, 0x000).bank, 0);
  EXPECT_EQ(mem.data_access(0, 0x03F).bank, 0);  // same line, same bank
  EXPECT_EQ(mem.data_access(0, 0x040).bank, 1);
  EXPECT_EQ(mem.data_access(0, 0x0C0).bank, 3);
  EXPECT_EQ(mem.data_access(0, 0x100).bank, 0);  // wraps modulo banks
}

TEST(MemorySystem, ResetClearsTheL2) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.has_l2 = true;
  cfg.l2 = CacheConfig{8192, 64, 4, 80};
  MemorySystem mem(cfg, 1);
  mem.data_access(0, 0x100);
  mem.reset();
  // After reset the L2 is cold again: full double penalty.
  EXPECT_EQ(mem.data_access(0, 0x100).penalty_cycles, 100);
}

}  // namespace
}  // namespace cvmt
