// Tests of the set-associative cache and memory-system facade.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/memory_system.hpp"

namespace cvmt {
namespace {

CacheConfig small_cache() {
  CacheConfig c;
  c.size_bytes = 1024;  // 4 sets x 4 ways x 64B
  c.line_bytes = 64;
  c.ways = 4;
  c.miss_penalty = 20;
  return c;
}

TEST(CacheConfig, DefaultIsThePaperCache) {
  const CacheConfig c;
  EXPECT_EQ(c.size_bytes, 64u * 1024);
  EXPECT_EQ(c.ways, 4u);
  EXPECT_EQ(c.miss_penalty, 20);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.num_sets(), 256u);
}

TEST(CacheConfig, RejectsBadGeometry) {
  CacheConfig c = small_cache();
  c.line_bytes = 48;  // not a power of two
  EXPECT_THROW(c.validate(), CheckError);
  c = small_cache();
  c.size_bytes = 1000;  // not a multiple of line*ways
  EXPECT_THROW(c.validate(), CheckError);
  c = small_cache();
  c.ways = 0;
  EXPECT_THROW(c.validate(), CheckError);
}

TEST(Cache, ColdMissThenHit) {
  SetAssocCache cache(small_cache());
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x103F));  // same 64B line
  EXPECT_FALSE(cache.access(0x1040));  // next line
}

TEST(Cache, ContainsDoesNotFill) {
  SetAssocCache cache(small_cache());
  EXPECT_FALSE(cache.contains(0x2000));
  EXPECT_FALSE(cache.access(0x2000));
  EXPECT_TRUE(cache.contains(0x2000));
}

TEST(Cache, AssociativityHoldsWaysLines) {
  SetAssocCache cache(small_cache());  // 4 sets => set stride 256B
  // 4 lines mapping to set 0: tags differ by 4*64 = 256.
  for (int i = 0; i < 4; ++i)
    cache.access(static_cast<std::uint64_t>(i) * 256);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(cache.contains(static_cast<std::uint64_t>(i) * 256)) << i;
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache cache(small_cache());
  for (int i = 0; i < 4; ++i)
    cache.access(static_cast<std::uint64_t>(i) * 256);
  cache.access(0);  // touch line 0: line 1 becomes LRU
  cache.access(4 * 256);  // 5th line in the set evicts line 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(256));
  EXPECT_TRUE(cache.contains(2 * 256));
  EXPECT_TRUE(cache.contains(4 * 256));
}

TEST(Cache, InvalidWaysFillBeforeEviction) {
  SetAssocCache cache(small_cache());
  cache.access(0);
  cache.access(256);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(256));
}

TEST(Cache, StatsTrackHitsAndMisses) {
  SetAssocCache cache(small_cache());
  cache.access(0);
  cache.access(0);
  cache.access(0);
  cache.access(64);
  EXPECT_EQ(cache.stats().total, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, FlushInvalidatesEverything) {
  SetAssocCache cache(small_cache());
  cache.access(0x42);
  cache.flush();
  EXPECT_FALSE(cache.contains(0x42));
}

TEST(Cache, StreamingWorkloadMissesEveryLine) {
  SetAssocCache cache(small_cache());
  int misses = 0;
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64)
    misses += cache.access(a) ? 0 : 1;
  EXPECT_EQ(misses, 1024);
}

TEST(Cache, ResidentWorkingSetAlwaysHitsAfterWarmup) {
  SetAssocCache cache(small_cache());
  for (std::uint64_t a = 0; a < 1024; a += 64) cache.access(a);  // warm
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t a = 0; a < 1024; a += 64)
      EXPECT_TRUE(cache.access(a));
}

TEST(MemorySystem, SharedCachesSeeAllThreads) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.sharing = CacheSharing::kShared;
  MemorySystem mem(cfg, 2);
  EXPECT_FALSE(mem.data_access(0, 0x100).hit);
  EXPECT_TRUE(mem.data_access(1, 0x100).hit);  // warmed by thread 0
}

TEST(MemorySystem, PrivateCachesIsolateThreads) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.sharing = CacheSharing::kPrivate;
  MemorySystem mem(cfg, 2);
  EXPECT_FALSE(mem.data_access(0, 0x100).hit);
  EXPECT_FALSE(mem.data_access(1, 0x100).hit);  // its own cold cache
}

TEST(MemorySystem, PerfectModeNeverMisses) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.perfect = true;
  MemorySystem mem(cfg, 1);
  for (std::uint64_t a = 0; a < 1 << 20; a += 4096) {
    const MemAccessResult r = mem.data_access(0, a);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.penalty_cycles, 0);
  }
  EXPECT_EQ(mem.dcache_stats().total, 0u);  // caches untouched
}

TEST(MemorySystem, MissPenaltyIsReported) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  MemorySystem mem(cfg, 1);
  EXPECT_EQ(mem.fetch(0, 0xABC).penalty_cycles, 20);
  EXPECT_EQ(mem.fetch(0, 0xABC).penalty_cycles, 0);
}

TEST(MemorySystem, StatsAggregateAcrossPrivateCaches) {
  MemorySystemConfig cfg;
  cfg.icache = cfg.dcache = small_cache();
  cfg.sharing = CacheSharing::kPrivate;
  MemorySystem mem(cfg, 3);
  mem.data_access(0, 0);
  mem.data_access(1, 0);
  mem.data_access(2, 0);
  EXPECT_EQ(mem.dcache_stats().total, 3u);
  EXPECT_EQ(mem.dcache_stats().hits, 0u);
}

}  // namespace
}  // namespace cvmt
