// Statistical property tests of the synthetic substrate: for every
// Table 1 benchmark, the emitted dynamic stream must track the profile's
// op mix, the calibrated miss mix, and the intended locality structure.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "sim/simulation.hpp"
#include "trace/trace_generator.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

struct StreamStats {
  std::uint64_t instructions = 0;
  std::uint64_t non_bubble = 0;
  std::uint64_t ops = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t mul_ops = 0;
  std::uint64_t store_ops = 0;
  std::uint64_t branches = 0;
  std::uint64_t cold_accesses = 0;  // addresses in the streaming region
};

StreamStats run_stream(const char* name, int n) {
  ProgramLibrary lib(kM);
  TraceGenerator gen(lib.get(name), 99);
  StreamStats s;
  for (int i = 0; i < n; ++i) {
    const Instruction& instr = gen.next();
    ++s.instructions;
    if (!instr.empty()) ++s.non_bubble;
    s.ops += instr.op_count();
    for (const Operation& op : instr) {
      if (is_memory(op.kind)) {
        ++s.mem_ops;
        if (op.kind == OpKind::kStore) ++s.store_ops;
        // Map back into the program's address regions: the cold streams
        // start at 0x40000000.
        if (op.addr - gen.address_salt() >= 0x40000000ULL)
          ++s.cold_accesses;
      } else if (op.kind == OpKind::kMul) {
        ++s.mul_ops;
      } else if (op.kind == OpKind::kBranch) {
        ++s.branches;
      }
    }
  }
  return s;
}

class TraceStatsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceStatsTest, OpMixTracksProfile) {
  const BenchmarkProfile& p = profile_by_name(GetParam());
  const StreamStats s = run_stream(p.name.c_str(), 60'000);
  const double ops = static_cast<double>(s.ops);
  // Branch ops are injected on top of the sampled mix, so the sampled
  // fractions shrink slightly; allow a generous but meaningful band.
  EXPECT_NEAR(static_cast<double>(s.mem_ops) / ops, p.mem_op_frac,
              0.25 * p.mem_op_frac + 0.02)
      << p.name;
  if (p.mul_op_frac > 0.02) {
    EXPECT_NEAR(static_cast<double>(s.mul_ops) / ops, p.mul_op_frac,
                0.3 * p.mul_op_frac + 0.02)
        << p.name;
  }
  if (s.mem_ops > 0) {
    EXPECT_NEAR(static_cast<double>(s.store_ops) /
                    static_cast<double>(s.mem_ops),
                p.store_frac, 0.2)
        << p.name;
  }
}

TEST_P(TraceStatsTest, MeanOpsPerRealInstructionNearProfile) {
  const BenchmarkProfile& p = profile_by_name(GetParam());
  const StreamStats s = run_stream(p.name.c_str(), 60'000);
  const double mean_ops =
      static_cast<double>(s.ops) / static_cast<double>(s.non_bubble);
  // Clamping at 1 and the machine width skews wide/narrow profiles a bit.
  EXPECT_NEAR(mean_ops, p.mean_ops_per_instr,
              0.2 * p.mean_ops_per_instr + 0.3)
      << p.name;
}

TEST_P(TraceStatsTest, ColdMixMatchesCalibration) {
  const BenchmarkProfile& p = profile_by_name(GetParam());
  ProgramLibrary lib(kM);
  const auto prog = lib.get(p.name);
  // Expected cold fraction = trip-weighted mean of per-loop miss_frac.
  double expect = 0.0, weight = 0.0;
  for (const auto& loop : prog->loops()) {
    expect += loop.miss_frac * static_cast<double>(loop.mem_ops) *
              loop.mean_trips;
    weight += static_cast<double>(loop.mem_ops) * loop.mean_trips;
  }
  expect = weight > 0 ? expect / weight : 0.0;
  const StreamStats s = run_stream(p.name.c_str(), 80'000);
  const double measured =
      s.mem_ops ? static_cast<double>(s.cold_accesses) /
                      static_cast<double>(s.mem_ops)
                : 0.0;
  EXPECT_NEAR(measured, expect, 0.25 * expect + 0.01) << p.name;
}

TEST_P(TraceStatsTest, HotWorkingSetStaysCacheResident) {
  const BenchmarkProfile& p = profile_by_name(GetParam());
  ProgramLibrary lib(kM);
  TraceGenerator gen(lib.get(p.name), 5);
  SetAssocCache dcache(CacheConfig{});  // the paper's 64KB 4-way
  std::uint64_t hot_total = 0, hot_miss = 0;
  for (int i = 0; i < 100'000; ++i) {
    const Instruction& instr = gen.next();
    for (const Operation& op : instr) {
      if (!is_memory(op.kind)) continue;
      const bool cold = op.addr - gen.address_salt() >= 0x40000000ULL;
      const bool hit = dcache.access(op.addr);
      if (!cold) {
        ++hot_total;
        hot_miss += hit ? 0u : 1u;
      }
    }
  }
  if (hot_total > 1000) {
    // After warm-up the hot region must be essentially resident.
    EXPECT_LT(static_cast<double>(hot_miss) /
                  static_cast<double>(hot_total),
              0.05)
        << p.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, TraceStatsTest,
    ::testing::Values("mcf", "bzip2", "blowfish", "gsmencode", "g721encode",
                      "g721decode", "cjpeg", "djpeg", "imgpipe", "x264",
                      "idct", "colorspace"));

TEST(TraceFairness, SymmetricThreadsGetEqualIssueShares) {
  // Round-robin rotation must not starve anyone: four copies of the same
  // benchmark under pure CSMT issue within a few percent of each other.
  ProgramLibrary lib(kM);
  const auto prog = lib.get("g721encode");
  std::vector<std::shared_ptr<const SyntheticProgram>> progs(4, prog);
  SimConfig cfg;
  cfg.instruction_budget = 60'000;
  cfg.timeslice_cycles = 1ULL << 40;  // no OS interference
  const SimResult r = run_simulation(Scheme::parse("3CCC"), progs, cfg);
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& t : r.threads) {
    lo = std::min(lo, t.instructions);
    hi = std::max(hi, t.instructions);
  }
  EXPECT_LT(static_cast<double>(hi - lo) / static_cast<double>(hi), 0.12);
}

}  // namespace
}  // namespace cvmt
