// Tests of the VEX-style textual program format: round-trip exactness,
// hand-written programs, and error reporting.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "trace/vex_asm.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

const char* kMiniProgram = R"(
# A two-loop hand-written program.
.program mini
.machine clusters=4 issue=4
.stride 8
.codebytes 32
.midtaken 0.25
.loop trips=10.000 miss=0.000000 code=0x10000 hot=0x20000000+4096 cold=0x40000000
{ c0.0 alu ; c0.2 ld }
{ }
{ c0.3 br }
.endloop
.loop trips=4.000 miss=0.250000 code=0x11000 hot=0x20001000+4096 cold=0x44000000
{ c1.0 alu ; c2.1 mpy ; c1.2 st }
{ c1.3 br }
.endloop
)";

TEST(VexAsm, ParsesHandWrittenProgram) {
  const auto prog = parse_program(kMiniProgram, kM);
  EXPECT_EQ(prog->profile().name, "mini");
  ASSERT_EQ(prog->loops().size(), 2u);
  const auto& l0 = prog->loops()[0];
  EXPECT_EQ(l0.body.size(), 3u);
  EXPECT_EQ(l0.real_instrs, 2);
  EXPECT_EQ(l0.total_ops, 3);
  EXPECT_EQ(l0.mem_ops, 1);
  EXPECT_DOUBLE_EQ(l0.mean_trips, 10.0);
  EXPECT_EQ(l0.code_base, 0x10000u);
  EXPECT_EQ(l0.body[1].op_count(), 0u);  // the bubble
  // cycles = 3 instructions + 2 taken-branch penalty.
  EXPECT_DOUBLE_EQ(l0.expected_cycles_perfect, 5.0);
  const auto& l1 = prog->loops()[1];
  EXPECT_DOUBLE_EQ(l1.miss_frac, 0.25);
  EXPECT_EQ(l1.cold_base, 0x44000000u);
}

TEST(VexAsm, ParsedProgramExecutes) {
  const auto prog = parse_program(kMiniProgram, kM);
  TraceGenerator gen(prog, 1);
  for (int i = 0; i < 1000; ++i)
    ASSERT_EQ(gen.next().validate(kM), "");
  EXPECT_EQ(gen.instructions_emitted(), 1000u);
}

TEST(VexAsm, RoundTripIsExact) {
  for (const char* name : {"mcf", "idct", "colorspace"}) {
    ProgramLibrary lib(kM);
    const auto original = lib.get(name);
    const std::string text = dump_program(*original);
    const auto reparsed = parse_program(text, kM);
    EXPECT_EQ(dump_program(*reparsed), text) << name;
  }
}

TEST(VexAsm, ReparsedProgramSimulatesIdentically) {
  ProgramLibrary lib(kM);
  const auto original = lib.get("djpeg");
  const auto reparsed = parse_program(dump_program(*original), kM);
  // Same stream seed => identical dynamic streams.
  TraceGenerator a(original, 11), b(reparsed, 11);
  for (int i = 0; i < 4000; ++i) {
    const Instruction& ia = a.next();
    const Instruction& ib = b.next();
    ASSERT_TRUE(ia == ib) << "diverged at " << i;
  }
}

TEST(VexAsm, ReparsedProgramMatchesEndToEndSimulation) {
  ProgramLibrary lib(kM);
  const auto original = lib.get("cjpeg");
  const auto reparsed = parse_program(dump_program(*original), kM);
  SimConfig cfg;
  cfg.instruction_budget = 20'000;
  const SimResult ra =
      run_simulation(Scheme::single_thread(), {original}, cfg);
  const SimResult rb =
      run_simulation(Scheme::single_thread(), {reparsed}, cfg);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.total_ops, rb.total_ops);
}

TEST(VexAsm, DumpContainsMachineAndLoops) {
  ProgramLibrary lib(kM);
  const std::string text = dump_program(*lib.get("gsmencode"));
  EXPECT_NE(text.find(".program gsmencode"), std::string::npos);
  EXPECT_NE(text.find(".machine clusters=4 issue=4"), std::string::npos);
  EXPECT_NE(text.find(".loop "), std::string::npos);
  EXPECT_NE(text.find(".endloop"), std::string::npos);
}

TEST(VexAsm, RejectsMachineMismatch) {
  EXPECT_THROW((void)parse_program(kMiniProgram, MachineConfig::vex4x2()),
               CheckError);
}

TEST(VexAsm, RejectsMalformedInput) {
  // Missing .machine.
  EXPECT_THROW((void)parse_program(".program x\n", kM), CheckError);
  // Instruction outside a loop.
  EXPECT_THROW(
      (void)parse_program(".machine clusters=4 issue=4\n{ c0.0 alu }\n",
                          kM),
      CheckError);
  // Unterminated loop (also lacks the final branch).
  EXPECT_THROW((void)parse_program(".machine clusters=4 issue=4\n"
                                   ".loop trips=1 miss=0 code=0x0 "
                                   "hot=0x0+64 cold=0x0\n{ c0.0 alu }\n",
                                   kM),
               CheckError);
  // Unknown op kind.
  EXPECT_THROW((void)parse_program(".machine clusters=4 issue=4\n"
                                   ".loop trips=1 miss=0 code=0x0 "
                                   "hot=0x0+64 cold=0x0\n{ c0.0 fma }\n"
                                   ".endloop\n",
                                   kM),
               CheckError);
  // Unknown directive.
  EXPECT_THROW((void)parse_program(".bogus\n", kM), CheckError);
}

TEST(VexAsm, RejectsSemanticallyInvalidLoops) {
  // Loop whose last instruction has no branch.
  const char* no_branch =
      ".machine clusters=4 issue=4\n"
      ".loop trips=1 miss=0 code=0x0 hot=0x0+64 cold=0x0\n"
      "{ c0.0 alu }\n"
      ".endloop\n";
  EXPECT_THROW((void)parse_program(no_branch, kM), CheckError);
  // Operation on a slot that cannot execute it.
  const char* bad_slot =
      ".machine clusters=4 issue=4\n"
      ".loop trips=1 miss=0 code=0x0 hot=0x0+64 cold=0x0\n"
      "{ c0.0 ld ; c0.3 br }\n"
      ".endloop\n";
  EXPECT_THROW((void)parse_program(bad_slot, kM), CheckError);
}

/// Expects parse_program(text) to throw a CheckError mentioning `needle`.
void expect_parse_error(const std::string& text,
                        const std::string& needle) {
  try {
    (void)parse_program(text, kM);
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "message \"" << msg << "\" does not mention \"" << needle
        << "\"";
    return;
  }
  ADD_FAILURE() << "no error for:\n" << text;
}

std::string loop_with(const std::string& loop_line) {
  return ".machine clusters=4 issue=4\n" + loop_line +
         "\n{ c0.0 alu ; c0.3 br }\n.endloop\n";
}

// Regression: field_u64/field_double passed a null end pointer to
// strtoull/strtod, so a garbage field silently parsed as 0 (and a signed
// one wrapped). Every numeric field must now validate the whole token and
// name the offending line.
TEST(VexAsm, GarbageNumericFieldsFailWithTheLineNumber) {
  expect_parse_error(
      loop_with(".loop trips=1 miss=0 code=0xZZ hot=0x0+64 cold=0x0"),
      "line 2: code= is not an unsigned number: '0xZZ'");
  expect_parse_error(
      loop_with(".loop trips=oops miss=0 code=0x0 hot=0x0+64 cold=0x0"),
      "line 2: trips= is not a non-negative number: 'oops'");
  expect_parse_error(
      loop_with(".loop trips=1 miss=0.5x code=0x0 hot=0x0+64 cold=0x0"),
      "miss= is not a non-negative number: '0.5x'");
  expect_parse_error(
      loop_with(".loop trips=1 miss=0 code=0x0 hot=0x0+64kb cold=0x0"),
      "hot= window is not an unsigned number: '64kb'");
  expect_parse_error(".machine clusters=4 issue=4\n.stride 8x\n",
                     "line 2: .stride is not an unsigned number: '8x'");
  expect_parse_error(".machine clusters=4 issue=4\n.codebytes eight\n",
                     ".codebytes is not an unsigned number: 'eight'");
  expect_parse_error(".machine clusters=4 issue=4\n.midtaken often\n",
                     ".midtaken is not a non-negative number: 'often'");
}

TEST(VexAsm, EmptyAndSignedFieldsAreRejected) {
  expect_parse_error(
      loop_with(".loop trips= miss=0 code=0x0 hot=0x0+64 cold=0x0"),
      "trips= is not a non-negative number: ''");
  // strtoull would wrap "-48" to 18446744073709551598 — reject instead.
  expect_parse_error(
      loop_with(".loop trips=1 miss=0 code=-48 hot=0x0+64 cold=0x0"),
      "code= is not an unsigned number: '-48'");
  expect_parse_error(
      loop_with(".loop trips=-1 miss=0 code=0x0 hot=0x0+64 cold=0x0"),
      "trips= is not a non-negative number: '-1'");
  expect_parse_error(".machine clusters=+4 issue=4\n",
                     "clusters= is not an unsigned number: '+4'");
}

TEST(VexAsm, MalformedOperationDigitsAreRejected) {
  expect_parse_error(loop_with(".loop trips=1 miss=0 code=0x0 hot=0x0+64 "
                               "cold=0x0\n{ cX.0 alu ; c0.3 br }"),
                     "malformed operation");
  expect_parse_error(loop_with(".loop trips=1 miss=0 code=0x0 hot=0x0+64 "
                               "cold=0x0\n{ c0.q alu ; c0.3 br }"),
                     "malformed operation");
}

TEST(VexAsm, CommentsAndBlankLinesIgnored) {
  const std::string text = std::string("# leading comment\n\n") +
                           kMiniProgram + "\n# trailing\n";
  EXPECT_NO_THROW((void)parse_program(text, kM));
}

}  // namespace
}  // namespace cvmt
