// Tests of the VEX-style textual program format: round-trip exactness,
// hand-written programs, and error reporting.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "trace/vex_asm.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

const char* kMiniProgram = R"(
# A two-loop hand-written program.
.program mini
.machine clusters=4 issue=4
.stride 8
.codebytes 32
.midtaken 0.25
.loop trips=10.000 miss=0.000000 code=0x10000 hot=0x20000000+4096 cold=0x40000000
{ c0.0 alu ; c0.2 ld }
{ }
{ c0.3 br }
.endloop
.loop trips=4.000 miss=0.250000 code=0x11000 hot=0x20001000+4096 cold=0x44000000
{ c1.0 alu ; c2.1 mpy ; c1.2 st }
{ c1.3 br }
.endloop
)";

TEST(VexAsm, ParsesHandWrittenProgram) {
  const auto prog = parse_program(kMiniProgram, kM);
  EXPECT_EQ(prog->profile().name, "mini");
  ASSERT_EQ(prog->loops().size(), 2u);
  const auto& l0 = prog->loops()[0];
  EXPECT_EQ(l0.body.size(), 3u);
  EXPECT_EQ(l0.real_instrs, 2);
  EXPECT_EQ(l0.total_ops, 3);
  EXPECT_EQ(l0.mem_ops, 1);
  EXPECT_DOUBLE_EQ(l0.mean_trips, 10.0);
  EXPECT_EQ(l0.code_base, 0x10000u);
  EXPECT_EQ(l0.body[1].op_count(), 0u);  // the bubble
  // cycles = 3 instructions + 2 taken-branch penalty.
  EXPECT_DOUBLE_EQ(l0.expected_cycles_perfect, 5.0);
  const auto& l1 = prog->loops()[1];
  EXPECT_DOUBLE_EQ(l1.miss_frac, 0.25);
  EXPECT_EQ(l1.cold_base, 0x44000000u);
}

TEST(VexAsm, ParsedProgramExecutes) {
  const auto prog = parse_program(kMiniProgram, kM);
  TraceGenerator gen(prog, 1);
  for (int i = 0; i < 1000; ++i)
    ASSERT_EQ(gen.next().validate(kM), "");
  EXPECT_EQ(gen.instructions_emitted(), 1000u);
}

TEST(VexAsm, RoundTripIsExact) {
  for (const char* name : {"mcf", "idct", "colorspace"}) {
    ProgramLibrary lib(kM);
    const auto original = lib.get(name);
    const std::string text = dump_program(*original);
    const auto reparsed = parse_program(text, kM);
    EXPECT_EQ(dump_program(*reparsed), text) << name;
  }
}

TEST(VexAsm, ReparsedProgramSimulatesIdentically) {
  ProgramLibrary lib(kM);
  const auto original = lib.get("djpeg");
  const auto reparsed = parse_program(dump_program(*original), kM);
  // Same stream seed => identical dynamic streams.
  TraceGenerator a(original, 11), b(reparsed, 11);
  for (int i = 0; i < 4000; ++i) {
    const Instruction& ia = a.next();
    const Instruction& ib = b.next();
    ASSERT_TRUE(ia == ib) << "diverged at " << i;
  }
}

TEST(VexAsm, ReparsedProgramMatchesEndToEndSimulation) {
  ProgramLibrary lib(kM);
  const auto original = lib.get("cjpeg");
  const auto reparsed = parse_program(dump_program(*original), kM);
  SimConfig cfg;
  cfg.instruction_budget = 20'000;
  const SimResult ra =
      run_simulation(Scheme::single_thread(), {original}, cfg);
  const SimResult rb =
      run_simulation(Scheme::single_thread(), {reparsed}, cfg);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.total_ops, rb.total_ops);
}

TEST(VexAsm, DumpContainsMachineAndLoops) {
  ProgramLibrary lib(kM);
  const std::string text = dump_program(*lib.get("gsmencode"));
  EXPECT_NE(text.find(".program gsmencode"), std::string::npos);
  EXPECT_NE(text.find(".machine clusters=4 issue=4"), std::string::npos);
  EXPECT_NE(text.find(".loop "), std::string::npos);
  EXPECT_NE(text.find(".endloop"), std::string::npos);
}

TEST(VexAsm, RejectsMachineMismatch) {
  EXPECT_THROW((void)parse_program(kMiniProgram, MachineConfig::vex4x2()),
               CheckError);
}

TEST(VexAsm, RejectsMalformedInput) {
  // Missing .machine.
  EXPECT_THROW((void)parse_program(".program x\n", kM), CheckError);
  // Instruction outside a loop.
  EXPECT_THROW(
      (void)parse_program(".machine clusters=4 issue=4\n{ c0.0 alu }\n",
                          kM),
      CheckError);
  // Unterminated loop (also lacks the final branch).
  EXPECT_THROW((void)parse_program(".machine clusters=4 issue=4\n"
                                   ".loop trips=1 miss=0 code=0x0 "
                                   "hot=0x0+64 cold=0x0\n{ c0.0 alu }\n",
                                   kM),
               CheckError);
  // Unknown op kind.
  EXPECT_THROW((void)parse_program(".machine clusters=4 issue=4\n"
                                   ".loop trips=1 miss=0 code=0x0 "
                                   "hot=0x0+64 cold=0x0\n{ c0.0 fma }\n"
                                   ".endloop\n",
                                   kM),
               CheckError);
  // Unknown directive.
  EXPECT_THROW((void)parse_program(".bogus\n", kM), CheckError);
}

TEST(VexAsm, RejectsSemanticallyInvalidLoops) {
  // Loop whose last instruction has no branch.
  const char* no_branch =
      ".machine clusters=4 issue=4\n"
      ".loop trips=1 miss=0 code=0x0 hot=0x0+64 cold=0x0\n"
      "{ c0.0 alu }\n"
      ".endloop\n";
  EXPECT_THROW((void)parse_program(no_branch, kM), CheckError);
  // Operation on a slot that cannot execute it.
  const char* bad_slot =
      ".machine clusters=4 issue=4\n"
      ".loop trips=1 miss=0 code=0x0 hot=0x0+64 cold=0x0\n"
      "{ c0.0 ld ; c0.3 br }\n"
      ".endloop\n";
  EXPECT_THROW((void)parse_program(bad_slot, kM), CheckError);
}

TEST(VexAsm, CommentsAndBlankLinesIgnored) {
  const std::string text = std::string("# leading comment\n\n") +
                           kMiniProgram + "\n# trailing\n";
  EXPECT_NO_THROW((void)parse_program(text, kM));
}

}  // namespace
}  // namespace cvmt
