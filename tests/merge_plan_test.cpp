// MergePlan: flattened layout, permutation tables, canonical stat labels,
// and — most importantly — cycle-exact equivalence between the compiled
// plan evaluator and the reference recursive tree walk for every paper
// scheme, priority policy and merge-block kind.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <vector>

#include "core/merge_engine.hpp"
#include "support/rng.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

using Candidates = std::vector<const Footprint*>;

MergeDecision select(MergeEngine& e, const Candidates& c) {
  return e.select(std::span<const Footprint* const>(c.data(), c.size()));
}

/// Random candidate set: small random instructions, ~20% stalled threads.
struct StreamGen {
  explicit StreamGen(std::uint64_t seed) : rng(seed) {}

  Candidates draw(std::array<Footprint, kMaxThreads>& storage, int n) {
    Candidates cands(static_cast<std::size_t>(n), nullptr);
    for (int t = 0; t < n; ++t) {
      if (rng.next_bool(0.2)) continue;  // stalled
      Instruction instr;
      std::uint32_t used[kMaxClusters] = {};
      const int k = 1 + static_cast<int>(rng.next_below(4));
      for (int j = 0; j < k; ++j) {
        const int c = static_cast<int>(rng.next_below(4));
        const std::uint32_t free = ~used[c] & 0xFu;
        if (free == 0) continue;
        const int s = std::countr_zero(free);
        used[c] |= 1u << s;
        instr.add(make_alu(c, s));
      }
      storage[static_cast<std::size_t>(t)] = Footprint::of(instr, kM);
      cands[static_cast<std::size_t>(t)] =
          &storage[static_cast<std::size_t>(t)];
    }
    return cands;
  }

  Xoshiro256 rng;
};

// --------------------------------------------------------------- structure

TEST(MergePlan, FlattensPreorderWithSubtreeExtents) {
  const Scheme scheme = Scheme::parse("3SCC");  // C(C(S(0,1),2),3)
  const MergePlan plan(scheme, kM);
  // Preorder: C, C, S, 0, 1, 2, 3 -> 7 nodes, 3 blocks, 4 leaves.
  ASSERT_EQ(plan.nodes().size(), 7u);
  EXPECT_EQ(plan.num_blocks(), 3);
  EXPECT_EQ(plan.num_threads(), 4);
  EXPECT_FALSE(plan.nodes()[0].leaf);
  EXPECT_EQ(plan.nodes()[0].end, 7u);  // root spans everything
  EXPECT_FALSE(plan.nodes()[2].leaf);  // the S block
  EXPECT_EQ(plan.nodes()[2].end, 5u);  // S spans leaves 0 and 1
  EXPECT_TRUE(plan.nodes()[3].leaf);
  EXPECT_EQ(plan.depth(), 4);  // C -> C -> S -> leaf
}

TEST(MergePlan, CascadesCompileToLinearChains) {
  for (const char* name : {"3CCC", "3SCC", "2SC3", "C4", "1S", "IMT4"})
    EXPECT_TRUE(MergePlan(Scheme::parse(name), kM).is_linear()) << name;
  // Balanced trees keep the general stack pass.
  for (const char* name : {"2CC", "2CS", "2SC", "2SS"})
    EXPECT_FALSE(MergePlan(Scheme::parse(name), kM).is_linear()) << name;
}

TEST(MergePlan, PermutationTablesMatchModulo) {
  const Scheme scheme = Scheme::parse("2CS");  // S(C(0,1),C(2,3))
  const MergePlan plan(scheme, kM);
  const int n = scheme.num_threads();
  // Leaves appear in preorder, so leaf i has port i for paper schemes.
  for (int r = 0; r < n; ++r)
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(plan.leaf_thread(r, i), (i + r) % n) << r << "," << i;
}

TEST(MergePlan, StatsTemplateUsesCanonicalSubSchemeLabels) {
  MergeEngine e(Scheme::parse("3SCC"), kM);
  const auto& stats = e.node_stats();
  ASSERT_EQ(stats.size(), 3u);
  // Preorder over merge blocks, each labelled with its canonical
  // sub-scheme (the form documented on MergeNodeStats::label).
  EXPECT_EQ(stats[0].label, "C(C(S(0,1),2),3)");
  EXPECT_EQ(stats[0].kind, MergeKind::kCsmt);
  EXPECT_EQ(stats[1].label, "C(S(0,1),2)");
  EXPECT_EQ(stats[2].label, "S(0,1)");
  EXPECT_EQ(stats[2].kind, MergeKind::kSmt);

  MergeEngine c4(Scheme::parse("C4"), kM);
  ASSERT_EQ(c4.node_stats().size(), 1u);
  EXPECT_EQ(c4.node_stats()[0].label, "CP(0,1,2,3)");
}

// ------------------------------------------------------- plan==tree law

struct EquivCase {
  const char* scheme;
  PriorityPolicy policy;
};

class PlanTreeEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

/// Every paper scheme plus functional schemes exercising kSelect blocks
/// both standalone and composed under/over kSmt and kCsmt nodes.
const char* kEquivSchemes[] = {
    "1S",   "1C",   "C4",   "3CCC", "2CC",  "2SC3", "3CSC",
    "2C3S", "3CCS", "3SCC", "2CS",  "2SC",  "3SSC", "3SCS",
    "3CSS", "2SS",  "3SSS", "IMT4", "I(S(0,1),C(2,3))",
    "C(I(0,1),I(2,3))", "S(I(0,1),2,3)"};

TEST_P(PlanTreeEquivalenceTest, DecisionsAndStatsMatchEverywhere) {
  for (const PriorityPolicy policy :
       {PriorityPolicy::kRoundRobin, PriorityPolicy::kFixed,
        PriorityPolicy::kStickyOnStall}) {
    const Scheme scheme = Scheme::parse(GetParam());
    MergeEngine tree(scheme, kM, policy, StatsLevel::kFull,
                     EvalMode::kTreeReference);
    MergeEngine plan(scheme, kM, policy, StatsLevel::kFull,
                     EvalMode::kPlan);
    StreamGen gen(0xBEEF ^ std::hash<std::string>{}(GetParam()) ^
                  static_cast<std::uint64_t>(policy));
    const int n = scheme.num_threads();
    for (int cycle = 0; cycle < 1500; ++cycle) {
      std::array<Footprint, kMaxThreads> storage;
      const Candidates cands = gen.draw(storage, n);
      const MergeDecision dt = select(tree, cands);
      const MergeDecision dp = select(plan, cands);
      ASSERT_EQ(dt.issued_mask, dp.issued_mask)
          << GetParam() << " diverged at cycle " << cycle;
      ASSERT_EQ(dt.num_issued, dp.num_issued);
      ASSERT_TRUE(dt.packet == dp.packet) << "packet mismatch at cycle "
                                          << cycle;
    }
    // Statistics must agree exactly, not just decisions.
    ASSERT_EQ(tree.node_stats().size(), plan.node_stats().size());
    for (std::size_t i = 0; i < tree.node_stats().size(); ++i) {
      EXPECT_EQ(tree.node_stats()[i].label, plan.node_stats()[i].label);
      EXPECT_EQ(tree.node_stats()[i].attempts,
                plan.node_stats()[i].attempts)
          << GetParam() << " node " << i;
      EXPECT_EQ(tree.node_stats()[i].rejects, plan.node_stats()[i].rejects)
          << GetParam() << " node " << i;
    }
    for (std::size_t k = 0; k < tree.issued_histogram().num_buckets(); ++k)
      EXPECT_EQ(tree.issued_histogram().bucket(k),
                plan.issued_histogram().bucket(k));
    EXPECT_EQ(tree.cycles(), plan.cycles());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PlanTreeEquivalenceTest,
                         ::testing::ValuesIn(kEquivSchemes));

// ------------------------------------------ shape-specialized evaluator

TEST(MergePlanShape, ClassifiesChainsAndBindsFixedPaths) {
  // Single-kind chains (serial cascades, pure SMT/CSMT blocks): the
  // fixed-thread-count fast path.
  for (const char* name : {"1S", "1C", "3CCC", "3SSS", "C4"}) {
    const MergePlan plan(Scheme::parse(name), kM);
    EXPECT_EQ(plan.shape(), PlanShape::kUniformChain) << name;
    EXPECT_TRUE(plan.has_fixed_path()) << name;
  }
  // Linear but mixed-kind or select-containing chains: the fixed-trip-
  // count fold with per-level kinds from the chain table.
  for (const char* name : {"3SCC", "2SC3", "3CSC", "IMT4"}) {
    const MergePlan plan(Scheme::parse(name), kM);
    EXPECT_EQ(plan.shape(), PlanShape::kLinearChain) << name;
    EXPECT_TRUE(plan.has_fixed_path()) << name;
  }
  // Balanced trees keep the general stack pass.
  for (const char* name : {"2CC", "2SS", "2CS", "2SC"}) {
    const MergePlan plan(Scheme::parse(name), kM);
    EXPECT_EQ(plan.shape(), PlanShape::kTree) << name;
    EXPECT_FALSE(plan.has_fixed_path()) << name;
  }
}

// The specialization law: kPlanSpecialized decisions AND statistics are
// bit-identical to kPlan for every scheme shape (fast path on uniform
// chains, transparent fallback elsewhere), every priority policy, both
// stats levels.
TEST(MergePlanShape, SpecializedEvaluatorMatchesPlanEverywhere) {
  for (const char* name : kEquivSchemes) {
    for (const PriorityPolicy policy :
         {PriorityPolicy::kRoundRobin, PriorityPolicy::kFixed,
          PriorityPolicy::kStickyOnStall}) {
      for (const StatsLevel stats :
           {StatsLevel::kFull, StatsLevel::kFast}) {
        const Scheme scheme = Scheme::parse(name);
        MergeEngine plain(scheme, kM, policy, stats, EvalMode::kPlan);
        MergeEngine spec(scheme, kM, policy, stats,
                         EvalMode::kPlanSpecialized);
        StreamGen gen(0x5BEC ^ std::hash<std::string>{}(name) ^
                      (static_cast<std::uint64_t>(policy) << 8) ^
                      static_cast<std::uint64_t>(stats));
        const int n = scheme.num_threads();
        for (int cycle = 0; cycle < 800; ++cycle) {
          std::array<Footprint, kMaxThreads> storage;
          const Candidates cands = gen.draw(storage, n);
          const MergeDecision dp = select(plain, cands);
          const MergeDecision ds = select(spec, cands);
          ASSERT_EQ(dp.issued_mask, ds.issued_mask)
              << name << " diverged at cycle " << cycle;
          ASSERT_EQ(dp.num_issued, ds.num_issued);
          ASSERT_TRUE(dp.packet == ds.packet)
              << name << " packet mismatch at cycle " << cycle;
        }
        ASSERT_EQ(plain.node_stats().size(), spec.node_stats().size());
        for (std::size_t i = 0; i < plain.node_stats().size(); ++i) {
          EXPECT_EQ(plain.node_stats()[i].attempts,
                    spec.node_stats()[i].attempts)
              << name << " node " << i;
          EXPECT_EQ(plain.node_stats()[i].rejects,
                    spec.node_stats()[i].rejects)
              << name << " node " << i;
        }
        for (std::size_t k = 0;
             k < plain.issued_histogram().num_buckets(); ++k)
          EXPECT_EQ(plain.issued_histogram().bucket(k),
                    spec.issued_histogram().bucket(k));
      }
    }
  }
}

// ------------------------------------------------------------ stats levels

TEST(MergePlanStats, FastLevelKeepsDecisionsDropsCounters) {
  const Scheme scheme = Scheme::parse("2SC3");
  MergeEngine full(scheme, kM, PriorityPolicy::kRoundRobin,
                   StatsLevel::kFull);
  MergeEngine fast(scheme, kM, PriorityPolicy::kRoundRobin,
                   StatsLevel::kFast);
  StreamGen gen(0xFA57);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    std::array<Footprint, kMaxThreads> storage;
    const Candidates cands = gen.draw(storage, 4);
    const MergeDecision df = select(full, cands);
    const MergeDecision dq = select(fast, cands);
    ASSERT_EQ(df.issued_mask, dq.issued_mask) << "cycle " << cycle;
  }
  // Full mode accumulated counters; fast mode kept labels but no counts.
  std::uint64_t full_attempts = 0;
  for (const auto& s : full.node_stats()) full_attempts += s.attempts;
  EXPECT_GT(full_attempts, 0u);
  ASSERT_EQ(fast.node_stats().size(), full.node_stats().size());
  for (const auto& s : fast.node_stats()) {
    EXPECT_FALSE(s.label.empty());
    EXPECT_EQ(s.attempts, 0u);
    EXPECT_EQ(s.rejects, 0u);
  }
  EXPECT_GT(full.issued_histogram().total(), 0u);
  EXPECT_EQ(fast.issued_histogram().total(), 0u);
  EXPECT_EQ(fast.cycles(), full.cycles());  // cycle count is always kept
}

TEST(MergePlanStats, SelectMaskGatheredMatchesSelect) {
  const Scheme scheme = Scheme::parse("3SCC");
  MergeEngine a(scheme, kM, PriorityPolicy::kRoundRobin);
  MergeEngine b(scheme, kM, PriorityPolicy::kRoundRobin);
  StreamGen gen(0x9A7);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    std::array<Footprint, kMaxThreads> storage;
    const Candidates cands = gen.draw(storage, 4);
    int num_offers = 0;
    int only = -1;
    for (int t = 0; t < 4; ++t) {
      if (cands[static_cast<std::size_t>(t)] != nullptr) {
        ++num_offers;
        only = t;
      }
    }
    const MergeDecision da = select(a, cands);
    const std::uint32_t mb = b.select_mask_gathered(
        std::span<const Footprint* const>(cands.data(), cands.size()),
        num_offers, only);
    ASSERT_EQ(da.issued_mask, mb) << "cycle " << cycle;
  }
  for (std::size_t i = 0; i < a.node_stats().size(); ++i) {
    EXPECT_EQ(a.node_stats()[i].attempts, b.node_stats()[i].attempts);
    EXPECT_EQ(a.node_stats()[i].rejects, b.node_stats()[i].rejects);
  }
  for (std::size_t k = 0; k < a.issued_histogram().num_buckets(); ++k)
    EXPECT_EQ(a.issued_histogram().bucket(k),
              b.issued_histogram().bucket(k));
}

// ---------------------------------------------------------- reset_rotation

TEST(MergeEngineReset, ResetRotationReplaysBitIdentically) {
  // reset_rotation() rewinds the rotation *index* only — the plan's
  // permutation tables are immutable — so replaying an identical stream
  // from a reset engine must reproduce every decision exactly.
  for (const PriorityPolicy policy :
       {PriorityPolicy::kRoundRobin, PriorityPolicy::kStickyOnStall}) {
    MergeEngine e(Scheme::parse("2SC3"), kM, policy);
    std::vector<std::uint32_t> first;
    for (int pass = 0; pass < 2; ++pass) {
      StreamGen gen(0x5EED);  // identical stream each pass
      for (int cycle = 0; cycle < 500; ++cycle) {
        std::array<Footprint, kMaxThreads> storage;
        const Candidates cands = gen.draw(storage, 4);
        const MergeDecision d = select(e, cands);
        if (pass == 0) {
          first.push_back(d.issued_mask);
        } else {
          ASSERT_EQ(d.issued_mask, first[static_cast<std::size_t>(cycle)])
              << "policy " << static_cast<int>(policy) << " cycle "
              << cycle;
        }
      }
      e.reset_rotation();
    }
    // Statistics are cumulative across the reset (documented behaviour).
    EXPECT_EQ(e.cycles(), 1000u);
  }
}

}  // namespace
}  // namespace cvmt
