// Equivalence proofs for the gate-level merge-control model: the serial
// cascade and the parallel all-subset selector compute the same grants
// (the paper's "functionally equivalent" claim), and both agree with the
// behavioural MergeEngine.
#include <gtest/gtest.h>

#include <array>

#include "core/merge_engine.hpp"
#include "core/merge_logic.hpp"
#include "support/rng.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

TEST(GateSim, SerialStageTruthTable) {
  using gatesim::csmt_serial_stage_eval;
  // No conflict, valid: select and accumulate.
  auto out = csmt_serial_stage_eval(0b0001, 0b0010, true);
  EXPECT_TRUE(out.select);
  EXPECT_EQ(out.acc_mask, 0b0011u);
  // Conflict: no select, accumulator unchanged.
  out = csmt_serial_stage_eval(0b0011, 0b0010, true);
  EXPECT_FALSE(out.select);
  EXPECT_EQ(out.acc_mask, 0b0011u);
  // Invalid input: never selected, even when disjoint.
  out = csmt_serial_stage_eval(0b0001, 0b0100, false);
  EXPECT_FALSE(out.select);
  EXPECT_EQ(out.acc_mask, 0b0001u);
  // Empty candidate mask (bubble): selected, accumulator unchanged.
  out = csmt_serial_stage_eval(0b1111, 0b0000, true);
  EXPECT_TRUE(out.select);
  EXPECT_EQ(out.acc_mask, 0b1111u);
}

TEST(GateSim, SerialSelectGreedyByPriority) {
  const std::uint32_t masks[] = {0b0001, 0b0001, 0b0010, 0b0001};
  const bool valid[] = {true, true, true, true};
  // t0 wins cluster 0; t1 conflicts; t2 disjoint; t3 conflicts.
  EXPECT_EQ(gatesim::csmt_serial_select(masks, valid), 0b0101u);
}

TEST(GateSim, SerialSelectSkipsInvalid) {
  const std::uint32_t masks[] = {0b0001, 0b0001, 0b0010};
  const bool valid[] = {false, true, true};
  EXPECT_EQ(gatesim::csmt_serial_select(masks, valid), 0b0110u);
}

TEST(GateSim, ParallelSelectPicksHighestPrioritySubset) {
  const std::uint32_t masks[] = {0b0011, 0b0100, 0b0100};
  const bool valid[] = {true, true, true};
  // Feasible subsets: {0},{1},{2},{0,1},{0,2}; lex-max = {0,1}.
  EXPECT_EQ(gatesim::csmt_parallel_select(masks, valid), 0b011u);
}

TEST(GateSim, SmtStageFeasibilityMatchesFootprintPredicate) {
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    Instruction ia, ib;
    std::uint32_t used_a[kMaxClusters] = {}, used_b[kMaxClusters] = {};
    for (int j = 0; j < 6; ++j) {
      const int c = static_cast<int>(rng.next_below(4));
      auto place = [&](Instruction& instr, std::uint32_t* used) {
        const std::uint32_t free = 0xFu & ~used[c];
        if (free == 0) return;
        const int s = std::countr_zero(free);
        used[c] |= 1u << s;
        instr.add(make_alu(c, s));
      };
      if (rng.next_bool(0.5)) place(ia, used_a);
      if (rng.next_bool(0.5)) place(ib, used_b);
    }
    const Footprint fa = Footprint::of(ia, kM), fb = Footprint::of(ib, kM);
    const auto sa = gatesim::SmtPacketState::of(fa, kM);
    const auto sb = gatesim::SmtPacketState::of(fb, kM);
    ASSERT_EQ(gatesim::smt_stage_feasible(sa, sb, kM),
              Footprint::smt_compatible(fa, fb, kM));
  }
}

TEST(GateSim, SmtMergeAccumulates) {
  gatesim::SmtPacketState a{}, b{};
  a.fixed[1] = 0b0100;
  a.count[1] = 2;
  b.fixed[1] = 0b1000;
  b.count[1] = 1;
  gatesim::smt_stage_merge(a, b);
  EXPECT_EQ(a.fixed[1], 0b1100u);
  EXPECT_EQ(a.count[1], 3u);
}

// ------------------------------- Serial == Parallel == MergeEngine laws

class GateSimEquivalence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  struct Cycle {
    std::array<std::uint32_t, 4> masks;
    std::array<bool, 4> valid;
    std::array<Footprint, 4> fps;
  };

  Cycle random_cycle(Xoshiro256& rng) {
    Cycle cy{};
    for (int t = 0; t < 4; ++t) {
      cy.valid[static_cast<std::size_t>(t)] = !rng.next_bool(0.25);
      Instruction instr;
      const int k = static_cast<int>(rng.next_below(4));
      std::uint32_t used = 0;
      for (int j = 0; j < k; ++j) {
        const int c = static_cast<int>(rng.next_below(4));
        if (used & (1u << c)) continue;
        used |= 1u << c;
        instr.add(make_alu(c, 0));
      }
      cy.fps[static_cast<std::size_t>(t)] = Footprint::of(instr, kM);
      cy.masks[static_cast<std::size_t>(t)] =
          cy.fps[static_cast<std::size_t>(t)].cluster_mask();
    }
    return cy;
  }
};

TEST_P(GateSimEquivalence, ParallelEqualsSerial) {
  // The paper's §3: the parallel implementation is functionally
  // equivalent to the serial cascade. Holds because cluster-disjointness
  // is subset-closed, so greedy = lexicographically greatest feasible.
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 3000; ++trial) {
    const Cycle cy = random_cycle(rng);
    ASSERT_EQ(gatesim::csmt_serial_select(cy.masks, cy.valid),
              gatesim::csmt_parallel_select(cy.masks, cy.valid));
  }
}

TEST_P(GateSimEquivalence, GateModelMatchesBehaviouralEngine) {
  Xoshiro256 rng(GetParam() ^ 0xBEEF);
  MergeEngine engine(Scheme::parallel_csmt(4), kM, PriorityPolicy::kFixed);
  for (int trial = 0; trial < 3000; ++trial) {
    const Cycle cy = random_cycle(rng);
    std::array<const Footprint*, 4> cands{};
    for (int t = 0; t < 4; ++t)
      cands[static_cast<std::size_t>(t)] =
          cy.valid[static_cast<std::size_t>(t)]
              ? &cy.fps[static_cast<std::size_t>(t)]
              : nullptr;
    const MergeDecision d = engine.select(
        std::span<const Footprint* const>(cands.data(), cands.size()));
    ASSERT_EQ(d.issued_mask,
              gatesim::csmt_serial_select(cy.masks, cy.valid));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateSimEquivalence,
                         ::testing::Values(3, 7, 31, 127));

}  // namespace
}  // namespace cvmt
