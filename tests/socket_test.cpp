// The TCP wrapper's delivery contracts: send_all loops over short writes
// until the whole buffer is on the wire, and a peer that hangs up
// mid-send surfaces as a false return (EPIPE via MSG_NOSIGNAL), never as
// a SIGPIPE that kills the process.
#include <gtest/gtest.h>

#include <array>
#include <future>
#include <string>
#include <thread>

#include "support/check.hpp"
#include "support/socket.hpp"

namespace cvmt {
namespace {

struct Pair {
  TcpListener listener;
  TcpStream client;
  TcpStream server;
};

/// One connected loopback pair.
Pair make_pair() {
  Pair p;
  p.listener = TcpListener::bind_local(0);
  auto accepted = std::async(std::launch::async,
                             [&p] { return p.listener.accept_one(); });
  p.client = connect_local(p.listener.port());
  p.server = accepted.get();
  EXPECT_TRUE(p.client.valid());
  EXPECT_TRUE(p.server.valid());
  return p;
}

// A payload far beyond any socket buffer forces send(2) into repeated
// short writes; send_all must deliver every byte anyway, in order.
TEST(Socket, SendAllDeliversALargePayloadAcrossShortWrites) {
  Pair p = make_pair();
  std::string payload(8u << 20, '\0');  // 8 MiB
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>('a' + i % 23);

  auto received = std::async(std::launch::async, [&p, &payload] {
    std::string got;
    got.reserve(payload.size());
    std::array<char, 65536> chunk;
    while (got.size() < payload.size()) {
      const long n = p.server.recv_some(chunk.data(), chunk.size());
      if (n <= 0) break;
      got.append(chunk.data(), static_cast<std::size_t>(n));
    }
    return got;
  });
  EXPECT_TRUE(p.client.send_all(payload));
  EXPECT_EQ(received.get(), payload);  // byte-exact, not just same length
}

// The EPIPE path: once the peer is gone, send_all must return false on
// the worker holding the connection — and the process must survive (no
// SIGPIPE). This is what keeps `cvmt serve` alive when a client vanishes
// mid-response.
TEST(Socket, SendAllReturnsFalseWhenThePeerIsGone) {
  Pair p = make_pair();
  p.server.close();  // the peer hangs up
  // The first send may land in the kernel buffer and elicit an RST; keep
  // writing until the error surfaces. A bounded loop: each send is 1 MiB,
  // so a handful of iterations is enough for any kernel.
  const std::string chunk(1u << 20, 'x');
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i)
    failed = !p.client.send_all(chunk);
  EXPECT_TRUE(failed);
  // Still alive, and the stream stays safely unusable, not UB.
  EXPECT_FALSE(p.client.send_all("more"));
}

TEST(Socket, SendAllOnAnInvalidStreamFailsCleanly) {
  TcpStream invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_FALSE(invalid.send_all("data"));
  EXPECT_TRUE(invalid.send_all(""));  // nothing to send, nothing to fail
}

TEST(Socket, RecvReportsOrderlyShutdownAsZero) {
  Pair p = make_pair();
  ASSERT_TRUE(p.client.send_all("bye"));
  p.client.close();
  std::array<char, 16> buf;
  long n = p.server.recv_some(buf.data(), buf.size());
  EXPECT_EQ(n, 3);
  n = p.server.recv_some(buf.data(), buf.size());
  EXPECT_EQ(n, 0);  // orderly EOF, not an error
}

}  // namespace
}  // namespace cvmt
