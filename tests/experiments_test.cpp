// Smoke + relation tests of the experiment harness: every figure/table
// runner produces data with the paper's qualitative shape at reduced run
// lengths. (bench/ binaries print the full-size versions.)
#include <gtest/gtest.h>

#include <sstream>

#include "exp/report.hpp"

namespace cvmt {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.sim.instruction_budget = 25'000;
  cfg.sim.timeslice_cycles = 5'000;
  return cfg;
}

TEST(Experiments, Table1RowsCoverAllBenchmarks) {
  const auto rows = run_table1(tiny());
  ASSERT_EQ(rows.size(), 12u);
  for (const auto& r : rows) {
    EXPECT_GT(r.sim_ipc_real, 0.0) << r.name;
    EXPECT_GE(r.sim_ipc_perfect, r.sim_ipc_real * 0.95) << r.name;
  }
  EXPECT_EQ(rows[0].name, "mcf");
  EXPECT_EQ(rows[0].ilp, 'L');
}

TEST(Experiments, Fig4ScalesWithThreads) {
  const auto rows = run_fig4(tiny());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].processor, "Single-thread");
  EXPECT_LT(rows[0].avg_ipc, rows[1].avg_ipc);
  EXPECT_LT(rows[1].avg_ipc, rows[2].avg_ipc);
  // Paper Fig 4: the 4-thread SMT processor gains ~61% over 2-thread.
  EXPECT_GT(rows[2].avg_ipc / rows[1].avg_ipc, 1.25);
}

TEST(Experiments, Fig5SweepHasPaperShape) {
  const auto rows = run_fig5();
  ASSERT_EQ(rows.size(), 7u);  // threads 2..8
  EXPECT_EQ(rows.front().threads, 2);
  EXPECT_EQ(rows.back().threads, 8);
  for (const auto& r : rows) {
    EXPECT_GT(r.smt.transistors, r.csmt_serial.transistors);
    EXPECT_GT(r.smt.delay, r.csmt_serial.delay);
  }
  // Parallel CSMT: flat-ish delay, exploding area.
  EXPECT_LT(rows.back().csmt_parallel.delay,
            rows.back().csmt_serial.delay);
  EXPECT_GT(rows.back().csmt_parallel.transistors,
            rows.back().csmt_serial.transistors * 10);
}

TEST(Experiments, Fig6SmtAlwaysAheadAndLlhhIsLarge) {
  const auto rows = run_fig6(tiny());
  ASSERT_EQ(rows.size(), 9u);
  double sum = 0.0, llll = 0.0, llhh = 0.0;
  for (const auto& r : rows) {
    EXPECT_GE(r.advantage_pct, -2.0) << r.workload;  // SMT >= CSMT
    sum += r.advantage_pct;
    if (r.workload == "LLLL") llll = r.advantage_pct;
    if (r.workload == "LLHH") llhh = r.advantage_pct;
  }
  const double avg = sum / 9.0;
  EXPECT_GT(avg, 5.0);       // paper: 27% average
  EXPECT_GT(llhh, llll);     // paper: LLHH shows the largest gap (58%)
}

TEST(Experiments, Fig9CoversAllSchemes) {
  const auto rows = run_fig9();
  ASSERT_EQ(rows.size(), 16u);
  EXPECT_EQ(rows.front().scheme, "C4");
  EXPECT_EQ(rows.back().scheme, "3SSS");
  for (const auto& r : rows) {
    EXPECT_GT(r.transistors, 0) << r.scheme;
    EXPECT_GT(r.gate_delay, 0.0) << r.scheme;
  }
}

TEST(Experiments, Fig10OrderingMatchesPaper) {
  const Fig10Result f = run_fig10(tiny());
  ASSERT_EQ(f.schemes.size(), 16u);
  ASSERT_EQ(f.workloads.size(), 9u);

  // Identical-selection schemes are cycle-exact equal.
  EXPECT_DOUBLE_EQ(f.average_of("C4"), f.average_of("3CCC"));
  EXPECT_DOUBLE_EQ(f.average_of("2SC3"), f.average_of("3SCC"));

  // Endpoints: 1S minimum, 3SSS maximum (paper §5.2).
  for (const auto& s : f.schemes) {
    if (s != "1S") {
      EXPECT_GE(f.average_of(s), f.average_of("1S") * 0.98) << s;
    }
    EXPECT_LE(f.average_of(s), f.average_of("3SSS") * 1.02) << s;
  }

  // Mixed schemes sit between 4-thread CSMT and 4-thread SMT.
  EXPECT_GT(f.average_of("2SC3"), f.average_of("3CCC"));
  EXPECT_LT(f.average_of("2SC3"), f.average_of("3SSS"));
  // Two-SMT-level schemes approach 3SSS.
  EXPECT_GT(f.average_of("3SSC"), f.average_of("2SC3") * 0.99);
  // 2SC is the weakest SMT-bearing 4-thread scheme: CSMT-merging two
  // SMT-merged group packets restricts merging (§5.2). The paper even
  // places it below 3CCC; our synthetic footprints keep the S-groups a
  // little stronger — documented as a deviation in EXPERIMENTS.md.
  for (const char* s : {"2SC3", "2CS", "3SSC", "2SS", "3SSS"})
    EXPECT_LT(f.average_of("2SC"), f.average_of(s)) << s;
}

TEST(Experiments, HeadlineRelationsHaveTheRightSign) {
  const Fig10Result f = run_fig10(tiny());
  const HeadlineRelations h = headline_relations(f);
  EXPECT_GT(h.sc3_vs_csmt_pct, 0.0);   // paper: +14%
  EXPECT_GT(h.sc3_vs_1s_pct, 10.0);    // paper: +45%
  EXPECT_LT(h.sc3_vs_smt4_pct, 0.0);   // paper: -11%
  EXPECT_GT(h.smt4_vs_1s_pct, 20.0);   // paper: +61%
}

TEST(Experiments, ParetoPointsCombineCostAndPerformance) {
  const Fig10Result f = run_fig10(tiny());
  const auto points = pareto_points(f, MachineConfig::vex4x4());
  ASSERT_EQ(points.size(), 16u);
  const auto find = [&](const char* name) {
    for (const auto& p : points)
      if (p.scheme == name) return p;
    ADD_FAILURE() << "missing " << name;
    return points.front();
  };
  // 2SC3: cost like 1S, performance well above (the paper's conclusion).
  const auto sc3 = find("2SC3");
  const auto s1 = find("1S");
  EXPECT_LT(sc3.transistors, s1.transistors + s1.transistors / 2);
  EXPECT_GT(sc3.avg_ipc, s1.avg_ipc * 1.1);
}

TEST(Experiments, RendersAllTables) {
  // Rendering smoke test: every table materialises with plausible shape.
  std::ostringstream os;
  render_table2().to_table().print(os);
  render_fig5(run_fig5()).write_csv(os);
  emit(os, render_fig9(run_fig9()));
  EXPECT_FALSE(os.str().empty());
  EXPECT_NE(os.str().find("LLLL"), std::string::npos);
}

TEST(Experiments, EnvironmentOverridesApply) {
  ::setenv("CVMT_BUDGET", "1234", 1);
  ::setenv("CVMT_TIMESLICE", "567", 1);
  const ExperimentConfig cfg = ExperimentConfig::from_env();
  EXPECT_EQ(cfg.sim.instruction_budget, 1234u);
  EXPECT_EQ(cfg.sim.timeslice_cycles, 567u);
  ::unsetenv("CVMT_BUDGET");
  ::unsetenv("CVMT_TIMESLICE");
}

}  // namespace
}  // namespace cvmt
