// The session layer: compiled artifacts, the shared ArtifactCache, the
// reusable SimInstance and the per-worker SimSession. The load-bearing
// property throughout is strict bit-identity between every reuse path and
// the one-shot run_simulation facade (compare_sim_results checks every
// SimResult counter).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/session.hpp"
#include "support/check.hpp"
#include "testgen/oracle.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.instruction_budget = 2'000;
  cfg.timeslice_cycles = 500;
  return cfg;
}

std::vector<std::string> lmhh_names() {
  return {"mcf", "g721encode", "imgpipe", "colorspace"};
}

// --- CompiledScheme -------------------------------------------------------

TEST(CompiledScheme, CarriesSchemePlanAndKey) {
  const CompiledScheme c(Scheme::parse("2SC3"), kM);
  EXPECT_EQ(c.scheme().name(), "2SC3");
  EXPECT_EQ(c.machine(), kM);
  ASSERT_NE(c.plan(), nullptr);
  EXPECT_EQ(c.plan()->num_threads(), 4);
  EXPECT_EQ(c.key(), CompiledScheme::make_key(Scheme::parse("2SC3"), kM));
}

TEST(CompiledScheme, KeySeparatesSchemesNamesAndMachines) {
  const Scheme sc3 = Scheme::parse("2SC3");
  EXPECT_EQ(CompiledScheme::make_key(sc3, kM),
            CompiledScheme::make_key(Scheme::parse("2SC3"), kM));
  EXPECT_NE(CompiledScheme::make_key(sc3, kM),
            CompiledScheme::make_key(Scheme::parse("3CCC"), kM));
  EXPECT_NE(CompiledScheme::make_key(sc3, kM),
            CompiledScheme::make_key(sc3, MachineConfig::vex4x2()));
  // Same tree under a different display name is a different artifact
  // (SimResult::scheme carries the name).
  const Scheme functional = Scheme::parse("CP(S(0,1),2,3)");
  EXPECT_EQ(functional.canonical(), sc3.canonical());
  EXPECT_NE(CompiledScheme::make_key(functional, kM),
            CompiledScheme::make_key(sc3, kM));
}

TEST(CompiledScheme, RejectsInvalidMachine) {
  MachineConfig bad = kM;
  bad.num_clusters = 0;
  EXPECT_THROW((void)CompiledScheme(Scheme::parse("1S"), bad), CheckError);
}

// --- ArtifactCache --------------------------------------------------------

TEST(ArtifactCache, SharesOneArtifactPerKey) {
  ArtifactCache cache;
  const auto a = cache.scheme(Scheme::parse("2SC3"), kM);
  const auto b = cache.scheme(Scheme::parse("2SC3"), kM);
  EXPECT_EQ(a.get(), b.get());  // same object, not just equal
  EXPECT_NE(a.get(), cache.scheme(Scheme::parse("3CCC"), kM).get());

  const auto p = cache.program("mcf", kM);
  EXPECT_EQ(p.get(), cache.program("mcf", kM).get());
  EXPECT_EQ(p.get(), cache.program(profile_by_name("mcf"), kM).get());
  EXPECT_NE(p.get(), cache.program("mcf", MachineConfig::vex4x2()).get());

  const std::vector<std::string> names = lmhh_names();
  const auto w = cache.workload(names, kM);
  EXPECT_EQ(w.get(), cache.workload(names, kM).get());
  ASSERT_EQ(w->programs.size(), 4u);
  // Workload members share the per-program cache entries.
  EXPECT_EQ(w->programs[0].get(), cache.program("mcf", kM).get());
}

TEST(ArtifactCache, ProfileContentIsTheKeyNotTheName) {
  ArtifactCache cache;
  BenchmarkProfile p = profile_by_name("mcf");
  const auto original = cache.program(p, kM);
  p.mem_op_frac = 0.39;  // fuzz-style mutation under the same name
  const auto mutated = cache.program(p, kM);
  EXPECT_NE(original.get(), mutated.get());
}

TEST(ArtifactCache, ClearDropsEntriesButSharedPtrsSurvive) {
  ArtifactCache cache;
  const auto p = cache.program("idct", kM);
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(p->profile().name, "idct");  // still alive
  EXPECT_NE(p.get(), cache.program("idct", kM).get());  // rebuilt
}

TEST(ArtifactCache, ConcurrentMixedRequestsShareBuilds) {
  ArtifactCache cache;
  constexpr int kThreads = 8;
  std::vector<std::future<const SyntheticProgram*>> futs;
  for (int t = 0; t < kThreads; ++t)
    futs.push_back(std::async(std::launch::async, [&cache, t] {
      // Every thread requests the same artifacts plus one scheme of its
      // own; all requests race on a cold cache.
      (void)cache.scheme(Scheme::parse("2SC3"), kM);
      (void)cache.scheme(Scheme::parse(t % 2 ? "3CCC" : "3SSS"), kM);
      (void)cache.workload(std::vector<std::string>{"mcf", "idct"}, kM);
      return cache.program("x264", kM).get();
    }));
  const SyntheticProgram* first = futs[0].get();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(futs[t].get(), first);  // one build, shared by all
}

// --- SimInstance ----------------------------------------------------------

TEST(SimInstance, MatchesRunSimulationExactly) {
  ArtifactCache cache;
  const SimConfig cfg = tiny_config();
  const auto workload = cache.workload(lmhh_names(), kM);
  SimInstance instance(cache.scheme(Scheme::parse("2SC3"), kM), cfg);
  const SimResult reused = instance.run(*workload);
  const SimResult fresh =
      run_simulation(Scheme::parse("2SC3"), workload->programs, cfg);
  EXPECT_EQ(compare_sim_results(fresh, reused, true), "");
}

TEST(SimInstance, RepeatedRunsAreBitIdentical) {
  ArtifactCache cache;
  SimInstance instance(cache.scheme(Scheme::parse("3SSS"), kM),
                       tiny_config());
  const auto workload = cache.workload(lmhh_names(), kM);
  const SimResult a = instance.run(*workload);
  const SimResult b = instance.run(*workload);  // no reset() in between
  EXPECT_EQ(compare_sim_results(a, b, true), "");
  instance.reset();  // explicit reset changes nothing either
  const SimResult c = instance.run(*workload);
  EXPECT_EQ(compare_sim_results(a, c, true), "");
}

TEST(SimInstance, RunsInterleavedConfigsWithoutCrossTalk) {
  // Mixed budgets/policies/stats on one instance: each run must match its
  // own fresh-construction result, regardless of what ran before it.
  ArtifactCache cache;
  const auto workload = cache.workload(lmhh_names(), kM);
  SimConfig a = tiny_config();
  SimConfig b = tiny_config();
  b.instruction_budget = 900;
  b.priority = PriorityPolicy::kStickyOnStall;
  b.stats = StatsLevel::kFast;
  b.os_seed = 0xBEEF;
  SimConfig c = tiny_config();
  c.mem.perfect = true;
  c.eval_mode = EvalMode::kTreeReference;
  c.stall_fast_forward = false;

  SimInstance instance(cache.scheme(Scheme::parse("2CS"), kM), a);
  for (const SimConfig* cfg : {&a, &b, &c, &a, &c, &b}) {
    instance.set_config(*cfg);
    const SimResult reused = instance.run(*workload);
    const SimResult fresh =
        run_simulation(Scheme::parse("2CS"), workload->programs, *cfg);
    EXPECT_EQ(compare_sim_results(fresh, reused, true), "");
  }
}

TEST(SimInstance, MemoryGeometryChangeRebuildsCaches) {
  ArtifactCache cache;
  const auto workload = cache.workload(lmhh_names(), kM);
  SimConfig small = tiny_config();
  small.mem.icache.size_bytes = 8 * 1024;
  small.mem.dcache.size_bytes = 8 * 1024;
  SimConfig priv = tiny_config();
  priv.mem.sharing = CacheSharing::kPrivate;

  SimInstance instance(cache.scheme(Scheme::parse("3CCC"), kM),
                       tiny_config());
  for (const SimConfig* cfg : {&small, &priv, &small}) {
    instance.set_config(*cfg);
    const SimResult reused = instance.run(*workload);
    const SimResult fresh =
        run_simulation(Scheme::parse("3CCC"), workload->programs, *cfg);
    EXPECT_EQ(compare_sim_results(fresh, reused, true), "");
  }
}

TEST(SimInstance, WorkloadSizeMayShrinkAndGrowAcrossRuns) {
  ArtifactCache cache;
  const SimConfig cfg = tiny_config();
  SimInstance instance(cache.scheme(Scheme::parse("1S"), kM), cfg);
  const auto two = cache.workload(std::vector<std::string>{"mcf", "idct"},
                                  kM);
  const auto six = cache.workload(
      std::vector<std::string>{"mcf", "idct", "djpeg", "x264", "bzip2",
                               "cjpeg"},
      kM);
  for (const auto* wl : {&two, &six, &two}) {
    const SimResult reused = instance.run(**wl);
    const SimResult fresh =
        run_simulation(Scheme::parse("1S"), (*wl)->programs, cfg);
    EXPECT_EQ(compare_sim_results(fresh, reused, true), "");
  }
}

TEST(SimInstance, RejectsMismatchedMachineAndEmptyWorkload) {
  ArtifactCache cache;
  SimInstance instance(cache.scheme(Scheme::parse("1S"), kM),
                       tiny_config());
  SimConfig other = tiny_config();
  other.machine = MachineConfig::vex4x2();
  EXPECT_THROW(instance.set_config(other), CheckError);
  EXPECT_THROW((void)instance.run(CompiledWorkload{}), CheckError);
  // Programs built for a different machine are rejected per run.
  const auto foreign =
      cache.workload(lmhh_names(), MachineConfig::vex4x2());
  EXPECT_THROW((void)instance.run(*foreign), CheckError);
}

// --- SimSession -----------------------------------------------------------

TEST(SimSession, GridSweepMatchesFacadePointForPoint) {
  ArtifactCache cache;
  SimSession session(cache);
  const SimConfig cfg = tiny_config();
  const std::vector<std::string> names = lmhh_names();
  for (int pass = 0; pass < 2; ++pass) {  // second pass = all instances warm
    for (const char* scheme : {"1S", "3CCC", "2SC3", "3SSS", "IMT4"}) {
      const SimResult via_session =
          session.run(Scheme::parse(scheme), names, cfg);
      const SimResult fresh = run_simulation(
          Scheme::parse(scheme), cache.workload(names, kM)->programs, cfg);
      EXPECT_EQ(compare_sim_results(fresh, via_session, true), "")
          << scheme << " pass " << pass;
    }
  }
  EXPECT_EQ(session.num_instances(), 5u);  // one per scheme, reused
}

TEST(SimSession, SharedArtifactsAcrossSessions) {
  ArtifactCache cache;
  SimSession worker_a(cache);
  SimSession worker_b(cache);
  const SimConfig cfg = tiny_config();
  const SimResult a =
      worker_a.run(Scheme::parse("2SC"), lmhh_names(), cfg);
  const SimResult b =
      worker_b.run(Scheme::parse("2SC"), lmhh_names(), cfg);
  EXPECT_EQ(compare_sim_results(a, b, true), "");
  // Both sessions drew from one cache; each kept its own instance.
  EXPECT_EQ(worker_a.num_instances(), 1u);
  EXPECT_EQ(worker_b.num_instances(), 1u);
}

TEST(SimSession, ClearDropsInstancesButKeepsCorrectness) {
  SimSession session;  // the process-global artifact cache
  const SimConfig cfg = tiny_config();
  const SimResult a = session.run(Scheme::parse("2SS"), lmhh_names(), cfg);
  session.clear();
  EXPECT_EQ(session.num_instances(), 0u);
  const SimResult b = session.run(Scheme::parse("2SS"), lmhh_names(), cfg);
  EXPECT_EQ(compare_sim_results(a, b, true), "");
}

// --- per-key build locks --------------------------------------------------

TEST(ArtifactCache, CountsHitsAndMisses) {
  ArtifactCache cache;
  (void)cache.scheme(Scheme::parse("2SC3"), kM);
  (void)cache.scheme(Scheme::parse("2SC3"), kM);
  (void)cache.scheme(Scheme::parse("3SCC"), kM);
  (void)cache.program("mcf", kM);
  (void)cache.program("mcf", kM);
  const ArtifactCacheStats s = cache.stats();
  EXPECT_EQ(s.scheme_misses, 2u);
  EXPECT_EQ(s.scheme_hits, 1u);
  EXPECT_EQ(s.program_misses, 1u);
  EXPECT_EQ(s.program_hits, 1u);
  EXPECT_EQ(s.hits(), 2u);
  EXPECT_EQ(s.misses(), 3u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 2.0 / 5.0);
  // clear() drops artifacts, not the lifetime counters.
  cache.clear();
  EXPECT_EQ(cache.stats().misses(), 3u);
}

// The satellite property of this PR: two cold misses on *distinct* keys
// build concurrently instead of serializing on a cache-wide lock. The
// build hook holds each builder until both have entered their build —
// possible only when the builds overlap; a cache-wide build lock would
// deadlock here (and the watchdog would flag it).
TEST(ArtifactCache, DistinctColdKeysBuildConcurrently) {
  ArtifactCache cache;
  std::mutex mu;
  std::condition_variable cv;
  int builders_in_flight = 0;
  cache.set_build_hook([&](std::string_view) {
    std::unique_lock<std::mutex> lock(mu);
    ++builders_in_flight;
    cv.notify_all();
    // Wait (bounded) for the *other* builder to arrive as well.
    cv.wait_for(lock, std::chrono::seconds(10),
                [&] { return builders_in_flight >= 2; });
  });

  auto build_a = std::async(std::launch::async, [&] {
    return cache.scheme(Scheme::parse("2SC3"), kM);
  });
  auto build_b = std::async(std::launch::async, [&] {
    return cache.program("mcf", kM);
  });
  {
    // Observe genuine overlap: both builders inside their build hook at
    // the same moment.
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return builders_in_flight >= 2; }));
  }
  EXPECT_NE(build_a.get(), nullptr);
  EXPECT_NE(build_b.get(), nullptr);
  cache.set_build_hook(nullptr);
  EXPECT_EQ(cache.stats().misses(), 2u);
}

// Concurrent misses on the SAME key run exactly one build; the latecomer
// blocks on the first build's future and shares its artifact.
TEST(ArtifactCache, SameColdKeyBuildsOnce) {
  ArtifactCache cache;
  std::atomic<int> builds{0};
  cache.set_build_hook([&](std::string_view) {
    ++builds;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  auto a = std::async(std::launch::async, [&] {
    return cache.scheme(Scheme::parse("2SC3"), kM);
  });
  auto b = std::async(std::launch::async, [&] {
    return cache.scheme(Scheme::parse("2SC3"), kM);
  });
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(builds.load(), 1);
  const ArtifactCacheStats s = cache.stats();
  EXPECT_EQ(s.scheme_misses + s.scheme_hits, 2u);
  EXPECT_EQ(s.scheme_misses, 1u);
}

// A build that throws must propagate to every waiter and evict the
// entry so the next request retries (a cached failure would wedge the
// key forever).
TEST(ArtifactCache, FailedBuildEvictsAndRetries) {
  ArtifactCache cache;
  bool fail_next = true;
  cache.set_build_hook([&](std::string_view) {
    if (fail_next) {
      fail_next = false;
      throw CheckError("injected build failure");
    }
  });
  EXPECT_THROW((void)cache.scheme(Scheme::parse("2SC3"), kM), CheckError);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NE(cache.scheme(Scheme::parse("2SC3"), kM), nullptr);
  cache.set_build_hook(nullptr);
}

}  // namespace
}  // namespace cvmt
