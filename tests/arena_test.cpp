// Unit tests for the bump-pointer arena: alignment, chunk growth, O(1)
// reset with chunk reuse, create<T> lifetime rules and the stats
// accessors the batch engine's footprint reporting relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/arena.hpp"
#include "support/check.hpp"

namespace cvmt {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  std::vector<std::pair<std::byte*, std::size_t>> blocks;
  const std::size_t sizes[] = {1, 3, 8, 24, 64, 7, 128};
  const std::size_t aligns[] = {1, 2, 8, 8, 16, 4, 16};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    auto* p = static_cast<std::byte*>(arena.allocate(sizes[i], aligns[i]));
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned_to(p, aligns[i]));
    std::memset(p, static_cast<int>(i + 1), sizes[i]);  // scribble
    blocks.emplace_back(p, sizes[i]);
  }
  // No block overlaps another (the scribbles survive).
  for (std::size_t i = 0; i < blocks.size(); ++i)
    for (std::size_t b = 0; b < blocks[i].second; ++b)
      EXPECT_EQ(std::to_integer<int>(blocks[i].first[b]),
                static_cast<int>(i + 1));
  EXPECT_GE(arena.bytes_used(), 1u + 3 + 8 + 24 + 64 + 7 + 128);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(Arena, GrowsBeyondTheFirstChunk) {
  Arena arena(/*first_chunk_bytes=*/128);
  EXPECT_EQ(arena.num_chunks(), 1u);
  for (int i = 0; i < 64; ++i) (void)arena.allocate(64, 8);
  EXPECT_GT(arena.num_chunks(), 1u);
  EXPECT_GE(arena.bytes_used(), 64u * 64u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  Arena arena(64);
  auto* p = static_cast<std::byte*>(arena.allocate(10'000, 16));
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(aligned_to(p, 16));
  std::memset(p, 0x5a, 10'000);
  EXPECT_GE(arena.bytes_reserved(), 10'000u);
}

TEST(Arena, ResetIsReusableAndKeepsReservedChunks) {
  Arena arena(128);
  for (int i = 0; i < 100; ++i) (void)arena.allocate(48, 8);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.num_chunks();

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.num_chunks(), chunks);

  // The same allocation sequence reuses the reserved chunks: no growth.
  for (int i = 0; i < 100; ++i) (void)arena.allocate(48, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.num_chunks(), chunks);
}

TEST(Arena, ResetRecyclesAddresses) {
  Arena arena(256);
  void* first = arena.allocate(32, 8);
  arena.reset();
  void* again = arena.allocate(32, 8);
  EXPECT_EQ(first, again);
}

TEST(Arena, CreateConstructsInPlace) {
  Arena arena;
  struct Pod {
    std::uint64_t a;
    std::uint32_t b;
  };
  Pod* pod = arena.create<Pod>(Pod{42, 7});
  EXPECT_EQ(pod->a, 42u);
  EXPECT_EQ(pod->b, 7u);
  EXPECT_TRUE(aligned_to(pod, alignof(Pod)));

  // Non-trivially-destructible payloads are the caller's to destroy.
  auto* s = arena.create<std::string>(1000, 'x');
  EXPECT_EQ(s->size(), 1000u);
  s->~basic_string();
}

TEST(Arena, AllocateArrayIsContiguous) {
  Arena arena(64);
  std::uint64_t* a = arena.allocate_array<std::uint64_t>(100);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(aligned_to(a, alignof(std::uint64_t)));
  for (std::size_t i = 0; i < 100; ++i) a[i] = i * i;
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], i * i);
}

TEST(Arena, OveralignedAllocationIsHonoured) {
  Arena arena(256);
  (void)arena.allocate(1, 1);  // knock the cursor off alignment
  void* p = arena.allocate(64, 64);
  EXPECT_TRUE(aligned_to(p, 64));
}

TEST(Arena, ReleaseDropsToOneChunk) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) (void)arena.allocate(64, 8);
  EXPECT_GT(arena.num_chunks(), 1u);
  arena.release();
  EXPECT_EQ(arena.num_chunks(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Still usable afterwards.
  void* p = arena.allocate(16, 8);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, RejectsNonPowerOfTwoAlignment) {
  Arena arena;
  EXPECT_THROW((void)arena.allocate(8, 3), CheckError);
  EXPECT_THROW((void)arena.allocate(8, 0), CheckError);
}

}  // namespace
}  // namespace cvmt
