// Tests of the merge-compatibility predicates, including the paper's Fig 1
// worked example and randomized structural properties.
#include <gtest/gtest.h>

#include <bit>

#include "isa/footprint.hpp"
#include "support/rng.hpp"

namespace cvmt {
namespace {

const MachineConfig kM8 = MachineConfig::vex4x2();   // Fig 1 machine
const MachineConfig kM16 = MachineConfig::vex4x4();  // evaluation machine

Footprint fp(const Instruction& i, const MachineConfig& m) {
  return Footprint::of(i, m);
}

// ---------------------------------------------------------------- Fig 1
// On the 8-issue machine: slot 0 carries the multiplier, slot 1 the LSU
// and branch unit, ALU ops run anywhere.

TEST(MergeFig1, PairI_NeitherSmtNorCsmt) {
  // Both threads need cluster 0's LSU slot: operation-level conflict in a
  // shared cluster kills both merge kinds.
  Instruction t0, t1;
  t0.add(make_alu(0, 0));
  t0.add(make_load(0, 1, 0x10));
  t0.add(make_alu(1, 0));
  t1.add(make_store(0, 1, 0x20));
  t1.add(make_alu(1, 1));
  ASSERT_EQ(t0.validate(kM8), "");
  ASSERT_EQ(t1.validate(kM8), "");
  EXPECT_FALSE(Footprint::csmt_compatible(fp(t0, kM8), fp(t1, kM8)));
  EXPECT_FALSE(Footprint::smt_compatible(fp(t0, kM8), fp(t1, kM8), kM8));
}

TEST(MergeFig1, PairII_SmtOnly) {
  // Threads share clusters 0, 2 and 3 (CSMT conflict) but their operations
  // interleave without fixed-slot collisions (SMT merges).
  Instruction t0, t1;
  t0.add(make_alu(0, 0));
  t0.add(make_load(2, 1, 0x30));
  t0.add(make_alu(3, 0));
  t1.add(make_store(0, 1, 0x40));
  t1.add(make_mul(2, 0));
  t1.add(make_alu(3, 0));  // reroutable to slot 1
  ASSERT_EQ(t0.validate(kM8), "");
  ASSERT_EQ(t1.validate(kM8), "");
  EXPECT_FALSE(Footprint::csmt_compatible(fp(t0, kM8), fp(t1, kM8)));
  EXPECT_TRUE(Footprint::smt_compatible(fp(t0, kM8), fp(t1, kM8), kM8));

  const Instruction merged = route_merge(t0, t1, kM8);
  EXPECT_EQ(merged.validate(kM8), "");
  EXPECT_EQ(merged.op_count(), t0.op_count() + t1.op_count());
}

TEST(MergeFig1, PairIII_CsmtAndSmt) {
  // First instruction touches only clusters 1 and 2; the other uses 0 and
  // 3: disjoint cluster footprints merge under both schemes.
  Instruction t0, t1;
  t0.add(make_alu(1, 0));   // shl
  t0.add(make_alu(2, 0));   // mov
  t1.add(make_load(0, 1, 0x50));
  t1.add(make_alu(0, 0));
  t1.add(make_store(3, 1, 0x60));
  t1.add(make_mul(3, 0));
  ASSERT_EQ(t0.validate(kM8), "");
  ASSERT_EQ(t1.validate(kM8), "");
  EXPECT_TRUE(Footprint::csmt_compatible(fp(t0, kM8), fp(t1, kM8)));
  EXPECT_TRUE(Footprint::smt_compatible(fp(t0, kM8), fp(t1, kM8), kM8));
}

// ------------------------------------------------------------ Unit cases

TEST(Footprint, EmptyInstructionHasEmptyFootprint) {
  const Footprint f = fp(Instruction{}, kM16);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.cluster_mask(), 0u);
  EXPECT_EQ(f.total_ops(), 0);
}

TEST(Footprint, ClusterMaskAndCounts) {
  Instruction i;
  i.add(make_alu(0, 0));
  i.add(make_alu(0, 1));
  i.add(make_load(2, 2, 0));
  const Footprint f = fp(i, kM16);
  EXPECT_EQ(f.cluster_mask(), 0b0101u);
  EXPECT_EQ(f.cluster(0).op_count, 2);
  EXPECT_EQ(f.cluster(0).fixed_mask, 0);  // ALUs are reroutable
  EXPECT_EQ(f.cluster(2).op_count, 1);
  EXPECT_EQ(f.cluster(2).fixed_mask, 0b0100);
  EXPECT_EQ(f.total_ops(), 3);
}

TEST(Footprint, EmptyMergesWithAnythingUnderBothKinds) {
  Instruction busy;
  for (int c = 0; c < 4; ++c)
    for (int s = 0; s < 4; ++s) busy.add(make_alu(c, s));
  const Footprint fb = fp(busy, kM16);
  const Footprint fe = fp(Instruction{}, kM16);
  EXPECT_TRUE(Footprint::csmt_compatible(fb, fe));
  EXPECT_TRUE(Footprint::smt_compatible(fb, fe, kM16));
}

TEST(Footprint, SmtRejectsIssueWidthOverflow) {
  Instruction a, b;
  for (int s = 0; s < 3; ++s) a.add(make_alu(0, s));
  b.add(make_alu(0, 0));
  b.add(make_alu(0, 1));
  // 3 + 2 = 5 ops in a 4-wide cluster.
  EXPECT_FALSE(Footprint::smt_compatible(fp(a, kM16), fp(b, kM16), kM16));
}

TEST(Footprint, SmtAcceptsExactFit) {
  Instruction a, b;
  for (int s = 0; s < 3; ++s) a.add(make_alu(0, s));
  b.add(make_alu(0, 0));
  EXPECT_TRUE(Footprint::smt_compatible(fp(a, kM16), fp(b, kM16), kM16));
}

TEST(Footprint, SmtRejectsFixedSlotCollision) {
  Instruction a, b;
  a.add(make_load(1, 2, 0x1));
  b.add(make_store(1, 2, 0x2));
  // Only 2 ops in a 4-wide cluster, but both need the LSU slot.
  EXPECT_FALSE(Footprint::smt_compatible(fp(a, kM16), fp(b, kM16), kM16));
}

TEST(Footprint, SmtAllowsDistinctFixedUnits) {
  Instruction a, b;
  a.add(make_mul(1, 0));
  a.add(make_load(1, 2, 0x1));
  b.add(make_mul(1, 1));
  b.add(make_branch(1, 3, false));
  EXPECT_TRUE(Footprint::smt_compatible(fp(a, kM16), fp(b, kM16), kM16));
}

TEST(Footprint, SmtHonoursPerClusterWidthsOnHeterogeneousMachines) {
  // Cluster 0 is 4-wide, cluster 1 only 2-wide: the same 2+1 op mix that
  // fits cluster 0 overflows cluster 1.
  const ClusterShape shapes[2] = {
      {4, 0b0011, 0b0100, 0b1000},
      {2, 0b01, 0b10, 0b10},
  };
  const MachineConfig het = MachineConfig::heterogeneous_of(shapes, 2);
  for (int c = 0; c < 2; ++c) {
    Instruction a, b;
    a.add(make_alu(c, 0));
    a.add(make_alu(c, 1));
    b.add(make_alu(c, 0));
    const bool ok =
        Footprint::smt_compatible(fp(a, het), fp(b, het), het);
    EXPECT_EQ(ok, c == 0) << "cluster " << c;
  }
}

TEST(Footprint, HetDisjointClustersAlwaysSmtMerge) {
  const ClusterShape shapes[2] = {
      {4, 0b0011, 0b0100, 0b1000},
      {1, 0b1, 0b1, 0b1},
  };
  const MachineConfig het = MachineConfig::heterogeneous_of(shapes, 2);
  Instruction a, b;
  for (int s = 0; s < 4; ++s) a.add(make_alu(0, s));
  b.add(make_alu(1, 0));
  EXPECT_TRUE(Footprint::smt_compatible(fp(a, het), fp(b, het), het));
  // And the fixed-unit collision rule still applies on the narrow cluster.
  Instruction c, d;
  c.add(make_load(1, 0, 0x1));
  d.add(make_store(1, 0, 0x2));
  EXPECT_FALSE(Footprint::smt_compatible(fp(c, het), fp(d, het), het));
}

TEST(Footprint, CsmtIsClusterGranular) {
  Instruction a, b;
  a.add(make_alu(0, 0));
  b.add(make_alu(0, 3));  // same cluster, different slot: still a conflict
  EXPECT_FALSE(Footprint::csmt_compatible(fp(a, kM16), fp(b, kM16)));
  Instruction c;
  c.add(make_alu(1, 0));
  EXPECT_TRUE(Footprint::csmt_compatible(fp(a, kM16), fp(c, kM16)));
}

TEST(Footprint, MergeWithAccumulatesCountsAndMask) {
  Instruction a, b;
  a.add(make_alu(0, 0));
  a.add(make_load(1, 2, 0));
  b.add(make_alu(0, 1));
  Footprint fa = fp(a, kM16);
  fa.merge_with(fp(b, kM16), kM16);
  EXPECT_EQ(fa.cluster_mask(), 0b0011u);
  EXPECT_EQ(fa.cluster(0).op_count, 2);
  EXPECT_EQ(fa.total_ops(), 3);
}

TEST(RouteMerge, MovesDisplacedAluOps) {
  Instruction a, b;
  a.add(make_alu(0, 0));
  b.add(make_alu(0, 0));  // same preferred slot; must be rerouted
  const Instruction merged = route_merge(a, b, kM16);
  EXPECT_EQ(merged.validate(kM16), "");
  EXPECT_EQ(merged.op_count(), 2u);
}

TEST(RouteMerge, KeepsFixedOpsInPlace) {
  Instruction a, b;
  a.add(make_load(2, 2, 0xAA));
  b.add(make_mul(2, 0));
  const Instruction merged = route_merge(a, b, kM16);
  EXPECT_EQ(merged.validate(kM16), "");
  bool found_load = false, found_mul = false;
  for (const Operation& op : merged) {
    if (op.kind == OpKind::kLoad) {
      EXPECT_EQ(op.slot, 2);
      found_load = true;
    }
    if (op.kind == OpKind::kMul) {
      EXPECT_EQ(op.slot, 0);
      found_mul = true;
    }
  }
  EXPECT_TRUE(found_load && found_mul);
}

TEST(RouteMerge, ThrowsOnIncompatiblePackets) {
  Instruction a, b;
  a.add(make_load(0, 2, 0x1));
  b.add(make_store(0, 2, 0x2));
  EXPECT_THROW((void)route_merge(a, b, kM16), CheckError);
}

// --------------------------------------------------- Random properties

/// Generates a random valid instruction (placement-legal by construction).
Instruction random_instruction(Xoshiro256& rng, const MachineConfig& m,
                               int max_ops) {
  Instruction instr;
  std::uint32_t occupied[kMaxClusters] = {};
  const int k = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(max_ops) + 1));
  for (int j = 0; j < k; ++j) {
    const OpKind kinds[] = {OpKind::kAlu, OpKind::kAlu, OpKind::kAlu,
                            OpKind::kMul, OpKind::kLoad, OpKind::kStore,
                            OpKind::kBranch};
    const OpKind kind = kinds[rng.next_below(std::size(kinds))];
    const int c = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(m.num_clusters)));
    const std::uint32_t free = m.slots_for(kind) & ~occupied[c];
    if (free == 0) continue;
    const int slot = std::countr_zero(free);
    occupied[c] |= 1u << slot;
    Operation op;
    op.kind = kind;
    op.cluster = static_cast<std::uint8_t>(c);
    op.slot = static_cast<std::uint8_t>(slot);
    instr.add(op);
  }
  return instr;
}

class FootprintPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FootprintPropertyTest, CsmtCompatibleImpliesSmtCompatible) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const Instruction a = random_instruction(rng, kM16, 10);
    const Instruction b = random_instruction(rng, kM16, 10);
    if (Footprint::csmt_compatible(fp(a, kM16), fp(b, kM16))) {
      EXPECT_TRUE(Footprint::smt_compatible(fp(a, kM16), fp(b, kM16), kM16))
          << "CSMT-mergeable pair must be SMT-mergeable";
    }
  }
}

TEST_P(FootprintPropertyTest, RoutedMergeIsValidAndPreservesOps) {
  Xoshiro256 rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 200; ++trial) {
    const Instruction a = random_instruction(rng, kM16, 10);
    const Instruction b = random_instruction(rng, kM16, 10);
    if (!Footprint::smt_compatible(fp(a, kM16), fp(b, kM16), kM16)) continue;
    const Instruction merged = route_merge(a, b, kM16);
    EXPECT_EQ(merged.validate(kM16), "");
    EXPECT_EQ(merged.op_count(), a.op_count() + b.op_count());
  }
}

TEST_P(FootprintPropertyTest, MergedFootprintMatchesRoutedPacket) {
  Xoshiro256 rng(GetParam() ^ 0xAAAA);
  for (int trial = 0; trial < 200; ++trial) {
    const Instruction a = random_instruction(rng, kM16, 8);
    const Instruction b = random_instruction(rng, kM16, 8);
    if (!Footprint::smt_compatible(fp(a, kM16), fp(b, kM16), kM16)) continue;
    Footprint merged_fp = fp(a, kM16);
    merged_fp.merge_with(fp(b, kM16), kM16);
    const Footprint routed_fp = fp(route_merge(a, b, kM16), kM16);
    EXPECT_EQ(merged_fp.cluster_mask(), routed_fp.cluster_mask());
    EXPECT_EQ(merged_fp.total_ops(), routed_fp.total_ops());
    for (int c = 0; c < kM16.num_clusters; ++c)
      EXPECT_EQ(merged_fp.cluster(c).op_count, routed_fp.cluster(c).op_count);
  }
}

TEST_P(FootprintPropertyTest, CompatibilityIsSymmetric) {
  Xoshiro256 rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 200; ++trial) {
    const Instruction a = random_instruction(rng, kM16, 10);
    const Instruction b = random_instruction(rng, kM16, 10);
    const Footprint faa = fp(a, kM16), fbb = fp(b, kM16);
    EXPECT_EQ(Footprint::csmt_compatible(faa, fbb),
              Footprint::csmt_compatible(fbb, faa));
    EXPECT_EQ(Footprint::smt_compatible(faa, fbb, kM16),
              Footprint::smt_compatible(fbb, faa, kM16));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FootprintPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace cvmt
