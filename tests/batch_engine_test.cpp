// SimBatch contract tests: lockstep execution at any lane count is
// bit-identical to running the same jobs one at a time through the
// classic SimInstance path — every SimResult counter, including the full
// merge statistics — across randomly generated fuzz cases (mixed schemes,
// machine shapes, memory systems and switch policies), and lane
// retirement/refill keeps results in job order when lanes finish at
// staggered times.
#include "sim/batch_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/batch_runner.hpp"
#include "sim/session.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "testgen/generators.hpp"
#include "testgen/oracle.hpp"
#include "trace/benchmark_suite.hpp"

namespace cvmt {
namespace {

/// Full-stats SimConfig for `c` so the comparison covers the merge
/// counters, not just the IPC-level fields.
SimConfig full_stats_config(const FuzzCase& c) {
  SimConfig cfg = c.sim;
  cfg.stats = StatsLevel::kFull;
  cfg.eval_mode = EvalMode::kPlan;
  cfg.stall_fast_forward = true;
  return cfg;
}

/// The case as a batch spec plus its sequential reference result.
struct CaseJob {
  BatchRunSpec spec;
  SimResult reference;
};

std::vector<CaseJob> build_case_jobs(std::uint64_t seed, int count) {
  std::vector<CaseJob> jobs;
  SplitMix64 sm(seed);
  while (static_cast<int>(jobs.size()) < count) {
    const FuzzCase c = generate_case(sm.next());
    CaseJob job;
    job.spec.scheme = std::make_shared<const CompiledScheme>(
        c.parse_scheme(), c.sim.machine);
    job.spec.programs = c.build_programs();
    job.spec.config = full_stats_config(c);
    job.reference =
        run_simulation(c.parse_scheme(), job.spec.programs, job.spec.config);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

// The core property: a mixed bag of random cases — different thread
// counts, machines, memory systems and switch policies in one batch —
// comes out of SimBatch bit-identical to the sequential reference at
// every lane count, in job order.
TEST(BatchEngine, LockstepMatchesSequentialAcrossFuzzCases) {
  const std::vector<CaseJob> jobs = build_case_jobs(0xBA7C4u, 10);
  for (const int lanes : {1, 2, 4, 8}) {
    SimBatch batch(lanes);
    for (const CaseJob& job : jobs) batch.enqueue(job.spec);
    const std::vector<SimResult> results = batch.run_all();
    ASSERT_EQ(results.size(), jobs.size()) << "lanes=" << lanes;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const std::string mismatch =
          compare_sim_results(jobs[i].reference, results[i],
                              /*compare_merge_stats=*/true);
      EXPECT_EQ(mismatch, "") << "lanes=" << lanes << " job=" << i;
    }
  }
}

// Staggered finishes: the same scheme/workload at budgets spanning two
// orders of magnitude, deliberately ordered so short and long runs share
// a lockstep window. Early lanes must retire, refill from the queue and
// land every result in its own job slot.
TEST(BatchEngine, StaggeredRetirementRefillsInJobOrder) {
  const FuzzCase c = generate_case(0x5EEDu);
  const Scheme scheme = c.parse_scheme();
  const auto compiled =
      std::make_shared<const CompiledScheme>(scheme, c.sim.machine);
  const std::vector<std::shared_ptr<const SyntheticProgram>> programs =
      c.build_programs();

  const std::uint64_t budgets[] = {50,    20000, 120,  7000, 30,
                                   15000, 400,   9000, 60,   2500};
  std::vector<BatchRunSpec> specs;
  std::vector<SimResult> reference;
  for (const std::uint64_t budget : budgets) {
    SimConfig cfg = full_stats_config(c);
    cfg.instruction_budget = budget;
    BatchRunSpec spec;
    spec.scheme = compiled;
    spec.programs = programs;
    spec.config = cfg;
    reference.push_back(run_simulation(scheme, programs, cfg));
    specs.push_back(std::move(spec));
  }

  for (const int lanes : {2, 4, 8}) {
    SimBatch batch(lanes);
    for (const BatchRunSpec& spec : specs) batch.enqueue(spec);
    const std::vector<SimResult> results = batch.run_all();
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::string mismatch = compare_sim_results(
          reference[i], results[i], /*compare_merge_stats=*/true);
      EXPECT_EQ(mismatch, "") << "lanes=" << lanes << " job=" << i;
    }
  }
}

// More lanes than jobs: the surplus lanes stay inactive and the batch
// still returns exactly one result per job.
TEST(BatchEngine, MoreLanesThanJobs) {
  const std::vector<CaseJob> jobs = build_case_jobs(0xF00Du, 3);
  SimBatch batch(8);
  for (const CaseJob& job : jobs) batch.enqueue(job.spec);
  const std::vector<SimResult> results = batch.run_all();
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(compare_sim_results(jobs[i].reference, results[i], true), "")
        << "job=" << i;
}

// A SimBatch is reusable: run_all drains the queue, a second enqueue +
// run_all on the same batch (recycled lanes, arena-pooled contexts)
// reproduces the sequential reference just the same.
TEST(BatchEngine, BatchReuseAcrossRunAllCalls) {
  const std::vector<CaseJob> jobs = build_case_jobs(0xCAFEu, 6);
  SimBatch batch(4);
  for (int round = 0; round < 2; ++round) {
    for (const CaseJob& job : jobs) batch.enqueue(job.spec);
    const std::vector<SimResult> results = batch.run_all();
    ASSERT_EQ(results.size(), jobs.size()) << "round=" << round;
    for (std::size_t i = 0; i < jobs.size(); ++i)
      EXPECT_EQ(compare_sim_results(jobs[i].reference, results[i], true),
                "")
          << "round=" << round << " job=" << i;
    EXPECT_EQ(batch.queued(), 0u);
  }
}

// Malformed specs fail eagerly at enqueue, not deep inside a lockstep
// window.
TEST(BatchEngine, EnqueueValidatesEagerly) {
  const FuzzCase c = generate_case(1);
  const auto compiled = std::make_shared<const CompiledScheme>(
      c.parse_scheme(), c.sim.machine);
  SimBatch batch(2);

  BatchRunSpec no_programs;
  no_programs.scheme = compiled;
  no_programs.config = c.sim;
  EXPECT_THROW(batch.enqueue(no_programs), CheckError);

  BatchRunSpec no_scheme;
  no_scheme.programs = c.build_programs();
  no_scheme.config = c.sim;
  EXPECT_THROW(batch.enqueue(no_scheme), CheckError);

  EXPECT_THROW(SimBatch(0), CheckError);
}

// The specialized window kernels (structural ICache + fused replay,
// CVMT_BATCH_KERNELS) forced on and forced off must both reproduce the
// sequential reference bit-for-bit on a mixed fuzz bag, and the
// per-path job accounting must cover every job exactly once.
TEST(BatchEngine, KernelsOnOffBitIdentical) {
  const std::vector<CaseJob> jobs = build_case_jobs(0xD00Du, 8);
  for (const int lanes : {1, 4}) {
    for (const bool kernels : {true, false}) {
      SimBatch batch(lanes);
      batch.set_kernels_enabled(kernels);
      for (const CaseJob& job : jobs) batch.enqueue(job.spec);
      const std::vector<SimResult> results = batch.run_all();
      ASSERT_EQ(results.size(), jobs.size());
      for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(compare_sim_results(jobs[i].reference, results[i],
                                      /*compare_merge_stats=*/true),
                  "")
            << "kernels=" << kernels << " lanes=" << lanes << " job=" << i;
      const SimBatch::KernelStats& ks = batch.kernel_stats();
      EXPECT_EQ(ks.fused_jobs + ks.structural_jobs + ks.generic_jobs,
                jobs.size())
          << "kernels=" << kernels << " lanes=" << lanes;
      if (!kernels) {
        EXPECT_EQ(ks.fused_jobs, 0u);
        EXPECT_EQ(ks.structural_jobs, 0u);
      }
    }
  }
}

// Slot-state persistence (the fused kernel's per-thread cursors live in
// lane arrays, not contexts): more software threads than hardware slots
// and a tiny timeslice force constant deschedule/reschedule churn across
// hundreds of windows; every cursor must survive it bit-exactly.
TEST(BatchEngine, FusedSlotStatePersistsAcrossWindows) {
  const Scheme scheme = Scheme::parse("2SC");
  SimConfig cfg;
  cfg.instruction_budget = 3000;
  cfg.timeslice_cycles = 37;
  cfg.stats = StatsLevel::kFull;
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  for (const std::string& name : table2_workloads().front().benchmarks)
    programs.push_back(std::make_shared<const SyntheticProgram>(
        profile_by_name(name), cfg.machine));
  const SimResult reference = run_simulation(scheme, programs, cfg);

  SimBatch batch(1);
  batch.set_kernels_enabled(true);
  BatchRunSpec spec;
  spec.scheme = std::make_shared<const CompiledScheme>(scheme, cfg.machine);
  spec.programs = programs;
  spec.config = cfg;
  batch.enqueue(std::move(spec));
  const std::vector<SimResult> results = batch.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(batch.kernel_stats().fused_jobs, 1u)
      << "expected the fused kernel to engage on the paper machine";
  EXPECT_EQ(compare_sim_results(reference, results[0],
                                /*compare_merge_stats=*/true),
            "");
}

// run_batch with lanes > 1 routes through SimBatch and must stay
// bit-identical to the classic lanes=1 session path for any worker
// count — the property the CVMT_BATCH_LANES knob advertises.
TEST(BatchEngine, RunBatchLanesKnobIsBitIdentical) {
  const std::vector<Scheme> schemes = {Scheme::parse("3SSS"),
                                       Scheme::parse("3CCC")};
  std::vector<BatchJob> jobs;
  SimConfig cfg;
  cfg.instruction_budget = 2000;
  cfg.timeslice_cycles = 500;
  for (const Scheme& scheme : schemes)
    for (const Workload& wl : table2_workloads())
      jobs.push_back(make_job(scheme, wl, cfg));

  BatchOptions serial;
  serial.workers = 1;
  serial.lanes = 1;
  const std::vector<SimResult> reference = run_batch(jobs, serial);

  for (const unsigned lanes : {2u, 4u}) {
    for (const unsigned workers : {1u, 3u}) {
      BatchOptions opts;
      opts.workers = workers;
      opts.lanes = lanes;
      const std::vector<SimResult> results = run_batch(jobs, opts);
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(compare_sim_results(reference[i], results[i], true), "")
            << "workers=" << workers << " lanes=" << lanes << " job=" << i;
    }
  }
}

}  // namespace
}  // namespace cvmt
