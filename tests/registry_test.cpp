// ExperimentRegistry: every experiment the benches and CI rely on is
// registered, and every registered experiment runs at smoke scale and
// produces non-empty, schema-consistent Dataset sections.
#include <gtest/gtest.h>

#include "exp/registry.hpp"
#include "support/check.hpp"

namespace cvmt {
namespace {

ExperimentParams tiny() {
  ExperimentParams p;
  p.fast = true;  // timed experiments (cycle-loop) shrink their rep counts
  p.cfg.sim.instruction_budget = 2'000;
  p.cfg.sim.timeslice_cycles = 1'000;
  p.cfg.sim.stats = StatsLevel::kFast;
  return p;
}

TEST(Registry, AllExpectedExperimentsAreRegistered) {
  const auto& registry = ExperimentRegistry::instance();
  for (const char* id :
       {"table1", "table2", "fig4", "fig5", "fig6", "fig9", "fig10",
        "fig11", "fig12", "8threads", "baselines", "design-choices",
        "machine-shapes", "miss-penalty", "scale", "merge-efficiency",
        "batch-speedup", "cycle-loop"}) {
    const Experiment* e = registry.find(id);
    ASSERT_NE(e, nullptr) << id;
    EXPECT_FALSE(e->description.empty()) << id;
    EXPECT_FALSE(e->artifact.empty()) << id;
  }
  EXPECT_GE(registry.size(), 18u);
  EXPECT_EQ(registry.find("no-such-experiment"), nullptr);
}

TEST(Registry, OrderingIsStableAndPaperFirst) {
  const auto all = ExperimentRegistry::instance().all();
  ASSERT_GE(all.size(), 18u);
  EXPECT_EQ(all.front()->id, "table1");
  for (std::size_t i = 1; i < all.size(); ++i) {
    const bool ordered =
        all[i - 1]->sort_key < all[i]->sort_key ||
        (all[i - 1]->sort_key == all[i]->sort_key &&
         all[i - 1]->id < all[i]->id);
    EXPECT_TRUE(ordered) << all[i - 1]->id << " vs " << all[i]->id;
  }
}

TEST(Registry, DuplicateIdsRejected) {
  ExperimentRegistry registry;
  Experiment e;
  e.id = "x";
  e.run = [](const RunContext&) { return ExperimentResult{}; };
  registry.add(e);
  EXPECT_THROW(registry.add(e), CheckError);
  Experiment no_run;
  no_run.id = "y";
  EXPECT_THROW(registry.add(no_run), CheckError);
}

TEST(Registry, SchemaSummaryNamesKnobs) {
  const Experiment* fig10 = ExperimentRegistry::instance().find("fig10");
  ASSERT_NE(fig10, nullptr);
  const std::string summary = fig10->schema_summary();
  EXPECT_NE(summary.find("budget"), std::string::npos);
  EXPECT_NE(summary.find("schemes"), std::string::npos);
  EXPECT_TRUE(fig10->in_schema(ParamKind::kWorkloads));
  EXPECT_FALSE(
      ExperimentRegistry::instance().find("fig5")->in_schema(
          ParamKind::kBudget));

  // The resolved stats level is explicit in the schema surface: the
  // merge-efficiency diagnostic forces full stats and says so.
  const Experiment* me =
      ExperimentRegistry::instance().find("merge-efficiency");
  ASSERT_NE(me, nullptr);
  EXPECT_TRUE(me->forces_full_stats);
  EXPECT_NE(me->schema_summary().find("stats=full"), std::string::npos);
}

// The headline acceptance test of the experiment API: every registered
// experiment runs under smoke-scale parameters and yields non-empty,
// schema-consistent sections. (Dataset::add_row enforces cell/column
// consistency at insertion; the JSON round trip re-checks every cell
// against the declared column types.)
TEST(Registry, EveryExperimentRunsFastAndYieldsConsistentDatasets) {
  const ExperimentParams params = tiny();
  for (const Experiment* e : ExperimentRegistry::instance().all()) {
    SCOPED_TRACE(e->id);
    const ExperimentResult result = e->run(RunContext{params});
    EXPECT_TRUE(result.ok);
    ASSERT_FALSE(result.sections.empty());
    bool has_data = false;
    for (const ResultSection& s : result.sections) {
      if (s.data.num_cols() == 0) continue;
      has_data = true;
      EXPECT_GT(s.data.num_rows(), 0u) << s.title;
      for (const ColumnSpec& c : s.data.columns())
        EXPECT_FALSE(c.name.empty()) << s.title;
      const Dataset round = Dataset::from_json(s.data.to_json());
      EXPECT_EQ(round.num_rows(), s.data.num_rows()) << s.title;
      EXPECT_EQ(round.num_cols(), s.data.num_cols()) << s.title;
    }
    EXPECT_TRUE(has_data);
  }
}

}  // namespace
}  // namespace cvmt
