// Tests of scheme parsing, structure and the paper's 16-scheme set.
#include <gtest/gtest.h>

#include "core/scheme.hpp"

namespace cvmt {
namespace {

TEST(SchemeParse, OneLevelSmt) {
  const Scheme s = Scheme::parse("1S");
  EXPECT_EQ(s.num_threads(), 2);
  EXPECT_EQ(s.canonical(), "S(0,1)");
  EXPECT_EQ(s.count_blocks(MergeKind::kSmt), 1);
  EXPECT_EQ(s.count_blocks(MergeKind::kCsmt), 0);
}

TEST(SchemeParse, OneLevelCsmt) {
  const Scheme s = Scheme::parse("1C");
  EXPECT_EQ(s.num_threads(), 2);
  EXPECT_EQ(s.canonical(), "C(0,1)");
}

TEST(SchemeParse, CascadeThreeLevels) {
  EXPECT_EQ(Scheme::parse("3SCC").canonical(), "C(C(S(0,1),2),3)");
  EXPECT_EQ(Scheme::parse("3CCC").canonical(), "C(C(C(0,1),2),3)");
  EXPECT_EQ(Scheme::parse("3SSS").canonical(), "S(S(S(0,1),2),3)");
  EXPECT_EQ(Scheme::parse("3CSC").canonical(), "C(S(C(0,1),2),3)");
  EXPECT_EQ(Scheme::parse("3CCS").canonical(), "S(C(C(0,1),2),3)");
  EXPECT_EQ(Scheme::parse("3SSC").canonical(), "C(S(S(0,1),2),3)");
  EXPECT_EQ(Scheme::parse("3SCS").canonical(), "S(C(S(0,1),2),3)");
  EXPECT_EQ(Scheme::parse("3CSS").canonical(), "S(S(C(0,1),2),3)");
}

TEST(SchemeParse, BalancedTrees) {
  EXPECT_EQ(Scheme::parse("2CC").canonical(), "C(C(0,1),C(2,3))");
  EXPECT_EQ(Scheme::parse("2SS").canonical(), "S(S(0,1),S(2,3))");
  EXPECT_EQ(Scheme::parse("2SC").canonical(), "C(S(0,1),S(2,3))");
  EXPECT_EQ(Scheme::parse("2CS").canonical(), "S(C(0,1),C(2,3))");
}

TEST(SchemeParse, ParallelCsmtBlocks) {
  const Scheme c4 = Scheme::parse("C4");
  EXPECT_EQ(c4.num_threads(), 4);
  EXPECT_EQ(c4.canonical(), "CP(0,1,2,3)");
  EXPECT_EQ(c4.count_blocks(MergeKind::kCsmt), 1);  // one wide block

  EXPECT_EQ(Scheme::parse("2SC3").canonical(), "CP(S(0,1),2,3)");
  EXPECT_EQ(Scheme::parse("2C3S").canonical(), "S(CP(0,1,2),3)");
}

TEST(SchemeParse, FunctionalSyntax) {
  const Scheme s = Scheme::parse("S(CP(0,1,2),3)");
  EXPECT_EQ(s.canonical(), "S(CP(0,1,2),3)");
  EXPECT_EQ(s.num_threads(), 4);
  EXPECT_EQ(Scheme::parse(" C( 0 , 1 ) ").canonical(), "C(0,1)");
}

TEST(SchemeParse, LowercaseAndWhitespaceTolerated) {
  EXPECT_EQ(Scheme::parse(" 3scc ").canonical(), "C(C(S(0,1),2),3)");
  EXPECT_EQ(Scheme::parse("c4").canonical(), "CP(0,1,2,3)");
}

TEST(SchemeParse, RejectsMalformedNames) {
  EXPECT_THROW((void)Scheme::parse(""), CheckError);
  EXPECT_THROW((void)Scheme::parse("XSCC"), CheckError);
  EXPECT_THROW((void)Scheme::parse("3SC"), CheckError);   // level mismatch
  EXPECT_THROW((void)Scheme::parse("2SCC"), CheckError);  // level mismatch
  EXPECT_THROW((void)Scheme::parse("3S!C"), CheckError);
}

TEST(SchemeParse, RejectsParallelSmt) {
  EXPECT_THROW((void)Scheme::parse("2S3C"), CheckError);
  EXPECT_THROW((void)Scheme::parse("S4"), CheckError);
}

TEST(SchemeParse, RejectsBadFunctionalSyntax) {
  EXPECT_THROW((void)Scheme::parse("S(0)"), CheckError);      // 1 input
  EXPECT_THROW((void)Scheme::parse("S(0,1"), CheckError);     // unclosed
  EXPECT_THROW((void)Scheme::parse("S(0,0)"), CheckError);    // dup port
  EXPECT_THROW((void)Scheme::parse("S(0,2)"), CheckError);    // gap
  EXPECT_THROW((void)Scheme::parse("S(1,2)"), CheckError);    // not dense
  EXPECT_THROW((void)Scheme::parse("S(0,1)x"), CheckError);   // trailing
}

TEST(SchemeParse, RejectsTinySubscript) {
  EXPECT_THROW((void)Scheme::parse("2SC1"), CheckError);
}

TEST(Scheme, SingleThreadDegenerate) {
  const Scheme s = Scheme::single_thread();
  EXPECT_EQ(s.num_threads(), 1);
  EXPECT_EQ(s.canonical(), "0");
  EXPECT_EQ(s.count_blocks(MergeKind::kSmt), 0);
  EXPECT_EQ(s.count_blocks(MergeKind::kCsmt), 0);
}

TEST(Scheme, PaperSchemeSetMatchesFig9Order) {
  const std::vector<Scheme> schemes = Scheme::paper_schemes_4t();
  ASSERT_EQ(schemes.size(), 16u);
  const char* expected[] = {"C4",   "3CCC", "2CC", "1S",   "2SC3", "3CSC",
                            "2C3S", "3CCS", "3SCC", "2CS",  "2SC",  "3SSC",
                            "3SCS", "3CSS", "2SS",  "3SSS"};
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(schemes[i].name(), expected[i]);
    const int expected_threads = schemes[i].name() == "1S" ? 2 : 4;
    EXPECT_EQ(schemes[i].num_threads(), expected_threads)
        << schemes[i].name();
  }
}

TEST(Scheme, BlockCountsAcrossPaperSet) {
  // Transistor cost is dominated by SMT block count (paper §4.2); verify
  // the structural counts that drive it.
  EXPECT_EQ(Scheme::parse("3SSS").count_blocks(MergeKind::kSmt), 3);
  EXPECT_EQ(Scheme::parse("2SS").count_blocks(MergeKind::kSmt), 3);
  EXPECT_EQ(Scheme::parse("3SSC").count_blocks(MergeKind::kSmt), 2);
  EXPECT_EQ(Scheme::parse("2SC").count_blocks(MergeKind::kSmt), 2);
  EXPECT_EQ(Scheme::parse("3SCC").count_blocks(MergeKind::kSmt), 1);
  EXPECT_EQ(Scheme::parse("2SC3").count_blocks(MergeKind::kSmt), 1);
  EXPECT_EQ(Scheme::parse("2CS").count_blocks(MergeKind::kSmt), 1);
  EXPECT_EQ(Scheme::parse("3CCC").count_blocks(MergeKind::kSmt), 0);
  EXPECT_EQ(Scheme::parse("C4").count_blocks(MergeKind::kSmt), 0);
}

TEST(Scheme, CascadeBuilderMatchesParser) {
  using MK = MergeKind;
  const Scheme a = Scheme::cascade({MK::kSmt, MK::kCsmt, MK::kCsmt});
  EXPECT_EQ(a.canonical(), Scheme::parse("3SCC").canonical());
  EXPECT_EQ(a.name(), "3SCC");
}

TEST(Scheme, CascadeSupportsEightThreads) {
  std::vector<MergeKind> levels(7, MergeKind::kCsmt);
  levels[0] = MergeKind::kSmt;
  const Scheme s = Scheme::cascade(levels);
  EXPECT_EQ(s.num_threads(), 8);
  EXPECT_EQ(s.name(), "7SCCCCCC");
}

TEST(Scheme, ParallelCsmtEight) {
  const Scheme s = Scheme::parallel_csmt(8);
  EXPECT_EQ(s.num_threads(), 8);
  EXPECT_EQ(s.count_blocks(MergeKind::kCsmt), 1);
}

TEST(Scheme, RejectsTooManyThreads) {
  EXPECT_THROW((void)Scheme::parallel_csmt(kMaxThreads + 1), CheckError);
}

TEST(Scheme, ImtBaselineFactoryAndParse) {
  const Scheme s = Scheme::imt(4);
  EXPECT_EQ(s.name(), "IMT4");
  EXPECT_EQ(s.num_threads(), 4);
  EXPECT_EQ(s.canonical(), "I(0,1,2,3)");
  EXPECT_EQ(s.count_blocks(MergeKind::kSmt), 0);
  EXPECT_EQ(s.count_blocks(MergeKind::kCsmt), 0);
  EXPECT_EQ(s.count_blocks(MergeKind::kSelect), 3);  // serial 4-input node
  EXPECT_EQ(Scheme::parse("imt2").canonical(), "I(0,1)");
  EXPECT_EQ(Scheme::parse("I(0,1,2)").num_threads(), 3);
  EXPECT_THROW((void)Scheme::parse("IMTx"), CheckError);
}

TEST(Scheme, SerialMultiInputCountsAsMultipleBlocks) {
  const Scheme s = Scheme::parse("C(0,1,2,3)");  // serial 4-input node
  EXPECT_EQ(s.count_blocks(MergeKind::kCsmt), 3);
  const Scheme p = Scheme::parse("CP(0,1,2,3)");
  EXPECT_EQ(p.count_blocks(MergeKind::kCsmt), 1);
}

// --------------------------------------------- Scheme::validate messages

Scheme::Node make_leaf(int port) {
  Scheme::Node n;
  n.port = port;
  return n;
}

Scheme::Node make_block(MergeKind kind, std::vector<Scheme::Node> children,
                        bool parallel = false) {
  Scheme::Node n;
  n.kind = kind;
  n.parallel = parallel;
  n.children = std::move(children);
  return n;
}

TEST(SchemeValidate, AcceptsEveryPaperScheme) {
  for (const Scheme& s : Scheme::paper_schemes_4t())
    EXPECT_EQ(Scheme::validate(s.root()), "") << s.name();
  EXPECT_EQ(Scheme::validate(Scheme::single_thread().root()), "");
  EXPECT_EQ(Scheme::validate(Scheme::imt(kMaxThreads).root()), "");
}

TEST(SchemeValidate, RejectsDuplicateThreadIds) {
  std::vector<Scheme::Node> kids;
  kids.push_back(make_leaf(0));
  kids.push_back(make_leaf(0));
  const std::string err =
      Scheme::validate(make_block(MergeKind::kSmt, std::move(kids)));
  EXPECT_NE(err.find("duplicate thread id 0"), std::string::npos) << err;
  EXPECT_THROW((void)Scheme::parse("S(0,0)"), CheckError);
}

TEST(SchemeValidate, RejectsEmptyAndSingleInputMergeArms) {
  const std::string empty =
      Scheme::validate(make_block(MergeKind::kSelect, {}));
  EXPECT_NE(empty.find("no inputs"), std::string::npos) << empty;
  EXPECT_NE(empty.find("select"), std::string::npos) << empty;

  std::vector<Scheme::Node> one;
  one.push_back(make_leaf(0));
  const std::string single =
      Scheme::validate(make_block(MergeKind::kCsmt, std::move(one)));
  EXPECT_NE(single.find("single input"), std::string::npos) << single;
}

TEST(SchemeValidate, RejectsNonDensePorts) {
  std::vector<Scheme::Node> kids;
  kids.push_back(make_leaf(0));
  kids.push_back(make_leaf(2));
  const std::string err =
      Scheme::validate(make_block(MergeKind::kCsmt, std::move(kids)));
  EXPECT_NE(err.find("dense 0..N-1"), std::string::npos) << err;
}

TEST(SchemeValidate, RejectsLeafWithChildren) {
  Scheme::Node bad = make_leaf(0);
  bad.children.push_back(make_leaf(1));
  const std::string err = Scheme::validate(bad);
  EXPECT_NE(err.find("must not have children"), std::string::npos) << err;
}

TEST(SchemeValidate, RejectsParallelNonCsmt) {
  std::vector<Scheme::Node> kids;
  kids.push_back(make_leaf(0));
  kids.push_back(make_leaf(1));
  const std::string err = Scheme::validate(
      make_block(MergeKind::kSmt, std::move(kids), /*parallel=*/true));
  EXPECT_NE(err.find("parallel"), std::string::npos) << err;
}

TEST(SchemeValidate, RejectsTooManyThreads) {
  std::vector<Scheme::Node> kids;
  for (int p = 0; p <= kMaxThreads; ++p) kids.push_back(make_leaf(p));
  const std::string err =
      Scheme::validate(make_block(MergeKind::kCsmt, std::move(kids), true));
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(SchemeParse, CanonicalLeafRoundTrips) {
  // canonical() of the 1-thread scheme is "0"; parse must round-trip it
  // (a bare non-zero port fails dense-port validation instead).
  const Scheme s = Scheme::parse("0");
  EXPECT_EQ(s.num_threads(), 1);
  EXPECT_EQ(s.canonical(), "0");
  EXPECT_EQ(Scheme::parse(Scheme::single_thread().canonical()).canonical(),
            "0");
  EXPECT_THROW((void)Scheme::parse("5"), CheckError);
}

TEST(Scheme, SixteenThreadSchemesSupported) {
  EXPECT_EQ(Scheme::parallel_csmt(16).num_threads(), 16);
  EXPECT_EQ(Scheme::parse("C16").count_blocks(MergeKind::kCsmt), 1);
  std::vector<MergeKind> levels(15, MergeKind::kCsmt);
  EXPECT_EQ(Scheme::cascade(levels).num_threads(), 16);
}

}  // namespace
}  // namespace cvmt
