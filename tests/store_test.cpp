// The on-disk result store behind sharded, resumable sweeps: record
// framing and torn-tail recovery, the lossless SimResult JSON round trip,
// deterministic shard partitioning, resume-without-recompute (pinned by a
// compute-call counter), replay's missing-point diagnostics, and the
// end-to-end byte-identity contract — shard + merge reproduces the
// unsharded `cvmt run --format=json` bytes exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/batch_runner.hpp"
#include "exp/driver.hpp"
#include "store/result_store.hpp"
#include "store/sweep_store.hpp"
#include "support/check.hpp"

namespace cvmt {
namespace {

/// A fresh, empty store directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "cvmt_store_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

SimConfig tiny_sim() {
  SimConfig sim;
  sim.instruction_budget = 10'000;
  sim.timeslice_cycles = 2'500;
  return sim;
}

std::vector<BatchJob> small_grid(StatsLevel stats = StatsLevel::kFast) {
  SimConfig sim = tiny_sim();
  sim.stats = stats;
  std::vector<BatchJob> jobs;
  for (const char* name : {"1S", "2SC", "3CCC"})
    for (const Workload& w : table2_workloads())
      jobs.push_back(make_job(Scheme::parse(name), w, sim));
  return jobs;
}

/// The manifest the driver would install for this test's parameters.
JsonValue test_manifest(unsigned shard_count) {
  ExperimentParams p;
  p.cfg.sim = tiny_sim();
  return p.to_manifest_json("fig10", shard_count);
}

/// Every field of two SimResults, bit for bit — including the histogram's
/// internal weighted sum, which buckets alone cannot reproduce.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.idle_cycles, b.idle_cycles);
  EXPECT_EQ(a.ipc, b.ipc);  // exact double equality, on purpose
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    const ThreadResult& ta = a.threads[i];
    const ThreadResult& tb = b.threads[i];
    EXPECT_EQ(ta.benchmark, tb.benchmark);
    EXPECT_EQ(ta.instructions, tb.instructions);
    EXPECT_EQ(ta.ops, tb.ops);
    EXPECT_EQ(ta.stats.instructions, tb.stats.instructions);
    EXPECT_EQ(ta.stats.bubbles, tb.stats.bubbles);
    EXPECT_EQ(ta.stats.ops, tb.stats.ops);
    EXPECT_EQ(ta.stats.taken_branches, tb.stats.taken_branches);
    EXPECT_EQ(ta.stats.dcache_stall_cycles, tb.stats.dcache_stall_cycles);
    EXPECT_EQ(ta.stats.icache_stall_cycles, tb.stats.icache_stall_cycles);
    EXPECT_EQ(ta.stats.branch_stall_cycles, tb.stats.branch_stall_cycles);
    EXPECT_EQ(ta.stats.bank_conflict_cycles, tb.stats.bank_conflict_cycles);
  }
  EXPECT_EQ(a.icache.hits, b.icache.hits);
  EXPECT_EQ(a.icache.total, b.icache.total);
  EXPECT_EQ(a.dcache.hits, b.dcache.hits);
  EXPECT_EQ(a.dcache.total, b.dcache.total);
  EXPECT_EQ(a.l2.hits, b.l2.hits);
  EXPECT_EQ(a.l2.total, b.l2.total);
  ASSERT_EQ(a.issued_per_cycle.num_buckets(),
            b.issued_per_cycle.num_buckets());
  for (std::size_t i = 0; i < a.issued_per_cycle.num_buckets(); ++i)
    EXPECT_EQ(a.issued_per_cycle.bucket(i), b.issued_per_cycle.bucket(i));
  EXPECT_EQ(a.issued_per_cycle.total(), b.issued_per_cycle.total());
  EXPECT_EQ(a.issued_per_cycle.weighted_sum(),
            b.issued_per_cycle.weighted_sum());
  ASSERT_EQ(a.merge_nodes.size(), b.merge_nodes.size());
  for (std::size_t i = 0; i < a.merge_nodes.size(); ++i) {
    EXPECT_EQ(a.merge_nodes[i].label, b.merge_nodes[i].label);
    EXPECT_EQ(a.merge_nodes[i].kind, b.merge_nodes[i].kind);
    EXPECT_EQ(a.merge_nodes[i].attempts, b.merge_nodes[i].attempts);
    EXPECT_EQ(a.merge_nodes[i].rejects, b.merge_nodes[i].rejects);
  }
  EXPECT_EQ(a.os.context_switches, b.os.context_switches);
  EXPECT_EQ(a.os.timeslices, b.os.timeslices);
}

// --- hashing and sharding -------------------------------------------------

// FNV-1a 64 reference vectors: shard assignment and record checksums are
// on-disk contracts, so the hash must never change.
TEST(Store, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Store, ParseShardSpecAcceptsAndRejects) {
  EXPECT_EQ(parse_shard_spec("0/1").index, 0u);
  EXPECT_EQ(parse_shard_spec("0/1").count, 1u);
  EXPECT_EQ(parse_shard_spec("3/4").index, 3u);
  EXPECT_EQ(parse_shard_spec("3/4").count, 4u);
  EXPECT_EQ(parse_shard_spec("0/4096").count, 4096u);
  for (const char* bad : {"", "1", "4/4", "5/4", "-1/4", "1/-4", "a/b",
                          "1/0", "0/4097", "1/4/2", "1/4 ", " 1/4",
                          "0x1/4"})
    EXPECT_THROW((void)parse_shard_spec(bad), CheckError) << bad;
}

TEST(Store, ShardOfIsDeterministicAndPartitionsTheGrid) {
  const std::vector<BatchJob> jobs = small_grid();
  std::set<std::string> keys;
  for (const BatchJob& job : jobs) {
    const std::string key = point_key(job);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate key " << key;
    for (unsigned n : {1u, 2u, 4u, 7u}) {
      const unsigned shard = shard_of(key, n);
      EXPECT_LT(shard, n);
      EXPECT_EQ(shard, shard_of(key, n));  // stable
    }
    EXPECT_EQ(shard_of(key, 1), 0u);
  }
  // A 4-way split genuinely spreads this grid (probabilistic in
  // principle, deterministic in fact: the keys are fixed).
  std::set<unsigned> used;
  for (const std::string& key : keys) used.insert(shard_of(key, 4));
  EXPECT_GT(used.size(), 1u);
}

TEST(Store, PointKeyIgnoresExecutionKnobsButNotSimParameters) {
  const Workload& wl = table2_workloads().front();
  const BatchJob a = make_job(Scheme::parse("2SC"), wl, tiny_sim());
  // Same logical point => same key.
  EXPECT_EQ(point_key(a), point_key(make_job(Scheme::parse("2SC"), wl,
                                             tiny_sim())));
  // A different budget is a different grid point.
  SimConfig other = tiny_sim();
  other.instruction_budget = 20'000;
  EXPECT_NE(point_key(a),
            point_key(make_job(Scheme::parse("2SC"), wl, other)));
  // A different scheme is a different grid point.
  EXPECT_NE(point_key(a),
            point_key(make_job(Scheme::parse("3CCC"), wl, tiny_sim())));
}

// --- the record codec and torn-tail recovery ------------------------------

TEST(Store, LogRoundTripsRecordsAndDetectsTornTail) {
  const std::string dir = fresh_dir("log");
  const std::string path = shard_log_path(dir, 0, 2);
  EXPECT_NE(path.find("shard-0-of-2.log"), std::string::npos);

  JsonValue r1 = JsonValue::object();
  r1.set("cycles", 123);
  JsonValue r2 = JsonValue::object();
  r2.set("cycles", 456);
  {
    ShardLogWriter w(path);
    w.append("key-one", r1);
    w.append("key-two", r2);
  }
  const LogScan intact = scan_log(path);
  ASSERT_EQ(intact.records.size(), 2u);
  EXPECT_FALSE(intact.torn);
  EXPECT_EQ(intact.good_bytes, std::filesystem::file_size(path));
  EXPECT_EQ(intact.records[0].key, "key-one");
  EXPECT_EQ(intact.records[1].key, "key-two");
  EXPECT_EQ(intact.records[1].result.get("cycles").as_int(), 456);

  // A missing file is an empty, untorn log.
  const LogScan missing = scan_log(dir + "/no-such.log");
  EXPECT_TRUE(missing.records.empty());
  EXPECT_FALSE(missing.torn);

  // SIGKILL mid-append: only a prefix of the last record made it out.
  const std::string full = read_file(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() - 5);
  }
  const LogScan torn = scan_log(path);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_TRUE(torn.torn);
  EXPECT_EQ(torn.records[0].key, "key-one");

  // Reopening the writer truncates the torn tail before appending.
  {
    ShardLogWriter w(path);
    w.append("key-three", r2);
  }
  const LogScan recovered = scan_log(path);
  ASSERT_EQ(recovered.records.size(), 2u);
  EXPECT_FALSE(recovered.torn);
  EXPECT_EQ(recovered.records[0].key, "key-one");
  EXPECT_EQ(recovered.records[1].key, "key-three");
}

TEST(Store, CorruptChecksumStopsTheScanAtTheLastGoodRecord) {
  const std::string dir = fresh_dir("corrupt");
  const std::string path = shard_log_path(dir, 0, 1);
  JsonValue r = JsonValue::object();
  r.set("v", 1);
  {
    ShardLogWriter w(path);
    w.append("good", r);
    w.append("flipped", r);
  }
  std::string bytes = read_file(path);
  bytes.back() ^= 0x01;  // flip one payload byte of the second record
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  const LogScan scan = scan_log(path);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.records[0].key, "good");
  // Garbage appended after intact records is likewise quarantined.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << encode_record("good", r) << "XYZ";
  }
  const LogScan tail = scan_log(path);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_TRUE(tail.torn);
  EXPECT_EQ(tail.good_bytes, encode_record("good", r).size());
}

// --- the SimResult JSON round trip ----------------------------------------

TEST(Store, SimResultJsonRoundTripIsBitExact) {
  // Full stats populate every optional corner: merge-node telemetry, the
  // issue histogram, per-thread stall breakdowns.
  std::vector<BatchJob> jobs = small_grid(StatsLevel::kFull);
  jobs.resize(2);
  const std::vector<SimResult> results = run_batch(jobs, {.workers = 1});
  for (const SimResult& r : results) {
    const JsonValue direct = sim_result_to_json(r);
    // Through the actual on-disk representation: dumped and reparsed.
    const JsonValue reread = JsonValue::parse(direct.dump(-1));
    const SimResult back = sim_result_from_json(reread);
    expect_identical(r, back);
    // And the re-serialization is byte-stable.
    EXPECT_EQ(sim_result_to_json(back).dump(-1), direct.dump(-1));
  }
}

// --- the sweep store ------------------------------------------------------

// A store forces the per-job session path: asking for lanes on top of it
// warns once on stderr (naming the ignored value) instead of leaving the
// user mystified about sweep throughput — and the results stay
// bit-identical to the storeless serial reference. No warning without
// lanes.
TEST(Store, StoreWithLanesWarnsAndStaysIdentical) {
  const std::string dir = fresh_dir("lanes_warn");
  std::vector<BatchJob> jobs = small_grid();
  jobs.resize(6);
  const std::vector<SimResult> reference = run_batch(jobs, {.workers = 1});

  auto store =
      SweepStore::open_shard(dir, ShardSpec{0, 1}, test_manifest(1));
  BatchOptions opts;
  opts.workers = 1;
  opts.lanes = 8;
  opts.store = store.get();
  testing::internal::CaptureStderr();
  const std::vector<SimResult> results = run_batch(jobs, opts);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("ignoring --lanes=8"), std::string::npos) << err;
  EXPECT_NE(err.find("session path"), std::string::npos) << err;
  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i)
    expect_identical(reference[i], results[i]);

  BatchOptions quiet;
  quiet.workers = 1;
  quiet.store = store.get();
  testing::internal::CaptureStderr();
  (void)run_batch(jobs, quiet);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Store, ShardsComputeDisjointSubsetsAndUnionIsTheGrid) {
  const std::string dir = fresh_dir("shards");
  const std::vector<BatchJob> jobs = small_grid();
  const std::vector<SimResult> reference = run_batch(jobs, {.workers = 1});

  std::uint64_t computed_total = 0;
  for (unsigned k = 0; k < 2; ++k) {
    auto store = SweepStore::open_shard(dir, ShardSpec{k, 2},
                                        test_manifest(2));
    BatchOptions opts;
    opts.workers = 2;
    opts.store = store.get();
    const std::vector<SimResult> partial = run_batch(jobs, opts);
    const SweepStore::Counters c = store->counters();
    EXPECT_EQ(c.total, jobs.size());
    EXPECT_EQ(c.computed + c.skipped + c.resumed, jobs.size());
    EXPECT_EQ(c.failed, 0u);
    computed_total += c.computed;
    // Own points carry real results, and so do points an earlier shard
    // already logged in this directory (any log resumes any run); only
    // points owned by shards that have not run yet come back defaulted.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const unsigned owner = shard_of(point_key(jobs[i]), 2);
      if (owner <= k)
        expect_identical(partial[i], reference[i]);
      else
        EXPECT_EQ(partial[i].cycles, 0u);
    }
  }
  EXPECT_EQ(computed_total, jobs.size());  // disjoint and complete

  // Merge replay serves the whole grid from the logs, bit-identically.
  auto merged = SweepStore::open_merge(dir);
  BatchOptions opts;
  opts.workers = 1;
  opts.store = merged.get();
  const std::vector<SimResult> replayed = run_batch(jobs, opts);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    expect_identical(replayed[i], reference[i]);
  const SweepStore::Counters c = merged->counters();
  EXPECT_EQ(c.replayed, jobs.size());
  EXPECT_EQ(c.computed, 0u);
}

// The acceptance pin: resuming a finished shard must not re-simulate a
// single grid point — counted at the compute callback itself.
TEST(Store, ResumeRecomputesNothing) {
  const std::string dir = fresh_dir("resume");
  const std::vector<BatchJob> jobs = small_grid();
  std::vector<SimResult> first;
  {
    auto store = SweepStore::open_shard(dir, ShardSpec{0, 1},
                                        test_manifest(1));
    BatchOptions opts;
    opts.workers = 1;
    opts.store = store.get();
    first = run_batch(jobs, opts);
    EXPECT_EQ(store->counters().computed, jobs.size());
    EXPECT_EQ(store->counters().resumed, 0u);
  }
  // Same command again: everything is served from the log.
  auto store = SweepStore::open_shard(dir, ShardSpec{0, 1},
                                      test_manifest(1));
  EXPECT_EQ(store->loaded_points(), jobs.size());
  std::uint64_t simulations = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SimResult r = store->run_point(jobs[i], [&]() -> SimResult {
      ++simulations;
      return SimResult{};
    });
    expect_identical(r, first[i]);
  }
  EXPECT_EQ(simulations, 0u);
  EXPECT_EQ(store->counters().computed, 0u);
  EXPECT_EQ(store->counters().resumed, jobs.size());
}

// One shard's points resume every other run in the directory: a point
// computed by shard 0 is never recomputed by a 1/1 run over the same dir.
TEST(Store, PointsFromOtherShardsAreResumedNotRecomputed) {
  const std::string dir = fresh_dir("cross");
  const std::vector<BatchJob> jobs = small_grid();
  {
    auto store = SweepStore::open_shard(dir, ShardSpec{0, 2},
                                        test_manifest(2));
    BatchOptions opts;
    opts.store = store.get();
    (void)run_batch(jobs, opts);
    EXPECT_GT(store->counters().computed, 0u);
  }
  auto store = SweepStore::open_shard(dir, ShardSpec{1, 2},
                                      test_manifest(2));
  std::uint64_t recomputed_shard0_points = 0;
  for (const BatchJob& job : jobs) {
    if (shard_of(point_key(job), 2) != 0) continue;
    (void)store->run_point(job, [&]() -> SimResult {
      ++recomputed_shard0_points;
      return SimResult{};
    });
  }
  EXPECT_EQ(recomputed_shard0_points, 0u);
}

TEST(Store, ReplayOfAnIncompleteStoreNamesTheResumeCommand) {
  const std::string dir = fresh_dir("incomplete");
  const std::vector<BatchJob> jobs = small_grid();
  {
    // Only shard 0 of 2 ran; shard 1's points are missing.
    auto store = SweepStore::open_shard(dir, ShardSpec{0, 2},
                                        test_manifest(2));
    BatchOptions opts;
    opts.store = store.get();
    (void)run_batch(jobs, opts);
  }
  auto merged = SweepStore::open_merge(dir);
  bool threw = false;
  for (const BatchJob& job : jobs) {
    if (shard_of(point_key(job), 2) != 1) continue;
    try {
      (void)merged->run_point(job, []() -> SimResult { return {}; });
    } catch (const CheckError& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("--shard 1/2"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(dir), std::string::npos);
    }
    break;
  }
  EXPECT_TRUE(threw);
}

TEST(Store, ManifestMismatchFailsLoudly) {
  const std::string dir = fresh_dir("manifest");
  {
    auto store = SweepStore::open_shard(dir, ShardSpec{0, 2},
                                        test_manifest(2));
  }
  // Same sweep, same manifest: fine.
  EXPECT_NO_THROW((void)SweepStore::open_shard(dir, ShardSpec{1, 2},
                                               test_manifest(2)));
  // A different parameter set must not silently mix into the same dir.
  ExperimentParams other;
  other.cfg.sim = tiny_sim();
  other.cfg.sim.instruction_budget = 999;
  EXPECT_THROW((void)SweepStore::open_shard(
                   dir, ShardSpec{0, 2},
                   other.to_manifest_json("fig10", 2)),
               CheckError);
  // Merge of a directory without a manifest is a usage error.
  EXPECT_THROW((void)SweepStore::open_merge(fresh_dir("no_manifest")),
               CheckError);
}

TEST(Store, ManifestRoundTripsThroughExperimentParams) {
  ExperimentParams p;
  p.cfg.sim = tiny_sim();
  p.cfg.sim.stats = StatsLevel::kFull;
  const JsonValue manifest = p.to_manifest_json("table1", 4);
  EXPECT_EQ(manifest.get("experiment").as_string(), "table1");
  EXPECT_EQ(manifest.get("shards").as_int(), 4);

  std::string id;
  const ExperimentParams back =
      ExperimentParams::from_manifest_json(manifest, &id);
  EXPECT_EQ(id, "table1");
  EXPECT_EQ(back.cfg.sim.instruction_budget, 10'000u);
  EXPECT_EQ(back.cfg.sim.timeslice_cycles, 2'500u);
  EXPECT_EQ(back.cfg.sim.stats, StatsLevel::kFull);
  // Replay sees the whole grid: the reconstructed params are unsharded.
  EXPECT_EQ(back.shard_count, 1u);
  EXPECT_TRUE(back.cfg.batch.store == nullptr);
}

// --- the CLI contract: shard + merge == unsharded bytes -------------------

int run_cli(std::vector<std::string> args, std::string* out = nullptr) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) argv.push_back(a.c_str());
  testing::internal::CaptureStdout();
  const int code =
      cvmt_main(static_cast<int>(argv.size()), argv.data());
  const std::string captured = testing::internal::GetCapturedStdout();
  if (out != nullptr) *out = captured;
  return code;
}

void expect_shard_merge_reproduces_unsharded(const std::string& id) {
  const std::string dir = fresh_dir("cli_" + id);
  const std::string unsharded_path = dir + "/unsharded.json";
  const std::string merged_path = dir + "/merged.json";
  const std::string store = dir + "/store";

  ASSERT_EQ(run_cli({"cvmt", "run", id, "--budget=10000",
                     "--timeslice=2500", "--format=json",
                     "--out=" + unsharded_path}),
            0);
  for (unsigned k = 0; k < 4; ++k) {
    std::string summary;
    ASSERT_EQ(run_cli({"cvmt", "run", id, "--budget=10000",
                       "--timeslice=2500",
                       "--shard=" + std::to_string(k) + "/4",
                       "--store=" + store},
                      &summary),
              0)
        << "shard " << k;
    EXPECT_NE(summary.find("computed"), std::string::npos) << summary;
  }
  ASSERT_EQ(run_cli({"cvmt", "merge", "--store=" + store, "--format=json",
                     "--out=" + merged_path}),
            0);
  EXPECT_EQ(read_file(merged_path), read_file(unsharded_path)) << id;
}

TEST(StoreCli, ShardedFig10MergesToTheUnshardedBytes) {
  expect_shard_merge_reproduces_unsharded("fig10");
}

TEST(StoreCli, ShardedTable1MergesToTheUnshardedBytes) {
  expect_shard_merge_reproduces_unsharded("table1");
}

TEST(StoreCli, SingleShardStoreRunIsResumableAndByteIdentical) {
  const std::string dir = fresh_dir("cli_resume");
  const std::string store = dir + "/store";
  std::string plain;
  ASSERT_EQ(run_cli({"cvmt", "run", "fig4", "--budget=10000",
                     "--timeslice=2500", "--format=json"},
                    &plain),
            0);
  // First --store run computes and prints the normal experiment output.
  std::string first;
  ASSERT_EQ(run_cli({"cvmt", "run", "fig4", "--budget=10000",
                     "--timeslice=2500", "--format=json",
                     "--store=" + store},
                    &first),
            0);
  EXPECT_EQ(first, plain);
  // The rerun is served entirely from the logs — same bytes again.
  std::string second;
  ASSERT_EQ(run_cli({"cvmt", "run", "fig4", "--budget=10000",
                     "--timeslice=2500", "--format=json",
                     "--store=" + store},
                    &second),
            0);
  EXPECT_EQ(second, plain);
}

TEST(StoreCli, ShardFlagRequiresStoreAndSingleExperiment) {
  EXPECT_EQ(run_cli({"cvmt", "run", "fig4", "--shard=0/4"}), 2);
  EXPECT_EQ(run_cli({"cvmt", "run", "all", "--store=" +
                                               fresh_dir("cli_all")}),
            2);
  EXPECT_EQ(run_cli({"cvmt", "merge"}), 2);
  EXPECT_EQ(run_cli({"cvmt", "run", "fig4", "--store=" +
                                                fresh_dir("cli_badspec"),
                     "--shard=9/4"}),
            2);
}

TEST(StoreCli, MergeOfAPartialStoreFailsWithTheResumeCommand) {
  const std::string dir = fresh_dir("cli_partial");
  const std::string store = dir + "/store";
  ASSERT_EQ(run_cli({"cvmt", "run", "fig4", "--budget=10000",
                     "--timeslice=2500", "--shard=0/4",
                     "--store=" + store}),
            0);
  testing::internal::CaptureStderr();
  const int code = run_cli({"cvmt", "merge", "--store=" + store});
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("cvmt run fig4"), std::string::npos) << err;
  EXPECT_NE(err.find("--shard"), std::string::npos) << err;
}

}  // namespace
}  // namespace cvmt
