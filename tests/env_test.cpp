// Regression tests for validated environment parsing: malformed values
// must fall back to the default instead of silently becoming 0 (the old
// strtoull path turned CVMT_BUDGET=abc into a zero instruction budget).
#include <gtest/gtest.h>

#include <cstdlib>

#include "support/env.hpp"

namespace cvmt {
namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) { unsetenv(name_); }
  ~EnvGuard() { unsetenv(name_); }
  void set(const char* value) { setenv(name_, value, 1); }

 private:
  const char* name_;
};

constexpr const char* kVar = "CVMT_ENV_TEST_VAR";

TEST(EnvU64, UnsetReturnsFallback) {
  EnvGuard guard(kVar);
  EXPECT_EQ(env_u64(kVar, 123), 123u);
}

TEST(EnvU64, EmptyReturnsFallback) {
  EnvGuard guard(kVar);
  guard.set("");
  EXPECT_EQ(env_u64(kVar, 123), 123u);
}

TEST(EnvU64, ParsesValidValue) {
  EnvGuard guard(kVar);
  guard.set("400000");
  EXPECT_EQ(env_u64(kVar, 123), 400000u);
  guard.set("0");
  EXPECT_EQ(env_u64(kVar, 123), 0u);
  guard.set("18446744073709551615");  // UINT64_MAX
  EXPECT_EQ(env_u64(kVar, 123), 18446744073709551615ull);
}

TEST(EnvU64, NonNumericFallsBack) {
  EnvGuard guard(kVar);
  guard.set("abc");
  EXPECT_EQ(env_u64(kVar, 123), 123u);  // old code returned 0
}

TEST(EnvU64, TrailingGarbageFallsBack) {
  EnvGuard guard(kVar);
  guard.set("123abc");
  EXPECT_EQ(env_u64(kVar, 7), 7u);  // old code truncated to 123
  guard.set("50 000");
  EXPECT_EQ(env_u64(kVar, 7), 7u);
}

TEST(EnvU64, SignsFallBack) {
  EnvGuard guard(kVar);
  guard.set("-5");  // strtoull would wrap to 2^64-5
  EXPECT_EQ(env_u64(kVar, 7), 7u);
  guard.set("+5");
  EXPECT_EQ(env_u64(kVar, 7), 7u);
  guard.set(" -5");
  EXPECT_EQ(env_u64(kVar, 7), 7u);
}

TEST(EnvU64, OutOfRangeFallsBack) {
  EnvGuard guard(kVar);
  guard.set("99999999999999999999999999");
  EXPECT_EQ(env_u64(kVar, 7), 7u);
}

TEST(EnvWord, LowercasesAndFallsBack) {
  EnvGuard guard(kVar);
  EXPECT_EQ(env_word(kVar, "fast"), "fast");  // unset -> fallback
  guard.set("");
  EXPECT_EQ(env_word(kVar, "fast"), "fast");  // empty -> fallback
  guard.set("FULL");
  EXPECT_EQ(env_word(kVar, "fast"), "full");  // case-insensitive
  guard.set("Fast");
  EXPECT_EQ(env_word(kVar, "full"), "fast");
  guard.set("bogus");
  EXPECT_EQ(env_word(kVar, "fast"), "bogus");  // caller validates
}

}  // namespace
}  // namespace cvmt
