// Tests of the per-cycle merge-engine semantics: greedy cascades, atomic
// tree groups, parallel/serial equivalence and priority rotation.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <vector>

#include "core/merge_engine.hpp"
#include "support/rng.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

/// Footprint of an instruction with one ALU op in each listed cluster.
Footprint fp_clusters(std::initializer_list<int> clusters) {
  Instruction i;
  for (int c : clusters) i.add(make_alu(c, 0));
  return Footprint::of(i, kM);
}

/// Footprint of `n` ALU ops in cluster `c`.
Footprint fp_ops(int c, int n) {
  Instruction i;
  for (int s = 0; s < n; ++s) i.add(make_alu(c, s));
  return Footprint::of(i, kM);
}

using Candidates = std::vector<const Footprint*>;

MergeDecision select(MergeEngine& e, const Candidates& c) {
  return e.select(std::span<const Footprint* const>(c.data(), c.size()));
}

TEST(MergeEngine, SingleThreadPassthrough) {
  MergeEngine e(Scheme::single_thread(), kM);
  const Footprint f = fp_clusters({0});
  const MergeDecision d = select(e, {&f});
  EXPECT_EQ(d.issued_mask, 0b1u);
  EXPECT_EQ(d.num_issued, 1);
}

TEST(MergeEngine, SingleThreadStalled) {
  MergeEngine e(Scheme::single_thread(), kM);
  const MergeDecision d = select(e, {nullptr});
  EXPECT_EQ(d.issued_mask, 0u);
  EXPECT_EQ(d.num_issued, 0);
}

TEST(MergeEngine, RejectsWrongCandidateCount) {
  MergeEngine e(Scheme::parse("1S"), kM);
  const Footprint f = fp_clusters({0});
  EXPECT_THROW(select(e, {&f}), CheckError);
}

TEST(MergeEngine, SmtPairMergesCompatible) {
  MergeEngine e(Scheme::parse("1S"), kM, PriorityPolicy::kFixed);
  const Footprint a = fp_ops(0, 2), b = fp_ops(0, 2);
  const MergeDecision d = select(e, {&a, &b});
  EXPECT_EQ(d.issued_mask, 0b11u);
  EXPECT_EQ(d.packet.cluster(0).op_count, 4);
}

TEST(MergeEngine, SmtPairConflictIssuesPriorityThreadOnly) {
  MergeEngine e(Scheme::parse("1S"), kM, PriorityPolicy::kFixed);
  const Footprint a = fp_ops(0, 3), b = fp_ops(0, 2);  // 5 > 4-wide
  const MergeDecision d = select(e, {&a, &b});
  EXPECT_EQ(d.issued_mask, 0b01u);
}

TEST(MergeEngine, CsmtPairConflictAtClusterLevel) {
  MergeEngine e(Scheme::parse("1C"), kM, PriorityPolicy::kFixed);
  const Footprint a = fp_ops(0, 1), b = fp_ops(0, 1);
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);
  const Footprint c = fp_ops(1, 1);
  EXPECT_EQ(select(e, {&a, &c}).issued_mask, 0b11u);
}

TEST(MergeEngine, EmptyInstructionAlwaysMerges) {
  MergeEngine e(Scheme::parse("1C"), kM, PriorityPolicy::kFixed);
  const Footprint busy = fp_clusters({0, 1, 2, 3});
  const Footprint empty = Footprint::of(Instruction{}, kM);
  EXPECT_EQ(select(e, {&busy, &empty}).issued_mask, 0b11u);
}

TEST(MergeEngine, StalledThreadIsSkippedInCascade) {
  MergeEngine e(Scheme::parse("3CCC"), kM, PriorityPolicy::kFixed);
  const Footprint a = fp_clusters({0});
  const Footprint c = fp_clusters({1});
  const MergeDecision d = select(e, {&a, nullptr, &c, nullptr});
  EXPECT_EQ(d.issued_mask, 0b101u);
}

TEST(MergeEngine, CascadeSkipsConflictAndContinues) {
  MergeEngine e(Scheme::parse("3CCC"), kM, PriorityPolicy::kFixed);
  const Footprint t0 = fp_clusters({0});
  const Footprint t1 = fp_clusters({0});  // conflicts with t0
  const Footprint t2 = fp_clusters({1});  // merges after the skip
  const Footprint t3 = fp_clusters({2});
  const MergeDecision d = select(e, {&t0, &t1, &t2, &t3});
  EXPECT_EQ(d.issued_mask, 0b1101u);
  EXPECT_EQ(d.num_issued, 3);
}

TEST(MergeEngine, TreeGroupDropsAtomically) {
  // 2CC: (T0 C T1) C (T2 C T3). Group B merges T2{2},T3{0} into {0,2},
  // which conflicts with group A {0,1} — the WHOLE group stalls, although
  // T2 alone would have merged (paper §4.1 last paragraph).
  MergeEngine tree(Scheme::parse("2CC"), kM, PriorityPolicy::kFixed);
  const Footprint t0 = fp_clusters({0});
  const Footprint t1 = fp_clusters({1});
  const Footprint t2 = fp_clusters({2});
  const Footprint t3 = fp_clusters({0});
  EXPECT_EQ(select(tree, {&t0, &t1, &t2, &t3}).issued_mask, 0b0011u);

  // The cascade 3CCC instead skips only T3.
  MergeEngine cascade(Scheme::parse("3CCC"), kM, PriorityPolicy::kFixed);
  EXPECT_EQ(select(cascade, {&t0, &t1, &t2, &t3}).issued_mask, 0b0111u);
}

TEST(MergeEngine, MixedSchemeMergesSmtFirst) {
  // 2SC3 merges T0,T1 at operation level, then cluster-level with T2,T3.
  MergeEngine e(Scheme::parse("2SC3"), kM, PriorityPolicy::kFixed);
  const Footprint t0 = fp_ops(0, 2);
  const Footprint t1 = fp_ops(0, 2);     // SMT-merges with t0 (4 ops fit)
  const Footprint t2 = fp_clusters({1});
  const Footprint t3 = fp_clusters({0});  // cluster 0 busy -> dropped
  const MergeDecision d = select(e, {&t0, &t1, &t2, &t3});
  EXPECT_EQ(d.issued_mask, 0b0111u);
}

TEST(MergeEngine, PureCsmtCannotDoOperationLevelMerge) {
  MergeEngine e(Scheme::parse("3CCC"), kM, PriorityPolicy::kFixed);
  const Footprint t0 = fp_ops(0, 2);
  const Footprint t1 = fp_ops(0, 2);
  const Footprint t2 = fp_clusters({1});
  const Footprint t3 = fp_clusters({2});
  // t1 shares cluster 0 with t0: skipped by every CSMT level.
  EXPECT_EQ(select(e, {&t0, &t1, &t2, &t3}).issued_mask, 0b1101u);
}

TEST(MergeEngine, RoundRobinRotationAlternatesWinner) {
  MergeEngine e(Scheme::parse("1C"), kM, PriorityPolicy::kRoundRobin);
  const Footprint a = fp_ops(0, 1), b = fp_ops(0, 1);
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);  // rotation 0: T0
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b10u);  // rotation 1: T1
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);
}

TEST(MergeEngine, FixedPolicyStarves) {
  MergeEngine e(Scheme::parse("1C"), kM, PriorityPolicy::kFixed);
  const Footprint a = fp_ops(0, 1), b = fp_ops(0, 1);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);
}

TEST(MergeEngine, NodeStatsCountAttemptsAndRejects) {
  MergeEngine e(Scheme::parse("1C"), kM, PriorityPolicy::kFixed);
  const Footprint a = fp_ops(0, 1), b0 = fp_ops(0, 1), b1 = fp_ops(1, 1);
  select(e, {&a, &b0});  // reject
  select(e, {&a, &b1});  // accept
  select(e, {&a, nullptr});  // no attempt (nothing offered)
  ASSERT_EQ(e.node_stats().size(), 1u);
  EXPECT_EQ(e.node_stats()[0].attempts, 2u);
  EXPECT_EQ(e.node_stats()[0].rejects, 1u);
  EXPECT_DOUBLE_EQ(e.node_stats()[0].reject_rate(), 0.5);
}

TEST(MergeEngine, IssuedHistogramTracksWidth) {
  MergeEngine e(Scheme::parse("3CCC"), kM, PriorityPolicy::kFixed);
  const Footprint t0 = fp_clusters({0});
  const Footprint t1 = fp_clusters({1});
  select(e, {&t0, &t1, nullptr, nullptr});
  select(e, {&t0, nullptr, nullptr, nullptr});
  EXPECT_EQ(e.issued_histogram().bucket(2), 1u);
  EXPECT_EQ(e.issued_histogram().bucket(1), 1u);
  EXPECT_EQ(e.cycles(), 2u);
}

TEST(MergeEngine, PacketFootprintIsUnionOfIssued) {
  MergeEngine e(Scheme::parse("3CCC"), kM, PriorityPolicy::kFixed);
  const Footprint t0 = fp_clusters({0});
  const Footprint t1 = fp_clusters({2});
  const MergeDecision d = select(e, {&t0, &t1, nullptr, nullptr});
  EXPECT_EQ(d.packet.cluster_mask(), 0b0101u);
  EXPECT_EQ(d.packet.total_ops(), 2);
}

TEST(MergeEngine, ImtIssuesExactlyOneThread) {
  MergeEngine e(Scheme::imt(4), kM, PriorityPolicy::kFixed);
  const Footprint a = fp_clusters({0});
  const Footprint b = fp_clusters({1});  // disjoint, but IMT never merges
  const Footprint c = fp_clusters({2});
  const MergeDecision d = select(e, {&a, &b, &c, nullptr});
  EXPECT_EQ(d.issued_mask, 0b0001u);
  EXPECT_EQ(d.num_issued, 1);
}

TEST(MergeEngine, ImtSkipsStalledLeader) {
  MergeEngine e(Scheme::imt(4), kM, PriorityPolicy::kFixed);
  const Footprint b = fp_clusters({1});
  const MergeDecision d = select(e, {nullptr, &b, nullptr, nullptr});
  EXPECT_EQ(d.issued_mask, 0b0010u);
}

TEST(MergeEngine, ImtRoundRobinInterleaves) {
  MergeEngine e(Scheme::imt(2), kM, PriorityPolicy::kRoundRobin);
  const Footprint a = fp_clusters({0}), b = fp_clusters({1});
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b10u);
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);
}

TEST(MergeEngine, BmtSticksUntilLeaderStalls) {
  // IMT scheme + sticky-on-stall policy = Block MultiThreading.
  MergeEngine e(Scheme::imt(2), kM, PriorityPolicy::kStickyOnStall);
  const Footprint a = fp_clusters({0}), b = fp_clusters({1});
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);  // still thread 0
  // Thread 0 stalls: thread 1 issues and takes the lead.
  EXPECT_EQ(select(e, {nullptr, &b}).issued_mask, 0b10u);
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b10u);  // lead stays with 1
  // Thread 1 stalls: the lead moves back.
  EXPECT_EQ(select(e, {&a, nullptr}).issued_mask, 0b01u);
  EXPECT_EQ(select(e, {&a, &b}).issued_mask, 0b01u);
}

// ----------------------------------------------------- Equivalence laws

/// Random candidate pool: footprints of random small instructions plus
/// nullptr (stalled) entries.
class EngineEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Runs both engines on an identical random stream and requires
  /// cycle-exact identical selections.
  void expect_equivalent(const char* scheme_a, const char* scheme_b,
                         PriorityPolicy policy) {
    MergeEngine ea(Scheme::parse(scheme_a), kM, policy);
    MergeEngine eb(Scheme::parse(scheme_b), kM, policy);
    Xoshiro256 rng(GetParam());
    for (int cycle = 0; cycle < 2000; ++cycle) {
      std::array<Footprint, 4> storage;
      Candidates cands(4, nullptr);
      for (int t = 0; t < 4; ++t) {
        if (rng.next_bool(0.2)) continue;  // stalled
        Instruction instr;
        std::uint32_t used[kMaxClusters] = {};
        const int k = 1 + static_cast<int>(rng.next_below(4));
        for (int j = 0; j < k; ++j) {
          const int c = static_cast<int>(rng.next_below(4));
          const int free_slots = 4 - static_cast<int>(
              std::popcount(used[c]));
          if (free_slots == 0) continue;
          const int s = std::countr_zero(~used[c] & 0xFu);
          used[c] |= 1u << s;
          instr.add(make_alu(c, s));
        }
        storage[static_cast<std::size_t>(t)] = Footprint::of(instr, kM);
        cands[static_cast<std::size_t>(t)] =
            &storage[static_cast<std::size_t>(t)];
      }
      const MergeDecision da = select(ea, cands);
      const MergeDecision db = select(eb, cands);
      ASSERT_EQ(da.issued_mask, db.issued_mask)
          << scheme_a << " vs " << scheme_b << " diverged at cycle "
          << cycle;
    }
  }
};

TEST_P(EngineEquivalenceTest, ParallelC4EqualsSerial3CCC) {
  expect_equivalent("C4", "3CCC", PriorityPolicy::kRoundRobin);
}

TEST_P(EngineEquivalenceTest, Parallel2SC3EqualsSerial3SCC) {
  expect_equivalent("2SC3", "3SCC", PriorityPolicy::kRoundRobin);
}

TEST_P(EngineEquivalenceTest, Parallel2C3SEqualsSerialFunctional) {
  expect_equivalent("2C3S", "S(C(C(0,1),2),3)", PriorityPolicy::kFixed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace cvmt
