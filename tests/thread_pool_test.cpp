// Unit tests for the fixed-size worker pool: submission, result and
// exception plumbing through futures, drain-on-destruction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace cvmt {
namespace {

TEST(ThreadPool, HardwareWorkersAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

TEST(ThreadPool, ZeroRequestedWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, MoreTasksThanWorkersAllRun) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing job.
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, DestructorDiscardsQueuedTasks) {
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(1);
    // Occupy the single worker long enough that destruction begins while
    // the other 49 tasks are still queued.
    futures.push_back(pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      return 0;
    }));
    for (int i = 1; i < 50; ++i)
      futures.push_back(pool.submit([i] { return i; }));
  }  // join: running tasks finish, still-queued ones are discarded
  int completed = 0;
  int discarded = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++completed;
    } catch (const std::future_error&) {
      ++discarded;  // broken_promise from a discarded task
    }
  }
  EXPECT_EQ(completed + discarded, 50);
  EXPECT_GT(discarded, 0);
}

TEST(ThreadPool, AwaitedTasksAllRunBeforeDestruction) {
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      futures.push_back(pool.submit([i] { return i; }));
    for (auto& f : futures) f.wait();  // the run_batch usage pattern
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 50 * 49 / 2);
}

TEST(ThreadPool, ResultsIndependentOfWorkerCount) {
  auto run = [](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
      futures.push_back(pool.submit([i] { return 3 * i + 1; }));
    std::vector<int> out;
    for (auto& f : futures) out.push_back(f.get());
    return out;
  };
  const std::vector<int> one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

}  // namespace
}  // namespace cvmt
