// Tests of the hardware cost model: primitive algebra, merge-control
// circuits (Fig 5 shape) and scheme-level costs (Fig 9 relations).
#include <gtest/gtest.h>

#include "cost/gates.hpp"
#include "cost/merge_control_cost.hpp"
#include "cost/scheme_cost.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

SchemeCost cost(const char* scheme) {
  return scheme_cost(Scheme::parse(scheme), kM);
}

TEST(CircuitAlgebra, ThenAddsBoth) {
  const Circuit a{10, 2.0}, b{5, 3.0};
  const Circuit c = a.then(b);
  EXPECT_EQ(c.transistors, 15);
  EXPECT_DOUBLE_EQ(c.delay, 5.0);
}

TEST(CircuitAlgebra, BesideTakesMaxDelay) {
  const Circuit a{10, 2.0}, b{5, 3.0};
  const Circuit c = a.beside(b);
  EXPECT_EQ(c.transistors, 15);
  EXPECT_DOUBLE_EQ(c.delay, 3.0);
}

TEST(CircuitAlgebra, TimesReplicatesArea) {
  const Circuit a{7, 2.0};
  const Circuit c = a.times(4);
  EXPECT_EQ(c.transistors, 28);
  EXPECT_DOUBLE_EQ(c.delay, 2.0);
  EXPECT_EQ(a.times(0).transistors, 0);
}

TEST(Gates, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
}

TEST(Gates, ReduceTree) {
  EXPECT_EQ(gates::reduce_tree(1).transistors, 0);
  EXPECT_DOUBLE_EQ(gates::reduce_tree(1).delay, 0.0);
  EXPECT_EQ(gates::reduce_tree(4).transistors, 18);
  EXPECT_DOUBLE_EQ(gates::reduce_tree(4).delay, 2.0);
  EXPECT_DOUBLE_EQ(gates::reduce_tree(5).delay, 3.0);
}

TEST(Gates, MuxN) {
  EXPECT_EQ(gates::mux_n(1, 8).transistors, 0);
  EXPECT_EQ(gates::mux_n(4, 1).transistors, 3 * 8);
  EXPECT_DOUBLE_EQ(gates::mux_n(4, 1).delay, 2.0);
}

// ------------------------------------------------- Fig 5 control sweeps

TEST(MergeControl, CsmtSerialGrowsLinearly) {
  const auto c2 = csmt_serial_control(2, kM);
  const auto c4 = csmt_serial_control(4, kM);
  const auto c8 = csmt_serial_control(8, kM);
  // One extra identical stage per extra thread.
  const auto stage = csmt_serial_stage(kM);
  EXPECT_EQ(c4.transistors - c2.transistors, 2 * stage.transistors + 2 * 24);
  EXPECT_GT(c8.delay, c4.delay);
  EXPECT_GT(c4.delay, c2.delay);
}

TEST(MergeControl, CsmtParallelAreaGrowsExponentially) {
  const auto p4 = csmt_parallel_control(4, kM);
  const auto p6 = csmt_parallel_control(6, kM);
  const auto p8 = csmt_parallel_control(8, kM);
  // Doubling threads should much more than double the area.
  EXPECT_GT(p6.transistors, 3 * p4.transistors);
  EXPECT_GT(p8.transistors, 3 * p6.transistors);
}

TEST(MergeControl, CsmtParallelDelayStaysFlat) {
  const auto p2 = csmt_parallel_control(2, kM);
  const auto p8 = csmt_parallel_control(8, kM);
  EXPECT_LT(p8.delay, p2.delay + 8.0);  // near-flat growth
  // And parallel always beats serial on delay for >2 threads.
  for (int n = 3; n <= 8; ++n)
    EXPECT_LT(csmt_parallel_control(n, kM).delay,
              csmt_serial_control(n, kM).delay)
        << n;
}

TEST(MergeControl, SmtDwarfsCsmtSerial) {
  for (int n = 2; n <= 8; ++n) {
    const auto smt = smt_serial_control(n, kM);
    const auto csmt = csmt_serial_control(n, kM);
    EXPECT_GT(smt.transistors, 10 * csmt.transistors) << n;
    EXPECT_GT(smt.delay, csmt.delay) << n;
  }
}

TEST(MergeControl, SmtAt8ThreadsIsExtreme) {
  // Fig 5: the SMT curve reaches ~10^4-10^5 transistors and ~90 gate
  // delays at 8 threads, which is the paper's scalability argument.
  const auto smt8 = smt_serial_control(8, kM);
  EXPECT_GT(smt8.transistors, 30'000);
  EXPECT_GT(smt8.delay, 60.0);
}

TEST(MergeControl, CsmtParallelOvertakesSmtInArea) {
  // The exponential parallel implementation eventually costs more area
  // than serial SMT (§3: "grows exponentially with the number of
  // threads").
  EXPECT_LT(csmt_parallel_control(3, kM).transistors,
            smt_serial_control(3, kM).transistors);
  EXPECT_GT(csmt_parallel_control(8, kM).transistors,
            smt_serial_control(8, kM).transistors);
}

TEST(MergeControl, SmtStageRoutingGrowsWithSources) {
  const auto narrow = smt_stage(1, 1, kM);
  const auto wide = smt_stage(3, 1, kM);
  EXPECT_GT(wide.routing.transistors, narrow.routing.transistors);
  EXPECT_EQ(wide.selection.transistors, narrow.selection.transistors);
}

// --------------------------------------------------- Fig 9 scheme costs

TEST(SchemeCost, SingleThreadIsFree) {
  const SchemeCost c = scheme_cost(Scheme::single_thread(), kM);
  EXPECT_EQ(c.transistors, 0);
  EXPECT_DOUBLE_EQ(c.gate_delay, 0.0);
}

TEST(SchemeCost, CsmtOnlySchemesAreCheapest) {
  // §4.2: "Schemes that use only CSMT merging (C4, 2CC and 3CCC) are the
  // cheapest overall" — in both area and delay.
  const char* csmt_only[] = {"C4", "2CC", "3CCC"};
  const char* with_smt[] = {"1S",   "2SC3", "3CSC", "2C3S", "3CCS", "3SCC",
                            "2CS",  "2SC",  "3SSC", "3SCS", "3CSS", "2SS",
                            "3SSS"};
  for (const char* a : csmt_only)
    for (const char* b : with_smt) {
      EXPECT_LT(cost(a).transistors, cost(b).transistors) << a << " " << b;
      EXPECT_LT(cost(a).gate_delay, cost(b).gate_delay) << a << " " << b;
    }
}

TEST(SchemeCost, TreeLowersDelayVersusCascade) {
  // §4.1: balanced trees reduce merge levels and delay.
  EXPECT_LT(cost("2CC").gate_delay, cost("3CCC").gate_delay);
  EXPECT_LT(cost("2SS").gate_delay, cost("3SSS").gate_delay);
}

TEST(SchemeCost, C4HasTheLowestDelay) {
  for (const Scheme& s : Scheme::paper_schemes_4t()) {
    if (s.name() == "C4") continue;
    EXPECT_LT(cost("C4").gate_delay, scheme_cost(s, kM).gate_delay)
        << s.name();
  }
}

TEST(SchemeCost, TransistorsTrackSmtBlockCount) {
  // §4.2: "the number of transistors required by any scheme is dominated
  // by the number of SMT merge control blocks".
  EXPECT_LT(cost("3SCC").transistors, cost("3SSC").transistors);
  EXPECT_LT(cost("3SSC").transistors, cost("3SSS").transistors);
  EXPECT_LT(cost("2CS").transistors, cost("2SC").transistors);
  EXPECT_LT(cost("2SC").transistors, cost("2SS").transistors);
}

TEST(SchemeCost, OneSmtBlockSchemesCostLikeTwoThreadSmt) {
  // §4.2: adding CSMT blocks to 1S barely moves the area needle.
  const auto base = cost("1S").transistors;
  for (const char* s : {"2SC3", "3SCC", "3CSC", "3CCS", "2C3S", "2CS"}) {
    EXPECT_GT(cost(s).transistors, base) << s;
    EXPECT_LT(cost(s).transistors, base + base / 2) << s;
  }
}

TEST(SchemeCost, EarlySmtHidesRoutingDelay) {
  // §4.2: 3SCC and 2SC3 stay close to 1S because the SMT routing overlaps
  // the trailing CSMT levels; 3CCS/3CSC pay the routing at the end.
  const double d1s = cost("1S").gate_delay;
  EXPECT_LE(cost("2SC3").gate_delay, d1s + 3.0);
  EXPECT_LE(cost("3SCC").gate_delay, d1s + 4.0);
  EXPECT_LE(cost("2SC").gate_delay, d1s + 3.0);
  EXPECT_GT(cost("3CCS").gate_delay, cost("3SCC").gate_delay + 3.0);
  EXPECT_GT(cost("3CSC").gate_delay, cost("3SCC").gate_delay);
}

TEST(SchemeCost, SscBeatsScsAndCss) {
  // §4.2: "Parallel computation of the routing also results into the
  // lowest delay for scheme 3SSC compared to similar schemes 3SCS and
  // 3CSS".
  EXPECT_LT(cost("3SSC").gate_delay, cost("3SCS").gate_delay);
  EXPECT_LT(cost("3SSC").gate_delay, cost("3CSS").gate_delay);
}

TEST(SchemeCost, SssIsTheMostExpensiveCascade) {
  for (const Scheme& s : Scheme::paper_schemes_4t()) {
    if (s.name() == "3SSS" || s.name() == "2SS") continue;
    EXPECT_LT(scheme_cost(s, kM).transistors, cost("3SSS").transistors)
        << s.name();
    EXPECT_LT(scheme_cost(s, kM).gate_delay, cost("3SSS").gate_delay)
        << s.name();
  }
}

TEST(SchemeCost, ParallelVariantsCostMoreAreaThanSerial) {
  EXPECT_GT(cost("C4").transistors, cost("3CCC").transistors);
  EXPECT_LT(cost("C4").gate_delay, cost("3CCC").gate_delay);
  EXPECT_GT(cost("2SC3").transistors, cost("3SCC").transistors - 300);
  EXPECT_LE(cost("2SC3").gate_delay, cost("3SCC").gate_delay);
}

TEST(SchemeCost, EightThreadExtensionsAreOrdered) {
  // The general grammar scales past the paper's 4 threads.
  std::vector<MergeKind> all_csmt(7, MergeKind::kCsmt);
  std::vector<MergeKind> one_smt = all_csmt;
  one_smt[0] = MergeKind::kSmt;
  const SchemeCost c8 = scheme_cost(Scheme::parallel_csmt(8), kM);
  const SchemeCost serial8 = scheme_cost(Scheme::cascade(all_csmt), kM);
  const SchemeCost mixed8 = scheme_cost(Scheme::cascade(one_smt), kM);
  EXPECT_LT(c8.gate_delay, serial8.gate_delay);
  EXPECT_GT(c8.transistors, serial8.transistors);
  EXPECT_GT(mixed8.transistors, serial8.transistors);
}

}  // namespace
}  // namespace cvmt
