// JsonValue: construction, deterministic writing, parsing, round trips
// and malformed-input rejection.
#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/json.hpp"

namespace cvmt {
namespace {

TEST(Json, WritesScalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonValue(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectKeepsInsertionOrderAndOverwrites) {
  JsonValue obj = JsonValue::object();
  obj.set("z", 1);
  obj.set("a", 2);
  obj.set("z", 3);  // overwrite keeps position
  EXPECT_EQ(obj.dump(-1), "{\"z\":3,\"a\":2}");
  EXPECT_EQ(obj.get("z").as_int(), 3);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW((void)obj.get("missing"), CheckError);
}

TEST(Json, PrettyPrintIsStable) {
  JsonValue obj = JsonValue::object();
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  obj.set("xs", std::move(arr));
  EXPECT_EQ(obj.dump(2), "{\n  \"xs\": [\n    1,\n    \"two\"\n  ]\n}");
}

TEST(Json, ParsesDocument) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2.5, null, true], "b": {"c": "x\ny"}})");
  EXPECT_EQ(v.get("a").size(), 4u);
  EXPECT_EQ(v.get("a").at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(v.get("a").at(1).as_double(), 2.5);
  EXPECT_TRUE(v.get("a").at(2).is_null());
  EXPECT_TRUE(v.get("a").at(3).as_bool());
  EXPECT_EQ(v.get("b").get("c").as_string(), "x\ny");
}

TEST(Json, NumberRoundTripIsExact) {
  for (const double d : {0.0, -1.0, 3.141592653589793, 1e-300, 1.7e308,
                         0.1, 123456.789}) {
    const JsonValue v = JsonValue::parse(JsonValue(d).dump());
    EXPECT_DOUBLE_EQ(v.as_double(), d);
  }
  for (const std::int64_t i :
       {std::int64_t{0}, std::int64_t{-7},
        std::int64_t{9'007'199'254'740'993}}) {  // > 2^53: double loses it
    const JsonValue v = JsonValue::parse(JsonValue(i).dump());
    EXPECT_EQ(v.as_int(), i);
  }
}

TEST(Json, FullValueRoundTrip) {
  JsonValue obj = JsonValue::object();
  obj.set("name", "fig10");
  obj.set("ok", true);
  JsonValue rows = JsonValue::array();
  JsonValue row = JsonValue::array();
  row.push_back("LLLL");
  row.push_back(1.25);
  row.push_back(JsonValue());
  rows.push_back(std::move(row));
  obj.set("rows", std::move(rows));
  const std::string text = obj.dump();
  EXPECT_EQ(JsonValue::parse(text).dump(), text);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), CheckError);
  EXPECT_THROW((void)JsonValue::parse("{"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("tru"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("1 2"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("-"), CheckError);
}

TEST(Json, TypedAccessorsCheckKind) {
  EXPECT_THROW((void)JsonValue("s").as_int(), CheckError);
  EXPECT_THROW((void)JsonValue(1.0).as_string(), CheckError);
  EXPECT_THROW((void)JsonValue().as_bool(), CheckError);
  // as_double accepts integers (JSON has one number type).
  EXPECT_DOUBLE_EQ(JsonValue(std::int64_t{4}).as_double(), 4.0);
}

TEST(Json, DeepNestingRoundTrips) {
  // 600 nested arrays around one integer: both the writer and the
  // recursive-descent parser must survive deep (but sane) documents.
  constexpr int kDepth = 600;
  JsonValue v(std::int64_t{7});
  for (int i = 0; i < kDepth; ++i) {
    JsonValue arr = JsonValue::array();
    arr.push_back(std::move(v));
    v = std::move(arr);
  }
  const std::string text = v.dump(-1);
  EXPECT_EQ(text.size(), 2 * kDepth + 1u);  // kDepth '['s + "7" + ']'s
  const JsonValue parsed = JsonValue::parse(text);
  const JsonValue* inner = &parsed;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_EQ(inner->size(), 1u);
    inner = &inner->at(0);
  }
  EXPECT_EQ(inner->as_int(), 7);
  EXPECT_EQ(parsed.dump(-1), text);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  // One-, two- and three-byte UTF-8 targets.
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse("\"\\u20AC\"").as_string(),
            "\xe2\x82\xac");  // upper-case hex digits accepted
  EXPECT_EQ(JsonValue::parse("\"a\\u0062c\"").as_string(), "abc");
}

TEST(Json, RejectsMalformedUnicodeEscapes) {
  EXPECT_THROW((void)JsonValue::parse("\"\\u12\""), CheckError);
  EXPECT_THROW((void)JsonValue::parse("\"\\u12G4\""), CheckError);
  EXPECT_THROW((void)JsonValue::parse("\"\\u123"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("\"\\x41\""), CheckError);
}

TEST(Json, LargeU64RoundTripsBitExactly) {
  // JsonValue stores integers as int64; u64 construction is a modular
  // cast, so values above 2^63 print negative but survive a
  // write-parse-cast round trip bit-exactly. Seeds and counters rely on
  // this (fuzz-case os_seed/stream_seed_base are full-range u64s).
  for (const std::uint64_t u :
       {std::uint64_t{0}, std::uint64_t{1} << 53,
        std::uint64_t{0x7fffffffffffffff}, std::uint64_t{1} << 63,
        std::uint64_t{0xdeadbeefcafebabe},
        std::uint64_t{0xffffffffffffffff}}) {
    const JsonValue v = JsonValue::parse(JsonValue(u).dump());
    EXPECT_EQ(static_cast<std::uint64_t>(v.as_int()), u);
  }
}

TEST(Json, IntegerOverflowFallsBackToDouble) {
  // A literal beyond int64 range parses as a (lossy) double rather than
  // failing — JSON has one number type.
  const JsonValue v = JsonValue::parse("123456789012345678901234567890");
  EXPECT_EQ(v.kind(), JsonValue::Kind::kDouble);
  EXPECT_DOUBLE_EQ(v.as_double(), 1.2345678901234568e29);
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW((void)JsonValue::parse("{} {}"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("[1,2] x"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("null,"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("42abc"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("\"ok\"\"extra\""), CheckError);
  // Trailing whitespace is not garbage.
  EXPECT_EQ(JsonValue::parse("7 \n\t ").as_int(), 7);
}

}  // namespace
}  // namespace cvmt
