// Machine-safety invariants of every paper scheme under random candidate
// streams: whatever the merge network selects, the resulting execution
// packet must be executable — per-cluster operation counts within the
// issue width, and the packet footprint exactly the union of the issued
// candidates. A violation here would silently corrupt every IPC figure.
#include <gtest/gtest.h>

#include <array>
#include <bit>

#include "core/merge_engine.hpp"
#include "support/rng.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

/// Random instruction with realistic kind mix and legal placement.
Footprint random_footprint(Xoshiro256& rng) {
  Instruction instr;
  std::uint32_t occupied[kMaxClusters] = {};
  const int k = static_cast<int>(rng.next_below(9));  // 0..8 ops
  const int home = static_cast<int>(rng.next_below(4));
  for (int j = 0; j < k; ++j) {
    const OpKind kinds[] = {OpKind::kAlu, OpKind::kAlu, OpKind::kAlu,
                            OpKind::kMul, OpKind::kLoad, OpKind::kStore,
                            OpKind::kBranch};
    const OpKind kind = kinds[rng.next_below(std::size(kinds))];
    for (int probe = 0; probe < 4; ++probe) {
      const int c = (home + probe) % 4;
      const std::uint32_t free = kM.slots_for(kind) & ~occupied[c];
      if (free == 0) continue;
      const int slot = std::countr_zero(free);
      occupied[c] |= 1u << slot;
      Operation op;
      op.kind = kind;
      op.cluster = static_cast<std::uint8_t>(c);
      op.slot = static_cast<std::uint8_t>(slot);
      instr.add(op);
      break;
    }
  }
  return Footprint::of(instr, kM);
}

class EngineInvariantsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineInvariantsTest, PacketsAlwaysExecutable) {
  const Scheme scheme = Scheme::parse(GetParam());
  MergeEngine engine(scheme, kM, PriorityPolicy::kRoundRobin);
  Xoshiro256 rng(0x5EED ^ std::hash<std::string>{}(GetParam()));
  const int n = scheme.num_threads();

  for (int cycle = 0; cycle < 3000; ++cycle) {
    std::array<Footprint, kMaxThreads> storage;
    std::array<const Footprint*, kMaxThreads> cands{};
    for (int t = 0; t < n; ++t) {
      if (rng.next_bool(0.2)) continue;
      storage[static_cast<std::size_t>(t)] = random_footprint(rng);
      cands[static_cast<std::size_t>(t)] =
          &storage[static_cast<std::size_t>(t)];
    }
    const MergeDecision d = engine.select(std::span<const Footprint* const>(
        cands.data(), static_cast<std::size_t>(n)));

    // 1. Only offering threads can issue.
    for (int t = 0; t < n; ++t) {
      if (cands[static_cast<std::size_t>(t)] == nullptr) {
        ASSERT_EQ(d.issued_mask & (1u << t), 0u) << "issued stalled thread";
      }
    }
    // 2. The packet respects the machine: per-cluster width, and op total
    //    equals the sum of the issued candidates.
    int expected_ops = 0;
    std::array<int, kMaxClusters> expected_count{};
    for (int t = 0; t < n; ++t) {
      if ((d.issued_mask & (1u << t)) == 0) continue;
      const Footprint& fp = storage[static_cast<std::size_t>(t)];
      expected_ops += fp.total_ops();
      for (int c = 0; c < kM.num_clusters; ++c)
        expected_count[static_cast<std::size_t>(c)] +=
            fp.cluster(c).op_count;
    }
    ASSERT_EQ(d.packet.total_ops(), expected_ops);
    for (int c = 0; c < kM.num_clusters; ++c) {
      ASSERT_EQ(d.packet.cluster(c).op_count,
                expected_count[static_cast<std::size_t>(c)]);
      ASSERT_LE(d.packet.cluster(c).op_count, kM.issue_per_cluster)
          << "cluster over-subscribed";
    }
    // 3. At least the highest-priority offering thread issues.
    if (d.issued_mask == 0) {
      bool any = false;
      for (int t = 0; t < n; ++t)
        any |= cands[static_cast<std::size_t>(t)] != nullptr;
      ASSERT_FALSE(any) << "nothing issued despite offers";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSchemes, EngineInvariantsTest,
    ::testing::Values("1S", "1C", "C4", "3CCC", "2CC", "2SC3", "3CSC",
                      "2C3S", "3CCS", "3SCC", "2CS", "2SC", "3SSC", "3SCS",
                      "3CSS", "2SS", "3SSS", "IMT4"));

}  // namespace
}  // namespace cvmt
