// Determinism tests for the batch experiment runner: identical runs are
// bit-identical, and fanning a job grid across any number of workers
// reproduces the serial reference exactly, cell for cell.
#include <gtest/gtest.h>

#include <vector>

#include "exp/batch_runner.hpp"
#include "exp/experiments.hpp"
#include "support/check.hpp"

namespace cvmt {
namespace {

SimConfig tiny_sim() {
  SimConfig sim;
  sim.instruction_budget = 10'000;
  sim.timeslice_cycles = 2'500;
  return sim;
}

/// Asserts every field of two SimResults matches exactly (bit-identical
/// counters and doubles, not approximately equal).
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.idle_cycles, b.idle_cycles);
  EXPECT_EQ(a.ipc, b.ipc);  // exact double equality, on purpose
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    const ThreadResult& ta = a.threads[i];
    const ThreadResult& tb = b.threads[i];
    EXPECT_EQ(ta.benchmark, tb.benchmark);
    EXPECT_EQ(ta.instructions, tb.instructions);
    EXPECT_EQ(ta.ops, tb.ops);
    EXPECT_EQ(ta.stats.bubbles, tb.stats.bubbles);
    EXPECT_EQ(ta.stats.taken_branches, tb.stats.taken_branches);
    EXPECT_EQ(ta.stats.dcache_stall_cycles, tb.stats.dcache_stall_cycles);
    EXPECT_EQ(ta.stats.icache_stall_cycles, tb.stats.icache_stall_cycles);
    EXPECT_EQ(ta.stats.branch_stall_cycles, tb.stats.branch_stall_cycles);
  }
  EXPECT_EQ(a.icache.hits, b.icache.hits);
  EXPECT_EQ(a.icache.total, b.icache.total);
  EXPECT_EQ(a.dcache.hits, b.dcache.hits);
  EXPECT_EQ(a.dcache.total, b.dcache.total);
  ASSERT_EQ(a.issued_per_cycle.num_buckets(), b.issued_per_cycle.num_buckets());
  for (std::size_t i = 0; i < a.issued_per_cycle.num_buckets(); ++i)
    EXPECT_EQ(a.issued_per_cycle.bucket(i), b.issued_per_cycle.bucket(i));
  ASSERT_EQ(a.merge_nodes.size(), b.merge_nodes.size());
  for (std::size_t i = 0; i < a.merge_nodes.size(); ++i) {
    EXPECT_EQ(a.merge_nodes[i].label, b.merge_nodes[i].label);
    EXPECT_EQ(a.merge_nodes[i].attempts, b.merge_nodes[i].attempts);
    EXPECT_EQ(a.merge_nodes[i].rejects, b.merge_nodes[i].rejects);
  }
  EXPECT_EQ(a.os.context_switches, b.os.context_switches);
  EXPECT_EQ(a.os.timeslices, b.os.timeslices);
}

TEST(Determinism, RunWorkloadTwiceIsBitIdentical) {
  const SimConfig sim = tiny_sim();
  const Scheme scheme = Scheme::parse("2SC3");
  const Workload& wl = table2_workloads().front();

  ProgramLibrary lib_a(sim.machine);
  const SimResult a = run_workload(scheme, wl, lib_a, sim);
  ProgramLibrary lib_b(sim.machine);
  const SimResult b = run_workload(scheme, wl, lib_b, sim);
  expect_identical(a, b);
}

TEST(Determinism, SharedAndFreshLibraryAgree) {
  const SimConfig sim = tiny_sim();
  const Scheme scheme = Scheme::parse("3CCC");
  const Workload& wl = table2_workloads().back();

  ProgramLibrary shared(sim.machine);
  const SimResult first = run_workload(scheme, wl, shared, sim);
  const SimResult again = run_workload(scheme, wl, shared, sim);
  expect_identical(first, again);
}

std::vector<BatchJob> small_grid() {
  const SimConfig sim = tiny_sim();
  std::vector<BatchJob> jobs;
  for (const char* name : {"1S", "3CCC", "3SSS"})
    for (const Workload& w : table2_workloads())
      jobs.push_back(make_job(Scheme::parse(name), w, sim));
  return jobs;
}

TEST(BatchRunner, GridIdenticalAcrossWorkerCounts) {
  const std::vector<BatchJob> jobs = small_grid();
  const std::vector<SimResult> serial = run_batch(jobs, {.workers = 1});
  for (unsigned workers : {2u, 5u, 16u}) {
    const std::vector<SimResult> parallel =
        run_batch(jobs, {.workers = workers});
    ASSERT_EQ(parallel.size(), serial.size()) << workers << " workers";
    for (std::size_t i = 0; i < serial.size(); ++i)
      expect_identical(serial[i], parallel[i]);
  }
}

TEST(BatchRunner, MatchesDirectRunWorkload) {
  const std::vector<BatchJob> jobs = small_grid();
  const std::vector<SimResult> batch = run_batch(jobs, {.workers = 4});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ProgramLibrary lib(jobs[i].sim.machine);
    Workload wl;
    for (std::size_t t = 0; t < jobs[i].benchmarks.size(); ++t)
      wl.benchmarks[t] = jobs[i].benchmarks[t];
    expect_identical(batch[i],
                     run_workload(jobs[i].scheme, wl, lib, jobs[i].sim));
  }
}

TEST(BatchRunner, MixedMachineConfigsInOneBatch) {
  const SimConfig small = tiny_sim();
  SimConfig wide = tiny_sim();
  wide.machine = MachineConfig::clustered(2, 8);
  const Workload& wl = table2_workloads().front();
  const std::vector<BatchJob> jobs = {
      make_job(Scheme::parse("3CCC"), wl, small),
      make_job(Scheme::parse("3CCC"), wl, wide),
      make_job(Scheme::parse("3SSS"), wl, small),
  };
  const std::vector<SimResult> serial = run_batch(jobs, {.workers = 1});
  const std::vector<SimResult> parallel = run_batch(jobs, {.workers = 3});
  for (std::size_t i = 0; i < jobs.size(); ++i)
    expect_identical(serial[i], parallel[i]);
  // The two machines genuinely differ.
  EXPECT_NE(serial[0].cycles, serial[1].cycles);
}

TEST(BatchRunner, GroupAveragesUnflattensSweepLayout) {
  const std::vector<double> values = {1.0, 3.0, 2.0, 4.0, 10.0, 20.0};
  const std::vector<double> avg = group_averages(values, 2);
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_EQ(avg[0], 2.0);
  EXPECT_EQ(avg[1], 3.0);
  EXPECT_EQ(avg[2], 15.0);
  EXPECT_EQ(group_averages(values, 6).size(), 1u);
  EXPECT_THROW(group_averages(values, 4), CheckError);  // partial group
  EXPECT_THROW(group_averages(values, 0), CheckError);
}

TEST(BatchRunner, ResolveWorkersClampsToJobs) {
  EXPECT_EQ(resolve_workers({.workers = 8}, 3), 3u);
  EXPECT_EQ(resolve_workers({.workers = 2}, 100), 2u);
  EXPECT_EQ(resolve_workers({.workers = 1}, 100), 1u);
  EXPECT_GE(resolve_workers({.workers = 0}, 100), 1u);
  EXPECT_EQ(resolve_workers({.workers = 8}, 0), 1u);  // empty batch: no pool
}

TEST(BatchRunner, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(run_batch({}, {.workers = 4}).empty());
}

TEST(Experiments, Fig10IdenticalAcrossWorkerCounts) {
  ExperimentConfig cfg;
  cfg.sim = tiny_sim();
  cfg.batch.workers = 1;
  const Fig10Result serial = run_fig10(cfg);
  cfg.batch.workers = 4;
  const Fig10Result parallel = run_fig10(cfg);

  EXPECT_EQ(serial.schemes, parallel.schemes);
  EXPECT_EQ(serial.workloads, parallel.workloads);
  ASSERT_EQ(serial.ipc.size(), parallel.ipc.size());
  for (std::size_t w = 0; w < serial.ipc.size(); ++w)
    EXPECT_EQ(serial.ipc[w], parallel.ipc[w]) << "workload row " << w;
  EXPECT_EQ(serial.average, parallel.average);
}

}  // namespace
}  // namespace cvmt
