// Integration tests of the simulator stack: thread contexts, the
// multithreaded core, the OS scheduler and end-to-end invariants.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace cvmt {
namespace {

const MachineConfig kM = MachineConfig::vex4x4();

SimConfig fast_config() {
  SimConfig cfg;
  cfg.instruction_budget = 30'000;
  cfg.timeslice_cycles = 5'000;
  return cfg;
}

std::vector<std::shared_ptr<const SyntheticProgram>> programs_of(
    ProgramLibrary& lib, std::initializer_list<const char*> names) {
  std::vector<std::shared_ptr<const SyntheticProgram>> out;
  for (const char* n : names) out.push_back(lib.get(n));
  return out;
}

TEST(Simulation, DeterministicAcrossRuns) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "djpeg", "idct", "bzip2"});
  const SimConfig cfg = fast_config();
  const SimResult a = run_simulation(Scheme::parse("3SCC"), progs, cfg);
  const SimResult b = run_simulation(Scheme::parse("3SCC"), progs, cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
}

TEST(Simulation, OsSeedChangesScheduleButRunsComplete) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "djpeg", "idct", "bzip2"});
  SimConfig cfg = fast_config();
  // Long enough that the random schedule composition averages out (the
  // run samples many timeslices of each benchmark mix).
  cfg.instruction_budget = 120'000;
  cfg.timeslice_cycles = 2'000;
  const SimResult a = run_simulation(Scheme::parse("1S"), progs, cfg);
  cfg.os_seed ^= 0xDEAD;
  const SimResult b = run_simulation(Scheme::parse("1S"), progs, cfg);
  EXPECT_GT(a.total_ops, 0u);
  EXPECT_GT(b.total_ops, 0u);
  // Different schedules, same machine: IPC close but not identical.
  EXPECT_NEAR(a.ipc, b.ipc, 0.30 * a.ipc);
}

TEST(Simulation, IpcNeverExceedsIssueWidth) {
  ProgramLibrary lib(kM);
  const auto progs =
      programs_of(lib, {"colorspace", "idct", "imgpipe", "x264"});
  const SimResult r =
      run_simulation(Scheme::parse("3SSS"), progs, fast_config());
  EXPECT_LE(r.ipc, static_cast<double>(kM.total_issue_width()));
  EXPECT_GT(r.ipc, 0.0);
}

TEST(Simulation, StopsWhenFirstThreadFinishesBudget) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"idct", "mcf"});
  SimConfig cfg = fast_config();
  cfg.instruction_budget = 5'000;
  const SimResult r = run_simulation(Scheme::parse("1S"), progs, cfg);
  std::uint64_t max_instrs = 0;
  for (const auto& t : r.threads)
    max_instrs = std::max(max_instrs, t.instructions);
  EXPECT_EQ(max_instrs, cfg.instruction_budget);
}

TEST(Simulation, MaxCyclesGuardStopsRun) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf"});
  SimConfig cfg = fast_config();
  cfg.max_cycles = 1'000;
  const SimResult r = run_simulation(Scheme::single_thread(), progs, cfg);
  EXPECT_EQ(r.cycles, 1'000u);
}

TEST(Simulation, PerfectMemoryNeverSlower) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "cjpeg", "x264", "blowfish"});
  SimConfig real_cfg = fast_config();
  SimConfig perfect_cfg = fast_config();
  perfect_cfg.mem.perfect = true;
  const double real = run_simulation(Scheme::parse("3SSS"), progs,
                                     real_cfg).ipc;
  const double perfect =
      run_simulation(Scheme::parse("3SSS"), progs, perfect_cfg).ipc;
  EXPECT_GE(perfect, real * 0.98);
}

TEST(Simulation, MoreHardwareThreadsHelp) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "blowfish", "x264", "idct"});
  const SimConfig cfg = fast_config();
  const double one =
      run_simulation(Scheme::single_thread(), progs, cfg).ipc;
  const double two = run_simulation(Scheme::parse("1S"), progs, cfg).ipc;
  const double four = run_simulation(Scheme::parse("3SSS"), progs, cfg).ipc;
  EXPECT_GT(two, one * 1.1);
  EXPECT_GT(four, two * 1.1);
}

TEST(Simulation, SmtBeatsCsmtWhichBeatsNothing) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "blowfish", "x264", "idct"});
  const SimConfig cfg = fast_config();
  const double smt = run_simulation(Scheme::parse("3SSS"), progs, cfg).ipc;
  const double csmt = run_simulation(Scheme::parse("3CCC"), progs, cfg).ipc;
  const double single =
      run_simulation(Scheme::single_thread(), progs, cfg).ipc;
  EXPECT_GE(smt, csmt * 0.999);
  EXPECT_GT(csmt, single);
}

TEST(Simulation, MixedSchemesLandBetweenExtremes) {
  ProgramLibrary lib(kM);
  const auto progs =
      programs_of(lib, {"gsmencode", "g721encode", "imgpipe", "colorspace"});
  const SimConfig cfg = fast_config();
  const double smt = run_simulation(Scheme::parse("3SSS"), progs, cfg).ipc;
  const double csmt = run_simulation(Scheme::parse("3CCC"), progs, cfg).ipc;
  const double mixed = run_simulation(Scheme::parse("2SC3"), progs, cfg).ipc;
  EXPECT_GE(mixed, csmt * 0.98);
  EXPECT_LE(mixed, smt * 1.02);
}

TEST(Simulation, SchemeEquivalencesHoldEndToEnd) {
  // C4 == 3CCC and 2SC3 == 3SCC must be cycle-exact in full runs, not just
  // in the engine micro-tests (paper: "identical in terms of performance").
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "cjpeg", "idct", "bzip2"});
  const SimConfig cfg = fast_config();
  const SimResult c4 = run_simulation(Scheme::parse("C4"), progs, cfg);
  const SimResult ccc = run_simulation(Scheme::parse("3CCC"), progs, cfg);
  EXPECT_EQ(c4.cycles, ccc.cycles);
  EXPECT_EQ(c4.total_ops, ccc.total_ops);
  const SimResult sc3 = run_simulation(Scheme::parse("2SC3"), progs, cfg);
  const SimResult scc = run_simulation(Scheme::parse("3SCC"), progs, cfg);
  EXPECT_EQ(sc3.cycles, scc.cycles);
  EXPECT_EQ(sc3.total_ops, scc.total_ops);
}

TEST(Simulation, WorkloadHelperMatchesExplicitPrograms) {
  ProgramLibrary lib(kM);
  lib.build_all();
  const Workload& wl = table2_workloads()[0];
  const SimConfig cfg = fast_config();
  const SimResult via_helper =
      run_workload(Scheme::parse("1S"), wl, lib, cfg);
  std::vector<std::shared_ptr<const SyntheticProgram>> progs;
  for (const auto& n : wl.benchmarks) progs.push_back(lib.get(n));
  const SimResult direct = run_simulation(Scheme::parse("1S"), progs, cfg);
  EXPECT_EQ(via_helper.cycles, direct.cycles);
  EXPECT_EQ(via_helper.total_ops, direct.total_ops);
}

TEST(Simulation, ContextSwitchesHappenAtTimeslices) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "bzip2", "blowfish",
                                       "gsmencode"});
  SimConfig cfg = fast_config();
  cfg.timeslice_cycles = 1'000;
  const SimResult r = run_simulation(Scheme::parse("1S"), progs, cfg);
  // 4 software threads on 2 contexts: every timeslice reschedules.
  EXPECT_GE(r.os.timeslices, r.cycles / cfg.timeslice_cycles);
  EXPECT_GT(r.os.context_switches, 0u);
}

TEST(Simulation, AllSoftwareThreadsMakeProgressUnderRotation) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "bzip2", "blowfish",
                                       "gsmencode"});
  SimConfig cfg = fast_config();
  cfg.timeslice_cycles = 2'000;
  const SimResult r = run_simulation(Scheme::parse("3CCC"), progs, cfg);
  for (const auto& t : r.threads)
    EXPECT_GT(t.instructions, 0u) << t.benchmark;
}

TEST(Simulation, ResultAccountingIsConsistent) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"g721encode", "g721decode"});
  const SimResult r =
      run_simulation(Scheme::parse("1S"), progs, fast_config());
  std::uint64_t thread_ops = 0, thread_instrs = 0;
  for (const auto& t : r.threads) {
    thread_ops += t.ops;
    thread_instrs += t.instructions;
  }
  EXPECT_EQ(thread_ops, r.total_ops);
  EXPECT_EQ(thread_instrs, r.total_instructions);
  EXPECT_NEAR(r.ipc,
              static_cast<double>(r.total_ops) /
                  static_cast<double>(r.cycles),
              1e-12);
}

TEST(Simulation, MergeStatsAreExposed) {
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "djpeg", "idct", "bzip2"});
  const SimResult r =
      run_simulation(Scheme::parse("3SCC"), progs, fast_config());
  ASSERT_EQ(r.merge_nodes.size(), 3u);  // S, C, C blocks
  std::uint64_t attempts = 0;
  for (const auto& n : r.merge_nodes) attempts += n.attempts;
  EXPECT_GT(attempts, 0u);
  EXPECT_GT(r.issued_per_cycle.total(), 0u);
}

TEST(Simulation, SerializedMissesAreSlowerOrEqual) {
  ProgramLibrary lib(kM);
  const auto progs =
      programs_of(lib, {"colorspace", "mcf", "cjpeg", "imgpipe"});
  SimConfig ser = fast_config();
  ser.miss_policy = MissPolicy::kSerialized;
  SimConfig ovl = fast_config();
  ovl.miss_policy = MissPolicy::kOverlapped;
  const double ipc_ser =
      run_simulation(Scheme::parse("3SSS"), progs, ser).ipc;
  const double ipc_ovl =
      run_simulation(Scheme::parse("3SSS"), progs, ovl).ipc;
  EXPECT_GE(ipc_ovl, ipc_ser * 0.999);
}

TEST(Simulation, PrivateCachesRemoveInterThreadConflicts) {
  ProgramLibrary lib(kM);
  const auto progs =
      programs_of(lib, {"mcf", "cjpeg", "colorspace", "bzip2"});
  SimConfig shared = fast_config();
  SimConfig priv = fast_config();
  priv.mem.sharing = CacheSharing::kPrivate;
  const SimResult rs = run_simulation(Scheme::parse("3SSS"), progs, shared);
  const SimResult rp = run_simulation(Scheme::parse("3SSS"), progs, priv);
  EXPECT_GE(rp.dcache.rate(), rs.dcache.rate() - 0.02);
}

TEST(Simulation, BaselineLadderIsOrdered) {
  // Single-thread < BMT/IMT (stall hiding only) < CSMT (adds cluster
  // packing) <= SMT (adds operation packing): the related-work ladder.
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "blowfish", "cjpeg", "idct"});
  SimConfig cfg = fast_config();
  const double single =
      run_simulation(Scheme::single_thread(), progs, cfg).ipc;
  SimConfig bmt_cfg = cfg;
  bmt_cfg.priority = PriorityPolicy::kStickyOnStall;
  const double bmt = run_simulation(Scheme::imt(4), progs, bmt_cfg).ipc;
  const double imt = run_simulation(Scheme::imt(4), progs, cfg).ipc;
  const double csmt = run_simulation(Scheme::parse("3CCC"), progs, cfg).ipc;
  const double smt = run_simulation(Scheme::parse("3SSS"), progs, cfg).ipc;
  EXPECT_GT(bmt, single * 1.05);
  EXPECT_GT(imt, single * 1.05);
  EXPECT_GT(csmt, std::max(imt, bmt));
  EXPECT_GE(smt, csmt);
}

TEST(Simulation, GenericMachineShapesRun) {
  for (const auto& [clusters, width] :
       {std::pair{2, 8}, std::pair{8, 2}, std::pair{2, 4}}) {
    const MachineConfig machine = MachineConfig::clustered(clusters, width);
    ProgramLibrary lib(machine);
    const auto progs = programs_of(lib, {"mcf", "djpeg"});
    SimConfig cfg = fast_config();
    cfg.machine = machine;
    cfg.instruction_budget = 10'000;
    const SimResult r = run_simulation(Scheme::parse("1S"), progs, cfg);
    EXPECT_GT(r.ipc, 0.0) << clusters << "x" << width;
    EXPECT_LE(r.ipc, machine.total_issue_width()) << clusters << "x"
                                                  << width;
  }
}

TEST(Simulation, SwitchPoliciesRunDeterministicallyAndDiffer) {
  // 4 software threads on 2 contexts force real timeslice decisions.
  ProgramLibrary lib(kM);
  const auto progs = programs_of(lib, {"mcf", "bzip2", "blowfish",
                                       "gsmencode"});
  SimConfig cfg = fast_config();
  cfg.timeslice_cycles = 1'000;
  std::vector<std::uint64_t> cycles;
  for (const SwitchPolicyKind policy :
       {SwitchPolicyKind::kRandomTimeslice, SwitchPolicyKind::kPrestall,
        SwitchPolicyKind::kPoststall}) {
    cfg.switch_policy = policy;
    const SimResult a = run_simulation(Scheme::parse("1S"), progs, cfg);
    const SimResult b = run_simulation(Scheme::parse("1S"), progs, cfg);
    EXPECT_EQ(a.cycles, b.cycles) << to_string(policy);
    EXPECT_EQ(a.total_ops, b.total_ops) << to_string(policy);
    // Every software thread still progresses under every policy.
    for (const auto& t : a.threads)
      EXPECT_GT(t.instructions, 0u)
          << to_string(policy) << " starved " << t.benchmark;
    cycles.push_back(a.cycles);
  }
  // The policies genuinely reschedule differently (same workload, same
  // budget, different interleavings -> different cycle counts).
  EXPECT_FALSE(cycles[0] == cycles[1] && cycles[1] == cycles[2]);
}

TEST(Simulation, HeterogeneousMachineRunsEndToEnd) {
  const ClusterShape shapes[4] = {
      {4, 0b0011, 0b0100, 0b1000},
      {4, 0b0011, 0b0100, 0b1000},
      {2, 0b01, 0b10, 0b10},
      {2, 0b00, 0b10, 0b10},
  };
  const MachineConfig het = MachineConfig::heterogeneous_of(shapes, 4);
  ProgramLibrary lib(het);
  const auto progs = programs_of(lib, {"mcf", "djpeg", "idct", "bzip2"});
  SimConfig cfg = fast_config();
  cfg.machine = het;
  cfg.instruction_budget = 10'000;
  for (const char* scheme : {"1S", "3CCC", "3SSS"}) {
    const SimResult a = run_simulation(Scheme::parse(scheme), progs, cfg);
    const SimResult b = run_simulation(Scheme::parse(scheme), progs, cfg);
    EXPECT_GT(a.ipc, 0.0) << scheme;
    EXPECT_LE(a.ipc, het.total_issue_width()) << scheme;
    EXPECT_EQ(a.cycles, b.cycles) << scheme;
  }
}

TEST(Simulation, BankConflictsSlowDownMergedMemoryTraffic) {
  ProgramLibrary lib(kM);
  const auto progs =
      programs_of(lib, {"mcf", "cjpeg", "colorspace", "imgpipe"});
  SimConfig flat = fast_config();
  SimConfig banked = fast_config();
  banked.mem.dcache_banks = 2;
  banked.mem.bank_conflict_penalty = 4;
  const SimResult rf = run_simulation(Scheme::parse("3SSS"), progs, flat);
  const SimResult rb = run_simulation(Scheme::parse("3SSS"), progs, banked);
  std::uint64_t conflict_cycles = 0;
  for (const auto& t : rb.threads)
    conflict_cycles += t.stats.bank_conflict_cycles;
  for (const auto& t : rf.threads)
    EXPECT_EQ(t.stats.bank_conflict_cycles, 0u);  // unbanked: never charged
  // SMT merges co-issue memory ops, so some conflicts must occur. The
  // added stalls shift timeslice alignment, so allow a little slack in
  // the aggregate comparison rather than demanding strict monotonicity.
  EXPECT_GT(conflict_cycles, 0u);
  EXPECT_GE(rb.cycles + rb.cycles / 20, rf.cycles);
}

TEST(Simulation, L2ReducesMissCostOnRethrashedSets) {
  ProgramLibrary lib(kM);
  const auto progs =
      programs_of(lib, {"mcf", "cjpeg", "colorspace", "bzip2"});
  SimConfig small_l1 = fast_config();
  small_l1.mem.dcache = CacheConfig{4096, 64, 2, 20};  // thrashes
  small_l1.mem.icache = small_l1.mem.dcache;
  SimConfig with_l2 = small_l1;
  with_l2.mem.has_l2 = true;
  with_l2.mem.l2 = CacheConfig{256 * 1024, 64, 8, 80};
  const SimResult r1 = run_simulation(Scheme::parse("3SSS"), progs,
                                      small_l1);
  const SimResult r2 = run_simulation(Scheme::parse("3SSS"), progs,
                                      with_l2);
  EXPECT_EQ(r1.l2.total, 0u);   // no L2 configured: counter stays dark
  EXPECT_GT(r2.l2.total, 0u);   // every L1 miss probes the L2
  EXPECT_GT(r2.l2.hits, 0u);    // and the big L2 absorbs rethrash misses
}

TEST(Simulation, RejectsEmptyWorkload) {
  EXPECT_THROW(
      (void)run_simulation(Scheme::parse("1S"), {}, fast_config()),
      CheckError);
}

TEST(Simulation, RejectsProgramForDifferentMachine) {
  ProgramLibrary lib8(MachineConfig::vex4x2());
  const auto progs = programs_of(lib8, {"mcf"});
  EXPECT_THROW((void)run_simulation(Scheme::single_thread(), progs,
                                    fast_config()),
               CheckError);
}

}  // namespace
}  // namespace cvmt
