// The cvmt experiment driver: one binary that lists and runs every
// registered experiment.
//
//   cvmt list
//   cvmt run fig10 --fast --format=json
//   cvmt run all --format=csv
//   cvmt run fig10 --store=sweep/ --shard=0/4   # crash-safe shard
//   cvmt merge --store=sweep/ --format=json     # fold the shard logs
//
// All logic lives in src/exp/driver.cpp so the tests can exercise it.
#include "exp/driver.hpp"

int main(int argc, char** argv) { return cvmt::cvmt_main(argc, argv); }
