// Pluggable thread-switch policies for the OS scheduler.
//
// The paper's multitasking environment (§5.1) replaces descheduled threads
// with randomly picked runnable ones at every timeslice expiry; that is the
// kRandomTimeslice policy and the default everywhere. The prestall /
// poststall family follows simtrax's ThreadProcessor scheduling schemes,
// transplanted to OS-timeslice granularity: prestall rotates the resident
// set round-robin every slice (switch before stalls can bite), poststall
// keeps residents until they actually stall and only replaces the stalled
// ones. Policies are selected per machine from `.machine` files
// (isa/machine_file.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "sim/thread_context.hpp"
#include "support/check.hpp"

namespace cvmt {

class MultithreadedCore;

enum class SwitchPolicyKind : std::uint8_t {
  kRandomTimeslice,  ///< paper §5.1: random replacement each slice (default)
  kPrestall,         ///< round-robin rotation each slice (simtrax PRESTALL)
  kPoststall,        ///< replace only stalled residents (simtrax POSTSTALL)
};

[[nodiscard]] const char* to_string(SwitchPolicyKind kind);

/// Parses "random" / "prestall" / "poststall". Returns false (leaving `out`
/// untouched) on unknown names.
[[nodiscard]] bool switch_policy_from_string(std::string_view name,
                                             SwitchPolicyKind& out);

/// The thread-switch decision, invoked at every timeslice boundary: fill
/// `next[0..next.size())` (one entry per hardware thread slot, prefilled
/// with nullptr) with the software threads to run for the coming slice.
/// The OsScheduler applies the assignment and keeps the switch statistics.
class SwitchPolicy {
 public:
  virtual ~SwitchPolicy() = default;

  virtual void pick(std::span<ThreadContext* const> pool,
                    const MultithreadedCore& core, std::uint64_t cycle,
                    std::vector<ThreadContext*>& next) = 0;

  /// Rewinds all mutable decision state to the freshly-constructed value
  /// under a (possibly new) seed, so one policy instance can serve many
  /// runs back to back (the batch engine recycles policies per lane).
  /// Bit-identical to constructing a new policy with that seed.
  virtual void reset(std::uint64_t seed) = 0;

  /// True when the pick sequence is *oblivious*: as long as no pooled
  /// thread is done, every decision depends only on (pool size, slot
  /// count) and the policy's own state — never on the threads' execution
  /// state. An oblivious policy's whole pick sequence is a pure function
  /// of its reset seed, so runs sharing (policy, seed, sizes) share it;
  /// the batch engine records it once via pick_indices and replays it
  /// (sim/switch_replay.hpp). Poststall inspects stall state and is the
  /// one built-in that is not oblivious.
  [[nodiscard]] virtual bool oblivious() const { return false; }

  /// pick() in index form, valid only for oblivious policies with no done
  /// thread in the pool: writes min(slots, pool_size) pool indices (the
  /// threads assigned to slots 0..take) and advances the policy state
  /// exactly as the equivalent pick() call would — the two are
  /// interchangeable draw for draw.
  virtual void pick_indices(int /*pool_size*/, int /*slots*/,
                            std::vector<std::uint8_t>& /*out*/) {
    CVMT_CHECK_MSG(false, "policy is not oblivious");
  }
};

/// Factory for the built-in policies. `seed` feeds kRandomTimeslice's RNG
/// (the deterministic policies ignore it). The returned policy carries all
/// mutable decision state, so one policy instance serves one run.
[[nodiscard]] std::unique_ptr<SwitchPolicy> make_switch_policy(
    SwitchPolicyKind kind, std::uint64_t seed);

}  // namespace cvmt
