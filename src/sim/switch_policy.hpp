// Pluggable thread-switch policies for the OS scheduler.
//
// The paper's multitasking environment (§5.1) replaces descheduled threads
// with randomly picked runnable ones at every timeslice expiry; that is the
// kRandomTimeslice policy and the default everywhere. The prestall /
// poststall family follows simtrax's ThreadProcessor scheduling schemes,
// transplanted to OS-timeslice granularity: prestall rotates the resident
// set round-robin every slice (switch before stalls can bite), poststall
// keeps residents until they actually stall and only replaces the stalled
// ones. Policies are selected per machine from `.machine` files
// (isa/machine_file.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/thread_context.hpp"

namespace cvmt {

class MultithreadedCore;

enum class SwitchPolicyKind : std::uint8_t {
  kRandomTimeslice,  ///< paper §5.1: random replacement each slice (default)
  kPrestall,         ///< round-robin rotation each slice (simtrax PRESTALL)
  kPoststall,        ///< replace only stalled residents (simtrax POSTSTALL)
};

[[nodiscard]] const char* to_string(SwitchPolicyKind kind);

/// Parses "random" / "prestall" / "poststall". Returns false (leaving `out`
/// untouched) on unknown names.
[[nodiscard]] bool switch_policy_from_string(std::string_view name,
                                             SwitchPolicyKind& out);

/// The thread-switch decision, invoked at every timeslice boundary: fill
/// `next[0..next.size())` (one entry per hardware thread slot, prefilled
/// with nullptr) with the software threads to run for the coming slice.
/// The OsScheduler applies the assignment and keeps the switch statistics.
class SwitchPolicy {
 public:
  virtual ~SwitchPolicy() = default;

  virtual void pick(
      const std::vector<std::shared_ptr<ThreadContext>>& pool,
      const MultithreadedCore& core, std::uint64_t cycle,
      std::vector<ThreadContext*>& next) = 0;
};

/// Factory for the built-in policies. `seed` feeds kRandomTimeslice's RNG
/// (the deterministic policies ignore it). The returned policy carries all
/// mutable decision state, so one policy instance serves one run.
[[nodiscard]] std::unique_ptr<SwitchPolicy> make_switch_policy(
    SwitchPolicyKind kind, std::uint64_t seed);

}  // namespace cvmt
