#include "sim/os_scheduler.hpp"

#include <algorithm>

namespace cvmt {

OsScheduler::OsScheduler(std::vector<std::shared_ptr<ThreadContext>> threads,
                         std::uint64_t timeslice, std::uint64_t seed)
    : threads_(std::move(threads)), timeslice_(timeslice), rng_(seed) {
  CVMT_CHECK_MSG(!threads_.empty(), "workload needs at least one thread");
  CVMT_CHECK_MSG(timeslice_ >= 1, "timeslice must be positive");
}

void OsScheduler::reschedule(MultithreadedCore& core) {
  // Runnable = not yet at budget. (The run stops at the first completion,
  // so in practice all threads are runnable here.)
  std::vector<ThreadContext*> runnable;
  for (const auto& t : threads_)
    if (!t->done()) runnable.push_back(t.get());

  // Random replacement (paper: "replacement threads are picked at random"):
  // Fisher-Yates prefix shuffle of the runnable pool.
  const int slots = core.num_slots();
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(slots),
                            runnable.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j =
        i + rng_.next_below(runnable.size() - i);
    std::swap(runnable[i], runnable[j]);
  }
  for (int s = 0; s < slots; ++s) {
    ThreadContext* next =
        static_cast<std::size_t>(s) < take
            ? runnable[static_cast<std::size_t>(s)]
            : nullptr;
    if (core.thread(s) != next) ++stats_.context_switches;
    core.set_thread(s, next);
  }
  ++stats_.timeslices;
}

std::uint64_t OsScheduler::run(MultithreadedCore& core,
                               std::uint64_t max_cycles) {
  // One timeslice per iteration: reschedule at the slice boundary, then
  // hand the whole window to the core. The core fast-forwards all-stalled
  // stretches inside the window; clamping the window at the boundary
  // guarantees a jump never skips a reschedule point.
  std::uint64_t cycle = 0;
  while (cycle < max_cycles) {
    if (cycle % timeslice_ == 0) reschedule(core);
    const std::uint64_t slice_end =
        std::min(max_cycles, cycle - cycle % timeslice_ + timeslice_);
    bool any_done = false;
    cycle = core.run_until(cycle, slice_end, any_done);
    if (any_done) break;  // the finishing cycle is already counted
  }
  return cycle;
}

}  // namespace cvmt
