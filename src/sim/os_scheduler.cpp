#include "sim/os_scheduler.hpp"

#include <algorithm>

namespace cvmt {

OsScheduler::OsScheduler(std::vector<std::shared_ptr<ThreadContext>> threads,
                         std::uint64_t timeslice, std::uint64_t seed,
                         SwitchPolicyKind policy)
    : threads_(std::move(threads)),
      timeslice_(timeslice),
      policy_(make_switch_policy(policy, seed)) {
  CVMT_CHECK_MSG(!threads_.empty(), "workload needs at least one thread");
  CVMT_CHECK_MSG(timeslice_ >= 1, "timeslice must be positive");
  pool_.reserve(threads_.size());
  for (const auto& t : threads_) pool_.push_back(t.get());
}

void OsScheduler::reschedule(MultithreadedCore& core, std::uint64_t cycle) {
  const int slots = core.num_slots();
  next_.assign(static_cast<std::size_t>(slots), nullptr);
  policy_->pick(pool_, core, cycle, next_);
  for (int s = 0; s < slots; ++s) {
    ThreadContext* next = next_[static_cast<std::size_t>(s)];
    if (core.thread(s) != next) ++stats_.context_switches;
    core.set_thread(s, next);
  }
  ++stats_.timeslices;
}

std::uint64_t OsScheduler::run(MultithreadedCore& core,
                               std::uint64_t max_cycles) {
  // One timeslice per iteration: reschedule at the slice boundary, then
  // hand the whole window to the core. The core fast-forwards all-stalled
  // stretches inside the window; clamping the window at the boundary
  // guarantees a jump never skips a reschedule point.
  std::uint64_t cycle = 0;
  while (cycle < max_cycles) {
    if (cycle % timeslice_ == 0) reschedule(core, cycle);
    const std::uint64_t slice_end =
        std::min(max_cycles, cycle - cycle % timeslice_ + timeslice_);
    bool any_done = false;
    cycle = core.run_until(cycle, slice_end, any_done);
    if (any_done) break;  // the finishing cycle is already counted
  }
  return cycle;
}

}  // namespace cvmt
