#include "sim/session.hpp"

#include <bit>
#include <utility>

#include "support/check.hpp"

namespace cvmt {
namespace {

// --- canonical cache keys -------------------------------------------------
// Keys are exact: integers in decimal, doubles by bit pattern (two profiles
// differing in the last ulp are different artifacts — cheaper and safer
// than deciding a tolerance).

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += ',';
}

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
  out += ',';
}

void append_double(std::string& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

void append_machine(std::string& out, const MachineConfig& m) {
  append_i64(out, m.num_clusters);
  append_i64(out, m.issue_per_cluster);
  append_u64(out, m.mul_slot_mask);
  append_u64(out, m.mem_slot_mask);
  append_u64(out, m.branch_slot_mask);
  append_i64(out, m.alu_latency);
  append_i64(out, m.mul_latency);
  append_i64(out, m.mem_latency);
  append_i64(out, m.taken_branch_penalty);
  // Heterogeneous machines extend the key with the per-cluster shapes;
  // homogeneous machines keep the exact legacy key bytes.
  if (m.heterogeneous) {
    out += "het:";
    for (int c = 0; c < m.num_clusters; ++c) {
      const ClusterShape& s = m.per_cluster[static_cast<std::size_t>(c)];
      append_i64(out, s.issue_width);
      append_u64(out, s.mul_slot_mask);
      append_u64(out, s.mem_slot_mask);
      append_u64(out, s.branch_slot_mask);
    }
  }
}

std::string profile_program_key(const BenchmarkProfile& p,
                                const MachineConfig& machine) {
  std::string key = "P|";
  key += p.name;
  key += '|';
  key += to_char(p.ilp);
  key += '|';
  append_double(key, p.target_ipc_real);
  append_double(key, p.target_ipc_perfect);
  append_i64(key, p.num_loops);
  append_double(key, p.mean_body_instrs);
  append_double(key, p.mean_trip_count);
  append_double(key, p.mean_ops_per_instr);
  append_double(key, p.mem_op_frac);
  append_double(key, p.store_frac);
  append_double(key, p.mul_op_frac);
  append_double(key, p.mid_branch_frac);
  append_double(key, p.mid_branch_taken);
  append_double(key, p.ops_per_cluster_target);
  append_u64(key, p.hot_bytes);
  append_u64(key, p.hot_stride);
  append_i64(key, p.assumed_miss_penalty);
  append_u64(key, p.code_bytes_per_instr);
  append_u64(key, p.seed);
  key += '@';
  append_machine(key, machine);
  return key;
}

}  // namespace

// --- CompiledScheme -------------------------------------------------------

CompiledScheme::CompiledScheme(Scheme scheme, const MachineConfig& machine)
    : scheme_(std::move(scheme)), machine_(machine) {
  machine_.validate();
  plan_ = std::make_shared<const MergePlan>(scheme_, machine_);
  key_ = make_key(scheme_, machine_);
}

std::string CompiledScheme::make_key(const Scheme& scheme,
                                     const MachineConfig& machine) {
  // The display name is keyed alongside the canonical tree: SimResult
  // carries the name, so "3SCC" and a functionally identical
  // "C(C(S(0,1),2),3)" must not share one artifact.
  std::string key = "S|";
  key += scheme.name();
  key += '|';
  key += scheme.canonical();
  key += '@';
  append_machine(key, machine);
  return key;
}

// --- ArtifactCache --------------------------------------------------------

template <typename T, typename Builder>
std::shared_ptr<const T> ArtifactCache::lookup_or_build(
    SlotMap<T>& entries, const std::string& key, std::uint64_t* hits,
    std::uint64_t* misses, Builder&& build) {
  std::shared_ptr<Slot<T>> slot;
  std::promise<std::shared_ptr<const T>> promise;
  std::function<void(std::string_view)> hook;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = entries.find(key); it != entries.end()) {
      ++*hits;
      slot = it->second;
    } else {
      ++*misses;
      builder = true;
      slot = std::make_shared<Slot<T>>();
      slot->future = promise.get_future().share();
      entries.emplace(key, slot);
      hook = build_hook_;
    }
  }
  if (!builder) return slot->future.get();  // waits on an in-flight build

  // Build outside the cache mutex: misses on *other* keys proceed in
  // parallel; misses on this key block on the future installed above.
  try {
    if (hook) hook(key);
    std::shared_ptr<const T> built = build();
    promise.set_value(built);
    return built;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mu_);
    // Evict only our own slot — a clear() may have dropped it already
    // and a successor entry must not be collateral damage.
    if (auto it = entries.find(key);
        it != entries.end() && it->second == slot)
      entries.erase(it);
    throw;
  }
}

std::shared_ptr<const CompiledScheme> ArtifactCache::scheme(
    const Scheme& scheme, const MachineConfig& machine) {
  const std::string key = CompiledScheme::make_key(scheme, machine);
  return lookup_or_build(schemes_, key, &stats_.scheme_hits,
                         &stats_.scheme_misses, [&] {
                           return std::make_shared<const CompiledScheme>(
                               scheme, machine);
                         });
}

std::shared_ptr<const SyntheticProgram> ArtifactCache::program(
    const BenchmarkProfile& profile, const MachineConfig& machine) {
  const std::string key = profile_program_key(profile, machine);
  return lookup_or_build(programs_, key, &stats_.program_hits,
                         &stats_.program_misses, [&] {
                           return std::make_shared<const SyntheticProgram>(
                               profile, machine);
                         });
}

std::shared_ptr<const SyntheticProgram> ArtifactCache::program(
    std::string_view benchmark, const MachineConfig& machine) {
  return program(profile_by_name(benchmark), machine);
}

std::shared_ptr<const CompiledWorkload> ArtifactCache::workload(
    std::span<const std::string> benchmarks, const MachineConfig& machine) {
  std::string key = "W|";
  for (const std::string& b : benchmarks) {
    key += b;
    key += ',';
  }
  key += '@';
  append_machine(key, machine);

  // The workload build pulls its member programs through program(), so a
  // cold workload's programs build under their own per-key locks — two
  // cold workloads sharing a program share its one build too.
  return lookup_or_build(
      workloads_, key, &stats_.workload_hits, &stats_.workload_misses,
      [&]() -> std::shared_ptr<const CompiledWorkload> {
        auto compiled = std::make_shared<CompiledWorkload>();
        compiled->key = key;
        compiled->programs.reserve(benchmarks.size());
        for (const std::string& b : benchmarks)
          compiled->programs.push_back(program(b, machine));
        return compiled;
      });
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  schemes_.clear();
  programs_.clear();
  workloads_.clear();
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schemes_.size() + programs_.size() + workloads_.size();
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::set_build_hook(
    std::function<void(std::string_view)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  build_hook_ = std::move(hook);
}

ArtifactCache& ArtifactCache::global() {
  static ArtifactCache cache;
  return cache;
}

// --- SimInstance ----------------------------------------------------------

std::shared_ptr<const CompiledScheme> SimInstance::checked(
    std::shared_ptr<const CompiledScheme> scheme) {
  CVMT_CHECK_MSG(scheme != nullptr, "SimInstance needs a compiled scheme");
  return scheme;
}

SimInstance::SimInstance(std::shared_ptr<const CompiledScheme> scheme,
                         const SimConfig& config)
    : scheme_(checked(std::move(scheme))),
      config_(config),
      mem_(config_.mem, scheme_->scheme().num_threads()),
      core_(scheme_->machine(), scheme_->scheme(), scheme_->plan(),
            config_.priority, mem_, config_.miss_policy,
            CoreOptions{config_.stats, config_.eval_mode,
                        config_.stall_fast_forward}) {
  CVMT_CHECK_MSG(config_.machine == scheme_->machine(),
                 "SimConfig.machine must equal the compiled scheme's "
                 "machine");
}

void SimInstance::set_config(const SimConfig& config) {
  CVMT_CHECK_MSG(config.machine == scheme_->machine(),
                 "SimInstance is bound to its compiled scheme's machine");
  // A memory-geometry change is the one knob construction bakes into the
  // arrays; everything else is applied by run()'s entry reset.
  const bool mem_changed = !(config.mem == config_.mem);
  config_ = config;
  if (mem_changed)
    mem_ = MemorySystem(config_.mem, scheme_->scheme().num_threads());
}

void SimInstance::reset() {
  mem_.reset();
  core_.reset(config_.priority, config_.miss_policy,
              CoreOptions{config_.stats, config_.eval_mode,
                          config_.stall_fast_forward});
  threads_.clear();
}

SimResult SimInstance::run(
    std::span<const std::shared_ptr<const SyntheticProgram>> programs) {
  CVMT_CHECK_MSG(!programs.empty(), "empty workload");

  // In-place reset of all run state — bit-identical to constructing every
  // component afresh (the golden tests pin this), reusing the allocations.
  mem_.reset();
  core_.reset(config_.priority, config_.miss_policy,
              CoreOptions{config_.stats, config_.eval_mode,
                          config_.stall_fast_forward});
  if (threads_.size() > programs.size()) threads_.resize(programs.size());
  threads_.reserve(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    CVMT_CHECK(programs[i] != nullptr);
    CVMT_CHECK_MSG(programs[i]->machine() == config_.machine,
                   "program compiled for a different machine");
    const std::uint64_t stream_seed =
        config_.stream_seed_base + 0x1000ULL * i;
    if (i < threads_.size())
      threads_[i]->reset(programs[i]->profile().name, programs[i],
                         stream_seed, config_.instruction_budget);
    else
      threads_.push_back(std::make_shared<ThreadContext>(
          programs[i]->profile().name, programs[i], stream_seed,
          config_.instruction_budget));
  }

  OsScheduler os(threads_, config_.timeslice_cycles, config_.os_seed,
                 config_.switch_policy);
  const std::uint64_t cycles = os.run(core_, config_.max_cycles);

  SimResult r;
  r.scheme = scheme_->scheme().name();
  r.cycles = cycles;
  r.total_ops = core_.stats().total_ops;
  r.total_instructions = core_.stats().total_instructions;
  r.idle_cycles = core_.stats().idle_cycles;
  r.ipc = cycles ? static_cast<double>(r.total_ops) /
                       static_cast<double>(cycles)
                 : 0.0;
  for (const auto& t : threads_) {
    ThreadResult tr;
    tr.benchmark = t->name();
    tr.instructions = t->stats().instructions;
    tr.ops = t->stats().ops;
    tr.stats = t->stats();
    r.threads.push_back(std::move(tr));
  }
  r.icache = mem_.icache_stats();
  r.dcache = mem_.dcache_stats();
  r.l2 = mem_.l2_stats();
  r.issued_per_cycle = core_.engine().issued_histogram();
  r.merge_nodes = core_.engine().node_stats();
  r.os = os.stats();
  return r;
}

// --- SimSession -----------------------------------------------------------

SimInstance& SimSession::instance_for(const Scheme& scheme,
                                      const SimConfig& config) {
  const std::string key = CompiledScheme::make_key(scheme, config.machine);
  if (auto it = instances_.find(key); it != instances_.end()) {
    it->second->set_config(config);
    return *it->second;
  }
  // Evict a single entry at the bound, not the whole pool: a sweep that
  // cycles through more than kMaxInstances keys must degrade gradually,
  // not fall off a rebuild-everything cliff.
  if (instances_.size() >= kMaxInstances)
    instances_.erase(instances_.begin());
  auto compiled = artifacts_.scheme(scheme, config.machine);
  const auto [it, inserted] = instances_.emplace(
      key, std::make_unique<SimInstance>(std::move(compiled), config));
  return *it->second;
}

SimResult SimSession::run(
    const Scheme& scheme,
    std::span<const std::shared_ptr<const SyntheticProgram>> programs,
    const SimConfig& config) {
  return instance_for(scheme, config).run(programs);
}

SimResult SimSession::run(const Scheme& scheme,
                          std::span<const std::string> benchmarks,
                          const SimConfig& config) {
  const std::shared_ptr<const CompiledWorkload> workload =
      artifacts_.workload(benchmarks, config.machine);
  return instance_for(scheme, config).run(*workload);
}

}  // namespace cvmt
