#include "sim/switch_policy.hpp"

#include <algorithm>

#include "sim/multithreaded_core.hpp"
#include "support/rng.hpp"

namespace cvmt {
namespace {

/// The paper's policy: replacement threads are picked at random. The
/// collection order, Fisher-Yates prefix shuffle and RNG draw sequence
/// reproduce the original OsScheduler::reschedule exactly — existing runs
/// are bit-identical under this policy.
class RandomTimeslicePolicy final : public SwitchPolicy {
 public:
  explicit RandomTimeslicePolicy(std::uint64_t seed) : rng_(seed) {}

  void pick(std::span<ThreadContext* const> pool,
            const MultithreadedCore& /*core*/, std::uint64_t /*cycle*/,
            std::vector<ThreadContext*>& next) override {
    // Runnable = not yet at budget. (The run stops at the first
    // completion, so in practice all threads are runnable here.)
    runnable_.clear();
    for (ThreadContext* t : pool)
      if (!t->done()) runnable_.push_back(t);

    const std::size_t take =
        std::min<std::size_t>(next.size(), runnable_.size());
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t j = i + rng_.next_below(runnable_.size() - i);
      std::swap(runnable_[i], runnable_[j]);
    }
    for (std::size_t s = 0; s < take; ++s) next[s] = runnable_[s];
  }

  void reset(std::uint64_t seed) override { rng_ = Xoshiro256(seed); }

  [[nodiscard]] bool oblivious() const override { return true; }

  void pick_indices(int pool_size, int slots,
                    std::vector<std::uint8_t>& out) override {
    // Mirrors pick() with every pooled thread runnable: same collection
    // order, same prefix shuffle, same RNG draw sequence — so a recorded
    // index stream replays the exact decisions pick() would have made.
    const std::size_t n = static_cast<std::size_t>(pool_size);
    idx_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      idx_[i] = static_cast<std::uint8_t>(i);
    const std::size_t take =
        std::min(static_cast<std::size_t>(slots), n);
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t j = i + rng_.next_below(n - i);
      std::swap(idx_[i], idx_[j]);
    }
    out.assign(idx_.begin(), idx_.begin() + static_cast<std::ptrdiff_t>(take));
  }

 private:
  Xoshiro256 rng_;
  std::vector<ThreadContext*> runnable_;
  std::vector<std::uint8_t> idx_;
};

/// simtrax PRESTALL at timeslice granularity: rotate the resident set
/// round-robin through the runnable pool every slice, switching before
/// stalls accumulate. Fully deterministic.
class PrestallPolicy final : public SwitchPolicy {
 public:
  void pick(std::span<ThreadContext* const> pool,
            const MultithreadedCore& /*core*/, std::uint64_t /*cycle*/,
            std::vector<ThreadContext*>& next) override {
    runnable_.clear();
    for (ThreadContext* t : pool)
      if (!t->done()) runnable_.push_back(t);
    if (runnable_.empty()) return;

    const std::size_t take =
        std::min<std::size_t>(next.size(), runnable_.size());
    for (std::size_t s = 0; s < take; ++s)
      next[s] = runnable_[(cursor_ + s) % runnable_.size()];
    cursor_ = (cursor_ + take) % runnable_.size();
  }

  void reset(std::uint64_t /*seed*/) override { cursor_ = 0; }

  [[nodiscard]] bool oblivious() const override { return true; }

  void pick_indices(int pool_size, int slots,
                    std::vector<std::uint8_t>& out) override {
    // pick() with every pooled thread runnable: rotate the cursor over
    // the full pool.
    const std::size_t n = static_cast<std::size_t>(pool_size);
    const std::size_t take =
        std::min(static_cast<std::size_t>(slots), n);
    out.resize(take);
    for (std::size_t s = 0; s < take; ++s)
      out[s] = static_cast<std::uint8_t>((cursor_ + s) % n);
    cursor_ = (cursor_ + take) % n;
  }

 private:
  std::size_t cursor_ = 0;
  std::vector<ThreadContext*> runnable_;
};

/// simtrax POSTSTALL at timeslice granularity: residents keep their slot
/// while they are making progress; only stalled (or finished) residents
/// are replaced, round-robin from the runnable pool. Falls back to stalled
/// threads when nothing better is runnable, so slots never idle while any
/// thread could eventually issue.
class PoststallPolicy final : public SwitchPolicy {
 public:
  void pick(std::span<ThreadContext* const> pool,
            const MultithreadedCore& core, std::uint64_t cycle,
            std::vector<ThreadContext*>& next) override {
    const std::size_t n = pool.size();
    used_.assign(n, false);

    const auto index_of = [&](const ThreadContext* t) -> std::size_t {
      for (std::size_t i = 0; i < n; ++i)
        if (pool[i] == t) return i;
      CVMT_CHECK_MSG(false, "resident thread not in the scheduler pool");
      __builtin_unreachable();
    };
    const auto stalled = [&](const ThreadContext& t) {
      return t.has_pending() && t.ready_at() > cycle;
    };

    // Pass 1: non-stalled residents stay put.
    for (std::size_t s = 0; s < next.size(); ++s) {
      ThreadContext* cur = core.thread(static_cast<int>(s));
      if (cur != nullptr && !cur->done() && !stalled(*cur)) {
        next[s] = cur;
        used_[index_of(cur)] = true;
      }
    }
    // Pass 2: fill vacated slots with non-stalled runnable threads,
    // round-robin from the cursor.
    for (std::size_t s = 0; s < next.size(); ++s) {
      if (next[s] != nullptr) continue;
      if (ThreadContext* t = claim_next(pool, [&](const ThreadContext& c) {
            return !stalled(c);
          }))
        next[s] = t;
    }
    // Pass 3: nothing non-stalled left — prefer keeping the slot's own
    // (stalled) resident, then any unused runnable thread. A stalled
    // resident resumes mid-slice; an empty slot never does.
    for (std::size_t s = 0; s < next.size(); ++s) {
      if (next[s] != nullptr) continue;
      ThreadContext* cur = core.thread(static_cast<int>(s));
      if (cur != nullptr && !cur->done() && !used_[index_of(cur)]) {
        next[s] = cur;
        used_[index_of(cur)] = true;
        continue;
      }
      if (ThreadContext* t =
              claim_next(pool, [](const ThreadContext&) { return true; }))
        next[s] = t;
    }
  }

  void reset(std::uint64_t /*seed*/) override {
    cursor_ = 0;
    used_.clear();
  }

 private:
  template <typename Pred>
  ThreadContext* claim_next(std::span<ThreadContext* const> pool,
                            Pred&& ok) {
    const std::size_t n = pool.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t i = (cursor_ + probe) % n;
      ThreadContext* t = pool[i];
      if (used_[i] || t->done() || !ok(*t)) continue;
      used_[i] = true;
      cursor_ = (i + 1) % n;
      return t;
    }
    return nullptr;
  }

  std::size_t cursor_ = 0;
  std::vector<bool> used_;
};

}  // namespace

const char* to_string(SwitchPolicyKind kind) {
  switch (kind) {
    case SwitchPolicyKind::kRandomTimeslice: return "random";
    case SwitchPolicyKind::kPrestall: return "prestall";
    case SwitchPolicyKind::kPoststall: return "poststall";
  }
  return "?";
}

bool switch_policy_from_string(std::string_view name,
                               SwitchPolicyKind& out) {
  if (name == "random") {
    out = SwitchPolicyKind::kRandomTimeslice;
  } else if (name == "prestall") {
    out = SwitchPolicyKind::kPrestall;
  } else if (name == "poststall") {
    out = SwitchPolicyKind::kPoststall;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<SwitchPolicy> make_switch_policy(SwitchPolicyKind kind,
                                                 std::uint64_t seed) {
  switch (kind) {
    case SwitchPolicyKind::kRandomTimeslice:
      return std::make_unique<RandomTimeslicePolicy>(seed);
    case SwitchPolicyKind::kPrestall:
      return std::make_unique<PrestallPolicy>();
    case SwitchPolicyKind::kPoststall:
      return std::make_unique<PoststallPolicy>();
  }
  CVMT_CHECK_MSG(false, "unknown switch policy");
  __builtin_unreachable();
}

}  // namespace cvmt
