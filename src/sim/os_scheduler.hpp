// Multitasking environment of the paper's §5.1: the hardware thread count
// is exposed as virtual CPUs; the OS schedules that many software threads
// per timeslice, replacing them with randomly picked runnable threads at
// each expiry. The run ends when any thread completes its instruction
// budget.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/multithreaded_core.hpp"
#include "support/rng.hpp"

namespace cvmt {

/// OS-level run summary.
struct OsRunStats {
  std::uint64_t context_switches = 0;
  std::uint64_t timeslices = 0;
};

/// Timeslice scheduler over a pool of software threads.
class OsScheduler {
 public:
  /// `threads` is the workload pool (ownership shared with the caller so
  /// results can be read afterwards). `timeslice` is in cycles.
  OsScheduler(std::vector<std::shared_ptr<ThreadContext>> threads,
              std::uint64_t timeslice, std::uint64_t seed);

  /// Runs `core` until any thread finishes its budget or `max_cycles`
  /// elapse. Returns the number of cycles executed.
  std::uint64_t run(MultithreadedCore& core, std::uint64_t max_cycles);

  [[nodiscard]] const OsRunStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::shared_ptr<ThreadContext>>& threads()
      const {
    return threads_;
  }

 private:
  /// Picks a fresh random set of runnable threads onto the core's slots.
  void reschedule(MultithreadedCore& core);

  std::vector<std::shared_ptr<ThreadContext>> threads_;
  std::uint64_t timeslice_;
  Xoshiro256 rng_;
  OsRunStats stats_;
};

}  // namespace cvmt
