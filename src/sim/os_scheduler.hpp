// Multitasking environment of the paper's §5.1: the hardware thread count
// is exposed as virtual CPUs; the OS schedules that many software threads
// per timeslice, picking replacements with a pluggable SwitchPolicy
// (default: the paper's random replacement). The run ends when any thread
// completes its instruction budget.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/multithreaded_core.hpp"
#include "sim/switch_policy.hpp"

namespace cvmt {

/// OS-level run summary.
struct OsRunStats {
  std::uint64_t context_switches = 0;
  std::uint64_t timeslices = 0;
};

/// Timeslice scheduler over a pool of software threads.
class OsScheduler {
 public:
  /// `threads` is the workload pool (ownership shared with the caller so
  /// results can be read afterwards). `timeslice` is in cycles. `policy`
  /// picks the resident set at each slice boundary; `seed` feeds the
  /// random policy's RNG.
  OsScheduler(std::vector<std::shared_ptr<ThreadContext>> threads,
              std::uint64_t timeslice, std::uint64_t seed,
              SwitchPolicyKind policy = SwitchPolicyKind::kRandomTimeslice);

  /// Runs `core` until any thread finishes its budget or `max_cycles`
  /// elapse. Returns the number of cycles executed.
  std::uint64_t run(MultithreadedCore& core, std::uint64_t max_cycles);

  [[nodiscard]] const OsRunStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::shared_ptr<ThreadContext>>& threads()
      const {
    return threads_;
  }

 private:
  /// Applies the policy's pick for the slice starting at `cycle` onto the
  /// core's slots, counting context switches.
  void reschedule(MultithreadedCore& core, std::uint64_t cycle);

  std::vector<std::shared_ptr<ThreadContext>> threads_;
  std::vector<ThreadContext*> pool_;  // raw view of threads_, built once
  std::uint64_t timeslice_;
  std::unique_ptr<SwitchPolicy> policy_;
  std::vector<ThreadContext*> next_;  // reschedule scratch
  OsRunStats stats_;
};

}  // namespace cvmt
