#include "sim/simulation.hpp"

namespace cvmt {

SimResult run_simulation(
    const Scheme& scheme,
    const std::vector<std::shared_ptr<const SyntheticProgram>>& programs,
    const SimConfig& config) {
  CVMT_CHECK_MSG(!programs.empty(), "empty workload");
  config.machine.validate();

  MemorySystem mem(config.mem, scheme.num_threads());
  const CoreOptions core_options{config.stats, config.eval_mode,
                                 config.stall_fast_forward};
  MultithreadedCore core(config.machine, scheme, config.priority, mem,
                         config.miss_policy, core_options);

  std::vector<std::shared_ptr<ThreadContext>> threads;
  threads.reserve(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    CVMT_CHECK(programs[i] != nullptr);
    CVMT_CHECK_MSG(programs[i]->machine() == config.machine,
                   "program compiled for a different machine");
    threads.push_back(std::make_shared<ThreadContext>(
        programs[i]->profile().name, programs[i],
        config.stream_seed_base + 0x1000ULL * i,
        config.instruction_budget));
  }

  OsScheduler os(threads, config.timeslice_cycles, config.os_seed);
  const std::uint64_t cycles = os.run(core, config.max_cycles);

  SimResult r;
  r.scheme = scheme.name();
  r.cycles = cycles;
  r.total_ops = core.stats().total_ops;
  r.total_instructions = core.stats().total_instructions;
  r.idle_cycles = core.stats().idle_cycles;
  r.ipc = cycles ? static_cast<double>(r.total_ops) /
                       static_cast<double>(cycles)
                 : 0.0;
  for (const auto& t : threads) {
    ThreadResult tr;
    tr.benchmark = t->name();
    tr.instructions = t->stats().instructions;
    tr.ops = t->stats().ops;
    tr.stats = t->stats();
    r.threads.push_back(std::move(tr));
  }
  r.icache = mem.icache_stats();
  r.dcache = mem.dcache_stats();
  r.issued_per_cycle = core.engine().issued_histogram();
  r.merge_nodes = core.engine().node_stats();
  r.os = os.stats();
  return r;
}

SimResult run_workload(const Scheme& scheme, const Workload& workload,
                       ProgramLibrary& library, const SimConfig& config) {
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  programs.reserve(workload.benchmarks.size());
  for (const std::string& name : workload.benchmarks)
    programs.push_back(library.get(name));
  return run_simulation(scheme, programs, config);
}

}  // namespace cvmt
