#include "sim/simulation.hpp"

#include "sim/session.hpp"

namespace cvmt {

SimResult run_simulation(
    const Scheme& scheme,
    const std::vector<std::shared_ptr<const SyntheticProgram>>& programs,
    const SimConfig& config) {
  CVMT_CHECK_MSG(!programs.empty(), "empty workload");
  config.machine.validate();
  // One-shot session: compile, run once, discard. Sweeps that run many
  // configurations keep a SimSession / SimInstance instead (sim/session.hpp)
  // and reuse the compiled artifacts and run-state buffers.
  SimInstance instance(
      std::make_shared<const CompiledScheme>(scheme, config.machine),
      config);
  return instance.run(programs);
}

SimResult run_workload(const Scheme& scheme, const Workload& workload,
                       ProgramLibrary& library, const SimConfig& config) {
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  programs.reserve(workload.benchmarks.size());
  for (const std::string& name : workload.benchmarks)
    programs.push_back(library.get(name));
  return run_simulation(scheme, programs, config);
}

}  // namespace cvmt
