#include "sim/multithreaded_core.hpp"

#include <bit>

namespace cvmt {

MultithreadedCore::MultithreadedCore(const MachineConfig& machine,
                                     Scheme scheme, PriorityPolicy priority,
                                     MemorySystem& mem,
                                     MissPolicy miss_policy)
    : machine_(machine),
      engine_(std::move(scheme), machine, priority),
      mem_(mem),
      miss_policy_(miss_policy) {}

void MultithreadedCore::set_thread(int slot, ThreadContext* thread) {
  CVMT_CHECK(slot >= 0 && slot < num_slots());
  slots_[static_cast<std::size_t>(slot)] = thread;
}

bool MultithreadedCore::step(std::uint64_t cycle) {
  const int n = num_slots();
  std::array<const Footprint*, kMaxThreads> offers{};
  bool any_offer = false;
  for (int s = 0; s < n; ++s) {
    ThreadContext* t = slots_[static_cast<std::size_t>(s)];
    offers[static_cast<std::size_t>(s)] =
        t ? t->offer(cycle, mem_, s) : nullptr;
    any_offer |= offers[static_cast<std::size_t>(s)] != nullptr;
  }

  bool any_done = false;
  if (any_offer) {
    const MergeDecision d = engine_.select(
        std::span<const Footprint* const>(offers.data(),
                                          static_cast<std::size_t>(n)));
    std::uint32_t mask = d.issued_mask;
    while (mask != 0) {
      const int s = std::countr_zero(mask);
      mask &= mask - 1;
      ThreadContext* t = slots_[static_cast<std::size_t>(s)];
      const std::uint64_t ops_before = t->stats().ops;
      t->consume(cycle, mem_, s, machine_, miss_policy_);
      stats_.total_ops += t->stats().ops - ops_before;
      ++stats_.total_instructions;
      any_done |= t->done();
    }
  } else {
    ++stats_.idle_cycles;
  }
  ++stats_.cycles;
  return any_done;
}

}  // namespace cvmt
