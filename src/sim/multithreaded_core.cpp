#include "sim/multithreaded_core.hpp"

#include <algorithm>
#include <bit>

namespace cvmt {

MultithreadedCore::MultithreadedCore(const MachineConfig& machine,
                                     Scheme scheme, PriorityPolicy priority,
                                     MemorySystem& mem,
                                     MissPolicy miss_policy,
                                     CoreOptions options)
    : machine_(machine),
      engine_(std::move(scheme), machine, priority, options.stats,
              options.eval_mode),
      mem_(mem),
      miss_policy_(miss_policy),
      options_(options) {}

MultithreadedCore::MultithreadedCore(const MachineConfig& machine,
                                     Scheme scheme,
                                     std::shared_ptr<const MergePlan> plan,
                                     PriorityPolicy priority,
                                     MemorySystem& mem,
                                     MissPolicy miss_policy,
                                     CoreOptions options)
    : machine_(machine),
      engine_(std::move(scheme), std::move(plan), machine, priority,
              options.stats, options.eval_mode),
      mem_(mem),
      miss_policy_(miss_policy),
      options_(options) {}

void MultithreadedCore::reset(PriorityPolicy priority, MissPolicy miss_policy,
                              CoreOptions options) {
  miss_policy_ = miss_policy;
  options_ = options;
  slots_.fill(nullptr);
  stats_ = CoreStats{};
  engine_.reset(priority, options.stats, options.eval_mode);
}

void MultithreadedCore::set_thread(int slot, ThreadContext* thread) {
  CVMT_CHECK(slot >= 0 && slot < num_slots());
  slots_[static_cast<std::size_t>(slot)] = thread;
}

std::uint64_t MultithreadedCore::run_until(std::uint64_t cycle,
                                           std::uint64_t end,
                                           bool& any_done) {
  any_done = false;
  const int n = num_slots();
  constexpr std::uint64_t kNever = ~std::uint64_t{0};

  // Per-slot cached issue state, so the per-cycle gather is one compare
  // per slot instead of re-polling the thread contexts: `ready[s]` is the
  // first cycle slot s can issue (kNever = empty slot, finished thread,
  // or refill pending) and `fps[s]` its candidate footprint. Threads only
  // change state inside this loop — refill (tracked by `refill_mask`) and
  // consume — so the cache cannot go stale. Slots cannot change
  // mid-window (the OS reschedules only at window boundaries).
  std::array<const Footprint*, kMaxThreads> fps;
  std::array<std::uint64_t, kMaxThreads> ready;
  std::array<const Footprint*, kMaxThreads> offers;
  std::uint32_t refill_mask = 0;
  for (int s = 0; s < n; ++s) {
    ThreadContext* t = slots_[static_cast<std::size_t>(s)];
    fps[static_cast<std::size_t>(s)] = nullptr;
    ready[static_cast<std::size_t>(s)] = kNever;
    if (t == nullptr || t->done()) continue;
    if (t->has_pending()) {
      fps[static_cast<std::size_t>(s)] = t->pending_footprint();
      ready[static_cast<std::size_t>(s)] = t->ready_at();
    } else {
      refill_mask |= 1u << static_cast<unsigned>(s);
    }
  }
  const std::span<const Footprint* const> cand_span(
      offers.data(), static_cast<std::size_t>(n));

  while (cycle < end) {
    // Fetch for threads that issued last cycle — same slot order and
    // cycle number as the lazy offer() path, so shared-ICache state
    // evolves identically.
    while (refill_mask != 0) {
      const int s = std::countr_zero(refill_mask);
      refill_mask &= refill_mask - 1;
      ThreadContext* t = slots_[static_cast<std::size_t>(s)];
      t->refill(cycle, mem_, s);
      fps[static_cast<std::size_t>(s)] = t->pending_footprint();
      ready[static_cast<std::size_t>(s)] = t->ready_at();
    }

    int num_offers = 0;
    int only_offer = -1;
    for (int s = 0; s < n; ++s) {
      const Footprint* fp = cycle >= ready[static_cast<std::size_t>(s)]
                                ? fps[static_cast<std::size_t>(s)]
                                : nullptr;
      offers[static_cast<std::size_t>(s)] = fp;
      if (fp != nullptr) {
        ++num_offers;
        only_offer = s;
      }
    }

    if (num_offers != 0) {
      std::uint32_t mask =
          engine_.select_mask_gathered(cand_span, num_offers, only_offer);
      while (mask != 0) {
        const int s = std::countr_zero(mask);
        mask &= mask - 1;
        ThreadContext* t = slots_[static_cast<std::size_t>(s)];
        const std::uint64_t ops_before = t->stats().ops;
        t->consume(cycle, mem_, s, machine_, miss_policy_);
        stats_.total_ops += t->stats().ops - ops_before;
        ++stats_.total_instructions;
        any_done |= t->done();
        ready[static_cast<std::size_t>(s)] = kNever;
        if (!t->done()) refill_mask |= 1u << static_cast<unsigned>(s);
      }
      ++stats_.cycles;
      ++cycle;
      if (any_done) return cycle;
      continue;
    }

    // All-stalled window: every resident thread already holds a fetched
    // instruction with ready[s] > cycle, so nothing can change before the
    // earliest one. Jump there in one step, bulk-accounting the skipped
    // cycles as idle. The merge network is never consulted on a
    // candidate-less cycle, so rotation and every merge statistic are
    // untouched — exactly as when stepping.
    std::uint64_t next = end;
    if (options_.stall_fast_forward) {
      for (int s = 0; s < n; ++s)
        next = std::min(next, ready[static_cast<std::size_t>(s)]);
      // All slots empty (or every resident thread done): idle to `end`.
      next = std::max(next, cycle + 1);
    } else {
      next = cycle + 1;
    }
    stats_.idle_cycles += next - cycle;
    stats_.cycles += next - cycle;
    cycle = next;
  }
  return cycle;
}

bool MultithreadedCore::step(std::uint64_t cycle) {
  bool any_done = false;
  run_until(cycle, cycle + 1, any_done);
  return any_done;
}

}  // namespace cvmt
