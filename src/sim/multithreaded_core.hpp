// The multithreaded clustered VLIW core: per cycle, every resident thread
// offers its next instruction and the merge engine selects the subset that
// issues as a single execution packet.
#pragma once

#include <array>
#include <cstdint>

#include "core/merge_engine.hpp"
#include "sim/thread_context.hpp"

namespace cvmt {

/// Aggregate core counters.
struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t total_instructions = 0;
  std::uint64_t idle_cycles = 0;  ///< cycles with no candidate at all

  [[nodiscard]] double ipc() const {
    return cycles ? static_cast<double>(total_ops) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

/// Hardware: N thread slots, one merge network, one memory system.
class MultithreadedCore {
 public:
  MultithreadedCore(const MachineConfig& machine, Scheme scheme,
                    PriorityPolicy priority, MemorySystem& mem,
                    MissPolicy miss_policy);

  /// Number of hardware thread slots (the scheme's thread count).
  [[nodiscard]] int num_slots() const { return engine_.scheme().num_threads(); }

  /// Binds `thread` (may be nullptr = idle slot) to hardware slot `slot`.
  void set_thread(int slot, ThreadContext* thread);

  [[nodiscard]] ThreadContext* thread(int slot) const {
    return slots_[static_cast<std::size_t>(slot)];
  }

  /// Advances one cycle: gather offers, merge-select, issue.
  /// Returns true if any resident thread finished its budget this cycle.
  bool step(std::uint64_t cycle);

  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] const MergeEngine& engine() const { return engine_; }
  [[nodiscard]] MemorySystem& memory() { return mem_; }

 private:
  MachineConfig machine_;
  MergeEngine engine_;
  MemorySystem& mem_;
  MissPolicy miss_policy_;
  std::array<ThreadContext*, kMaxThreads> slots_{};
  CoreStats stats_;
};

}  // namespace cvmt
