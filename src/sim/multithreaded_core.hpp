// The multithreaded clustered VLIW core: per cycle, every resident thread
// offers its next instruction and the merge engine selects the subset that
// issues as a single execution packet.
//
// The cycle loop runs in windows (run_until): cycles where at least one
// thread offers are arbitrated one at a time, but an all-stalled window is
// fast-forwarded in a single jump to the earliest ready_at() among the
// resident threads (bulk-accounting the skipped cycles as idle). The jump
// is bit-identical to stepping: a cycle with no candidates never invokes
// the merge network, so no rotation, histogram or node counter moves on
// the skipped cycles.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "core/merge_engine.hpp"
#include "sim/thread_context.hpp"

namespace cvmt {

/// Aggregate core counters.
struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t total_instructions = 0;
  std::uint64_t idle_cycles = 0;  ///< cycles with no candidate at all

  [[nodiscard]] double ipc() const {
    return cycles ? static_cast<double>(total_ops) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

/// Hot-path policy knobs of the core, defaulting to the fast configuration.
struct CoreOptions {
  StatsLevel stats = StatsLevel::kFull;
  EvalMode eval_mode = EvalMode::kPlan;
  /// Jump over all-stalled windows instead of stepping them. Results are
  /// bit-identical either way; off only for baseline benchmarking.
  bool stall_fast_forward = true;
};

/// Hardware: N thread slots, one merge network, one memory system.
class MultithreadedCore {
 public:
  MultithreadedCore(const MachineConfig& machine, Scheme scheme,
                    PriorityPolicy priority, MemorySystem& mem,
                    MissPolicy miss_policy, CoreOptions options = {});

  /// Construction from a pre-compiled merge plan (shared via the session
  /// layer's CompiledScheme); behaves exactly like the compiling
  /// constructor.
  MultithreadedCore(const MachineConfig& machine, Scheme scheme,
                    std::shared_ptr<const MergePlan> plan,
                    PriorityPolicy priority, MemorySystem& mem,
                    MissPolicy miss_policy, CoreOptions options = {});

  /// Restores the freshly-constructed state under (possibly new) policy
  /// knobs: all slots unbound, core counters zeroed, merge engine reset.
  /// Does NOT touch the memory system (the caller owns it and resets it
  /// separately). Bit-identical to constructing a new core.
  void reset(PriorityPolicy priority, MissPolicy miss_policy,
             CoreOptions options);

  /// Number of hardware thread slots (the scheme's thread count).
  [[nodiscard]] int num_slots() const { return engine_.scheme().num_threads(); }

  /// Binds `thread` (may be nullptr = idle slot) to hardware slot `slot`.
  void set_thread(int slot, ThreadContext* thread);

  [[nodiscard]] ThreadContext* thread(int slot) const {
    return slots_[static_cast<std::size_t>(slot)];
  }

  /// Advances one cycle: gather offers, merge-select, issue.
  /// Returns true if any resident thread finished its budget this cycle.
  bool step(std::uint64_t cycle);

  /// Runs cycles [cycle, end), fast-forwarding all-stalled windows when
  /// enabled. Stops early (after the completing cycle) once any resident
  /// thread finishes its budget, setting `any_done`. Returns the first
  /// cycle not executed.
  std::uint64_t run_until(std::uint64_t cycle, std::uint64_t end,
                          bool& any_done);

  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] const MergeEngine& engine() const { return engine_; }
  /// Mutable engine access for the batch engine's fused window kernel,
  /// which runs the cycle loop itself but must route every merge decision
  /// through this exact engine (same rotation, same stats) to stay
  /// bit-identical to run_until().
  [[nodiscard]] MergeEngine& engine_mut() { return engine_; }
  [[nodiscard]] MemorySystem& memory() { return mem_; }
  [[nodiscard]] const CoreOptions& options() const { return options_; }

 private:
  MachineConfig machine_;
  MergeEngine engine_;
  MemorySystem& mem_;
  MissPolicy miss_policy_;
  CoreOptions options_;
  std::array<ThreadContext*, kMaxThreads> slots_{};
  CoreStats stats_;
};

}  // namespace cvmt
