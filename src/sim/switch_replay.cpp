#include "sim/switch_replay.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace cvmt {

SwitchReplay::SwitchReplay(SwitchPolicyKind kind, std::uint64_t seed,
                           int pool_size, int slots)
    : policy_(make_switch_policy(kind, seed)),
      pool_size_(pool_size),
      slots_(slots),
      take_(static_cast<std::size_t>(std::min(slots, pool_size))) {
  CVMT_CHECK_MSG(policy_->oblivious(),
                 "switch replay needs an oblivious policy");
}

void SwitchReplay::ensure(std::uint64_t windows) {
  while (windows_ < windows) {
    policy_->pick_indices(pool_size_, slots_, scratch_);
    CVMT_CHECK(scratch_.size() == take_);
    picks_.insert(picks_.end(), scratch_.begin(), scratch_.end());
    ++windows_;
  }
}

}  // namespace cvmt
