#include "sim/batch_engine.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <span>
#include <utility>

#include "mem/icache_structural.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

namespace cvmt {
namespace {

bool kernels_from_env() {
  const std::string v = env_word("CVMT_BATCH_KERNELS", "on");
  if (v == "on" || v == "1") return true;
  if (v == "off" || v == "0") return false;
  std::fprintf(stderr,
               "cvmt: ignoring CVMT_BATCH_KERNELS=\"%s\" (expected on or "
               "off); using on\n",
               v.c_str());
  return true;
}

}  // namespace

SimBatch::SimBatch(int lanes)
    : lanes_(lanes),
      lane_state_(static_cast<std::size_t>(
          std::clamp(lanes, 1, kMaxLanes))),
      cycle_(lane_state_.size(), 0),
      timeslice_(lane_state_.size(), 0),
      max_cycles_(lane_state_.size(), 0),
      switches_(lane_state_.size(), 0),
      timeslices_(lane_state_.size(), 0),
      active_(lane_state_.size(), 0),
      kernels_enabled_(kernels_from_env()) {
  CVMT_CHECK_MSG(lanes >= 1 && lanes <= kMaxLanes,
                 "SimBatch lane count must be in [1, " +
                     std::to_string(kMaxLanes) + "]");
}

SimBatch::~SimBatch() {
  // Arena storage never runs destructors; the contexts are ours to end.
  for (Lane& lane : lane_state_)
    for (ThreadContext* t : lane.pool) t->~ThreadContext();
}

void SimBatch::enqueue(BatchRunSpec spec) {
  CVMT_CHECK_MSG(spec.scheme != nullptr,
                 "batch job needs a compiled scheme");
  CVMT_CHECK_MSG(!spec.progs().empty(), "empty workload");
  CVMT_CHECK_MSG(spec.config.machine == spec.scheme->machine(),
                 "SimConfig.machine must equal the compiled scheme's "
                 "machine");
  CVMT_CHECK_MSG(spec.config.timeslice_cycles >= 1,
                 "timeslice must be positive");
  jobs_.push_back(std::move(spec));
}

void SimBatch::prepare(std::size_t lane, std::size_t job) {
  Lane& st = lane_state_[lane];
  const BatchRunSpec& spec = jobs_[job];
  const SimConfig& cfg = spec.config;
  const CompiledScheme& scheme = *spec.scheme;
  const int nthreads = scheme.scheme().num_threads();

  st.job = job;

  // Memory system: re-emplaced only on geometry change (or a thread-count
  // change the built arrays can't absorb — see rebind). Re-emplacement
  // keeps the optional's payload address, so a kept core's MemorySystem&
  // stays valid.
  if (!st.mem || !(st.mem_cfg == cfg.mem) || !st.mem->rebind(nthreads)) {
    st.mem.emplace(cfg.mem, nthreads);
    st.mem_cfg = cfg.mem;
  } else {
    st.mem->reset();
  }

  // The compile-time-chosen evaluator: plans with a bound fixed path run
  // the shape-specialized interpreter (bit-identical decisions). Explicit
  // non-default modes (tree reference validation) are honoured.
  const CoreOptions options{cfg.stats,
                            cfg.eval_mode == EvalMode::kPlan
                                ? scheme.preferred_eval_mode()
                                : cfg.eval_mode,
                            cfg.stall_fast_forward};
  Lane::CoreSlot* slot = st.find_core(spec.scheme.get());
  if (slot == nullptr) {
    if (st.cores.size() >= kMaxCachedCores) {
      st.cores.clear();  // fuzz-style queues with unbounded scheme churn
      st.core = nullptr;
    }
    slot = &st.cores.emplace_back();
    slot->scheme = spec.scheme;
    slot->core = std::make_unique<MultithreadedCore>(
        scheme.machine(), scheme.scheme(), scheme.plan(), cfg.priority,
        *st.mem, cfg.miss_policy, options);
  } else {
    slot->core->reset(cfg.priority, cfg.miss_policy, options);
  }
  st.core = slot->core.get();

  // Workload binding: replay pointers (one lookup per workload, not per
  // thread) and, lazily, the structural-ICache analysis. Keyed by the
  // program identities so every job in a grid that references the same
  // workload — whether through its own copy of the vector or a shared
  // one — shares one binding and one analysis. The scratch key vector
  // is a member, so steady-state prepares allocate nothing here.
  const auto& progs = spec.progs();
  const auto same_programs =
      [&progs](const std::vector<std::shared_ptr<const SyntheticProgram>>&
                   key_progs) {
        if (key_progs.size() != progs.size()) return false;
        for (std::size_t i = 0; i < progs.size(); ++i)
          if (key_progs[i].get() != progs[i].get()) return false;
        return true;
      };
  WorkloadBinding* bound = nullptr;
  for (auto& [key, value] : workload_replays_) {
    if (key.seed_base == cfg.stream_seed_base &&
        key.budget == cfg.instruction_budget && same_programs(key.progs)) {
      bound = &value;
      break;
    }
  }
  if (bound == nullptr) {
    workload_replays_.emplace_back();
    workload_replays_.back().first =
        WorkloadKey{progs, cfg.stream_seed_base, cfg.instruction_budget};
    bound = &workload_replays_.back().second;
  }
  WorkloadBinding& bind = *bound;
  if (bind.replays.size() != progs.size()) {
    bind.replays.clear();
    bind.all_replayed = true;
    bind.machines_uniform = true;
    for (std::size_t i = 0; i < progs.size(); ++i) {
      const auto& prog = progs[i];
      CVMT_CHECK(prog != nullptr);
      bind.machines_uniform =
          bind.machines_uniform && prog->machine() == progs[0]->machine();
      const std::uint64_t stream_seed =
          cfg.stream_seed_base + 0x1000ULL * i;
      TraceReplay* replay =
          replay_for(prog, stream_seed, cfg.instruction_budget);
      bind.replays.push_back(replay);
      bind.all_replayed = bind.all_replayed && replay != nullptr;
    }
  }
  // Every program must match the job's machine; the binding memoizes
  // program-to-program uniformity, leaving one compare per job.
  CVMT_CHECK_MSG(bind.machines_uniform &&
                     progs[0]->machine() == cfg.machine,
                 "program compiled for a different machine");
  st.pool_size = progs.size();

  if (!st.policy || st.policy_kind != cfg.switch_policy) {
    st.policy = make_switch_policy(cfg.switch_policy, cfg.os_seed);
    st.policy_kind = cfg.switch_policy;
  } else {
    st.policy->reset(cfg.os_seed);
  }

  // Oblivious policies re-draw the same pick sequence for every job that
  // shares (kind, seed, pool size, slots); record it once and replay.
  // Valid because step_window stops a run at the first thread completion,
  // so no reschedule ever observes a done thread — the one case where an
  // oblivious policy's decision could diverge from the recording.
  st.sreplay = nullptr;
  if (st.policy->oblivious() && st.pool_size <= 255) {
    const auto skey =
        std::make_tuple(cfg.switch_policy, cfg.os_seed,
                        static_cast<int>(st.pool_size), st.core->num_slots());
    if (st.sr_hit != nullptr && skey == st.sr_key) {
      st.sreplay = st.sr_hit;
    } else {
      std::unique_ptr<SwitchReplay>& slot = switch_replays_[skey];
      if (!slot)
        slot = std::make_unique<SwitchReplay>(
            cfg.switch_policy, cfg.os_seed, static_cast<int>(st.pool_size),
            st.core->num_slots());
      st.sreplay = slot.get();
      st.sr_key = skey;
      st.sr_hit = st.sreplay;
    }
  }

  // Kernel selection. Structural ICache needs every thread on the replay
  // path plus the analysis verdict; the fused window kernel additionally
  // needs the recorded switch picks (an oblivious policy) and the plain
  // shared-unbanked DCache its inlined consume models (no L2 and no
  // perfect memory are already part of the structural gates).
  const bool structural = kernels_enabled_ && bind.all_replayed &&
                          structural_for(bind, spec);
  st.fused =
      structural && st.sreplay != nullptr && cfg.mem.dcache_banks == 1;
  st.structural = structural && !st.fused;

  if (st.fused) {
    // No context churn at all: the kernel's dense per-thread arrays are
    // the run state. The pool keeps whatever earlier jobs built — a later
    // generic job rebinds it as usual.
    const std::uint32_t line_shift = static_cast<std::uint32_t>(
        std::countr_zero(cfg.mem.icache.line_bytes));
    const std::size_t n = st.pool_size;
    st.f_replay.assign(bind.replays.begin(), bind.replays.end());
    st.f_ft.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      st.f_ft[i] = first_touch_for(bind.replays[i], line_shift,
                                   cfg.instruction_budget);
    }
    st.f_pos.assign(n, 0);
    st.f_ready.assign(n, 0);
    st.f_fp.assign(n, nullptr);
    st.f_entry.assign(n, nullptr);
    st.f_done.assign(n, 0);
    st.f_stats.assign(n, ThreadStats{});
    st.f_imiss.assign(n, 0);
    st.f_slot.fill(-1);
    st.f_budget = cfg.instruction_budget;
    st.f_ipen = cfg.mem.icache.miss_penalty;
    st.f_dpen = cfg.mem.dcache.miss_penalty;
    st.f_bpen = cfg.machine.taken_branch_penalty;
    st.f_miss_policy = cfg.miss_policy;
    st.f_stall_ff = cfg.stall_fast_forward;
    st.f_dcache = &st.mem->shared_dcache();
    st.f_ops = st.f_instr = st.f_idle = 0;
    ++kernel_stats_.fused_jobs;
  } else {
    // Thread contexts live in the arena and are rebound in place;
    // contexts beyond this job's pool stay constructed for later, wider
    // jobs. Each context replays its stream from the batch-shared
    // recording when one is available (small budgets), bit-identically
    // to driving its own generator.
    const std::uint32_t line_shift = static_cast<std::uint32_t>(
        std::countr_zero(cfg.mem.icache.line_bytes));
    for (std::size_t i = 0; i < progs.size(); ++i) {
      const auto& prog = progs[i];
      const std::uint64_t stream_seed =
          cfg.stream_seed_base + 0x1000ULL * i;
      if (i < st.pool.size()) {
        st.pool[i]->reset(prog->profile().name, prog, stream_seed,
                          cfg.instruction_budget);
      } else {
        st.pool.push_back(arena_.create<ThreadContext>(
            prog->profile().name, prog, stream_seed,
            cfg.instruction_budget));
      }
      st.pool[i]->set_replay(bind.replays[i]);
      if (st.structural)
        st.pool[i]->set_structural_fetch(
            first_touch_for(bind.replays[i], line_shift,
                            cfg.instruction_budget),
            cfg.mem.icache.miss_penalty);
    }
    ++(st.structural ? kernel_stats_.structural_jobs
                     : kernel_stats_.generic_jobs);
  }

  cycle_[lane] = 0;
  timeslice_[lane] = cfg.timeslice_cycles;
  max_cycles_[lane] = cfg.max_cycles;
  switches_[lane] = 0;
  timeslices_[lane] = 0;
  active_[lane] = 1;
}

void SimBatch::reschedule(std::size_t lane) {
  Lane& st = lane_state_[lane];
  MultithreadedCore& core = *st.core;
  const int slots = core.num_slots();
  if (st.sreplay != nullptr) {
    // Replay the recorded row for this run's window count: pool indices
    // for slots 0..take, nullptr beyond — exactly what the live policy's
    // pick() would assign.
    const std::uint64_t w = timeslices_[lane];
    st.sreplay->ensure(w + 1);
    const std::uint8_t* row = st.sreplay->window(w);
    const std::size_t take = st.sreplay->take();
    for (int s = 0; s < slots; ++s) {
      ThreadContext* next = static_cast<std::size_t>(s) < take
                                ? st.pool[row[static_cast<std::size_t>(s)]]
                                : nullptr;
      if (core.thread(s) != next) ++switches_[lane];
      core.set_thread(s, next);
    }
    ++timeslices_[lane];
    return;
  }
  st.next.assign(static_cast<std::size_t>(slots), nullptr);
  st.policy->pick(
      std::span<ThreadContext* const>(st.pool.data(), st.pool_size), core,
      cycle_[lane], st.next);
  for (int s = 0; s < slots; ++s) {
    ThreadContext* next = st.next[static_cast<std::size_t>(s)];
    if (core.thread(s) != next) ++switches_[lane];
    core.set_thread(s, next);
  }
  ++timeslices_[lane];
}

void SimBatch::reschedule_fused(std::size_t lane) {
  // The sreplay branch of reschedule(), mapped onto the kernel's dense
  // slot array: pool indices for slots 0..take, -1 beyond. Pool pointers
  // are distinct per index, so index comparison counts exactly the
  // switches the pointer comparison would.
  Lane& st = lane_state_[lane];
  const int slots = st.core->num_slots();
  const std::uint64_t w = timeslices_[lane];
  st.sreplay->ensure(w + 1);
  const std::uint8_t* row = st.sreplay->window(w);
  const std::size_t take = st.sreplay->take();
  for (int s = 0; s < slots; ++s) {
    const std::int16_t next =
        static_cast<std::size_t>(s) < take
            ? static_cast<std::int16_t>(row[static_cast<std::size_t>(s)])
            : std::int16_t{-1};
    if (st.f_slot[static_cast<std::size_t>(s)] != next) ++switches_[lane];
    st.f_slot[static_cast<std::size_t>(s)] = next;
  }
  ++timeslices_[lane];
}

bool SimBatch::step_window_fused(std::size_t lane) {
  Lane& st = lane_state_[lane];
  std::uint64_t cycle = cycle_[lane];
  const std::uint64_t timeslice = timeslice_[lane];
  const std::uint64_t max_cycles = max_cycles_[lane];
  if (cycle >= max_cycles) return false;
  if (cycle % timeslice == 0) reschedule_fused(lane);
  const std::uint64_t end =
      std::min(max_cycles, cycle - cycle % timeslice + timeslice);

  MergeEngine& engine = st.core->engine_mut();
  SetAssocCache& dcache = *st.f_dcache;
  const int n = st.core->num_slots();
  constexpr std::uint64_t kNever = ~std::uint64_t{0};
  const std::uint64_t ipen = static_cast<std::uint64_t>(st.f_ipen);
  const int dpen = st.f_dpen;
  const std::uint64_t bpen = static_cast<std::uint64_t>(st.f_bpen);
  const bool serialized = st.f_miss_policy == MissPolicy::kSerialized;

  // Remap the persistent per-thread state (tentpole: it survives windows
  // and harvest-and-refill in the f_* arrays) into per-slot views — the
  // cheap, dense equivalent of run_until's context polling. f_fp[t] is
  // null exactly when the thread owes a refill (issued last cycle, or
  // never ran).
  std::array<const Footprint*, kMaxThreads> fps;
  std::array<std::uint64_t, kMaxThreads> ready;
  std::array<const Footprint*, kMaxThreads> offers;
  std::array<int, kMaxThreads> tid;
  std::uint32_t refill_mask = 0;
  for (int s = 0; s < n; ++s) {
    const auto us = static_cast<std::size_t>(s);
    const int t = st.f_slot[us];
    tid[us] = t;
    fps[us] = nullptr;
    ready[us] = kNever;
    if (t < 0 || st.f_done[static_cast<std::size_t>(t)] != 0) continue;
    const auto ut = static_cast<std::size_t>(t);
    if (st.f_fp[ut] != nullptr) {
      fps[us] = st.f_fp[ut];
      ready[us] = st.f_ready[ut];
    } else {
      refill_mask |= 1u << static_cast<unsigned>(s);
    }
  }
  const std::span<const Footprint* const> cand_span(
      offers.data(), static_cast<std::size_t>(n));

  bool any_done = false;
  while (cycle < end) {
    // Inlined ThreadContext::refill, structural-fetch flavour: next
    // recorded entry, first-touch bit instead of a cache walk. Ascending
    // slot order, as in run_until.
    while (refill_mask != 0) {
      const int s = std::countr_zero(refill_mask);
      refill_mask &= refill_mask - 1;
      const auto us = static_cast<std::size_t>(s);
      const auto t = static_cast<std::size_t>(tid[us]);
      const std::uint64_t pos = st.f_pos[t]++;
      const TraceReplay::Entry& e = st.f_replay[t]->entry(pos);
      st.f_fp[t] = e.fp;
      st.f_entry[t] = &e;
      fps[us] = e.fp;
      std::uint64_t r = st.f_ready[t];
      if (st.f_ft[t]->miss(pos)) {
        r = std::max(r, cycle) + ipen;
        st.f_stats[t].icache_stall_cycles += ipen;
        ++st.f_imiss[t];
        st.f_ready[t] = r;
      }
      ready[us] = r;
    }

    int num_offers = 0;
    int only_offer = -1;
    for (int s = 0; s < n; ++s) {
      const auto us = static_cast<std::size_t>(s);
      const Footprint* fp = cycle >= ready[us] ? fps[us] : nullptr;
      offers[us] = fp;
      if (fp != nullptr) {
        ++num_offers;
        only_offer = s;
      }
    }

    if (num_offers != 0) {
      // The decision routes through the lane's own engine — identical
      // rotation state, identical statistics — only the per-thread issue
      // bookkeeping (ThreadContext::consume) is inlined below.
      std::uint32_t mask =
          engine.select_mask_gathered(cand_span, num_offers, only_offer);
      while (mask != 0) {
        const int s = std::countr_zero(mask);
        mask &= mask - 1;
        const auto us = static_cast<std::size_t>(s);
        const auto t = static_cast<std::size_t>(tid[us]);
        ThreadStats& ts = st.f_stats[t];
        const TraceReplay& rp = *st.f_replay[t];
        const TraceReplay::Entry& e = *st.f_entry[t];
        ++ts.instructions;
        ts.ops += e.op_count;
        if (e.empty) ++ts.bubbles;
        // Shared unbanked DCache, no L2: a miss costs exactly dpen, so
        // the serialized/overlapped fold collapses to total-vs-any.
        int dmiss_total = 0;
        int dmiss_max = 0;
        const std::uint64_t* addrs = rp.mem_addrs(e);
        for (int k = 0; k < static_cast<int>(e.mem_count); ++k) {
          if (!dcache.access(addrs[k])) {
            dmiss_total += dpen;
            dmiss_max = dpen;
          }
        }
        const int dmiss = serialized ? dmiss_total : dmiss_max;
        std::uint64_t stall = 1 + static_cast<std::uint64_t>(dmiss);
        ts.dcache_stall_cycles += static_cast<std::uint64_t>(dmiss);
        if (e.taken) {
          ++ts.taken_branches;
          stall += bpen;
          ts.branch_stall_cycles += bpen;
        }
        st.f_ops += e.op_count;
        ++st.f_instr;
        st.f_ready[t] = cycle + stall;
        st.f_fp[t] = nullptr;
        ready[us] = kNever;
        if (ts.instructions >= st.f_budget) {
          st.f_done[t] = 1;
          any_done = true;
        } else {
          refill_mask |= 1u << static_cast<unsigned>(s);
        }
      }
      ++cycle;
      if (any_done) break;
      continue;
    }

    // All-stalled fast-forward, exactly as in run_until.
    std::uint64_t next = end;
    if (st.f_stall_ff) {
      for (int s = 0; s < n; ++s)
        next = std::min(next, ready[static_cast<std::size_t>(s)]);
      next = std::max(next, cycle + 1);
    } else {
      next = cycle + 1;
    }
    st.f_idle += next - cycle;
    cycle = next;
  }
  cycle_[lane] = cycle;
  if (any_done) return false;  // the finishing cycle is already counted
  return cycle < max_cycles;
}

bool SimBatch::step_window(std::size_t lane) {
  if (lane_state_[lane].fused) return step_window_fused(lane);
  // One iteration of OsScheduler::run's loop: reschedule at the slice
  // boundary, hand the clamped window to the core (which fast-forwards
  // all-stalled stretches inside it), stop on first completion.
  const std::uint64_t cycle = cycle_[lane];
  const std::uint64_t timeslice = timeslice_[lane];
  const std::uint64_t max_cycles = max_cycles_[lane];
  if (cycle >= max_cycles) return false;
  if (cycle % timeslice == 0) reschedule(lane);
  const std::uint64_t slice_end =
      std::min(max_cycles, cycle - cycle % timeslice + timeslice);
  bool any_done = false;
  cycle_[lane] =
      lane_state_[lane].core->run_until(cycle, slice_end, any_done);
  if (any_done) return false;  // the finishing cycle is already counted
  return cycle_[lane] < max_cycles;
}

SimResult SimBatch::harvest(std::size_t lane) {
  Lane& st = lane_state_[lane];
  const BatchRunSpec& spec = jobs_[st.job];
  const MultithreadedCore& core = *st.core;

  SimResult r;
  r.scheme = spec.scheme->scheme().name();
  r.cycles = cycle_[lane];
  if (st.fused) {
    r.total_ops = st.f_ops;
    r.total_instructions = st.f_instr;
    r.idle_cycles = st.f_idle;
  } else {
    r.total_ops = core.stats().total_ops;
    r.total_instructions = core.stats().total_instructions;
    r.idle_cycles = core.stats().idle_cycles;
  }
  r.ipc = r.cycles ? static_cast<double>(r.total_ops) /
                         static_cast<double>(r.cycles)
                   : 0.0;
  r.threads.reserve(st.pool_size);
  for (std::size_t i = 0; i < st.pool_size; ++i) {
    ThreadResult tr;
    if (st.fused) {
      tr.benchmark = spec.progs()[i]->profile().name;
      tr.instructions = st.f_stats[i].instructions;
      tr.ops = st.f_stats[i].ops;
      tr.stats = st.f_stats[i];
    } else {
      const ThreadContext& t = *st.pool[i];
      tr.benchmark = t.name();
      tr.instructions = t.stats().instructions;
      tr.ops = t.stats().ops;
      tr.stats = t.stats();
    }
    r.threads.push_back(std::move(tr));
  }
  if (st.fused || st.structural) {
    // Structural fetch mode never walked the ICache; its stats are the
    // per-thread fetch/first-touch counts (one fetch per refill, a miss
    // exactly on a first touch — what the live walk would have counted).
    RatioCounter ic;
    std::uint64_t misses = 0;
    for (std::size_t i = 0; i < st.pool_size; ++i) {
      ic.total += st.fused ? st.f_pos[i] : st.pool[i]->structural_fetches();
      misses += st.fused ? st.f_imiss[i] : st.pool[i]->structural_misses();
    }
    ic.hits = ic.total - misses;
    r.icache = ic;
  } else {
    r.icache = st.mem->icache_stats();
  }
  r.dcache = st.mem->dcache_stats();
  r.l2 = st.mem->l2_stats();
  r.issued_per_cycle = core.engine().issued_histogram();
  r.merge_nodes = core.engine().node_stats();
  r.os = OsRunStats{switches_[lane], timeslices_[lane]};
  return r;
}

bool SimBatch::structural_for(WorkloadBinding& bind,
                              const BatchRunSpec& spec) {
  const SimConfig& cfg = spec.config;
  for (const auto& [mem, eligible] : bind.structural)
    if (mem == cfg.mem) return eligible;
  // The exact recorded variant, not the static one: loop code regions
  // alias in cache sets (4KB apart vs a 16KB set period), so whole
  // programs rarely pass the static test — but the lines a budget-bounded
  // run can actually fetch are right there in the recordings this path
  // already requires. Memoized per memory config; the binding key pins
  // (programs, seed base, budget), everything the verdict depends on.
  const bool eligible =
      analyze_icache_structural_recorded(bind.replays,
                                         cfg.instruction_budget, cfg.mem)
          .eligible;
  bind.structural.emplace_back(cfg.mem, eligible);
  return eligible;
}

const FirstTouchIndex* SimBatch::first_touch_for(TraceReplay* replay,
                                                 std::uint32_t line_shift,
                                                 std::uint64_t budget) {
  replay_bytes_ -= replay->bytes();
  const FirstTouchIndex& ft = replay->first_touch(line_shift, budget);
  replay_bytes_ += replay->bytes();
  return &ft;
}

TraceReplay* SimBatch::replay_for(
    const std::shared_ptr<const SyntheticProgram>& program,
    std::uint64_t stream_seed, std::uint64_t budget) {
  if (budget > kReplayBudgetCap) return nullptr;
  const auto key = std::make_pair(program.get(), stream_seed);
  auto it = replays_.find(key);
  if (it == replays_.end()) {
    if (replay_bytes_ >= kReplayByteCap) return nullptr;
    it = replays_
             .emplace(key, ReplaySlot{program, std::make_unique<TraceReplay>(
                                                   program, stream_seed)})
             .first;
  }
  TraceReplay& replay = *it->second.replay;
  replay_bytes_ -= replay.bytes();
  replay.ensure(budget);
  replay_bytes_ += replay.bytes();
  return &replay;
}

std::vector<SimResult> SimBatch::run_all() {
  std::vector<SimResult> results(jobs_.size());
  const std::size_t num_lanes = lane_state_.size();

  // No context is mid-run between run_all calls, so over-budget caches
  // can be dropped safely here. The workload memo survives run_all (its
  // keys own their programs, so stale-address re-matches are impossible)
  // but points into replays_, so it must go whenever the recordings go —
  // and when workload churn trips its own cap.
  if (workload_replays_.size() > kMaxWorkloadBindings ||
      replay_bytes_ > kReplayByteCap / 2) {
    workload_replays_.clear();
    if (replay_bytes_ > kReplayByteCap / 2) {
      replays_.clear();
      replay_bytes_ = 0;
    }
  }
  // Pending jobs, consumed from `head`. A freed lane prefers a job whose
  // scheme already has a cached core in this lane (bounded look-ahead) so
  // interleaved grids reset cores in place instead of constructing them;
  // results are job-indexed, so the pick order never shows in the output.
  std::vector<std::size_t> pending(jobs_.size());
  for (std::size_t j = 0; j < pending.size(); ++j) pending[j] = j;
  std::size_t head = 0;
  const auto take_next = [&](std::size_t lane) {
    Lane& st = lane_state_[lane];
    if (!st.cores.empty()) {
      const std::size_t end =
          std::min(pending.size(), head + kAffinityWindow);
      for (std::size_t p = head; p < end; ++p) {
        if (st.find_core(jobs_[pending[p]].scheme.get()) != nullptr) {
          std::swap(pending[p], pending[head]);
          break;
        }
      }
    }
    return pending[head++];
  };

  std::size_t live = 0;
  for (std::size_t l = 0; l < num_lanes && head < pending.size(); ++l) {
    prepare(l, take_next(l));
    ++live;
  }
  // Lockstep: each round advances every active lane one timeslice window;
  // a lane that finishes harvests its result and immediately swaps in the
  // next queued job, so the batch stays full until the queue drains.
  while (live > 0) {
    for (std::size_t l = 0; l < num_lanes; ++l) {
      if (!active_[l]) continue;
      if (step_window(l)) continue;
      results[lane_state_[l].job] = harvest(l);
      if (head < pending.size()) {
        prepare(l, take_next(l));
      } else {
        active_[l] = 0;
        --live;
      }
    }
  }
  jobs_.clear();
  return results;
}

}  // namespace cvmt
