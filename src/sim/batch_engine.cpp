#include "sim/batch_engine.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "support/check.hpp"

namespace cvmt {

SimBatch::SimBatch(int lanes)
    : lanes_(lanes),
      lane_state_(static_cast<std::size_t>(std::max(lanes, 1))),
      cycle_(lane_state_.size(), 0),
      timeslice_(lane_state_.size(), 0),
      max_cycles_(lane_state_.size(), 0),
      switches_(lane_state_.size(), 0),
      timeslices_(lane_state_.size(), 0),
      active_(lane_state_.size(), 0) {
  CVMT_CHECK_MSG(lanes >= 1, "SimBatch needs at least one lane");
}

SimBatch::~SimBatch() {
  // Arena storage never runs destructors; the contexts are ours to end.
  for (Lane& lane : lane_state_)
    for (ThreadContext* t : lane.pool) t->~ThreadContext();
}

void SimBatch::enqueue(BatchRunSpec spec) {
  CVMT_CHECK_MSG(spec.scheme != nullptr,
                 "batch job needs a compiled scheme");
  CVMT_CHECK_MSG(!spec.programs.empty(), "empty workload");
  CVMT_CHECK_MSG(spec.config.machine == spec.scheme->machine(),
                 "SimConfig.machine must equal the compiled scheme's "
                 "machine");
  CVMT_CHECK_MSG(spec.config.timeslice_cycles >= 1,
                 "timeslice must be positive");
  jobs_.push_back(std::move(spec));
}

void SimBatch::prepare(std::size_t lane, std::size_t job) {
  Lane& st = lane_state_[lane];
  const BatchRunSpec& spec = jobs_[job];
  const SimConfig& cfg = spec.config;
  const CompiledScheme& scheme = *spec.scheme;
  const int nthreads = scheme.scheme().num_threads();

  st.job = job;

  // Memory system: re-emplaced only on geometry change (or a thread-count
  // change the built arrays can't absorb — see rebind). Re-emplacement
  // keeps the optional's payload address, so a kept core's MemorySystem&
  // stays valid.
  if (!st.mem || !(st.mem_cfg == cfg.mem) || !st.mem->rebind(nthreads)) {
    st.mem.emplace(cfg.mem, nthreads);
    st.mem_cfg = cfg.mem;
  } else {
    st.mem->reset();
  }

  // The compile-time-chosen evaluator: plans with a bound fixed path run
  // the shape-specialized interpreter (bit-identical decisions). Explicit
  // non-default modes (tree reference validation) are honoured.
  const CoreOptions options{cfg.stats,
                            cfg.eval_mode == EvalMode::kPlan
                                ? scheme.preferred_eval_mode()
                                : cfg.eval_mode,
                            cfg.stall_fast_forward};
  if (!st.core || st.scheme_key != scheme.key()) {
    st.core.emplace(scheme.machine(), scheme.scheme(), scheme.plan(),
                    cfg.priority, *st.mem, cfg.miss_policy, options);
    st.scheme_key = scheme.key();
  } else {
    st.core->reset(cfg.priority, cfg.miss_policy, options);
  }

  // Thread contexts live in the arena and are rebound in place; contexts
  // beyond this job's pool stay constructed for later, wider jobs. Each
  // context replays its stream from the batch-shared recording when one
  // is available (small budgets), bit-identically to driving its own
  // generator. The recordings are resolved once per workload (grids
  // re-bind the same programs vector job after job).
  const auto wkey =
      std::make_tuple(static_cast<const void*>(spec.programs.data()),
                      cfg.stream_seed_base, cfg.instruction_budget);
  std::vector<const TraceReplay*>& replays = workload_replays_[wkey];
  if (replays.size() != spec.programs.size()) {
    replays.clear();
    for (std::size_t i = 0; i < spec.programs.size(); ++i) {
      const auto& prog = spec.programs[i];
      CVMT_CHECK(prog != nullptr);
      const std::uint64_t stream_seed =
          cfg.stream_seed_base + 0x1000ULL * i;
      replays.push_back(
          replay_for(prog, stream_seed, cfg.instruction_budget));
    }
  }
  for (std::size_t i = 0; i < spec.programs.size(); ++i) {
    const auto& prog = spec.programs[i];
    CVMT_CHECK_MSG(prog->machine() == cfg.machine,
                   "program compiled for a different machine");
    const std::uint64_t stream_seed =
        cfg.stream_seed_base + 0x1000ULL * i;
    if (i < st.pool.size()) {
      st.pool[i]->reset(prog->profile().name, prog, stream_seed,
                        cfg.instruction_budget);
    } else {
      st.pool.push_back(arena_.create<ThreadContext>(
          prog->profile().name, prog, stream_seed,
          cfg.instruction_budget));
    }
    st.pool[i]->set_replay(replays[i]);
  }
  st.pool_size = spec.programs.size();

  if (!st.policy || st.policy_kind != cfg.switch_policy) {
    st.policy = make_switch_policy(cfg.switch_policy, cfg.os_seed);
    st.policy_kind = cfg.switch_policy;
  } else {
    st.policy->reset(cfg.os_seed);
  }

  // Oblivious policies re-draw the same pick sequence for every job that
  // shares (kind, seed, pool size, slots); record it once and replay.
  // Valid because step_window stops a run at the first thread completion,
  // so no reschedule ever observes a done thread — the one case where an
  // oblivious policy's decision could diverge from the recording.
  st.sreplay = nullptr;
  if (st.policy->oblivious() && st.pool_size <= 255) {
    const auto skey =
        std::make_tuple(cfg.switch_policy, cfg.os_seed,
                        static_cast<int>(st.pool_size), st.core->num_slots());
    std::unique_ptr<SwitchReplay>& slot = switch_replays_[skey];
    if (!slot)
      slot = std::make_unique<SwitchReplay>(
          cfg.switch_policy, cfg.os_seed, static_cast<int>(st.pool_size),
          st.core->num_slots());
    st.sreplay = slot.get();
  }

  cycle_[lane] = 0;
  timeslice_[lane] = cfg.timeslice_cycles;
  max_cycles_[lane] = cfg.max_cycles;
  switches_[lane] = 0;
  timeslices_[lane] = 0;
  active_[lane] = 1;
}

void SimBatch::reschedule(std::size_t lane) {
  Lane& st = lane_state_[lane];
  MultithreadedCore& core = *st.core;
  const int slots = core.num_slots();
  if (st.sreplay != nullptr) {
    // Replay the recorded row for this run's window count: pool indices
    // for slots 0..take, nullptr beyond — exactly what the live policy's
    // pick() would assign.
    const std::uint64_t w = timeslices_[lane];
    st.sreplay->ensure(w + 1);
    const std::uint8_t* row = st.sreplay->window(w);
    const std::size_t take = st.sreplay->take();
    for (int s = 0; s < slots; ++s) {
      ThreadContext* next = static_cast<std::size_t>(s) < take
                                ? st.pool[row[static_cast<std::size_t>(s)]]
                                : nullptr;
      if (core.thread(s) != next) ++switches_[lane];
      core.set_thread(s, next);
    }
    ++timeslices_[lane];
    return;
  }
  st.next.assign(static_cast<std::size_t>(slots), nullptr);
  st.policy->pick(
      std::span<ThreadContext* const>(st.pool.data(), st.pool_size), core,
      cycle_[lane], st.next);
  for (int s = 0; s < slots; ++s) {
    ThreadContext* next = st.next[static_cast<std::size_t>(s)];
    if (core.thread(s) != next) ++switches_[lane];
    core.set_thread(s, next);
  }
  ++timeslices_[lane];
}

bool SimBatch::step_window(std::size_t lane) {
  // One iteration of OsScheduler::run's loop: reschedule at the slice
  // boundary, hand the clamped window to the core (which fast-forwards
  // all-stalled stretches inside it), stop on first completion.
  const std::uint64_t cycle = cycle_[lane];
  const std::uint64_t timeslice = timeslice_[lane];
  const std::uint64_t max_cycles = max_cycles_[lane];
  if (cycle >= max_cycles) return false;
  if (cycle % timeslice == 0) reschedule(lane);
  const std::uint64_t slice_end =
      std::min(max_cycles, cycle - cycle % timeslice + timeslice);
  bool any_done = false;
  cycle_[lane] =
      lane_state_[lane].core->run_until(cycle, slice_end, any_done);
  if (any_done) return false;  // the finishing cycle is already counted
  return cycle_[lane] < max_cycles;
}

SimResult SimBatch::harvest(std::size_t lane) {
  Lane& st = lane_state_[lane];
  const BatchRunSpec& spec = jobs_[st.job];
  const MultithreadedCore& core = *st.core;

  SimResult r;
  r.scheme = spec.scheme->scheme().name();
  r.cycles = cycle_[lane];
  r.total_ops = core.stats().total_ops;
  r.total_instructions = core.stats().total_instructions;
  r.idle_cycles = core.stats().idle_cycles;
  r.ipc = r.cycles ? static_cast<double>(r.total_ops) /
                         static_cast<double>(r.cycles)
                   : 0.0;
  for (std::size_t i = 0; i < st.pool_size; ++i) {
    const ThreadContext& t = *st.pool[i];
    ThreadResult tr;
    tr.benchmark = t.name();
    tr.instructions = t.stats().instructions;
    tr.ops = t.stats().ops;
    tr.stats = t.stats();
    r.threads.push_back(std::move(tr));
  }
  r.icache = st.mem->icache_stats();
  r.dcache = st.mem->dcache_stats();
  r.l2 = st.mem->l2_stats();
  r.issued_per_cycle = core.engine().issued_histogram();
  r.merge_nodes = core.engine().node_stats();
  r.os = OsRunStats{switches_[lane], timeslices_[lane]};
  return r;
}

const TraceReplay* SimBatch::replay_for(
    const std::shared_ptr<const SyntheticProgram>& program,
    std::uint64_t stream_seed, std::uint64_t budget) {
  if (budget > kReplayBudgetCap) return nullptr;
  const auto key = std::make_pair(program.get(), stream_seed);
  auto it = replays_.find(key);
  if (it == replays_.end()) {
    if (replay_bytes_ >= kReplayByteCap) return nullptr;
    it = replays_
             .emplace(key, ReplaySlot{program, std::make_unique<TraceReplay>(
                                                   program, stream_seed)})
             .first;
  }
  TraceReplay& replay = *it->second.replay;
  replay_bytes_ -= replay.bytes();
  replay.ensure(budget);
  replay_bytes_ += replay.bytes();
  return &replay;
}

std::vector<SimResult> SimBatch::run_all() {
  std::vector<SimResult> results(jobs_.size());
  const std::size_t num_lanes = lane_state_.size();

  // No context is mid-run between run_all calls, so an over-budget
  // recording cache can be dropped safely here. The per-workload pointer
  // memo always restarts: programs from earlier queues may be gone, and
  // a new vector at a recycled address must not re-match.
  workload_replays_.clear();
  if (replay_bytes_ > kReplayByteCap / 2) {
    replays_.clear();
    replay_bytes_ = 0;
  }
  // Pending jobs, consumed from `head`. A freed lane prefers a job whose
  // scheme matches its built core (bounded look-ahead) so scheme-major
  // grids reset cores in place instead of re-emplacing them; results are
  // job-indexed, so the pick order never shows in the output.
  std::vector<std::size_t> pending(jobs_.size());
  for (std::size_t j = 0; j < pending.size(); ++j) pending[j] = j;
  std::size_t head = 0;
  const auto take_next = [&](std::size_t lane) {
    const Lane& st = lane_state_[lane];
    if (st.core) {
      const std::size_t end =
          std::min(pending.size(), head + kAffinityWindow);
      for (std::size_t p = head; p < end; ++p) {
        if (jobs_[pending[p]].scheme->key() == st.scheme_key) {
          std::swap(pending[p], pending[head]);
          break;
        }
      }
    }
    return pending[head++];
  };

  std::size_t live = 0;
  for (std::size_t l = 0; l < num_lanes && head < pending.size(); ++l) {
    prepare(l, take_next(l));
    ++live;
  }
  // Lockstep: each round advances every active lane one timeslice window;
  // a lane that finishes harvests its result and immediately swaps in the
  // next queued job, so the batch stays full until the queue drains.
  while (live > 0) {
    for (std::size_t l = 0; l < num_lanes; ++l) {
      if (!active_[l]) continue;
      if (step_window(l)) continue;
      results[lane_state_[l].job] = harvest(l);
      if (head < pending.size()) {
        prepare(l, take_next(l));
      } else {
        active_[l] = 0;
        --live;
      }
    }
  }
  jobs_.clear();
  return results;
}

}  // namespace cvmt
