// One software thread: trace generator + architectural timing state.
//
// The context survives OS descheduling (paper §5.1 runs a multitasking
// environment with 1M-cycle timeslices): all position, stall and stat
// state lives here, and the core merely points at the contexts currently
// occupying hardware thread slots.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "isa/machine_config.hpp"
#include "mem/memory_system.hpp"
#include "trace/trace_generator.hpp"

namespace cvmt {

class FirstTouchIndex;
class TraceReplay;

/// How multiple DCache misses inside one issued packet are charged.
enum class MissPolicy : std::uint8_t {
  kSerialized,  ///< each miss blocks in turn (simple blocking LSU, default;
                ///< matches the profile calibration exactly)
  kOverlapped,  ///< misses overlap (per-cluster LSUs with MLP; ablation)
};

/// Per-thread execution statistics.
struct ThreadStats {
  std::uint64_t instructions = 0;  ///< issued VLIW instructions (w/ bubbles)
  std::uint64_t bubbles = 0;       ///< issued empty instructions
  std::uint64_t ops = 0;           ///< useful operations issued
  std::uint64_t taken_branches = 0;
  std::uint64_t dcache_stall_cycles = 0;
  std::uint64_t icache_stall_cycles = 0;
  std::uint64_t branch_stall_cycles = 0;
  /// Serialization cycles from same-packet accesses colliding on a DCache
  /// bank (always 0 on unbanked machines).
  std::uint64_t bank_conflict_cycles = 0;
};

/// A software thread executing one synthetic program.
class ThreadContext {
 public:
  ThreadContext(std::string name,
                std::shared_ptr<const SyntheticProgram> program,
                std::uint64_t stream_seed,
                std::uint64_t instruction_budget);

  // Not copyable: the pending-instruction pointers alias this object's
  // own generator scratch, so a copy would silently track the source's
  // mutable state (and dangle past its lifetime). Contexts are shared by
  // pointer (see OsScheduler), never by value.
  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  /// Rebinds this context to a fresh execution, bit-identical to
  /// constructing a new ThreadContext with the same arguments but reusing
  /// the string/cursor allocations. The session layer recycles contexts
  /// across runs on this guarantee.
  void reset(std::string_view name,
             std::shared_ptr<const SyntheticProgram> program,
             std::uint64_t stream_seed, std::uint64_t instruction_budget);

  /// Switches this context to replay a recorded stream instead of driving
  /// its own generator. `replay` must have been recorded from the same
  /// (program, stream_seed) this context was reset with, and must hold at
  /// least `instruction_budget` entries; the caller keeps it alive for the
  /// run. Cache fetches and data accesses still happen live — only the
  /// stream *content* comes from the recording, so the execution is
  /// bit-identical to the generator path. reset() clears replay mode.
  void set_replay(const TraceReplay* replay) {
    replay_ = replay;
    replay_pos_ = 0;
    first_touch_ = nullptr;
    icache_penalty_ = 0;
    structural_misses_ = 0;
  }

  /// Structurally-eviction-free fetch mode (batch engine, replay runs
  /// only): the caller has proven the shared ICache never evicts for this
  /// workload, so refill() charges `miss_penalty` exactly when the
  /// recording's first-touch bit is set instead of walking the cache —
  /// bit-identical timing, and the per-thread fetch/miss counts feed the
  /// harvested ICache stats (structural_fetches/structural_misses).
  /// Requires an active set_replay(); cleared by set_replay()/reset().
  void set_structural_fetch(const FirstTouchIndex* first_touch,
                            int miss_penalty) {
    first_touch_ = first_touch;
    icache_penalty_ = miss_penalty;
    structural_misses_ = 0;
  }

  /// Fetches performed so far on the replay path (one per refill).
  [[nodiscard]] std::uint64_t structural_fetches() const {
    return replay_pos_;
  }
  /// First-touch misses charged in structural fetch mode.
  [[nodiscard]] std::uint64_t structural_misses() const {
    return structural_misses_;
  }

  /// Offers this thread's next instruction for merging at `cycle`.
  /// Fetches (and charges ICache penalties) lazily; returns nullptr while
  /// the thread is stalled or has completed its budget. `hw_tid` routes
  /// cache accesses when caches are private. Inline: the overwhelmingly
  /// common case (an instruction already fetched, still stalled or ready)
  /// is two compares; the fetch lives out of line in refill().
  const Footprint* offer(std::uint64_t cycle, MemorySystem& mem,
                         int hw_tid) {
    if (done_) return nullptr;
    if (!has_pending_) refill(cycle, mem, hw_tid);
    return cycle >= ready_at_ ? pending_fp_ : nullptr;
  }

  /// Issues the previously offered instruction: accounts statistics,
  /// performs DCache accesses and computes the next-issue stall.
  void consume(std::uint64_t cycle, MemorySystem& mem, int hw_tid,
               const MachineConfig& machine, MissPolicy policy);

  /// Generates the next instruction and charges the ICache fetch at
  /// `cycle`. Exposed so the cycle loop can cache (ready_at, footprint)
  /// per slot and refill exactly once per issued instruction instead of
  /// re-polling offer() every cycle; offer() calls it lazily for all
  /// other callers. Precondition: !done() and !has_pending().
  void refill(std::uint64_t cycle, MemorySystem& mem, int hw_tid);

  /// Footprint of the pending instruction (valid while has_pending()).
  [[nodiscard]] const Footprint* pending_footprint() const {
    return pending_fp_;
  }

  /// True once `instruction_budget` instructions have issued.
  [[nodiscard]] bool done() const { return done_; }

  /// True while a fetched instruction is waiting to issue (offer() has been
  /// called since the last consume()).
  [[nodiscard]] bool has_pending() const { return has_pending_; }

  /// First cycle at which the pending instruction can issue. Meaningful
  /// only while has_pending(); the stall fast-forward uses it to jump over
  /// all-stalled windows without stepping them cycle by cycle.
  [[nodiscard]] std::uint64_t ready_at() const { return ready_at_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ThreadStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t budget() const { return budget_; }

 private:
  std::string name_;
  TraceGenerator gen_;
  std::uint64_t budget_;

  /// Deferred generator rebind: reset() only records the target stream
  /// here and refill() arms the generator on first use. A replay-backed
  /// run never touches its generator, so the batch engine skips the
  /// stream-start work (RNG seeding, loop setup) entirely; on the
  /// generator path the same work happens at first refill instead of at
  /// reset — bit-identical either way, the stream is a pure function of
  /// (program, seed).
  std::shared_ptr<const SyntheticProgram> pending_program_;
  std::uint64_t pending_seed_ = 0;
  bool gen_stale_ = false;

  bool has_pending_ = false;
  bool done_ = false;
  /// Pending instruction state: pointers into our own generator (its
  /// scratch stays untouched between refill() and consume()) and into the
  /// shared immutable program (footprint, patch list).
  const Footprint* pending_fp_ = nullptr;
  const Instruction* pending_ = nullptr;
  const SyntheticProgram::PatchList* pending_patches_ = nullptr;
  std::uint64_t ready_at_ = 0;

  /// Replay mode (batch engine): recorded stream and the index of the
  /// next entry to fetch. Null on the classic generator path.
  const TraceReplay* replay_ = nullptr;
  std::uint64_t replay_pos_ = 0;
  /// Structural fetch mode (see set_structural_fetch); null = live cache.
  const FirstTouchIndex* first_touch_ = nullptr;
  int icache_penalty_ = 0;
  std::uint64_t structural_misses_ = 0;

  ThreadStats stats_;
};

}  // namespace cvmt
