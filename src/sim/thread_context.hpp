// One software thread: trace generator + architectural timing state.
//
// The context survives OS descheduling (paper §5.1 runs a multitasking
// environment with 1M-cycle timeslices): all position, stall and stat
// state lives here, and the core merely points at the contexts currently
// occupying hardware thread slots.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "isa/machine_config.hpp"
#include "mem/memory_system.hpp"
#include "trace/trace_generator.hpp"

namespace cvmt {

/// How multiple DCache misses inside one issued packet are charged.
enum class MissPolicy : std::uint8_t {
  kSerialized,  ///< each miss blocks in turn (simple blocking LSU, default;
                ///< matches the profile calibration exactly)
  kOverlapped,  ///< misses overlap (per-cluster LSUs with MLP; ablation)
};

/// Per-thread execution statistics.
struct ThreadStats {
  std::uint64_t instructions = 0;  ///< issued VLIW instructions (w/ bubbles)
  std::uint64_t bubbles = 0;       ///< issued empty instructions
  std::uint64_t ops = 0;           ///< useful operations issued
  std::uint64_t taken_branches = 0;
  std::uint64_t dcache_stall_cycles = 0;
  std::uint64_t icache_stall_cycles = 0;
  std::uint64_t branch_stall_cycles = 0;
};

/// A software thread executing one synthetic program.
class ThreadContext {
 public:
  ThreadContext(std::string name,
                std::shared_ptr<const SyntheticProgram> program,
                std::uint64_t stream_seed,
                std::uint64_t instruction_budget);

  /// Offers this thread's next instruction for merging at `cycle`.
  /// Fetches (and charges ICache penalties) lazily; returns nullptr while
  /// the thread is stalled or has completed its budget. `hw_tid` routes
  /// cache accesses when caches are private.
  const Footprint* offer(std::uint64_t cycle, MemorySystem& mem, int hw_tid);

  /// Issues the previously offered instruction: accounts statistics,
  /// performs DCache accesses and computes the next-issue stall.
  void consume(std::uint64_t cycle, MemorySystem& mem, int hw_tid,
               const MachineConfig& machine, MissPolicy policy);

  /// True once `instruction_budget` instructions have issued.
  [[nodiscard]] bool done() const { return done_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ThreadStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t budget() const { return budget_; }

 private:
  std::string name_;
  TraceGenerator gen_;
  std::uint64_t budget_;

  bool has_pending_ = false;
  bool done_ = false;
  Footprint pending_fp_;
  /// Copy of the pending instruction (the generator's scratch is
  /// invalidated by the prefetch inside consume()).
  Instruction pending_;
  std::uint64_t ready_at_ = 0;

  ThreadStats stats_;
};

}  // namespace cvmt
