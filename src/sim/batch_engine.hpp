// Lockstep batch simulation engine: many small runs through one engine.
//
// Dense sweeps (fuzz campaigns, shrinking, scheme searches) issue
// thousands of short simulations; the per-run cost of the session path —
// canonical-key lookup, OsScheduler construction (shared_ptr pool copy +
// policy heap allocation), per-thread context churn — is as large as the
// runs themselves at those budgets. SimBatch amortizes all of it:
//
//   * N *lanes*, each a SimInstance-equivalent run state, laid out
//     structure-of-arrays: per-lane cycle counters, timeslice bounds,
//     active masks and OS-stat accumulators live in contiguous arrays the
//     lockstep loop walks linearly; the per-lane heavy state (memory
//     system, core, contexts) is re-emplaced in place only when the next
//     job actually changes scheme or memory geometry.
//   * Per-run small state (thread contexts, pools) is carved from a
//     per-batch Arena instead of per-run heap allocations, and recycled
//     with in-place reset()s between jobs.
//   * The loop steps every active lane one timeslice window per round
//     (merge arbitration and stall fast-forwarding stay inside
//     MultithreadedCore::run_until, exactly as in the sequential path),
//     and a finished lane immediately swaps in the next queued job —
//     persistent-kernel style, the batch stays full until the grid
//     drains.
//   * Cross-run structure: a thread's instruction stream is a pure
//     function of (program, stream_seed) — the scheme and memory system
//     only decide *when* instructions issue. The batch records each
//     distinct stream once (TraceReplay) and every job that shares it
//     replays from the arrays, eliminating RNG draws, address-cursor
//     arithmetic and template patching from the hot path. A scheme x
//     workload grid re-uses each workload's recordings across every
//     scheme. Cache fetches and data accesses stay live per lane.
//   * Affinity-aware refill: a finished lane prefers a queued job whose
//     compiled scheme matches the core already built in the lane (bounded
//     look-ahead window), so lanes striding a scheme-major grid reset
//     their core in place instead of re-emplacing it per job. Results are
//     keyed by job index, so the pick order is unobservable in the
//     output.
//
// The contract is strict bit-identity: every SimResult a batch produces
// equals, field for field, what SimInstance::run would produce for the
// same (scheme, programs, config) — the batch only reorders *wall-clock*
// work across independent runs, never the cycle-level decisions inside
// one run (batch_engine_test pins this across lane counts, machines and
// switch policies).
// Batch-only cycle-loop kernels (see DESIGN.md §13). On top of the
// lockstep machinery, jobs that qualify run specialized code paths that
// stay bit-identical to the generic one:
//
//   * Structurally-eviction-free ICache (src/mem/icache_structural):
//     when the workload's recorded fetch-line sets are disjoint per
//     thread and no set is over-subscribed, hit/miss is the recording's
//     first-touch bit and the fetch-path cache walk disappears.
//   * A fused replay window kernel for the shared-unbanked-no-L2 replay
//     configs: refill + consume + merge-select inlined into one loop
//     over dense per-thread arrays, no ThreadContext dispatch at all.
//     Merge decisions still route through the lane's own MergeEngine,
//     so rotation and statistics are the generic path's exactly.
//   * Slot-state persistence: the fused kernel's ready/footprint state
//     and the recorded switch-policy cursors live in lane-persistent
//     arrays that survive windows and harvest-and-refill.
//
// CVMT_BATCH_KERNELS=off (or set_kernels_enabled(false)) forces every
// job onto the generic path; the fuzz oracle and CI byte-compare the
// two modes.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/session.hpp"
#include "sim/switch_replay.hpp"
#include "support/arena.hpp"
#include "trace/trace_replay.hpp"

namespace cvmt {

/// One queued simulation: compiled scheme, materialized programs, knobs.
/// The machine of `config` must equal the compiled scheme's machine.
/// Grid submitters that enqueue the same workload many times should set
/// `shared_programs` (e.g. aliasing the CompiledWorkload's vector) —
/// one refcount bump per job instead of copying the vector; `programs`
/// stays for one-off callers. When both are set, `shared_programs` wins.
struct BatchRunSpec {
  std::shared_ptr<const CompiledScheme> scheme;
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  std::shared_ptr<const std::vector<std::shared_ptr<const SyntheticProgram>>>
      shared_programs;
  SimConfig config;

  [[nodiscard]] const std::vector<std::shared_ptr<const SyntheticProgram>>&
  progs() const {
    return shared_programs != nullptr ? *shared_programs : programs;
  }
};

/// A pool of `lanes` lockstep run states draining a job queue.
/// Not thread-safe — one batch per worker thread.
class SimBatch {
 public:
  /// `lanes` >= 1. A 1-lane batch runs jobs one at a time, never
  /// interleaved (the affinity-aware refill may permute which job runs
  /// next; results always land in enqueue order).
  explicit SimBatch(int lanes);
  ~SimBatch();

  SimBatch(const SimBatch&) = delete;
  SimBatch& operator=(const SimBatch&) = delete;

  /// Queues one run. Invalid specs (empty workload, machine mismatch,
  /// zero timeslice) are rejected here, before any lane state moves.
  void enqueue(BatchRunSpec spec);

  /// Runs every queued job to completion and returns the results in
  /// enqueue order. The queue is left empty; the batch (lanes, arena,
  /// warmed caches) is reusable for the next grid.
  [[nodiscard]] std::vector<SimResult> run_all();

  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] std::size_t queued() const { return jobs_.size(); }
  /// Arena footprint of the per-run state (diagnostics/benchmarks).
  [[nodiscard]] const Arena& arena() const { return arena_; }

  /// Hard lane-pool ceiling; the arg layer validates --lanes against it.
  static constexpr int kMaxLanes = 4096;

  /// Batch-only specialized kernels (structural ICache + fused window).
  /// Default from CVMT_BATCH_KERNELS (on|off; on unless set). Results are
  /// bit-identical either way — the knob exists for verification and for
  /// measuring the kernels' contribution.
  void set_kernels_enabled(bool on) { kernels_enabled_ = on; }
  [[nodiscard]] bool kernels_enabled() const { return kernels_enabled_; }

  /// Which path each job ran, accumulated across run_all calls (the
  /// bench's kernel-coverage decomposition).
  struct KernelStats {
    std::uint64_t fused_jobs = 0;       ///< fused replay window kernel
    std::uint64_t structural_jobs = 0;  ///< structural ICache, generic loop
    std::uint64_t generic_jobs = 0;     ///< fully generic path
  };
  [[nodiscard]] const KernelStats& kernel_stats() const {
    return kernel_stats_;
  }

 private:
  /// Per-lane heavy state. The memory system and core are re-emplaced in
  /// place only when the incoming job changes memory geometry or scheme;
  /// std::optional re-emplacement keeps the object address stable, so
  /// the core's MemorySystem& stays valid across mem re-emplacements.
  struct Lane {
    std::size_t job = 0;  ///< index into jobs_ / results slot
    std::optional<MemorySystem> mem;
    /// Constructed cores, cached per compiled-scheme identity.
    /// Construction is the dominant per-job cost at small budgets
    /// (~35us vs ~4us for the whole run at budget 40), so a 16-scheme
    /// grid cycling through a lane constructs each core once and resets
    /// it thereafter — the same reset-equals-fresh contract the old
    /// keep-if-same-scheme logic relied on, generalized to every scheme
    /// the lane has seen. Keyed by the CompiledScheme pointer (each
    /// entry pins its scheme, so the address cannot be recycled while
    /// cached) and scanned linearly: grids hold a handful of schemes
    /// and a pointer compare beats a string-keyed map walk in the
    /// per-job hot path. All cores reference this lane's `mem` payload,
    /// whose address is stable across optional re-emplacement.
    struct CoreSlot {
      std::shared_ptr<const CompiledScheme> scheme;
      std::unique_ptr<MultithreadedCore> core;
    };
    std::vector<CoreSlot> cores;
    [[nodiscard]] CoreSlot* find_core(const CompiledScheme* scheme) {
      for (CoreSlot& slot : cores)
        if (slot.scheme.get() == scheme) return &slot;
      return nullptr;
    }
    MultithreadedCore* core = nullptr;  ///< current job's entry in cores
    /// Arena-constructed contexts, recycled across jobs. The first
    /// `pool_size` entries are the current job's software threads; any
    /// further entries stay constructed (idle) for reuse by later jobs.
    std::vector<ThreadContext*> pool;
    std::size_t pool_size = 0;  ///< contexts bound to the current job
    std::unique_ptr<SwitchPolicy> policy;
    SwitchPolicyKind policy_kind = SwitchPolicyKind::kRandomTimeslice;
    /// Batch-shared recorded pick sequence for this job's (policy, seed,
    /// pool size, slots); nullptr when the policy is not oblivious (the
    /// live policy decides then).
    SwitchReplay* sreplay = nullptr;
    /// Memo of the last switch_replays_ lookup: consecutive jobs in a
    /// grid mostly share the key, so four scalar compares replace the
    /// map walk. sr_hit is only read when the key matches, and entries
    /// are never removed from switch_replays_ while a batch lives.
    std::tuple<SwitchPolicyKind, std::uint64_t, int, int> sr_key{};
    SwitchReplay* sr_hit = nullptr;
    std::vector<ThreadContext*> next;  ///< reschedule scratch
    /// Reuse key of the memory system currently constructed in this lane.
    MemorySystemConfig mem_cfg;

    /// Kernel selection for the current job (see prepare): `fused` runs
    /// step_window_fused over the f_* arrays below; `structural` runs the
    /// generic loop with contexts in structural-fetch mode; neither = the
    /// fully generic path.
    bool fused = false;
    bool structural = false;

    // --- fused-kernel state --------------------------------------------
    // Per-job constants, hoisted out of the cycle loop.
    std::uint64_t f_budget = 0;
    int f_ipen = 0;  ///< ICache miss penalty
    int f_dpen = 0;  ///< DCache miss penalty
    int f_bpen = 0;  ///< taken-branch penalty
    MissPolicy f_miss_policy = MissPolicy::kSerialized;
    bool f_stall_ff = true;
    SetAssocCache* f_dcache = nullptr;  ///< the one shared DCache
    /// Per software thread (size pool_size), persistent across windows
    /// and across the OS descheduling a thread: replay cursor, ready
    /// cycle, pending footprint (null = needs refill), done flag, stats,
    /// structural fetch-miss count. The ThreadContext-equivalent state,
    /// flattened to dense arrays the window kernel indexes directly.
    std::vector<const TraceReplay*> f_replay;
    std::vector<const FirstTouchIndex*> f_ft;
    std::vector<std::uint64_t> f_pos;
    std::vector<std::uint64_t> f_ready;
    std::vector<const Footprint*> f_fp;
    /// Entry behind f_fp (same refill), so consume reads the issue's
    /// op/branch/memory metadata without re-indexing the replay.
    std::vector<const TraceReplay::Entry*> f_entry;
    std::vector<std::uint8_t> f_done;
    std::vector<ThreadStats> f_stats;
    std::vector<std::uint64_t> f_imiss;
    /// Pool index resident in each hardware slot (-1 = idle slot).
    std::array<std::int16_t, kMaxThreads> f_slot{};
    /// Lane-level core counters (the CoreStats equivalents the fused
    /// kernel accumulates instead of core->stats()).
    std::uint64_t f_ops = 0;
    std::uint64_t f_instr = 0;
    std::uint64_t f_idle = 0;
  };

  /// Per-workload resolution memo: replay pointers and the
  /// structural-ICache verdict per memory config. Grids re-bind the same
  /// programs vector job after job; everything here is computed once per
  /// workload instead of once per job.
  struct WorkloadBinding {
    std::vector<TraceReplay*> replays;
    bool all_replayed = false;
    /// All programs compiled for the same machine (checked once per
    /// binding; each job then compares one program against its config
    /// instead of all of them).
    bool machines_uniform = false;
    std::vector<std::pair<MemorySystemConfig, bool>> structural;
  };

  /// Binds jobs_[job] onto `lane`: resets or re-emplaces the heavy state,
  /// rebinds the context pool, zeroes this lane's SoA slots. Equivalent
  /// to the entry reset of SimInstance::run.
  void prepare(std::size_t lane, std::size_t job);

  /// Advances one timeslice window (the body of OsScheduler::run's
  /// while-iteration). Returns false once the run finished — a thread
  /// completed its budget or the cycle limit was reached. Dispatches to
  /// step_window_fused for fused-kernel jobs.
  bool step_window(std::size_t lane);

  /// The fused replay window kernel: one window of refill + consume +
  /// merge-select inlined over the lane's f_* arrays. Bit-identical to
  /// the generic window (same engine, same DCache access order, same
  /// fast-forward arithmetic).
  bool step_window_fused(std::size_t lane);

  /// Applies the lane policy's pick at a slice boundary (the
  /// OsScheduler::reschedule equivalent, accumulating into the SoA OS
  /// counters).
  void reschedule(std::size_t lane);

  /// reschedule() for fused jobs: replays the recorded pick row into the
  /// f_slot map (fused jobs always have a switch replay).
  void reschedule_fused(std::size_t lane);

  /// Memoized structural-ICache verdict for this job's workload x memory
  /// config (exact recorded-line-set analysis; requires bind.all_replayed).
  bool structural_for(WorkloadBinding& bind, const BatchRunSpec& spec);

  /// First-touch flags of `replay` at `line_shift`, covering `budget`
  /// entries, with the cache byte budget kept accurate.
  const FirstTouchIndex* first_touch_for(TraceReplay* replay,
                                         std::uint32_t line_shift,
                                         std::uint64_t budget);

  /// Collects the finished lane's SimResult (field-for-field the
  /// construction at the end of SimInstance::run).
  [[nodiscard]] SimResult harvest(std::size_t lane);

  /// The shared recording for (program, stream_seed), extended to cover
  /// `budget` instructions — or nullptr when the budget is over the
  /// recording cap or the cache is at its byte budget (the context then
  /// drives its own generator, bit-identically).
  TraceReplay* replay_for(
      const std::shared_ptr<const SyntheticProgram>& program,
      std::uint64_t stream_seed, std::uint64_t budget);

  /// Budgets above this run on the live generator: recording a stream
  /// costs memory linear in its length, and long runs amortize generation
  /// anyway. Well above the fuzz/shrink regime (budgets <= ~2500).
  static constexpr std::uint64_t kReplayBudgetCap = 1u << 16;
  /// Recording-cache byte budget; at capacity, new streams fall back to
  /// the generator path and the cache is dropped between run_all calls.
  static constexpr std::size_t kReplayByteCap = 64u << 20;
  /// How far into the pending queue a freed lane looks for a job whose
  /// scheme matches its built core.
  static constexpr std::size_t kAffinityWindow = 64;
  /// Per-lane cached-core cap; a grid has a handful of schemes, so this
  /// only trips on fuzz-style queues with unbounded scheme churn.
  static constexpr std::size_t kMaxCachedCores = 64;
  /// Workload-binding memo cap; like the core cap, only workload churn
  /// (fuzzing) ever reaches it, and a dropped memo merely re-analyzes.
  static constexpr std::size_t kMaxWorkloadBindings = 256;

  int lanes_;
  Arena arena_;
  std::vector<BatchRunSpec> jobs_;
  std::vector<Lane> lane_state_;

  // --- structure-of-arrays lockstep state, indexed by lane -------------
  std::vector<std::uint64_t> cycle_;        ///< current cycle of the run
  std::vector<std::uint64_t> timeslice_;    ///< slice length (cycles)
  std::vector<std::uint64_t> max_cycles_;   ///< hard stop
  std::vector<std::uint64_t> switches_;     ///< OS context switches so far
  std::vector<std::uint64_t> timeslices_;   ///< OS slices started so far
  std::vector<std::uint8_t> active_;        ///< lane occupied by a live run

  /// Stream recordings shared by every lane and job of this batch, keyed
  /// by (program identity, stream seed); the shared_ptr pins the program
  /// the entries point into. Kept across run_all calls while under the
  /// byte budget — a reused batch keeps its warm recordings.
  struct ReplaySlot {
    std::shared_ptr<const SyntheticProgram> program;
    std::unique_ptr<TraceReplay> replay;
  };
  std::map<std::pair<const SyntheticProgram*, std::uint64_t>, ReplaySlot>
      replays_;
  std::size_t replay_bytes_ = 0;

  /// Per-workload bindings (replays + structural analysis), keyed by the
  /// identities of the programs themselves + the knobs the resolution
  /// depends on. Keying by program identity (not the enqueued vector's
  /// data address, which differs for every copied BatchRunSpec) lets the
  /// whole scheme grid share one binding per workload, so the recorded
  /// structural-ICache analysis runs once per workload instead of once
  /// per job. A linearly scanned vector: a batch sees a handful of
  /// workloads, and the scan compares two integers before it ever
  /// touches the pointer vector. The key owns its programs, so a cached
  /// entry can never be re-matched by a recycled address — which is
  /// what lets the memo persist across run_all calls (repeated grids
  /// skip re-analysis entirely). Dropped together with `replays_` (the
  /// bindings point into it) and when the entry cap is hit.
  struct WorkloadKey {
    std::vector<std::shared_ptr<const SyntheticProgram>> progs;
    std::uint64_t seed_base = 0;
    std::uint64_t budget = 0;
  };
  std::vector<std::pair<WorkloadKey, WorkloadBinding>> workload_replays_;

  bool kernels_enabled_ = true;  ///< ctor reads CVMT_BATCH_KERNELS
  KernelStats kernel_stats_;

  /// Recorded pick sequences for oblivious switch policies, keyed by
  /// everything the sequence depends on. A 16-scheme grid has 2-4 distinct
  /// thread counts, so the whole grid's reschedules cost 2-4 recordings
  /// instead of one RNG-driven pick per window per job. Kept across
  /// run_all calls (the key owns no job state); bytes stay tiny — one
  /// byte per assigned slot per window.
  std::map<std::tuple<SwitchPolicyKind, std::uint64_t, int, int>,
           std::unique_ptr<SwitchReplay>>
      switch_replays_;
};

}  // namespace cvmt
