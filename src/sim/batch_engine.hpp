// Lockstep batch simulation engine: many small runs through one engine.
//
// Dense sweeps (fuzz campaigns, shrinking, scheme searches) issue
// thousands of short simulations; the per-run cost of the session path —
// canonical-key lookup, OsScheduler construction (shared_ptr pool copy +
// policy heap allocation), per-thread context churn — is as large as the
// runs themselves at those budgets. SimBatch amortizes all of it:
//
//   * N *lanes*, each a SimInstance-equivalent run state, laid out
//     structure-of-arrays: per-lane cycle counters, timeslice bounds,
//     active masks and OS-stat accumulators live in contiguous arrays the
//     lockstep loop walks linearly; the per-lane heavy state (memory
//     system, core, contexts) is re-emplaced in place only when the next
//     job actually changes scheme or memory geometry.
//   * Per-run small state (thread contexts, pools) is carved from a
//     per-batch Arena instead of per-run heap allocations, and recycled
//     with in-place reset()s between jobs.
//   * The loop steps every active lane one timeslice window per round
//     (merge arbitration and stall fast-forwarding stay inside
//     MultithreadedCore::run_until, exactly as in the sequential path),
//     and a finished lane immediately swaps in the next queued job —
//     persistent-kernel style, the batch stays full until the grid
//     drains.
//   * Cross-run structure: a thread's instruction stream is a pure
//     function of (program, stream_seed) — the scheme and memory system
//     only decide *when* instructions issue. The batch records each
//     distinct stream once (TraceReplay) and every job that shares it
//     replays from the arrays, eliminating RNG draws, address-cursor
//     arithmetic and template patching from the hot path. A scheme x
//     workload grid re-uses each workload's recordings across every
//     scheme. Cache fetches and data accesses stay live per lane.
//   * Affinity-aware refill: a finished lane prefers a queued job whose
//     compiled scheme matches the core already built in the lane (bounded
//     look-ahead window), so lanes striding a scheme-major grid reset
//     their core in place instead of re-emplacing it per job. Results are
//     keyed by job index, so the pick order is unobservable in the
//     output.
//
// The contract is strict bit-identity: every SimResult a batch produces
// equals, field for field, what SimInstance::run would produce for the
// same (scheme, programs, config) — the batch only reorders *wall-clock*
// work across independent runs, never the cycle-level decisions inside
// one run (batch_engine_test pins this across lane counts, machines and
// switch policies).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/session.hpp"
#include "sim/switch_replay.hpp"
#include "support/arena.hpp"
#include "trace/trace_replay.hpp"

namespace cvmt {

/// One queued simulation: compiled scheme, materialized programs, knobs.
/// The machine of `config` must equal the compiled scheme's machine.
struct BatchRunSpec {
  std::shared_ptr<const CompiledScheme> scheme;
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  SimConfig config;
};

/// A pool of `lanes` lockstep run states draining a job queue.
/// Not thread-safe — one batch per worker thread.
class SimBatch {
 public:
  /// `lanes` >= 1. A 1-lane batch runs jobs one at a time, never
  /// interleaved (the affinity-aware refill may permute which job runs
  /// next; results always land in enqueue order).
  explicit SimBatch(int lanes);
  ~SimBatch();

  SimBatch(const SimBatch&) = delete;
  SimBatch& operator=(const SimBatch&) = delete;

  /// Queues one run. Invalid specs (empty workload, machine mismatch,
  /// zero timeslice) are rejected here, before any lane state moves.
  void enqueue(BatchRunSpec spec);

  /// Runs every queued job to completion and returns the results in
  /// enqueue order. The queue is left empty; the batch (lanes, arena,
  /// warmed caches) is reusable for the next grid.
  [[nodiscard]] std::vector<SimResult> run_all();

  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] std::size_t queued() const { return jobs_.size(); }
  /// Arena footprint of the per-run state (diagnostics/benchmarks).
  [[nodiscard]] const Arena& arena() const { return arena_; }

 private:
  /// Per-lane heavy state. The memory system and core are re-emplaced in
  /// place only when the incoming job changes memory geometry or scheme;
  /// std::optional re-emplacement keeps the object address stable, so
  /// the core's MemorySystem& stays valid across mem re-emplacements.
  struct Lane {
    std::size_t job = 0;  ///< index into jobs_ / results slot
    std::optional<MemorySystem> mem;
    std::optional<MultithreadedCore> core;
    /// Arena-constructed contexts, recycled across jobs. The first
    /// `pool_size` entries are the current job's software threads; any
    /// further entries stay constructed (idle) for reuse by later jobs.
    std::vector<ThreadContext*> pool;
    std::size_t pool_size = 0;  ///< contexts bound to the current job
    std::unique_ptr<SwitchPolicy> policy;
    SwitchPolicyKind policy_kind = SwitchPolicyKind::kRandomTimeslice;
    /// Batch-shared recorded pick sequence for this job's (policy, seed,
    /// pool size, slots); nullptr when the policy is not oblivious (the
    /// live policy decides then).
    SwitchReplay* sreplay = nullptr;
    std::vector<ThreadContext*> next;  ///< reschedule scratch
    /// Reuse keys of the heavy state currently constructed in this lane.
    std::string scheme_key;
    MemorySystemConfig mem_cfg;
  };

  /// Binds jobs_[job] onto `lane`: resets or re-emplaces the heavy state,
  /// rebinds the context pool, zeroes this lane's SoA slots. Equivalent
  /// to the entry reset of SimInstance::run.
  void prepare(std::size_t lane, std::size_t job);

  /// Advances one timeslice window (the body of OsScheduler::run's
  /// while-iteration). Returns false once the run finished — a thread
  /// completed its budget or the cycle limit was reached.
  bool step_window(std::size_t lane);

  /// Applies the lane policy's pick at a slice boundary (the
  /// OsScheduler::reschedule equivalent, accumulating into the SoA OS
  /// counters).
  void reschedule(std::size_t lane);

  /// Collects the finished lane's SimResult (field-for-field the
  /// construction at the end of SimInstance::run).
  [[nodiscard]] SimResult harvest(std::size_t lane);

  /// The shared recording for (program, stream_seed), extended to cover
  /// `budget` instructions — or nullptr when the budget is over the
  /// recording cap or the cache is at its byte budget (the context then
  /// drives its own generator, bit-identically).
  const TraceReplay* replay_for(
      const std::shared_ptr<const SyntheticProgram>& program,
      std::uint64_t stream_seed, std::uint64_t budget);

  /// Budgets above this run on the live generator: recording a stream
  /// costs memory linear in its length, and long runs amortize generation
  /// anyway. Well above the fuzz/shrink regime (budgets <= ~2500).
  static constexpr std::uint64_t kReplayBudgetCap = 1u << 16;
  /// Recording-cache byte budget; at capacity, new streams fall back to
  /// the generator path and the cache is dropped between run_all calls.
  static constexpr std::size_t kReplayByteCap = 64u << 20;
  /// How far into the pending queue a freed lane looks for a job whose
  /// scheme matches its built core.
  static constexpr std::size_t kAffinityWindow = 64;

  int lanes_;
  Arena arena_;
  std::vector<BatchRunSpec> jobs_;
  std::vector<Lane> lane_state_;

  // --- structure-of-arrays lockstep state, indexed by lane -------------
  std::vector<std::uint64_t> cycle_;        ///< current cycle of the run
  std::vector<std::uint64_t> timeslice_;    ///< slice length (cycles)
  std::vector<std::uint64_t> max_cycles_;   ///< hard stop
  std::vector<std::uint64_t> switches_;     ///< OS context switches so far
  std::vector<std::uint64_t> timeslices_;   ///< OS slices started so far
  std::vector<std::uint8_t> active_;        ///< lane occupied by a live run

  /// Stream recordings shared by every lane and job of this batch, keyed
  /// by (program identity, stream seed); the shared_ptr pins the program
  /// the entries point into. Kept across run_all calls while under the
  /// byte budget — a reused batch keeps its warm recordings.
  struct ReplaySlot {
    std::shared_ptr<const SyntheticProgram> program;
    std::unique_ptr<TraceReplay> replay;
  };
  std::map<std::pair<const SyntheticProgram*, std::uint64_t>, ReplaySlot>
      replays_;
  std::size_t replay_bytes_ = 0;

  /// Resolved replay pointers per workload: grids re-bind the same
  /// programs vector job after job, so prepare() does one lookup here
  /// instead of one replays_ walk per thread. Keyed by the programs
  /// array's identity + the knobs the resolution depends on; cleared at
  /// every run_all entry, since only the current queue's jobs pin their
  /// program vectors (a stale array pointer must never be re-matched).
  std::map<std::tuple<const void*, std::uint64_t, std::uint64_t>,
           std::vector<const TraceReplay*>>
      workload_replays_;

  /// Recorded pick sequences for oblivious switch policies, keyed by
  /// everything the sequence depends on. A 16-scheme grid has 2-4 distinct
  /// thread counts, so the whole grid's reschedules cost 2-4 recordings
  /// instead of one RNG-driven pick per window per job. Kept across
  /// run_all calls (the key owns no job state); bytes stay tiny — one
  /// byte per assigned slot per window.
  std::map<std::tuple<SwitchPolicyKind, std::uint64_t, int, int>,
           std::unique_ptr<SwitchReplay>>
      switch_replays_;
};

}  // namespace cvmt
