// Top-level simulation facade: configure machine + memory + scheme +
// workload, run, collect a structured result. run_simulation is the
// one-shot entry point; sweeps that run many configurations go through
// the session layer (sim/session.hpp), which splits the build step
// (compiled schemes and workloads, cached and shared) from the run step
// (reusable SimInstances). Both paths are bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/merge_engine.hpp"
#include "sim/os_scheduler.hpp"
#include "trace/benchmark_suite.hpp"

namespace cvmt {

/// All knobs of one simulation run. Defaults model the paper's machine at
/// laptop-scale run lengths (the paper uses a 1M-cycle timeslice and 100M
/// instruction budget; relative results are stable under the scale-down,
/// see DESIGN.md "Run-length scale-down").
struct SimConfig {
  MachineConfig machine = MachineConfig::vex4x4();
  MemorySystemConfig mem;  ///< 64KB 4-way I/D, 20-cycle penalty, shared
  PriorityPolicy priority = PriorityPolicy::kRoundRobin;
  MissPolicy miss_policy = MissPolicy::kSerialized;
  std::uint64_t timeslice_cycles = 50'000;
  std::uint64_t instruction_budget = 400'000;  ///< per thread, stop-at-first
  std::uint64_t max_cycles = 1ULL << 40;       ///< hard safety stop
  std::uint64_t os_seed = 0xC0FFEE;
  std::uint64_t stream_seed_base = 7;  ///< per-thread trace stream seeds
  /// OS thread-switch policy (paper: random replacement each timeslice).
  SwitchPolicyKind switch_policy = SwitchPolicyKind::kRandomTimeslice;
  /// Merge-statistics accounting. kFull populates SimResult's merge_nodes
  /// counters and issued_per_cycle histogram; kFast skips those writes on
  /// the hot path (labels stay, counters read zero) — every other result
  /// field is bit-identical between the two levels.
  StatsLevel stats = StatsLevel::kFull;
  /// Merge evaluator. kTreeReference is the pre-plan recursive walk, kept
  /// for golden bit-identity tests and baseline benchmarking.
  EvalMode eval_mode = EvalMode::kPlan;
  /// Jump the cycle counter over all-stalled windows (bit-identical to
  /// stepping them; off only for baseline benchmarking).
  bool stall_fast_forward = true;
};

/// Per-software-thread outcome.
struct ThreadResult {
  std::string benchmark;
  std::uint64_t instructions = 0;
  std::uint64_t ops = 0;
  ThreadStats stats;
};

/// Outcome of one run.
struct SimResult {
  std::string scheme;
  std::uint64_t cycles = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t total_instructions = 0;
  std::uint64_t idle_cycles = 0;
  double ipc = 0.0;  ///< useful operations per cycle (paper's metric)
  std::vector<ThreadResult> threads;
  RatioCounter icache;
  RatioCounter dcache;
  RatioCounter l2;  ///< zero counters when the machine has no L2
  Histogram issued_per_cycle{1};
  std::vector<MergeNodeStats> merge_nodes;
  OsRunStats os;
};

/// Runs `programs` (one per software thread) under `scheme` on the machine
/// described by `config`. The number of hardware contexts is the scheme's
/// thread count; the workload may be larger (the OS timeslices it) or
/// smaller (slots idle).
[[nodiscard]] SimResult run_simulation(
    const Scheme& scheme,
    const std::vector<std::shared_ptr<const SyntheticProgram>>& programs,
    const SimConfig& config);

/// Convenience: builds the programs of `workload` from `library` and runs.
[[nodiscard]] SimResult run_workload(const Scheme& scheme,
                                     const Workload& workload,
                                     ProgramLibrary& library,
                                     const SimConfig& config);

}  // namespace cvmt
