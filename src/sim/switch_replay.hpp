// Recorded thread-switch decisions, shared across a batch.
//
// For an *oblivious* switch policy (SwitchPolicy::oblivious) the whole
// pick sequence is a pure function of (policy kind, seed, pool size, slot
// count): while no pooled thread is done, nothing about the threads'
// execution state feeds the decision, and the batch engine's window loop
// structurally guarantees a run stops at the first completion — no
// reschedule ever observes a done thread. A scheme x workload grid
// therefore re-draws the *same* pick sequence once per (scheme thread
// count) instead of once per job; SwitchReplay records it by driving a
// private policy instance through pick_indices and hands out flat
// per-window index rows. Recordings grow on demand and live as long as
// the batch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/switch_policy.hpp"

namespace cvmt {

/// One recorded pick sequence. `window(w)` is the row of `take()` pool
/// indices the policy assigns to slots 0..take at the w-th reschedule.
class SwitchReplay {
 public:
  /// The policy made from (kind, seed) must be oblivious.
  SwitchReplay(SwitchPolicyKind kind, std::uint64_t seed, int pool_size,
               int slots);

  /// Extends the recording to at least `windows` reschedules.
  void ensure(std::uint64_t windows);

  [[nodiscard]] const std::uint8_t* window(std::uint64_t w) const {
    return picks_.data() + w * take_;
  }
  /// Indices per window: min(slots, pool_size).
  [[nodiscard]] std::size_t take() const { return take_; }

 private:
  std::unique_ptr<SwitchPolicy> policy_;
  int pool_size_;
  int slots_;
  std::size_t take_;
  std::uint64_t windows_ = 0;         ///< reschedules recorded so far
  std::vector<std::uint8_t> picks_;   ///< flat, stride take_
  std::vector<std::uint8_t> scratch_;
};

}  // namespace cvmt
