// The simulation session layer: the build/run split behind every sweep.
//
// run_simulation() conflates three lifetimes that the dense paper grids
// (scheme x workload x machine, five oracle configurations per fuzz case)
// want separated:
//
//   1. *Compiled artifacts* — immutable, machine-keyed products of the
//      expensive build steps: CompiledScheme (validated Scheme + flattened
//      MergePlan) and CompiledWorkload (materialized SyntheticPrograms).
//      Built once, shared freely across threads.
//   2. *The artifact cache* — a thread-safe, process-shareable store of
//      compiled artifacts, keyed canonically (scheme name + canonical tree
//      + machine, full profile content + machine). Sweep workers share one
//      cache instead of each keeping a private ProgramLibrary.
//   3. *Run state* — everything a single simulation mutates: thread
//      contexts, cache arrays, merge statistics, the OS scheduler.
//      SimInstance owns this state and reset()s it in place between runs,
//      so a grid of small runs stops paying construction per point.
//
// The reuse contract is strict bit-identity: a reset instance replays any
// workload exactly as a freshly constructed one would (sim_golden_test and
// the fuzz oracle's replay configuration enforce this). run_simulation()
// remains the one-shot facade, now a thin wrapper over a throwaway
// SimInstance.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"

namespace cvmt {

/// Immutable compiled form of one scheme on one machine: the validated
/// Scheme, its flattened MergePlan (shared by every engine built from this
/// artifact) and the canonical cache key. Thread-safe by immutability.
class CompiledScheme {
 public:
  CompiledScheme(Scheme scheme, const MachineConfig& machine);

  [[nodiscard]] const Scheme& scheme() const { return scheme_; }
  [[nodiscard]] const MachineConfig& machine() const { return machine_; }
  [[nodiscard]] const std::shared_ptr<const MergePlan>& plan() const {
    return plan_;
  }
  /// The cache key this artifact is stored under (see make_key).
  [[nodiscard]] const std::string& key() const { return key_; }

  /// The eval mode this artifact wants its engines to run: decided once
  /// at compile time from the plan's shape. Chain plans with a bound
  /// fixed path run the shape-specialized interpreter; everything else
  /// runs the generic plan pass. Decisions are bit-identical either
  /// way — this only picks the faster evaluator. Callers that ask for
  /// EvalMode::kTreeReference keep it (validation paths).
  [[nodiscard]] EvalMode preferred_eval_mode() const {
    return plan_->has_fixed_path() ? EvalMode::kPlanSpecialized
                                   : EvalMode::kPlan;
  }

  /// Canonical key of (scheme, machine): display name + canonical tree +
  /// the full machine configuration. The display name is part of the key
  /// because SimResult::scheme carries it — two schemes with identical
  /// trees but different names are distinct artifacts.
  [[nodiscard]] static std::string make_key(const Scheme& scheme,
                                            const MachineConfig& machine);

 private:
  Scheme scheme_;
  MachineConfig machine_;
  std::shared_ptr<const MergePlan> plan_;
  std::string key_;
};

/// Immutable compiled form of one multiprogrammed workload on one machine:
/// the materialized programs, one per software thread, in thread order.
struct CompiledWorkload {
  std::string key;
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
};

/// Lookup/build counters of one ArtifactCache, per artifact kind. A hit
/// is any lookup that found an entry — including one whose build was
/// still in flight on another thread (the caller waits on the same
/// build, it does not run a second one).
struct ArtifactCacheStats {
  std::uint64_t scheme_hits = 0;
  std::uint64_t scheme_misses = 0;
  std::uint64_t program_hits = 0;
  std::uint64_t program_misses = 0;
  std::uint64_t workload_hits = 0;
  std::uint64_t workload_misses = 0;

  [[nodiscard]] std::uint64_t hits() const {
    return scheme_hits + program_hits + workload_hits;
  }
  [[nodiscard]] std::uint64_t misses() const {
    return scheme_misses + program_misses + workload_misses;
  }
  /// Hits / lookups; 0.0 before the first lookup.
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits() + misses();
    return total == 0 ? 0.0
                      : static_cast<double>(hits()) /
                            static_cast<double>(total);
  }
};

/// Thread-safe cache of compiled artifacts, shared across sweep workers
/// (replacing the per-runner ProgramLibrary copies). Keys are canonical —
/// schemes by name + tree + machine, programs by full profile content +
/// machine — so any two requests for the same logical artifact share one
/// build.
///
/// Builds are serialized *per key*, not cache-wide: a miss installs a
/// shared_future under the cache mutex, then builds outside it, so
/// concurrent misses on distinct keys build in parallel while concurrent
/// misses on the same key share the one build (latecomers block on the
/// future). A build that throws propagates to every waiter and evicts
/// the entry, so a later request retries instead of caching the failure.
class ArtifactCache {
 public:
  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// The compiled form of `scheme` on `machine`, building it on first use.
  [[nodiscard]] std::shared_ptr<const CompiledScheme> scheme(
      const Scheme& scheme, const MachineConfig& machine);

  /// The program realising `profile` on `machine`, building on first use.
  /// Keyed by the full profile content, so fuzz-mutated profiles that
  /// happen to share a name never collide.
  [[nodiscard]] std::shared_ptr<const SyntheticProgram> program(
      const BenchmarkProfile& profile, const MachineConfig& machine);

  /// Table 1 benchmark by name (throws CheckError when unknown).
  [[nodiscard]] std::shared_ptr<const SyntheticProgram> program(
      std::string_view benchmark, const MachineConfig& machine);

  /// The compiled workload of Table 1 `benchmarks` (one per software
  /// thread, in thread order) on `machine`; member programs are shared
  /// with the per-program cache.
  [[nodiscard]] std::shared_ptr<const CompiledWorkload> workload(
      std::span<const std::string> benchmarks, const MachineConfig& machine);

  /// Drops every cached artifact (outstanding shared_ptrs stay valid).
  void clear();

  /// Total number of cached artifacts (schemes + programs + workloads),
  /// counting entries whose build is still in flight.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of the hit/miss counters (never reset by clear() — they
  /// describe the cache's lifetime, not its current contents).
  [[nodiscard]] ArtifactCacheStats stats() const;

  /// Test instrumentation: `hook(key)` runs on the building thread for
  /// every miss, outside the cache mutex, before the build starts. The
  /// concurrency tests use it to hold two builders mid-build and prove
  /// distinct keys overlap. Pass nullptr to remove.
  void set_build_hook(std::function<void(std::string_view)> hook);

  /// The process-wide cache the experiment layer shares across sweeps.
  [[nodiscard]] static ArtifactCache& global();

 private:
  /// One cache entry: the future every requester of the key shares. The
  /// slot object identity lets the failure path evict exactly its own
  /// entry (never a successor installed after a clear()).
  template <typename T>
  struct Slot {
    std::shared_future<std::shared_ptr<const T>> future;
  };
  template <typename T>
  using SlotMap =
      std::map<std::string, std::shared_ptr<Slot<T>>, std::less<>>;

  /// The per-key build protocol (see the class comment). `build` runs
  /// outside the cache mutex on the missing thread only.
  template <typename T, typename Builder>
  [[nodiscard]] std::shared_ptr<const T> lookup_or_build(
      SlotMap<T>& entries, const std::string& key, std::uint64_t* hits,
      std::uint64_t* misses, Builder&& build);

  mutable std::mutex mu_;
  SlotMap<CompiledScheme> schemes_;
  SlotMap<SyntheticProgram> programs_;
  SlotMap<CompiledWorkload> workloads_;
  ArtifactCacheStats stats_;
  std::function<void(std::string_view)> build_hook_;
};

/// One reusable simulation: the run-state half of the build/run split.
/// Owns the memory system, the core (with its merge engine) and the thread
/// contexts; run() rebinds them to a workload in place, so consecutive
/// runs reuse every allocation. Cheap knobs (priority, miss policy, stats
/// level, eval mode, budgets, seeds, memory geometry) change between runs
/// via set_config(); the scheme and machine are fixed at construction.
/// Not thread-safe — one instance per worker thread.
class SimInstance {
 public:
  /// `config.machine` must equal the compiled scheme's machine.
  SimInstance(std::shared_ptr<const CompiledScheme> scheme,
              const SimConfig& config);

  // Not copyable or movable: the core holds a reference to this object's
  // own memory system, so every implicit special member would leave a
  // copied/moved instance aliasing (and eventually dangling on) the
  // source's. Hold instances by unique_ptr to store them in containers.
  SimInstance(const SimInstance&) = delete;
  SimInstance& operator=(const SimInstance&) = delete;

  /// Runs `programs` (one per software thread). Begins with an in-place
  /// reset of all run state, so the result is bit-identical to
  /// run_simulation(scheme, programs, config) — and to any earlier run()
  /// of this instance with the same inputs.
  [[nodiscard]] SimResult run(
      std::span<const std::shared_ptr<const SyntheticProgram>> programs);
  [[nodiscard]] SimResult run(const CompiledWorkload& workload) {
    return run(workload.programs);
  }

  /// Replaces the run configuration. The machine must stay the compiled
  /// scheme's; a memory-geometry change rebuilds the cache arrays, every
  /// other knob is a plain store. Takes effect at the next run().
  void set_config(const SimConfig& config);

  /// Explicitly restores the freshly-constructed state (run state zeroed,
  /// thread contexts dropped). run() performs the same logical reset on
  /// entry while *reusing* the context allocations, so calling reset()
  /// between runs is never required for correctness — it exists to make
  /// the reuse invariant testable and to release workload references.
  void reset();

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const CompiledScheme& compiled() const { return *scheme_; }

 private:
  [[nodiscard]] static std::shared_ptr<const CompiledScheme> checked(
      std::shared_ptr<const CompiledScheme> scheme);

  std::shared_ptr<const CompiledScheme> scheme_;
  SimConfig config_;
  MemorySystem mem_;
  MultithreadedCore core_;
  /// Recycled across runs (shrunk/grown to the workload size; reset()
  /// rebinds each kept context in place).
  std::vector<std::shared_ptr<ThreadContext>> threads_;
};

/// One worker's simulation session: compiled artifacts come from a shared
/// ArtifactCache, and SimInstances are kept per (scheme, machine) and
/// reused across runs. This is what turns a dense grid sweep into
/// "compile once, run many": consecutive grid points on the same scheme
/// reset the cached instance instead of rebuilding it. Not thread-safe —
/// one session per worker thread; the artifact cache it draws from is
/// shared and thread-safe.
class SimSession {
 public:
  explicit SimSession(ArtifactCache& artifacts = ArtifactCache::global())
      : artifacts_(artifacts) {}

  /// Runs one simulation, bit-identical to run_simulation(scheme,
  /// programs, config), reusing a cached instance when this session has
  /// seen the scheme x machine before.
  [[nodiscard]] SimResult run(
      const Scheme& scheme,
      std::span<const std::shared_ptr<const SyntheticProgram>> programs,
      const SimConfig& config);

  /// Same, materializing the Table 1 `benchmarks` through the cache.
  [[nodiscard]] SimResult run(const Scheme& scheme,
                              std::span<const std::string> benchmarks,
                              const SimConfig& config);

  [[nodiscard]] ArtifactCache& artifacts() { return artifacts_; }
  [[nodiscard]] std::size_t num_instances() const {
    return instances_.size();
  }
  /// Drops the cached instances (artifacts stay in the shared cache).
  void clear() { instances_.clear(); }

 private:
  /// Instances kept per session before the pool recycles itself; bounds
  /// memory when a long-lived session sweeps many distinct schemes.
  static constexpr std::size_t kMaxInstances = 64;

  [[nodiscard]] SimInstance& instance_for(const Scheme& scheme,
                                          const SimConfig& config);

  ArtifactCache& artifacts_;
  std::map<std::string, std::unique_ptr<SimInstance>, std::less<>>
      instances_;
};

}  // namespace cvmt
