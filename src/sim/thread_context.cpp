#include "sim/thread_context.hpp"

#include <algorithm>

#include "trace/trace_replay.hpp"

namespace cvmt {

ThreadContext::ThreadContext(std::string name,
                             std::shared_ptr<const SyntheticProgram> program,
                             std::uint64_t stream_seed,
                             std::uint64_t instruction_budget)
    : name_(std::move(name)),
      gen_(std::move(program), stream_seed),
      budget_(instruction_budget) {
  CVMT_CHECK(budget_ >= 1);
}

void ThreadContext::reset(std::string_view name,
                          std::shared_ptr<const SyntheticProgram> program,
                          std::uint64_t stream_seed,
                          std::uint64_t instruction_budget) {
  name_.assign(name);
  pending_program_ = std::move(program);
  pending_seed_ = stream_seed;
  gen_stale_ = true;
  budget_ = instruction_budget;
  CVMT_CHECK(budget_ >= 1);
  has_pending_ = false;
  done_ = false;
  pending_fp_ = nullptr;
  pending_ = nullptr;
  pending_patches_ = nullptr;
  ready_at_ = 0;
  stats_ = ThreadStats{};
  replay_ = nullptr;
  replay_pos_ = 0;
  first_touch_ = nullptr;
  icache_penalty_ = 0;
  structural_misses_ = 0;
}

void ThreadContext::refill(std::uint64_t cycle, MemorySystem& mem,
                           int hw_tid) {
  std::uint64_t pc;
  if (replay_ != nullptr) {
    // The stream content comes from the recording; the fetch below stays
    // live (hits depend on the cross-thread interleaving) — unless the
    // batch proved the ICache structurally eviction free, in which case
    // hit/miss is the recording's precomputed first-touch bit and the
    // cache walk is skipped entirely (its only effect was unobservable
    // LRU/tag state).
    CVMT_CHECK_MSG(replay_pos_ < replay_->recorded(),
                   "replay recording shorter than the thread's budget");
    const std::uint64_t pos = replay_pos_++;
    const TraceReplay::Entry& e = replay_->entry(pos);
    pending_ = nullptr;
    pending_fp_ = e.fp;
    pending_patches_ = nullptr;
    if (first_touch_ != nullptr) {
      has_pending_ = true;
      if (first_touch_->miss(pos)) {
        ready_at_ = std::max(ready_at_, cycle) +
                    static_cast<std::uint64_t>(icache_penalty_);
        stats_.icache_stall_cycles +=
            static_cast<std::uint64_t>(icache_penalty_);
        ++structural_misses_;
      }
      return;
    }
    pc = e.pc;
  } else {
    if (gen_stale_) {
      gen_.reset(std::move(pending_program_), pending_seed_);
      gen_stale_ = false;
    }
    gen_.advance();
    pending_ = &gen_.current_instruction();
    pending_fp_ = &gen_.current_footprint();
    pending_patches_ = &gen_.current_patches();
    pc = gen_.current_pc();
  }
  has_pending_ = true;
  // Fetch starts once the previous instruction's stalls resolve; an
  // ICache miss then delays issue further.
  const MemAccessResult fetch = mem.fetch(hw_tid, pc);
  if (!fetch.hit) {
    ready_at_ = std::max(ready_at_, cycle) +
                static_cast<std::uint64_t>(fetch.penalty_cycles);
    stats_.icache_stall_cycles +=
        static_cast<std::uint64_t>(fetch.penalty_cycles);
  }
}

void ThreadContext::consume(std::uint64_t cycle, MemorySystem& mem,
                            int hw_tid, const MachineConfig& machine,
                            MissPolicy policy) {
  CVMT_CHECK_MSG(has_pending_ && cycle >= ready_at_,
                 "consume without a ready offer");
  // Execution stalls: taken-branch squash plus DCache misses. Only the
  // patched (memory/branch) ops are timing-relevant; on the generator
  // path the precomputed patch list visits exactly those, in op order,
  // and on the replay path the recording already holds their values in
  // that order — the data accesses below are identical either way.
  std::uint64_t stall = 1;
  int dmiss_total = 0;
  int dmiss_max = 0;
  bool taken = false;
  const bool banked = mem.config().dcache_banks > 1;
  std::uint32_t banks_touched = 0;
  int bank_conflicts = 0;
  const auto data_op = [&](std::uint64_t addr) {
    const MemAccessResult r = mem.data_access(hw_tid, addr);
    dmiss_total += r.penalty_cycles;
    dmiss_max = std::max(dmiss_max, r.penalty_cycles);
    if (banked) {
      // Same-packet accesses to one bank serialize: each repeat pays the
      // conflict penalty (the first access per bank is free).
      const std::uint32_t bit = 1u << r.bank;
      if ((banks_touched & bit) != 0) ++bank_conflicts;
      banks_touched |= bit;
    }
  };
  if (replay_ != nullptr) {
    const TraceReplay::Entry& e = replay_->entry(replay_pos_ - 1);
    ++stats_.instructions;
    stats_.ops += e.op_count;
    if (e.empty) ++stats_.bubbles;
    const std::uint64_t* addrs = replay_->mem_addrs(e);
    for (int k = 0; k < static_cast<int>(e.mem_count); ++k)
      data_op(addrs[k]);
    taken = e.taken;
  } else {
    ++stats_.instructions;
    stats_.ops += pending_->op_count();
    if (pending_->empty()) ++stats_.bubbles;
    for (const std::uint8_t idx : *pending_patches_) {
      const Operation& op = pending_->op(idx);
      if (is_memory(op.kind)) {
        data_op(op.addr);
      } else if (op.taken) {  // patch lists hold only memory and branch ops
        taken = true;
      }
    }
  }
  if (bank_conflicts > 0) {
    const int extra =
        bank_conflicts * mem.config().bank_conflict_penalty;
    stall += static_cast<std::uint64_t>(extra);
    stats_.bank_conflict_cycles += static_cast<std::uint64_t>(extra);
  }
  const int dmiss =
      policy == MissPolicy::kSerialized ? dmiss_total : dmiss_max;
  stall += static_cast<std::uint64_t>(dmiss);
  stats_.dcache_stall_cycles += static_cast<std::uint64_t>(dmiss);
  if (taken) {
    ++stats_.taken_branches;
    stall += static_cast<std::uint64_t>(machine.taken_branch_penalty);
    stats_.branch_stall_cycles +=
        static_cast<std::uint64_t>(machine.taken_branch_penalty);
  }
  ready_at_ = cycle + stall;
  has_pending_ = false;
  if (stats_.instructions >= budget_) done_ = true;
}

}  // namespace cvmt
