#include "sim/thread_context.hpp"

#include <algorithm>

namespace cvmt {

ThreadContext::ThreadContext(std::string name,
                             std::shared_ptr<const SyntheticProgram> program,
                             std::uint64_t stream_seed,
                             std::uint64_t instruction_budget)
    : name_(std::move(name)),
      gen_(std::move(program), stream_seed),
      budget_(instruction_budget) {
  CVMT_CHECK(budget_ >= 1);
}

void ThreadContext::reset(std::string_view name,
                          std::shared_ptr<const SyntheticProgram> program,
                          std::uint64_t stream_seed,
                          std::uint64_t instruction_budget) {
  name_.assign(name);
  gen_.reset(std::move(program), stream_seed);
  budget_ = instruction_budget;
  CVMT_CHECK(budget_ >= 1);
  has_pending_ = false;
  done_ = false;
  pending_fp_ = nullptr;
  pending_ = nullptr;
  pending_patches_ = nullptr;
  ready_at_ = 0;
  stats_ = ThreadStats{};
}

void ThreadContext::refill(std::uint64_t cycle, MemorySystem& mem,
                           int hw_tid) {
  gen_.advance();
  pending_ = &gen_.current_instruction();
  pending_fp_ = &gen_.current_footprint();
  pending_patches_ = &gen_.current_patches();
  has_pending_ = true;
  // Fetch starts once the previous instruction's stalls resolve; an
  // ICache miss then delays issue further.
  const MemAccessResult fetch = mem.fetch(hw_tid, gen_.current_pc());
  if (!fetch.hit) {
    ready_at_ = std::max(ready_at_, cycle) +
                static_cast<std::uint64_t>(fetch.penalty_cycles);
    stats_.icache_stall_cycles +=
        static_cast<std::uint64_t>(fetch.penalty_cycles);
  }
}

void ThreadContext::consume(std::uint64_t cycle, MemorySystem& mem,
                            int hw_tid, const MachineConfig& machine,
                            MissPolicy policy) {
  CVMT_CHECK_MSG(has_pending_ && cycle >= ready_at_,
                 "consume without a ready offer");
  // Account the issued instruction.
  ++stats_.instructions;
  stats_.ops += pending_->op_count();
  if (pending_->empty()) ++stats_.bubbles;

  // Execution stalls: taken-branch squash plus DCache misses. Only the
  // patched (memory/branch) ops are timing-relevant; the precomputed
  // patch list visits exactly those, in op order.
  std::uint64_t stall = 1;
  int dmiss_total = 0;
  int dmiss_max = 0;
  bool taken = false;
  const bool banked = mem.config().dcache_banks > 1;
  std::uint32_t banks_touched = 0;
  int bank_conflicts = 0;
  for (const std::uint8_t idx : *pending_patches_) {
    const Operation& op = pending_->op(idx);
    if (is_memory(op.kind)) {
      const MemAccessResult r = mem.data_access(hw_tid, op.addr);
      dmiss_total += r.penalty_cycles;
      dmiss_max = std::max(dmiss_max, r.penalty_cycles);
      if (banked) {
        // Same-packet accesses to one bank serialize: each repeat pays the
        // conflict penalty (the first access per bank is free).
        const std::uint32_t bit = 1u << r.bank;
        if ((banks_touched & bit) != 0) ++bank_conflicts;
        banks_touched |= bit;
      }
    } else if (op.taken) {  // patch lists hold only memory and branch ops
      taken = true;
    }
  }
  if (bank_conflicts > 0) {
    const int extra =
        bank_conflicts * mem.config().bank_conflict_penalty;
    stall += static_cast<std::uint64_t>(extra);
    stats_.bank_conflict_cycles += static_cast<std::uint64_t>(extra);
  }
  const int dmiss =
      policy == MissPolicy::kSerialized ? dmiss_total : dmiss_max;
  stall += static_cast<std::uint64_t>(dmiss);
  stats_.dcache_stall_cycles += static_cast<std::uint64_t>(dmiss);
  if (taken) {
    ++stats_.taken_branches;
    stall += static_cast<std::uint64_t>(machine.taken_branch_penalty);
    stats_.branch_stall_cycles +=
        static_cast<std::uint64_t>(machine.taken_branch_penalty);
  }
  ready_at_ = cycle + stall;
  has_pending_ = false;
  if (stats_.instructions >= budget_) done_ = true;
}

}  // namespace cvmt
