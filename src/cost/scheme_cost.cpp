#include "cost/scheme_cost.hpp"

#include <algorithm>

namespace cvmt {
namespace {

/// Timing/area summary of a scheme subtree.
struct NodeCost {
  double sel_done = 0.0;      ///< when the subtree's selection is resolved
  double routing_done = 0.0;  ///< latest routing-select completion inside
  std::int64_t transistors = 0;
  int threads = 0;  ///< leaves in the subtree (sizes SMT routing encoders)
};

NodeCost eval(const Scheme::Node& node, const MachineConfig& machine) {
  if (node.is_leaf()) return {0.0, 0.0, 0, 1};

  if (node.parallel) {
    // One wide CSMT block; all inputs must have resolved their selection.
    NodeCost out;
    for (const auto& child : node.children) {
      const NodeCost c = eval(child, machine);
      out.sel_done = std::max(out.sel_done, c.sel_done);
      out.routing_done = std::max(out.routing_done, c.routing_done);
      out.transistors += c.transistors;
      out.threads += c.threads;
    }
    const Circuit block =
        csmt_parallel_block(static_cast<int>(node.children.size()), machine);
    out.sel_done += block.delay;
    out.transistors += block.transistors;
    return out;
  }

  // Serial node: fold children left to right, one merge stage per input.
  NodeCost acc = eval(node.children[0], machine);
  for (std::size_t i = 1; i < node.children.size(); ++i) {
    const NodeCost in = eval(node.children[i], machine);
    const double input_ready = std::max(acc.sel_done, in.sel_done);
    acc.routing_done = std::max(acc.routing_done, in.routing_done);
    acc.transistors += in.transistors;
    switch (node.kind) {
      case MergeKind::kCsmt: {
        const Circuit stage = csmt_serial_stage(machine);
        acc.sel_done = input_ready + stage.delay;
        acc.transistors += stage.transistors;
        break;
      }
      case MergeKind::kSmt: {
        const SmtStageCost stage =
            smt_stage(acc.threads, in.threads, machine);
        acc.sel_done = input_ready + stage.selection.delay;
        acc.transistors +=
            stage.selection.transistors + stage.routing.transistors;
        // Routing starts once this stage's selection is known; it
        // overlaps whatever comes after.
        acc.routing_done =
            std::max(acc.routing_done, acc.sel_done + stage.routing.delay);
        break;
      }
      case MergeKind::kSelect: {
        // IMT-style valid-bit arbitration: one priority cell per input.
        acc.sel_done = input_ready + 1.0;
        acc.transistors += gates::priority_encoder(2).transistors;
        break;
      }
    }
    acc.threads += in.threads;
  }
  return acc;
}

}  // namespace

SchemeCost scheme_cost(const Scheme& scheme, const MachineConfig& machine) {
  if (scheme.num_threads() < 2) return {0, 0.0};
  const NodeCost root = eval(scheme.root(), machine);
  const Circuit epi = grant_epilogue(scheme.num_threads(), machine);
  return {root.transistors + epi.transistors,
          std::max(root.sel_done + epi.delay, root.routing_done)};
}

}  // namespace cvmt
