// Hardware cost of a full merging scheme (paper §4.2, Figs 9/11/12).
//
// Transistor counts simply accumulate over the scheme's merge blocks. The
// delay composition captures the paper's two structural observations:
//
//  1. Tree schemes evaluate their groups concurrently, so level-1 blocks
//     overlap (2CC has fewer levels than 3CCC and a lower delay).
//  2. An SMT stage's routing-select computation overlaps all *later*
//     stages' selection logic. Placing SMT early (3SCC, 2SC3) hides the
//     routing latency behind the trailing CSMT levels; placing it late
//     (3CCS) exposes it, and 3SSC beats 3SCS/3CSS for the same reason.
#pragma once

#include "core/scheme.hpp"
#include "cost/merge_control_cost.hpp"

namespace cvmt {

/// Total merge-control cost of a scheme.
struct SchemeCost {
  std::int64_t transistors = 0;
  double gate_delay = 0.0;
};

/// Computes merge-control cost for `scheme` on `machine`. The degenerate
/// single-thread scheme costs nothing.
[[nodiscard]] SchemeCost scheme_cost(const Scheme& scheme,
                                     const MachineConfig& machine);

}  // namespace cvmt
