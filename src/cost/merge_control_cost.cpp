#include "cost/merge_control_cost.hpp"

#include <algorithm>

namespace cvmt {
namespace {

using namespace gates;

[[nodiscard]] std::int64_t pairs(std::int64_t n) { return n * (n - 1) / 2; }

[[nodiscard]] std::int64_t binom(int n, int k) {
  if (k < 0 || k > n) return 0;
  std::int64_t r = 1;
  for (int i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return r;
}

}  // namespace

Circuit csmt_serial_stage(const MachineConfig& machine) {
  const int m = machine.num_clusters;
  // Cluster-mask AND (1 level) + OR-reduce to the conflict bit.
  Circuit conflict = kAnd2.times(m);
  conflict.delay = 1.0;
  conflict = conflict.then(reduce_tree(m));
  // Select = valid AND NOT conflict (single complex gate).
  const Circuit select{kInv.transistors + kAnd2.transistors, 1.0};
  // Accumulated-mask update: one AND-OR complex gate per cluster, folded
  // into the next stage's input sampling (single level).
  const Circuit mask_update{
      m * (kAnd2.transistors + kOr2.transistors), 1.0};
  return conflict.then(select).then(mask_update);
}

Circuit csmt_parallel_block(int k, const MachineConfig& machine) {
  CVMT_CHECK(k >= 2);
  const int m = machine.num_clusters;
  // One feasibility checker per thread subset of size >= 2: within each
  // cluster, pairwise AND of the subset's cluster bits, OR-reduced; then
  // OR across clusters. All subsets evaluated concurrently.
  Circuit all_checks{0, 0.0};
  for (int j = 2; j <= k; ++j) {
    const std::int64_t p = pairs(j);
    Circuit per_cluster = kAnd2.times(p);
    per_cluster.delay = 1.0;
    per_cluster = per_cluster.then(reduce_tree(static_cast<int>(p)));
    Circuit check = per_cluster.times(m);
    check.delay = per_cluster.delay;  // clusters in parallel
    check = check.then(reduce_tree(m));
    Circuit bank = check.times(binom(k, j));
    bank.delay = check.delay;  // subsets in parallel
    all_checks = all_checks.beside(bank);
  }
  // Greedy-equivalent selection: per-thread grant = AND-OR over the
  // precomputed subset feasibility lines (2 logic levels); area scales with
  // the number of subsets.
  const std::int64_t num_subsets = std::int64_t{1} << k;
  const Circuit selection{
      priority_encoder(static_cast<int>(num_subsets)).transistors, 2.0};
  return all_checks.then(selection);
}

SmtStageCost smt_stage(int acc_threads, int in_threads,
                       const MachineConfig& machine) {
  CVMT_CHECK(acc_threads >= 1 && in_threads >= 1);
  const int m = machine.num_clusters;
  // Heterogeneous machines size the slot-level circuits for the widest
  // cluster (every physical stage must handle it).
  const int w = machine.max_issue_per_cluster();
  const int count_bits = ceil_log2(w) + 1;

  // Selection: per cluster, fixed-slot collision (mask AND + OR-reduce) in
  // parallel with the issue-count add/compare; AND-reduce across clusters.
  Circuit collision = kAnd2.times(w);
  collision.delay = 1.0;
  collision = collision.then(reduce_tree(w));
  const Circuit count = adder(count_bits).then(adder(count_bits));  // add,cmp
  Circuit per_cluster = collision.beside(count).then(kAnd2);
  Circuit selection = per_cluster.times(m);
  selection.delay = per_cluster.delay;  // clusters checked in parallel
  selection = selection.then(reduce_tree(m)).then(kAnd2);

  // Routing-select generation: a w x w arbiter matrix allocates the
  // incoming packet's reroutable ops to free slots, then per-slot source
  // selects are encoded over all candidate ops of the merged sources.
  const int sources = (acc_threads + in_threads) * w;
  constexpr std::int64_t kArbiterCell = 36;
  const Circuit routing{
      m * (static_cast<std::int64_t>(w) * w * kArbiterCell +
           static_cast<std::int64_t>(w) * sources * kAnd2.transistors),
      static_cast<double>(w) + 2.0 + ceil_log2(sources)};
  return {selection, routing};
}

Circuit grant_epilogue(int n_threads, const MachineConfig& machine) {
  const int m = machine.num_clusters;
  return {static_cast<std::int64_t>(m) * n_threads * kAnd2.transistors, 2.0};
}

Circuit csmt_serial_control(int n_threads, const MachineConfig& machine) {
  CVMT_CHECK(n_threads >= 2);
  Circuit total{0, 0.0};
  for (int i = 1; i < n_threads; ++i)
    total = total.then(csmt_serial_stage(machine));
  return total.then(grant_epilogue(n_threads, machine));
}

Circuit csmt_parallel_control(int n_threads, const MachineConfig& machine) {
  CVMT_CHECK(n_threads >= 2);
  return csmt_parallel_block(n_threads, machine)
      .then(grant_epilogue(n_threads, machine));
}

Circuit smt_serial_control(int n_threads, const MachineConfig& machine) {
  CVMT_CHECK(n_threads >= 2);
  Circuit sel_path{0, 0.0};
  std::int64_t routing_transistors = 0;
  double last_routing_done = 0.0;
  for (int i = 1; i < n_threads; ++i) {
    const SmtStageCost stage = smt_stage(i, 1, machine);
    sel_path = sel_path.then(stage.selection);
    routing_transistors += stage.routing.transistors;
    // Routing of stage i starts once its selection is resolved; earlier
    // stages' routing overlaps later selection, so only the last matters.
    last_routing_done = sel_path.delay + stage.routing.delay;
  }
  const Circuit epi = grant_epilogue(n_threads, machine);
  return {sel_path.transistors + routing_transistors + epi.transistors,
          std::max(sel_path.delay + epi.delay, last_routing_done)};
}

}  // namespace cvmt
