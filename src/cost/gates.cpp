#include "cost/gates.hpp"

#include <bit>

namespace cvmt {

int ceil_log2(std::int64_t n) {
  CVMT_CHECK(n >= 1);
  return static_cast<int>(
      std::bit_width(static_cast<std::uint64_t>(n) - 1));
}

namespace gates {

Circuit reduce_tree(int n) {
  CVMT_CHECK(n >= 1);
  if (n == 1) return {0, 0.0};
  return {static_cast<std::int64_t>(n - 1) * kAnd2.transistors,
          static_cast<double>(ceil_log2(n))};
}

Circuit mux_n(int n, int width) {
  CVMT_CHECK(n >= 1 && width >= 1);
  if (n == 1) return {0, 0.0};
  // A tree of (n-1) 2:1 muxes per bit.
  return {static_cast<std::int64_t>(n - 1) * width * kMux2.transistors,
          static_cast<double>(ceil_log2(n))};
}

Circuit adder(int bits) {
  CVMT_CHECK(bits >= 1);
  return {static_cast<std::int64_t>(bits) * kFullAdder.transistors,
          static_cast<double>(bits)};  // ripple carry
}

Circuit priority_encoder(int n) {
  CVMT_CHECK(n >= 1);
  if (n == 1) return {0, 0.0};
  // Kill-chain style: each line gated by NOR of all higher-priority lines,
  // implemented as a lookahead tree: ~2 gates per line, log-depth chain.
  return {static_cast<std::int64_t>(n) * (kAnd2.transistors +
                                          kInv.transistors),
          static_cast<double>(1 + ceil_log2(n))};
}

}  // namespace gates
}  // namespace cvmt
