// Gate-level cost primitives.
//
// The paper reports merge-control hardware cost as transistor counts and
// gate delays following the methodology of Gupta et al., "Merge Logic for
// Clustered Multithreaded VLIW Processors" (DSD 2007). That paper is not
// available offline, so we rebuild the estimate bottom-up from static-CMOS
// primitive costs and structural circuit descriptions; tests pin the
// qualitative shape the ICPP paper states (see DESIGN.md §2, substitution 2).
//
// Conventions: transistor counts are static CMOS (inverter 2, NAND2/NOR2 4,
// AND2/OR2 6, transmission-gate MUX2 8); delays are in "equivalent gate
// delays" where any 2-input gate costs 1.
#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace cvmt {

/// Cost of a combinational circuit: area (transistors) and critical-path
/// depth (equivalent gate delays).
struct Circuit {
  std::int64_t transistors = 0;
  double delay = 0.0;

  /// Serial composition: `other` consumes this circuit's outputs.
  [[nodiscard]] Circuit then(const Circuit& other) const {
    return {transistors + other.transistors, delay + other.delay};
  }
  /// Parallel composition: independent circuits, critical path is the max.
  [[nodiscard]] Circuit beside(const Circuit& other) const {
    return {transistors + other.transistors,
            delay > other.delay ? delay : other.delay};
  }
  /// Replicates this circuit `n` times in parallel.
  [[nodiscard]] Circuit times(std::int64_t n) const {
    CVMT_CHECK(n >= 0);
    return {transistors * n, n > 0 ? delay : 0.0};
  }
};

namespace gates {

inline constexpr Circuit kInv{2, 1.0};
inline constexpr Circuit kNand2{4, 1.0};
inline constexpr Circuit kNor2{4, 1.0};
inline constexpr Circuit kAnd2{6, 1.0};
inline constexpr Circuit kOr2{6, 1.0};
inline constexpr Circuit kXor2{10, 1.5};
inline constexpr Circuit kMux2{8, 1.0};       ///< 1-bit 2:1 mux
inline constexpr Circuit kFullAdder{28, 2.0};  ///< 1-bit full adder

/// Balanced tree of 2-input AND (or OR) gates over `n` inputs.
[[nodiscard]] Circuit reduce_tree(int n);

/// `n`-input, `width`-bit multiplexer built from 2:1 muxes.
[[nodiscard]] Circuit mux_n(int n, int width);

/// Ripple adder/comparator over `bits`-bit operands.
[[nodiscard]] Circuit adder(int bits);

/// Priority encoder over `n` request lines (select-first logic).
[[nodiscard]] Circuit priority_encoder(int n);

}  // namespace gates

/// ceil(log2(n)) for n >= 1.
[[nodiscard]] int ceil_log2(std::int64_t n);

}  // namespace cvmt
