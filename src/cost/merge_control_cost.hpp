// Structural cost models of the three thread-merge-control designs the
// paper compares (§2.2, §3, Fig 5):
//
//  * CSMT serial  — a cascade of 2-input cluster-level conflict stages;
//  * CSMT parallel — one block checking all thread subsets concurrently
//    (area exponential in threads, delay nearly flat);
//  * SMT serial   — a cascade of operation-level stages; each stage checks
//    per-cluster fixed-slot collisions and issue-width fit, and computes
//    routing-select signals for the per-cluster routing blocks. The routing
//    computation is *not* on the selection critical path: it overlaps any
//    later stages (this is the paper's explanation for 3SCC/2SC3 having
//    ~1S delay while 3CCS does not).
//
// Datapath muxes / routing blocks are deliberately excluded: the paper
// notes they cost the same for SMT and CSMT (and are needed even by IMT),
// so the thread merge control is the only differentiating cost (§2.2).
#pragma once

#include "cost/gates.hpp"
#include "isa/machine_config.hpp"

namespace cvmt {

/// Cost of one 2-input CSMT merge stage (conflict check + select + cluster
/// mask update) for an M-cluster machine.
[[nodiscard]] Circuit csmt_serial_stage(const MachineConfig& machine);

/// Cost of a k-input parallel CSMT block: all 2^k thread subsets checked
/// concurrently, then a greedy-equivalent 2-level grant selection.
[[nodiscard]] Circuit csmt_parallel_block(int k,
                                          const MachineConfig& machine);

/// One SMT merge stage combining an accumulated packet already holding
/// operations of `acc_threads` threads with an incoming packet holding
/// `in_threads` threads (1 for cascades; >1 at the top of tree schemes).
struct SmtStageCost {
  Circuit selection;  ///< conflict + issue-count check (critical sel path)
  Circuit routing;    ///< routing-select generation (overlaps later stages)
};
[[nodiscard]] SmtStageCost smt_stage(int acc_threads, int in_threads,
                                     const MachineConfig& machine);

/// Final per-cluster grant decode shared by all designs (generates the
/// select signals of the per-cluster muxes / routing blocks).
[[nodiscard]] Circuit grant_epilogue(int n_threads,
                                     const MachineConfig& machine);

/// Whole-control costs used by the Fig 5 sweep (N = number of threads).
/// For SMT the returned delay includes the last stage's routing-select
/// generation (it no longer overlaps anything).
[[nodiscard]] Circuit csmt_serial_control(int n_threads,
                                          const MachineConfig& machine);
[[nodiscard]] Circuit csmt_parallel_control(int n_threads,
                                            const MachineConfig& machine);
[[nodiscard]] Circuit smt_serial_control(int n_threads,
                                         const MachineConfig& machine);

}  // namespace cvmt
