#include "exp/batch_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <future>

#include "sim/batch_engine.hpp"
#include "sim/session.hpp"
#include "store/sweep_store.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace cvmt {
namespace {

/// The calling thread's simulation session. Programs and compiled schemes
/// come from the process-wide ArtifactCache (thread-safe, shared across
/// batches and machines); the session's SimInstances are this thread's
/// reusable run state. thread_local scoping means pool workers — which
/// live for one batch — drop their sessions with the pool, while the
/// inline workers<=1 path keeps one (bounded) session warm on the calling
/// thread across batches.
SimSession& session_for_this_thread() {
  thread_local SimSession session;
  return session;
}

SimResult run_one(const BatchJob& job, SimSession& session,
                  SweepStore* store) {
  if (store != nullptr)
    return store->run_point(job, [&job, &session] {
      return session.run(job.scheme,
                         std::span<const std::string>(job.benchmarks),
                         job.sim);
    });
  return session.run(job.scheme,
                     std::span<const std::string>(job.benchmarks), job.sim);
}

/// The lanes>1 path: one SimBatch drains a contiguous job range in
/// lockstep. Artifacts come from the same process-wide cache as the
/// session path, so the two paths compile identical schemes/programs and
/// produce bit-identical results (batch_engine_test pins this).
void run_jobs_batched(std::span<const BatchJob> jobs,
                      std::span<SimResult> results, unsigned lanes) {
  ArtifactCache& cache = ArtifactCache::global();
  SimBatch batch(static_cast<int>(lanes));
  for (const BatchJob& job : jobs) {
    BatchRunSpec spec;
    spec.scheme = cache.scheme(job.scheme, job.sim.machine);
    const std::shared_ptr<const CompiledWorkload> wl = cache.workload(
        std::span<const std::string>(job.benchmarks), job.sim.machine);
    spec.shared_programs = {wl, &wl->programs};
    spec.config = job.sim;
    batch.enqueue(std::move(spec));
  }
  std::vector<SimResult> out = batch.run_all();
  for (std::size_t i = 0; i < out.size(); ++i)
    results[i] = std::move(out[i]);
}

}  // namespace

BatchJob make_job(const Scheme& scheme, const Workload& workload,
                  const SimConfig& sim) {
  BatchJob job;
  job.scheme = scheme;
  job.benchmarks.assign(workload.benchmarks.begin(),
                        workload.benchmarks.end());
  job.sim = sim;
  return job;
}

unsigned resolve_workers(const BatchOptions& opts, std::size_t num_jobs) {
  if (num_jobs == 0) return 1;
  unsigned workers = opts.workers;
  if (workers == 0) workers = ThreadPool::hardware_workers();
  if (num_jobs < workers) workers = static_cast<unsigned>(num_jobs);
  return workers == 0 ? 1u : workers;
}

std::vector<SimResult> run_batch(std::span<const BatchJob> jobs,
                                 const BatchOptions& opts) {
  std::vector<SimResult> results(jobs.size());
  const unsigned workers = resolve_workers(opts, jobs.size());
  // The store mediates per job (skip/load/append around each point), so
  // it rides the session path; lanes>1 would simulate a whole lockstep
  // group before any store decision. Results are bit-identical anyway,
  // but a sharded sweep runs at session throughput — say so instead of
  // leaving --shard ... --lanes 8 users mystified.
  if (opts.store != nullptr && opts.lanes > 1)
    std::fprintf(stderr,
                 "cvmt: --store runs the per-job session path; ignoring "
                 "--lanes=%u (results are bit-identical, only sweep "
                 "throughput differs)\n",
                 opts.lanes);
  const unsigned lanes =
      opts.store != nullptr ? 1u : (opts.lanes == 0 ? 1u : opts.lanes);
  if (workers <= 1) {
    if (lanes <= 1) {
      SimSession& session = session_for_this_thread();
      for (std::size_t i = 0; i < jobs.size(); ++i)
        results[i] = run_one(jobs[i], session, opts.store);
    } else {
      run_jobs_batched(jobs, results, lanes);
    }
    return results;
  }

  // No pre-build pass: the artifact cache serialises the build of any
  // missing program/scheme under its lock, so concurrent first requests
  // for one artifact block on a single build and then share it.
  ThreadPool pool(workers);
  std::vector<std::future<void>> pending;
  if (lanes <= 1) {
    pending.reserve(jobs.size());
    SweepStore* const store = opts.store;
    for (std::size_t i = 0; i < jobs.size(); ++i)
      pending.push_back(pool.submit([&jobs, &results, store, i] {
        results[i] =
            run_one(jobs[i], session_for_this_thread(), store);
      }));
  } else {
    // Contiguous per-worker job ranges, each drained by one SimBatch.
    // Every result lands in its own pre-allocated slot, so the output is
    // independent of worker count and lane count alike.
    const std::size_t chunk = (jobs.size() + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t begin = static_cast<std::size_t>(w) * chunk;
      if (begin >= jobs.size()) break;
      const std::size_t count = std::min(chunk, jobs.size() - begin);
      pending.push_back(pool.submit([jobs, &results, begin, count, lanes] {
        run_jobs_batched(
            jobs.subspan(begin, count),
            std::span<SimResult>(results).subspan(begin, count), lanes);
      }));
    }
  }
  for (auto& f : pending) f.get();  // rethrows the first job failure
  return results;
}

std::vector<double> run_batch_ipc(std::span<const BatchJob> jobs,
                                  const BatchOptions& opts) {
  const std::vector<SimResult> results = run_batch(jobs, opts);
  std::vector<double> ipc;
  ipc.reserve(results.size());
  for (const SimResult& r : results) ipc.push_back(r.ipc);
  return ipc;
}

std::vector<double> group_averages(std::span<const double> values,
                                   std::size_t group_size) {
  CVMT_CHECK_MSG(group_size > 0 && values.size() % group_size == 0,
                 "values must hold whole groups");
  std::vector<double> averages(values.size() / group_size, 0.0);
  for (std::size_t g = 0; g < averages.size(); ++g) {
    double sum = 0.0;
    for (std::size_t i = 0; i < group_size; ++i)
      sum += values[g * group_size + i];
    averages[g] = sum / static_cast<double>(group_size);
  }
  return averages;
}

}  // namespace cvmt
