#include "exp/batch_runner.hpp"

#include <future>
#include <memory>
#include <mutex>
#include <utility>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace cvmt {
namespace {

/// Process-wide cache of pre-built program libraries, one per distinct
/// machine config. Programs are immutable once built, so sharing across
/// batches is safe; the mutex serialises the (rare) build of a new
/// machine's set, and workers afterwards only call the const,
/// concurrency-safe ProgramLibrary::lookup.
const ProgramLibrary& library_for(const MachineConfig& machine) {
  static std::mutex mu;
  static std::vector<
      std::pair<MachineConfig, std::unique_ptr<ProgramLibrary>>>
      libs;
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& [m, lib] : libs)
    if (m == machine) return *lib;
  auto lib = std::make_unique<ProgramLibrary>(machine);
  lib->build_all();
  libs.emplace_back(machine, std::move(lib));
  return *libs.back().second;
}

SimResult run_one(const BatchJob& job, const ProgramLibrary& lib) {
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  programs.reserve(job.benchmarks.size());
  for (const std::string& name : job.benchmarks)
    programs.push_back(lib.lookup(name));
  return run_simulation(job.scheme, programs, job.sim);
}

}  // namespace

BatchJob make_job(const Scheme& scheme, const Workload& workload,
                  const SimConfig& sim) {
  BatchJob job;
  job.scheme = scheme;
  job.benchmarks.assign(workload.benchmarks.begin(),
                        workload.benchmarks.end());
  job.sim = sim;
  return job;
}

unsigned resolve_workers(const BatchOptions& opts, std::size_t num_jobs) {
  if (num_jobs == 0) return 1;
  unsigned workers = opts.workers;
  if (workers == 0) workers = ThreadPool::hardware_workers();
  if (num_jobs < workers) workers = static_cast<unsigned>(num_jobs);
  return workers == 0 ? 1u : workers;
}

std::vector<SimResult> run_batch(std::span<const BatchJob> jobs,
                                 const BatchOptions& opts) {
  std::vector<const ProgramLibrary*> library_of;
  library_of.reserve(jobs.size());
  for (const BatchJob& job : jobs)
    library_of.push_back(&library_for(job.sim.machine));

  std::vector<SimResult> results(jobs.size());
  const unsigned workers = resolve_workers(opts, jobs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i)
      results[i] = run_one(jobs[i], *library_of[i]);
    return results;
  }

  ThreadPool pool(workers);
  std::vector<std::future<void>> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    pending.push_back(pool.submit(
        [&jobs, &library_of, &results, i] {
          results[i] = run_one(jobs[i], *library_of[i]);
        }));
  for (auto& f : pending) f.get();  // rethrows the first job failure
  return results;
}

std::vector<double> run_batch_ipc(std::span<const BatchJob> jobs,
                                  const BatchOptions& opts) {
  const std::vector<SimResult> results = run_batch(jobs, opts);
  std::vector<double> ipc;
  ipc.reserve(results.size());
  for (const SimResult& r : results) ipc.push_back(r.ipc);
  return ipc;
}

std::vector<double> group_averages(std::span<const double> values,
                                   std::size_t group_size) {
  CVMT_CHECK_MSG(group_size > 0 && values.size() % group_size == 0,
                 "values must hold whole groups");
  std::vector<double> averages(values.size() / group_size, 0.0);
  for (std::size_t g = 0; g < averages.size(); ++g) {
    double sum = 0.0;
    for (std::size_t i = 0; i < group_size; ++i)
      sum += values[g * group_size + i];
    averages[g] = sum / static_cast<double>(group_size);
  }
  return averages;
}

}  // namespace cvmt
