// Report emission for the standalone wall-clock benches (the ones that
// are deliberately NOT registry experiments: their headline numbers are
// wall-clock ratios, so `cvmt run all` stays deterministic without them).
// The perf trajectory still wants them machine-readable and diffable, so
// this helper renders a BenchReport in the exact envelope shape the
// registry driver emits for experiments —
//
//   {"id", "artifact", "description", "ok", "params",
//    "sections": [{"title", "columns", "rows"}]}
//
// — which lets the CI structure diff treat BENCH_session_reuse.json and
// BENCH_batch_engine.json with the same tooling as BENCH_cycle_loop.json.
// Wall-clock cells live in their own columns so a structure diff (titles
// and columns) is stable across machines while the values float.
//
// --out follows the driver's contract: probe the path up front, render
// into a buffer, and commit via temp-file + atomic rename, so a failed
// run never destroys the previous report.
#pragma once

#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "support/json.hpp"

namespace cvmt {

/// One standalone bench's report: the experiment-envelope fields plus the
/// sections to render. `params` carries the resolved knobs the bench ran
/// at (budget, reps, ...) — execution details such as lane or worker
/// counts are omitted by the same rule the driver applies.
struct BenchReport {
  std::string id;
  std::string artifact = "performance";
  std::string description;
  bool ok = true;
  JsonValue params = JsonValue::object();
  std::vector<ResultSection> sections;
};

/// The report as the registry-style JSON envelope.
[[nodiscard]] JsonValue bench_report_to_json(const BenchReport& report);

/// Renders `report` as an aligned table (format "table") or the JSON
/// envelope (format "json") to stdout, or to `out_path` when non-empty
/// (same bytes; atomic replace). Returns the process exit code: 1 when
/// the report itself is not ok, 2 on an unknown format or I/O failure,
/// else 0.
[[nodiscard]] int emit_bench_report(const BenchReport& report,
                                    const std::string& format,
                                    const std::string& out_path);

}  // namespace cvmt
