// Rendering of experiment results into paper-style tables. Shared by the
// bench binaries and the examples so every consumer prints the same rows
// the paper reports.
#pragma once

#include <iosfwd>

#include "exp/experiments.hpp"
#include "support/table.hpp"

namespace cvmt {

/// Table 1: benchmarks with paper vs simulated IPCr / IPCp.
[[nodiscard]] TableWriter render_table1(const std::vector<Table1Row>& rows);

/// Table 2: workload compositions.
[[nodiscard]] TableWriter render_table2();

/// Fig 4: average SMT IPC per processor configuration.
[[nodiscard]] TableWriter render_fig4(const std::vector<Fig4Row>& rows);

/// Fig 5: merge-control cost vs thread count.
[[nodiscard]] TableWriter render_fig5(const std::vector<Fig5Row>& rows);

/// Fig 6: SMT advantage over CSMT per workload (with average row).
[[nodiscard]] TableWriter render_fig6(const std::vector<Fig6Row>& rows);

/// Fig 9: per-scheme gate delays and transistor counts.
[[nodiscard]] TableWriter render_fig9(const std::vector<Fig9Row>& rows);

/// Fig 10: IPC per workload for every scheme (plus Average row).
[[nodiscard]] TableWriter render_fig10(const Fig10Result& result);

/// Fig 11/12: performance vs transistors / gate delays.
[[nodiscard]] TableWriter render_pareto(
    const std::vector<ParetoPoint>& points);

/// Per-merge-block attempt/reject statistics, one row per block in
/// preorder, labelled with the block's canonical sub-scheme (e.g.
/// "S(0,1)"). Requires a StatsLevel::kFull run to carry counts.
[[nodiscard]] TableWriter render_merge_nodes(
    const std::vector<MergeNodeStats>& nodes);

/// Prints the conclusion's headline percentages.
void print_headlines(std::ostream& os, const HeadlineRelations& h);

/// Prints `table`, then a CSV copy if the CVMT_CSV environment variable is
/// set (machine-readable output for plotting scripts).
void emit(std::ostream& os, const TableWriter& table);

}  // namespace cvmt
