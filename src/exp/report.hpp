// Rendering of typed experiment rows into generic Datasets. The typed row
// structs (exp/experiments.hpp) are the computation currency; a Dataset is
// what crosses the experiment API boundary (registry runners, the cvmt
// driver, the bench shims) and what every output format — aligned table,
// CSV, JSON — is derived from. Table text is byte-identical to the
// historical per-figure TableWriter renderers.
#pragma once

#include <iosfwd>

#include "exp/experiments.hpp"
#include "support/dataset.hpp"

namespace cvmt {

/// Table 1: benchmarks with paper vs simulated IPCr / IPCp.
[[nodiscard]] Dataset render_table1(const std::vector<Table1Row>& rows);

/// Table 2: workload compositions.
[[nodiscard]] Dataset render_table2();

/// Fig 4: average SMT IPC per processor configuration.
[[nodiscard]] Dataset render_fig4(const std::vector<Fig4Row>& rows);

/// Fig 5: merge-control cost vs thread count.
[[nodiscard]] Dataset render_fig5(const std::vector<Fig5Row>& rows);

/// Fig 6: SMT advantage over CSMT per workload (with average row).
[[nodiscard]] Dataset render_fig6(const std::vector<Fig6Row>& rows);

/// Fig 9: per-scheme gate delays and transistor counts.
[[nodiscard]] Dataset render_fig9(const std::vector<Fig9Row>& rows);

/// Fig 10: IPC per workload for every scheme (plus Average row).
[[nodiscard]] Dataset render_fig10(const Fig10Result& result);

/// Fig 11/12: performance vs transistors / gate delays.
[[nodiscard]] Dataset render_pareto(const std::vector<ParetoPoint>& points);

/// Per-merge-block attempt/reject statistics, one row per block in
/// preorder, labelled with the block's canonical sub-scheme (e.g.
/// "S(0,1)"). Requires a StatsLevel::kFull run to carry counts.
[[nodiscard]] Dataset render_merge_nodes(
    const std::vector<MergeNodeStats>& nodes);

/// The headline percentages as data (relation, simulated %, paper %).
[[nodiscard]] Dataset render_headlines(const HeadlineRelations& h);

/// Prints the conclusion's headline percentages as prose.
void print_headlines(std::ostream& os, const HeadlineRelations& h);

/// Prints `table`, then a CSV copy if the CVMT_CSV environment variable is
/// set (machine-readable output for plotting scripts).
void emit(std::ostream& os, const TableWriter& table);
/// Dataset convenience overload of the same.
void emit(std::ostream& os, const Dataset& data);

}  // namespace cvmt
