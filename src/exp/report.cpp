#include "exp/report.hpp"

#include <cstdlib>
#include <ostream>

#include "support/string_util.hpp"

namespace cvmt {
namespace {
std::string fx(double v, int d = 2) { return format_fixed(v, d); }
}  // namespace

TableWriter render_table1(const std::vector<Table1Row>& rows) {
  TableWriter t({"Benchmark", "ILP", "IPCr(paper)", "IPCr(sim)",
                 "IPCp(paper)", "IPCp(sim)"});
  for (const auto& r : rows)
    t.add_row({r.name, std::string(1, r.ilp), fx(r.paper_ipc_real),
               fx(r.sim_ipc_real), fx(r.paper_ipc_perfect),
               fx(r.sim_ipc_perfect)});
  return t;
}

TableWriter render_table2() {
  TableWriter t({"ILP Comb", "Thread 0", "Thread 1", "Thread 2",
                 "Thread 3"});
  for (const Workload& w : table2_workloads())
    t.add_row({w.ilp_combo, w.benchmarks[0], w.benchmarks[1],
               w.benchmarks[2], w.benchmarks[3]});
  return t;
}

TableWriter render_fig4(const std::vector<Fig4Row>& rows) {
  TableWriter t({"Processor", "Avg IPC"});
  for (const auto& r : rows) t.add_row({r.processor, fx(r.avg_ipc)});
  return t;
}

TableWriter render_fig5(const std::vector<Fig5Row>& rows) {
  TableWriter t({"Threads", "CSMT SL trans", "CSMT PL trans", "SMT trans",
                 "CSMT SL delay", "CSMT PL delay", "SMT delay"});
  for (const auto& r : rows)
    t.add_row({std::to_string(r.threads),
               format_grouped(r.csmt_serial.transistors),
               format_grouped(r.csmt_parallel.transistors),
               format_grouped(r.smt.transistors), fx(r.csmt_serial.delay, 1),
               fx(r.csmt_parallel.delay, 1), fx(r.smt.delay, 1)});
  return t;
}

TableWriter render_fig6(const std::vector<Fig6Row>& rows) {
  TableWriter t({"Workload", "SMT IPC", "CSMT IPC", "SMT advantage %"});
  double sum = 0.0;
  for (const auto& r : rows) {
    t.add_row({r.workload, fx(r.smt_ipc), fx(r.csmt_ipc),
               fx(r.advantage_pct, 1)});
    sum += r.advantage_pct;
  }
  t.add_separator();
  t.add_row({"Average", "", "",
             fx(sum / static_cast<double>(rows.size()), 1)});
  return t;
}

TableWriter render_fig9(const std::vector<Fig9Row>& rows) {
  TableWriter t({"Scheme", "Gate delays", "Transistors"});
  for (const auto& r : rows)
    t.add_row({r.scheme, fx(r.gate_delay, 1),
               format_grouped(r.transistors)});
  return t;
}

TableWriter render_fig10(const Fig10Result& result) {
  std::vector<std::string> header{"Workload"};
  for (const auto& s : result.schemes) header.push_back(s);
  TableWriter t(std::move(header));
  for (std::size_t w = 0; w < result.workloads.size(); ++w) {
    std::vector<std::string> row{result.workloads[w]};
    for (double v : result.ipc[w]) row.push_back(fx(v));
    t.add_row(std::move(row));
  }
  t.add_separator();
  std::vector<std::string> avg{"Average"};
  for (double v : result.average) avg.push_back(fx(v));
  t.add_row(std::move(avg));
  return t;
}

TableWriter render_pareto(const std::vector<ParetoPoint>& points) {
  TableWriter t({"Scheme", "Avg IPC", "Transistors", "Gate delays"});
  for (const auto& p : points)
    t.add_row({p.scheme, fx(p.avg_ipc), format_grouped(p.transistors),
               fx(p.gate_delay, 1)});
  return t;
}

TableWriter render_merge_nodes(const std::vector<MergeNodeStats>& nodes) {
  TableWriter t({"Sub-scheme", "Kind", "Attempts", "Rejects", "Reject %"});
  for (const auto& n : nodes)
    t.add_row({n.label, std::string(1, to_char(n.kind)),
               format_grouped(static_cast<long long>(n.attempts)),
               format_grouped(static_cast<long long>(n.rejects)),
               fx(100.0 * n.reject_rate(), 1)});
  return t;
}

void print_headlines(std::ostream& os, const HeadlineRelations& h) {
  os << "2SC3 vs 4-thread CSMT (3CCC): " << fx(h.sc3_vs_csmt_pct, 1)
     << "% (paper: +14%)\n"
     << "2SC3 vs 2-thread SMT (1S):    " << fx(h.sc3_vs_1s_pct, 1)
     << "% (paper: +45%)\n"
     << "2SC3 vs 4-thread SMT (3SSS):  " << fx(h.sc3_vs_smt4_pct, 1)
     << "% (paper: -11%)\n"
     << "3SSS vs 1S:                   " << fx(h.smt4_vs_1s_pct, 1)
     << "% (paper's Fig 4 trend: +61% over 2-thread)\n";
}

void emit(std::ostream& os, const TableWriter& table) {
  table.print(os);
  if (const char* csv = std::getenv("CVMT_CSV"); csv && *csv == '1') {
    os << "\n[csv]\n";
    table.print_csv(os);
  }
}

}  // namespace cvmt
