#include "exp/report.hpp"

#include <cstdlib>
#include <ostream>

#include "support/string_util.hpp"

namespace cvmt {
namespace {
std::string fx(double v, int d = 2) { return format_fixed(v, d); }

Cell i64(std::uint64_t v) {
  return Cell{static_cast<std::int64_t>(v)};
}

}  // namespace

Dataset render_table1(const std::vector<Table1Row>& rows) {
  Dataset d({ColumnSpec::str("Benchmark"), ColumnSpec::str("ILP"),
             ColumnSpec::real("IPCr(paper)"), ColumnSpec::real("IPCr(sim)"),
             ColumnSpec::real("IPCp(paper)"),
             ColumnSpec::real("IPCp(sim)")});
  for (const auto& r : rows)
    d.add_row({r.name, std::string(1, r.ilp), r.paper_ipc_real,
               r.sim_ipc_real, r.paper_ipc_perfect, r.sim_ipc_perfect});
  return d;
}

Dataset render_table2() {
  Dataset d({ColumnSpec::str("ILP Comb"), ColumnSpec::str("Thread 0"),
             ColumnSpec::str("Thread 1"), ColumnSpec::str("Thread 2"),
             ColumnSpec::str("Thread 3")});
  for (const Workload& w : table2_workloads())
    d.add_row({w.ilp_combo, w.benchmarks[0], w.benchmarks[1],
               w.benchmarks[2], w.benchmarks[3]});
  return d;
}

Dataset render_fig4(const std::vector<Fig4Row>& rows) {
  Dataset d({ColumnSpec::str("Processor"), ColumnSpec::real("Avg IPC")});
  for (const auto& r : rows) d.add_row({r.processor, r.avg_ipc});
  return d;
}

Dataset render_fig5(const std::vector<Fig5Row>& rows) {
  Dataset d({ColumnSpec::integer("Threads"),
             ColumnSpec::integer("CSMT SL trans", /*grouped=*/true),
             ColumnSpec::integer("CSMT PL trans", /*grouped=*/true),
             ColumnSpec::integer("SMT trans", /*grouped=*/true),
             ColumnSpec::real("CSMT SL delay", 1),
             ColumnSpec::real("CSMT PL delay", 1),
             ColumnSpec::real("SMT delay", 1)});
  for (const auto& r : rows)
    d.add_row({Cell{static_cast<std::int64_t>(r.threads)},
               Cell{r.csmt_serial.transistors},
               Cell{r.csmt_parallel.transistors}, Cell{r.smt.transistors},
               r.csmt_serial.delay, r.csmt_parallel.delay, r.smt.delay});
  return d;
}

Dataset render_fig6(const std::vector<Fig6Row>& rows) {
  Dataset d({ColumnSpec::str("Workload"), ColumnSpec::real("SMT IPC"),
             ColumnSpec::real("CSMT IPC"),
             ColumnSpec::real("SMT advantage %", 1)});
  double sum = 0.0;
  for (const auto& r : rows) {
    d.add_row({r.workload, r.smt_ipc, r.csmt_ipc, r.advantage_pct});
    sum += r.advantage_pct;
  }
  d.add_separator();
  d.add_row({std::string("Average"), std::monostate{}, std::monostate{},
             sum / static_cast<double>(rows.size())});
  return d;
}

Dataset render_fig9(const std::vector<Fig9Row>& rows) {
  Dataset d({ColumnSpec::str("Scheme"), ColumnSpec::real("Gate delays", 1),
             ColumnSpec::integer("Transistors", /*grouped=*/true)});
  for (const auto& r : rows)
    d.add_row({r.scheme, r.gate_delay, Cell{r.transistors}});
  return d;
}

Dataset render_fig10(const Fig10Result& result) {
  std::vector<ColumnSpec> columns{ColumnSpec::str("Workload")};
  for (const auto& s : result.schemes) columns.push_back(ColumnSpec::real(s));
  Dataset d(std::move(columns));
  for (std::size_t w = 0; w < result.workloads.size(); ++w) {
    std::vector<Cell> row{result.workloads[w]};
    for (double v : result.ipc[w]) row.emplace_back(v);
    d.add_row(std::move(row));
  }
  d.add_separator();
  std::vector<Cell> avg{std::string("Average")};
  for (double v : result.average) avg.emplace_back(v);
  d.add_row(std::move(avg));
  return d;
}

Dataset render_pareto(const std::vector<ParetoPoint>& points) {
  Dataset d({ColumnSpec::str("Scheme"), ColumnSpec::real("Avg IPC"),
             ColumnSpec::integer("Transistors", /*grouped=*/true),
             ColumnSpec::real("Gate delays", 1)});
  for (const auto& p : points)
    d.add_row({p.scheme, p.avg_ipc, Cell{p.transistors}, p.gate_delay});
  return d;
}

Dataset render_merge_nodes(const std::vector<MergeNodeStats>& nodes) {
  Dataset d({ColumnSpec::str("Sub-scheme"), ColumnSpec::str("Kind"),
             ColumnSpec::integer("Attempts", /*grouped=*/true),
             ColumnSpec::integer("Rejects", /*grouped=*/true),
             ColumnSpec::real("Reject %", 1)});
  for (const auto& n : nodes)
    d.add_row({n.label, std::string(1, to_char(n.kind)), i64(n.attempts),
               i64(n.rejects), 100.0 * n.reject_rate()});
  return d;
}

Dataset render_headlines(const HeadlineRelations& h) {
  Dataset d({ColumnSpec::str("Relation"), ColumnSpec::real("Simulated %", 1),
             ColumnSpec::real("Paper %", 0)});
  d.add_row({std::string("2SC3 vs 3CCC"), h.sc3_vs_csmt_pct, 14.0});
  d.add_row({std::string("2SC3 vs 1S"), h.sc3_vs_1s_pct, 45.0});
  d.add_row({std::string("2SC3 vs 3SSS"), h.sc3_vs_smt4_pct, -11.0});
  d.add_row({std::string("3SSS vs 1S"), h.smt4_vs_1s_pct, 61.0});
  return d;
}

void print_headlines(std::ostream& os, const HeadlineRelations& h) {
  os << "2SC3 vs 4-thread CSMT (3CCC): " << fx(h.sc3_vs_csmt_pct, 1)
     << "% (paper: +14%)\n"
     << "2SC3 vs 2-thread SMT (1S):    " << fx(h.sc3_vs_1s_pct, 1)
     << "% (paper: +45%)\n"
     << "2SC3 vs 4-thread SMT (3SSS):  " << fx(h.sc3_vs_smt4_pct, 1)
     << "% (paper: -11%)\n"
     << "3SSS vs 1S:                   " << fx(h.smt4_vs_1s_pct, 1)
     << "% (paper's Fig 4 trend: +61% over 2-thread)\n";
}

void emit(std::ostream& os, const TableWriter& table) {
  table.print(os);
  if (const char* csv = std::getenv("CVMT_CSV"); csv && *csv == '1') {
    os << "\n[csv]\n";
    table.print_csv(os);
  }
}

void emit(std::ostream& os, const Dataset& data) {
  data.to_table().print(os);
  if (const char* csv = std::getenv("CVMT_CSV"); csv && *csv == '1') {
    // Unlike the legacy TableWriter path, the Dataset CSV is properly
    // quoted and full-precision: thousands-grouped cells such as
    // "13,128" would otherwise split into two columns.
    os << "\n[csv]\n";
    data.write_csv(os);
  }
}

}  // namespace cvmt
