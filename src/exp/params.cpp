#include "exp/params.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "core/scheme.hpp"
#include "isa/machine_file.hpp"
#include "sim/batch_engine.hpp"
#include "store/result_store.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/string_util.hpp"
#include "trace/benchmark_suite.hpp"

namespace cvmt {

const char* to_string(ParamKind k) {
  switch (k) {
    case ParamKind::kBudget: return "budget";
    case ParamKind::kTimeslice: return "timeslice";
    case ParamKind::kWorkers: return "workers";
    case ParamKind::kLanes: return "lanes";
    case ParamKind::kStats: return "stats";
    case ParamKind::kSchemes: return "schemes";
    case ParamKind::kWorkloads: return "workloads";
    case ParamKind::kMachine: return "machine";
  }
  return "?";
}

void ExperimentParams::add_standard_flags(ArgParser& parser) {
  parser.add_flag("fast", "Smoke-test scale (small budget and timeslice).",
                  "CVMT_FAST");
  parser.add_u64("budget", "instrs", "Instruction budget per thread.",
                 "CVMT_BUDGET");
  parser.add_u64("timeslice", "cycles", "OS timeslice in cycles.",
                 "CVMT_TIMESLICE");
  parser.add_u64("workers", "n",
                 "Batch-runner worker threads (0 = all hardware cores); "
                 "results are bit-identical for any count.",
                 "CVMT_WORKERS");
  parser.add_u64("lanes", "n",
                 "Lockstep batch-simulation lanes per worker (power of "
                 "two; 1 = classic per-job path); results are "
                 "bit-identical for any count.",
                 "CVMT_BATCH_LANES");
  parser.add_string("stats", "level",
                    "Merge-statistics accounting for the sweeps.",
                    "CVMT_STATS", {"full", "fast"});
  parser.add_string("schemes", "a,b,...",
                    "Restrict to these schemes (paper names or functional "
                    "syntax).",
                    "CVMT_SCHEMES");
  parser.add_string("workloads", "a,b,...",
                    "Restrict to these Table 2 workloads (ILP combos).",
                    "CVMT_WORKLOADS");
  parser.add_u64("clusters", "n",
                 "Machine shape: cluster count (with --issue; default "
                 "machine is the paper's 4x4 VEX).",
                 "CVMT_CLUSTERS");
  parser.add_u64("issue", "n", "Machine shape: issue width per cluster.",
                 "CVMT_ISSUE");
  parser.add_string("machine", "name|file",
                    "Machine description: a built-in name (see `cvmt "
                    "machines`) or a .machine file path. Sets the machine, "
                    "memory system and switch policy together; conflicts "
                    "with --clusters/--issue.",
                    "CVMT_MACHINE");
  parser.add_string("store", "dir",
                    "On-disk result store: completed grid points append "
                    "to crash-safe shard logs in DIR, already-stored "
                    "points are never recomputed (resume = rerun the same "
                    "command), and `cvmt merge --store DIR` folds the "
                    "logs into the full result. See DESIGN.md §12.",
                    "CVMT_STORE");
  parser.add_string("shard", "k/n",
                    "With --store: compute only the grid points whose key "
                    "hashes to shard k of n (0 <= k < n). Each shard of a "
                    "partition can run in its own process or on its own "
                    "machine against a shared DIR.",
                    "CVMT_SHARD");
}

namespace {

std::vector<std::string> parse_list(const std::string& csv) {
  std::vector<std::string> out;
  for (const std::string& item : split(csv, ',')) {
    const std::string_view trimmed = trim(item);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

}  // namespace

ExperimentParams ExperimentParams::resolve(const ArgParser& parser) {
  ExperimentParams p;

  // Layers 1+2: defaults, then the fast scale (flag or CVMT_FAST).
  p.fast = parser.get_flag("fast");
  if (p.fast) {
    p.cfg.sim.instruction_budget = kFastInstructionBudget;
    p.cfg.sim.timeslice_cycles = kFastTimesliceCycles;
  }
  // Layers 3+4: get_u64 resolves CLI over env over the current value.
  p.cfg.sim.instruction_budget =
      parser.get_u64("budget", p.cfg.sim.instruction_budget);
  p.cfg.sim.timeslice_cycles =
      parser.get_u64("timeslice", p.cfg.sim.timeslice_cycles);

  constexpr std::uint64_t kMaxWorkers = std::numeric_limits<unsigned>::max();
  p.cfg.batch.workers = static_cast<unsigned>(
      std::min(parser.get_u64("workers", 0), kMaxWorkers));

  // Lanes fail eagerly — a bad CVMT_BATCH_LANES must not surface hours
  // into a sweep. Powers of two only: lane counts are compared across
  // the {1,2,4,8} identity matrix and benches, and a stray value like 0
  // or 3 is always a typo. Each rejection names its own mistake, and the
  // ceiling is the engine's lane-pool max, not a copy of it.
  constexpr std::uint64_t kMaxLanes =
      static_cast<std::uint64_t>(SimBatch::kMaxLanes);
  const std::uint64_t lanes = parser.get_u64("lanes", 1);
  CVMT_CHECK_MSG(lanes != 0,
                 "--lanes/CVMT_BATCH_LANES: 0 is not \"auto\" — lane count "
                 "must be >= 1 (omit the flag for the default single-lane "
                 "path)");
  CVMT_CHECK_MSG(lanes <= kMaxLanes,
                 "--lanes/CVMT_BATCH_LANES exceeds the lane-pool max " +
                     std::to_string(kMaxLanes) + ", got " +
                     std::to_string(lanes));
  CVMT_CHECK_MSG((lanes & (lanes - 1)) == 0,
                 "--lanes/CVMT_BATCH_LANES must be a power of two, got " +
                     std::to_string(lanes));
  p.cfg.batch.lanes = static_cast<unsigned>(lanes);

  // Stats: the experiment layer's sweeps are pure-IPC, so the resolved
  // default is kFast (the library SimConfig default stays kFull). A bad
  // --stats value was already rejected by the parser's choices; a bad
  // CVMT_STATS value warns here and falls back.
  p.cfg.sim.stats = StatsLevel::kFast;
  const std::string stats = parser.get_string("stats", "fast");
  if (stats == "full") {
    p.cfg.sim.stats = StatsLevel::kFull;
  } else if (stats != "fast") {
    std::fprintf(stderr,
                 "cvmt: ignoring CVMT_STATS=\"%s\" (expected full or "
                 "fast); using fast\n",
                 stats.c_str());
  }

  // Machine: only override the paper's vex4x4 when asked. A --machine
  // spec (built-in name or .machine file) sets machine + memory + switch
  // policy as one unit and excludes the shape shorthand flags.
  const std::uint64_t clusters = parser.get_u64("clusters", 0);
  const std::uint64_t issue = parser.get_u64("issue", 0);
  const std::string machine_spec = parser.get_string("machine", "");
  if (!machine_spec.empty()) {
    CVMT_CHECK_MSG(clusters == 0 && issue == 0,
                   "--machine conflicts with --clusters/--issue (a machine "
                   "file fixes the whole shape)");
    const MachineDescription md = resolve_machine(machine_spec);
    p.cfg.sim.machine = md.machine;
    p.cfg.sim.mem = md.mem;
    p.cfg.sim.switch_policy = md.switch_policy;
    p.machine_spec = machine_spec;
  } else if (clusters != 0 || issue != 0) {
    p.cfg.sim.machine =
        MachineConfig::clustered(static_cast<int>(clusters ? clusters : 4),
                                 static_cast<int>(issue ? issue : 4));
  }

  // Store and shard, validated eagerly like lanes: a malformed CVMT_SHARD
  // must fail up front, not silently compute the whole grid.
  p.store_dir = parser.get_string("store", "");
  const std::string shard = parser.get_string("shard", "");
  if (!shard.empty()) {
    CVMT_CHECK_MSG(!p.store_dir.empty(),
                   "--shard requires --store (the shard logs need a "
                   "directory)");
    const ShardSpec spec = parse_shard_spec(shard);
    p.shard_index = spec.index;
    p.shard_count = spec.count;
  }

  // Filters, validated eagerly so a typo fails before hours of sweep.
  p.schemes = parse_list(parser.get_string("schemes", ""));
  for (const std::string& s : p.schemes) (void)Scheme::parse(s);
  p.workloads = parse_list(parser.get_string("workloads", ""));
  for (const std::string& w : p.workloads) {
    bool known = false;
    for (const Workload& t2 : table2_workloads())
      known = known || t2.ilp_combo == w;
    CVMT_CHECK_MSG(known, "unknown workload \"" + w +
                              "\" (expected a Table 2 ILP combo such as "
                              "LLHH)");
  }
  return p;
}

JsonValue ExperimentParams::to_manifest_json(std::string_view experiment,
                                             unsigned shard_count) const {
  JsonValue out = JsonValue::object();
  out.set("version", 1);
  out.set("experiment", std::string(experiment));
  out.set("shards", static_cast<std::uint64_t>(shard_count));
  out.set("fast", fast);
  out.set("budget", cfg.sim.instruction_budget);
  out.set("timeslice", cfg.sim.timeslice_cycles);
  out.set("stats",
          cfg.sim.stats == StatsLevel::kFull ? "full" : "fast");
  JsonValue scheme_arr = JsonValue::array();
  for (const std::string& s : schemes) scheme_arr.push_back(s);
  out.set("schemes", std::move(scheme_arr));
  JsonValue workload_arr = JsonValue::array();
  for (const std::string& w : workloads) workload_arr.push_back(w);
  out.set("workloads", std::move(workload_arr));
  JsonValue machine = JsonValue::object();
  if (!machine_spec.empty()) {
    // The spec re-resolves at merge time; a .machine file must not change
    // between shard runs and the merge (the point keys would disagree and
    // the merge would report missing points).
    machine.set("spec", machine_spec);
  } else if (!(cfg.sim.machine == MachineConfig::vex4x4())) {
    // Without a spec the only non-default shapes resolve() can produce
    // are the homogeneous --clusters/--issue ones.
    machine.set("clusters", cfg.sim.machine.num_clusters);
    machine.set("issue", cfg.sim.machine.issue_per_cluster);
  }
  out.set("machine", std::move(machine));
  return out;
}

ExperimentParams ExperimentParams::from_manifest_json(
    const JsonValue& manifest, std::string* experiment_out) {
  CVMT_CHECK_MSG(manifest.get("version").as_int() == 1,
                 "store manifest version " +
                     std::to_string(manifest.get("version").as_int()) +
                     " is newer than this build understands");
  if (experiment_out != nullptr)
    *experiment_out = manifest.get("experiment").as_string();
  ExperimentParams p;
  p.fast = manifest.get("fast").as_bool();
  p.cfg.sim.instruction_budget =
      static_cast<std::uint64_t>(manifest.get("budget").as_int());
  p.cfg.sim.timeslice_cycles =
      static_cast<std::uint64_t>(manifest.get("timeslice").as_int());
  p.cfg.sim.stats = manifest.get("stats").as_string() == "full"
                        ? StatsLevel::kFull
                        : StatsLevel::kFast;
  const JsonValue& machine = manifest.get("machine");
  if (const JsonValue* spec = machine.find("spec"); spec != nullptr) {
    const MachineDescription md = resolve_machine(spec->as_string());
    p.cfg.sim.machine = md.machine;
    p.cfg.sim.mem = md.mem;
    p.cfg.sim.switch_policy = md.switch_policy;
    p.machine_spec = spec->as_string();
  } else if (const JsonValue* clusters = machine.find("clusters");
             clusters != nullptr) {
    p.cfg.sim.machine = MachineConfig::clustered(
        static_cast<int>(clusters->as_int()),
        static_cast<int>(machine.get("issue").as_int()));
  }
  const JsonValue& scheme_arr = manifest.get("schemes");
  for (std::size_t i = 0; i < scheme_arr.size(); ++i)
    p.schemes.push_back(scheme_arr.at(i).as_string());
  const JsonValue& workload_arr = manifest.get("workloads");
  for (std::size_t i = 0; i < workload_arr.size(); ++i)
    p.workloads.push_back(workload_arr.at(i).as_string());
  // shard_index/count stay 0/1: the replay run sees the whole grid (the
  // SweepStore carries the manifest's shard count for its diagnostics).
  return p;
}

ExperimentParams ExperimentParams::from_env() {
  ArgParser parser("cvmt", "");
  add_standard_flags(parser);
  const char* argv[] = {"cvmt"};
  CVMT_CHECK(parser.parse(1, argv) == ArgParser::Outcome::kOk);
  return resolve(parser);
}

}  // namespace cvmt
