#include "exp/driver.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>

#include "exp/report.hpp"
#include "isa/machine_file.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/sweep_store.hpp"
#include "support/check.hpp"
#include "support/table.hpp"
#include "support/version.hpp"
#include "testgen/fuzz_driver.hpp"

namespace cvmt {

std::string_view to_string(OutputFormat f) {
  switch (f) {
    case OutputFormat::kTable: return "table";
    case OutputFormat::kCsv: return "csv";
    case OutputFormat::kJson: return "json";
  }
  return "?";
}

namespace {

OutputFormat format_from_string(std::string_view s) {
  if (s == "table") return OutputFormat::kTable;
  if (s == "csv") return OutputFormat::kCsv;
  if (s == "json") return OutputFormat::kJson;
  CVMT_CHECK_MSG(false, "unknown output format: " + std::string(s));
  __builtin_unreachable();
}

void print_table_format(std::ostream& os, const ExperimentResult& result) {
  for (const ResultSection& s : result.sections) {
    if (!s.title.empty()) print_banner(os, s.title);
    os << s.preamble;
    if (!s.text_only && s.data.num_cols() > 0) emit(os, s.data);
    os << s.note;
  }
}

void print_csv_format(std::ostream& os, const Experiment& experiment,
                      const ExperimentResult& result) {
  os << "# experiment: " << experiment.id << '\n';
  bool first = true;
  for (const ResultSection& s : result.sections) {
    if (s.data.num_cols() == 0) continue;
    if (!first) os << '\n';
    first = false;
    if (!s.title.empty()) os << "# section: " << s.title << '\n';
    s.data.write_csv(os);
  }
}

JsonValue params_to_json(const Experiment& experiment,
                         const ExperimentParams& params) {
  JsonValue out = JsonValue::object();
  if (experiment.in_schema(ParamKind::kBudget))
    out.set("budget", params.cfg.sim.instruction_budget);
  if (experiment.in_schema(ParamKind::kTimeslice))
    out.set("timeslice", params.cfg.sim.timeslice_cycles);
  if (experiment.in_schema(ParamKind::kStats) ||
      experiment.forces_full_stats) {
    const bool full = experiment.forces_full_stats ||
                      params.cfg.sim.stats == StatsLevel::kFull;
    out.set("stats", full ? "full" : "fast");
    if (experiment.forces_full_stats) out.set("stats_forced", true);
  }
  if (experiment.in_schema(ParamKind::kSchemes)) {
    JsonValue arr = JsonValue::array();
    for (const std::string& s : params.schemes) arr.push_back(s);
    out.set("schemes", std::move(arr));
  }
  if (experiment.in_schema(ParamKind::kWorkloads)) {
    JsonValue arr = JsonValue::array();
    for (const std::string& w : params.workloads) arr.push_back(w);
    out.set("workloads", std::move(arr));
  }
  if (experiment.in_schema(ParamKind::kMachine)) {
    JsonValue machine = JsonValue::object();
    machine.set("clusters", params.cfg.sim.machine.num_clusters);
    machine.set("issue_per_cluster",
                params.cfg.sim.machine.issue_per_cluster);
    // The spec (and the het marker) appear only for --machine runs:
    // default runs keep the exact historical bytes.
    if (!params.machine_spec.empty())
      machine.set("spec", params.machine_spec);
    if (params.cfg.sim.machine.heterogeneous)
      machine.set("heterogeneous", true);
    out.set("machine", std::move(machine));
  }
  // ParamKind::kWorkers and ParamKind::kLanes are intentionally absent:
  // worker and lane counts are execution details and results are
  // bit-identical for any value, so the machine-readable output must not
  // depend on them.
  return out;
}

}  // namespace

JsonValue result_to_json(const Experiment& experiment,
                         const ExperimentParams& params,
                         const ExperimentResult& result) {
  JsonValue out = JsonValue::object();
  out.set("id", experiment.id);
  out.set("artifact", experiment.artifact);
  out.set("description", experiment.description);
  out.set("ok", result.ok);
  out.set("params", params_to_json(experiment, params));
  JsonValue sections = JsonValue::array();
  for (const ResultSection& s : result.sections) {
    if (s.data.num_cols() == 0) continue;
    JsonValue section = JsonValue::object();
    if (!s.title.empty()) section.set("title", s.title);
    const JsonValue data = s.data.to_json();
    section.set("columns", data.get("columns"));
    section.set("rows", data.get("rows"));
    sections.push_back(std::move(section));
  }
  out.set("sections", std::move(sections));
  return out;
}

void print_result(std::ostream& os, const Experiment& experiment,
                  const ExperimentParams& params,
                  const ExperimentResult& result, OutputFormat format) {
  switch (format) {
    case OutputFormat::kTable: print_table_format(os, result); return;
    case OutputFormat::kCsv:
      print_csv_format(os, experiment, result);
      return;
    case OutputFormat::kJson:
      result_to_json(experiment, params, result).write(os);
      os << '\n';
      return;
  }
}

std::string run_to_string(const Experiment& experiment,
                          const ExperimentParams& params,
                          OutputFormat format) {
  const ExperimentResult result = experiment.run(RunContext{params});
  std::ostringstream os;
  print_result(os, experiment, params, result, format);
  return os.str();
}

namespace {

ParamKind param_kind_of_flag(std::string_view flag) {
  if (flag == "fast" || flag == "budget") return ParamKind::kBudget;
  if (flag == "timeslice") return ParamKind::kTimeslice;
  if (flag == "workers") return ParamKind::kWorkers;
  if (flag == "lanes") return ParamKind::kLanes;
  if (flag == "stats") return ParamKind::kStats;
  if (flag == "schemes") return ParamKind::kSchemes;
  if (flag == "workloads") return ParamKind::kWorkloads;
  CVMT_CHECK(flag == "clusters" || flag == "issue" || flag == "machine");
  return ParamKind::kMachine;
}

void warn_flags_outside_schema(const Experiment& experiment,
                               const ArgParser& parser) {
  for (const std::string& flag : parser.cli_set_names()) {
    // format/out/store/shard are driver-level, not experiment schema.
    if (flag == "format" || flag == "out" || flag == "store" ||
        flag == "shard")
      continue;
    if (!experiment.in_schema(param_kind_of_flag(flag)))
      std::fprintf(stderr,
                   "cvmt: experiment '%s' does not consume --%s "
                   "(schema: %s)\n",
                   experiment.id.c_str(), flag.c_str(),
                   experiment.schema_summary().c_str());
  }
}

void add_format_flag(ArgParser& parser) {
  parser.add_string("format", "fmt",
                    "Output format: aligned table, machine-readable CSV, "
                    "or JSON.",
                    {}, {"table", "csv", "json"});
}

void add_out_flag(ArgParser& parser) {
  parser.add_string("out", "file",
                    "Write the report to this file instead of stdout "
                    "(same bytes; diagnostics stay on stderr).");
}

/// The --out contract: a pre-existing report at the path must survive any
/// failure — a typo'd experiment id, an experiment throwing mid-run, a
/// full disk. So the report is rendered into `buffer` and committed to
/// the file only at the end (commit_out); this probe merely verifies the
/// path is writable up front, in append mode, which never truncates.
/// Returns false (after a diagnostic) when the path cannot be opened.
bool probe_out(const std::string& path, std::string_view who) {
  std::error_code ec;
  const bool existed = std::filesystem::exists(path, ec);
  bool ok;
  {
    std::ofstream probe(path, std::ios::out | std::ios::app);
    ok = probe.is_open();
  }
  // The probe creates the file when it did not exist; remove it again so
  // a run that later throws leaves the filesystem exactly as it found it
  // (no stray zero-byte report for a consumer to mistake for output).
  if (ok && !existed) std::filesystem::remove(path, ec);
  if (!ok) std::cerr << who << ": cannot open --out file: " << path << '\n';
  return ok;
}

/// Writes the buffered report to `path` (binary: exactly the bytes the
/// stdout path would carry). Writes a sibling temp file first and renames
/// it over the target only after a successful flush — a full disk or I/O
/// error mid-write must not destroy the previous report (rename is atomic
/// on POSIX). Returns false after a diagnostic on error.
bool commit_out(const std::string& path, const std::ostringstream& buffer,
                std::string_view who) {
  const std::string tmp = path + ".tmp";
  std::error_code ec;
  {
    std::ofstream file(tmp,
                       std::ios::out | std::ios::trunc | std::ios::binary);
    file << buffer.str();
    file.flush();
    if (!file.good()) {
      std::filesystem::remove(tmp, ec);
      std::cerr << who << ": error writing --out file: " << path << '\n';
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (!ec) return true;
  std::filesystem::remove(tmp, ec);
  std::cerr << who << ": error writing --out file: " << path << '\n';
  return false;
}

/// Runs one experiment end to end; 0/1 exit semantics of the benches.
int run_and_print(const Experiment& experiment,
                  const ExperimentParams& params, OutputFormat format,
                  std::ostream& os) {
  const ExperimentResult result = experiment.run(RunContext{params});
  print_result(os, experiment, params, result, format);
  return result.ok ? 0 : 1;
}

void print_dataset(std::ostream& os, const Dataset& d,
                   OutputFormat format) {
  switch (format) {
    case OutputFormat::kTable: d.to_table().print(os); break;
    case OutputFormat::kCsv: d.write_csv(os); break;
    case OutputFormat::kJson:
      d.to_json().write(os);
      os << '\n';
      break;
  }
}

/// What a sharded run prints instead of the experiment result: the shard
/// cannot render derived sections (they fold over other shards' points),
/// so it reports what it contributed to the store.
void print_shard_summary(std::ostream& os, const Experiment& experiment,
                         const ExperimentParams& params,
                         const SweepStore& store, OutputFormat format) {
  const SweepStore::Counters c = store.counters();
  Dataset d({ColumnSpec::str("Metric"), ColumnSpec::str("Value")});
  d.add_row({"experiment", experiment.id});
  d.add_row({"store", store.dir()});
  d.add_row({"shard", std::to_string(params.shard_index) + "/" +
                          std::to_string(params.shard_count)});
  d.add_row({"grid_points", std::to_string(c.total)});
  d.add_row({"computed", std::to_string(c.computed)});
  d.add_row({"resumed", std::to_string(c.resumed)});
  d.add_row({"skipped_other_shards", std::to_string(c.skipped)});
  d.add_row({"store_points",
             std::to_string(store.loaded_points() + c.computed)});
  print_dataset(os, d, format);
}

/// run_and_print with the --store sweep semantics layered on top (see
/// DESIGN.md §12). Opens the store, plants it in the batch options, and:
///   n == 1: a resumable run — the store sees the whole grid, so the
///           normal experiment output prints (and reruns are served from
///           the logs without simulating).
///   n  > 1: a shard — grid points land in the shard's log as computed;
///           derived sections (speedups, averages) would fold over other
///           shards' absent points, so a CheckError out of the run is
///           expected on a partial grid: it is reported as a note and the
///           shard summary prints instead. A failure inside a simulation
///           itself (counters.failed > 0) stays a hard error.
int run_with_optional_store(const Experiment& experiment,
                            ExperimentParams& params, OutputFormat format,
                            std::ostream& os, std::string_view who) {
  if (params.store_dir.empty())
    return run_and_print(experiment, params, format, os);
  std::unique_ptr<SweepStore> store;
  try {
    store = SweepStore::open_shard(
        params.store_dir,
        ShardSpec{params.shard_index, params.shard_count},
        params.to_manifest_json(experiment.id, params.shard_count));
  } catch (const CheckError& e) {
    std::cerr << who << ": " << e.what() << '\n';
    return 2;
  }
  params.cfg.batch.store = store.get();
  if (params.shard_count == 1)
    return run_and_print(experiment, params, format, os);
  try {
    (void)experiment.run(RunContext{params});
  } catch (const CheckError& e) {
    if (store->counters().failed > 0) {
      std::cerr << who << ": " << e.what() << '\n';
      return 1;
    }
    std::cerr << who
              << ": note: derived sections skipped on this partial grid "
                 "(expected under --shard; `cvmt merge` renders them): "
              << e.what() << '\n';
  }
  print_shard_summary(os, experiment, params, *store, format);
  return 0;
}

int usage(std::ostream& os, int code) {
  os << "usage:\n"
        "  cvmt list [--format=table|csv|json]\n"
        "      List every registered experiment with its paper artifact\n"
        "      and declared parameter schema.\n"
        "  cvmt run <id|all> [--flags] [--format=table|csv|json]\n"
        "           [--out=FILE] [--store=DIR [--shard=k/n]]\n"
        "      Run one experiment (or every one) and print its result\n"
        "      (--out writes the same bytes to FILE instead of stdout).\n"
        "      With --store, completed grid points persist to crash-safe\n"
        "      shard logs in DIR and are never recomputed (resume =\n"
        "      rerun); --shard=k/n computes only shard k's partition.\n"
        "      `cvmt run <id> --help` lists the flags; each layers over\n"
        "      its CVMT_* environment variable.\n"
        "  cvmt merge --store=DIR [--format=...] [--out=FILE]\n"
        "      Fold the shard logs of a --store sweep into the full\n"
        "      experiment result — byte-identical to the unsharded run.\n"
        "      Errors with the exact resume command if a point is\n"
        "      missing. See DESIGN.md §12.\n"
        "  cvmt machines [FILE.machine ...]\n"
        "      List the built-in machine descriptions; with file\n"
        "      arguments, parse and validate each .machine file (exit 1\n"
        "      on the first invalid file).\n"
        "  cvmt fuzz [--cases=N] [--seed=S] [--shrink] [--flags]\n"
        "      Property-based differential fuzzing of the simulator's\n"
        "      bit-identity contracts; `cvmt fuzz --help` for details.\n"
        "  cvmt serve [--port=N] [--workers=K] [--queue=N]\n"
        "      Long-lived experiment daemon: line-delimited JSON over\n"
        "      TCP, warm artifact cache, bounded worker pool; SIGTERM\n"
        "      drains gracefully. See DESIGN.md §11.\n"
        "  cvmt client --port=N <--ping|--stats|--shutdown|...>\n"
        "      Scripted client and load generator for `cvmt serve`;\n"
        "      `cvmt client --help` for the actions.\n"
        "  cvmt version\n"
        "      Print the build's git revision, compiler and build type.\n";
  return code;
}

/// `cvmt machines`: lists built-ins; `cvmt machines FILE...` validates
/// machine files with parse/validate diagnostics (non-zero exit on error).
int cvmt_machines(int argc, const char* const* argv) {
  if (argc >= 2 && (std::string_view(argv[1]) == "--help" ||
                    std::string_view(argv[1]) == "-h")) {
    std::cout << "usage: cvmt machines [FILE.machine ...]\n"
                 "  Without arguments: list every built-in machine\n"
                 "  description (usable as --machine=NAME).\n"
                 "  With arguments: parse and validate each .machine\n"
                 "  file; prints the diagnostic and exits 1 on the first\n"
                 "  invalid file.\n";
    return 0;
  }
  if (argc < 2) {
    Dataset d({ColumnSpec::str("Name"), ColumnSpec::str("Clusters"),
               ColumnSpec::str("Memory"), ColumnSpec::str("Policy")});
    for (const std::string& name : builtin_machine_names()) {
      MachineDescription desc;
      CVMT_CHECK(find_builtin_machine(name, desc));
      std::string shape;
      if (desc.machine.heterogeneous) {
        for (int c = 0; c < desc.machine.num_clusters; ++c) {
          if (c) shape += '+';
          shape += std::to_string(desc.machine.cluster_issue(c));
        }
        shape += " (het)";
      } else {
        shape = std::to_string(desc.machine.num_clusters) + "x" +
                std::to_string(desc.machine.issue_per_cluster);
      }
      std::string mem = desc.mem.has_l2 ? "L1+L2" : "L1";
      if (desc.mem.dcache_banks > 1)
        mem += ", " + std::to_string(desc.mem.dcache_banks) + "-bank D$";
      d.add_row({name, shape, mem, to_string(desc.switch_policy)});
    }
    d.to_table().print(std::cout);
    return 0;
  }
  for (int i = 1; i < argc; ++i) {
    try {
      const MachineDescription desc = load_machine_file(argv[i]);
      std::cout << argv[i] << ": ok (machine '" << desc.name << "')\n";
    } catch (const CheckError& e) {
      std::cerr << "cvmt machines: " << argv[i] << ": " << e.what()
                << '\n';
      return 1;
    }
  }
  return 0;
}

Dataset list_dataset() {
  Dataset d({ColumnSpec::str("Id"), ColumnSpec::str("Artifact"),
             ColumnSpec::str("Params"), ColumnSpec::str("Description")});
  for (const Experiment* e : ExperimentRegistry::instance().all())
    d.add_row({e->id, e->artifact, e->schema_summary(), e->description});
  return d;
}

int cvmt_list(int argc, const char* const* argv) {
  ArgParser parser("cvmt list", "Lists every registered experiment.");
  add_format_flag(parser);
  switch (parser.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }
  const OutputFormat format =
      format_from_string(parser.get_string("format", "table"));
  const Dataset d = list_dataset();
  switch (format) {
    case OutputFormat::kTable: d.to_table().print(std::cout); break;
    case OutputFormat::kCsv: d.write_csv(std::cout); break;
    case OutputFormat::kJson:
      d.to_json().write(std::cout);
      std::cout << '\n';
      break;
  }
  return 0;
}

int cvmt_run(int argc, const char* const* argv) {
  ArgParser parser(
      "cvmt run <id|all>",
      "Runs experiments from the registry. Every flag layers over its "
      "CVMT_* environment variable (CLI > env > default).");
  ExperimentParams::add_standard_flags(parser);
  add_format_flag(parser);
  add_out_flag(parser);

  // `cvmt run --help` (no id) should reach the parser's help, not be
  // taken for an experiment id.
  if (argc < 2 || std::string_view(argv[1]).substr(0, 2) == "--") {
    if (argc >= 2 && std::string_view(argv[1]) == "--help") {
      parser.print_help(std::cout);
      return 0;
    }
    std::cerr << "cvmt run: missing experiment id (try `cvmt list` or "
                 "`cvmt run --help`)\n";
    return 2;
  }
  const std::string_view id = argv[1];

  // Shift off the id so only flags remain.
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  switch (parser.parse(static_cast<int>(rest.size()), rest.data())) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }

  ExperimentParams params;
  try {
    params = ExperimentParams::resolve(parser);
  } catch (const CheckError& e) {
    std::cerr << "cvmt run: " << e.what() << '\n';
    return 2;
  }
  const OutputFormat format =
      format_from_string(parser.get_string("format", "table"));

  const Experiment* experiment = nullptr;
  if (id != "all") {
    experiment = ExperimentRegistry::instance().find(id);
    if (experiment == nullptr) {
      std::cerr << "cvmt run: unknown experiment '" << id
                << "' (try `cvmt list`)\n";
      return 2;
    }
  } else if (!params.store_dir.empty()) {
    // A store directory binds one experiment (one manifest, one grid).
    std::cerr << "cvmt run: --store needs a single experiment id, not "
                 "'all' (one store directory per experiment)\n";
    return 2;
  }
  const std::string out_path = parser.get_string("out", "");
  if (!out_path.empty() && !probe_out(out_path, "cvmt run")) return 2;
  std::ostringstream buffer;
  std::ostream& os =
      out_path.empty() ? static_cast<std::ostream&>(std::cout) : buffer;

  int code;
  if (id == "all") {
    const auto all = ExperimentRegistry::instance().all();
    bool ok = true;
    if (format == OutputFormat::kJson) {
      JsonValue out = JsonValue::object();
      out.set("generator", "cvmt");
      JsonValue results = JsonValue::array();
      for (const Experiment* e : all) {
        const ExperimentResult r = e->run(RunContext{params});
        ok = ok && r.ok;
        results.push_back(result_to_json(*e, params, r));
      }
      out.set("results", std::move(results));
      out.write(os);
      os << '\n';
    } else {
      bool first = true;
      for (const Experiment* e : all) {
        if (!first && format == OutputFormat::kCsv) os << '\n';
        first = false;
        const ExperimentResult r = e->run(RunContext{params});
        ok = ok && r.ok;
        print_result(os, *e, params, r, format);
      }
    }
    code = ok ? 0 : 1;
  } else {
    warn_flags_outside_schema(*experiment, parser);
    code = run_with_optional_store(*experiment, params, format, os,
                                   "cvmt run");
  }
  if (!out_path.empty() && !commit_out(out_path, buffer, "cvmt run"))
    return 1;
  return code;
}

/// `cvmt merge --store=DIR`: replays the stored sweep. The experiment id
/// and every sweep-defining parameter come from the manifest alone (not
/// flags, not CVMT_* environment), so the fold is reproducible from the
/// directory by itself.
int cvmt_merge(int argc, const char* const* argv) {
  ArgParser parser(
      "cvmt merge",
      "Folds the shard logs of a --store sweep into the full experiment "
      "result; table/CSV/JSON bytes are identical to the unsharded run.");
  parser.add_string("store", "dir",
                    "The store directory the shard runs wrote.",
                    "CVMT_STORE");
  add_format_flag(parser);
  add_out_flag(parser);
  switch (parser.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }
  const std::string dir = parser.get_string("store", "");
  if (dir.empty()) {
    std::cerr << "cvmt merge: --store=DIR is required (try `cvmt merge "
                 "--help`)\n";
    return 2;
  }

  std::unique_ptr<SweepStore> store;
  std::string id;
  ExperimentParams params;
  try {
    store = SweepStore::open_merge(dir);
    params = ExperimentParams::from_manifest_json(store->manifest(), &id);
  } catch (const CheckError& e) {
    std::cerr << "cvmt merge: " << e.what() << '\n';
    return 2;
  }
  const Experiment* experiment = ExperimentRegistry::instance().find(id);
  if (experiment == nullptr) {
    std::cerr << "cvmt merge: manifest names unknown experiment '" << id
              << "'\n";
    return 2;
  }
  params.cfg.batch.store = store.get();

  const OutputFormat format =
      format_from_string(parser.get_string("format", "table"));
  const std::string out_path = parser.get_string("out", "");
  if (!out_path.empty() && !probe_out(out_path, "cvmt merge")) return 2;
  std::ostringstream buffer;
  std::ostream& os =
      out_path.empty() ? static_cast<std::ostream&>(std::cout) : buffer;
  int code;
  try {
    code = run_and_print(*experiment, params, format, os);
  } catch (const CheckError& e) {
    // The expected operational failure: a shard has not finished. The
    // message names the exact resume command.
    std::cerr << "cvmt merge: " << e.what() << '\n';
    return 1;
  }
  if (!out_path.empty() && !commit_out(out_path, buffer, "cvmt merge"))
    return 1;
  return code;
}

}  // namespace

int run_experiment_main(std::string_view id, int argc,
                        const char* const* argv) {
  const Experiment* experiment = ExperimentRegistry::instance().find(id);
  CVMT_CHECK_MSG(experiment != nullptr,
                 "experiment not registered: " + std::string(id) +
                     " (is the cvmt_exp object library linked?)");

  ArgParser parser(
      "bench " + std::string(id),
      experiment->description +
          "\nEquivalent to `cvmt run " + std::string(id) +
          "`; every flag layers over its CVMT_* environment variable.");
  ExperimentParams::add_standard_flags(parser);
  add_format_flag(parser);
  add_out_flag(parser);
  switch (parser.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }

  ExperimentParams params;
  try {
    params = ExperimentParams::resolve(parser);
  } catch (const CheckError& e) {
    std::cerr << "bench " << id << ": " << e.what() << '\n';
    return 2;
  }
  const std::string who = "bench " + std::string(id);
  const std::string out_path = parser.get_string("out", "");
  if (!out_path.empty() && !probe_out(out_path, who)) return 2;
  std::ostringstream buffer;
  std::ostream& os =
      out_path.empty() ? static_cast<std::ostream&>(std::cout) : buffer;
  warn_flags_outside_schema(*experiment, parser);
  const int code = run_with_optional_store(
      *experiment, params,
      format_from_string(parser.get_string("format", "table")), os, who);
  if (!out_path.empty() && !commit_out(out_path, buffer, who)) return 1;
  return code;
}

int cvmt_main(int argc, const char* const* argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string_view command = argv[1];
  if (command == "list") return cvmt_list(argc - 1, argv + 1);
  if (command == "run") return cvmt_run(argc - 1, argv + 1);
  if (command == "merge") return cvmt_merge(argc - 1, argv + 1);
  if (command == "machines") return cvmt_machines(argc - 1, argv + 1);
  if (command == "fuzz") return fuzz_main(argc - 1, argv + 1);
  if (command == "serve") return serve_main(argc - 1, argv + 1);
  if (command == "client") return client_main(argc - 1, argv + 1);
  if (command == "version" || command == "--version") {
    std::cout << version_string() << '\n';
    return 0;
  }
  if (command == "help" || command == "--help" || command == "-h")
    return usage(std::cout, 0);
  std::cerr << "cvmt: unknown command '" << command << "'\n";
  return usage(std::cerr, 2);
}

}  // namespace cvmt
