// ExperimentRegistry: the single experiment API every consumer goes
// through. Each runner (one file under src/exp/runners/) self-registers an
// Experiment — id, paper artifact, description, declared parameter schema
// and a run function returning generic Dataset sections — and the cvmt
// driver, the bench shims, the tests and CI all run it from here. Adding a
// new experiment is one new runner file; no report/bench/CMake fan-out.
//
// Registration happens via static initializers, so the runner objects
// must actually be linked: they are compiled as the cvmt_exp OBJECT
// library (see CMakeLists.txt), which the driver, shims and tests link.
// A plain static-archive member with no referenced symbol would be
// dropped by the linker and its experiment would silently vanish.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/params.hpp"
#include "support/dataset.hpp"

namespace cvmt {

/// One printable/serializable unit of an experiment's output: an optional
/// banner title, an optional free-text preamble (table format only), a
/// Dataset, and an optional free-text note after it (table format only).
struct ResultSection {
  std::string title;
  std::string preamble;
  Dataset data;
  std::string note;
  /// Table format prints `note` instead of the Dataset (the Dataset still
  /// carries the values for csv/json). Used by prose blocks such as the
  /// Fig 10 headline relations.
  bool text_only = false;
};

struct ExperimentResult {
  std::vector<ResultSection> sections;
  /// False when a self-validating experiment (batch-speedup's
  /// bit-identity check) failed; the driver exits non-zero.
  bool ok = true;
};

/// Context handed to a runner. Params are fully resolved; runners that
/// force a knob (merge-efficiency needs full stats) copy and override.
struct RunContext {
  ExperimentParams params;
};

struct Experiment {
  std::string id;           ///< registry key, e.g. "fig10"
  std::string artifact;     ///< paper artifact, e.g. "Figure 10", or
                            ///< "extension" for beyond-paper experiments
  std::string description;  ///< one line for `cvmt list`
  /// Knobs this experiment consumes; the driver warns when a CLI flag
  /// outside the schema is passed.
  std::vector<ParamKind> schema;
  /// Experiment overrides the resolved stats level to kFull (it reads
  /// merge-node counters). Surfaced by `cvmt list`.
  bool forces_full_stats = false;
  /// Listing/run-all order: paper artifacts first, in paper order.
  int sort_key = 1000;
  std::function<ExperimentResult(const RunContext&)> run;

  [[nodiscard]] bool in_schema(ParamKind k) const;
  /// Comma-separated schema for listings, e.g. "budget,timeslice,workers".
  [[nodiscard]] std::string schema_summary() const;
};

class ExperimentRegistry {
 public:
  /// The process-wide registry the runner files register into.
  [[nodiscard]] static ExperimentRegistry& instance();

  /// Registers `e`; duplicate ids are a programming error (CVMT_CHECK).
  void add(Experiment e);

  /// Lookup by id; nullptr when unknown.
  [[nodiscard]] const Experiment* find(std::string_view id) const;

  /// All experiments, ordered by (sort_key, id) — stable across runs and
  /// link orders, which the deterministic `run all` output relies on.
  [[nodiscard]] std::vector<const Experiment*> all() const;

  [[nodiscard]] std::size_t size() const { return experiments_.size(); }

 private:
  std::vector<Experiment> experiments_;
};

/// File-scope helper: `static RegisterExperiment reg{{...}};` in a runner.
struct RegisterExperiment {
  explicit RegisterExperiment(Experiment e) {
    ExperimentRegistry::instance().add(std::move(e));
  }
};

}  // namespace cvmt
