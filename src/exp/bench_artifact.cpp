#include "exp/bench_artifact.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "support/table.hpp"

namespace cvmt {
namespace {

void render_table(std::ostream& os, const BenchReport& report) {
  for (const ResultSection& s : report.sections) {
    if (!s.title.empty()) print_banner(os, s.title);
    os << s.preamble;
    if (!s.text_only && s.data.num_cols() > 0) s.data.to_table().print(os);
    os << s.note;
  }
}

/// Temp-file + atomic-rename commit, mirroring the driver's --out
/// contract: a pre-existing report at `path` survives any failure.
bool commit_out(const std::string& path, const std::string& bytes,
                const std::string& who) {
  const std::string tmp = path + ".tmp";
  std::error_code ec;
  {
    std::ofstream file(tmp,
                       std::ios::out | std::ios::trunc | std::ios::binary);
    file << bytes;
    file.flush();
    if (!file.good()) {
      std::filesystem::remove(tmp, ec);
      std::cerr << who << ": error writing --out file: " << path << '\n';
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (!ec) return true;
  std::filesystem::remove(tmp, ec);
  std::cerr << who << ": error writing --out file: " << path << '\n';
  return false;
}

}  // namespace

JsonValue bench_report_to_json(const BenchReport& report) {
  JsonValue out = JsonValue::object();
  out.set("id", report.id);
  out.set("artifact", report.artifact);
  out.set("description", report.description);
  out.set("ok", report.ok);
  out.set("params", report.params);
  JsonValue sections = JsonValue::array();
  for (const ResultSection& s : report.sections) {
    if (s.data.num_cols() == 0) continue;
    JsonValue section = JsonValue::object();
    if (!s.title.empty()) section.set("title", s.title);
    const JsonValue data = s.data.to_json();
    section.set("columns", data.get("columns"));
    section.set("rows", data.get("rows"));
    sections.push_back(std::move(section));
  }
  out.set("sections", std::move(sections));
  return out;
}

int emit_bench_report(const BenchReport& report, const std::string& format,
                      const std::string& out_path) {
  std::ostringstream buffer;
  if (format == "json") {
    bench_report_to_json(report).write(buffer);
    buffer << '\n';
  } else if (format == "table" || format.empty()) {
    render_table(buffer, report);
  } else {
    std::cerr << report.id << ": unknown --format: " << format << '\n';
    return 2;
  }
  if (out_path.empty()) {
    std::cout << buffer.str();
  } else if (!commit_out(out_path, buffer.str(), report.id)) {
    return 2;
  }
  return report.ok ? 0 : 1;
}

}  // namespace cvmt
