// Parallel batch experiment runner: fans independent (scheme, programs,
// SimConfig) jobs out across a worker pool. Results are bit-identical to
// running the same jobs serially in order, regardless of worker count or
// completion order, because no job shares mutable state with another:
// every job's randomness comes from seeds inside its own SimConfig,
// compiled artifacts (schemes, programs) come from the process-wide
// thread-safe ArtifactCache and are immutable once built, and each result
// is written to its own pre-allocated slot. Each worker thread runs its
// jobs through a private SimSession, so consecutive jobs on the same
// scheme reuse one SimInstance (reset in place) instead of rebuilding the
// simulator per grid point — the reuse is invisible in the results (the
// reset contract is bit-identity, pinned by sim_golden_test).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace cvmt {

class SweepStore;

/// One independent simulation job. `benchmarks` are Table 1 names, one
/// per software thread (a Table 2 workload row contributes its four).
struct BatchJob {
  Scheme scheme = Scheme::single_thread();
  std::vector<std::string> benchmarks;
  SimConfig sim;
};

/// Builds the job for one Table 2 workload row.
[[nodiscard]] BatchJob make_job(const Scheme& scheme,
                                const Workload& workload,
                                const SimConfig& sim);

struct BatchOptions {
  /// Worker threads. 0 resolves to the hardware concurrency. 1 runs the
  /// jobs inline on the calling thread (the serial reference path). The
  /// CVMT_WORKERS environment knob is applied by
  /// ExperimentConfig::from_env, not here.
  unsigned workers = 0;
  /// Lockstep lanes per worker (the CVMT_BATCH_LANES knob, applied by
  /// ExperimentParams::resolve). 1 = the classic per-job session path;
  /// >1 routes each worker's contiguous job range through a SimBatch.
  /// Results are bit-identical for any lane count.
  unsigned lanes = 1;
  /// When set, every job is mediated by the on-disk result store
  /// (src/store/sweep_store.hpp): points outside the store's shard are
  /// skipped (their results default-constructed), already-stored points
  /// are served from the logs without simulating, and fresh results are
  /// appended before they return. The store forces the per-job session
  /// path (`lanes` is ignored; results are bit-identical either way).
  /// Not owned; must outlive the run_batch call.
  SweepStore* store = nullptr;
};

/// The worker count `opts` resolves to for a batch of `num_jobs` jobs
/// (never more workers than jobs, never less than 1).
[[nodiscard]] unsigned resolve_workers(const BatchOptions& opts,
                                       std::size_t num_jobs);

/// Runs all jobs and returns their results in job order.
[[nodiscard]] std::vector<SimResult> run_batch(std::span<const BatchJob> jobs,
                                               const BatchOptions& opts = {});

/// Convenience: the IPC of each job, in job order.
[[nodiscard]] std::vector<double> run_batch_ipc(std::span<const BatchJob> jobs,
                                                const BatchOptions& opts = {});

/// Averages `values` into one mean per group of `group_size` consecutive
/// entries. Inverse of the flattening the experiment sweeps use (job
/// g*group_size + i belongs to group g), so a sweep's per-scheme averages
/// are `group_averages(run_batch_ipc(jobs), workloads.size())`.
[[nodiscard]] std::vector<double> group_averages(
    std::span<const double> values, std::size_t group_size);

}  // namespace cvmt
