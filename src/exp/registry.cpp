#include "exp/registry.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace cvmt {

bool Experiment::in_schema(ParamKind k) const {
  for (const ParamKind s : schema)
    if (s == k) return true;
  return false;
}

std::string Experiment::schema_summary() const {
  std::string out;
  for (const ParamKind k : schema) {
    if (!out.empty()) out += ',';
    out += to_string(k);
  }
  if (forces_full_stats) out += out.empty() ? "stats=full" : " (stats=full)";
  return out.empty() ? "-" : out;
}

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment e) {
  CVMT_CHECK_MSG(!e.id.empty(), "experiment id must not be empty");
  CVMT_CHECK_MSG(static_cast<bool>(e.run),
                 "experiment '" + e.id + "' has no run function");
  CVMT_CHECK_MSG(find(e.id) == nullptr,
                 "duplicate experiment id: " + e.id);
  experiments_.push_back(std::move(e));
}

const Experiment* ExperimentRegistry::find(std::string_view id) const {
  for (const Experiment& e : experiments_)
    if (e.id == id) return &e;
  return nullptr;
}

std::vector<const Experiment*> ExperimentRegistry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const Experiment& e : experiments_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              if (a->sort_key != b->sort_key)
                return a->sort_key < b->sort_key;
              return a->id < b->id;
            });
  return out;
}

}  // namespace cvmt
