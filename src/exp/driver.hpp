// The cvmt experiment driver: one code path behind the `cvmt` CLI binary
// (tools/cvmt_main.cpp) and every bench_* shim. Resolves parameters
// (CLI flags over CVMT_* environment over defaults), runs experiments
// from the registry, and emits results as an aligned table (the legacy
// bench output, byte-identical), CSV or JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "exp/registry.hpp"

namespace cvmt {

enum class OutputFormat : std::uint8_t { kTable, kCsv, kJson };

[[nodiscard]] std::string_view to_string(OutputFormat f);

/// Writes one experiment's result in `format`. Table format reproduces
/// the historical bench output (banner, preamble, aligned table with the
/// CVMT_CSV appendix, note). JSON carries id/artifact/description/params/
/// sections; the batch-runner worker count is deliberately excluded from
/// the JSON params block — output is byte-identical for any worker count.
void print_result(std::ostream& os, const Experiment& experiment,
                  const ExperimentParams& params,
                  const ExperimentResult& result, OutputFormat format);

/// JSON form of one experiment result (what print_result kJson writes).
[[nodiscard]] JsonValue result_to_json(const Experiment& experiment,
                                       const ExperimentParams& params,
                                       const ExperimentResult& result);

/// Runs `experiment` and renders into a string — the testable core of the
/// driver (the golden-stability tests compare these bytes across worker
/// counts).
[[nodiscard]] std::string run_to_string(const Experiment& experiment,
                                        const ExperimentParams& params,
                                        OutputFormat format);

/// Entry point of a bench_* shim: parse `argv` (standard experiment flags
/// plus --format), run the experiment registered under `id`, print to
/// stdout. Returns a process exit code (0 success, 1 experiment failure,
/// 2 usage error).
[[nodiscard]] int run_experiment_main(std::string_view id, int argc,
                                      const char* const* argv);

/// Entry point of the `cvmt` binary: `cvmt list`, `cvmt run <id|all>`.
[[nodiscard]] int cvmt_main(int argc, const char* const* argv);

}  // namespace cvmt
