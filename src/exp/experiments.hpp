// Experiment runners — one per table/figure of the paper's evaluation.
// Shared by the bench binaries (which print the rows) and the integration
// tests (which assert the headline relations). Each bench_* binary in
// bench/ is the printable form of one runner here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/scheme_cost.hpp"
#include "exp/batch_runner.hpp"
#include "sim/simulation.hpp"

namespace cvmt {

/// The CVMT_FAST=1 / --fast smoke-test scale, shared by env and CLI
/// resolution (see ExperimentParams in exp/params.hpp).
inline constexpr std::uint64_t kFastInstructionBudget = 60'000;
inline constexpr std::uint64_t kFastTimesliceCycles = 10'000;

/// Common configuration for all simulation-backed experiments.
struct ExperimentConfig {
  SimConfig sim;
  /// Fan-out options for the batch runner. from_env() fills workers from
  /// CVMT_WORKERS (0 = all hardware cores); results are identical for any
  /// worker count.
  BatchOptions batch;

  /// Builds defaults, honouring environment overrides:
  ///   CVMT_BUDGET    instructions per thread (default SimConfig's)
  ///   CVMT_TIMESLICE timeslice cycles
  ///   CVMT_FAST=1    small budgets for smoke tests
  ///   CVMT_WORKERS   batch-runner worker threads (default: all cores)
  ///   CVMT_STATS     full|fast merge statistics (default: fast — the
  ///                  experiment sweeps are pure-IPC; runners that *read*
  ///                  merge-node stats force kFull themselves)
  [[nodiscard]] static ExperimentConfig from_env();
};

// ---------------------------------------------------------------- Table 1
struct Table1Row {
  std::string name;
  char ilp = 'L';
  double paper_ipc_real = 0, paper_ipc_perfect = 0;
  double sim_ipc_real = 0, sim_ipc_perfect = 0;
};
/// Single-thread runs of each benchmark with real and perfect memory.
[[nodiscard]] std::vector<Table1Row> run_table1(const ExperimentConfig& cfg);

// ------------------------------------------------------------------ Fig 4
struct Fig4Row {
  std::string processor;  ///< "Single-thread", "2-Thread", "4-Thread"
  double avg_ipc = 0;
};
/// Average SMT IPC over the Table 2 workloads for 1/2/4 hardware threads.
[[nodiscard]] std::vector<Fig4Row> run_fig4(const ExperimentConfig& cfg);

// ------------------------------------------------------------------ Fig 5
struct Fig5Row {
  int threads = 0;
  Circuit csmt_serial, csmt_parallel, smt;
};
/// Merge-control cost sweep over thread count (no simulation involved).
[[nodiscard]] std::vector<Fig5Row> run_fig5(
    const MachineConfig& machine = MachineConfig::vex4x4(),
    int min_threads = 2, int max_threads = 8);

// ------------------------------------------------------------------ Fig 6
struct Fig6Row {
  std::string workload;
  double smt_ipc = 0, csmt_ipc = 0;
  double advantage_pct = 0;  ///< 100*(smt-csmt)/csmt
};
/// 4-thread SMT (3SSS) vs 4-thread CSMT (3CCC) per workload. A non-empty
/// `workloads` filter restricts the Table 2 rows.
[[nodiscard]] std::vector<Fig6Row> run_fig6(
    const ExperimentConfig& cfg,
    const std::vector<std::string>& workloads = {});

// ------------------------------------------------------------------ Fig 9
struct Fig9Row {
  std::string scheme;
  double gate_delay = 0;
  std::int64_t transistors = 0;
};
/// Merge-control cost of the 16 four-thread schemes (paper order).
[[nodiscard]] std::vector<Fig9Row> run_fig9(
    const MachineConfig& machine = MachineConfig::vex4x4());

// ----------------------------------------------------------------- Fig 10
struct Fig10Result {
  std::vector<std::string> schemes;    ///< column order (paper Fig 9 order)
  std::vector<std::string> workloads;  ///< row order (Table 2 order)
  /// ipc[w][s] for workload w, scheme s.
  std::vector<std::vector<double>> ipc;
  /// Per-scheme average over workloads (the paper's "Average" group).
  std::vector<double> average;

  [[nodiscard]] double ipc_of(std::string_view scheme,
                              std::string_view workload) const;
  [[nodiscard]] double average_of(std::string_view scheme) const;
};
/// Full 9-workload x 16-scheme performance matrix.
[[nodiscard]] Fig10Result run_fig10(const ExperimentConfig& cfg);

/// Filtered Fig 10 grid: empty `schemes` / `workloads` mean the full
/// paper sets (scheme names are parsed with Scheme::parse; workload names
/// must be Table 2 ILP combos). Used by the registry's --schemes and
/// --workloads knobs.
[[nodiscard]] Fig10Result run_fig10(
    const ExperimentConfig& cfg, const std::vector<std::string>& schemes,
    const std::vector<std::string>& workloads);

// ------------------------------------------------------------- Fig 11/12
struct ParetoPoint {
  std::string scheme;
  double avg_ipc = 0;
  std::int64_t transistors = 0;
  double gate_delay = 0;
};
/// Performance vs cost scatter (combines Fig 10 averages with Fig 9 cost).
[[nodiscard]] std::vector<ParetoPoint> pareto_points(
    const Fig10Result& fig10, const MachineConfig& machine);

/// The headline comparisons of the paper's conclusion, derived from Fig 10:
/// 2SC3 vs 3CCC (+14% in the paper), vs 1S (+45%), vs 3SSS (-11%).
struct HeadlineRelations {
  double sc3_vs_csmt_pct = 0;
  double sc3_vs_1s_pct = 0;
  double sc3_vs_smt4_pct = 0;  ///< negative: below 4-thread SMT
  double smt4_vs_1s_pct = 0;   ///< Fig 4's 2->4 thread gain (+61%)
};
[[nodiscard]] HeadlineRelations headline_relations(const Fig10Result& f);

}  // namespace cvmt
