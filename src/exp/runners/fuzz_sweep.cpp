// The deterministic differential-fuzz sweep as a registered experiment:
// 200 generated cases from seed 1 (the same sweep `cvmt fuzz` runs by
// default and PR CI executes), every case checked against the plan/tree,
// full/fast-stats, fast-forward/stepped, replay and
// specialized-interpreter oracles. The result is
// bit-identical for any --workers value; ok = false on any mismatch, so
// the CI experiment-json job doubles as a fuzz gate.
#include "exp/runners/common.hpp"
#include "testgen/fuzz_driver.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  FuzzOptions options;
  options.cases = 200;
  options.seed = 1;
  options.workers = ctx.params.cfg.batch.workers;
  options.lanes = ctx.params.cfg.batch.lanes;
  const FuzzSweepResult sweep = run_fuzz_sweep(options);

  ExperimentResult result = runners::one_section(
      "Differential fuzz sweep (200 cases, seed 1)", sweep.summary(),
      sweep.failures == 0
          ? "\nEvery oracle passed.\n"
          : "\nORACLE FAILURES — run `cvmt fuzz --shrink "
            "--save=tests/corpus` for minimal repros.\n");
  if (sweep.failures > 0) {
    ResultSection failures;
    failures.title = "Oracle failures";
    failures.data = sweep.failure_table();
    result.sections.push_back(std::move(failures));
  }
  result.ok = sweep.failures == 0;
  return result;
}

const RegisterExperiment reg{{
    .id = "fuzz",
    .artifact = "validation",
    .description = "Deterministic 200-case differential fuzz of the "
                   "evaluator/stats/loop bit-identity contracts.",
    .schema = {ParamKind::kWorkers, ParamKind::kLanes},
    .sort_key = 310,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
