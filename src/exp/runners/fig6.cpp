// Fig 6: per-workload performance advantage of a 4-thread SMT processor
// (3SSS) over a 4-thread CSMT processor (3CCC). The paper reports a 27%
// average with a 58% peak on LLHH.
#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  return runners::one_section(
      "Figure 6: SMT performance advantage over CSMT (4 threads)",
      render_fig6(run_fig6(ctx.params.cfg, ctx.params.workloads)));
}

const RegisterExperiment reg{{
    .id = "fig6",
    .artifact = "Figure 6",
    .description = "4-thread SMT (3SSS) vs 4-thread CSMT (3CCC) per "
                   "workload.",
    .schema = [] {
      auto s = runners::sim_schema();
      s.push_back(ParamKind::kWorkloads);
      return s;
    }(),
    .sort_key = 50,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
