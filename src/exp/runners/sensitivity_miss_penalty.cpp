// Sensitivity of the scheme trade-off to the memory system: the paper
// fixes a 20-cycle miss penalty (400MHz, 50ns DRAM). Sweeping the penalty
// shows why multithreading pays: longer memory stalls widen every
// multithreaded scheme's lead over 1S, while the 2SC3-vs-3CCC gap — a
// property of the merge networks, not the memory — barely moves.
//
// Note: the Table 1 IPCr calibration assumes 20 cycles, so absolute IPCs
// at other penalties are not paper numbers; the relations are the point.
#include "exp/runners/common.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  const ExperimentConfig& cfg = ctx.params.cfg;

  Dataset t({ColumnSpec::integer("Miss penalty"), ColumnSpec::real("1S"),
             ColumnSpec::real("3CCC"), ColumnSpec::real("2SC3"),
             ColumnSpec::real("3SSS"),
             ColumnSpec::real("2SC3 vs 3CCC", 1, "%"),
             ColumnSpec::real("3SSS vs 1S", 1, "%")});
  const char* names[] = {"1S", "3CCC", "2SC3", "3SSS"};
  for (int penalty : {5, 10, 20, 40, 80}) {
    SimConfig sim = cfg.sim;
    sim.mem.icache.miss_penalty = penalty;
    sim.mem.dcache.miss_penalty = penalty;

    // One batch per penalty: every scheme on every workload.
    const auto& wls = table2_workloads();
    std::vector<BatchJob> jobs;
    jobs.reserve(std::size(names) * wls.size());
    for (const char* name : names)
      for (const Workload& w : wls)
        jobs.push_back(make_job(Scheme::parse(name), w, sim));
    const std::vector<double> avg =
        group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());
    const double s1 = avg[0], ccc = avg[1], sc3 = avg[2], sss = avg[3];
    t.add_row({Cell{static_cast<std::int64_t>(penalty)}, s1, ccc, sc3, sss,
               percent_diff(sc3, ccc), percent_diff(sss, s1)});
  }
  return runners::one_section("Sensitivity: DCache/ICache miss penalty",
                              std::move(t));
}

const RegisterExperiment reg{{
    .id = "miss-penalty",
    .artifact = "extension",
    .description = "Scheme relations across a 5..80-cycle cache miss "
                   "penalty sweep.",
    .schema = runners::sim_schema(),
    .sort_key = 240,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
