// Fig 9: merging-hardware cost (gate delays and transistor count) for the
// 16 four-thread schemes, in the paper's presentation order.
#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  return runners::one_section(
      "Figure 9: merging hardware cost per scheme",
      render_fig9(run_fig9(ctx.params.cfg.sim.machine)),
      "\nKey relations (paper Sec. 4.2):\n"
      "  * CSMT-only schemes (C4, 3CCC, 2CC) cheapest overall\n"
      "  * one-SMT-block schemes (2SC3, 3SCC, ...) cost ~1S\n"
      "  * 2SS / 3SSS are the most expensive\n"
      "  * early-SMT schemes hide routing delay (2SC3 ~ 1S)\n");
}

const RegisterExperiment reg{{
    .id = "fig9",
    .artifact = "Figure 9",
    .description = "Merge-control cost of the 16 four-thread schemes "
                   "(cost model only).",
    .schema = {ParamKind::kMachine},
    .sort_key = 60,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
