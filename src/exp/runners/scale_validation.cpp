// Scale-down validation: the paper runs 100M instructions per thread with
// 1M-cycle timeslices; this reproduction defaults to laptop-scale
// budgets. This shows the *relative* results (the only thing the paper's
// conclusions rest on) are stable across run lengths and timeslices,
// which is what licenses the scale-down.
#include "exp/runners/common.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

struct Relations {
  double sc3_vs_csmt, sc3_vs_1s, smt4_vs_1s;
};

Relations measure(const SimConfig& sim, const BatchOptions& batch) {
  const char* names[] = {"1S", "3CCC", "2SC3", "3SSS"};
  const auto& wls = table2_workloads();

  // One batch per scale point: every scheme on every workload.
  std::vector<BatchJob> jobs;
  jobs.reserve(std::size(names) * wls.size());
  for (const char* name : names)
    for (const Workload& w : wls)
      jobs.push_back(make_job(Scheme::parse(name), w, sim));
  const std::vector<double> avg =
      group_averages(run_batch_ipc(jobs, batch), wls.size());
  return {percent_diff(avg[2], avg[1]), percent_diff(avg[2], avg[0]),
          percent_diff(avg[3], avg[0])};
}

ExperimentResult run(const RunContext& ctx) {
  Dataset t({ColumnSpec::integer("Budget (instrs)", /*grouped=*/true),
             ColumnSpec::integer("Timeslice (cycles)", /*grouped=*/true),
             ColumnSpec::real("2SC3 vs 3CCC", 1, "%"),
             ColumnSpec::real("2SC3 vs 1S", 1, "%"),
             ColumnSpec::real("3SSS vs 1S", 1, "%")});
  const std::pair<std::uint64_t, std::uint64_t> points[] = {
      {50'000, 12'500}, {150'000, 25'000}, {400'000, 50'000},
      {400'000, 200'000}, {800'000, 100'000}};
  for (const auto& [budget, slice] : points) {
    SimConfig sim;
    sim.instruction_budget = budget;
    sim.timeslice_cycles = slice;
    // Pure-IPC sweep: skip the merge-stat accounting (the library
    // default is kFull; IPC is bit-identical either way).
    sim.stats = StatsLevel::kFast;
    const Relations r = measure(sim, ctx.params.cfg.batch);
    t.add_row({Cell{static_cast<std::int64_t>(budget)},
               Cell{static_cast<std::int64_t>(slice)}, r.sc3_vs_csmt,
               r.sc3_vs_1s, r.smt4_vs_1s});
  }
  return runners::one_section(
      "Scale-down validation (paper: 100M instrs, 1M-cycle timeslice)",
      std::move(t), "\nPaper reference points: +14%, +45%, +61%.\n");
}

const RegisterExperiment reg{{
    .id = "scale",
    .artifact = "extension",
    .description = "Stability of the headline relations across run "
                   "lengths and timeslices.",
    .schema = {ParamKind::kWorkers, ParamKind::kLanes},
    .sort_key = 250,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
