// Fig 4: average IPC of the single-thread, 2-thread SMT and 4-thread SMT
// processors over the Table 2 workloads. The paper reports a 61%
// advantage of 4-thread over 2-thread SMT.
#include "exp/runners/common.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  const auto rows = run_fig4(ctx.params.cfg);
  std::string note;
  if (rows.size() == 3 && rows[1].avg_ipc > 0.0)
    note = "\n4-thread vs 2-thread gain: " +
           format_fixed(percent_diff(rows[2].avg_ipc, rows[1].avg_ipc), 1) +
           "% (paper: 61%)\n";
  return runners::one_section(
      "Figure 4: SMT performance vs hardware threads", render_fig4(rows),
      std::move(note));
}

const RegisterExperiment reg{{
    .id = "fig4",
    .artifact = "Figure 4",
    .description = "SMT average IPC scaling over 1/2/4 hardware threads.",
    .schema = runners::sim_schema(),
    .sort_key = 30,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
