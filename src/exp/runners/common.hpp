// Internal helpers shared by the experiment runner files in this
// directory. Not part of the experiment API surface.
#pragma once

#include <string_view>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "trace/benchmark_suite.hpp"

namespace cvmt::runners {

/// The Table 2 workload named `name`; throws CheckError when unknown.
[[nodiscard]] const Workload& workload_by_name(std::string_view name);

/// One-section result (the common single-table experiment shape).
[[nodiscard]] ExperimentResult one_section(std::string title, Dataset data,
                                           std::string note = {},
                                           std::string preamble = {});

/// The standard schema of a simulation-backed sweep: budget, timeslice,
/// workers, stats and machine shape.
[[nodiscard]] std::vector<ParamKind> sim_schema();

}  // namespace cvmt::runners
