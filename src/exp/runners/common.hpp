// Internal helpers shared by the experiment runner files in this
// directory. Not part of the experiment API surface.
#pragma once

#include <string_view>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "trace/benchmark_suite.hpp"

namespace cvmt::runners {

/// The Table 2 workload named `name`; throws CheckError when unknown.
[[nodiscard]] const Workload& workload_by_name(std::string_view name);

/// One-section result (the common single-table experiment shape).
[[nodiscard]] ExperimentResult one_section(std::string title, Dataset data,
                                           std::string note = {},
                                           std::string preamble = {});

/// The standard schema of a simulation-backed sweep: budget, timeslice,
/// workers, stats and machine shape.
[[nodiscard]] std::vector<ParamKind> sim_schema();

/// True when this run computes only one shard of its grid (`cvmt run
/// --shard k/n --store DIR` with n > 1): the other shards' points come
/// back default-constructed, so fold sections (averages, speedups,
/// headline relations) would divide by zeros. Runners skip those
/// sections under a partial grid; `cvmt merge` renders them from the
/// complete store. False for resumable single-shard runs and for merge
/// replay — both see every point.
[[nodiscard]] bool partial_grid(const RunContext& ctx);

}  // namespace cvmt::runners
