// Ablations of the simulator design choices called out in DESIGN.md:
//   * priority policy (round-robin rotation vs fixed priority),
//   * DCache miss handling (serialized vs overlapped),
//   * cache sharing (shared vs per-thread private),
//   * tree-atomicity (what the paper's tree schemes give up).
// Each ablation reruns a representative scheme on all workloads.
#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  const ExperimentConfig& cfg = ctx.params.cfg;

  struct Cell_ {
    const char* ablation;
    const char* setting;
    const char* scheme;
    SimConfig sim;
  };
  std::vector<Cell_> cells;
  for (const char* scheme_name : {"3CCC", "2SC3", "3SSS"}) {
    SimConfig rr = cfg.sim;
    rr.priority = PriorityPolicy::kRoundRobin;
    SimConfig fx = cfg.sim;
    fx.priority = PriorityPolicy::kFixed;
    cells.push_back({"priority", "round-robin", scheme_name, rr});
    cells.push_back({"priority", "fixed", scheme_name, fx});

    SimConfig ser = cfg.sim;
    ser.miss_policy = MissPolicy::kSerialized;
    SimConfig ovl = cfg.sim;
    ovl.miss_policy = MissPolicy::kOverlapped;
    cells.push_back({"miss policy", "serialized", scheme_name, ser});
    cells.push_back({"miss policy", "overlapped", scheme_name, ovl});

    SimConfig shared = cfg.sim;
    SimConfig priv = cfg.sim;
    priv.mem.sharing = CacheSharing::kPrivate;
    cells.push_back({"caches", "shared", scheme_name, shared});
    cells.push_back({"caches", "private", scheme_name, priv});
  }
  // Tree atomicity: 2CC versus the cascade 3CCC (the cascade is the
  // "fallback" hardware that re-tries group members individually).
  const std::size_t kSchemeGroupCells = 6;  // separator after each group
  cells.push_back(
      {"tree atomicity", "atomic groups (2CC)", "2CC", cfg.sim});
  cells.push_back(
      {"tree atomicity", "per-thread cascade (3CCC)", "3CCC", cfg.sim});

  // One batch for the whole table: cell c, workload w at c*W+w.
  const auto& wls = table2_workloads();
  std::vector<BatchJob> jobs;
  jobs.reserve(cells.size() * wls.size());
  for (const Cell_& c : cells)
    for (const Workload& w : wls)
      jobs.push_back(make_job(Scheme::parse(c.scheme), w, c.sim));
  const std::vector<double> avg =
      group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());

  Dataset t({ColumnSpec::str("Ablation"), ColumnSpec::str("Setting"),
             ColumnSpec::str("Scheme"), ColumnSpec::real("Avg IPC", 3)});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    t.add_row({std::string(cells[c].ablation),
               std::string(cells[c].setting), std::string(cells[c].scheme),
               avg[c]});
    if ((c + 1) % kSchemeGroupCells == 0 && c + 2 < cells.size())
      t.add_separator();
  }
  return runners::one_section("Ablation: simulator design choices",
                              std::move(t));
}

const RegisterExperiment reg{{
    .id = "design-choices",
    .artifact = "extension",
    .description = "Priority / miss-policy / cache-sharing / "
                   "tree-atomicity simulator ablations.",
    .schema = runners::sim_schema(),
    .sort_key = 220,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
