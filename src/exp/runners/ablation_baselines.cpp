// Multithreading baselines from the paper's related work (§1): Block
// MultiThreading (switch on long-latency events) and Interleaved
// MultiThreading (zero-cycle switch every cycle) issue ONE thread per
// cycle; the merging schemes add horizontal packing on top. This
// quantifies each step of that ladder on the Table 2 workloads.
#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  const ExperimentConfig& cfg = ctx.params.cfg;

  struct Config {
    const char* label;
    Scheme scheme;
    PriorityPolicy policy;
  };
  const std::vector<Config> ladder = {
      {"single-thread", Scheme::single_thread(),
       PriorityPolicy::kRoundRobin},
      {"BMT-4 (switch on stall)", Scheme::imt(4),
       PriorityPolicy::kStickyOnStall},
      {"IMT-4 (switch every cycle)", Scheme::imt(4),
       PriorityPolicy::kRoundRobin},
      {"CSMT-4 (3CCC)", Scheme::parse("3CCC"), PriorityPolicy::kRoundRobin},
      {"mixed (2SC3)", Scheme::parse("2SC3"), PriorityPolicy::kRoundRobin},
      {"SMT-4 (3SSS)", Scheme::parse("3SSS"), PriorityPolicy::kRoundRobin},
  };

  // One batch for the whole ladder: config c, workload w at c*W+w.
  const auto& wls = table2_workloads();
  std::vector<BatchJob> jobs;
  jobs.reserve(ladder.size() * wls.size());
  for (const Config& c : ladder) {
    SimConfig sim = cfg.sim;
    sim.priority = c.policy;
    for (const Workload& w : wls) jobs.push_back(make_job(c.scheme, w, sim));
  }
  const std::vector<double> avg =
      group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());

  Dataset t({ColumnSpec::str("Configuration"), ColumnSpec::real("Avg IPC"),
             ColumnSpec::real("vs single", 1, "%")});
  double base = 0.0;
  for (std::size_t c = 0; c < ladder.size(); ++c) {
    if (base == 0.0) base = avg[c];
    t.add_row({std::string(ladder[c].label), avg[c],
               percent_diff(avg[c], base)});
  }
  return runners::one_section(
      "Baselines: single-thread, BMT, IMT vs merging schemes", std::move(t),
      "\nLadder: IMT/BMT reclaim vertical waste caused by stalls\n"
      "only; CSMT additionally packs cluster-disjoint packets;\n"
      "SMT packs at operation level; 2SC3 buys most of the SMT\n"
      "step at a 2-thread-SMT price (the paper's point).\n");
}

const RegisterExperiment reg{{
    .id = "baselines",
    .artifact = "extension",
    .description = "Single-thread / BMT / IMT / CSMT / mixed / SMT "
                   "multithreading ladder.",
    .schema = runners::sim_schema(),
    .sort_key = 210,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
