// Fig 11: average performance vs transistors incurred for all schemes
// (scatter points printed as rows, sorted by transistor count).
#include <algorithm>

#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  const Fig10Result f =
      run_fig10(ctx.params.cfg, ctx.params.schemes, ctx.params.workloads);
  auto points = pareto_points(f, ctx.params.cfg.sim.machine);
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.transistors < b.transistors;
            });
  return runners::one_section(
      "Figure 11: performance vs transistors incurred",
      render_pareto(points));
}

const RegisterExperiment reg{{
    .id = "fig11",
    .artifact = "Figure 11",
    .description = "Pareto view: average IPC vs merge-control transistor "
                   "cost.",
    .schema = [] {
      auto s = runners::sim_schema();
      s.push_back(ParamKind::kSchemes);
      s.push_back(ParamKind::kWorkloads);
      return s;
    }(),
    .sort_key = 80,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
