// Wall-clock validation of the batch experiment runner: runs the full
// Fig 10 grid (16 schemes x 9 Table 2 workloads = 144 independent jobs)
// serially (1 worker) and through the worker pool (--workers / CVMT_WORKERS
// or all cores), verifies the IPC tables are bit-identical, and reports
// the speedup. On an 8-core machine the parallel path is expected to be
// >= 3x faster; on a single core it degenerates to ~1x by construction.
// The experiment fails (ok = false) if the tables differ.
#include <chrono>
#include <string>

#include "exp/runners/common.hpp"
#include "support/string_util.hpp"
#include "support/thread_pool.hpp"

namespace cvmt {
namespace {

double timed_seconds(Fig10Result& out, const ExperimentConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  out = run_fig10(cfg);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

ExperimentResult run(const RunContext& ctx) {
  ExperimentConfig serial_cfg = ctx.params.cfg;
  serial_cfg.batch.workers = 1;
  const ExperimentConfig& parallel_cfg = ctx.params.cfg;

  // Warm the process-wide artifact cache so neither timed run pays the
  // one-time program/scheme build cost (ArtifactCache::global() is keyed
  // per machine and shared by every batch worker).
  {
    SimConfig warm = serial_cfg.sim;
    warm.instruction_budget = 1'000;
    warm.timeslice_cycles = 1'000;
    const std::vector<BatchJob> jobs = {
        make_job(Scheme::single_thread(), table2_workloads().front(), warm)};
    (void)run_batch_ipc(jobs, serial_cfg.batch);
  }

  Fig10Result serial, parallel;
  const double serial_s = timed_seconds(serial, serial_cfg);
  const double parallel_s = timed_seconds(parallel, parallel_cfg);

  bool identical = serial.schemes == parallel.schemes &&
                   serial.workloads == parallel.workloads &&
                   serial.average == parallel.average;
  for (std::size_t w = 0; identical && w < serial.ipc.size(); ++w)
    identical = serial.ipc[w] == parallel.ipc[w];

  const unsigned workers =
      resolve_workers(parallel_cfg.batch,
                      serial.schemes.size() * serial.workloads.size());
  Dataset t({ColumnSpec::str("Path"), ColumnSpec::integer("Workers"),
             ColumnSpec::real("Wall-clock (s)"),
             ColumnSpec::real("Speedup", 2, "x")});
  t.add_row({std::string("serial"), Cell{std::int64_t{1}}, serial_s, 1.0});
  t.add_row({std::string("batch runner"),
             Cell{static_cast<std::int64_t>(workers)}, parallel_s,
             serial_s / parallel_s});

  ExperimentResult result = runners::one_section(
      "Batch runner: serial vs parallel Fig 10 grid", std::move(t),
      std::string("\nIPC tables bit-identical: ") +
          (identical ? "yes" : "NO") + " (hardware cores: " +
          std::to_string(ThreadPool::hardware_workers()) + ")\n");
  result.ok = identical;
  return result;
}

const RegisterExperiment reg{{
    .id = "batch-speedup",
    .artifact = "validation",
    .description = "Serial-vs-parallel batch runner bit-identity and "
                   "wall-clock speedup.",
    .schema = {ParamKind::kBudget, ParamKind::kTimeslice,
               ParamKind::kWorkers, ParamKind::kLanes, ParamKind::kStats},
    .sort_key = 300,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
