// Fig 5: thread-merge-control cost (transistors, gate delays) for CSMT
// serial, CSMT parallel and SMT designs, for 2..8 threads. Pure cost
// model, no simulation.
#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  return runners::one_section(
      "Figure 5: merge control cost vs number of threads (4-cluster, "
      "4-issue/cluster)",
      render_fig5(run_fig5(ctx.params.cfg.sim.machine)),
      "\nShape checks (paper Sec. 3):\n"
      "  * SMT cost explodes with threads (limits SMT to 2)\n"
      "  * CSMT serial stays linear in both metrics\n"
      "  * CSMT parallel: flat delay, exponential area\n");
}

const RegisterExperiment reg{{
    .id = "fig5",
    .artifact = "Figure 5",
    .description = "Merge-control hardware cost vs thread count (cost "
                   "model only).",
    .schema = {ParamKind::kMachine},
    .sort_key = 40,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
