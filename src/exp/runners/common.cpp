#include "exp/runners/common.hpp"

#include "support/check.hpp"

namespace cvmt::runners {

const Workload& workload_by_name(std::string_view name) {
  for (const Workload& w : table2_workloads())
    if (w.ilp_combo == name) return w;
  CVMT_CHECK_MSG(false, "unknown workload: " + std::string(name));
  __builtin_unreachable();
}

ExperimentResult one_section(std::string title, Dataset data,
                             std::string note, std::string preamble) {
  ResultSection s;
  s.title = std::move(title);
  s.preamble = std::move(preamble);
  s.data = std::move(data);
  s.note = std::move(note);
  ExperimentResult result;
  result.sections.push_back(std::move(s));
  return result;
}

std::vector<ParamKind> sim_schema() {
  return {ParamKind::kBudget, ParamKind::kTimeslice, ParamKind::kWorkers,
          ParamKind::kLanes,
          ParamKind::kStats, ParamKind::kMachine};
}

bool partial_grid(const RunContext& ctx) {
  return ctx.params.cfg.batch.store != nullptr &&
         ctx.params.shard_count > 1;
}

}  // namespace cvmt::runners
