// Fig 12: average performance vs merge-control gate delays for all
// schemes (scatter points printed as rows, sorted by delay).
#include <algorithm>

#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  const Fig10Result f =
      run_fig10(ctx.params.cfg, ctx.params.schemes, ctx.params.workloads);
  auto points = pareto_points(f, ctx.params.cfg.sim.machine);
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.gate_delay < b.gate_delay;
            });
  return runners::one_section("Figure 12: performance vs gate delays",
                              render_pareto(points));
}

const RegisterExperiment reg{{
    .id = "fig12",
    .artifact = "Figure 12",
    .description = "Pareto view: average IPC vs merge-control gate-delay "
                   "cost.",
    .schema = [] {
      auto s = runners::sim_schema();
      s.push_back(ParamKind::kSchemes);
      s.push_back(ParamKind::kWorkloads);
      return s;
    }(),
    .sort_key = 90,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
