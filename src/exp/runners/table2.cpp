// Table 2: the nine multiprogrammed workload configurations, annotated
// with each thread's measured single-thread IPC so the ILP labels can be
// checked against the simulated reality.
#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  ExperimentResult result;
  {
    ResultSection s;
    s.title = "Table 2: Workload configurations";
    s.data = render_table2();
    result.sections.push_back(std::move(s));
  }

  const auto t1 = run_table1(ctx.params.cfg);
  Dataset detail({ColumnSpec::str("Workload"), ColumnSpec::integer("Thread"),
                  ColumnSpec::str("Benchmark"), ColumnSpec::str("ILP"),
                  ColumnSpec::real("IPCr (sim)")});
  for (const Workload& w : table2_workloads()) {
    for (int t = 0; t < 4; ++t) {
      const auto& name = w.benchmarks[static_cast<std::size_t>(t)];
      for (const Table1Row& row : t1)
        if (row.name == name)
          detail.add_row({w.ilp_combo, Cell{static_cast<std::int64_t>(t)},
                          name, std::string(1, row.ilp),
                          row.sim_ipc_real});
    }
    detail.add_separator();
  }
  ResultSection s;
  s.title = "Per-thread detail";
  s.data = std::move(detail);
  result.sections.push_back(std::move(s));
  return result;
}

const RegisterExperiment reg{{
    .id = "table2",
    .artifact = "Table 2",
    .description = "Workload compositions with per-thread simulated IPC.",
    .schema = runners::sim_schema(),
    .sort_key = 20,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
