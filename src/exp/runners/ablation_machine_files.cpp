// Machine-file ablation: the paper's schemes swept over machines that are
// data, not code — the built-in machine descriptions (each the parsed
// equivalent of a file under examples/machines/), covering a heterogeneous
// cluster mix, an L2 + banked-DCache hierarchy, and the prestall/poststall
// switch-policy family next to the paper's vex4x4 baseline.
#include "exp/runners/common.hpp"
#include "isa/machine_file.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  const ExperimentConfig& cfg = ctx.params.cfg;

  const char* machines[] = {"vex4x4", "het4422", "l2banked", "prestall",
                            "poststall"};
  const char* schemes[] = {"1S", "3CCC", "2SC3", "3SSS"};

  Dataset t({ColumnSpec::str("Machine"), ColumnSpec::str("Shape"),
             ColumnSpec::str("Policy"), ColumnSpec::real("1S"),
             ColumnSpec::real("3CCC"), ColumnSpec::real("2SC3"),
             ColumnSpec::real("3SSS"),
             ColumnSpec::real("2SC3 vs 1S", 1, "%")});
  for (const char* name : machines) {
    MachineDescription desc;
    CVMT_CHECK(find_builtin_machine(name, desc));
    SimConfig sim = cfg.sim;
    sim.machine = desc.machine;
    sim.mem = desc.mem;
    sim.switch_policy = desc.switch_policy;

    const auto& wls = table2_workloads();
    std::vector<BatchJob> jobs;
    jobs.reserve(std::size(schemes) * wls.size());
    for (const char* s : schemes)
      for (const Workload& w : wls)
        jobs.push_back(make_job(Scheme::parse(s), w, sim));
    const std::vector<double> avg =
        group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());

    std::string shape;
    if (desc.machine.heterogeneous) {
      for (int c = 0; c < desc.machine.num_clusters; ++c) {
        if (c) shape += '+';
        shape += std::to_string(desc.machine.cluster_issue(c));
      }
    } else {
      shape = std::to_string(desc.machine.num_clusters) + "x" +
              std::to_string(desc.machine.issue_per_cluster);
    }
    std::vector<Cell> row{std::string(name), std::move(shape),
                          std::string(to_string(desc.switch_policy))};
    for (std::size_t si = 0; si < std::size(schemes); ++si)
      row.emplace_back(avg[si]);
    row.emplace_back(percent_diff(avg[2], avg[0]));  // 2SC3 vs 1S
    t.add_row(std::move(row));
  }
  return runners::one_section(
      "Ablation: machine description files", std::move(t),
      "\nNote: machines are the built-in descriptions (mirrored under\n"
      "examples/machines/); rows differ in topology, memory hierarchy\n"
      "or switch policy, so compare schemes within a row.\n");
}

const RegisterExperiment reg{{
    .id = "ablation_machine_files",
    .artifact = "extension",
    .description = "Paper schemes swept over machine description files "
                   "(heterogeneous, L2/banked, switch policies).",
    .schema = {ParamKind::kBudget, ParamKind::kTimeslice,
               ParamKind::kWorkers, ParamKind::kLanes, ParamKind::kStats},
    .sort_key = 235,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
