// Table 1: the benchmark set with single-thread IPC under real memory
// (IPCr) and perfect memory (IPCp), paper targets side by side.
#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  return runners::one_section(
      "Table 1: Benchmarks (single-thread IPCr / IPCp, 4-cluster 4-issue "
      "VEX)",
      render_table1(run_table1(ctx.params.cfg)), /*note=*/{},
      "instruction budget per thread: " +
          std::to_string(ctx.params.cfg.sim.instruction_budget) + "\n\n");
}

const RegisterExperiment reg{{
    .id = "table1",
    .artifact = "Table 1",
    .description = "Single-thread IPCr/IPCp calibration of the 12 "
                   "benchmark profiles.",
    .schema = runners::sim_schema(),
    .sort_key = 10,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
