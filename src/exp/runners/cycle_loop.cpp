// Cycle-loop throughput: how many simulated cycles per wall-clock second
// the simulator sustains on the Fig 10 configuration (4-thread schemes on
// a Table 2 workload), across the hot-path variants introduced with the
// compiled MergePlan:
//
//   seed replica        — an in-binary replica of the pre-MergePlan hot
//                         path: full-array instruction copies in the trace
//                         generator and thread context, per-operation
//                         patch scans with the raw hot-window modulo,
//                         recursive tree evaluation, full merge stats and
//                         a one-cycle-at-a-time OS loop. Asserted to be
//                         bit-identical to the library, so the measured
//                         gap is pure hot-path work;
//   tree / full / step  — the library with the reference tree evaluator,
//                         full stats, no stall fast-forward;
//   tree / full / ff    — + stall fast-forward over all-stalled windows;
//   plan / full / ff    — + flattened MergePlan evaluator;
//   plan / fast / ff    — + StatsLevel::kFast (the sweep default).
//
// Every variant must produce identical simulation results (checked here,
// not just claimed); only wall-clock differs. The acceptance floor is a
// >= 2x simulated-cycles/second gain of plan/fast/ff over the seed
// replica. A second table micro-times MergeEngine::select alone.
#include <array>
#include <chrono>

#include "exp/runners/common.hpp"
#include "sim/session.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ===================================================================
// Seed replica: the pre-MergePlan per-cycle data motion, reproduced with
// the library's public pieces. Structure mirrors the seed sources
// (trace_generator/thread_context/multithreaded_core/os_scheduler) before
// the MergePlan refactor; RNG draw order and every address are identical,
// which the result assertions in run() verify end to end.
// ===================================================================

/// The seed's effective instruction copy: the full inline array, not just
/// the occupied prefix.
struct FatInstr {
  std::array<Operation, kMaxTotalOps> ops;
  std::size_t count = 0;
  std::uint64_t pc = 0;
};

constexpr std::uint64_t kColdLineBytes = 64;
constexpr std::uint64_t kColdWrapBytes = 64ULL << 20;

class SeedGen {
 public:
  SeedGen(std::shared_ptr<const SyntheticProgram> program,
          std::uint64_t stream_seed)
      : program_(std::move(program)),
        rng_(SplitMix64(stream_seed ^ 0xabcdef12345ULL).next()) {
    SplitMix64 sm(stream_seed);
    address_salt_ = (sm.next() % 2048) * 0x100000ULL;
    const std::size_t n = program_->loops().size();
    hot_cursor_.assign(n, 0);
    cold_cursor_.assign(n, 0);
    fat_loops_.resize(n);
    for (std::size_t l = 0; l < n; ++l) {
      const auto& body = program_->loops()[l].body;
      fat_loops_[l].resize(body.size());
      for (std::size_t i = 0; i < body.size(); ++i) {
        FatInstr& fat = fat_loops_[l][i];
        fat.count = body[i].op_count();
        fat.pc = body[i].pc();
        for (std::size_t o = 0; o < fat.count; ++o)
          fat.ops[o] = body[i].op(o);
      }
    }
    enter_next_loop();
  }

  const FatInstr& next() {
    const SyntheticProgram::Loop& loop = program_->loops()[loop_idx_];

    scratch_ = fat_loops_[loop_idx_][body_pos_];  // full-array copy (seed)
    scratch_fp_ = loop.footprints[body_pos_];
    scratch_.pc += address_salt_;

    const bool is_last = body_pos_ + 1 == loop.body.size();
    for (std::size_t i = 0; i < scratch_.count; ++i) {  // full op scan
      Operation& op = scratch_.ops[i];
      if (is_memory(op.kind)) {
        if (rng_.next_bool(loop.miss_frac)) {
          std::uint64_t& cur = cold_cursor_[loop_idx_];
          op.addr = loop.cold_base + address_salt_ + cur;
          cur = (cur + kColdLineBytes) % kColdWrapBytes;
        } else {
          std::uint64_t& cur = hot_cursor_[loop_idx_];
          op.addr = loop.hot_base + address_salt_ +
                    (cur % loop.hot_window);  // the seed's raw modulo
          cur += program_->profile().hot_stride;
        }
      } else if (op.kind == OpKind::kBranch) {
        op.taken = is_last ||
                   rng_.next_bool(program_->profile().mid_branch_taken);
      }
    }

    if (is_last) {
      body_pos_ = 0;
      if (--trips_left_ == 0) enter_next_loop();
    } else {
      ++body_pos_;
    }
    return scratch_;
  }

  [[nodiscard]] const Footprint& current_footprint() const {
    return scratch_fp_;
  }

 private:
  void enter_next_loop() {
    loop_idx_ = rng_.next_below(program_->loops().size());
    trips_left_ =
        rng_.next_trip_count(program_->loops()[loop_idx_].mean_trips);
    body_pos_ = 0;
  }

  std::shared_ptr<const SyntheticProgram> program_;
  Xoshiro256 rng_;
  std::uint64_t address_salt_ = 0;
  std::size_t loop_idx_ = 0;
  std::uint64_t trips_left_ = 0;
  std::size_t body_pos_ = 0;
  std::vector<std::uint64_t> hot_cursor_;
  std::vector<std::uint64_t> cold_cursor_;
  std::vector<std::vector<FatInstr>> fat_loops_;
  FatInstr scratch_;
  Footprint scratch_fp_;
};

class SeedThread {
 public:
  SeedThread(std::shared_ptr<const SyntheticProgram> program,
             std::uint64_t stream_seed, std::uint64_t budget)
      : gen_(std::move(program), stream_seed), budget_(budget) {}

  const Footprint* offer(std::uint64_t cycle, MemorySystem& mem,
                         int hw_tid) {
    if (done_) return nullptr;
    if (!has_pending_) {
      pending_ = gen_.next();  // full-array copy (seed's pending_ copy)
      pending_fp_ = gen_.current_footprint();
      has_pending_ = true;
      const MemAccessResult fetch = mem.fetch(hw_tid, pending_.pc);
      if (!fetch.hit) {
        ready_at_ = std::max(ready_at_, cycle) +
                    static_cast<std::uint64_t>(fetch.penalty_cycles);
      }
    }
    return cycle >= ready_at_ ? &pending_fp_ : nullptr;
  }

  void consume(std::uint64_t cycle, MemorySystem& mem, int hw_tid,
               const MachineConfig& machine, MissPolicy policy) {
    ++instructions_;
    ops_ += pending_.count;
    std::uint64_t stall = 1;
    int dmiss_total = 0;
    int dmiss_max = 0;
    bool taken = false;
    for (std::size_t i = 0; i < pending_.count; ++i) {  // full op scan
      const Operation& op = pending_.ops[i];
      if (is_memory(op.kind)) {
        const MemAccessResult r = mem.data_access(hw_tid, op.addr);
        dmiss_total += r.penalty_cycles;
        dmiss_max = std::max(dmiss_max, r.penalty_cycles);
      } else if (op.kind == OpKind::kBranch && op.taken) {
        taken = true;
      }
    }
    const int dmiss =
        policy == MissPolicy::kSerialized ? dmiss_total : dmiss_max;
    stall += static_cast<std::uint64_t>(dmiss);
    if (taken) stall += static_cast<std::uint64_t>(
        machine.taken_branch_penalty);
    ready_at_ = cycle + stall;
    has_pending_ = false;
    if (instructions_ >= budget_) done_ = true;
  }

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

 private:
  SeedGen gen_;
  std::uint64_t budget_;
  bool has_pending_ = false;
  bool done_ = false;
  FatInstr pending_;
  Footprint pending_fp_;
  std::uint64_t ready_at_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t ops_ = 0;
};

struct SeedRunResult {
  std::uint64_t cycles = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t total_instructions = 0;
};

/// The seed's OsScheduler::run + MultithreadedCore::step, one cycle at a
/// time, over the tree-reference engine with full statistics.
SeedRunResult run_seed_replica(
    const Scheme& scheme,
    const std::vector<std::shared_ptr<const SyntheticProgram>>& programs,
    const SimConfig& cfg) {
  MemorySystem mem(cfg.mem, scheme.num_threads());
  MergeEngine engine(scheme, cfg.machine, cfg.priority, StatsLevel::kFull,
                     EvalMode::kTreeReference);
  const int n = scheme.num_threads();

  std::vector<std::unique_ptr<SeedThread>> threads;
  for (std::size_t i = 0; i < programs.size(); ++i)
    threads.push_back(std::make_unique<SeedThread>(
        programs[i], cfg.stream_seed_base + 0x1000ULL * i,
        cfg.instruction_budget));

  std::array<SeedThread*, kMaxThreads> slots{};
  Xoshiro256 os_rng(cfg.os_seed);
  SeedRunResult result;

  std::uint64_t cycle = 0;
  for (; cycle < cfg.max_cycles; ++cycle) {
    if (cycle % cfg.timeslice_cycles == 0) {
      // Seed reschedule: Fisher-Yates prefix shuffle of runnable threads.
      std::vector<SeedThread*> runnable;
      for (const auto& t : threads)
        if (!t->done()) runnable.push_back(t.get());
      const std::size_t take = std::min<std::size_t>(
          static_cast<std::size_t>(n), runnable.size());
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t j = i + os_rng.next_below(runnable.size() - i);
        std::swap(runnable[i], runnable[j]);
      }
      for (int s = 0; s < n; ++s)
        slots[static_cast<std::size_t>(s)] =
            static_cast<std::size_t>(s) < take
                ? runnable[static_cast<std::size_t>(s)]
                : nullptr;
    }

    // Seed core step.
    std::array<const Footprint*, kMaxThreads> offers{};
    bool any_offer = false;
    for (int s = 0; s < n; ++s) {
      SeedThread* t = slots[static_cast<std::size_t>(s)];
      offers[static_cast<std::size_t>(s)] =
          t ? t->offer(cycle, mem, s) : nullptr;
      any_offer |= offers[static_cast<std::size_t>(s)] != nullptr;
    }
    bool any_done = false;
    if (any_offer) {
      const MergeDecision d = engine.select(std::span<const Footprint* const>(
          offers.data(), static_cast<std::size_t>(n)));
      std::uint32_t mask = d.issued_mask;
      while (mask != 0) {
        const int s = std::countr_zero(mask);
        mask &= mask - 1;
        SeedThread* t = slots[static_cast<std::size_t>(s)];
        const std::uint64_t ops_before = t->ops();
        t->consume(cycle, mem, s, cfg.machine, cfg.miss_policy);
        result.total_ops += t->ops() - ops_before;
        ++result.total_instructions;
        any_done |= t->done();
      }
    }
    if (any_done) {
      ++cycle;  // count the finishing cycle
      break;
    }
  }
  result.cycles = cycle;
  return result;
}

// ===================================================================

struct Mode {
  const char* name;
  EvalMode eval;
  StatsLevel stats;
  bool fast_forward;
};

constexpr Mode kModes[] = {
    {"tree / full / step", EvalMode::kTreeReference, StatsLevel::kFull,
     false},
    {"tree / full / ff", EvalMode::kTreeReference, StatsLevel::kFull, true},
    {"plan / full / ff", EvalMode::kPlan, StatsLevel::kFull, true},
    {"plan / fast / ff", EvalMode::kPlan, StatsLevel::kFast, true},
};

/// Random candidate pool for the select() micro-timing.
std::vector<Footprint> random_footprints(const MachineConfig& m, int n,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Footprint> fps;
  fps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Instruction instr;
    std::uint32_t used[kMaxClusters] = {};
    const int k = 1 + static_cast<int>(rng.next_below(6));
    for (int j = 0; j < k; ++j) {
      const int c = static_cast<int>(rng.next_below(4));
      for (int s = 0; s < 4; ++s) {
        if ((used[c] & (1u << s)) == 0) {
          used[c] |= 1u << s;
          instr.add(make_alu(c, s));
          break;
        }
      }
    }
    fps.push_back(Footprint::of(instr, m));
  }
  return fps;
}

ExperimentResult run(const RunContext& ctx) {
  const ExperimentConfig& cfg = ctx.params.cfg;
  const MachineConfig machine = cfg.sim.machine;

  const Workload& wl = runners::workload_by_name("LMHH");
  const std::shared_ptr<const CompiledWorkload> workload =
      ArtifactCache::global().workload(wl.benchmarks, machine);
  const std::vector<std::shared_ptr<const SyntheticProgram>>& programs =
      workload->programs;

  const char* schemes[] = {"3CCC", "2SC3", "3SSS", "C4"};
  // Best-of-k wall time per cell: one-shot timings on a shared machine
  // are vulnerable to load spikes, and the minimum is the standard robust
  // estimator for throughput. Results are asserted identical every rep.
  const int reps = ctx.params.fast ? 2 : 3;

  Dataset t({ColumnSpec::str("Scheme"), ColumnSpec::str("Mode"),
             ColumnSpec::integer("Sim cycles", /*grouped=*/true),
             ColumnSpec::real("Wall s", 3), ColumnSpec::real("Mcycles/s"),
             ColumnSpec::real("Speedup", 2, "x")});
  double seed_wall = 0.0, fast_wall = 0.0;
  std::uint64_t seed_cycles = 0, fast_cycles = 0;
  for (const char* name : schemes) {
    const Scheme scheme = Scheme::parse(name);

    // Seed replica first: the 1.00x reference.
    SeedRunResult seed;
    double seed_secs = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = Clock::now();
      const SeedRunResult r = run_seed_replica(scheme, programs, cfg.sim);
      const double wall = seconds_since(start);
      if (rep == 0 || wall < seed_secs) seed_secs = wall;
      CVMT_CHECK(rep == 0 || r.cycles == seed.cycles);
      seed = r;
    }
    const double seed_rate = static_cast<double>(seed.cycles) / seed_secs;
    seed_wall += seed_secs;
    seed_cycles += seed.cycles;
    t.add_row({std::string(name), std::string("seed replica"),
               Cell{static_cast<std::int64_t>(seed.cycles)}, seed_secs,
               seed_rate / 1e6, 1.0});

    for (const Mode& mode : kModes) {
      SimConfig sim = cfg.sim;
      sim.eval_mode = mode.eval;
      sim.stats = mode.stats;
      sim.stall_fast_forward = mode.fast_forward;
      double best = 0.0;
      std::uint64_t cycles = 0;
      for (int rep = 0; rep < reps; ++rep) {
        const auto start = Clock::now();
        const SimResult r = run_simulation(scheme, programs, sim);
        const double wall = seconds_since(start);
        if (rep == 0 || wall < best) best = wall;
        cycles = r.cycles;

        // Hard guarantee, not a benchmark nicety: every variant (and the
        // seed replica) is the same simulator.
        CVMT_CHECK_MSG(r.cycles == seed.cycles &&
                           r.total_ops == seed.total_ops &&
                           r.total_instructions == seed.total_instructions,
                       std::string("variant diverged from seed for ") +
                           name);
      }

      const double rate = static_cast<double>(cycles) / best;
      if (&mode == &kModes[std::size(kModes) - 1]) {
        fast_wall += best;
        fast_cycles += cycles;
      }
      t.add_row({std::string(name), std::string(mode.name),
                 Cell{static_cast<std::int64_t>(cycles)}, best, rate / 1e6,
                 rate / seed_rate});
    }
    t.add_separator();
  }

  const double seed_total = static_cast<double>(seed_cycles) / seed_wall;
  const double fast_total = static_cast<double>(fast_cycles) / fast_wall;
  ExperimentResult result = runners::one_section(
      "Cycle-loop throughput (Fig 10 configuration, workload LMHH)",
      std::move(t),
      "\nAggregate simulated cycles/second: seed replica " +
          format_fixed(seed_total / 1e6, 2) + "M, plan+fast+ff " +
          format_fixed(fast_total / 1e6, 2) + "M  ->  " +
          format_fixed(fast_total / seed_total, 2) +
          "x (acceptance floor: 2.00x)\n\n");

  // ---------------------------------------------------------- select() only
  const auto pool = random_footprints(machine, 1024, 99);
  const long iters = ctx.params.fast ? 200'000 : 2'000'000;

  Dataset micro({ColumnSpec::str("Scheme"),
                 ColumnSpec::real("Tree Mselects/s"),
                 ColumnSpec::real("Plan Mselects/s"),
                 ColumnSpec::real("Speedup", 2, "x")});
  for (const char* name : schemes) {
    double rate[2] = {};
    for (int pass = 0; pass < 2; ++pass) {
      const EvalMode mode =
          pass == 0 ? EvalMode::kTreeReference : EvalMode::kPlan;
      MergeEngine engine(Scheme::parse(name), machine,
                         PriorityPolicy::kRoundRobin, StatsLevel::kFull,
                         mode);
      const int n = engine.scheme().num_threads();
      std::array<const Footprint*, kMaxThreads> cands{};
      std::uint64_t sink = 0;
      const auto start = Clock::now();
      for (long i = 0; i < iters; ++i) {
        for (int th = 0; th < n; ++th)
          cands[static_cast<std::size_t>(th)] =
              &pool[(static_cast<std::size_t>(i) +
                     static_cast<std::size_t>(th) * 37) &
                    1023];
        sink += engine.select(std::span<const Footprint* const>(
                                  cands.data(),
                                  static_cast<std::size_t>(n)))
                    .issued_mask;
      }
      const double wall = seconds_since(start);
      rate[pass] = static_cast<double>(iters) / wall;
      CVMT_CHECK(sink != 0);  // keep the loop observable
    }
    micro.add_row({std::string(name), rate[0] / 1e6, rate[1] / 1e6,
                   rate[1] / rate[0]});
  }
  ResultSection s;
  s.title = "MergeEngine::select micro-timing (tree vs plan)";
  s.data = std::move(micro);
  result.sections.push_back(std::move(s));
  return result;
}

const RegisterExperiment reg{{
    .id = "cycle-loop",
    .artifact = "validation",
    .description = "Hot-path throughput ladder vs an asserted-identical "
                   "seed replica, plus select() micro-timing.",
    .schema = {ParamKind::kBudget, ParamKind::kTimeslice},
    .sort_key = 310,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
