// Extension (paper's "support more threads" motivation): 8-thread merging
// schemes built with the general scheme grammar, on doubled Table 2
// workloads. Compares pure CSMT, one-SMT-block mixes and the cost of
// each, showing the paper's trade-off extends past 4 threads.
#include "cost/scheme_cost.hpp"
#include "exp/runners/common.hpp"

namespace cvmt {
namespace {

Scheme mixed_8t(int smt_levels) {
  std::vector<MergeKind> levels(7, MergeKind::kCsmt);
  for (int i = 0; i < smt_levels; ++i)
    levels[static_cast<std::size_t>(i)] = MergeKind::kSmt;
  return Scheme::cascade(levels);
}

ExperimentResult run(const RunContext& ctx) {
  const ExperimentConfig& cfg = ctx.params.cfg;

  // The tree entry demonstrates the functional grammar: two 4-thread
  // halves, each 2SC3-style, joined by CSMT.
  const Scheme tree8 = Scheme::parse("C(CP(S(0,1),2,3),CP(S(4,5),6,7))");
  const std::vector<Scheme> all = {Scheme::parallel_csmt(8), mixed_8t(0),
                                   mixed_8t(1), mixed_8t(2), tree8};

  // One batch for the whole table: scheme si, workload w at si*W+w, each
  // workload doubled to 8 software threads on 8 contexts.
  const auto& wls = table2_workloads();
  std::vector<BatchJob> jobs;
  jobs.reserve(all.size() * wls.size());
  for (const Scheme& s : all) {
    for (const Workload& w : wls) {
      BatchJob job = make_job(s, w, cfg.sim);
      job.benchmarks.insert(job.benchmarks.end(), w.benchmarks.begin(),
                            w.benchmarks.end());
      jobs.push_back(std::move(job));
    }
  }
  const std::vector<double> avg =
      group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());

  Dataset t({ColumnSpec::str("Scheme"), ColumnSpec::real("Avg IPC"),
             ColumnSpec::integer("Transistors", /*grouped=*/true),
             ColumnSpec::real("Gate delays", 1)});
  for (std::size_t si = 0; si < all.size(); ++si) {
    const SchemeCost c = scheme_cost(all[si], cfg.sim.machine);
    t.add_row({all[si].name(), avg[si], Cell{c.transistors},
               c.gate_delay});
  }
  return runners::one_section(
      "Ablation: 8-thread schemes (beyond the paper's 4)", std::move(t),
      "\nReading: one SMT level recovers most of the merging\n"
      "opportunity even at 8 threads, at a fraction of the cost\n"
      "of deeper SMT cascades (the paper's trade-off, extended).\n");
}

const RegisterExperiment reg{{
    .id = "8threads",
    .artifact = "extension",
    .description = "8-thread scheme grammar ablation with per-scheme "
                   "hardware cost.",
    .schema = runners::sim_schema(),
    .sort_key = 200,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
