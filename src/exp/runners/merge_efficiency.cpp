// Merge-efficiency diagnostics: for each scheme, how many threads issue
// per cycle and where the merge checks fail. This is the mechanism view
// behind Fig 10 — e.g. why 2SC3 recovers most of 3SSS: its single SMT
// block accepts nearly every pair, and the CSMT levels only have to catch
// the leftovers. Forces StatsLevel::kFull regardless of --stats: the
// whole point is reading per-block reject counters.
#include "exp/runners/common.hpp"
#include "sim/session.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

Dataset efficiency_table(const ExperimentConfig& cfg,
                         const std::vector<std::string>& schemes,
                         const Workload& wl, SimSession& session) {
  // Histogram buckets past a scheme's thread count do not exist; those
  // cells are null and render as "-".
  const auto bucket = [](const char* name) {
    ColumnSpec c = ColumnSpec::real(name, 1);
    c.null_text = "-";
    return c;
  };
  Dataset t({ColumnSpec::str("Scheme"), ColumnSpec::real("IPC"),
             ColumnSpec::real("avg issued"), bucket("0 thr %"),
             bucket("1 thr %"), bucket("2 thr %"), bucket("3 thr %"),
             bucket("4 thr %"), ColumnSpec::str("reject % per block")});
  const std::span<const std::string> benchmarks(wl.benchmarks.begin(),
                                                wl.benchmarks.end());
  for (const std::string& name : schemes) {
    const SimResult r =
        session.run(Scheme::parse(name), benchmarks, cfg.sim);
    std::vector<Cell> row{name, r.ipc, r.issued_per_cycle.mean()};
    for (std::size_t k = 0; k <= 4; ++k) {
      if (k < r.issued_per_cycle.num_buckets())
        row.emplace_back(100.0 * r.issued_per_cycle.fraction(k));
      else
        row.emplace_back(std::monostate{});
    }
    std::string rejects;
    for (const auto& n : r.merge_nodes) {
      if (!rejects.empty()) rejects += " ";
      rejects += n.label + ":" + format_fixed(100.0 * n.reject_rate(), 0);
    }
    row.emplace_back(std::move(rejects));
    t.add_row(std::move(row));
  }
  return t;
}

ExperimentResult run(const RunContext& ctx) {
  ExperimentConfig cfg = ctx.params.cfg;
  // This diagnostic reads per-block reject rates and the issued histogram,
  // so it needs full merge statistics regardless of the resolved level.
  cfg.sim.stats = StatsLevel::kFull;

  std::vector<std::string> workloads = ctx.params.workloads;
  if (workloads.empty()) workloads = {"LMHH"};

  // Programs and compiled schemes come from the shared artifact cache;
  // the session reuses one SimInstance per scheme across workloads.
  SimSession session;

  std::vector<std::string> schemes = ctx.params.schemes;
  if (schemes.empty())
    schemes = {"1S", "3CCC", "2CC", "2SC3", "2CS", "2SC", "3SSC", "3SSS"};

  ExperimentResult result;
  for (const std::string& workload_name : workloads) {
    ResultSection s;
    s.title = "Merge efficiency per scheme (workload " + workload_name + ")";
    s.data = efficiency_table(
        cfg, schemes, runners::workload_by_name(workload_name), session);
    result.sections.push_back(std::move(s));
  }
  result.sections.back().note =
      "\nReading: S blocks reject far less often than C blocks;\n"
      "one early S block (2SC3) lifts the issued-threads mass\n"
      "from 1-2 (3CCC) towards 2-3 without 3SSS's hardware.\n";
  return result;
}

const RegisterExperiment reg{{
    .id = "merge-efficiency",
    .artifact = "extension",
    .description = "Per-scheme issued-threads histogram and per-block "
                   "reject rates.",
    .schema = {ParamKind::kBudget, ParamKind::kTimeslice, ParamKind::kStats,
               ParamKind::kMachine, ParamKind::kSchemes,
               ParamKind::kWorkloads},
    .forces_full_stats = true,
    .sort_key = 260,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
