// Fig 10: IPC of every merging scheme on every Table 2 workload, plus the
// workload average, the paper's grouped legend view and the conclusion's
// headline relations. Honours --schemes/--workloads filters (the grouped
// and headline sections need the full paper sets and are skipped under a
// filter).
#include <sstream>

#include "exp/runners/common.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

/// The paper's legend groups, in its bottom-to-top order.
const std::vector<std::vector<std::string>>& legend_groups() {
  static const std::vector<std::vector<std::string>> kGroups = {
      {"1S"},
      {"3CCC", "C4"},
      {"2CC"},
      {"2CS"},
      {"2SC3", "2C3S", "3CCS", "3CSC", "3SCC"},
      {"3CSS", "3SSC", "3SCS"},
      {"2SC"},
      {"2SS"},
      {"3SSS"},
  };
  return kGroups;
}

ExperimentResult run(const RunContext& ctx) {
  const Fig10Result f =
      run_fig10(ctx.params.cfg, ctx.params.schemes, ctx.params.workloads);

  ExperimentResult result;
  {
    ResultSection s;
    s.title = "Figure 10: merging schemes performance (IPC)";
    s.data = render_fig10(f);
    result.sections.push_back(std::move(s));
  }
  if (!ctx.params.schemes.empty() || !ctx.params.workloads.empty() ||
      runners::partial_grid(ctx))
    return result;

  // Grouped view as in the paper's legend.
  Dataset grouped({ColumnSpec::str("Group"), ColumnSpec::real("Avg IPC")});
  for (const auto& group : legend_groups()) {
    double sum = 0.0;
    std::string label;
    for (const auto& s : group) {
      sum += f.average_of(s);
      label += (label.empty() ? "" : ",") + s;
    }
    grouped.add_row({std::move(label),
                     sum / static_cast<double>(group.size())});
  }
  {
    ResultSection s;
    s.title = "Grouped (paper legend)";
    s.data = std::move(grouped);
    result.sections.push_back(std::move(s));
  }

  const HeadlineRelations h = headline_relations(f);
  std::ostringstream prose;
  print_headlines(prose, h);
  ResultSection s;
  s.title = "Headline relations";
  s.data = render_headlines(h);
  s.note = prose.str();
  s.text_only = true;
  result.sections.push_back(std::move(s));
  return result;
}

const RegisterExperiment reg{{
    .id = "fig10",
    .artifact = "Figure 10",
    .description = "The full 16-scheme x 9-workload IPC grid with legend "
                   "groups and headline relations.",
    .schema = [] {
      auto s = runners::sim_schema();
      s.push_back(ParamKind::kSchemes);
      s.push_back(ParamKind::kWorkloads);
      return s;
    }(),
    .sort_key = 70,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
