// Machine-shape ablation: the paper fixes a 4-cluster x 4-issue machine;
// this sweeps the (clusters, issue-width) grid at a constant-ish total
// width and shows how the scheme trade-off shifts. More clusters favour
// CSMT (finer-grained cluster allocation); wider clusters favour SMT
// (more room to pack operations).
#include "exp/runners/common.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

ExperimentResult run(const RunContext& ctx) {
  const ExperimentConfig& cfg = ctx.params.cfg;

  const std::pair<int, int> shapes[] = {
      {2, 8}, {4, 4}, {8, 2},  // constant 16-wide
      {4, 2}, {2, 4},          // 8-wide points
  };
  const char* schemes[] = {"1S", "3CCC", "2SC3", "3SSS"};

  Dataset t({ColumnSpec::str("Machine"),
             ColumnSpec::integer("Total width"), ColumnSpec::real("1S"),
             ColumnSpec::real("3CCC"), ColumnSpec::real("2SC3"),
             ColumnSpec::real("3SSS"),
             ColumnSpec::real("2SC3 vs 3CCC", 1, "%")});
  for (const auto& [clusters, width] : shapes) {
    const MachineConfig machine = MachineConfig::clustered(clusters, width);
    SimConfig sim = cfg.sim;
    sim.machine = machine;

    // One batch per machine shape: every scheme on every workload.
    const auto& wls = table2_workloads();
    std::vector<BatchJob> jobs;
    jobs.reserve(std::size(schemes) * wls.size());
    for (const char* s : schemes)
      for (const Workload& w : wls)
        jobs.push_back(make_job(Scheme::parse(s), w, sim));
    const std::vector<double> avg =
        group_averages(run_batch_ipc(jobs, cfg.batch), wls.size());

    std::vector<Cell> row{
        std::to_string(clusters) + "x" + std::to_string(width),
        Cell{static_cast<std::int64_t>(machine.total_issue_width())}};
    double csmt = 0.0, mixed = 0.0;
    for (std::size_t si = 0; si < std::size(schemes); ++si) {
      if (std::string(schemes[si]) == "3CCC") csmt = avg[si];
      if (std::string(schemes[si]) == "2SC3") mixed = avg[si];
      row.emplace_back(avg[si]);
    }
    row.emplace_back(percent_diff(mixed, csmt));
    t.add_row(std::move(row));
  }
  return runners::one_section(
      "Ablation: machine shape (clusters x issue width)", std::move(t),
      "\nNote: on machines narrower than 16 issue slots the\n"
      "high-ILP profiles cannot reach their Table 1 IPCp, so\n"
      "compare schemes within a row, not across rows.\n");
}

const RegisterExperiment reg{{
    .id = "machine-shapes",
    .artifact = "extension",
    .description = "Scheme trade-off across (clusters x issue-width) "
                   "machine shapes.",
    .schema = {ParamKind::kBudget, ParamKind::kTimeslice,
               ParamKind::kWorkers, ParamKind::kLanes, ParamKind::kStats},
    .sort_key = 230,
    .run = run,
}};

}  // namespace
}  // namespace cvmt
