#include "exp/experiments.hpp"

#include <algorithm>

#include "exp/params.hpp"
#include "support/check.hpp"

namespace cvmt {

ExperimentConfig ExperimentConfig::from_env() {
  // One resolution path for env and CLI: this is ExperimentParams'
  // environment-only layer (exp/params.cpp), which also owns the
  // CVMT_STATS validation and the kFast default for sweeps.
  return ExperimentParams::from_env().cfg;
}

std::vector<Table1Row> run_table1(const ExperimentConfig& cfg) {
  const auto& profiles = table1_profiles();
  const Scheme single = Scheme::single_thread();

  SimConfig real = cfg.sim;
  SimConfig perfect = cfg.sim;
  perfect.mem.perfect = true;

  // Jobs 2i / 2i+1: benchmark i with real / perfect memory.
  std::vector<BatchJob> jobs;
  jobs.reserve(profiles.size() * 2);
  for (const BenchmarkProfile& p : profiles) {
    jobs.push_back({single, {p.name}, real});
    jobs.push_back({single, {p.name}, perfect});
  }
  const std::vector<double> ipc = run_batch_ipc(jobs, cfg.batch);

  std::vector<Table1Row> rows(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const BenchmarkProfile& p = profiles[i];
    Table1Row& row = rows[i];
    row.name = p.name;
    row.ilp = to_char(p.ilp);
    row.paper_ipc_real = p.target_ipc_real;
    row.paper_ipc_perfect = p.target_ipc_perfect;
    row.sim_ipc_real = ipc[2 * i];
    row.sim_ipc_perfect = ipc[2 * i + 1];
  }
  return rows;
}

std::vector<Fig4Row> run_fig4(const ExperimentConfig& cfg) {
  const auto& workloads = table2_workloads();

  const Scheme configs[] = {Scheme::single_thread(), Scheme::parse("1S"),
                            Scheme::parse("3SSS")};
  const char* names[] = {"Single-thread", "2-Thread", "4-Thread"};

  // Job c*W+w: processor config c on workload w.
  std::vector<BatchJob> jobs;
  jobs.reserve(3 * workloads.size());
  for (const Scheme& config : configs)
    for (const Workload& w : workloads)
      jobs.push_back(make_job(config, w, cfg.sim));
  const std::vector<double> avg =
      group_averages(run_batch_ipc(jobs, cfg.batch), workloads.size());

  std::vector<Fig4Row> rows;
  for (std::size_t c = 0; c < 3; ++c) rows.push_back({names[c], avg[c]});
  return rows;
}

std::vector<Fig5Row> run_fig5(const MachineConfig& machine, int min_threads,
                              int max_threads) {
  CVMT_CHECK(min_threads >= 2 && max_threads >= min_threads);
  std::vector<Fig5Row> rows;
  for (int n = min_threads; n <= max_threads; ++n) {
    Fig5Row row;
    row.threads = n;
    row.csmt_serial = csmt_serial_control(n, machine);
    row.csmt_parallel = csmt_parallel_control(n, machine);
    row.smt = smt_serial_control(n, machine);
    rows.push_back(row);
  }
  return rows;
}

namespace {

/// The Table 2 rows selected by `filter` (empty = all), in Table 2 order.
std::vector<Workload> filtered_workloads(
    const std::vector<std::string>& filter) {
  std::vector<Workload> out;
  for (const Workload& w : table2_workloads()) {
    bool keep = filter.empty();
    for (const std::string& name : filter) keep = keep || w.ilp_combo == name;
    if (keep) out.push_back(w);
  }
  CVMT_CHECK_MSG(!out.empty(), "workload filter selected nothing");
  return out;
}

}  // namespace

std::vector<Fig6Row> run_fig6(const ExperimentConfig& cfg,
                              const std::vector<std::string>& filter) {
  const std::vector<Workload> workloads = filtered_workloads(filter);
  const Scheme smt = Scheme::parse("3SSS");
  const Scheme csmt = Scheme::parse("3CCC");

  // Jobs 2w / 2w+1: workload w under SMT / CSMT.
  std::vector<BatchJob> jobs;
  jobs.reserve(workloads.size() * 2);
  for (const Workload& w : workloads) {
    jobs.push_back(make_job(smt, w, cfg.sim));
    jobs.push_back(make_job(csmt, w, cfg.sim));
  }
  const std::vector<double> ipc = run_batch_ipc(jobs, cfg.batch);

  std::vector<Fig6Row> rows(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    Fig6Row& row = rows[w];
    row.workload = workloads[w].ilp_combo;
    row.smt_ipc = ipc[2 * w];
    row.csmt_ipc = ipc[2 * w + 1];
    row.advantage_pct = percent_diff(row.smt_ipc, row.csmt_ipc);
  }
  return rows;
}

std::vector<Fig9Row> run_fig9(const MachineConfig& machine) {
  std::vector<Fig9Row> rows;
  for (const Scheme& s : Scheme::paper_schemes_4t()) {
    const SchemeCost c = scheme_cost(s, machine);
    rows.push_back({s.name(), c.gate_delay, c.transistors});
  }
  return rows;
}

double Fig10Result::ipc_of(std::string_view scheme,
                           std::string_view workload) const {
  for (std::size_t w = 0; w < workloads.size(); ++w)
    if (workloads[w] == workload)
      for (std::size_t s = 0; s < schemes.size(); ++s)
        if (schemes[s] == scheme) return ipc[w][s];
  CVMT_CHECK_MSG(false, "unknown scheme/workload pair");
  __builtin_unreachable();
}

double Fig10Result::average_of(std::string_view scheme) const {
  for (std::size_t s = 0; s < schemes.size(); ++s)
    if (schemes[s] == scheme) return average[s];
  CVMT_CHECK_MSG(false, "unknown scheme: " + std::string(scheme));
  __builtin_unreachable();
}

Fig10Result run_fig10(const ExperimentConfig& cfg) {
  return run_fig10(cfg, {}, {});
}

Fig10Result run_fig10(const ExperimentConfig& cfg,
                      const std::vector<std::string>& scheme_filter,
                      const std::vector<std::string>& workload_filter) {
  const std::vector<Workload> workloads =
      filtered_workloads(workload_filter);
  std::vector<Scheme> schemes;
  if (scheme_filter.empty()) {
    schemes = Scheme::paper_schemes_4t();
  } else {
    for (const std::string& name : scheme_filter)
      schemes.push_back(Scheme::parse(name));
  }

  Fig10Result r;
  for (const Scheme& s : schemes) r.schemes.push_back(s.name());
  for (const Workload& w : workloads) r.workloads.push_back(w.ilp_combo);
  r.ipc.assign(workloads.size(),
               std::vector<double>(schemes.size(), 0.0));

  // Flatten the (workload, scheme) grid: job w*S+s is workload w under
  // scheme s.
  std::vector<BatchJob> jobs;
  jobs.reserve(workloads.size() * schemes.size());
  for (const Workload& w : workloads)
    for (const Scheme& s : schemes) jobs.push_back(make_job(s, w, cfg.sim));
  const std::vector<double> ipc = run_batch_ipc(jobs, cfg.batch);

  for (std::size_t w = 0; w < workloads.size(); ++w)
    for (std::size_t s = 0; s < schemes.size(); ++s)
      r.ipc[w][s] = ipc[w * schemes.size() + s];

  r.average.assign(schemes.size(), 0.0);
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    double sum = 0.0;
    for (std::size_t w = 0; w < workloads.size(); ++w) sum += r.ipc[w][s];
    r.average[s] = sum / static_cast<double>(workloads.size());
  }
  return r;
}

std::vector<ParetoPoint> pareto_points(const Fig10Result& fig10,
                                       const MachineConfig& machine) {
  std::vector<ParetoPoint> points;
  for (std::size_t s = 0; s < fig10.schemes.size(); ++s) {
    const Scheme scheme = Scheme::parse(fig10.schemes[s]);
    const SchemeCost c = scheme_cost(scheme, machine);
    points.push_back(
        {fig10.schemes[s], fig10.average[s], c.transistors, c.gate_delay});
  }
  return points;
}

HeadlineRelations headline_relations(const Fig10Result& f) {
  HeadlineRelations h;
  const double sc3 = f.average_of("2SC3");
  const double csmt = f.average_of("3CCC");
  const double smt2 = f.average_of("1S");
  const double smt4 = f.average_of("3SSS");
  h.sc3_vs_csmt_pct = percent_diff(sc3, csmt);
  h.sc3_vs_1s_pct = percent_diff(sc3, smt2);
  h.sc3_vs_smt4_pct = percent_diff(sc3, smt4);
  h.smt4_vs_1s_pct = percent_diff(smt4, smt2);
  return h;
}

}  // namespace cvmt
