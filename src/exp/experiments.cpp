#include "exp/experiments.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace cvmt {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// Runs one Table 2 workload under `scheme` and returns total IPC.
double workload_ipc(const Scheme& scheme, const Workload& wl,
                    ProgramLibrary& lib, const SimConfig& sim) {
  return run_workload(scheme, wl, lib, sim).ipc;
}

}  // namespace

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig cfg;
  if (env_u64("CVMT_FAST", 0) != 0) {
    cfg.sim.instruction_budget = 60'000;
    cfg.sim.timeslice_cycles = 10'000;
  }
  cfg.sim.instruction_budget =
      env_u64("CVMT_BUDGET", cfg.sim.instruction_budget);
  cfg.sim.timeslice_cycles =
      env_u64("CVMT_TIMESLICE", cfg.sim.timeslice_cycles);
  return cfg;
}

std::vector<Table1Row> run_table1(const ExperimentConfig& cfg) {
  ProgramLibrary lib(cfg.sim.machine);
  lib.build_all();
  const auto& profiles = table1_profiles();
  std::vector<Table1Row> rows(profiles.size());

#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const BenchmarkProfile& p = profiles[i];
    const auto program = lib.lookup(p.name);
    const Scheme single = Scheme::single_thread();

    SimConfig real = cfg.sim;
    SimConfig perfect = cfg.sim;
    perfect.mem.perfect = true;

    Table1Row row;
    row.name = p.name;
    row.ilp = to_char(p.ilp);
    row.paper_ipc_real = p.target_ipc_real;
    row.paper_ipc_perfect = p.target_ipc_perfect;
    row.sim_ipc_real = run_simulation(single, {program}, real).ipc;
    row.sim_ipc_perfect = run_simulation(single, {program}, perfect).ipc;
    rows[i] = std::move(row);
  }
  return rows;
}

std::vector<Fig4Row> run_fig4(const ExperimentConfig& cfg) {
  ProgramLibrary lib(cfg.sim.machine);
  lib.build_all();
  const auto& workloads = table2_workloads();

  const Scheme configs[] = {Scheme::single_thread(), Scheme::parse("1S"),
                            Scheme::parse("3SSS")};
  const char* names[] = {"Single-thread", "2-Thread", "4-Thread"};

  std::vector<Fig4Row> rows;
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0;
    std::vector<double> ipcs(workloads.size(), 0.0);
#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (std::size_t w = 0; w < workloads.size(); ++w)
      ipcs[w] = workload_ipc(configs[c], workloads[w], lib, cfg.sim);
    for (double v : ipcs) sum += v;
    rows.push_back({names[c], sum / static_cast<double>(workloads.size())});
  }
  return rows;
}

std::vector<Fig5Row> run_fig5(const MachineConfig& machine, int min_threads,
                              int max_threads) {
  CVMT_CHECK(min_threads >= 2 && max_threads >= min_threads);
  std::vector<Fig5Row> rows;
  for (int n = min_threads; n <= max_threads; ++n) {
    Fig5Row row;
    row.threads = n;
    row.csmt_serial = csmt_serial_control(n, machine);
    row.csmt_parallel = csmt_parallel_control(n, machine);
    row.smt = smt_serial_control(n, machine);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig6Row> run_fig6(const ExperimentConfig& cfg) {
  ProgramLibrary lib(cfg.sim.machine);
  lib.build_all();
  const auto& workloads = table2_workloads();
  const Scheme smt = Scheme::parse("3SSS");
  const Scheme csmt = Scheme::parse("3CCC");

  std::vector<Fig6Row> rows(workloads.size());
#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    Fig6Row row;
    row.workload = workloads[w].ilp_combo;
    row.smt_ipc = workload_ipc(smt, workloads[w], lib, cfg.sim);
    row.csmt_ipc = workload_ipc(csmt, workloads[w], lib, cfg.sim);
    row.advantage_pct = percent_diff(row.smt_ipc, row.csmt_ipc);
    rows[w] = std::move(row);
  }
  return rows;
}

std::vector<Fig9Row> run_fig9(const MachineConfig& machine) {
  std::vector<Fig9Row> rows;
  for (const Scheme& s : Scheme::paper_schemes_4t()) {
    const SchemeCost c = scheme_cost(s, machine);
    rows.push_back({s.name(), c.gate_delay, c.transistors});
  }
  return rows;
}

double Fig10Result::ipc_of(std::string_view scheme,
                           std::string_view workload) const {
  for (std::size_t w = 0; w < workloads.size(); ++w)
    if (workloads[w] == workload)
      for (std::size_t s = 0; s < schemes.size(); ++s)
        if (schemes[s] == scheme) return ipc[w][s];
  CVMT_CHECK_MSG(false, "unknown scheme/workload pair");
  __builtin_unreachable();
}

double Fig10Result::average_of(std::string_view scheme) const {
  for (std::size_t s = 0; s < schemes.size(); ++s)
    if (schemes[s] == scheme) return average[s];
  CVMT_CHECK_MSG(false, "unknown scheme: " + std::string(scheme));
  __builtin_unreachable();
}

Fig10Result run_fig10(const ExperimentConfig& cfg) {
  ProgramLibrary lib(cfg.sim.machine);
  lib.build_all();
  const auto& workloads = table2_workloads();
  const std::vector<Scheme> schemes = Scheme::paper_schemes_4t();

  Fig10Result r;
  for (const Scheme& s : schemes) r.schemes.push_back(s.name());
  for (const Workload& w : workloads) r.workloads.push_back(w.ilp_combo);
  r.ipc.assign(workloads.size(),
               std::vector<double>(schemes.size(), 0.0));

  // Flatten the (workload, scheme) grid for the parallel sweep.
  const std::size_t total = workloads.size() * schemes.size();
#ifdef CVMT_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t k = 0; k < total; ++k) {
    const std::size_t w = k / schemes.size();
    const std::size_t s = k % schemes.size();
    r.ipc[w][s] = workload_ipc(schemes[s], workloads[w], lib, cfg.sim);
  }

  r.average.assign(schemes.size(), 0.0);
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    double sum = 0.0;
    for (std::size_t w = 0; w < workloads.size(); ++w) sum += r.ipc[w][s];
    r.average[s] = sum / static_cast<double>(workloads.size());
  }
  return r;
}

std::vector<ParetoPoint> pareto_points(const Fig10Result& fig10,
                                       const MachineConfig& machine) {
  std::vector<ParetoPoint> points;
  for (std::size_t s = 0; s < fig10.schemes.size(); ++s) {
    const Scheme scheme = Scheme::parse(fig10.schemes[s]);
    const SchemeCost c = scheme_cost(scheme, machine);
    points.push_back(
        {fig10.schemes[s], fig10.average[s], c.transistors, c.gate_delay});
  }
  return points;
}

HeadlineRelations headline_relations(const Fig10Result& f) {
  HeadlineRelations h;
  const double sc3 = f.average_of("2SC3");
  const double csmt = f.average_of("3CCC");
  const double smt2 = f.average_of("1S");
  const double smt4 = f.average_of("3SSS");
  h.sc3_vs_csmt_pct = percent_diff(sc3, csmt);
  h.sc3_vs_1s_pct = percent_diff(sc3, smt2);
  h.sc3_vs_smt4_pct = percent_diff(sc3, smt4);
  h.smt4_vs_1s_pct = percent_diff(smt4, smt2);
  return h;
}

}  // namespace cvmt
