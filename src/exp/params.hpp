// The declared parameter schema of the experiment registry: which knobs an
// experiment consumes, and the resolution of those knobs from CLI flags
// layered over CVMT_* environment defaults.
//
// Resolution order (documented contract, driver and bench shims alike):
//   1. SimConfig built-in defaults (400k budget, 50k timeslice, vex4x4)
//   2. fast scale (--fast flag or CVMT_FAST=1): kFastBudget/kFastTimeslice
//   3. CVMT_BUDGET / CVMT_TIMESLICE environment values
//   4. --budget / --timeslice CLI flags
// Workers, stats and machine shape resolve flag > env > default.
//
// Stats level is an explicit field here, not an implicit split: the
// library's SimConfig defaults to StatsLevel::kFull (a bare run_simulation
// call gets full diagnostics), while the experiment layer resolves to
// kFast because the paper sweeps are pure-IPC. Experiments that read
// merge-node counters declare `forces_full_stats` and override the
// resolved level; `cvmt list` surfaces that. Unrecognized CVMT_STATS
// values warn on stderr and fall back to fast; unrecognized --stats
// values are a hard CLI error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiments.hpp"
#include "support/args.hpp"
#include "support/json.hpp"

namespace cvmt {

/// One knob of an experiment's declared parameter schema.
enum class ParamKind : std::uint8_t {
  kBudget,     ///< --budget/--fast over CVMT_BUDGET/CVMT_FAST
  kTimeslice,  ///< --timeslice over CVMT_TIMESLICE
  kWorkers,    ///< --workers over CVMT_WORKERS (execution detail; never
               ///< part of machine-readable output)
  kLanes,      ///< --lanes over CVMT_BATCH_LANES (execution detail like
               ///< kWorkers: lockstep batch lanes, bit-identical results)
  kStats,      ///< --stats over CVMT_STATS (full|fast)
  kSchemes,    ///< --schemes=A,B,... filter
  kWorkloads,  ///< --workloads=A,B,... filter
  kMachine,    ///< --machine over CVMT_MACHINE, or --clusters/--issue over
               ///< CVMT_CLUSTERS/CVMT_ISSUE
};

[[nodiscard]] const char* to_string(ParamKind k);

/// Fully resolved parameters handed to an experiment runner.
struct ExperimentParams {
  ExperimentConfig cfg;  ///< sim + batch knobs (see resolution order above)
  bool fast = false;     ///< fast scale requested (--fast or CVMT_FAST)
  /// Scheme filter (paper names or functional syntax); empty = the
  /// experiment's default set. Validated by resolve() via Scheme::parse.
  std::vector<std::string> schemes;
  /// Workload filter (Table 2 ILP combos); empty = all nine.
  std::vector<std::string> workloads;
  /// The resolved --machine/CVMT_MACHINE spec (built-in name or file
  /// path); empty when the machine came from defaults or --clusters/
  /// --issue. Machine-readable output echoes it only when set, keeping
  /// default runs byte-identical.
  std::string machine_spec;
  /// The --store/CVMT_STORE directory of a sharded/resumable sweep;
  /// empty = no store. Only the driver acts on it (it opens the
  /// SweepStore and plants it in cfg.batch.store); for every other
  /// consumer the field is inert.
  std::string store_dir;
  /// The parsed --shard/CVMT_SHARD spec; 0/1 (the whole grid) unless a
  /// store run asked for a partition. Validated eagerly by resolve().
  unsigned shard_index = 0;
  unsigned shard_count = 1;

  /// Declares the standard experiment flags on `parser` (all of them;
  /// whether an experiment consumes a knob is the schema's concern).
  static void add_standard_flags(ArgParser& parser);

  /// Resolves flags over environment over defaults. Throws CheckError on
  /// an invalid scheme/workload filter value (caller prints the message).
  [[nodiscard]] static ExperimentParams resolve(const ArgParser& parser);

  /// Environment-only resolution (the ExperimentConfig::from_env
  /// equivalent, plus filters from CVMT_SCHEMES/CVMT_WORKLOADS).
  [[nodiscard]] static ExperimentParams from_env();

  /// The store manifest describing this parameter set for `experiment`
  /// sharded `shard_count` ways: everything a later resume or merge needs
  /// to reconstruct the exact sweep (fast scale, budgets, stats level,
  /// filters, machine shape). Workers and lanes are excluded — execution
  /// details, bit-identical results for any value.
  [[nodiscard]] JsonValue to_manifest_json(std::string_view experiment,
                                           unsigned shard_count) const;

  /// Inverse of to_manifest_json: rebuilds the resolved parameter set a
  /// manifest describes (`cvmt merge` runs the experiment under these,
  /// reproducing the unsharded output bytes). Returns the experiment id
  /// through `experiment_out`.
  [[nodiscard]] static ExperimentParams from_manifest_json(
      const JsonValue& manifest, std::string* experiment_out);
};

}  // namespace cvmt
