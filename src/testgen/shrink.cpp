#include "testgen/shrink.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"

namespace cvmt {
namespace {

/// Remaps the leaf ports of a pruned tree onto dense 0..N-1, preserving
/// their relative (priority) order.
void renumber_ports(Scheme::Node& node,
                    const std::map<int, int>& remap) {
  if (node.is_leaf()) {
    node.port = remap.at(node.port);
    return;
  }
  for (Scheme::Node& child : node.children) renumber_ports(child, remap);
}

void collect_ports(const Scheme::Node& node, std::vector<int>& ports) {
  if (node.is_leaf()) {
    ports.push_back(node.port);
    return;
  }
  for (const Scheme::Node& child : node.children)
    collect_ports(child, ports);
}

/// All one-step structural reductions of a scheme subtree: replace a block
/// by one of its children (dropping the siblings' threads), or drop one
/// input of a >= 3-input block. Returned trees still carry the original
/// (now sparse) port numbers; the caller renumbers.
std::vector<Scheme::Node> tree_mutations(const Scheme::Node& node) {
  std::vector<Scheme::Node> out;
  if (node.is_leaf()) return out;
  for (const Scheme::Node& child : node.children) out.push_back(child);
  if (node.children.size() >= 3) {
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      Scheme::Node m = node;
      m.children.erase(m.children.begin() +
                       static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(m));
    }
  }
  for (std::size_t j = 0; j < node.children.size(); ++j) {
    for (Scheme::Node& m : tree_mutations(node.children[j])) {
      Scheme::Node copy = node;
      copy.children[j] = std::move(m);
      out.push_back(std::move(copy));
    }
  }
  return out;
}

/// Candidate cases, most aggressive first. Every candidate is
/// well-formed by construction (mutated schemes are re-validated).
std::vector<FuzzCase> candidates(const FuzzCase& c) {
  std::vector<FuzzCase> out;

  // 1. Structural scheme reductions (drop whole subtrees / threads).
  // A case can fail its oracle with an unparseable scheme (construction
  // error); such a case simply has no scheme mutations to offer.
  try {
    const Scheme scheme = c.parse_scheme();
    for (Scheme::Node& m : tree_mutations(scheme.root())) {
      std::vector<int> ports;
      collect_ports(m, ports);
      std::vector<int> sorted = ports;
      std::sort(sorted.begin(), sorted.end());
      std::map<int, int> remap;
      for (std::size_t i = 0; i < sorted.size(); ++i)
        remap[sorted[i]] = static_cast<int>(i);
      renumber_ports(m, remap);
      if (!Scheme::validate(m).empty()) continue;
      FuzzCase cand = c;
      cand.scheme = Scheme::canonical(m);
      out.push_back(std::move(cand));
    }
  } catch (const CheckError&) {
  }

  // 2. Drop one software thread.
  if (c.profiles.size() >= 2) {
    for (std::size_t i = 0; i < c.profiles.size(); ++i) {
      FuzzCase cand = c;
      cand.profiles.erase(cand.profiles.begin() +
                          static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(cand));
    }
  }

  // 3. Shorter traces: smaller budget, shorter timeslice, simpler
  // programs.
  if (c.sim.instruction_budget > 100) {
    FuzzCase cand = c;
    cand.sim.instruction_budget =
        std::max<std::uint64_t>(100, c.sim.instruction_budget / 2);
    out.push_back(std::move(cand));
  }
  if (c.sim.timeslice_cycles > 32) {
    FuzzCase cand = c;
    cand.sim.timeslice_cycles =
        std::max<std::uint64_t>(32, c.sim.timeslice_cycles / 2);
    out.push_back(std::move(cand));
  }
  for (std::size_t i = 0; i < c.profiles.size(); ++i) {
    const BenchmarkProfile& p = c.profiles[i];
    if (p.num_loops > 1) {
      FuzzCase cand = c;
      cand.profiles[i].num_loops = 1;
      out.push_back(std::move(cand));
    }
    if (p.mean_trip_count > 4.0) {
      FuzzCase cand = c;
      cand.profiles[i].mean_trip_count = p.mean_trip_count / 2.0;
      out.push_back(std::move(cand));
    }
    if (p.mean_body_instrs > 4.0) {
      FuzzCase cand = c;
      cand.profiles[i].mean_body_instrs = 4.0;
      out.push_back(std::move(cand));
    }
    if (p.mem_op_frac > 0.0 || p.mul_op_frac > 0.0 ||
        p.mid_branch_frac > 0.0) {
      FuzzCase cand = c;
      cand.profiles[i].mem_op_frac = 0.0;
      cand.profiles[i].mul_op_frac = 0.0;
      cand.profiles[i].mid_branch_frac = 0.0;
      out.push_back(std::move(cand));
    }
  }

  // 4. Simpler machine and memory.
  if (c.sim.machine.heterogeneous) {
    FuzzCase cand = c;
    const int width =
        std::min(c.sim.machine.max_issue_per_cluster(),
                 kMaxTotalOps / c.sim.machine.num_clusters);
    cand.sim.machine =
        MachineConfig::clustered(c.sim.machine.num_clusters, width);
    out.push_back(std::move(cand));
  }
  if (c.sim.machine.num_clusters > 1) {
    FuzzCase cand = c;
    cand.sim.machine =
        MachineConfig::clustered(1, c.sim.machine.issue_per_cluster);
    out.push_back(std::move(cand));
  }
  if (c.sim.machine.issue_per_cluster > 2) {
    FuzzCase cand = c;
    cand.sim.machine =
        MachineConfig::clustered(c.sim.machine.num_clusters, 2);
    out.push_back(std::move(cand));
  }
  if (c.sim.mem.has_l2) {
    FuzzCase cand = c;
    cand.sim.mem.has_l2 = false;
    out.push_back(std::move(cand));
  }
  if (c.sim.mem.dcache_banks > 1) {
    FuzzCase cand = c;
    cand.sim.mem.dcache_banks = 1;
    out.push_back(std::move(cand));
  }
  if (!c.sim.mem.perfect) {
    FuzzCase cand = c;
    cand.sim.mem.perfect = true;
    out.push_back(std::move(cand));
  }

  // 5. Default policies.
  if (c.sim.switch_policy != SwitchPolicyKind::kRandomTimeslice) {
    FuzzCase cand = c;
    cand.sim.switch_policy = SwitchPolicyKind::kRandomTimeslice;
    out.push_back(std::move(cand));
  }
  if (c.sim.priority != PriorityPolicy::kRoundRobin) {
    FuzzCase cand = c;
    cand.sim.priority = PriorityPolicy::kRoundRobin;
    out.push_back(std::move(cand));
  }
  if (c.sim.miss_policy != MissPolicy::kSerialized) {
    FuzzCase cand = c;
    cand.sim.miss_policy = MissPolicy::kSerialized;
    out.push_back(std::move(cand));
  }
  return out;
}

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing,
                         const std::function<bool(const FuzzCase&)>& fails,
                         const ShrinkOptions& options) {
  ShrinkResult r;
  r.minimized = failing;
  ++r.attempts;
  if (!fails(r.minimized)) return r;  // not reproducible: nothing to do

  bool progress = true;
  while (progress && r.attempts < options.max_attempts) {
    progress = false;
    for (FuzzCase& cand : candidates(r.minimized)) {
      if (r.attempts >= options.max_attempts) break;
      ++r.attempts;
      if (fails(cand)) {
        r.minimized = std::move(cand);
        ++r.accepted;
        progress = true;
        break;  // greedy: restart enumeration from the smaller case
      }
    }
  }
  if (r.accepted > 0 &&
      r.minimized.label.find("+shrunk") == std::string::npos)
    r.minimized.label += "+shrunk";
  return r;
}

}  // namespace cvmt
