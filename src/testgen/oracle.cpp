#include "testgen/oracle.hpp"

#include <sstream>

#include "sim/batch_engine.hpp"
#include "sim/session.hpp"
#include "support/check.hpp"

namespace cvmt {
namespace {

/// Formats one counter mismatch ("what[i]: a != b").
template <typename T>
std::string diff(const std::string& what, const T& a, const T& b) {
  std::ostringstream os;
  os << what << ": " << a << " != " << b;
  return os.str();
}

/// The case's programs, through `artifacts` when provided (profile-content
/// keyed, so repeated builds of an unchanged profile are cache hits).
std::vector<std::shared_ptr<const SyntheticProgram>> case_programs(
    const FuzzCase& c, ArtifactCache* artifacts) {
  if (artifacts == nullptr) return c.build_programs();
  CVMT_CHECK_MSG(!c.profiles.empty(), "fuzz case has no software threads");
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  programs.reserve(c.profiles.size());
  for (const BenchmarkProfile& p : c.profiles)
    programs.push_back(artifacts->program(p, c.sim.machine));
  return programs;
}

}  // namespace

std::string compare_sim_results(const SimResult& a, const SimResult& b,
                                bool compare_merge_stats) {
  if (a.scheme != b.scheme) return diff("scheme", a.scheme, b.scheme);
  if (a.cycles != b.cycles) return diff("cycles", a.cycles, b.cycles);
  if (a.total_ops != b.total_ops)
    return diff("total_ops", a.total_ops, b.total_ops);
  if (a.total_instructions != b.total_instructions)
    return diff("total_instructions", a.total_instructions,
                b.total_instructions);
  if (a.idle_cycles != b.idle_cycles)
    return diff("idle_cycles", a.idle_cycles, b.idle_cycles);
  if (a.ipc != b.ipc) return diff("ipc", a.ipc, b.ipc);
  if (a.threads.size() != b.threads.size())
    return diff("threads.size", a.threads.size(), b.threads.size());
  for (std::size_t t = 0; t < a.threads.size(); ++t) {
    const ThreadResult& ta = a.threads[t];
    const ThreadResult& tb = b.threads[t];
    const std::string at = "threads[" + std::to_string(t) + "].";
    if (ta.benchmark != tb.benchmark)
      return diff(at + "benchmark", ta.benchmark, tb.benchmark);
    if (ta.instructions != tb.instructions)
      return diff(at + "instructions", ta.instructions, tb.instructions);
    if (ta.ops != tb.ops) return diff(at + "ops", ta.ops, tb.ops);
    if (ta.stats.instructions != tb.stats.instructions)
      return diff(at + "stats.instructions", ta.stats.instructions,
                  tb.stats.instructions);
    if (ta.stats.bubbles != tb.stats.bubbles)
      return diff(at + "stats.bubbles", ta.stats.bubbles, tb.stats.bubbles);
    if (ta.stats.ops != tb.stats.ops)
      return diff(at + "stats.ops", ta.stats.ops, tb.stats.ops);
    if (ta.stats.taken_branches != tb.stats.taken_branches)
      return diff(at + "stats.taken_branches", ta.stats.taken_branches,
                  tb.stats.taken_branches);
    if (ta.stats.dcache_stall_cycles != tb.stats.dcache_stall_cycles)
      return diff(at + "stats.dcache_stall_cycles",
                  ta.stats.dcache_stall_cycles,
                  tb.stats.dcache_stall_cycles);
    if (ta.stats.icache_stall_cycles != tb.stats.icache_stall_cycles)
      return diff(at + "stats.icache_stall_cycles",
                  ta.stats.icache_stall_cycles,
                  tb.stats.icache_stall_cycles);
    if (ta.stats.branch_stall_cycles != tb.stats.branch_stall_cycles)
      return diff(at + "stats.branch_stall_cycles",
                  ta.stats.branch_stall_cycles,
                  tb.stats.branch_stall_cycles);
    if (ta.stats.bank_conflict_cycles != tb.stats.bank_conflict_cycles)
      return diff(at + "stats.bank_conflict_cycles",
                  ta.stats.bank_conflict_cycles,
                  tb.stats.bank_conflict_cycles);
  }
  if (a.icache.hits != b.icache.hits)
    return diff("icache.hits", a.icache.hits, b.icache.hits);
  if (a.icache.total != b.icache.total)
    return diff("icache.total", a.icache.total, b.icache.total);
  if (a.dcache.hits != b.dcache.hits)
    return diff("dcache.hits", a.dcache.hits, b.dcache.hits);
  if (a.dcache.total != b.dcache.total)
    return diff("dcache.total", a.dcache.total, b.dcache.total);
  if (a.l2.hits != b.l2.hits) return diff("l2.hits", a.l2.hits, b.l2.hits);
  if (a.l2.total != b.l2.total)
    return diff("l2.total", a.l2.total, b.l2.total);
  if (a.os.context_switches != b.os.context_switches)
    return diff("os.context_switches", a.os.context_switches,
                b.os.context_switches);
  if (a.os.timeslices != b.os.timeslices)
    return diff("os.timeslices", a.os.timeslices, b.os.timeslices);
  if (!compare_merge_stats) return {};

  if (a.issued_per_cycle.num_buckets() != b.issued_per_cycle.num_buckets())
    return diff("issued_per_cycle.num_buckets",
                a.issued_per_cycle.num_buckets(),
                b.issued_per_cycle.num_buckets());
  for (std::size_t k = 0; k < a.issued_per_cycle.num_buckets(); ++k)
    if (a.issued_per_cycle.bucket(k) != b.issued_per_cycle.bucket(k))
      return diff("issued_per_cycle[" + std::to_string(k) + "]",
                  a.issued_per_cycle.bucket(k), b.issued_per_cycle.bucket(k));
  if (a.merge_nodes.size() != b.merge_nodes.size())
    return diff("merge_nodes.size", a.merge_nodes.size(),
                b.merge_nodes.size());
  for (std::size_t i = 0; i < a.merge_nodes.size(); ++i) {
    const std::string at = "merge_nodes[" + std::to_string(i) + "].";
    if (a.merge_nodes[i].label != b.merge_nodes[i].label)
      return diff(at + "label", a.merge_nodes[i].label,
                  b.merge_nodes[i].label);
    if (a.merge_nodes[i].attempts != b.merge_nodes[i].attempts)
      return diff(at + "attempts", a.merge_nodes[i].attempts,
                  b.merge_nodes[i].attempts);
    if (a.merge_nodes[i].rejects != b.merge_nodes[i].rejects)
      return diff(at + "rejects", a.merge_nodes[i].rejects,
                  b.merge_nodes[i].rejects);
  }
  return {};
}

std::string OracleReport::to_string() const {
  if (ok) return "ok";
  if (!construction_error.empty())
    return "construction failed: " + construction_error;
  return failed_oracle + ": " + mismatch;
}

namespace {

OracleReport run_oracles_impl(const FuzzCase& c, ArtifactCache* artifacts) {
  OracleReport report;
  try {
    const Scheme scheme = c.parse_scheme();
    const std::vector<std::shared_ptr<const SyntheticProgram>> programs =
        case_programs(c, artifacts);

    const std::shared_ptr<const CompiledScheme> compiled =
        artifacts != nullptr
            ? artifacts->scheme(scheme, c.sim.machine)
            : std::make_shared<const CompiledScheme>(scheme, c.sim.machine);

    SimConfig baseline_cfg = c.sim;
    baseline_cfg.stats = StatsLevel::kFull;
    baseline_cfg.eval_mode = EvalMode::kPlan;
    baseline_cfg.stall_fast_forward = true;

    // All sweep configurations share one SimInstance: the scheme is
    // compiled once and the run state is reset in place between
    // configurations. This exercises the session layer's reuse contract
    // (mixed stats levels and eval modes on one instance) on every fuzz
    // case; the replay oracle below closes the loop against the
    // fresh-construction facade.
    SimInstance instance(compiled, baseline_cfg);
    const SimResult baseline = instance.run(programs);
    ++report.simulations;

    // Shared bookkeeping of every oracle: count the simulation, compare
    // against the baseline, record the first failure.
    const auto record = [&](const char* name, const SimResult& result,
                            bool compare_merge_stats) {
      ++report.simulations;
      const std::string mismatch =
          compare_sim_results(baseline, result, compare_merge_stats);
      if (!mismatch.empty() && report.ok) {
        report.ok = false;
        report.failed_oracle = name;
        report.mismatch = mismatch;
      }
    };
    const auto check = [&](const char* name, const SimConfig& cfg,
                           bool compare_merge_stats) -> SimResult {
      instance.set_config(cfg);
      SimResult result = instance.run(programs);
      record(name, result, compare_merge_stats);
      return result;
    };

    // Oracle 1: the recursive tree-reference evaluator, cycle-stepped.
    SimConfig tree_cfg = baseline_cfg;
    tree_cfg.eval_mode = EvalMode::kTreeReference;
    tree_cfg.stall_fast_forward = false;
    check("baseline-vs-tree", tree_cfg, /*compare_merge_stats=*/true);
    if (!report.ok) return report;

    // Oracle 2: the plan evaluator with fast-forward disabled.
    SimConfig stepped_cfg = baseline_cfg;
    stepped_cfg.stall_fast_forward = false;
    check("baseline-vs-stepped", stepped_cfg, /*compare_merge_stats=*/true);
    if (!report.ok) return report;

    // Oracle 3: fast stats agree on every shared field and verifiably
    // skip the merge counters.
    SimConfig fast_cfg = baseline_cfg;
    fast_cfg.stats = StatsLevel::kFast;
    const SimResult fast = check("baseline-vs-faststats", fast_cfg,
                                 /*compare_merge_stats=*/false);
    if (!report.ok) return report;
    if (fast.issued_per_cycle.total() != 0) {
      report.ok = false;
      report.failed_oracle = "faststats-zeroing";
      report.mismatch =
          "issued_per_cycle histogram moved under StatsLevel::kFast";
      return report;
    }
    for (const MergeNodeStats& node : fast.merge_nodes) {
      if (node.attempts != 0 || node.rejects != 0) {
        report.ok = false;
        report.failed_oracle = "faststats-zeroing";
        report.mismatch =
            "merge counter moved under StatsLevel::kFast (" + node.label +
            ")";
        return report;
      }
      if (node.label.empty()) {
        report.ok = false;
        report.failed_oracle = "faststats-zeroing";
        report.mismatch = "merge-node label lost under StatsLevel::kFast";
        return report;
      }
    }

    // Oracle 4: a fresh identical run reproduces bit-identically. This
    // one deliberately bypasses the shared instance and goes through the
    // one-shot run_simulation facade, so it checks determinism AND that
    // instance reuse (oracles 1-3 reset the same instance) never diverges
    // from fresh construction.
    record("baseline-vs-replay",
           run_simulation(scheme, programs, baseline_cfg),
           /*compare_merge_stats=*/true);
    if (!report.ok) return report;

    // Oracle 5: the shape-specialized plan interpreter. Uniform chains
    // take the fixed-thread-count fast path here; every other shape
    // falls back to the generic interpreter, so this row is a no-op
    // exactly when the specialization is.
    SimConfig spec_cfg = baseline_cfg;
    spec_cfg.eval_mode = EvalMode::kPlanSpecialized;
    check("baseline-vs-specialized", spec_cfg, /*compare_merge_stats=*/true);
    if (!report.ok) return report;

    // Oracle 6: the batch engine's specialized window kernels. A one-lane
    // SimBatch with kernels forced on runs the baseline configuration
    // (kFull — exercises the fused/structural kernels when the case is
    // eligible, the generic window loop when not) and the fast-stats
    // configuration; each must match the corresponding SimInstance run
    // bit-for-bit. On kernel-ineligible cases this degenerates to a
    // batch-vs-session identity check, so the row is never vacuous.
    SimBatch kbatch(1);
    kbatch.set_kernels_enabled(true);
    for (const SimConfig* cfg : {&baseline_cfg, &fast_cfg}) {
      BatchRunSpec spec;
      spec.scheme = compiled;
      spec.programs = programs;
      spec.config = *cfg;
      kbatch.enqueue(std::move(spec));
    }
    const std::vector<SimResult> kernel_results = kbatch.run_all();
    record("baseline-vs-batch-kernels", kernel_results[0],
           /*compare_merge_stats=*/true);
    if (!report.ok) return report;
    ++report.simulations;
    const std::string kernel_fast_mismatch =
        compare_sim_results(fast, kernel_results[1],
                            /*compare_merge_stats=*/false);
    if (!kernel_fast_mismatch.empty()) {
      report.ok = false;
      report.failed_oracle = "faststats-vs-batch-kernels";
      report.mismatch = kernel_fast_mismatch;
    }
  } catch (const CheckError& e) {
    report.ok = false;
    report.construction_error = e.what();
  }
  return report;
}

/// The lanes>1 mode: the same six configurations, enqueued as six lanes
/// of one SimBatch, plus the two kernel-flipped runs of oracle 6. The
/// replay row is the baseline configuration enqueued a second time — two
/// lanes of one batch share nothing but immutable artifacts, so
/// lane-vs-lane identity doubles as the batch engine's determinism
/// oracle. Comparison order and rules match the sequential path; the
/// first six simulations always run (the batch has no early-out), so
/// `simulations` matches the sequential path's 8 on clean cases.
OracleReport run_oracles_batched(const FuzzCase& c, ArtifactCache* artifacts,
                                 unsigned lanes) {
  OracleReport report;
  try {
    const Scheme scheme = c.parse_scheme();
    const std::vector<std::shared_ptr<const SyntheticProgram>> programs =
        case_programs(c, artifacts);
    const std::shared_ptr<const CompiledScheme> compiled =
        artifacts != nullptr
            ? artifacts->scheme(scheme, c.sim.machine)
            : std::make_shared<const CompiledScheme>(scheme, c.sim.machine);

    SimConfig baseline_cfg = c.sim;
    baseline_cfg.stats = StatsLevel::kFull;
    baseline_cfg.eval_mode = EvalMode::kPlan;
    baseline_cfg.stall_fast_forward = true;
    SimConfig tree_cfg = baseline_cfg;
    tree_cfg.eval_mode = EvalMode::kTreeReference;
    tree_cfg.stall_fast_forward = false;
    SimConfig stepped_cfg = baseline_cfg;
    stepped_cfg.stall_fast_forward = false;
    SimConfig fast_cfg = baseline_cfg;
    fast_cfg.stats = StatsLevel::kFast;
    SimConfig spec_cfg = baseline_cfg;
    spec_cfg.eval_mode = EvalMode::kPlanSpecialized;

    const SimConfig* cfgs[] = {&baseline_cfg, &tree_cfg, &stepped_cfg,
                               &fast_cfg, &baseline_cfg, &spec_cfg};
    SimBatch batch(static_cast<int>(lanes));
    for (const SimConfig* cfg : cfgs) {
      BatchRunSpec spec;
      spec.scheme = compiled;
      spec.programs = programs;
      spec.config = *cfg;
      batch.enqueue(std::move(spec));
    }
    const std::vector<SimResult> results = batch.run_all();
    report.simulations = static_cast<int>(results.size());

    const SimResult& baseline = results[0];
    const auto check = [&](const char* name, const SimResult& result,
                           bool compare_merge_stats) {
      const std::string mismatch =
          compare_sim_results(baseline, result, compare_merge_stats);
      if (!mismatch.empty() && report.ok) {
        report.ok = false;
        report.failed_oracle = name;
        report.mismatch = mismatch;
      }
      return report.ok;
    };
    if (!check("baseline-vs-tree", results[1], true)) return report;
    if (!check("baseline-vs-stepped", results[2], true)) return report;
    if (!check("baseline-vs-faststats", results[3], false)) return report;
    const SimResult& fast = results[3];
    if (fast.issued_per_cycle.total() != 0) {
      report.ok = false;
      report.failed_oracle = "faststats-zeroing";
      report.mismatch =
          "issued_per_cycle histogram moved under StatsLevel::kFast";
      return report;
    }
    for (const MergeNodeStats& node : fast.merge_nodes) {
      if (node.attempts != 0 || node.rejects != 0) {
        report.ok = false;
        report.failed_oracle = "faststats-zeroing";
        report.mismatch =
            "merge counter moved under StatsLevel::kFast (" + node.label +
            ")";
        return report;
      }
      if (node.label.empty()) {
        report.ok = false;
        report.failed_oracle = "faststats-zeroing";
        report.mismatch = "merge-node label lost under StatsLevel::kFast";
        return report;
      }
    }
    if (!check("baseline-vs-replay", results[4], true)) return report;
    if (!check("baseline-vs-specialized", results[5], true)) return report;

    // Oracle 6: a second batch with the window kernels forced to the
    // OPPOSITE of the ambient batch's setting reruns the baseline and
    // fast-stats configurations — whichever way CVMT_BATCH_KERNELS points,
    // the fuzz sweep always compares a kernels-on run against a
    // kernels-off run of the same case. Two extra simulations, matching
    // the sequential path's count so fuzz summaries agree across --lanes.
    SimBatch flipped(static_cast<int>(lanes));
    flipped.set_kernels_enabled(!batch.kernels_enabled());
    for (const SimConfig* cfg : {&baseline_cfg, &fast_cfg}) {
      BatchRunSpec spec;
      spec.scheme = compiled;
      spec.programs = programs;
      spec.config = *cfg;
      flipped.enqueue(std::move(spec));
    }
    const std::vector<SimResult> kernel_results = flipped.run_all();
    report.simulations += static_cast<int>(kernel_results.size());
    if (!check("baseline-vs-batch-kernels", kernel_results[0], true))
      return report;
    const std::string kernel_fast_mismatch = compare_sim_results(
        results[3], kernel_results[1], /*compare_merge_stats=*/false);
    if (!kernel_fast_mismatch.empty() && report.ok) {
      report.ok = false;
      report.failed_oracle = "faststats-vs-batch-kernels";
      report.mismatch = kernel_fast_mismatch;
    }
  } catch (const CheckError& e) {
    report.ok = false;
    report.construction_error = e.what();
  }
  return report;
}

}  // namespace

OracleReport run_oracles(const FuzzCase& c) {
  return run_oracles_impl(c, nullptr);
}

OracleReport run_oracles(const FuzzCase& c, ArtifactCache& artifacts) {
  return run_oracles_impl(c, &artifacts);
}

OracleReport run_oracles(const FuzzCase& c, ArtifactCache* artifacts,
                         unsigned lanes) {
  if (lanes <= 1) return run_oracles_impl(c, artifacts);
  return run_oracles_batched(c, artifacts, lanes);
}

}  // namespace cvmt
