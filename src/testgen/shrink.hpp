// Greedy minimization of a failing FuzzCase. The shrinker proposes
// smaller candidates (drop software threads, prune scheme subtrees and
// renumber the thread ids densely, shorten budgets/timeslices/traces,
// simplify policies toward defaults) and keeps any candidate on which
// `fails` still returns true, iterating to a fixpoint under an attempt
// budget. The failure predicate is injected — production passes
// "the oracle fails", the tests pass synthetic predicates — so shrinking
// logic is testable without planting real simulator bugs.
#pragma once

#include <cstdint>
#include <functional>

#include "testgen/fuzz_case.hpp"

namespace cvmt {

struct ShrinkOptions {
  /// Upper bound on predicate evaluations (each costs one oracle run in
  /// production, i.e. five small simulations).
  int max_attempts = 400;
};

struct ShrinkResult {
  FuzzCase minimized;
  int attempts = 0;   ///< predicate evaluations spent
  int accepted = 0;   ///< candidates that still failed (shrink steps taken)
};

/// Minimizes `failing` under `fails`. Precondition: fails(failing) is
/// true (checked; returns the input unchanged otherwise). The result
/// still fails, and no further candidate from one whole pass fails.
[[nodiscard]] ShrinkResult shrink_case(
    const FuzzCase& failing,
    const std::function<bool(const FuzzCase&)>& fails,
    const ShrinkOptions& options = {});

}  // namespace cvmt
