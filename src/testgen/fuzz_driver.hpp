// The `cvmt fuzz` sweep: replay a corpus, generate N seeded cases, run
// the differential oracles over every case (fanned across a worker pool;
// outcomes land in per-case slots so the sweep is bit-identical for any
// worker count), optionally shrink failures to minimal repros and persist
// them as JSON corpus files.
//
// run_fuzz_sweep is the testable core (tests/fuzz_test.cpp and the
// registered "fuzz" experiment call it directly); fuzz_main is the CLI
// entry the cvmt driver dispatches `cvmt fuzz` to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/dataset.hpp"
#include "testgen/oracle.hpp"
#include "testgen/shrink.hpp"

namespace cvmt {

struct FuzzOptions {
  std::uint64_t cases = 200;  ///< generated cases (corpus replays extra)
  std::uint64_t seed = 1;     ///< sweep seed; case i uses the i-th
                              ///< SplitMix64 draw of this seed
  unsigned workers = 0;       ///< 0 = all hardware cores
  unsigned lanes = 1;         ///< lockstep batch lanes per oracle run
                              ///< (CVMT_BATCH_LANES; 1 = sequential)
  bool shrink = false;        ///< minimize failures before reporting
  std::string corpus_dir;     ///< replayed before generation when set
  std::string save_dir;       ///< failing (shrunk) repros land here
  bool save_all = false;      ///< persist every case (corpus seeding)
};

struct FuzzOutcome {
  FuzzCase c;
  OracleReport report;
  bool from_corpus = false;
  /// Valid when the case failed and shrinking ran; minimized_report is
  /// the minimized case's own oracle outcome (computed once, at shrink
  /// time).
  bool shrunk = false;
  FuzzCase minimized;
  OracleReport minimized_report;
  int shrink_attempts = 0;
};

struct FuzzSweepResult {
  std::vector<FuzzOutcome> outcomes;  ///< corpus replays first, then seeds
  std::size_t corpus_cases = 0;
  std::size_t failures = 0;

  /// Sweep totals as a Dataset (deterministic; worker-count invariant).
  [[nodiscard]] Dataset summary() const;
  /// One row per failure: label, failed oracle, mismatch, case summary.
  [[nodiscard]] Dataset failure_table() const;
};

[[nodiscard]] FuzzSweepResult run_fuzz_sweep(const FuzzOptions& options);

/// `cvmt fuzz [--cases=N] [--seed=S] [--shrink] [--workers=N] [--lanes=N]
///            [--corpus=DIR] [--save=DIR] [--save-all] [--case=FILE]`.
/// Exit 0 when every oracle passed, 1 on failures, 2 on usage errors.
[[nodiscard]] int fuzz_main(int argc, const char* const* argv);

}  // namespace cvmt
