// Seeded property-based generators for the differential fuzzer: random
// well-formed merge-scheme trees, random synthetic-benchmark profiles and
// random machine/memory/OS shapes. Every generator derives its stream from
// a single SplitMix64-seeded state, so one u64 seed fully reproduces a
// case — the corpus stores shrunk cases as JSON precisely because shrunk
// cases are the only ones not reachable from a seed.
//
// Ranges are chosen to stay inside the simulator's validated envelope
// (profile fractions in [0,1], loop bodies within the 4KB code region,
// machine shapes within kMaxTotalOps) so a generated case can only fail
// an oracle through a genuine simulator bug, never through a
// construction-time CheckError.
#pragma once

#include <cstdint>

#include "core/scheme.hpp"
#include "support/rng.hpp"
#include "testgen/fuzz_case.hpp"

namespace cvmt {

/// Random well-formed merge-scheme trees over 1..kMaxThreads threads:
/// arbitrary nestings of SMT / serial CSMT / parallel CSMT / select blocks,
/// plus the paper's pure shapes (cascades, C<n>, IMT<n>) at a fixed ratio
/// so the classic structures stay in every sweep.
class SchemeGen {
 public:
  explicit SchemeGen(std::uint64_t seed);

  /// A scheme over a random thread count (weighted toward the paper's
  /// 2..8, tail up to kMaxThreads).
  [[nodiscard]] Scheme next();
  /// A scheme over exactly `num_threads` threads.
  [[nodiscard]] Scheme next(int num_threads);

 private:
  Scheme::Node random_tree(std::vector<int> ports);

  Xoshiro256 rng_;
};

/// Random BenchmarkProfiles within the simulator's safe knob envelope.
class WorkloadGen {
 public:
  explicit WorkloadGen(std::uint64_t seed);

  /// One random profile; `name` is the display/thread name.
  [[nodiscard]] BenchmarkProfile next(const std::string& name);

 private:
  Xoshiro256 rng_;
};

/// Random machine + memory + OS shapes (clusters x issue within
/// kMaxTotalOps, power-of-two cache geometries, timeslice policies).
class MachineGen {
 public:
  explicit MachineGen(std::uint64_t seed);

  [[nodiscard]] MachineConfig next_machine();
  [[nodiscard]] MemorySystemConfig next_memory();

 private:
  Xoshiro256 rng_;
};

/// Composes the three generators into one reproducible case per u64 seed.
/// Distinct sub-seeds are derived via SplitMix64 so the scheme, workload
/// and machine streams stay decorrelated.
[[nodiscard]] FuzzCase generate_case(std::uint64_t seed);

}  // namespace cvmt
