#include "testgen/fuzz_case.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace cvmt {
namespace {

JsonValue profile_to_json(const BenchmarkProfile& p) {
  JsonValue o = JsonValue::object();
  o.set("name", p.name);
  o.set("ilp", std::string(1, to_char(p.ilp)));
  o.set("target_ipc_real", p.target_ipc_real);
  o.set("target_ipc_perfect", p.target_ipc_perfect);
  o.set("num_loops", p.num_loops);
  o.set("mean_body_instrs", p.mean_body_instrs);
  o.set("mean_trip_count", p.mean_trip_count);
  o.set("mean_ops_per_instr", p.mean_ops_per_instr);
  o.set("mem_op_frac", p.mem_op_frac);
  o.set("store_frac", p.store_frac);
  o.set("mul_op_frac", p.mul_op_frac);
  o.set("mid_branch_frac", p.mid_branch_frac);
  o.set("mid_branch_taken", p.mid_branch_taken);
  o.set("ops_per_cluster_target", p.ops_per_cluster_target);
  o.set("hot_bytes", p.hot_bytes);
  o.set("hot_stride", p.hot_stride);
  o.set("assumed_miss_penalty", p.assumed_miss_penalty);
  o.set("code_bytes_per_instr", p.code_bytes_per_instr);
  o.set("seed", p.seed);
  return o;
}

BenchmarkProfile profile_from_json(const JsonValue& o) {
  BenchmarkProfile p;
  p.name = o.get("name").as_string();
  const std::string ilp = o.get("ilp").as_string();
  CVMT_CHECK_MSG(ilp == "L" || ilp == "M" || ilp == "H",
                 "bad ilp letter in fuzz case: " + ilp);
  p.ilp = ilp == "L" ? IlpDegree::kLow
                     : (ilp == "M" ? IlpDegree::kMedium : IlpDegree::kHigh);
  p.target_ipc_real = o.get("target_ipc_real").as_double();
  p.target_ipc_perfect = o.get("target_ipc_perfect").as_double();
  p.num_loops = static_cast<int>(o.get("num_loops").as_int());
  p.mean_body_instrs = o.get("mean_body_instrs").as_double();
  p.mean_trip_count = o.get("mean_trip_count").as_double();
  p.mean_ops_per_instr = o.get("mean_ops_per_instr").as_double();
  p.mem_op_frac = o.get("mem_op_frac").as_double();
  p.store_frac = o.get("store_frac").as_double();
  p.mul_op_frac = o.get("mul_op_frac").as_double();
  p.mid_branch_frac = o.get("mid_branch_frac").as_double();
  p.mid_branch_taken = o.get("mid_branch_taken").as_double();
  p.ops_per_cluster_target = o.get("ops_per_cluster_target").as_double();
  p.hot_bytes = static_cast<std::uint64_t>(o.get("hot_bytes").as_int());
  p.hot_stride = static_cast<std::uint64_t>(o.get("hot_stride").as_int());
  p.assumed_miss_penalty =
      static_cast<int>(o.get("assumed_miss_penalty").as_int());
  p.code_bytes_per_instr =
      static_cast<std::uint64_t>(o.get("code_bytes_per_instr").as_int());
  p.seed = static_cast<std::uint64_t>(o.get("seed").as_int());
  return p;
}

JsonValue cache_to_json(const CacheConfig& c) {
  JsonValue o = JsonValue::object();
  o.set("size_bytes", c.size_bytes);
  o.set("line_bytes", static_cast<std::uint64_t>(c.line_bytes));
  o.set("ways", static_cast<std::uint64_t>(c.ways));
  o.set("miss_penalty", c.miss_penalty);
  return o;
}

CacheConfig cache_from_json(const JsonValue& o) {
  CacheConfig c;
  c.size_bytes = static_cast<std::uint64_t>(o.get("size_bytes").as_int());
  c.line_bytes = static_cast<std::uint32_t>(o.get("line_bytes").as_int());
  c.ways = static_cast<std::uint32_t>(o.get("ways").as_int());
  c.miss_penalty = static_cast<int>(o.get("miss_penalty").as_int());
  return c;
}

JsonValue machine_to_json(const MachineConfig& m) {
  JsonValue o = JsonValue::object();
  o.set("num_clusters", m.num_clusters);
  o.set("issue_per_cluster", m.issue_per_cluster);
  o.set("mul_slot_mask", static_cast<std::uint64_t>(m.mul_slot_mask));
  o.set("mem_slot_mask", static_cast<std::uint64_t>(m.mem_slot_mask));
  o.set("branch_slot_mask", static_cast<std::uint64_t>(m.branch_slot_mask));
  o.set("alu_latency", m.alu_latency);
  o.set("mul_latency", m.mul_latency);
  o.set("mem_latency", m.mem_latency);
  o.set("taken_branch_penalty", m.taken_branch_penalty);
  // Heterogeneous extension (fuzz-case JSON stays v1: the key is simply
  // absent for the classic homogeneous machines, so old corpora and old
  // readers keep working byte-for-byte).
  if (m.heterogeneous) {
    JsonValue rows = JsonValue::array();
    for (int c = 0; c < m.num_clusters; ++c) {
      const ClusterShape& s = m.per_cluster[static_cast<std::size_t>(c)];
      JsonValue row = JsonValue::object();
      row.set("issue", s.issue_width);
      row.set("mul", static_cast<std::uint64_t>(s.mul_slot_mask));
      row.set("mem", static_cast<std::uint64_t>(s.mem_slot_mask));
      row.set("branch", static_cast<std::uint64_t>(s.branch_slot_mask));
      rows.push_back(std::move(row));
    }
    o.set("clusters", std::move(rows));
  }
  return o;
}

MachineConfig machine_from_json(const JsonValue& o) {
  MachineConfig m;
  m.num_clusters = static_cast<int>(o.get("num_clusters").as_int());
  m.issue_per_cluster =
      static_cast<int>(o.get("issue_per_cluster").as_int());
  m.mul_slot_mask =
      static_cast<std::uint32_t>(o.get("mul_slot_mask").as_int());
  m.mem_slot_mask =
      static_cast<std::uint32_t>(o.get("mem_slot_mask").as_int());
  m.branch_slot_mask =
      static_cast<std::uint32_t>(o.get("branch_slot_mask").as_int());
  m.alu_latency = static_cast<int>(o.get("alu_latency").as_int());
  m.mul_latency = static_cast<int>(o.get("mul_latency").as_int());
  m.mem_latency = static_cast<int>(o.get("mem_latency").as_int());
  m.taken_branch_penalty =
      static_cast<int>(o.get("taken_branch_penalty").as_int());
  if (const JsonValue* rows = o.find("clusters")) {
    CVMT_CHECK_MSG(rows->size() == static_cast<std::size_t>(m.num_clusters),
                   "fuzz case: clusters array does not match num_clusters");
    m.heterogeneous = true;
    for (std::size_t c = 0; c < rows->size(); ++c) {
      const JsonValue& row = rows->at(c);
      ClusterShape& s = m.per_cluster[c];
      s.issue_width = static_cast<int>(row.get("issue").as_int());
      s.mul_slot_mask = static_cast<std::uint32_t>(row.get("mul").as_int());
      s.mem_slot_mask = static_cast<std::uint32_t>(row.get("mem").as_int());
      s.branch_slot_mask =
          static_cast<std::uint32_t>(row.get("branch").as_int());
    }
  }
  return m;
}

}  // namespace

Scheme FuzzCase::parse_scheme() const { return Scheme::parse(scheme); }

std::vector<std::shared_ptr<const SyntheticProgram>>
FuzzCase::build_programs() const {
  CVMT_CHECK_MSG(!profiles.empty(), "fuzz case has no software threads");
  std::vector<std::shared_ptr<const SyntheticProgram>> programs;
  programs.reserve(profiles.size());
  for (const BenchmarkProfile& p : profiles)
    programs.push_back(std::make_shared<SyntheticProgram>(p, sim.machine));
  return programs;
}

std::string FuzzCase::summary() const {
  std::ostringstream os;
  os << scheme << " | " << profiles.size() << " sw-thread"
     << (profiles.size() == 1 ? "" : "s") << " | machine "
     << sim.machine.num_clusters << "x" << sim.machine.issue_per_cluster
     << (sim.machine.heterogeneous ? " het" : "")
     << (sim.mem.has_l2 ? " +L2" : "")
     << (sim.mem.dcache_banks > 1 ? " banked" : "")
     << " | policy " << to_string(sim.switch_policy)
     << " | budget " << sim.instruction_budget << " | timeslice "
     << sim.timeslice_cycles << " | priority "
     << static_cast<int>(sim.priority) << " | miss "
     << static_cast<int>(sim.miss_policy) << " | "
     << (sim.mem.perfect ? "perfect-mem"
                         : (sim.mem.sharing == CacheSharing::kShared
                                ? "shared-cache"
                                : "private-cache"));
  return os.str();
}

JsonValue FuzzCase::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("version", 1);
  o.set("label", label);
  o.set("seed", seed);
  o.set("scheme", scheme);
  JsonValue profs = JsonValue::array();
  for (const BenchmarkProfile& p : profiles)
    profs.push_back(profile_to_json(p));
  o.set("profiles", std::move(profs));
  JsonValue s = JsonValue::object();
  s.set("machine", machine_to_json(sim.machine));
  JsonValue mem = JsonValue::object();
  mem.set("icache", cache_to_json(sim.mem.icache));
  mem.set("dcache", cache_to_json(sim.mem.dcache));
  mem.set("shared", sim.mem.sharing == CacheSharing::kShared);
  mem.set("perfect", sim.mem.perfect);
  // Hierarchy extensions: keys are emitted only when the feature is on,
  // so legacy cases serialize exactly as before.
  if (sim.mem.has_l2) mem.set("l2", cache_to_json(sim.mem.l2));
  if (sim.mem.dcache_banks != 1) {
    mem.set("dcache_banks", sim.mem.dcache_banks);
    mem.set("bank_conflict_penalty", sim.mem.bank_conflict_penalty);
  }
  s.set("mem", std::move(mem));
  s.set("priority", static_cast<int>(sim.priority));
  s.set("miss_policy", static_cast<int>(sim.miss_policy));
  s.set("timeslice_cycles", sim.timeslice_cycles);
  s.set("instruction_budget", sim.instruction_budget);
  s.set("max_cycles", sim.max_cycles);
  s.set("os_seed", sim.os_seed);
  s.set("stream_seed_base", sim.stream_seed_base);
  if (sim.switch_policy != SwitchPolicyKind::kRandomTimeslice)
    s.set("switch_policy", std::string(to_string(sim.switch_policy)));
  o.set("sim", std::move(s));
  return o;
}

FuzzCase FuzzCase::from_json(const JsonValue& v) {
  CVMT_CHECK_MSG(v.get("version").as_int() == 1,
                 "unknown fuzz-case version");
  FuzzCase c;
  c.label = v.get("label").as_string();
  c.seed = static_cast<std::uint64_t>(v.get("seed").as_int());
  c.scheme = v.get("scheme").as_string();
  const JsonValue& profs = v.get("profiles");
  for (std::size_t i = 0; i < profs.size(); ++i)
    c.profiles.push_back(profile_from_json(profs.at(i)));
  const JsonValue& s = v.get("sim");
  c.sim.machine = machine_from_json(s.get("machine"));
  const JsonValue& mem = s.get("mem");
  c.sim.mem.icache = cache_from_json(mem.get("icache"));
  c.sim.mem.dcache = cache_from_json(mem.get("dcache"));
  c.sim.mem.sharing = mem.get("shared").as_bool() ? CacheSharing::kShared
                                                  : CacheSharing::kPrivate;
  c.sim.mem.perfect = mem.get("perfect").as_bool();
  if (const JsonValue* l2 = mem.find("l2")) {
    c.sim.mem.has_l2 = true;
    c.sim.mem.l2 = cache_from_json(*l2);
  }
  if (const JsonValue* banks = mem.find("dcache_banks")) {
    c.sim.mem.dcache_banks = static_cast<int>(banks->as_int());
    c.sim.mem.bank_conflict_penalty =
        static_cast<int>(mem.get("bank_conflict_penalty").as_int());
  }
  const std::int64_t priority = s.get("priority").as_int();
  CVMT_CHECK_MSG(priority >= 0 && priority <= 2,
                 "bad priority policy in fuzz case");
  c.sim.priority = static_cast<PriorityPolicy>(priority);
  const std::int64_t miss = s.get("miss_policy").as_int();
  CVMT_CHECK_MSG(miss >= 0 && miss <= 1, "bad miss policy in fuzz case");
  c.sim.miss_policy = static_cast<MissPolicy>(miss);
  c.sim.timeslice_cycles =
      static_cast<std::uint64_t>(s.get("timeslice_cycles").as_int());
  c.sim.instruction_budget =
      static_cast<std::uint64_t>(s.get("instruction_budget").as_int());
  c.sim.max_cycles = static_cast<std::uint64_t>(s.get("max_cycles").as_int());
  c.sim.os_seed = static_cast<std::uint64_t>(s.get("os_seed").as_int());
  c.sim.stream_seed_base =
      static_cast<std::uint64_t>(s.get("stream_seed_base").as_int());
  if (const JsonValue* pol = s.find("switch_policy")) {
    CVMT_CHECK_MSG(
        switch_policy_from_string(pol->as_string(), c.sim.switch_policy),
        "bad switch policy in fuzz case: " + pol->as_string());
  }
  return c;
}

void save_case(const std::string& path, const FuzzCase& c) {
  std::ofstream out(path);
  CVMT_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  c.to_json().write(out);
  out << '\n';
  CVMT_CHECK_MSG(out.good(), "write failed: " + path);
}

FuzzCase load_case(const std::string& path) {
  std::ifstream in(path);
  CVMT_CHECK_MSG(in.good(), "cannot open fuzz case: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  FuzzCase c = FuzzCase::from_json(JsonValue::parse(text.str()));
  if (c.label.empty())
    c.label = std::filesystem::path(path).stem().string();
  return c;
}

std::vector<FuzzCase> load_corpus_dir(const std::string& dir) {
  std::vector<FuzzCase> cases;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return cases;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".json")
      paths.push_back(entry.path().string());
  std::sort(paths.begin(), paths.end());
  cases.reserve(paths.size());
  for (const std::string& p : paths) cases.push_back(load_case(p));
  return cases;
}

}  // namespace cvmt
