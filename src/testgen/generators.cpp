#include "testgen/generators.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "support/check.hpp"

namespace cvmt {
namespace {

/// Fisher-Yates shuffle driven by the generator's own stream (std::shuffle
/// is not reproducible across standard libraries).
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i)
    std::swap(v[i - 1], v[rng.next_below(i)]);
}

double uniform(Xoshiro256& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.next_double();
}

std::uint64_t uniform_u64(Xoshiro256& rng, std::uint64_t lo,
                          std::uint64_t hi) {
  return lo + rng.next_below(hi - lo + 1);
}

Scheme::Node leaf_node(int port) {
  Scheme::Node n;
  n.port = port;
  return n;
}

}  // namespace

// ------------------------------------------------------------- SchemeGen

SchemeGen::SchemeGen(std::uint64_t seed) : rng_(seed) {}

Scheme::Node SchemeGen::random_tree(std::vector<int> ports) {
  if (ports.size() == 1) return leaf_node(ports[0]);

  const auto size = ports.size();
  // Flat wide blocks (arity == size) stay common: they are the paper's
  // parallel-CSMT / IMT shapes and the cheapest to reason about.
  std::size_t arity;
  if (size == 2 || rng_.next_bool(0.35)) {
    arity = size;
  } else {
    arity = 2 + rng_.next_below(std::min<std::size_t>(size, 4) - 1);
  }

  // Partition the ports into `arity` non-empty consecutive groups of the
  // (already shuffled) list: choose arity-1 distinct cut points.
  std::vector<std::size_t> cuts;
  for (std::size_t i = 1; i < size; ++i) cuts.push_back(i);
  shuffle(cuts, rng_);
  cuts.resize(arity - 1);
  std::sort(cuts.begin(), cuts.end());
  cuts.push_back(size);

  Scheme::Node block;
  block.port = -1;
  const double kind_dice = rng_.next_double();
  block.kind = kind_dice < 0.40
                   ? MergeKind::kCsmt
                   : (kind_dice < 0.78 ? MergeKind::kSmt
                                       : MergeKind::kSelect);
  block.parallel =
      block.kind == MergeKind::kCsmt && arity >= 2 && rng_.next_bool(0.4);
  std::size_t begin = 0;
  for (const std::size_t end : cuts) {
    block.children.push_back(random_tree(
        std::vector<int>(ports.begin() + static_cast<std::ptrdiff_t>(begin),
                         ports.begin() + static_cast<std::ptrdiff_t>(end))));
    begin = end;
  }
  return block;
}

Scheme SchemeGen::next() {
  // Weighted thread count: the paper's 2..8 dominates, the 9..kMaxThreads
  // tail and the degenerate single thread stay represented.
  const std::uint64_t dice = rng_.next_below(100);
  int n;
  if (dice < 5) {
    n = 1;
  } else if (dice < 55) {
    n = static_cast<int>(uniform_u64(rng_, 2, 4));
  } else if (dice < 85) {
    n = static_cast<int>(uniform_u64(rng_, 5, 8));
  } else {
    n = static_cast<int>(
        uniform_u64(rng_, 9, static_cast<std::uint64_t>(kMaxThreads)));
  }
  return next(n);
}

Scheme SchemeGen::next(int num_threads) {
  CVMT_CHECK(num_threads >= 1 && num_threads <= kMaxThreads);
  if (num_threads == 1) return Scheme::single_thread();

  // One in five schemes is one of the paper's pure shapes.
  if (rng_.next_bool(0.2)) {
    switch (rng_.next_below(3)) {
      case 0: return Scheme::parallel_csmt(num_threads);
      case 1: return Scheme::imt(num_threads);
      default: {
        std::vector<MergeKind> levels;
        for (int i = 1; i < num_threads; ++i)
          levels.push_back(rng_.next_bool(0.5) ? MergeKind::kSmt
                                               : MergeKind::kCsmt);
        return Scheme::cascade(levels);
      }
    }
  }

  std::vector<int> ports;
  for (int p = 0; p < num_threads; ++p) ports.push_back(p);
  shuffle(ports, rng_);
  Scheme::Node root = random_tree(std::move(ports));
  const std::string err = Scheme::validate(root);
  CVMT_CHECK_MSG(err.empty(), "SchemeGen produced a malformed tree: " + err);
  std::string name = Scheme::canonical(root);
  return Scheme(std::move(name), std::move(root));
}

// ----------------------------------------------------------- WorkloadGen

WorkloadGen::WorkloadGen(std::uint64_t seed) : rng_(seed) {}

BenchmarkProfile WorkloadGen::next(const std::string& name) {
  BenchmarkProfile p;
  p.name = name;
  const std::uint64_t ilp = rng_.next_below(3);
  p.ilp = ilp == 0 ? IlpDegree::kLow
                   : (ilp == 1 ? IlpDegree::kMedium : IlpDegree::kHigh);

  p.num_loops = static_cast<int>(uniform_u64(rng_, 1, 6));
  p.mean_body_instrs = uniform(rng_, 3.0, 12.0);
  p.mean_trip_count = uniform(rng_, 2.0, 40.0);
  p.mean_ops_per_instr = uniform(rng_, 1.0, 3.2);
  p.mem_op_frac = uniform(rng_, 0.05, 0.45);
  p.store_frac = uniform(rng_, 0.0, 0.5);
  p.mul_op_frac = uniform(rng_, 0.0, 0.3);
  p.mid_branch_frac = uniform(rng_, 0.0, 0.2);
  p.mid_branch_taken = uniform(rng_, 0.0, 0.6);
  p.ops_per_cluster_target = uniform(rng_, 1.5, 4.0);
  p.hot_bytes = std::uint64_t{1} << uniform_u64(rng_, 8, 15);
  p.hot_stride = std::uint64_t{4} << uniform_u64(rng_, 0, 4);
  p.assumed_miss_penalty = static_cast<int>(uniform_u64(rng_, 5, 40));
  // 8 or 16 code bytes per instruction keeps the largest body (real
  // instructions + IPCp bubbles) inside the builder's 4KB code region.
  p.code_bytes_per_instr = rng_.next_bool(0.5) ? 8 : 16;
  // IPCp only inserts bubbles when low; >= 0.9 bounds the bubble count.
  p.target_ipc_perfect = uniform(rng_, 0.9, 3.5);
  p.target_ipc_real = p.target_ipc_perfect * uniform(rng_, 0.45, 1.0);
  p.seed = rng_.next();
  p.validate();
  return p;
}

// ------------------------------------------------------------ MachineGen

MachineGen::MachineGen(std::uint64_t seed) : rng_(seed) {}

MachineConfig MachineGen::next_machine() {
  const int clusters = static_cast<int>(
      uniform_u64(rng_, 1, static_cast<std::uint64_t>(kMaxClusters)));
  const int max_issue =
      std::min(kMaxIssuePerCluster, kMaxTotalOps / clusters);

  MachineConfig m;
  if (clusters >= 2 && rng_.next_bool(0.25)) {
    // Heterogeneous machine: every cluster draws its own width (standard
    // capability layout for that width), and some clusters lose their
    // multiplier entirely — the capability only has to exist somewhere.
    std::array<ClusterShape, kMaxClusters> shapes{};
    for (int c = 0; c < clusters; ++c) {
      const int w = static_cast<int>(
          uniform_u64(rng_, 1, static_cast<std::uint64_t>(max_issue)));
      const MachineConfig proto = MachineConfig::clustered(1, w);
      ClusterShape& s = shapes[static_cast<std::size_t>(c)];
      s.issue_width = w;
      s.mul_slot_mask = proto.mul_slot_mask;
      s.mem_slot_mask = proto.mem_slot_mask;
      s.branch_slot_mask = proto.branch_slot_mask;
      if (rng_.next_bool(0.2)) s.mul_slot_mask = 0;
    }
    bool any_mul = false;
    for (int c = 0; c < clusters; ++c)
      any_mul = any_mul || shapes[static_cast<std::size_t>(c)]
                                   .mul_slot_mask != 0;
    if (!any_mul)
      shapes[0].mul_slot_mask =
          MachineConfig::clustered(1, shapes[0].issue_width).mul_slot_mask;
    m = MachineConfig::heterogeneous_of(shapes.data(), clusters);
  } else {
    const int issue = static_cast<int>(
        uniform_u64(rng_, 1, static_cast<std::uint64_t>(max_issue)));
    m = MachineConfig::clustered(clusters, issue);
  }
  m.mul_latency = static_cast<int>(uniform_u64(rng_, 1, 3));
  m.mem_latency = static_cast<int>(uniform_u64(rng_, 1, 3));
  m.taken_branch_penalty = static_cast<int>(uniform_u64(rng_, 0, 3));
  m.validate();
  return m;
}

MemorySystemConfig MachineGen::next_memory() {
  const auto random_cache = [&](CacheConfig& c) {
    c.size_bytes = std::uint64_t{1} << uniform_u64(rng_, 12, 16);
    c.line_bytes = rng_.next_bool(0.5) ? 32 : 64;
    c.ways = std::uint32_t{1} << uniform_u64(rng_, 0, 2);
    c.miss_penalty = static_cast<int>(uniform_u64(rng_, 5, 40));
    c.validate();
  };
  MemorySystemConfig mem;
  random_cache(mem.icache);
  random_cache(mem.dcache);
  mem.sharing =
      rng_.next_bool(0.7) ? CacheSharing::kShared : CacheSharing::kPrivate;
  mem.perfect = rng_.next_bool(0.1);
  // New hierarchy axes: a unified L2 behind the L1s, and a banked DCache.
  // Both default off so the paper's flat machines stay the common case.
  if (rng_.next_bool(0.3)) {
    mem.has_l2 = true;
    mem.l2.size_bytes = std::uint64_t{1} << uniform_u64(rng_, 15, 18);
    mem.l2.line_bytes = mem.dcache.line_bytes;
    mem.l2.ways = std::uint32_t{1} << uniform_u64(rng_, 1, 3);
    mem.l2.miss_penalty = static_cast<int>(uniform_u64(rng_, 20, 120));
  }
  if (rng_.next_bool(0.5)) {
    mem.dcache_banks = 1 << uniform_u64(rng_, 1, 3);
    mem.bank_conflict_penalty = static_cast<int>(uniform_u64(rng_, 1, 4));
  }
  mem.validate();
  return mem;
}

// ---------------------------------------------------------- generate_case

FuzzCase generate_case(std::uint64_t seed) {
  SplitMix64 sm(seed);
  SchemeGen scheme_gen(sm.next());
  WorkloadGen workload_gen(sm.next());
  MachineGen machine_gen(sm.next());
  Xoshiro256 rng(sm.next());

  FuzzCase c;
  c.label = "seed-" + std::to_string(seed);
  c.seed = seed;

  const Scheme scheme = scheme_gen.next();
  c.scheme = scheme.canonical();
  c.sim.machine = machine_gen.next_machine();
  c.sim.mem = machine_gen.next_memory();

  // Software thread count: usually the hardware context count, sometimes
  // fewer (idle slots) or more (the OS timeslices the surplus).
  const int hw = scheme.num_threads();
  int sw = hw;
  const std::uint64_t dice = rng.next_below(10);
  if (dice < 2) {
    sw = static_cast<int>(
        uniform_u64(rng, 1, static_cast<std::uint64_t>(hw)));
  } else if (dice < 5) {
    sw = hw + static_cast<int>(uniform_u64(rng, 1, 4));
  }
  for (int t = 0; t < sw; ++t)
    c.profiles.push_back(workload_gen.next("fz" + std::to_string(t)));

  c.sim.priority = static_cast<PriorityPolicy>(rng.next_below(3));
  c.sim.miss_policy = static_cast<MissPolicy>(rng.next_below(2));
  c.sim.timeslice_cycles = uniform_u64(rng, 64, 1500);
  c.sim.instruction_budget = uniform_u64(rng, 300, 2500);
  // Generous but finite guard: a wedged case terminates (and fails its
  // oracle with comparable, deterministic counters) instead of hanging.
  c.sim.max_cycles = std::uint64_t{1} << 22;
  c.sim.os_seed = rng.next();
  c.sim.stream_seed_base = rng.next();
  c.sim.switch_policy = static_cast<SwitchPolicyKind>(rng.next_below(3));
  return c;
}

}  // namespace cvmt
