#include "testgen/fuzz_driver.hpp"

#include <algorithm>
#include <filesystem>
#include <future>
#include <iostream>

#include "sim/session.hpp"
#include "support/args.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"
#include "testgen/generators.hpp"

namespace cvmt {
namespace {

/// Shrinks `failing` against the oracles, with one ArtifactCache scoped
/// to the whole minimization: shrink candidates mutate the scheme and
/// run knobs far more often than the profiles, so most of the hundreds
/// of oracle evaluations reuse the already-built programs instead of
/// rebuilding them from scratch.
ShrinkResult shrink_against_oracles(const FuzzCase& failing,
                                    unsigned lanes) {
  ArtifactCache artifacts;
  return shrink_case(failing, [&artifacts, lanes](const FuzzCase& c) {
    return !run_oracles(c, &artifacts, lanes).ok;
  });
}

void shrink_failures(FuzzSweepResult& sweep, unsigned lanes) {
  for (FuzzOutcome& o : sweep.outcomes) {
    if (o.report.ok) continue;
    const ShrinkResult s = shrink_against_oracles(o.c, lanes);
    o.shrunk = true;
    o.minimized = s.minimized;
    o.minimized_report = run_oracles(o.minimized, nullptr, lanes);
    o.shrink_attempts = s.attempts;
  }
}

void save_outcomes(const FuzzSweepResult& sweep, const FuzzOptions& opt) {
  if (opt.save_dir.empty()) return;
  std::filesystem::create_directories(opt.save_dir);
  for (const FuzzOutcome& o : sweep.outcomes) {
    if (o.report.ok && !opt.save_all) continue;
    const FuzzCase& to_save = o.shrunk ? o.minimized : o.c;
    save_case(opt.save_dir + "/" + to_save.label + ".json", to_save);
  }
}

}  // namespace

Dataset FuzzSweepResult::summary() const {
  Dataset d({ColumnSpec::str("Metric"), ColumnSpec::integer("Value")});
  const auto generated =
      static_cast<std::int64_t>(outcomes.size() - corpus_cases);
  d.add_row({std::string("corpus cases"),
             static_cast<std::int64_t>(corpus_cases)});
  d.add_row({std::string("generated cases"), generated});
  std::int64_t simulations = 0;
  for (const FuzzOutcome& o : outcomes) {
    simulations += o.report.simulations;
    if (o.shrunk) simulations += o.minimized_report.simulations;
  }
  d.add_row({std::string("simulations run"), simulations});
  d.add_row({std::string("failures"),
             static_cast<std::int64_t>(failures)});
  return d;
}

Dataset FuzzSweepResult::failure_table() const {
  Dataset d({ColumnSpec::str("Case"), ColumnSpec::str("Oracle"),
             ColumnSpec::str("Mismatch"), ColumnSpec::str("Shape")});
  for (const FuzzOutcome& o : outcomes) {
    if (o.report.ok) continue;
    const FuzzCase& c = o.shrunk ? o.minimized : o.c;
    const OracleReport& report = o.shrunk ? o.minimized_report : o.report;
    d.add_row({c.label,
               report.construction_error.empty()
                   ? report.failed_oracle
                   : std::string("construction"),
               report.construction_error.empty()
                   ? report.mismatch
                   : report.construction_error,
               c.summary()});
  }
  return d;
}

FuzzSweepResult run_fuzz_sweep(const FuzzOptions& options) {
  FuzzSweepResult sweep;

  // Corpus replays first (sorted by filename), then generated cases in
  // seed order: a stable outcome order for any worker count.
  std::vector<FuzzCase> cases = load_corpus_dir(options.corpus_dir);
  sweep.corpus_cases = cases.size();
  SplitMix64 sm(options.seed);
  for (std::uint64_t i = 0; i < options.cases; ++i)
    cases.push_back(generate_case(sm.next()));

  sweep.outcomes.resize(cases.size());
  const unsigned workers = std::max<unsigned>(
      1, std::min<std::size_t>(options.workers == 0
                                   ? ThreadPool::hardware_workers()
                                   : options.workers,
                               cases.size()));
  const auto run_one = [&](std::size_t i) {
    FuzzOutcome& o = sweep.outcomes[i];
    o.c = std::move(cases[i]);
    o.from_corpus = i < sweep.corpus_cases;
    o.report = run_oracles(o.c, nullptr, options.lanes);
  };
  if (workers == 1) {
    for (std::size_t i = 0; i < cases.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(workers);
    std::vector<std::future<void>> pending;
    pending.reserve(cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i)
      pending.push_back(pool.submit([&run_one, i] { run_one(i); }));
    for (std::future<void>& f : pending) f.get();
  }
  for (const FuzzOutcome& o : sweep.outcomes)
    if (!o.report.ok) ++sweep.failures;

  if (options.shrink) shrink_failures(sweep, options.lanes);
  save_outcomes(sweep, options);
  return sweep;
}

int fuzz_main(int argc, const char* const* argv) {
  ArgParser parser(
      "cvmt fuzz",
      "Property-based differential fuzzing: generates random scheme/"
      "workload/machine cases from a seed, runs every case through the "
      "plan/tree, full/fast-stats, fast-forward/stepped, replay and "
      "specialized-interpreter "
      "configurations, and reports any SimResult counter mismatch. "
      "Failures shrink (--shrink) to minimal JSON repros; check them in "
      "under tests/corpus/ to pin the regression forever.");
  parser.add_u64("cases", "n", "Number of generated cases.",
                 "CVMT_FUZZ_CASES");
  parser.add_u64("seed", "s", "Sweep seed (case i uses draw i).",
                 "CVMT_FUZZ_SEED");
  parser.add_u64("workers", "n",
                 "Worker threads (0 = all hardware cores); outcomes are "
                 "bit-identical for any count.",
                 "CVMT_WORKERS");
  parser.add_u64("lanes", "n",
                 "Lockstep batch-simulation lanes per oracle run (power "
                 "of two; 1 = sequential); outcomes are bit-identical "
                 "for any count.",
                 "CVMT_BATCH_LANES");
  parser.add_flag("shrink", "Minimize failing cases before reporting.");
  parser.add_string("corpus", "dir",
                    "Replay every *.json case in this directory before "
                    "generating new ones.");
  parser.add_string("save", "dir",
                    "Write failing (shrunk, with --shrink) repro JSON "
                    "files here, e.g. tests/corpus.");
  parser.add_flag("save-all",
                  "With --save: persist every case, not just failures "
                  "(corpus seeding).");
  parser.add_string("case", "file",
                    "Replay one repro file instead of sweeping.");
  switch (parser.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }

  const std::uint64_t lanes = parser.get_u64("lanes", 1);
  if (lanes == 0 || lanes > 4096 || (lanes & (lanes - 1)) != 0) {
    std::cerr << "cvmt fuzz: --lanes/CVMT_BATCH_LANES must be a power of "
                 "two in [1, 4096], got "
              << lanes << '\n';
    return 2;
  }

  // Single-file replay: the repro loop a failure report points at.
  const std::string one_case = parser.get_string("case", "");
  if (!one_case.empty()) {
    FuzzCase c;
    try {
      c = load_case(one_case);
    } catch (const CheckError& e) {
      std::cerr << "cvmt fuzz: " << e.what() << '\n';
      return 2;
    }
    OracleReport report =
        run_oracles(c, nullptr, static_cast<unsigned>(lanes));
    std::cout << c.label << ": " << report.to_string() << '\n'
              << "  " << c.summary() << '\n';
    if (!report.ok && parser.get_flag("shrink")) {
      const ShrinkResult s =
          shrink_against_oracles(c, static_cast<unsigned>(lanes));
      std::cout << "shrunk (" << s.attempts << " attempts): "
                << s.minimized.summary() << '\n'
                << s.minimized.to_json().dump() << '\n';
    }
    return report.ok ? 0 : 1;
  }

  FuzzOptions options;
  options.cases = parser.get_u64("cases", options.cases);
  options.seed = parser.get_u64("seed", options.seed);
  options.workers =
      static_cast<unsigned>(parser.get_u64("workers", options.workers));
  options.lanes = static_cast<unsigned>(lanes);
  options.shrink = parser.get_flag("shrink");
  options.corpus_dir = parser.get_string("corpus", "");
  options.save_dir = parser.get_string("save", "");
  options.save_all = parser.get_flag("save-all");
  if (options.save_all && options.save_dir.empty()) {
    std::cerr << "cvmt fuzz: --save-all needs --save=<dir>\n";
    return 2;
  }

  FuzzSweepResult sweep;
  try {
    sweep = run_fuzz_sweep(options);
  } catch (const CheckError& e) {
    // Typically a malformed/hand-edited corpus file; name the cause
    // instead of std::terminate-ing the sweep.
    std::cerr << "cvmt fuzz: " << e.what() << '\n';
    return 2;
  }
  sweep.summary().to_table().print(std::cout);
  if (sweep.failures > 0) {
    std::cout << '\n';
    sweep.failure_table().to_table().print(std::cout);
    if (!options.save_dir.empty())
      std::cout << "\nrepro files written to " << options.save_dir
                << "/ — replay with `cvmt fuzz --case=<file>`\n";
    else
      std::cout << "\nre-run with --shrink --save=tests/corpus to write "
                   "minimal repro files\n";
  }
  return sweep.failures == 0 ? 0 : 1;
}

}  // namespace cvmt
