// Differential oracles over one FuzzCase: the same case is run through
// every hot-path configuration the repo claims is bit-identical —
//
//   baseline   plan evaluator + stall fast-forward + full stats
//   tree       recursive tree-reference evaluator, cycle-stepped
//   stepped    plan evaluator with the fast-forward disabled
//   faststats  StatsLevel::kFast (merge counters intentionally zeroed)
//   replay     the baseline re-run from scratch (determinism)
//   specialized  the shape-specialized plan interpreter (uniform-chain
//                fast paths; generic fallback elsewhere)
//
// and every SimResult counter must agree (faststats: every shared field
// agrees AND the merge counters are verifiably zeroed). This turns each
// future hot-path optimization into one more row here instead of a
// bespoke golden test.
#pragma once

#include <string>
#include <vector>

#include "testgen/fuzz_case.hpp"

namespace cvmt {

class ArtifactCache;

/// Outcome of one oracle run over one case.
struct OracleReport {
  bool ok = true;
  /// run_simulation invocations this oracle run actually performed (a
  /// failing run early-returns after the first mismatching oracle).
  int simulations = 0;
  /// Which configuration pair disagreed, e.g. "baseline-vs-tree".
  std::string failed_oracle;
  /// First mismatching counter, with both values, e.g.
  /// "cycles: 1200 != 1199".
  std::string mismatch;
  /// Set when the case could not even be constructed/run (CheckError from
  /// scheme parsing, program building or the simulator itself).
  std::string construction_error;

  [[nodiscard]] std::string to_string() const;
};

/// Field-by-field comparison of two results. Returns an empty string when
/// identical, otherwise "field: a != b" for the first difference.
/// `compare_merge_stats` false skips the histogram and merge-node counters
/// (the kFast contract zeroes them on purpose).
[[nodiscard]] std::string compare_sim_results(const SimResult& a,
                                              const SimResult& b,
                                              bool compare_merge_stats);

/// Runs every oracle over `c`. All simulation configurations share the
/// case's programs (built once — SyntheticProgram is immutable) and one
/// reusable SimInstance (compiled once, reset between configurations);
/// the replay oracle re-runs through the one-shot run_simulation facade,
/// so instance reuse itself is cross-checked on every case. A run costs
/// six small simulations.
[[nodiscard]] OracleReport run_oracles(const FuzzCase& c);

/// run_oracles with the case's programs materialized through `artifacts`
/// (keyed by full profile content + machine). The shrinker uses this: its
/// candidates mutate budgets, machine shape and the scheme far more often
/// than the profiles, so consecutive attempts on one failing case mostly
/// hit the cache instead of rebuilding every program.
[[nodiscard]] OracleReport run_oracles(const FuzzCase& c,
                                       ArtifactCache& artifacts);

/// run_oracles routed through the lockstep batch engine when `lanes` > 1:
/// the baseline and every comparison configuration run as lanes of one
/// SimBatch (same artifacts, same comparison order and rules), which
/// turns every fuzz case into a differential test of the batch engine
/// across eval modes and stats levels. On a passing case the report is
/// identical to the sequential path's (six simulations, ok). `lanes` <= 1
/// is exactly the sequential path; `artifacts` may be null.
[[nodiscard]] OracleReport run_oracles(const FuzzCase& c,
                                       ArtifactCache* artifacts,
                                       unsigned lanes);

}  // namespace cvmt
