// Differential oracles over one FuzzCase: the same case is run through
// every hot-path configuration the repo claims is bit-identical —
//
//   baseline   plan evaluator + stall fast-forward + full stats
//   tree       recursive tree-reference evaluator, cycle-stepped
//   stepped    plan evaluator with the fast-forward disabled
//   faststats  StatsLevel::kFast (merge counters intentionally zeroed)
//   replay     the baseline re-run from scratch (determinism)
//
// and every SimResult counter must agree (faststats: every shared field
// agrees AND the merge counters are verifiably zeroed). This turns each
// future hot-path optimization into one more row here instead of a
// bespoke golden test.
#pragma once

#include <string>
#include <vector>

#include "testgen/fuzz_case.hpp"

namespace cvmt {

class ArtifactCache;

/// Outcome of one oracle run over one case.
struct OracleReport {
  bool ok = true;
  /// run_simulation invocations this oracle run actually performed (a
  /// failing run early-returns after the first mismatching oracle).
  int simulations = 0;
  /// Which configuration pair disagreed, e.g. "baseline-vs-tree".
  std::string failed_oracle;
  /// First mismatching counter, with both values, e.g.
  /// "cycles: 1200 != 1199".
  std::string mismatch;
  /// Set when the case could not even be constructed/run (CheckError from
  /// scheme parsing, program building or the simulator itself).
  std::string construction_error;

  [[nodiscard]] std::string to_string() const;
};

/// Field-by-field comparison of two results. Returns an empty string when
/// identical, otherwise "field: a != b" for the first difference.
/// `compare_merge_stats` false skips the histogram and merge-node counters
/// (the kFast contract zeroes them on purpose).
[[nodiscard]] std::string compare_sim_results(const SimResult& a,
                                              const SimResult& b,
                                              bool compare_merge_stats);

/// Runs every oracle over `c`. All simulation configurations share the
/// case's programs (built once — SyntheticProgram is immutable) and one
/// reusable SimInstance (compiled once, reset between configurations);
/// the replay oracle re-runs through the one-shot run_simulation facade,
/// so instance reuse itself is cross-checked on every case. A run costs
/// five small simulations.
[[nodiscard]] OracleReport run_oracles(const FuzzCase& c);

/// run_oracles with the case's programs materialized through `artifacts`
/// (keyed by full profile content + machine). The shrinker uses this: its
/// candidates mutate budgets, machine shape and the scheme far more often
/// than the profiles, so consecutive attempts on one failing case mostly
/// hit the cache instead of rebuilding every program.
[[nodiscard]] OracleReport run_oracles(const FuzzCase& c,
                                       ArtifactCache& artifacts);

}  // namespace cvmt
