// One self-contained differential-fuzzing case: a merge scheme, a
// randomized multiprogrammed workload (one BenchmarkProfile per software
// thread) and the full simulation configuration (machine shape, memory
// system, OS policy knobs and seeds).
//
// A case is the unit the oracle checks and the shrinker minimizes, so it
// must be (a) reproducible from its own fields alone — no hidden state —
// and (b) serializable: failures are persisted as JSON repro files under
// tests/corpus/ and replayed by tests/fuzz_test.cpp forever after. The
// oracle-controlled knobs (StatsLevel, EvalMode, stall fast-forward) are
// deliberately NOT part of a case: the oracle sweeps them, the case pins
// everything else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "support/json.hpp"
#include "trace/benchmark_profile.hpp"

namespace cvmt {

struct FuzzCase {
  /// Display label: "seed-<n>" for generated cases, "<label>+shrunk" after
  /// minimization, the file stem for corpus replays.
  std::string label;
  /// Generator seed this case was derived from (0 for hand-written or
  /// shrunk cases — they are no longer reachable from any seed).
  std::uint64_t seed = 0;
  /// Scheme in canonical functional syntax, e.g. "S(CP(0,1,2),3)".
  std::string scheme;
  /// One profile per software thread. May be larger than the scheme's
  /// hardware thread count (the OS timeslices) or smaller (slots idle).
  std::vector<BenchmarkProfile> profiles;
  /// Machine + memory + policies + budgets + seeds of the run.
  SimConfig sim;

  /// Builds the per-thread programs and the parsed scheme. Throws
  /// CheckError when the case is malformed (unparseable scheme, profile
  /// knobs out of range) — the oracle treats that as a failure too.
  [[nodiscard]] Scheme parse_scheme() const;
  [[nodiscard]] std::vector<std::shared_ptr<const SyntheticProgram>>
  build_programs() const;

  /// One-line human-readable summary ("S(0,1) 2sw 4x4 budget=800 ...").
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] JsonValue to_json() const;
  [[nodiscard]] static FuzzCase from_json(const JsonValue& v);
};

/// File persistence for corpus repro files. Paths are plain filesystem
/// paths; save_case overwrites.
void save_case(const std::string& path, const FuzzCase& c);
[[nodiscard]] FuzzCase load_case(const std::string& path);
/// Loads every *.json under `dir` (sorted by filename so replay order is
/// deterministic); missing directory = empty corpus.
[[nodiscard]] std::vector<FuzzCase> load_corpus_dir(const std::string& dir);

}  // namespace cvmt
