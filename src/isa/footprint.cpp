#include "isa/footprint.hpp"

#include <bit>

namespace cvmt {

Footprint Footprint::of(const Instruction& instr,
                        const MachineConfig& config) {
  Footprint fp;
  for (const Operation& op : instr) {
    CVMT_DCHECK(op.cluster < config.num_clusters);
    CVMT_DCHECK(op.slot < config.cluster_issue(op.cluster));
    ClusterUse& use = fp.use_[op.cluster];
    if (is_fixed_slot(op.kind)) {
      const auto bit = static_cast<std::uint8_t>(1u << op.slot);
      CVMT_DCHECK((use.fixed_mask & bit) == 0);
      use.fixed_mask = static_cast<std::uint8_t>(use.fixed_mask | bit);
    }
    ++use.op_count;
    CVMT_DCHECK(use.op_count <= config.cluster_issue(op.cluster));
    fp.cluster_mask_ |= 1u << op.cluster;
    ++fp.total_ops_;
  }
  return fp;
}

bool smt_compatible_het(const Footprint& a, const Footprint& b,
                        const MachineConfig& config) {
  // Only clusters used by both packets can conflict; walk their overlap.
  std::uint32_t shared = a.cluster_mask() & b.cluster_mask();
  while (shared != 0) {
    const int c = std::countr_zero(shared);
    shared &= shared - 1;
    const ClusterUse& ua = a.cluster(c);
    const ClusterUse& ub = b.cluster(c);
    if ((ua.fixed_mask & ub.fixed_mask) != 0) return false;
    if (ua.op_count + ub.op_count > config.cluster_issue(c)) return false;
  }
  return true;
}

Instruction route_merge(const Instruction& a, const Instruction& b,
                        const MachineConfig& config) {
  const Footprint fa = Footprint::of(a, config);
  const Footprint fb = Footprint::of(b, config);
  CVMT_CHECK_MSG(Footprint::smt_compatible(fa, fb, config),
                 "route_merge requires SMT-compatible packets");

  Instruction merged;
  merged.set_pc(a.pc());
  std::uint32_t occupied[kMaxClusters] = {};

  // Pass 1: fixed-slot ops of both packets keep their compiler-assigned
  // slots (they cannot be rerouted).
  for (const Instruction* src : {&a, &b}) {
    for (const Operation& op : *src) {
      if (!is_fixed_slot(op.kind)) continue;
      occupied[op.cluster] |= 1u << op.slot;
      merged.add(op);
    }
  }
  // Pass 2: ALU ops. Packet a's ops prefer their original slot; any
  // displaced op takes the lowest free slot of its cluster.
  for (const Instruction* src : {&a, &b}) {
    for (const Operation& op : *src) {
      if (is_fixed_slot(op.kind)) continue;
      std::uint32_t& occ = occupied[op.cluster];
      Operation placed = op;
      if ((occ & (1u << op.slot)) != 0) {
        const std::uint32_t all =
            (1u << static_cast<unsigned>(config.cluster_issue(op.cluster))) -
            1u;
        const std::uint32_t free = all & ~occ;
        CVMT_CHECK_MSG(free != 0, "routing overflow despite compatibility");
        placed.slot = static_cast<std::uint8_t>(std::countr_zero(free));
      }
      occ |= 1u << placed.slot;
      merged.add(placed);
    }
  }
  return merged;
}

}  // namespace cvmt
