// Operation kinds of the VEX-like ISA.
//
// The base architecture (paper §5.1, footnote 1) executes ALU operations in
// any issue slot, while memory, multiply and branch operations are bound to
// fixed slots. That asymmetry is what distinguishes SMT operation-level
// merging (reroute ALUs, keep fixed ops in place) from CSMT cluster-level
// merging (all-or-nothing per cluster).
#pragma once

#include <cstdint>
#include <string_view>

namespace cvmt {

/// Kind of a single VLIW operation (syllable).
enum class OpKind : std::uint8_t {
  kAlu = 0,     ///< single-cycle integer op; executes in any slot
  kMul = 1,     ///< 2-cycle multiply; fixed multiplier slots
  kLoad = 2,    ///< 2-cycle memory load; fixed load/store slot
  kStore = 3,   ///< memory store; fixed load/store slot
  kBranch = 4,  ///< (conditional) branch; fixed branch slot
};

inline constexpr int kNumOpKinds = 5;

/// True for kinds that the compiler schedules into fixed issue slots and the
/// SMT router therefore cannot move.
[[nodiscard]] constexpr bool is_fixed_slot(OpKind k) {
  return k != OpKind::kAlu;
}

/// True for loads and stores (the kinds that access the DCache).
[[nodiscard]] constexpr bool is_memory(OpKind k) {
  return k == OpKind::kLoad || k == OpKind::kStore;
}

[[nodiscard]] constexpr std::string_view to_string(OpKind k) {
  switch (k) {
    case OpKind::kAlu: return "alu";
    case OpKind::kMul: return "mpy";
    case OpKind::kLoad: return "ld";
    case OpKind::kStore: return "st";
    case OpKind::kBranch: return "br";
  }
  return "?";
}

}  // namespace cvmt
