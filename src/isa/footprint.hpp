// Resource footprints and the SMT / CSMT merge-compatibility predicates.
//
// A footprint is the sufficient statistic of an instruction (or an already
// accumulated execution packet) for both merge checks of the paper (§2):
//
//   * CSMT merges two packets iff their *cluster* footprints are disjoint.
//   * SMT merges two packets iff, in every cluster, fixed-slot operations do
//     not collide slot-wise and the combined operation count fits the issue
//     width (ALU operations can be rerouted to any free slot).
//
// Packets always merge in their entirety (no partial issue) — VLIW
// semantics forbid splitting an instruction.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "isa/instruction.hpp"
#include "isa/machine_config.hpp"
#include "support/check.hpp"

namespace cvmt {

/// Per-cluster resource usage of a packet.
struct ClusterUse {
  std::uint8_t fixed_mask = 0;  ///< slots occupied by non-reroutable ops
  std::uint8_t op_count = 0;    ///< total operations placed in the cluster

  friend constexpr bool operator==(const ClusterUse&,
                                   const ClusterUse&) = default;
};

/// Resource footprint of an instruction or merged execution packet.
class Footprint {
 public:
  Footprint() = default;

  /// Computes the footprint of `instr` under `config`. The instruction must
  /// be valid (placement in range); enforced with debug checks.
  [[nodiscard]] static Footprint of(const Instruction& instr,
                                    const MachineConfig& config);

  /// Bit c set <=> cluster c holds at least one operation.
  [[nodiscard]] std::uint32_t cluster_mask() const { return cluster_mask_; }

  [[nodiscard]] const ClusterUse& cluster(int c) const {
    return use_[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] int total_ops() const { return total_ops_; }
  [[nodiscard]] bool empty() const { return cluster_mask_ == 0; }

  /// CSMT check: cluster-level disjointness.
  [[nodiscard]] static bool csmt_compatible(const Footprint& a,
                                            const Footprint& b) {
    return (a.cluster_mask_ & b.cluster_mask_) == 0;
  }

  /// SMT check: per-cluster fixed-slot disjointness + issue-width fit.
  /// Implemented as byte-lane SWAR over the packed ClusterUse array (all
  /// clusters checked at once; unused clusters are vacuously compatible,
  /// so the result equals the per-shared-cluster walk). Hot: called for
  /// every SMT merge attempt of every simulated cycle.
  [[nodiscard]] static bool smt_compatible(const Footprint& a,
                                           const Footprint& b,
                                           const MachineConfig& config);

  /// In-place union (SWAR: OR the fixed-mask lanes, add the count lanes).
  /// Caller must have established compatibility under the merge kind in
  /// use; checked in debug builds for the SMT (weaker) predicate.
  void merge_with(const Footprint& b, const MachineConfig& config);

  friend bool operator==(const Footprint& a, const Footprint& b) {
    return a.cluster_mask_ == b.cluster_mask_ && a.use_ == b.use_ &&
           a.total_ops_ == b.total_ops_;
  }

 private:
  /// Byte-lane view of use_: even bytes are fixed masks, odd bytes are op
  /// counts (ClusterUse layout, asserted below).
  using Lanes = std::array<std::uint64_t, kMaxClusters * 2 / 8>;
  static constexpr std::uint64_t kFixedLanes = 0x00FF00FF00FF00FFULL;
  static constexpr std::uint64_t kCountLanes = 0xFF00FF00FF00FF00ULL;
  /// 0x80 bit of every count lane (overflow detector of the SWAR compare).
  static constexpr std::uint64_t kCountHighBits = 0x8000800080008000ULL;

  std::array<ClusterUse, kMaxClusters> use_{};
  std::uint32_t cluster_mask_ = 0;
  int total_ops_ = 0;
};

static_assert(sizeof(ClusterUse) == 2 && kMaxClusters % 4 == 0,
              "SWAR predicates assume 2-byte ClusterUse lanes");
static_assert(std::endian::native == std::endian::little,
              "SWAR lane masks assume little-endian byte order (fixed "
              "masks in even bytes, op counts in odd bytes)");

/// Heterogeneous-machine slow path of smt_compatible (per-cluster widths
/// break the single-adjust SWAR trick); out of line, rarely taken.
[[nodiscard]] bool smt_compatible_het(const Footprint& a, const Footprint& b,
                                      const MachineConfig& config);

// Forced inline: both SWAR bodies are a handful of ALU ops on two
// cache-resident 16-byte arrays, called once per merge attempt of every
// simulated cycle — the call/spill overhead of an outlined copy is
// comparable to the work itself.
[[gnu::always_inline]] inline bool Footprint::smt_compatible(
    const Footprint& a, const Footprint& b, const MachineConfig& config) {
  if (config.heterogeneous) [[unlikely]]
    return smt_compatible_het(a, b, config);
  const auto la = std::bit_cast<Lanes>(a.use_);
  const auto lb = std::bit_cast<Lanes>(b.use_);
  // Per count byte: sum + (127 - width) has bit 7 set iff sum > width.
  // Counts are at most 2 * issue width <= 16, so lanes never carry.
  const std::uint64_t adjust =
      (127ull - static_cast<std::uint64_t>(config.issue_per_cluster)) *
      0x0100010001000100ULL;
  for (std::size_t i = 0; i < la.size(); ++i) {
    if ((la[i] & lb[i] & kFixedLanes) != 0) return false;  // slot collision
    const std::uint64_t sums =
        (la[i] & kCountLanes) + (lb[i] & kCountLanes);
    if (((sums + adjust) & kCountHighBits) != 0) return false;  // overflow
  }
  return true;
}

[[gnu::always_inline]] inline void Footprint::merge_with(
    const Footprint& b, const MachineConfig& config) {
  CVMT_DCHECK(smt_compatible(*this, b, config));
  auto la = std::bit_cast<Lanes>(use_);
  const auto lb = std::bit_cast<Lanes>(b.use_);
  for (std::size_t i = 0; i < la.size(); ++i)
    la[i] = ((la[i] & kCountLanes) + (lb[i] & kCountLanes)) |
            ((la[i] | lb[i]) & kFixedLanes);
  use_ = std::bit_cast<std::array<ClusterUse, kMaxClusters>>(la);
  cluster_mask_ |= b.cluster_mask_;
  total_ops_ += b.total_ops_;
}

/// Materialises the SMT-merged execution packet: fixed ops keep their slots,
/// ALU ops of both packets are routed to free slots of their cluster
/// (packet `a` keeps its placement where possible, `b` is rerouted — mirrors
/// the routing block of Fig 2). Requires smt_compatible(a, b).
[[nodiscard]] Instruction route_merge(const Instruction& a,
                                      const Instruction& b,
                                      const MachineConfig& config);

}  // namespace cvmt
