// Resource footprints and the SMT / CSMT merge-compatibility predicates.
//
// A footprint is the sufficient statistic of an instruction (or an already
// accumulated execution packet) for both merge checks of the paper (§2):
//
//   * CSMT merges two packets iff their *cluster* footprints are disjoint.
//   * SMT merges two packets iff, in every cluster, fixed-slot operations do
//     not collide slot-wise and the combined operation count fits the issue
//     width (ALU operations can be rerouted to any free slot).
//
// Packets always merge in their entirety (no partial issue) — VLIW
// semantics forbid splitting an instruction.
#pragma once

#include <array>
#include <cstdint>

#include "isa/instruction.hpp"
#include "isa/machine_config.hpp"

namespace cvmt {

/// Per-cluster resource usage of a packet.
struct ClusterUse {
  std::uint8_t fixed_mask = 0;  ///< slots occupied by non-reroutable ops
  std::uint8_t op_count = 0;    ///< total operations placed in the cluster

  friend constexpr bool operator==(const ClusterUse&,
                                   const ClusterUse&) = default;
};

/// Resource footprint of an instruction or merged execution packet.
class Footprint {
 public:
  Footprint() = default;

  /// Computes the footprint of `instr` under `config`. The instruction must
  /// be valid (placement in range); enforced with debug checks.
  [[nodiscard]] static Footprint of(const Instruction& instr,
                                    const MachineConfig& config);

  /// Bit c set <=> cluster c holds at least one operation.
  [[nodiscard]] std::uint32_t cluster_mask() const { return cluster_mask_; }

  [[nodiscard]] const ClusterUse& cluster(int c) const {
    return use_[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] int total_ops() const { return total_ops_; }
  [[nodiscard]] bool empty() const { return cluster_mask_ == 0; }

  /// CSMT check: cluster-level disjointness.
  [[nodiscard]] static bool csmt_compatible(const Footprint& a,
                                            const Footprint& b) {
    return (a.cluster_mask_ & b.cluster_mask_) == 0;
  }

  /// SMT check: per-cluster fixed-slot disjointness + issue-width fit.
  [[nodiscard]] static bool smt_compatible(const Footprint& a,
                                           const Footprint& b,
                                           const MachineConfig& config);

  /// In-place union. Caller must have established compatibility under the
  /// merge kind in use; checked in debug builds for the SMT (weaker)
  /// predicate.
  void merge_with(const Footprint& b, const MachineConfig& config);

  friend bool operator==(const Footprint& a, const Footprint& b) {
    return a.cluster_mask_ == b.cluster_mask_ && a.use_ == b.use_ &&
           a.total_ops_ == b.total_ops_;
  }

 private:
  std::array<ClusterUse, kMaxClusters> use_{};
  std::uint32_t cluster_mask_ = 0;
  int total_ops_ = 0;
};

/// Materialises the SMT-merged execution packet: fixed ops keep their slots,
/// ALU ops of both packets are routed to free slots of their cluster
/// (packet `a` keeps its placement where possible, `b` is rerouted — mirrors
/// the routing block of Fig 2). Requires smt_compatible(a, b).
[[nodiscard]] Instruction route_merge(const Instruction& a,
                                      const Instruction& b,
                                      const MachineConfig& config);

}  // namespace cvmt
