#include "isa/instruction.hpp"

#include <sstream>

namespace cvmt {

const Operation* Instruction::taken_branch() const {
  for (const Operation& op : ops_)
    if (op.kind == OpKind::kBranch && op.taken) return &op;
  return nullptr;
}

bool Instruction::has_memory_op() const {
  for (const Operation& op : ops_)
    if (is_memory(op.kind)) return true;
  return false;
}

std::string Instruction::validate(const MachineConfig& config) const {
  std::uint64_t used[kMaxClusters] = {};  // slot bitmask per cluster
  for (const Operation& op : ops_) {
    if (op.cluster >= config.num_clusters)
      return "cluster index out of range";
    if (op.slot >= config.cluster_issue(op.cluster))
      return "slot index out of range";
    const std::uint32_t capable = config.slots_for(op.kind, op.cluster);
    if ((capable & (1u << op.slot)) == 0) {
      std::ostringstream os;
      os << cvmt::to_string(op.kind) << " not executable in slot "
         << static_cast<int>(op.slot);
      return os.str();
    }
    const std::uint64_t bit = 1ull << op.slot;
    if (used[op.cluster] & bit) {
      std::ostringstream os;
      os << "slot " << static_cast<int>(op.slot) << " of cluster "
         << static_cast<int>(op.cluster) << " used twice";
      return os.str();
    }
    used[op.cluster] |= bit;
  }
  return {};
}

std::string Instruction::to_string(const MachineConfig& config) const {
  // Lay ops out on a cluster x slot grid, then print Fig-1 style.
  const Operation* grid[kMaxClusters][kMaxIssuePerCluster] = {};
  for (const Operation& op : ops_) {
    if (op.cluster < config.num_clusters &&
        op.slot < config.cluster_issue(op.cluster))
      grid[op.cluster][op.slot] = &op;
  }
  std::ostringstream os;
  for (int c = 0; c < config.num_clusters; ++c) {
    if (c) os << " | ";
    for (int s = 0; s < config.cluster_issue(c); ++s) {
      if (s) os << ' ';
      if (const Operation* op = grid[c][s])
        os << cvmt::to_string(op->kind);
      else
        os << '-';
    }
  }
  return os.str();
}

}  // namespace cvmt
