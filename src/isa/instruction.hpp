// A VLIW instruction: one long word of parallel operations.
#pragma once

#include <cstdint>
#include <string>

#include "isa/machine_config.hpp"
#include "isa/operation.hpp"
#include "support/inline_vec.hpp"

namespace cvmt {

/// One VLIW instruction (execution packet of a single thread). An empty
/// instruction is a scheduled stall cycle — vertical waste that a
/// multithreaded merge can reclaim.
class Instruction {
 public:
  Instruction() = default;

  /// Adds an operation. Placement legality is checked lazily by validate();
  /// the trace generator always produces valid packets, tests may not.
  void add(const Operation& op) { ops_.push_back(op); }

  [[nodiscard]] std::size_t op_count() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  [[nodiscard]] const Operation& op(std::size_t i) const { return ops_[i]; }
  /// Mutable access, used by the trace generator to patch memory addresses
  /// and branch directions into a body template at emission time.
  [[nodiscard]] Operation& op(std::size_t i) { return ops_[i]; }
  [[nodiscard]] const Operation* begin() const { return ops_.begin(); }
  [[nodiscard]] const Operation* end() const { return ops_.end(); }

  [[nodiscard]] std::uint64_t pc() const { return pc_; }
  void set_pc(std::uint64_t pc) { pc_ = pc; }

  /// Returns the taken branch of the packet, or nullptr. (A valid packet has
  /// at most one branch per cluster; a single-thread packet has at most one
  /// branch overall — the trace generator guarantees this.)
  [[nodiscard]] const Operation* taken_branch() const;

  /// True if any operation is a load or store.
  [[nodiscard]] bool has_memory_op() const;

  /// Checks structural validity against `config`: placement in range,
  /// capability of the slot, and slot exclusivity within a cluster.
  /// Returns an explanatory message for the first violation, empty if valid.
  [[nodiscard]] std::string validate(const MachineConfig& config) const;

  /// Renders like the paper's Fig 1 rows: "add - ld | ..." (one group per
  /// cluster, '-' for empty slots).
  [[nodiscard]] std::string to_string(const MachineConfig& config) const;

  friend bool operator==(const Instruction& a, const Instruction& b) {
    return a.pc_ == b.pc_ && a.ops_ == b.ops_;
  }

 private:
  InlineVec<Operation, kMaxTotalOps> ops_;
  std::uint64_t pc_ = 0;
};

}  // namespace cvmt
