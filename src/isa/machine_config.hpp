// Machine description for the clustered VLIW target.
//
// Defaults model the paper's evaluation machine (§5.1): a VEX derivative of
// the HP/ST Lx ST200 family with 4 clusters x 4-issue, 2 multipliers and
// 1 load/store unit per cluster, ALUs in every slot, 2-cycle memory and
// multiply latency, no branch predictor and a 2-cycle taken-branch penalty
// (dedicated merge pipeline stage).
//
// Machines are optionally heterogeneous: every cluster may carry its own
// issue width and capability masks (per_cluster[]), behind the homogeneous
// fast path the paper's machines use. The machine-file layer
// (isa/machine_file.hpp) parses either form from `.machine` config files.
#pragma once

#include <array>
#include <cstdint>

#include "isa/op_kind.hpp"
#include "support/check.hpp"

namespace cvmt {

/// Hard upper bounds used to size inline containers. The paper's machine is
/// 4x4; the ablation benches go up to 8 clusters / 8 threads, and the
/// property-based fuzzer (src/testgen) exercises schemes up to 16 threads.
inline constexpr int kMaxClusters = 8;
inline constexpr int kMaxIssuePerCluster = 8;
inline constexpr int kMaxTotalOps = 32;
inline constexpr int kMaxThreads = 16;

/// Shape of one cluster of a heterogeneous machine: its own issue width
/// and capability masks. Capability masks may be zero here (a cluster
/// without a multiplier is the point of heterogeneity); validate() only
/// requires each capability to exist somewhere on the machine.
struct ClusterShape {
  int issue_width = 4;
  std::uint32_t mul_slot_mask = 0b0011;
  std::uint32_t mem_slot_mask = 0b0100;
  std::uint32_t branch_slot_mask = 0b1000;

  friend constexpr bool operator==(const ClusterShape&,
                                   const ClusterShape&) = default;
};

/// Static description of one clustered VLIW machine. Homogeneous by
/// default (as in VEX): the flat slot capability masks apply to each
/// cluster. When `heterogeneous` is set, per_cluster[0..num_clusters)
/// carries each cluster's own shape and the flat fields are ignored.
struct MachineConfig {
  int num_clusters = 4;
  int issue_per_cluster = 4;

  /// Bit i set <=> slot i of every cluster has a multiplier. VEX: 2 per
  /// cluster, in the two low slots.
  std::uint32_t mul_slot_mask = 0b0011;
  /// Bit i set <=> slot i can issue loads/stores. VEX: 1 LSU per cluster.
  std::uint32_t mem_slot_mask = 0b0100;
  /// Bit i set <=> slot i can issue branches. One branch unit per cluster.
  std::uint32_t branch_slot_mask = 0b1000;

  /// Heterogeneous clusters: per_cluster[c] describes cluster c and the
  /// flat width/mask fields above are ignored. The homogeneous fast paths
  /// (SWAR SMT compatibility, uniform-width loops) key off this flag.
  bool heterogeneous = false;
  std::array<ClusterShape, kMaxClusters> per_cluster{};

  /// Operation latencies in cycles (paper: memory and multiply 2, rest 1).
  int alu_latency = 1;
  int mul_latency = 2;
  int mem_latency = 2;

  /// Squash penalty for a taken branch (no predictor, fall-through path
  /// predicted; includes the dedicated thread-merge pipeline stage).
  int taken_branch_penalty = 2;

  /// The paper's 16-issue machine: 4 clusters x 4 issue slots.
  [[nodiscard]] static MachineConfig vex4x4();

  /// The 8-issue machine of the paper's Fig 1 worked example
  /// (4 clusters x 2 issue).
  [[nodiscard]] static MachineConfig vex4x2();

  /// A generic clustered machine for shape-sweep ablations: ALUs in every
  /// slot, up to two multipliers in the low slots, the LSU and branch unit
  /// in the high slots (they share a slot on narrow clusters).
  [[nodiscard]] static MachineConfig clustered(int num_clusters,
                                               int issue_per_cluster);

  /// A heterogeneous machine from explicit per-cluster shapes
  /// (`shapes[0..count)`); latencies keep their defaults.
  [[nodiscard]] static MachineConfig heterogeneous_of(
      const ClusterShape* shapes, int count);

  /// Issue width of cluster `c`.
  [[nodiscard]] int cluster_issue(int c) const {
    return heterogeneous ? per_cluster[static_cast<std::size_t>(c)].issue_width
                         : issue_per_cluster;
  }

  /// The widest cluster's issue width (the homogeneous width when not
  /// heterogeneous). Cost models size their slot-level circuits off this.
  [[nodiscard]] int max_issue_per_cluster() const;

  [[nodiscard]] int total_issue_width() const {
    if (!heterogeneous) return num_clusters * issue_per_cluster;
    int total = 0;
    for (int c = 0; c < num_clusters; ++c)
      total += per_cluster[static_cast<std::size_t>(c)].issue_width;
    return total;
  }

  /// Mask of slots of cluster `c` able to execute `kind` (ALU: all slots).
  [[nodiscard]] std::uint32_t slots_for(OpKind kind, int c) const;

  /// Homogeneous-machine shorthand for slots_for(kind, c); asserts the
  /// machine is not heterogeneous (per-cluster callers must say which
  /// cluster they mean).
  [[nodiscard]] std::uint32_t slots_for(OpKind kind) const {
    CVMT_DCHECK(!heterogeneous);
    return slots_for(kind, 0);
  }

  /// Latency in cycles of `kind` under this machine.
  [[nodiscard]] int latency_of(OpKind kind) const;

  /// Throws CheckError when structurally invalid (e.g. capability mask
  /// names a slot beyond the cluster's issue width, or a heterogeneous
  /// machine lacks a capability on every cluster).
  void validate() const;
};

/// Value equality (used by tests and config plumbing). Heterogeneous
/// machines compare their active per_cluster prefix; homogeneous machines
/// compare the flat fields.
[[nodiscard]] bool operator==(const MachineConfig& a, const MachineConfig& b);

}  // namespace cvmt
