// Machine description for the clustered VLIW target.
//
// Defaults model the paper's evaluation machine (§5.1): a VEX derivative of
// the HP/ST Lx ST200 family with 4 clusters x 4-issue, 2 multipliers and
// 1 load/store unit per cluster, ALUs in every slot, 2-cycle memory and
// multiply latency, no branch predictor and a 2-cycle taken-branch penalty
// (dedicated merge pipeline stage).
#pragma once

#include <cstdint>

#include "isa/op_kind.hpp"
#include "support/check.hpp"

namespace cvmt {

/// Hard upper bounds used to size inline containers. The paper's machine is
/// 4x4; the ablation benches go up to 8 clusters / 8 threads, and the
/// property-based fuzzer (src/testgen) exercises schemes up to 16 threads.
inline constexpr int kMaxClusters = 8;
inline constexpr int kMaxIssuePerCluster = 8;
inline constexpr int kMaxTotalOps = 32;
inline constexpr int kMaxThreads = 16;

/// Static description of one clustered VLIW machine. All clusters are
/// homogeneous (as in VEX): the slot capability masks apply to each cluster.
struct MachineConfig {
  int num_clusters = 4;
  int issue_per_cluster = 4;

  /// Bit i set <=> slot i of every cluster has a multiplier. VEX: 2 per
  /// cluster, in the two low slots.
  std::uint32_t mul_slot_mask = 0b0011;
  /// Bit i set <=> slot i can issue loads/stores. VEX: 1 LSU per cluster.
  std::uint32_t mem_slot_mask = 0b0100;
  /// Bit i set <=> slot i can issue branches. One branch unit per cluster.
  std::uint32_t branch_slot_mask = 0b1000;

  /// Operation latencies in cycles (paper: memory and multiply 2, rest 1).
  int alu_latency = 1;
  int mul_latency = 2;
  int mem_latency = 2;

  /// Squash penalty for a taken branch (no predictor, fall-through path
  /// predicted; includes the dedicated thread-merge pipeline stage).
  int taken_branch_penalty = 2;

  /// The paper's 16-issue machine: 4 clusters x 4 issue slots.
  [[nodiscard]] static MachineConfig vex4x4();

  /// The 8-issue machine of the paper's Fig 1 worked example
  /// (4 clusters x 2 issue).
  [[nodiscard]] static MachineConfig vex4x2();

  /// A generic clustered machine for shape-sweep ablations: ALUs in every
  /// slot, up to two multipliers in the low slots, the LSU and branch unit
  /// in the high slots (they share a slot on narrow clusters).
  [[nodiscard]] static MachineConfig clustered(int num_clusters,
                                               int issue_per_cluster);

  [[nodiscard]] int total_issue_width() const {
    return num_clusters * issue_per_cluster;
  }

  /// Mask of slots able to execute `kind` (ALU: all slots).
  [[nodiscard]] std::uint32_t slots_for(OpKind kind) const;

  /// Latency in cycles of `kind` under this machine.
  [[nodiscard]] int latency_of(OpKind kind) const;

  /// Throws CheckError when structurally invalid (e.g. capability mask
  /// names a slot beyond issue_per_cluster).
  void validate() const;
};

/// Value equality (used by tests and config plumbing).
[[nodiscard]] bool operator==(const MachineConfig& a, const MachineConfig& b);

}  // namespace cvmt
