#include "isa/machine_config.hpp"

#include <algorithm>
#include <bit>
#include <string>

namespace cvmt {
namespace {

constexpr std::uint32_t width_mask(int w) {
  return (w >= 32) ? ~0u : ((1u << static_cast<unsigned>(w)) - 1u);
}

void validate_shape(const ClusterShape& s, const std::string& where,
                    bool allow_empty) {
  CVMT_CHECK_MSG(s.issue_width >= 1 && s.issue_width <= kMaxIssuePerCluster,
                 where + "issue width out of range");
  const std::uint32_t all = width_mask(s.issue_width);
  CVMT_CHECK_MSG((s.mul_slot_mask & ~all) == 0,
                 where + "mul slot beyond issue width");
  CVMT_CHECK_MSG((s.mem_slot_mask & ~all) == 0,
                 where + "mem slot beyond issue width");
  CVMT_CHECK_MSG((s.branch_slot_mask & ~all) == 0,
                 where + "branch slot beyond issue width");
  if (!allow_empty) {
    CVMT_CHECK_MSG(s.mul_slot_mask != 0,
                   "machine needs at least one multiplier");
    CVMT_CHECK_MSG(s.mem_slot_mask != 0, "machine needs at least one LSU");
    CVMT_CHECK_MSG(s.branch_slot_mask != 0,
                   "machine needs at least one branch unit");
  }
}

}  // namespace

MachineConfig MachineConfig::vex4x4() {
  // Built (and validated) once; the factories sit on hot default paths
  // (every default-constructed SimConfig copies one).
  static const MachineConfig c = [] {
    MachineConfig m;
    m.num_clusters = 4;
    m.issue_per_cluster = 4;
    m.mul_slot_mask = 0b0011;
    m.mem_slot_mask = 0b0100;
    m.branch_slot_mask = 0b1000;
    m.validate();
    return m;
  }();
  return c;
}

MachineConfig MachineConfig::vex4x2() {
  static const MachineConfig c = [] {
    MachineConfig m;
    m.num_clusters = 4;
    m.issue_per_cluster = 2;
    // With two slots per cluster the fixed units share them: slot 0
    // carries the multiplier, slot 1 the LSU and branch unit.
    m.mul_slot_mask = 0b01;
    m.mem_slot_mask = 0b10;
    m.branch_slot_mask = 0b10;
    m.validate();
    return m;
  }();
  return c;
}

MachineConfig MachineConfig::clustered(int num_clusters,
                                       int issue_per_cluster) {
  MachineConfig c;
  c.num_clusters = num_clusters;
  c.issue_per_cluster = issue_per_cluster;
  const int w = issue_per_cluster;
  if (w >= 4) {
    c.mul_slot_mask = 0b0011;
    c.mem_slot_mask = 1u << (w - 2);
    c.branch_slot_mask = 1u << (w - 1);
  } else if (w == 3) {
    c.mul_slot_mask = 0b001;
    c.mem_slot_mask = 0b010;
    c.branch_slot_mask = 0b100;
  } else if (w == 2) {
    c.mul_slot_mask = 0b01;
    c.mem_slot_mask = 0b10;
    c.branch_slot_mask = 0b10;
  } else {
    c.mul_slot_mask = c.mem_slot_mask = c.branch_slot_mask = 0b1;
  }
  c.validate();
  return c;
}

MachineConfig MachineConfig::heterogeneous_of(const ClusterShape* shapes,
                                              int count) {
  MachineConfig c;
  c.heterogeneous = true;
  c.num_clusters = count;
  CVMT_CHECK_MSG(count >= 1 && count <= kMaxClusters,
                 "cluster count out of range");
  for (int i = 0; i < count; ++i)
    c.per_cluster[static_cast<std::size_t>(i)] = shapes[i];
  // Keep the (ignored) flat fields coherent with the widest cluster so
  // accidental flat reads fail loudly in validate() rather than silently.
  c.issue_per_cluster = c.max_issue_per_cluster();
  c.validate();
  return c;
}

int MachineConfig::max_issue_per_cluster() const {
  if (!heterogeneous) return issue_per_cluster;
  int widest = 1;
  for (int c = 0; c < num_clusters; ++c)
    widest = std::max(widest,
                      per_cluster[static_cast<std::size_t>(c)].issue_width);
  return widest;
}

std::uint32_t MachineConfig::slots_for(OpKind kind, int c) const {
  std::uint32_t all;
  std::uint32_t mul;
  std::uint32_t mem;
  std::uint32_t branch;
  if (heterogeneous) {
    const ClusterShape& s = per_cluster[static_cast<std::size_t>(c)];
    all = width_mask(s.issue_width);
    mul = s.mul_slot_mask;
    mem = s.mem_slot_mask;
    branch = s.branch_slot_mask;
  } else {
    all = width_mask(issue_per_cluster);
    mul = mul_slot_mask;
    mem = mem_slot_mask;
    branch = branch_slot_mask;
  }
  switch (kind) {
    case OpKind::kAlu: return all;
    case OpKind::kMul: return mul;
    case OpKind::kLoad:
    case OpKind::kStore: return mem;
    case OpKind::kBranch: return branch;
  }
  return 0;
}

int MachineConfig::latency_of(OpKind kind) const {
  switch (kind) {
    case OpKind::kAlu: return alu_latency;
    case OpKind::kMul: return mul_latency;
    case OpKind::kLoad:
    case OpKind::kStore: return mem_latency;
    case OpKind::kBranch: return alu_latency;
  }
  return 1;
}

void MachineConfig::validate() const {
  CVMT_CHECK_MSG(num_clusters >= 1 && num_clusters <= kMaxClusters,
                 "cluster count out of range");
  if (heterogeneous) {
    // Per-cluster masks may be empty; every capability must exist on at
    // least one cluster of the machine.
    int total = 0;
    std::uint32_t any_mul = 0;
    std::uint32_t any_mem = 0;
    std::uint32_t any_branch = 0;
    for (int c = 0; c < num_clusters; ++c) {
      const ClusterShape& s = per_cluster[static_cast<std::size_t>(c)];
      validate_shape(s, "cluster " + std::to_string(c) + ": ",
                     /*allow_empty=*/true);
      total += s.issue_width;
      any_mul |= s.mul_slot_mask;
      any_mem |= s.mem_slot_mask;
      any_branch |= s.branch_slot_mask;
    }
    CVMT_CHECK_MSG(total <= kMaxTotalOps,
                   "total issue width exceeds kMaxTotalOps");
    CVMT_CHECK_MSG(any_mul != 0, "machine needs at least one multiplier");
    CVMT_CHECK_MSG(any_mem != 0, "machine needs at least one LSU");
    CVMT_CHECK_MSG(any_branch != 0,
                   "machine needs at least one branch unit");
  } else {
    CVMT_CHECK_MSG(
        issue_per_cluster >= 1 && issue_per_cluster <= kMaxIssuePerCluster,
        "issue width out of range");
    CVMT_CHECK_MSG(num_clusters * issue_per_cluster <= kMaxTotalOps,
                   "total issue width exceeds kMaxTotalOps");
    const ClusterShape flat{issue_per_cluster, mul_slot_mask, mem_slot_mask,
                            branch_slot_mask};
    validate_shape(flat, "", /*allow_empty=*/false);
  }
  CVMT_CHECK_MSG(alu_latency >= 1 && mul_latency >= 1 && mem_latency >= 1,
                 "latencies must be positive");
  CVMT_CHECK_MSG(taken_branch_penalty >= 0, "negative branch penalty");
}

bool operator==(const MachineConfig& a, const MachineConfig& b) {
  if (a.heterogeneous != b.heterogeneous ||
      a.num_clusters != b.num_clusters || a.alu_latency != b.alu_latency ||
      a.mul_latency != b.mul_latency || a.mem_latency != b.mem_latency ||
      a.taken_branch_penalty != b.taken_branch_penalty)
    return false;
  if (a.heterogeneous) {
    for (int c = 0; c < a.num_clusters; ++c)
      if (!(a.per_cluster[static_cast<std::size_t>(c)] ==
            b.per_cluster[static_cast<std::size_t>(c)]))
        return false;
    return true;
  }
  return a.issue_per_cluster == b.issue_per_cluster &&
         a.mul_slot_mask == b.mul_slot_mask &&
         a.mem_slot_mask == b.mem_slot_mask &&
         a.branch_slot_mask == b.branch_slot_mask;
}

}  // namespace cvmt
