#include "isa/machine_config.hpp"

#include <bit>

namespace cvmt {

MachineConfig MachineConfig::vex4x4() {
  MachineConfig c;
  c.num_clusters = 4;
  c.issue_per_cluster = 4;
  c.mul_slot_mask = 0b0011;
  c.mem_slot_mask = 0b0100;
  c.branch_slot_mask = 0b1000;
  c.validate();
  return c;
}

MachineConfig MachineConfig::vex4x2() {
  MachineConfig c;
  c.num_clusters = 4;
  c.issue_per_cluster = 2;
  // With two slots per cluster the fixed units share them: slot 0 carries
  // the multiplier, slot 1 the LSU and branch unit.
  c.mul_slot_mask = 0b01;
  c.mem_slot_mask = 0b10;
  c.branch_slot_mask = 0b10;
  c.validate();
  return c;
}

MachineConfig MachineConfig::clustered(int num_clusters,
                                       int issue_per_cluster) {
  MachineConfig c;
  c.num_clusters = num_clusters;
  c.issue_per_cluster = issue_per_cluster;
  const int w = issue_per_cluster;
  if (w >= 4) {
    c.mul_slot_mask = 0b0011;
    c.mem_slot_mask = 1u << (w - 2);
    c.branch_slot_mask = 1u << (w - 1);
  } else if (w == 3) {
    c.mul_slot_mask = 0b001;
    c.mem_slot_mask = 0b010;
    c.branch_slot_mask = 0b100;
  } else if (w == 2) {
    c.mul_slot_mask = 0b01;
    c.mem_slot_mask = 0b10;
    c.branch_slot_mask = 0b10;
  } else {
    c.mul_slot_mask = c.mem_slot_mask = c.branch_slot_mask = 0b1;
  }
  c.validate();
  return c;
}

std::uint32_t MachineConfig::slots_for(OpKind kind) const {
  const std::uint32_t all =
      (issue_per_cluster >= 32)
          ? ~0u
          : ((1u << static_cast<unsigned>(issue_per_cluster)) - 1u);
  switch (kind) {
    case OpKind::kAlu: return all;
    case OpKind::kMul: return mul_slot_mask;
    case OpKind::kLoad:
    case OpKind::kStore: return mem_slot_mask;
    case OpKind::kBranch: return branch_slot_mask;
  }
  return 0;
}

int MachineConfig::latency_of(OpKind kind) const {
  switch (kind) {
    case OpKind::kAlu: return alu_latency;
    case OpKind::kMul: return mul_latency;
    case OpKind::kLoad:
    case OpKind::kStore: return mem_latency;
    case OpKind::kBranch: return alu_latency;
  }
  return 1;
}

void MachineConfig::validate() const {
  CVMT_CHECK_MSG(num_clusters >= 1 && num_clusters <= kMaxClusters,
                 "cluster count out of range");
  CVMT_CHECK_MSG(
      issue_per_cluster >= 1 && issue_per_cluster <= kMaxIssuePerCluster,
      "issue width out of range");
  CVMT_CHECK_MSG(num_clusters * issue_per_cluster <= kMaxTotalOps,
                 "total issue width exceeds kMaxTotalOps");
  const std::uint32_t all =
      (1u << static_cast<unsigned>(issue_per_cluster)) - 1u;
  CVMT_CHECK_MSG((mul_slot_mask & ~all) == 0, "mul slot beyond issue width");
  CVMT_CHECK_MSG((mem_slot_mask & ~all) == 0, "mem slot beyond issue width");
  CVMT_CHECK_MSG((branch_slot_mask & ~all) == 0,
                 "branch slot beyond issue width");
  CVMT_CHECK_MSG(mul_slot_mask != 0, "machine needs at least one multiplier");
  CVMT_CHECK_MSG(mem_slot_mask != 0, "machine needs at least one LSU");
  CVMT_CHECK_MSG(branch_slot_mask != 0,
                 "machine needs at least one branch unit");
  CVMT_CHECK_MSG(alu_latency >= 1 && mul_latency >= 1 && mem_latency >= 1,
                 "latencies must be positive");
  CVMT_CHECK_MSG(taken_branch_penalty >= 0, "negative branch penalty");
}

bool operator==(const MachineConfig& a, const MachineConfig& b) {
  return a.num_clusters == b.num_clusters &&
         a.issue_per_cluster == b.issue_per_cluster &&
         a.mul_slot_mask == b.mul_slot_mask &&
         a.mem_slot_mask == b.mem_slot_mask &&
         a.branch_slot_mask == b.branch_slot_mask &&
         a.alu_latency == b.alu_latency && a.mul_latency == b.mul_latency &&
         a.mem_latency == b.mem_latency &&
         a.taken_branch_penalty == b.taken_branch_penalty;
}

}  // namespace cvmt
