#include "isa/machine_file.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "support/string_util.hpp"

namespace cvmt {
namespace {

std::string at(int line_no) {
  return "line " + std::to_string(line_no) + ": ";
}

/// Whitespace tokenizer (any run of spaces/tabs separates tokens).
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

std::uint64_t parse_u64(const std::string& tok, int line_no) {
  // parse_u64_token rejects what bare strtoull silently accepts: a
  // leading sign (issue=-1 would wrap to 18446744073709551615), trailing
  // garbage, and out-of-range values. Base 0 keeps 0x-prefixed slot
  // masks working.
  std::uint64_t v = 0;
  CVMT_CHECK_MSG(parse_u64_token(tok, v, 0),
                 at(line_no) + "not a number: '" + tok + "'");
  return v;
}

int parse_int(const std::string& tok, int line_no) {
  return static_cast<int>(parse_u64(tok, line_no));
}

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%" PRIx32, v);
  return buf;
}

CacheConfig parse_cache(const std::vector<std::string>& tokens,
                        int line_no) {
  CVMT_CHECK_MSG(tokens.size() == 5,
                 at(line_no) + "'" + tokens[0] +
                     "' needs 4 values: size_bytes line_bytes ways "
                     "miss_penalty");
  CacheConfig c;
  c.size_bytes = parse_u64(tokens[1], line_no);
  c.line_bytes = static_cast<std::uint32_t>(parse_u64(tokens[2], line_no));
  c.ways = static_cast<std::uint32_t>(parse_u64(tokens[3], line_no));
  c.miss_penalty = parse_int(tokens[4], line_no);
  return c;
}

void emit_cache(std::ostringstream& os, const char* key,
                const CacheConfig& c) {
  os << key << ' ' << c.size_bytes << ' ' << c.line_bytes << ' ' << c.ways
     << ' ' << c.miss_penalty << "\n";
}

/// One pending `cluster` row (applied once `clusters` is known).
struct ClusterRow {
  int index = 0;
  ClusterShape shape;
  int line_no = 0;
};

}  // namespace

MachineDescription parse_machine_file(std::string_view text) {
  MachineDescription d;
  std::set<std::string> seen;
  std::vector<ClusterRow> rows;
  int flat_shape_line = 0;  // last line that set issue/*_slots, 0 if none

  int line_no = 0;
  for (std::string raw : split(text, '\n')) {
    ++line_no;
    if (const std::size_t hash = raw.find('#'); hash != std::string::npos)
      raw.resize(hash);
    const std::vector<std::string> tok = tokenize(trim(raw));
    if (tok.empty()) continue;
    const std::string& key = tok[0];

    if (key != "cluster") {
      CVMT_CHECK_MSG(seen.insert(key).second,
                     at(line_no) + "duplicate key '" + key + "'");
    }
    const auto need = [&](std::size_t args, const char* what) {
      CVMT_CHECK_MSG(tok.size() == args + 1,
                     at(line_no) + "'" + key + "' needs " + what);
    };

    if (key == "name") {
      need(1, "a machine name");
      d.name = tok[1];
    } else if (key == "clusters") {
      need(1, "a cluster count");
      d.machine.num_clusters = parse_int(tok[1], line_no);
    } else if (key == "issue") {
      need(1, "an issue width");
      d.machine.issue_per_cluster = parse_int(tok[1], line_no);
      flat_shape_line = line_no;
    } else if (key == "mul_slots") {
      need(1, "a slot mask");
      d.machine.mul_slot_mask =
          static_cast<std::uint32_t>(parse_u64(tok[1], line_no));
      flat_shape_line = line_no;
    } else if (key == "mem_slots") {
      need(1, "a slot mask");
      d.machine.mem_slot_mask =
          static_cast<std::uint32_t>(parse_u64(tok[1], line_no));
      flat_shape_line = line_no;
    } else if (key == "branch_slots") {
      need(1, "a slot mask");
      d.machine.branch_slot_mask =
          static_cast<std::uint32_t>(parse_u64(tok[1], line_no));
      flat_shape_line = line_no;
    } else if (key == "cluster") {
      need(5, "5 values: index issue_width mul_slots mem_slots "
              "branch_slots");
      ClusterRow row;
      row.index = parse_int(tok[1], line_no);
      row.shape.issue_width = parse_int(tok[2], line_no);
      row.shape.mul_slot_mask =
          static_cast<std::uint32_t>(parse_u64(tok[3], line_no));
      row.shape.mem_slot_mask =
          static_cast<std::uint32_t>(parse_u64(tok[4], line_no));
      row.shape.branch_slot_mask =
          static_cast<std::uint32_t>(parse_u64(tok[5], line_no));
      row.line_no = line_no;
      rows.push_back(row);
    } else if (key == "alu_latency") {
      need(1, "a latency");
      d.machine.alu_latency = parse_int(tok[1], line_no);
    } else if (key == "mul_latency") {
      need(1, "a latency");
      d.machine.mul_latency = parse_int(tok[1], line_no);
    } else if (key == "mem_latency") {
      need(1, "a latency");
      d.machine.mem_latency = parse_int(tok[1], line_no);
    } else if (key == "taken_branch_penalty") {
      need(1, "a cycle count");
      d.machine.taken_branch_penalty = parse_int(tok[1], line_no);
    } else if (key == "icache") {
      d.mem.icache = parse_cache(tok, line_no);
    } else if (key == "dcache") {
      d.mem.dcache = parse_cache(tok, line_no);
    } else if (key == "l2") {
      d.mem.l2 = parse_cache(tok, line_no);
      d.mem.has_l2 = true;
    } else if (key == "cache_sharing") {
      need(1, "'shared' or 'private'");
      if (tok[1] == "shared") {
        d.mem.sharing = CacheSharing::kShared;
      } else if (tok[1] == "private") {
        d.mem.sharing = CacheSharing::kPrivate;
      } else {
        CVMT_CHECK_MSG(false, at(line_no) + "unknown cache sharing '" +
                                  tok[1] + "' (shared|private)");
      }
    } else if (key == "perfect_memory") {
      need(1, "0 or 1");
      d.mem.perfect = parse_u64(tok[1], line_no) != 0;
    } else if (key == "dcache_banks") {
      need(1, "a bank count");
      d.mem.dcache_banks = parse_int(tok[1], line_no);
    } else if (key == "bank_conflict_penalty") {
      need(1, "a cycle count");
      d.mem.bank_conflict_penalty = parse_int(tok[1], line_no);
    } else if (key == "switch_policy") {
      need(1, "'random', 'prestall' or 'poststall'");
      CVMT_CHECK_MSG(switch_policy_from_string(tok[1], d.switch_policy),
                     at(line_no) + "unknown switch policy '" + tok[1] +
                         "' (random|prestall|poststall)");
    } else {
      CVMT_CHECK_MSG(false, at(line_no) + "unknown key '" + key + "'");
    }
  }

  if (!rows.empty()) {
    CVMT_CHECK_MSG(flat_shape_line == 0,
                   at(flat_shape_line == 0 ? rows[0].line_no
                                           : flat_shape_line) +
                       "'cluster' rows cannot be mixed with flat "
                       "issue/*_slots keys");
    d.machine.heterogeneous = true;
    std::array<bool, kMaxClusters> have{};
    for (const ClusterRow& row : rows) {
      CVMT_CHECK_MSG(row.index >= 0 && row.index < d.machine.num_clusters,
                     at(row.line_no) + "cluster index " +
                         std::to_string(row.index) + " out of range (0.." +
                         std::to_string(d.machine.num_clusters - 1) + ")");
      CVMT_CHECK_MSG(!have[static_cast<std::size_t>(row.index)],
                     at(row.line_no) + "duplicate cluster index " +
                         std::to_string(row.index));
      have[static_cast<std::size_t>(row.index)] = true;
      d.machine.per_cluster[static_cast<std::size_t>(row.index)] =
          row.shape;
    }
    for (int c = 0; c < d.machine.num_clusters; ++c)
      CVMT_CHECK_MSG(have[static_cast<std::size_t>(c)],
                     "missing 'cluster " + std::to_string(c) +
                         "' row (clusters = " +
                         std::to_string(d.machine.num_clusters) + ")");
    // Mirror heterogeneous_of(): keep the ignored flat width coherent.
    d.machine.issue_per_cluster = d.machine.max_issue_per_cluster();
  }

  d.machine.validate();
  d.mem.validate();
  return d;
}

MachineDescription load_machine_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CVMT_CHECK_MSG(in.good(), "cannot read machine file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_machine_file(text.str());
}

std::string serialize_machine(const MachineDescription& desc) {
  const MachineConfig& m = desc.machine;
  std::ostringstream os;
  os << "# cvmt machine description\n";
  os << "name " << desc.name << "\n";
  os << "clusters " << m.num_clusters << "\n";
  if (m.heterogeneous) {
    for (int c = 0; c < m.num_clusters; ++c) {
      const ClusterShape& s = m.per_cluster[static_cast<std::size_t>(c)];
      os << "cluster " << c << ' ' << s.issue_width << ' '
         << hex(s.mul_slot_mask) << ' ' << hex(s.mem_slot_mask) << ' '
         << hex(s.branch_slot_mask) << "\n";
    }
  } else {
    os << "issue " << m.issue_per_cluster << "\n";
    os << "mul_slots " << hex(m.mul_slot_mask) << "\n";
    os << "mem_slots " << hex(m.mem_slot_mask) << "\n";
    os << "branch_slots " << hex(m.branch_slot_mask) << "\n";
  }
  os << "alu_latency " << m.alu_latency << "\n";
  os << "mul_latency " << m.mul_latency << "\n";
  os << "mem_latency " << m.mem_latency << "\n";
  os << "taken_branch_penalty " << m.taken_branch_penalty << "\n";
  emit_cache(os, "icache", desc.mem.icache);
  emit_cache(os, "dcache", desc.mem.dcache);
  if (desc.mem.has_l2) emit_cache(os, "l2", desc.mem.l2);
  os << "cache_sharing "
     << (desc.mem.sharing == CacheSharing::kShared ? "shared" : "private")
     << "\n";
  os << "perfect_memory " << (desc.mem.perfect ? 1 : 0) << "\n";
  os << "dcache_banks " << desc.mem.dcache_banks << "\n";
  os << "bank_conflict_penalty " << desc.mem.bank_conflict_penalty << "\n";
  os << "switch_policy " << to_string(desc.switch_policy) << "\n";
  return os.str();
}

std::vector<std::string> builtin_machine_names() {
  return {"vex4x4", "vex4x2", "het4422", "l2banked", "prestall",
          "poststall"};
}

bool find_builtin_machine(std::string_view name, MachineDescription& out) {
  if (name == "vex4x4") {
    out = MachineDescription{};
  } else if (name == "vex4x2") {
    MachineDescription d;
    d.name = "vex4x2";
    d.machine = MachineConfig::vex4x2();
    out = d;
  } else if (name == "het4422") {
    // Two full-width VEX clusters plus two narrow helper clusters; the
    // last cluster has no multiplier at all (capability lives elsewhere).
    MachineDescription d;
    d.name = "het4422";
    const ClusterShape shapes[4] = {
        {4, 0b0011, 0b0100, 0b1000},
        {4, 0b0011, 0b0100, 0b1000},
        {2, 0b01, 0b10, 0b10},
        {2, 0b00, 0b10, 0b10},
    };
    d.machine = MachineConfig::heterogeneous_of(shapes, 4);
    out = d;
  } else if (name == "l2banked") {
    // vex4x4 with a 256KB unified L2 and a 4-banked DCache.
    MachineDescription d;
    d.name = "l2banked";
    d.mem.has_l2 = true;
    d.mem.l2 = CacheConfig{256 * 1024, 64, 8, 80};
    d.mem.dcache_banks = 4;
    d.mem.bank_conflict_penalty = 2;
    out = d;
  } else if (name == "prestall") {
    MachineDescription d;
    d.name = "prestall";
    d.switch_policy = SwitchPolicyKind::kPrestall;
    out = d;
  } else if (name == "poststall") {
    MachineDescription d;
    d.name = "poststall";
    d.switch_policy = SwitchPolicyKind::kPoststall;
    out = d;
  } else {
    return false;
  }
  return true;
}

MachineDescription resolve_machine(const std::string& spec) {
  MachineDescription d;
  if (find_builtin_machine(spec, d)) return d;
  std::ifstream probe(spec);
  CVMT_CHECK_MSG(probe.good(),
                 "unknown machine '" + spec +
                     "': not a built-in machine and not a readable "
                     ".machine file");
  return load_machine_file(spec);
}

}  // namespace cvmt
