// Machine description files: a complete machine — cluster topology,
// per-cluster slot capabilities, latencies, cache hierarchy and thread-
// switch policy — as data, not code.
//
// The format is simtrax-style `KEY value...` lines (one setting per line,
// `#` starts a comment). Every key is optional and defaults to the paper's
// vex4x4 evaluation machine, so a file only states its deltas; unknown or
// duplicate keys are hard errors with line numbers. Heterogeneous machines
// replace the flat `issue`/`*_slots` keys with one `cluster` row per
// cluster. serialize_machine() emits a canonical form that parses back to
// a value-equal description (round-trip pinned by tests), and the built-in
// machines are exactly the parsed equivalents of the files under
// examples/machines/ — that is the bit-identity contract of DESIGN.md §9.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "isa/machine_config.hpp"
#include "mem/memory_system.hpp"
#include "sim/switch_policy.hpp"

namespace cvmt {

/// Everything a `.machine` file describes.
struct MachineDescription {
  std::string name = "vex4x4";
  MachineConfig machine = MachineConfig::vex4x4();
  MemorySystemConfig mem;
  SwitchPolicyKind switch_policy = SwitchPolicyKind::kRandomTimeslice;

  [[nodiscard]] friend bool operator==(const MachineDescription&,
                                       const MachineDescription&) = default;
};

/// Parses a machine description from file text. Throws CheckError with a
/// line-numbered message on syntax errors, unknown/duplicate keys, or a
/// description that fails validate().
[[nodiscard]] MachineDescription parse_machine_file(std::string_view text);

/// Reads and parses `path`. Throws CheckError if the file is unreadable.
[[nodiscard]] MachineDescription load_machine_file(const std::string& path);

/// Canonical file form of `desc`; parse_machine_file(serialize_machine(d))
/// is value-equal to `d`.
[[nodiscard]] std::string serialize_machine(const MachineDescription& desc);

/// Names of the built-in machines, in listing order.
[[nodiscard]] std::vector<std::string> builtin_machine_names();

/// The built-in machine called `name`, or nullptr-equivalent: returns
/// false and leaves `out` untouched when the name is unknown.
[[nodiscard]] bool find_builtin_machine(std::string_view name,
                                        MachineDescription& out);

/// Resolves a --machine/CVMT_MACHINE spec: a built-in machine name, or
/// else a path to a `.machine` file. Throws CheckError when the spec is
/// neither.
[[nodiscard]] MachineDescription resolve_machine(const std::string& spec);

}  // namespace cvmt
