// A single VLIW operation (syllable).
#pragma once

#include <cstdint>

#include "isa/op_kind.hpp"

namespace cvmt {

/// One operation inside a VLIW instruction. Since the simulator is
/// trace-driven, only the fields with timing significance are modelled:
/// placement (cluster/slot), kind, the effective address of memory ops and
/// the resolved direction of branches.
struct Operation {
  OpKind kind = OpKind::kAlu;
  std::uint8_t cluster = 0;
  std::uint8_t slot = 0;
  /// Branches only: true if the branch is taken (the trace resolves
  /// direction; the machine has no predictor, so taken costs the squash
  /// penalty).
  bool taken = false;
  /// Loads/stores only: byte address fed to the DCache model.
  std::uint64_t addr = 0;

  friend constexpr bool operator==(const Operation&,
                                   const Operation&) = default;
};

/// Convenience constructors used heavily by tests and the trace generator.
[[nodiscard]] constexpr Operation make_alu(int cluster, int slot) {
  return {OpKind::kAlu, static_cast<std::uint8_t>(cluster),
          static_cast<std::uint8_t>(slot), false, 0};
}
[[nodiscard]] constexpr Operation make_mul(int cluster, int slot) {
  return {OpKind::kMul, static_cast<std::uint8_t>(cluster),
          static_cast<std::uint8_t>(slot), false, 0};
}
[[nodiscard]] constexpr Operation make_load(int cluster, int slot,
                                            std::uint64_t addr) {
  return {OpKind::kLoad, static_cast<std::uint8_t>(cluster),
          static_cast<std::uint8_t>(slot), false, addr};
}
[[nodiscard]] constexpr Operation make_store(int cluster, int slot,
                                             std::uint64_t addr) {
  return {OpKind::kStore, static_cast<std::uint8_t>(cluster),
          static_cast<std::uint8_t>(slot), false, addr};
}
[[nodiscard]] constexpr Operation make_branch(int cluster, int slot,
                                              bool taken) {
  return {OpKind::kBranch, static_cast<std::uint8_t>(cluster),
          static_cast<std::uint8_t>(slot), taken, 0};
}

}  // namespace cvmt
