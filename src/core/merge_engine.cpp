#include "core/merge_engine.hpp"

#include <bit>
#include <sstream>

namespace cvmt {
namespace {

/// Preorder walk collecting one stats slot per merge block.
void collect_nodes(const Scheme::Node& node,
                   std::vector<MergeNodeStats>& out) {
  if (node.is_leaf()) return;
  std::ostringstream label;
  label << to_char(node.kind) << (node.parallel ? "P" : "") << '/'
        << node.children.size() << "in";
  out.push_back({label.str(), node.kind, 0, 0});
  for (const auto& child : node.children) collect_nodes(child, out);
}

}  // namespace

MergeEngine::MergeEngine(Scheme scheme, MachineConfig config,
                         PriorityPolicy policy)
    : scheme_(std::move(scheme)),
      config_(config),
      policy_(policy),
      issued_histogram_(static_cast<std::size_t>(scheme_.num_threads()) + 1) {
  config_.validate();
  collect_nodes(scheme_.root(), node_stats_);
}

MergeEngine::EvalResult MergeEngine::eval(
    const Scheme::Node& node, std::span<const Footprint* const> candidates,
    std::size_t& node_id) {
  if (node.is_leaf()) {
    // Rotation maps priority port p to hardware thread (p + rotation) % N.
    const int n = scheme_.num_threads();
    const int tid = (node.port + rotation_) % n;
    const Footprint* fp = candidates[static_cast<std::size_t>(tid)];
    if (fp == nullptr) return {};
    return {*fp, 1u << tid};
  }

  MergeNodeStats& stats = node_stats_[node_id++];
  EvalResult acc;
  bool have_acc = false;
  for (const auto& child : node.children) {
    EvalResult r = eval(child, candidates, node_id);
    if (r.mask == 0) continue;  // nothing offered on this input
    if (!have_acc) {
      acc = r;  // highest-priority input seeds the packet unconditionally
      have_acc = true;
      continue;
    }
    ++stats.attempts;
    bool ok = false;
    switch (node.kind) {
      case MergeKind::kCsmt:
        ok = Footprint::csmt_compatible(acc.fp, r.fp);
        break;
      case MergeKind::kSmt:
        ok = Footprint::smt_compatible(acc.fp, r.fp, config_);
        break;
      case MergeKind::kSelect:
        ok = false;  // never merges: the first offering input wins
        break;
    }
    if (ok) {
      acc.fp.merge_with(r.fp, config_);
      acc.mask |= r.mask;
    } else {
      // The whole input packet is dropped: if it was itself a merged group
      // (tree schemes), every thread in it stalls this cycle (§4.1).
      ++stats.rejects;
    }
  }
  return acc;
}

MergeDecision MergeEngine::select(
    std::span<const Footprint* const> candidates) {
  CVMT_CHECK_MSG(
      candidates.size() == static_cast<std::size_t>(scheme_.num_threads()),
      "candidate count must match scheme thread count");
  std::size_t node_id = 0;
  const EvalResult r = eval(scheme_.root(), candidates, node_id);
  CVMT_DCHECK(node_id == node_stats_.size());

  MergeDecision d;
  d.issued_mask = r.mask;
  d.packet = r.fp;
  d.num_issued = std::popcount(r.mask);
  issued_histogram_.add(static_cast<std::size_t>(d.num_issued));
  ++cycles_;
  switch (policy_) {
    case PriorityPolicy::kRoundRobin:
      rotation_ = (rotation_ + 1) % scheme_.num_threads();
      break;
    case PriorityPolicy::kStickyOnStall: {
      // Keep the current leader while it offers instructions; hand the
      // lead to the next thread once it stalls (BMT's switch-on-event).
      const int leader = rotation_ % scheme_.num_threads();
      if (candidates[static_cast<std::size_t>(leader)] == nullptr)
        rotation_ = (rotation_ + 1) % scheme_.num_threads();
      break;
    }
    case PriorityPolicy::kFixed:
      break;
  }
  return d;
}

}  // namespace cvmt
