#include "core/merge_engine.hpp"

#include <bit>

namespace cvmt {

MergeEngine::MergeEngine(Scheme scheme, MachineConfig config,
                         PriorityPolicy policy, StatsLevel stats_level,
                         EvalMode eval_mode)
    // Reading `scheme` while its copy is passed to the other parameter is
    // fine: make_shared only reads the source, the copy does not modify it.
    : MergeEngine(scheme, std::make_shared<const MergePlan>(scheme, config),
                  config, policy, stats_level, eval_mode) {}

MergeEngine::MergeEngine(Scheme scheme, std::shared_ptr<const MergePlan> plan,
                         MachineConfig config, PriorityPolicy policy,
                         StatsLevel stats_level, EvalMode eval_mode)
    : scheme_(std::move(scheme)),
      config_(config),
      policy_(policy),
      stats_level_(stats_level),
      eval_mode_(eval_mode),
      plan_(std::move(plan)),
      issued_histogram_(static_cast<std::size_t>(scheme_.num_threads()) + 1) {
  config_.validate();
  CVMT_CHECK_MSG(plan_ != nullptr &&
                     plan_->num_threads() == scheme_.num_threads() &&
                     plan_->machine() == config_,
                 "merge plan was compiled for a different scheme or machine");
  scratch_ = plan_->make_scratch();
  node_stats_ = plan_->make_stats();
}

void MergeEngine::reset(PriorityPolicy policy, StatsLevel stats_level,
                        EvalMode eval_mode) {
  policy_ = policy;
  stats_level_ = stats_level;
  eval_mode_ = eval_mode;
  rotation_ = 0;
  cycles_ = 0;
  issued_histogram_.reset();
  for (MergeNodeStats& s : node_stats_) {
    s.attempts = 0;
    s.rejects = 0;
  }
}

MergeEngine::EvalResult MergeEngine::eval_tree(
    const Scheme::Node& node, std::span<const Footprint* const> candidates,
    std::size_t& node_id, bool count_stats) {
  if (node.is_leaf()) {
    // Rotation maps priority port p to hardware thread (p + rotation) % N.
    const int n = scheme_.num_threads();
    const int tid = (node.port + rotation_) % n;
    const Footprint* fp = candidates[static_cast<std::size_t>(tid)];
    if (fp == nullptr) return {};
    return {*fp, 1u << tid};
  }

  MergeNodeStats& stats = node_stats_[node_id++];
  EvalResult acc;
  bool have_acc = false;
  for (const auto& child : node.children) {
    EvalResult r = eval_tree(child, candidates, node_id, count_stats);
    if (r.mask == 0) continue;  // nothing offered on this input
    if (!have_acc) {
      acc = r;  // highest-priority input seeds the packet unconditionally
      have_acc = true;
      continue;
    }
    if (count_stats) ++stats.attempts;
    bool ok = false;
    switch (node.kind) {
      case MergeKind::kCsmt:
        ok = Footprint::csmt_compatible(acc.fp, r.fp);
        break;
      case MergeKind::kSmt:
        ok = Footprint::smt_compatible(acc.fp, r.fp, config_);
        break;
      case MergeKind::kSelect:
        ok = false;  // never merges: the first offering input wins
        break;
    }
    if (ok) {
      acc.fp.merge_with(r.fp, config_);
      acc.mask |= r.mask;
    } else {
      // The whole input packet is dropped: if it was itself a merged group
      // (tree schemes), every thread in it stalls this cycle (§4.1).
      if (count_stats) ++stats.rejects;
    }
  }
  return acc;
}

MergeDecision MergeEngine::select_tree(
    std::span<const Footprint* const> candidates) {
  CVMT_CHECK_MSG(
      candidates.size() == static_cast<std::size_t>(scheme_.num_threads()),
      "candidate count must match scheme thread count");
  std::size_t node_id = 0;
  const EvalResult r =
      eval_tree(scheme_.root(), candidates, node_id,
                stats_level_ == StatsLevel::kFull);
  CVMT_DCHECK(node_id == node_stats_.size());
  MergeDecision d;
  d.issued_mask = r.mask;
  d.packet = r.fp;
  d.num_issued = std::popcount(r.mask);
  finish_cycle(d.num_issued, candidates);
  return d;
}

void MergeEngine::finish_cycle(
    int num_issued, std::span<const Footprint* const> candidates) {
  if (stats_level_ == StatsLevel::kFull)
    issued_histogram_.add(static_cast<std::size_t>(num_issued));
  ++cycles_;
  // rotation_ is kept in [0, n) so the wrap is a compare, not a modulo.
  const int n = scheme_.num_threads();
  switch (policy_) {
    case PriorityPolicy::kRoundRobin:
      rotation_ = rotation_ + 1 == n ? 0 : rotation_ + 1;
      break;
    case PriorityPolicy::kStickyOnStall:
      // Keep the current leader while it offers instructions; hand the
      // lead to the next thread once it stalls (BMT's switch-on-event).
      if (candidates[static_cast<std::size_t>(rotation_)] == nullptr)
        rotation_ = rotation_ + 1 == n ? 0 : rotation_ + 1;
      break;
    case PriorityPolicy::kFixed:
      break;
  }
}

}  // namespace cvmt
