// Cycle-by-cycle evaluation of a merging scheme.
//
// Each cycle the merge control receives at most one candidate instruction
// per hardware thread (stalled threads present none) and greedily selects a
// subset to issue as one execution packet, walking the scheme tree in
// priority order. Priority rotates round-robin across threads for fairness,
// as in the CSMT base design.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "isa/footprint.hpp"
#include "support/stats.hpp"

namespace cvmt {

/// How thread-to-priority-port assignment evolves over time.
enum class PriorityPolicy : std::uint8_t {
  kRoundRobin,     ///< rotate by one port every cycle (default, fair)
  kFixed,          ///< thread i always has priority i (starvation-prone)
  kStickyOnStall,  ///< keep the leader until it stalls (BMT-style: with an
                   ///< IMT select scheme this is Block MultiThreading)
};

/// Outcome of one merge cycle.
struct MergeDecision {
  /// Bit t set <=> hardware thread t issues its candidate this cycle.
  std::uint32_t issued_mask = 0;
  /// Resource footprint of the final execution packet.
  Footprint packet;
  /// Number of threads issued (popcount of issued_mask).
  int num_issued = 0;
};

/// Attempt/reject counters for one merge block of the scheme.
struct MergeNodeStats {
  std::string label;          ///< canonical sub-scheme, e.g. "S(0,1)"
  MergeKind kind = MergeKind::kCsmt;
  std::uint64_t attempts = 0;  ///< pairwise checks with both sides non-empty
  std::uint64_t rejects = 0;   ///< checks that failed (input dropped)

  [[nodiscard]] double reject_rate() const {
    return attempts ? static_cast<double>(rejects) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
};

/// Evaluates one scheme against per-cycle candidates and keeps statistics.
class MergeEngine {
 public:
  MergeEngine(Scheme scheme, MachineConfig config,
              PriorityPolicy policy = PriorityPolicy::kRoundRobin);

  /// Selects the threads to issue this cycle. `candidates` is indexed by
  /// hardware thread id; a null entry means the thread has nothing to issue
  /// (stalled or idle). Size must equal scheme().num_threads().
  MergeDecision select(std::span<const Footprint* const> candidates);

  /// Resets the rotation (not the statistics); used when re-seeding runs.
  void reset_rotation() { rotation_ = 0; }

  [[nodiscard]] const Scheme& scheme() const { return scheme_; }
  [[nodiscard]] const MachineConfig& machine() const { return config_; }
  [[nodiscard]] PriorityPolicy policy() const { return policy_; }

  /// Per-merge-block statistics, in preorder over the scheme tree.
  [[nodiscard]] const std::vector<MergeNodeStats>& node_stats() const {
    return node_stats_;
  }
  /// Distribution of threads issued per cycle (bucket k = k threads).
  [[nodiscard]] const Histogram& issued_histogram() const {
    return issued_histogram_;
  }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  struct EvalResult {
    Footprint fp;
    std::uint32_t mask = 0;
  };

  EvalResult eval(const Scheme::Node& node,
                  std::span<const Footprint* const> candidates,
                  std::size_t& node_id);

  Scheme scheme_;
  MachineConfig config_;
  PriorityPolicy policy_;
  int rotation_ = 0;
  std::vector<MergeNodeStats> node_stats_;
  Histogram issued_histogram_;
  std::uint64_t cycles_ = 0;
};

}  // namespace cvmt
