// Cycle-by-cycle evaluation of a merging scheme.
//
// Each cycle the merge control receives at most one candidate instruction
// per hardware thread (stalled threads present none) and greedily selects a
// subset to issue as one execution packet. Priority rotates round-robin
// across threads for fairness, as in the CSMT base design.
//
// The engine is a thin stateful wrapper over an immutable MergePlan: the
// plan owns the flattened scheme and the per-rotation permutation tables;
// the engine owns the rotation index, the priority policy and the
// statistics. The original recursive tree walk is retained as
// EvalMode::kTreeReference — bit-identical by construction, used by the
// equivalence tests and as the baseline of bench_cycle_loop.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/merge_plan.hpp"
#include "core/scheme.hpp"
#include "isa/footprint.hpp"
#include "support/stats.hpp"

namespace cvmt {

/// How thread-to-priority-port assignment evolves over time.
enum class PriorityPolicy : std::uint8_t {
  kRoundRobin,     ///< rotate by one port every cycle (default, fair)
  kFixed,          ///< thread i always has priority i (starvation-prone)
  kStickyOnStall,  ///< keep the leader until it stalls (BMT-style: with an
                   ///< IMT select scheme this is Block MultiThreading)
};

/// Which evaluator answers select(). Decisions are bit-identical; only
/// speed differs. kTreeReference exists for validation and benchmarking.
enum class EvalMode : std::uint8_t {
  kPlan,             ///< flattened MergePlan (default, hot path)
  kPlanSpecialized,  ///< MergePlan shape-specialized fast paths (uniform
                     ///< chains unroll; other shapes fall back to kPlan's
                     ///< evaluator — see MergePlan::has_fixed_path())
  kTreeReference,    ///< recursive Scheme::Node walk (reference)
};

/// Outcome of one merge cycle.
struct MergeDecision {
  /// Bit t set <=> hardware thread t issues its candidate this cycle.
  std::uint32_t issued_mask = 0;
  /// Resource footprint of the final execution packet.
  Footprint packet;
  /// Number of threads issued (popcount of issued_mask).
  int num_issued = 0;
};

/// Evaluates one scheme against per-cycle candidates and keeps statistics.
class MergeEngine {
 public:
  MergeEngine(Scheme scheme, MachineConfig config,
              PriorityPolicy policy = PriorityPolicy::kRoundRobin,
              StatsLevel stats_level = StatsLevel::kFull,
              EvalMode eval_mode = EvalMode::kPlan);

  /// Construction from a pre-compiled plan (the session layer's
  /// CompiledScheme shares one immutable MergePlan across every engine for
  /// the same scheme x machine, skipping the per-engine compilation).
  /// `plan` must have been built for exactly this scheme and machine.
  MergeEngine(Scheme scheme, std::shared_ptr<const MergePlan> plan,
              MachineConfig config,
              PriorityPolicy policy = PriorityPolicy::kRoundRobin,
              StatsLevel stats_level = StatsLevel::kFull,
              EvalMode eval_mode = EvalMode::kPlan);

  /// Restores the freshly-constructed state under (possibly new) policy
  /// knobs: rotation and cycle count rewound, histogram and node counters
  /// zeroed (labels kept — they come from the immutable plan). Bit-identical
  /// to building a new engine with the same scheme/plan/machine, but
  /// without reallocating the scratch, stats or histogram buffers.
  void reset(PriorityPolicy policy, StatsLevel stats_level,
             EvalMode eval_mode);

  /// Selects the threads to issue this cycle. `candidates` is indexed by
  /// hardware thread id; a null entry means the thread has nothing to issue
  /// (stalled or idle). Size must equal scheme().num_threads().
  /// Defined inline below: this is the per-cycle entry point of the
  /// simulator and the wrapper (histogram, rotation policy) should fold
  /// into the caller's loop.
  MergeDecision select(std::span<const Footprint* const> candidates);

  /// select() for the cycle loop, which counted the offers while
  /// gathering them and never reads the merged packet: skips the plan's
  /// own offer scan and all packet copies, and decides single-offer
  /// cycles without entering the plan at all — a lone offer always issues
  /// alone and moves no merge counter. `only_offer` is the offering
  /// thread when `num_offers` == 1 (ignored otherwise). Decisions and
  /// statistics are identical to select(). The tree-reference mode
  /// ignores the hints and takes its usual full walk.
  std::uint32_t select_mask_gathered(
      std::span<const Footprint* const> candidates, int num_offers,
      int only_offer);

  /// Resets the priority rotation to its initial state (thread i on
  /// priority port i); used when re-seeding runs. This rewinds only the
  /// rotation *index* — the plan's per-rotation permutation tables are
  /// immutable — and leaves all statistics in place, so a reset engine
  /// replays an identical candidate stream into identical decisions.
  void reset_rotation() { rotation_ = 0; }

  [[nodiscard]] const Scheme& scheme() const { return scheme_; }
  [[nodiscard]] const MachineConfig& machine() const { return config_; }
  [[nodiscard]] PriorityPolicy policy() const { return policy_; }
  [[nodiscard]] StatsLevel stats_level() const { return stats_level_; }
  [[nodiscard]] EvalMode eval_mode() const { return eval_mode_; }
  [[nodiscard]] const MergePlan& plan() const { return *plan_; }
  /// The shared compiled plan (see the CompiledScheme artifact).
  [[nodiscard]] const std::shared_ptr<const MergePlan>& shared_plan() const {
    return plan_;
  }

  /// Per-merge-block statistics, in preorder over the scheme tree, labelled
  /// with each block's canonical sub-scheme (e.g. "S(0,1)"). Under
  /// StatsLevel::kFast the labels are present but the counters stay zero.
  [[nodiscard]] const std::vector<MergeNodeStats>& node_stats() const {
    return node_stats_;
  }
  /// Distribution of threads issued per cycle (bucket k = k threads).
  /// Under StatsLevel::kFast the histogram stays empty.
  [[nodiscard]] const Histogram& issued_histogram() const {
    return issued_histogram_;
  }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  struct EvalResult {
    Footprint fp;
    std::uint32_t mask = 0;
  };

  /// Reference recursive evaluator (the pre-plan implementation).
  EvalResult eval_tree(const Scheme::Node& node,
                       std::span<const Footprint* const> candidates,
                       std::size_t& node_id, bool count_stats);

  Scheme scheme_;
  MachineConfig config_;
  PriorityPolicy policy_;
  StatsLevel stats_level_;
  EvalMode eval_mode_;
  /// Immutable and shareable: engines for the same scheme x machine (e.g.
  /// a cached CompiledScheme's instances) point at one plan.
  std::shared_ptr<const MergePlan> plan_;
  /// Reusable frame stack for plan_.select (constructed once; see
  /// MergePlan::make_scratch).
  std::vector<MergePlan::Frame> scratch_;
  int rotation_ = 0;
  std::vector<MergeNodeStats> node_stats_;
  Histogram issued_histogram_;
  std::uint64_t cycles_ = 0;

  /// Out-of-line pieces of select(): the reference evaluator and the
  /// decision bookkeeping.
  MergeDecision select_tree(std::span<const Footprint* const> candidates);

  /// Post-decision bookkeeping shared by both evaluators: histogram (full
  /// stats only), cycle count and the priority-rotation policy update.
  /// Private: select()/select_mask_gathered() call it exactly once per
  /// decision; a second call would double-advance the rotation.
  void finish_cycle(int num_issued,
                    std::span<const Footprint* const> candidates);
};

inline MergeDecision MergeEngine::select(
    std::span<const Footprint* const> candidates) {
  if (eval_mode_ == EvalMode::kTreeReference) return select_tree(candidates);
  CVMT_CHECK_MSG(
      candidates.size() == static_cast<std::size_t>(scheme_.num_threads()),
      "candidate count must match scheme thread count");
  MergeNodeStats* stats =
      stats_level_ == StatsLevel::kFull ? node_stats_.data() : nullptr;
  const MergePlan::Eval r =
      eval_mode_ == EvalMode::kPlanSpecialized
          ? plan_->select_specialized(candidates, rotation_, scratch_.data(),
                                      stats)
          : plan_->select(candidates, rotation_, scratch_.data(), stats);
  MergeDecision d;
  d.issued_mask = r.issued_mask;
  d.packet = r.packet;
  d.num_issued = std::popcount(r.issued_mask);
  finish_cycle(d.num_issued, candidates);
  return d;
}

inline std::uint32_t MergeEngine::select_mask_gathered(
    std::span<const Footprint* const> candidates, int num_offers,
    int only_offer) {
  if (eval_mode_ == EvalMode::kTreeReference)
    return select_tree(candidates).issued_mask;
  CVMT_CHECK_MSG(
      candidates.size() == static_cast<std::size_t>(scheme_.num_threads()),
      "candidate count must match scheme thread count");
  std::uint32_t mask = 0;
  if (num_offers == 1) {
    // A lone offer always issues alone: the first non-empty input seeds
    // its block unconditionally and no merge check fires anywhere.
    mask = 1u << static_cast<unsigned>(only_offer);
  } else if (num_offers > 1) {
    MergeNodeStats* stats =
        stats_level_ == StatsLevel::kFull ? node_stats_.data() : nullptr;
    mask = (eval_mode_ == EvalMode::kPlanSpecialized
                ? plan_->select_multi_specialized(candidates, rotation_,
                                                  scratch_.data(), stats)
                : plan_->select_multi(candidates, rotation_,
                                      scratch_.data(), stats))
               .issued_mask;
  }
  finish_cycle(std::popcount(mask), candidates);
  return mask;
}

}  // namespace cvmt
