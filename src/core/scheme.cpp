#include "core/scheme.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/check.hpp"
#include "support/string_util.hpp"

namespace cvmt {
namespace {

const char* kind_name(MergeKind k) {
  switch (k) {
    case MergeKind::kSmt: return "SMT";
    case MergeKind::kCsmt: return "CSMT";
    case MergeKind::kSelect: return "select";
  }
  return "?";
}

/// Collects leaf ports, checking structural rules along the way. Returns
/// the first defect found (empty string = subtree well formed).
std::string validate_node(const Scheme::Node& node, std::vector<int>& ports) {
  if (node.is_leaf()) {
    if (!node.children.empty())
      return "leaf (thread " + std::to_string(node.port) +
             ") must not have children";
    ports.push_back(node.port);
    return {};
  }
  if (node.children.empty())
    return std::string(kind_name(node.kind)) +
           " block has no inputs (empty merge arm)";
  if (node.children.size() == 1)
    return std::string(kind_name(node.kind)) +
           " block has a single input; merge blocks need at least two";
  if (node.parallel && node.kind != MergeKind::kCsmt)
    return "parallel implementation exists only for CSMT (paper: parallel "
           "SMT is prohibitively expensive; select blocks are single-level "
           "anyway)";
  for (const auto& child : node.children) {
    std::string err = validate_node(child, ports);
    if (!err.empty()) return err;
  }
  return {};
}

Scheme::Node leaf(int port) {
  Scheme::Node n;
  n.port = port;
  return n;
}

Scheme::Node block(MergeKind kind, std::vector<Scheme::Node> children,
                   bool parallel = false) {
  Scheme::Node n;
  n.kind = kind;
  n.parallel = parallel;
  n.children = std::move(children);
  return n;
}

struct Token {
  MergeKind kind;
  int width;  ///< 2 for a plain letter, k for a subscripted block like C3
};

/// Tokenizes the part after the level digit: "SC3" -> [S/2, C/3].
std::vector<Token> tokenize(std::string_view body) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < body.size()) {
    const char c = body[i++];
    CVMT_CHECK_MSG(c == 'S' || c == 'C',
                   "scheme letter must be S or C: " + std::string(body));
    MergeKind kind = c == 'S' ? MergeKind::kSmt : MergeKind::kCsmt;
    int width = 2;
    if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
      width = body[i++] - '0';
      CVMT_CHECK_MSG(width >= 2, "block subscript must be >= 2");
      CVMT_CHECK_MSG(kind == MergeKind::kCsmt,
                     "parallel SMT blocks (S_k) are not supported");
    }
    tokens.push_back({kind, width});
  }
  return tokens;
}

/// Recursive-descent parser for the functional syntax
///   expr := ('S' | 'C' | 'CP') '(' expr (',' expr)* ')' | port-number
class FunctionalParser {
 public:
  explicit FunctionalParser(std::string_view text) : text_(text) {}

  Scheme::Node parse() {
    Scheme::Node n = expr();
    skip_ws();
    CVMT_CHECK_MSG(pos_ == text_.size(), "trailing input in scheme");
    return n;
  }

 private:
  Scheme::Node expr() {
    skip_ws();
    CVMT_CHECK_MSG(pos_ < text_.size(), "unexpected end of scheme");
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      int port = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        port = port * 10 + (text_[pos_++] - '0');
      return leaf(port);
    }
    MergeKind kind;
    bool parallel = false;
    if (c == 'S') {
      kind = MergeKind::kSmt;
      ++pos_;
    } else if (c == 'I') {
      kind = MergeKind::kSelect;
      ++pos_;
    } else if (c == 'C') {
      kind = MergeKind::kCsmt;
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == 'P') {
        parallel = true;
        ++pos_;
      }
    } else {
      CVMT_CHECK_MSG(false, std::string("unexpected character '") + c +
                                "' in scheme");
      __builtin_unreachable();
    }
    expect('(');
    std::vector<Scheme::Node> children;
    children.push_back(expr());
    skip_ws();
    while (pos_ < text_.size() && text_[pos_] == ',') {
      ++pos_;
      children.push_back(expr());
      skip_ws();
    }
    expect(')');
    return block(kind, std::move(children), parallel);
  }

  void expect(char c) {
    skip_ws();
    CVMT_CHECK_MSG(pos_ < text_.size() && text_[pos_] == c,
                   std::string("expected '") + c + "' in scheme");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

namespace {

/// Full validation in one walk; on success `num_threads` is the leaf
/// count. Shared by validate() and the constructor.
std::string validate_tree(const Scheme::Node& root, int& num_threads) {
  std::vector<int> ports;
  std::string err = validate_node(root, ports);
  if (!err.empty()) return err;
  // Ports must be exactly {0..N-1}, each used once.
  std::vector<bool> seen(ports.size(), false);
  for (int p : ports) {
    if (p < 0 || static_cast<std::size_t>(p) >= ports.size())
      return "leaf thread ids must be dense 0..N-1: thread " +
             std::to_string(p) + " with " + std::to_string(ports.size()) +
             " leaves";
    if (seen[static_cast<std::size_t>(p)])
      return "duplicate thread id " + std::to_string(p) + " in scheme";
    seen[static_cast<std::size_t>(p)] = true;
  }
  const auto n = static_cast<int>(ports.size());
  if (n < 1 || n > kMaxThreads)
    return "thread count " + std::to_string(n) + " out of range 1.." +
           std::to_string(kMaxThreads);
  num_threads = n;
  return {};
}

}  // namespace

std::string Scheme::validate(const Node& root) {
  int num_threads = 0;
  return validate_tree(root, num_threads);
}

Scheme::Scheme(std::string name, Node root)
    : name_(std::move(name)), root_(std::move(root)) {
  const std::string err = validate_tree(root_, num_threads_);
  CVMT_CHECK_MSG(err.empty(), "malformed scheme tree: " + err);
}

Scheme Scheme::parse(std::string_view text) {
  const std::string s = to_upper(trim(text));
  CVMT_CHECK_MSG(!s.empty(), "empty scheme name");

  if (s.find('(') != std::string::npos) {
    FunctionalParser p(s);
    return Scheme(s, p.parse());
  }

  // A bare port number is the canonical rendering of a single leaf ("0" =
  // the 1-thread scheme), so parse(canonical()) round-trips. Any port
  // other than 0 fails dense-port validation with a clear message; the
  // length cap keeps the accumulation far from signed overflow.
  if (std::all_of(s.begin(), s.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      })) {
    CVMT_CHECK_MSG(s.size() <= 3, "scheme cannot be a bare number: " + s);
    int port = 0;
    for (const char c : s) port = port * 10 + (c - '0');
    return Scheme(s, leaf(port));
  }

  // "IMT<k>": the interleaved-multithreading baseline.
  if (s.rfind("IMT", 0) == 0) {
    int k = 0;
    for (std::size_t i = 3; i < s.size(); ++i) {
      CVMT_CHECK_MSG(std::isdigit(static_cast<unsigned char>(s[i])),
                     "malformed IMT scheme name: " + s);
      k = k * 10 + (s[i] - '0');
    }
    Scheme sch = imt(k);
    return Scheme(s, sch.root());
  }

  // "C<k>": one parallel CSMT block over k threads.
  if (s[0] == 'C' && s.size() >= 2 &&
      std::isdigit(static_cast<unsigned char>(s[1]))) {
    int k = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      CVMT_CHECK_MSG(std::isdigit(static_cast<unsigned char>(s[i])),
                     "malformed parallel scheme name: " + s);
      k = k * 10 + (s[i] - '0');
    }
    Scheme sch = parallel_csmt(k);
    return Scheme(s, sch.root());
  }

  CVMT_CHECK_MSG(std::isdigit(static_cast<unsigned char>(s[0])),
                 "scheme name must start with level count or C<k>: " + s);
  const int levels = s[0] - '0';
  const std::vector<Token> tokens = tokenize(std::string_view(s).substr(1));
  CVMT_CHECK_MSG(static_cast<int>(tokens.size()) == levels,
                 "level digit does not match number of merge blocks: " + s);

  // Paper convention: "2XY" with two plain letters is the balanced tree of
  // Fig 8(l)-(o): X merges (T0,T1) and (T2,T3); Y merges the group results.
  if (levels == 2 && tokens[0].width == 2 && tokens[1].width == 2) {
    Node group_a = block(tokens[0].kind, {leaf(0), leaf(1)});
    Node group_b = block(tokens[0].kind, {leaf(2), leaf(3)});
    std::vector<Node> top;
    top.push_back(std::move(group_a));
    top.push_back(std::move(group_b));
    return Scheme(s, block(tokens[1].kind, std::move(top)));
  }

  // Cascade: the first block merges fresh threads; every later block merges
  // the accumulated packet with fresh threads.
  int next_port = 0;
  Node acc;
  bool have_acc = false;
  for (const Token& t : tokens) {
    std::vector<Node> inputs;
    if (have_acc) inputs.push_back(std::move(acc));
    const int fresh = have_acc ? t.width - 1 : t.width;
    for (int i = 0; i < fresh; ++i) inputs.push_back(leaf(next_port++));
    acc = block(t.kind, std::move(inputs), /*parallel=*/t.width > 2);
    have_acc = true;
  }
  return Scheme(s, std::move(acc));
}

Scheme Scheme::single_thread() { return Scheme("1T", leaf(0)); }

std::vector<Scheme> Scheme::paper_schemes_4t() {
  const char* names[] = {"C4",   "3CCC", "2CC", "1S",   "2SC3", "3CSC",
                         "2C3S", "3CCS", "3SCC", "2CS",  "2SC",  "3SSC",
                         "3SCS", "3CSS", "2SS",  "3SSS"};
  std::vector<Scheme> out;
  out.reserve(std::size(names));
  for (const char* n : names) out.push_back(parse(n));
  return out;
}

Scheme Scheme::cascade(const std::vector<MergeKind>& levels) {
  CVMT_CHECK(!levels.empty());
  std::ostringstream name;
  name << levels.size();
  Node acc = block(levels[0], {leaf(0), leaf(1)});
  name << to_char(levels[0]);
  int next_port = 2;
  for (std::size_t i = 1; i < levels.size(); ++i) {
    std::vector<Node> inputs;
    inputs.push_back(std::move(acc));
    inputs.push_back(leaf(next_port++));
    acc = block(levels[i], std::move(inputs));
    name << to_char(levels[i]);
  }
  return Scheme(name.str(), std::move(acc));
}

Scheme Scheme::parallel_csmt(int num_threads) {
  CVMT_CHECK(num_threads >= 2 && num_threads <= kMaxThreads);
  std::vector<Node> inputs;
  inputs.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) inputs.push_back(leaf(i));
  return Scheme("C" + std::to_string(num_threads),
                block(MergeKind::kCsmt, std::move(inputs), true));
}

Scheme Scheme::imt(int num_threads) {
  CVMT_CHECK(num_threads >= 2 && num_threads <= kMaxThreads);
  std::vector<Node> inputs;
  inputs.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) inputs.push_back(leaf(i));
  return Scheme("IMT" + std::to_string(num_threads),
                block(MergeKind::kSelect, std::move(inputs)));
}

namespace {
int count_blocks_rec(const Scheme::Node& node, MergeKind kind) {
  if (node.is_leaf()) return 0;
  int n = 0;
  for (const auto& child : node.children) n += count_blocks_rec(child, kind);
  if (node.kind == kind)
    n += node.parallel ? 1 : static_cast<int>(node.children.size()) - 1;
  return n;
}

void canonical_rec(const Scheme::Node& node, std::ostream& os) {
  if (node.is_leaf()) {
    os << node.port;
    return;
  }
  os << to_char(node.kind) << (node.parallel ? "P" : "") << '(';
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i) os << ',';
    canonical_rec(node.children[i], os);
  }
  os << ')';
}
}  // namespace

int Scheme::count_blocks(MergeKind kind) const {
  return count_blocks_rec(root_, kind);
}

std::string Scheme::canonical() const { return canonical(root_); }

std::string Scheme::canonical(const Node& node) {
  std::ostringstream os;
  canonical_rec(node, os);
  return os.str();
}

}  // namespace cvmt
