// Bit-level functional model of the thread-merge-control hardware.
//
// The cost model (src/cost) prices three control structures; this module
// implements their *logic* on packed bit vectors, structured the way the
// hardware is:
//
//  * serial CSMT control — a cascade of conflict-check/select/mask-update
//    stages (Fig 3 + DSD'07 serial design);
//  * parallel CSMT control — every thread subset checked concurrently,
//    then the highest-priority feasible subset granted;
//  * SMT stage feasibility — per-cluster fixed-slot collision and
//    issue-count checks (Fig 2).
//
// Tests prove the serial and parallel selections identical (the paper's
// "functionally equivalent" claim is a theorem here: cluster-disjointness
// is subset-closed, so the greedy cascade computes the lexicographically
// greatest feasible subset, which is exactly what the parallel priority
// grant picks) and both equal the behavioral MergeEngine.
#pragma once

#include <cstdint>
#include <span>

#include "isa/footprint.hpp"
#include "isa/machine_config.hpp"

namespace cvmt::gatesim {

/// One serial CSMT stage: conflict = OR over clusters of (acc AND cand);
/// select = valid AND NOT conflict; acc' = acc OR (cand AND select).
struct CsmtStageOut {
  bool select = false;
  std::uint32_t acc_mask = 0;
};
[[nodiscard]] CsmtStageOut csmt_serial_stage_eval(std::uint32_t acc_mask,
                                                  std::uint32_t cand_mask,
                                                  bool valid);

/// Full serial CSMT control: cascades the stage over candidates in
/// priority order (index 0 highest). `cluster_masks[i]` is thread i's
/// cluster-usage mask; `valid` flags threads offering an instruction.
/// Returns the grant bitmask (bit i set <=> thread i issues).
[[nodiscard]] std::uint32_t csmt_serial_select(
    std::span<const std::uint32_t> cluster_masks,
    std::span<const bool> valid);

/// Parallel CSMT control: checks every subset for pairwise cluster
/// disjointness concurrently and grants the highest-priority feasible
/// subset (priority = lexicographic with thread 0 most significant).
[[nodiscard]] std::uint32_t csmt_parallel_select(
    std::span<const std::uint32_t> cluster_masks,
    std::span<const bool> valid);

/// Packed per-cluster state of an (accumulated) packet as the SMT merge
/// control sees it: fixed-slot occupancy masks and operation counts.
struct SmtPacketState {
  std::uint32_t fixed[kMaxClusters] = {};
  std::uint32_t count[kMaxClusters] = {};

  /// Extracts the state from a behavioural footprint.
  [[nodiscard]] static SmtPacketState of(const Footprint& fp,
                                         const MachineConfig& machine);
};

/// SMT stage feasibility: per cluster, (fixed_a AND fixed_b) == 0 and
/// count_a + count_b <= issue width; AND-reduced over clusters.
[[nodiscard]] bool smt_stage_feasible(const SmtPacketState& a,
                                      const SmtPacketState& b,
                                      const MachineConfig& machine);

/// Merges b into a (OR the fixed masks, add the counts). Caller checks
/// feasibility first, as the hardware's select signal does.
void smt_stage_merge(SmtPacketState& a, const SmtPacketState& b);

}  // namespace cvmt::gatesim
