#include "core/merge_logic.hpp"

#include <bit>

#include "support/check.hpp"

namespace cvmt::gatesim {

CsmtStageOut csmt_serial_stage_eval(std::uint32_t acc_mask,
                                    std::uint32_t cand_mask, bool valid) {
  const bool conflict = (acc_mask & cand_mask) != 0;  // AND + OR-reduce
  const bool select = valid && !conflict;
  const std::uint32_t sel_mask = select ? ~0u : 0u;  // select fan-out
  return {select, acc_mask | (cand_mask & sel_mask)};
}

std::uint32_t csmt_serial_select(
    std::span<const std::uint32_t> cluster_masks,
    std::span<const bool> valid) {
  CVMT_CHECK(cluster_masks.size() == valid.size());
  CVMT_CHECK(cluster_masks.size() <= 32);
  std::uint32_t grants = 0;
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < cluster_masks.size(); ++i) {
    const CsmtStageOut out =
        csmt_serial_stage_eval(acc, cluster_masks[i], valid[i]);
    acc = out.acc_mask;
    grants |= out.select ? (1u << i) : 0u;
  }
  return grants;
}

namespace {

/// Subset feasibility checker: all valid, pairwise cluster-disjoint.
/// (The hardware computes this as pairwise ANDs OR-reduced; disjointness
/// of all pairs is equivalent to the masks summing without carry, i.e.
/// the OR equals the sum — checked pairwise here, exactly like the
/// checker bank in csmt_parallel_block().)
bool subset_feasible(std::uint32_t subset,
                     std::span<const std::uint32_t> cluster_masks,
                     std::span<const bool> valid) {
  std::uint32_t seen = 0;
  std::uint32_t s = subset;
  while (s != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(s));
    s &= s - 1;
    if (!valid[i]) return false;
    if ((seen & cluster_masks[i]) != 0) return false;
    seen |= cluster_masks[i];
  }
  return true;
}

/// Priority order of subsets: thread 0 is the most significant grant. The
/// hardware's priority encoder walks grant patterns in this order.
std::uint32_t priority_key(std::uint32_t subset, std::size_t n) {
  std::uint32_t key = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (subset & (1u << i)) key |= 1u << (n - 1 - i);
  return key;
}

}  // namespace

std::uint32_t csmt_parallel_select(
    std::span<const std::uint32_t> cluster_masks,
    std::span<const bool> valid) {
  CVMT_CHECK(cluster_masks.size() == valid.size());
  const std::size_t n = cluster_masks.size();
  CVMT_CHECK(n <= 16);  // 2^n subset checkers
  std::uint32_t best = 0;
  std::uint32_t best_key = 0;
  for (std::uint32_t subset = 1; subset < (1u << n); ++subset) {
    if (!subset_feasible(subset, cluster_masks, valid)) continue;
    const std::uint32_t key = priority_key(subset, n);
    if (key > best_key) {
      best_key = key;
      best = subset;
    }
  }
  return best;
}

SmtPacketState SmtPacketState::of(const Footprint& fp,
                                  const MachineConfig& machine) {
  SmtPacketState s;
  for (int c = 0; c < machine.num_clusters; ++c) {
    s.fixed[c] = fp.cluster(c).fixed_mask;
    s.count[c] = fp.cluster(c).op_count;
  }
  return s;
}

bool smt_stage_feasible(const SmtPacketState& a, const SmtPacketState& b,
                        const MachineConfig& machine) {
  for (int c = 0; c < machine.num_clusters; ++c) {
    const auto width = static_cast<std::uint32_t>(machine.cluster_issue(c));
    if ((a.fixed[c] & b.fixed[c]) != 0) return false;   // slot collision
    if (a.count[c] + b.count[c] > width) return false;  // adder + compare
  }
  return true;
}

void smt_stage_merge(SmtPacketState& a, const SmtPacketState& b) {
  for (std::size_t c = 0; c < kMaxClusters; ++c) {
    a.fixed[c] |= b.fixed[c];
    a.count[c] += b.count[c];
  }
}

}  // namespace cvmt::gatesim
