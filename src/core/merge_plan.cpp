#include "core/merge_plan.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace cvmt {
namespace {

struct FlattenState {
  std::vector<MergePlan::Node> nodes;
  std::vector<std::uint8_t> ports;  ///< leaf ports in preorder
  std::vector<MergeNodeStats> stats;
  int max_depth = 0;
};

/// Preorder flattening; `end` of each node is one past its subtree.
void flatten(const Scheme::Node& node, FlattenState& st, int depth) {
  st.max_depth = std::max(st.max_depth, depth);
  const std::size_t self = st.nodes.size();
  st.nodes.emplace_back();
  if (node.is_leaf()) {
    st.nodes[self].leaf = true;
    st.nodes[self].leaf_index =
        static_cast<std::uint16_t>(st.ports.size());
    st.ports.push_back(static_cast<std::uint8_t>(node.port));
    st.nodes[self].end = static_cast<std::uint16_t>(st.nodes.size());
    return;
  }
  st.nodes[self].kind = node.kind;
  st.nodes[self].stats_index = static_cast<std::uint16_t>(st.stats.size());
  st.stats.push_back({Scheme::canonical(node), node.kind, 0, 0});
  for (const auto& child : node.children) flatten(child, st, depth + 1);
  st.nodes[self].end = static_cast<std::uint16_t>(st.nodes.size());
}

}  // namespace

MergePlan::MergePlan(const Scheme& scheme, const MachineConfig& config)
    : config_(config), num_threads_(scheme.num_threads()) {
  config_.validate();

  FlattenState st;
  flatten(scheme.root(), st, /*depth=*/1);
  nodes_ = std::move(st.nodes);
  stats_template_ = std::move(st.stats);
  depth_ = st.max_depth;
  CVMT_CHECK(static_cast<int>(st.ports.size()) == num_threads_);
  CVMT_CHECK_MSG(nodes_.size() < (1u << 16), "scheme too large for a plan");

  // Compile the node array into leaf steps: simulate the traversal stack
  // once so the per-cycle pass needs no subtree-extent comparisons. Along
  // the way, record which block is innermost-open at each leaf — for
  // left-deep chains that is all select_linear() needs.
  std::vector<std::uint16_t> open_ends;    // `end` of each open block
  std::vector<std::uint16_t> open_blocks;  // block index of each open block
  std::vector<BlockRef> innermost_at_leaf;
  LeafStep pending{};                      // opens accumulated since last leaf
  bool first_block_set = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& nd = nodes_[i];
    if (!nd.leaf) {
      blocks_.push_back({nd.kind, nd.stats_index});
      if (!first_block_set) {
        pending.first_block =
            static_cast<std::uint16_t>(blocks_.size() - 1);
        first_block_set = true;
      }
      ++pending.opens;
      open_ends.push_back(nd.end);
      open_blocks.push_back(static_cast<std::uint16_t>(blocks_.size() - 1));
      continue;
    }
    pending.leaf_index = nd.leaf_index;
    innermost_at_leaf.push_back(
        open_blocks.empty() ? BlockRef{MergeKind::kCsmt, 0}
                            : blocks_[open_blocks.back()]);
    // Blocks whose subtree ends right after this leaf close now; a parent
    // ending at the same index cascades.
    while (!open_ends.empty() && open_ends.back() == i + 1) {
      open_ends.pop_back();
      open_blocks.pop_back();
      ++pending.closes;
    }
    steps_.push_back(pending);
    pending = LeafStep{};
    first_block_set = false;
  }
  CVMT_CHECK(open_ends.empty());
  CVMT_CHECK(static_cast<int>(steps_.size()) == num_threads_);
  CVMT_CHECK(static_cast<int>(blocks_.size()) == num_blocks());

  // A plan is a left-deep chain when every block opens before the first
  // leaf. Then leaf i != 0 merges into the single accumulator under the
  // block innermost-open at i, and closes transfer results upward without
  // further checks — the whole pass folds into registers. The paper's
  // cascades, parallel blocks and IMT baselines all qualify; balanced
  // trees (e.g. 2CC) do not and keep the stack pass.
  if (num_blocks() > 0 &&
      steps_[0].opens == static_cast<std::uint16_t>(num_blocks())) {
    bool linear = true;
    for (std::size_t s = 1; s < steps_.size(); ++s)
      linear &= steps_[s].opens == 0;
    if (linear) {
      CVMT_CHECK(innermost_at_leaf.size() == steps_.size());
      for (std::size_t s = 0; s < steps_.size(); ++s)
        CVMT_CHECK(steps_[s].leaf_index == s);  // leaves are preordered
      chain_ = std::move(innermost_at_leaf);
    }
  }

  // Classify the shape and bind the unrolled fast path where it applies.
  // A chain whose every merging block (entry 0 never merges — the first
  // offer seeds) has the same non-select kind folds with a compile-time
  // trip count AND a compile-time compatibility check; other linear
  // chains (mixed cascades, select chains like IMT/BMT) still get the
  // compile-time trip count, reading the per-level kind from the chain
  // table. Only balanced trees keep the generic stack pass.
  if (is_linear()) {
    shape_ = PlanShape::kLinearChain;
    if (chain_.size() >= 2) {
      const MergeKind kind = chain_[1].kind;
      bool uniform = kind != MergeKind::kSelect;
      for (std::size_t i = 2; i < chain_.size(); ++i)
        uniform &= chain_[i].kind == kind;
      if (uniform) {
        shape_ = PlanShape::kUniformChain;
        bind_fixed(kind);
      } else {
        bind_chain();
      }
    }
  }

  // Precompute every rotation's leaf->thread permutation so the hot path
  // replaces (port + rotation) % n with one table read.
  const auto n = static_cast<std::size_t>(num_threads_);
  leaf_tid_.resize(n * n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t i = 0; i < n; ++i)
      leaf_tid_[r * n + i] =
          static_cast<std::uint8_t>((st.ports[i] + r) % n);
}

template <bool kCountStats>
MergePlan::Eval MergePlan::select_impl(
    std::span<const Footprint* const> candidates, int rotation,
    Frame* scratch, MergeNodeStats* stats) const {
  const std::uint8_t* perm =
      leaf_tid_.data() + static_cast<std::size_t>(rotation) *
                             static_cast<std::size_t>(num_threads_);

  Frame* sp = scratch;  // one past the innermost open block
  Eval root;

  // Greedy in-order combine of one input into the innermost open block —
  // the body of the recursive evaluator's child loop. Stats counting is a
  // compile-time branch so the fast path carries no per-merge checks.
  const auto combine = [&](const Footprint& fp, std::uint32_t mask) {
    if (sp == scratch) {  // the root's own result (root is a leaf)
      root.packet = fp;
      root.issued_mask = mask;
      return;
    }
    Frame& top = sp[-1];
    if (!top.have) {
      // The highest-priority input seeds the packet unconditionally.
      top.fp = fp;
      top.mask = mask;
      top.have = true;
      return;
    }
    if constexpr (kCountStats) ++top.stats->attempts;
    bool ok = false;
    switch (top.kind) {
      case MergeKind::kCsmt:
        ok = Footprint::csmt_compatible(top.fp, fp);
        break;
      case MergeKind::kSmt:
        ok = Footprint::smt_compatible(top.fp, fp, config_);
        break;
      case MergeKind::kSelect:
        ok = false;  // never merges: the first offering input wins
        break;
    }
    if (ok) {
      top.fp.merge_with(fp, config_);
      top.mask |= mask;
    } else {
      // The whole input packet is dropped: if it was itself a merged
      // group (tree schemes), every thread in it stalls this cycle (§4.1).
      if constexpr (kCountStats) ++top.stats->rejects;
    }
  };

  for (const LeafStep& step : steps_) {
    for (std::uint16_t b = 0; b < step.opens; ++b) {
      const BlockRef& blk =
          blocks_[static_cast<std::size_t>(step.first_block) + b];
      sp->mask = 0;
      sp->kind = blk.kind;
      sp->have = false;
      if constexpr (kCountStats) sp->stats = stats + blk.stats_index;
      ++sp;
    }
    const int tid = perm[step.leaf_index];
    const Footprint* fp = candidates[static_cast<std::size_t>(tid)];
    if (fp != nullptr) combine(*fp, 1u << static_cast<unsigned>(tid));
    for (std::uint16_t c = 0; c < step.closes; ++c) {
      Frame& done = *--sp;
      if (done.have) {
        if (sp == scratch) {
          root.packet = done.fp;
          root.issued_mask = done.mask;
        } else {
          combine(done.fp, done.mask);
        }
      }
    }
  }
  CVMT_DCHECK(sp == scratch);
  return root;
}

template <bool kCountStats>
MergePlan::Eval MergePlan::select_linear(
    std::span<const Footprint* const> candidates, int rotation,
    MergeNodeStats* stats) const {
  const std::uint8_t* perm =
      leaf_tid_.data() + static_cast<std::size_t>(rotation) *
                             static_cast<std::size_t>(num_threads_);
  Footprint acc;
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    const int tid = perm[i];
    const Footprint* fp = candidates[static_cast<std::size_t>(tid)];
    if (fp == nullptr) continue;  // nothing offered on this input
    if (mask == 0) {
      // The highest-priority input seeds the packet unconditionally.
      acc = *fp;
      mask = 1u << static_cast<unsigned>(tid);
      continue;
    }
    const BlockRef& blk = chain_[i];
    if constexpr (kCountStats) ++stats[blk.stats_index].attempts;
    bool ok = false;
    switch (blk.kind) {
      case MergeKind::kCsmt:
        ok = Footprint::csmt_compatible(acc, *fp);
        break;
      case MergeKind::kSmt:
        ok = Footprint::smt_compatible(acc, *fp, config_);
        break;
      case MergeKind::kSelect:
        ok = false;  // never merges: the first offering input wins
        break;
    }
    if (ok) {
      acc.merge_with(*fp, config_);
      mask |= 1u << static_cast<unsigned>(tid);
    } else {
      if constexpr (kCountStats) ++stats[blk.stats_index].rejects;
    }
  }
  return {acc, mask};
}

template <int N, MergeKind K, bool kCountStats>
MergePlan::Eval MergePlan::select_fixed(
    std::span<const Footprint* const> candidates, int rotation,
    MergeNodeStats* stats) const {
  CVMT_DCHECK(static_cast<int>(chain_.size()) == N);
  // num_threads_ == N for a bound fixed path, so the permutation stride
  // is the compile-time constant.
  const std::uint8_t* perm =
      leaf_tid_.data() + static_cast<std::size_t>(rotation) * N;
  Footprint acc;
  std::uint32_t mask = 0;
  for (int i = 0; i < N; ++i) {  // constant trip count: fully unrollable
    const int tid = perm[i];
    const Footprint* fp = candidates[static_cast<std::size_t>(tid)];
    if (fp == nullptr) continue;  // nothing offered on this input
    if (mask == 0) {
      // The highest-priority input seeds the packet unconditionally.
      acc = *fp;
      mask = 1u << static_cast<unsigned>(tid);
      continue;
    }
    if constexpr (kCountStats)
      ++stats[chain_[static_cast<std::size_t>(i)].stats_index].attempts;
    bool ok;
    if constexpr (K == MergeKind::kCsmt)
      ok = Footprint::csmt_compatible(acc, *fp);
    else
      ok = Footprint::smt_compatible(acc, *fp, config_);
    if (ok) {
      acc.merge_with(*fp, config_);
      mask |= 1u << static_cast<unsigned>(tid);
    } else if constexpr (kCountStats) {
      ++stats[chain_[static_cast<std::size_t>(i)].stats_index].rejects;
    }
  }
  return {acc, mask};
}

template <int N, bool kCountStats>
MergePlan::Eval MergePlan::select_chain(
    std::span<const Footprint* const> candidates, int rotation,
    MergeNodeStats* stats) const {
  CVMT_DCHECK(static_cast<int>(chain_.size()) == N);
  const std::uint8_t* perm =
      leaf_tid_.data() + static_cast<std::size_t>(rotation) * N;
  Footprint acc;
  std::uint32_t mask = 0;
  for (int i = 0; i < N; ++i) {  // constant trip count: fully unrollable
    const int tid = perm[i];
    const Footprint* fp = candidates[static_cast<std::size_t>(tid)];
    if (fp == nullptr) continue;  // nothing offered on this input
    if (mask == 0) {
      // The highest-priority input seeds the packet unconditionally.
      acc = *fp;
      mask = 1u << static_cast<unsigned>(tid);
      continue;
    }
    const BlockRef& blk = chain_[static_cast<std::size_t>(i)];
    if constexpr (kCountStats) ++stats[blk.stats_index].attempts;
    bool ok = false;
    // Each unrolled position sees one kind per plan lifetime: the switch
    // predicts perfectly even though it is not compiled away.
    switch (blk.kind) {
      case MergeKind::kCsmt:
        ok = Footprint::csmt_compatible(acc, *fp);
        break;
      case MergeKind::kSmt:
        ok = Footprint::smt_compatible(acc, *fp, config_);
        break;
      case MergeKind::kSelect:
        ok = false;  // never merges: the first offering input wins
        break;
    }
    if (ok) {
      acc.merge_with(*fp, config_);
      mask |= 1u << static_cast<unsigned>(tid);
    } else {
      if constexpr (kCountStats) ++stats[blk.stats_index].rejects;
    }
  }
  return {acc, mask};
}

template <int N>
void MergePlan::bind_fixed_n(MergeKind kind) {
  if (kind == MergeKind::kCsmt) {
    fixed_full_ = &MergePlan::select_fixed<N, MergeKind::kCsmt, true>;
    fixed_fast_ = &MergePlan::select_fixed<N, MergeKind::kCsmt, false>;
  } else {
    fixed_full_ = &MergePlan::select_fixed<N, MergeKind::kSmt, true>;
    fixed_fast_ = &MergePlan::select_fixed<N, MergeKind::kSmt, false>;
  }
}

void MergePlan::bind_fixed(MergeKind kind) {
  switch (num_threads_) {
    case 2: bind_fixed_n<2>(kind); break;
    case 3: bind_fixed_n<3>(kind); break;
    case 4: bind_fixed_n<4>(kind); break;
    case 5: bind_fixed_n<5>(kind); break;
    case 6: bind_fixed_n<6>(kind); break;
    case 7: bind_fixed_n<7>(kind); break;
    case 8: bind_fixed_n<8>(kind); break;
    default: break;  // wider uniform chains keep the generic fold
  }
}

template <int N>
void MergePlan::bind_chain_n() {
  fixed_full_ = &MergePlan::select_chain<N, true>;
  fixed_fast_ = &MergePlan::select_chain<N, false>;
}

void MergePlan::bind_chain() {
  switch (num_threads_) {
    case 2: bind_chain_n<2>(); break;
    case 3: bind_chain_n<3>(); break;
    case 4: bind_chain_n<4>(); break;
    case 5: bind_chain_n<5>(); break;
    case 6: bind_chain_n<6>(); break;
    case 7: bind_chain_n<7>(); break;
    case 8: bind_chain_n<8>(); break;
    default: break;  // wider chains keep the generic fold
  }
}

MergePlan::Eval MergePlan::select(
    std::span<const Footprint* const> candidates, int rotation,
    Frame* scratch, MergeNodeStats* stats) const {
  CVMT_DCHECK(candidates.size() == static_cast<std::size_t>(num_threads_));
  CVMT_DCHECK(rotation >= 0 && rotation < num_threads_);

  // Fast path: with zero or one offering thread no merge check can fire
  // (the first non-empty input always seeds its block unconditionally), so
  // the decision is immediate and no stat counter moves either way.
  int offers = 0;
  int only = -1;
  for (std::size_t t = 0; t < candidates.size(); ++t) {
    if (candidates[t] != nullptr) {
      ++offers;
      only = static_cast<int>(t);
    }
  }
  if (offers == 0) return {};
  if (offers == 1)
    return {*candidates[static_cast<std::size_t>(only)],
            1u << static_cast<unsigned>(only)};

  return select_multi(candidates, rotation, scratch, stats);
}

MergePlan::Eval MergePlan::select_multi(
    std::span<const Footprint* const> candidates, int rotation,
    Frame* scratch, MergeNodeStats* stats) const {
  CVMT_DCHECK(candidates.size() == static_cast<std::size_t>(num_threads_));
  CVMT_DCHECK(rotation >= 0 && rotation < num_threads_);
  if (is_linear())
    return stats != nullptr
               ? select_linear<true>(candidates, rotation, stats)
               : select_linear<false>(candidates, rotation, stats);
  return stats != nullptr
             ? select_impl<true>(candidates, rotation, scratch, stats)
             : select_impl<false>(candidates, rotation, scratch, stats);
}

MergePlan::Eval MergePlan::select_specialized(
    std::span<const Footprint* const> candidates, int rotation,
    Frame* scratch, MergeNodeStats* stats) const {
  CVMT_DCHECK(candidates.size() == static_cast<std::size_t>(num_threads_));
  CVMT_DCHECK(rotation >= 0 && rotation < num_threads_);

  // Same zero/one-offer short circuit as select(): no merge check can
  // fire, so neither fast path nor fallback needs to run.
  int offers = 0;
  int only = -1;
  for (std::size_t t = 0; t < candidates.size(); ++t) {
    if (candidates[t] != nullptr) {
      ++offers;
      only = static_cast<int>(t);
    }
  }
  if (offers == 0) return {};
  if (offers == 1)
    return {*candidates[static_cast<std::size_t>(only)],
            1u << static_cast<unsigned>(only)};

  return select_multi_specialized(candidates, rotation, scratch, stats);
}

}  // namespace cvmt
