// Merging schemes: compositions of SMT and CSMT merge-control blocks.
//
// A scheme (paper §4.1, Fig 8) is a tree whose leaves are thread input
// ports and whose internal nodes are merge blocks:
//
//   * cascade `3SCC`  = C(C(S(0,1),2),3) — left-deep, one thread per level;
//   * parallel `C4`   = CP(0,1,2,3) — one 4-input parallel CSMT block,
//     functionally equivalent to the serial cascade 3CCC (§4.1);
//   * mixed `2SC3`    = CP(S(0,1),2,3);
//   * tree `2CS`      = S(C(0,1),C(2,3)) — balanced, group results merge
//     atomically (§4.1 last paragraph).
//
// The paper's scheme names are parsed by Scheme::parse; arbitrary schemes
// (any thread count) can be written in functional syntax, e.g.
// "S(CP(0,1,2),3)".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/machine_config.hpp"

namespace cvmt {

/// Merge-control block types: the paper's two merging kinds plus a
/// non-merging selector used to model the classic IMT/BMT baselines the
/// paper's related work cites (one thread issues per cycle; no merge).
enum class MergeKind : std::uint8_t {
  kSmt,     ///< operation-level merging (routing block per cluster)
  kCsmt,    ///< cluster-level merging (mux per cluster)
  kSelect,  ///< no merging: first offering input wins (IMT/BMT baselines)
};

[[nodiscard]] constexpr char to_char(MergeKind k) {
  switch (k) {
    case MergeKind::kSmt: return 'S';
    case MergeKind::kCsmt: return 'C';
    case MergeKind::kSelect: return 'I';
  }
  return '?';
}

/// A merging scheme. Immutable after construction; cheap to copy.
class Scheme {
 public:
  /// AST node: either a leaf (thread input port) or a merge block over
  /// `children`. A CSMT block with more than two inputs exists in a serial
  /// (cascaded, `parallel == false`) and a parallel (all-subset,
  /// `parallel == true`) implementation; both select the same threads —
  /// only hardware cost differs (§3).
  struct Node {
    MergeKind kind = MergeKind::kCsmt;
    bool parallel = false;
    int port = -1;  ///< >= 0 for leaves
    std::vector<Node> children;

    [[nodiscard]] bool is_leaf() const { return port >= 0; }
  };

  /// Builds a scheme from an AST; validates structure (leaves are exactly
  /// ports 0..N-1, each once; internal nodes have >= 2 children; parallel
  /// nodes are CSMT). `name` is the display name. Throws CheckError with
  /// the validate() message on a malformed tree.
  Scheme(std::string name, Node root);

  /// Well-formedness check of an AST without constructing a Scheme: returns
  /// an empty string when `root` is a valid scheme tree, otherwise a
  /// human-readable description of the first defect found (duplicate thread
  /// ids, empty/single-input merge arms, non-dense ports, a parallel
  /// non-CSMT block, thread count out of range). The property-based fuzzer
  /// (src/testgen) uses this to assert generated trees are well formed and
  /// that malformed mutations are rejected rather than silently accepted.
  [[nodiscard]] static std::string validate(const Node& root);

  /// Parses a paper-style name ("1S", "3SCC", "2SC3", "2C3S", "C4", "2CS",
  /// "3SSS", ...) or functional syntax ("S(C(0,1),CP(1,2,3))" is invalid —
  /// ports must be dense — but "S(CP(0,1,2),3)" parses). Leading digit =
  /// number of levels; two plain letters after a '2' denote the balanced
  /// tree of Fig 8(l)-(o). Throws CheckError on malformed input.
  [[nodiscard]] static Scheme parse(std::string_view text);

  /// Degenerate 1-thread scheme (no merging): used for single-thread runs.
  [[nodiscard]] static Scheme single_thread();

  /// The 16 four-thread schemes of Fig 9, in the paper's cost order:
  /// C4, 3CCC, 2CC, 1S, 2SC3, 3CSC, 2C3S, 3CCS, 3SCC, 2CS, 2SC, 3SSC,
  /// 3SCS, 3CSS, 2SS, 3SSS. (1S is the 2-thread SMT baseline.)
  [[nodiscard]] static std::vector<Scheme> paper_schemes_4t();

  /// Pure cascades of N threads with per-level kinds, e.g.
  /// cascade("7SCCCCCC"-style kinds vector). Used by the 8-thread ablation.
  [[nodiscard]] static Scheme cascade(const std::vector<MergeKind>& levels);

  /// N-thread parallel CSMT ("C4", "C8", ...).
  [[nodiscard]] static Scheme parallel_csmt(int num_threads);

  /// N-thread interleaved-multithreading baseline ("IMT4"): exactly one
  /// thread issues per cycle — the highest-priority one with a ready
  /// instruction. Combined with PriorityPolicy::kStickyOnStall this
  /// becomes the Block MultiThreading (BMT) baseline.
  [[nodiscard]] static Scheme imt(int num_threads);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Node& root() const { return root_; }
  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Number of merge-control blocks of `kind`. A serial n-input CSMT node
  /// counts n-1 blocks; a parallel one counts 1 (it is a single, wider
  /// block).
  [[nodiscard]] int count_blocks(MergeKind kind) const;

  /// Canonical functional rendering, e.g. "C(C(S(0,1),2),3)".
  [[nodiscard]] std::string canonical() const;

  /// Canonical rendering of an arbitrary (sub-)tree, e.g. "S(0,1)" for the
  /// innermost block of 3SCC. Used for per-merge-block stat labels.
  [[nodiscard]] static std::string canonical(const Node& node);

 private:
  std::string name_;
  Node root_;
  int num_threads_ = 0;
};

}  // namespace cvmt
